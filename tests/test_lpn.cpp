/**
 * @file
 * LPN encoder tests: determinism, agreement with a dense GF(2)
 * reference, parallel == serial, SIMD/tape == scalar streaming, and
 * preservation of the COT correlation through the encoding
 * (invariant 4 of DESIGN.md).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/base_cot.h"
#include "ot/lpn.h"

namespace ironman::ot {
namespace {

LpnParams
smallParams()
{
    LpnParams p;
    p.n = 4096;
    p.k = 512;
    p.d = 10;
    p.seed = 77;
    return p;
}

TEST(LpnTest, IndicesDeterministicAndInRange)
{
    LpnEncoder a(smallParams());
    LpnEncoder b(smallParams());
    std::vector<uint32_t> ia(10), ib(10);
    for (uint64_t row : {0ULL, 1ULL, 4095ULL}) {
        a.rowIndices(row, ia.data());
        b.rowIndices(row, ib.data());
        EXPECT_EQ(ia, ib);
        for (uint32_t idx : ia)
            EXPECT_LT(idx, 512u);
    }
}

TEST(LpnTest, SeedChangesMatrix)
{
    LpnParams p1 = smallParams();
    LpnParams p2 = smallParams();
    p2.seed = 78;
    LpnEncoder a(p1), b(p2);
    std::vector<uint32_t> ia(10), ib(10);
    int diffs = 0;
    for (uint64_t row = 0; row < 64; ++row) {
        a.rowIndices(row, ia.data());
        b.rowIndices(row, ib.data());
        diffs += (ia != ib);
    }
    EXPECT_GT(diffs, 60);
}

TEST(LpnTest, BatchIndicesMatchSingle)
{
    LpnEncoder enc(smallParams());
    const size_t rows = 300;
    std::vector<uint32_t> batch(rows * 10);
    LpnEncodeScratch scratch;
    enc.rowIndicesBatch(5, rows, batch.data(), scratch);
    std::vector<uint32_t> one(10);
    for (size_t r = 0; r < rows; ++r) {
        enc.rowIndices(5 + r, one.data());
        for (unsigned i = 0; i < 10; ++i)
            EXPECT_EQ(batch[r * 10 + i], one[i]) << "row " << r;
    }
}

TEST(LpnTest, IndicesRoughlyUniformOverColumns)
{
    LpnParams p = smallParams();
    LpnEncoder enc(p);
    std::vector<uint32_t> hist(p.k, 0);
    std::vector<uint32_t> idx(p.n * p.d);
    LpnEncodeScratch scratch;
    enc.rowIndicesBatch(0, p.n, idx.data(), scratch);
    for (uint32_t i : idx)
        hist[i]++;
    // n*d / k = 80 expected hits per column.
    double expect = double(p.n) * p.d / p.k;
    size_t extreme = 0;
    for (uint32_t h : hist)
        extreme += (h < expect / 3 || h > expect * 3);
    EXPECT_LT(extreme, p.k / 100); // <1% pathological columns
}

TEST(LpnTest, EncodeMatchesDenseReference)
{
    LpnParams p;
    p.n = 256;
    p.k = 64;
    p.d = 10;
    p.seed = 5;
    LpnEncoder enc(p);

    Rng rng(50);
    std::vector<Block> in = rng.nextBlocks(p.k);
    std::vector<Block> base = rng.nextBlocks(p.n); // SPCOT contribution

    // Dense reference: build A explicitly (note duplicate indices in a
    // row cancel over GF(2) — the reference must reproduce that).
    std::vector<Block> expect = base;
    std::vector<uint32_t> idx(p.d);
    for (size_t j = 0; j < p.n; ++j) {
        enc.rowIndices(j, idx.data());
        std::vector<int> col_count(p.k, 0);
        for (uint32_t i : idx)
            col_count[i] ^= 1;
        for (size_t c = 0; c < p.k; ++c)
            if (col_count[c])
                expect[j] ^= in[c];
    }

    std::vector<Block> got = base;
    LpnEncodeScratch scratch;
    enc.encodeBlocks(in.data(), got.data(), 0, p.n, scratch);
    EXPECT_EQ(got, expect);
}

TEST(LpnTest, PoolParallelMatchesSerial)
{
    LpnParams p = smallParams();
    LpnEncoder enc(p);
    Rng rng(51);
    std::vector<Block> in = rng.nextBlocks(p.k);
    std::vector<Block> serial = rng.nextBlocks(p.n);
    std::vector<Block> parallel = serial;

    LpnEncodeScratch scratch;
    enc.encodeBlocks(in.data(), serial.data(), 0, p.n, scratch);

    common::ThreadPool pool(4);
    std::vector<LpnEncodeScratch> scratches(pool.threads());
    enc.encodeBlocksPool(in.data(), parallel.data(), p.n, pool,
                         scratches.data());
    EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------------
// Tape + SIMD kernels
// ---------------------------------------------------------------------------

/**
 * The tape path (precomputed transposed indices + runtime-dispatched
 * SIMD gather-XOR) must be bit-identical to the streaming scalar
 * encoder under randomized seeds, including with the SIMD kernel
 * forced off (scalar tape walk), at unaligned row offsets, and
 * through the pool.
 */
TEST(LpnTapeTest, TapeEncodeMatchesStreamingUnderRandomSeeds)
{
    Rng meta_rng(900);
    common::ThreadPool pool(3);
    for (int trial = 0; trial < 6; ++trial) {
        LpnParams p;
        p.n = 1000 + meta_rng.nextBelow(3000);
        p.k = 128 + meta_rng.nextBelow(900);
        p.d = 4 + unsigned(meta_rng.nextBelow(8));
        p.seed = meta_rng.nextUint64();
        LpnEncoder enc(p);

        Rng rng(901 + trial);
        std::vector<Block> in = rng.nextBlocks(p.k);
        std::vector<Block> base = rng.nextBlocks(p.n);

        std::vector<Block> expect = base;
        LpnEncodeScratch scratch;
        enc.encodeBlocks(in.data(), expect.data(), 0, p.n, scratch);

        std::vector<LpnEncodeScratch> scratches(pool.threads());
        LpnIndexTape tape;
        enc.buildTape(tape, p.n, pool, scratches.data());

        // SIMD kernel (whatever the CPU dispatches to).
        std::vector<Block> simd = base;
        enc.encodeBlocksTape(in.data(), simd.data(), 0, p.n, tape);
        EXPECT_EQ(simd, expect) << "trial " << trial;

        // Forced-scalar tape walk.
        LpnEncoder::forceScalarKernel(true);
        std::vector<Block> scalar = base;
        enc.encodeBlocksTape(in.data(), scalar.data(), 0, p.n, tape);
        LpnEncoder::forceScalarKernel(false);
        EXPECT_EQ(scalar, expect) << "trial " << trial;

        // Every pinnable kernel (unsupported ones fall back, which
        // must still be bit-identical).
        for (LpnKernel k : {LpnKernel::Sse2, LpnKernel::Avx2,
                            LpnKernel::Avx2Gather}) {
            LpnEncoder::setKernel(k);
            std::vector<Block> pinned = base;
            enc.encodeBlocksTape(in.data(), pinned.data(), 0, p.n, tape);
            LpnEncoder::setKernel(LpnKernel::Auto);
            EXPECT_EQ(pinned, expect)
                << "trial " << trial << " kernel " << int(k);
        }

        // Unaligned sub-range (exercises the head/tail handling).
        size_t row0 = 1 + meta_rng.nextBelow(61);
        size_t count = p.n - row0 - meta_rng.nextBelow(7);
        std::vector<Block> sub(base.begin() + row0,
                               base.begin() + row0 + count);
        enc.encodeBlocksTape(in.data(), sub.data(), row0, count, tape);
        for (size_t j = 0; j < count; ++j)
            ASSERT_EQ(sub[j], expect[row0 + j])
                << "trial " << trial << " row " << row0 + j;

        // Pool split.
        std::vector<Block> pooled = base;
        enc.encodeBlocksTapePool(in.data(), pooled.data(), p.n, tape,
                                 pool);
        EXPECT_EQ(pooled, expect) << "trial " << trial;
    }
}

TEST(LpnTapeTest, TapeBuildDeterministicAcrossThreadCounts)
{
    LpnParams p = smallParams();
    LpnEncoder enc(p);

    common::ThreadPool pool1(1), pool4(4);
    std::vector<LpnEncodeScratch> s1(pool1.threads());
    std::vector<LpnEncodeScratch> s4(pool4.threads());
    LpnIndexTape t1, t4;
    enc.buildTape(t1, p.n, pool1, s1.data());
    enc.buildTape(t4, p.n, pool4, s4.data());
    EXPECT_EQ(t1.idx, t4.idx);
}

TEST(LpnTapeTest, BitEncodeTapeMatchesStreaming)
{
    LpnParams p;
    p.n = 2048;
    p.k = 256;
    p.seed = 21;
    LpnEncoder enc(p);

    Rng rng(55);
    BitVec in = rng.nextBits(p.k);
    BitVec base = rng.nextBits(p.n);

    BitVec expect = base;
    LpnEncodeScratch scratch;
    enc.encodeBits(in, expect, scratch);

    common::ThreadPool pool(1);
    LpnIndexTape tape;
    enc.buildTape(tape, p.n, pool, &scratch);
    BitVec got = base;
    enc.encodeBitsTape(in, got, tape);
    EXPECT_EQ(got, expect);
}

/**
 * The SIMD bit kernels (word-at-a-time groups + AVX2 vpgatherdd) must
 * be bit-identical to the streaming scalar bit encode under random
 * seeds and sizes, including n % 8 != 0 tails and through every
 * pinnable kernel.
 */
TEST(LpnTapeTest, BitEncodeSimdMatchesScalarUnderRandomSeeds)
{
    Rng meta_rng(910);
    common::ThreadPool pool(2);
    for (int trial = 0; trial < 6; ++trial) {
        LpnParams p;
        p.n = 500 + meta_rng.nextBelow(4000); // tails exercised
        p.k = 64 + meta_rng.nextBelow(700);
        p.d = 4 + unsigned(meta_rng.nextBelow(8));
        p.seed = meta_rng.nextUint64();
        LpnEncoder enc(p);

        Rng rng(911 + trial);
        BitVec in = rng.nextBits(p.k);
        BitVec base = rng.nextBits(p.n);

        BitVec expect = base;
        LpnEncodeScratch scratch;
        enc.encodeBits(in, expect, scratch);

        std::vector<LpnEncodeScratch> scratches(pool.threads());
        LpnIndexTape tape;
        enc.buildTape(tape, p.n, pool, scratches.data());

        BitVec simd = base;
        enc.encodeBitsTape(in, simd, tape);
        EXPECT_EQ(simd, expect) << "trial " << trial;

        for (LpnKernel k :
             {LpnKernel::Scalar, LpnKernel::Sse2, LpnKernel::Avx2,
              LpnKernel::Avx2Gather}) {
            LpnEncoder::setKernel(k);
            BitVec pinned = base;
            enc.encodeBitsTape(in, pinned, tape);
            LpnEncoder::setKernel(LpnKernel::Auto);
            EXPECT_EQ(pinned, expect)
                << "trial " << trial << " kernel " << int(k);
        }
    }
}

TEST(LpnTest, BitEncodeMatchesBlockEncodeOnLsb)
{
    // Encoding bits must be the GF(2) projection of encoding blocks.
    LpnParams p;
    p.n = 512;
    p.k = 128;
    p.seed = 9;
    LpnEncoder enc(p);

    Rng rng(52);
    BitVec in_bits = rng.nextBits(p.k);
    BitVec base_bits = rng.nextBits(p.n);

    std::vector<Block> in_blocks(p.k), base_blocks(p.n);
    for (size_t i = 0; i < p.k; ++i)
        in_blocks[i] = Block::fromUint64(in_bits.get(i));
    for (size_t j = 0; j < p.n; ++j)
        base_blocks[j] = Block::fromUint64(base_bits.get(j));

    BitVec got_bits = base_bits;
    LpnEncodeScratch scratch;
    enc.encodeBits(in_bits, got_bits, scratch);
    enc.encodeBlocks(in_blocks.data(), base_blocks.data(), 0, p.n,
                     scratch);

    for (size_t j = 0; j < p.n; ++j)
        EXPECT_EQ(got_bits.get(j), base_blocks[j].lsb()) << "row " << j;
}

TEST(LpnTest, EncodingPreservesCotCorrelation)
{
    // r = s ^ e*Delta per entry  =>  r*A ^ w = (s*A ^ v) ^ (e*A ^ u)*Delta
    // when w = v ^ u*Delta: the linearity invariant Ferret relies on.
    LpnParams p;
    p.n = 2048;
    p.k = 256;
    p.seed = 13;
    LpnEncoder enc(p);

    Rng rng(53);
    Block delta = rng.nextBlock();

    // LPN inputs: k COTs.
    auto [in_s, in_r] = dealBaseCots(rng, delta, p.k);

    // SPCOT outputs: a synthetic one-hot-free correlation w = v ^ u*Delta.
    BitVec u = rng.nextBits(p.n);
    std::vector<Block> v = rng.nextBlocks(p.n);
    std::vector<Block> w(p.n);
    for (size_t j = 0; j < p.n; ++j)
        w[j] = v[j] ^ scalarMul(u.get(j), delta);

    // Sender: z = r*A ^ w.
    LpnEncodeScratch scratch;
    std::vector<Block> z = w;
    enc.encodeBlocks(in_s.q.data(), z.data(), 0, p.n, scratch);

    // Receiver: x = e*A ^ u, y = s*A ^ v.
    BitVec x = u;
    enc.encodeBits(in_r.choice, x, scratch);
    std::vector<Block> y = v;
    enc.encodeBlocks(in_r.t.data(), y.data(), 0, p.n, scratch);

    for (size_t j = 0; j < p.n; ++j)
        EXPECT_EQ(z[j] ^ scalarMul(x.get(j), delta), y[j]) << "row " << j;
}

} // namespace
} // namespace ironman::ot
