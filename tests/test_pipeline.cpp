/**
 * @file
 * PRG pipeline schedule tests (Fig. 8): depth-first stalls, hybrid
 * reaches ~full utilization, buffer bounds match the paper's O(log l)
 * vs O(l) analysis.
 */

#include <gtest/gtest.h>

#include "ot/ggm_tree.h"
#include "sim/pipeline.h"

namespace ironman::sim {
namespace {

ExpandWorkload
workload(size_t leaves, unsigned arity, uint64_t trees)
{
    ExpandWorkload wl;
    wl.arities = ot::treeArities(leaves, arity);
    wl.numTrees = trees;
    return wl;
}

TEST(PipelineTest, OpCountMatchesTreeModel)
{
    // 4-ary ChaCha: one op per internal node, (l-1)/3 nodes.
    auto sched = scheduleExpansion(workload(4096, 4, 1),
                                   ExpandStrategy::Hybrid);
    EXPECT_EQ(sched.ops, (4096u - 1) / 3);

    // 2-ary ChaCha: l-1 internal... (l-1) nodes, 1 op each.
    sched = scheduleExpansion(workload(4096, 2, 1),
                              ExpandStrategy::BreadthFirst);
    EXPECT_EQ(sched.ops, 4095u);
}

TEST(PipelineTest, DepthFirstStallsOnEveryDescent)
{
    // Fig. 8(a): a 2-level binary tree: root, then 7 bubbles before the
    // first child expansion.
    ExpandWorkload wl = workload(4, 2, 1);
    auto sched = scheduleExpansion(wl, ExpandStrategy::DepthFirst, 8);
    // Nodes: root + 2 children = 3 ops. Root at slot 0, child0 waits
    // until slot 8 (7 bubbles), child1 at slot 9.
    EXPECT_EQ(sched.ops, 3u);
    EXPECT_EQ(sched.bubbles, 7u);
    // Root at slot 0, child0 at 8, child1 at 9; child1 drains at 9+8.
    EXPECT_EQ(sched.cycles, 17u);
}

TEST(PipelineTest, DepthFirstUtilizationIsPoorOnOneTree)
{
    auto sched = scheduleExpansion(workload(4096, 4, 1),
                                   ExpandStrategy::DepthFirst, 8);
    EXPECT_LT(sched.utilization(), 0.75);
}

TEST(PipelineTest, BreadthFirstFillsWideLevels)
{
    auto sched = scheduleExpansion(workload(4096, 4, 1),
                                   ExpandStrategy::BreadthFirst, 8);
    // Bubbles only at the narrow top levels.
    EXPECT_GT(sched.utilization(), 0.95);
}

TEST(PipelineTest, HybridReachesFullUtilizationAcrossTrees)
{
    // Fig. 8(b): with enough trees in flight the pipeline never idles
    // (aside from the initial fill).
    auto sched = scheduleExpansion(workload(1024, 4, 32),
                                   ExpandStrategy::Hybrid, 8);
    EXPECT_GT(sched.utilization(), 0.99);
    // Makespan ~ total ops + drain.
    EXPECT_LE(sched.cycles, sched.ops + 64);
}

TEST(PipelineTest, HybridBeatsDepthFirstMatchesPaperTrend)
{
    auto dfs = scheduleExpansion(workload(4096, 4, 16),
                                 ExpandStrategy::DepthFirst, 8);
    auto hybrid = scheduleExpansion(workload(4096, 4, 16),
                                    ExpandStrategy::Hybrid, 8);
    EXPECT_EQ(dfs.ops, hybrid.ops);
    EXPECT_LT(hybrid.cycles, dfs.cycles);
    EXPECT_LT(hybrid.bubbles, dfs.bubbles);
}

TEST(PipelineTest, BufferBoundsMatchAnalysis)
{
    const size_t leaves = 4096;
    auto dfs = scheduleExpansion(workload(leaves, 4, 1),
                                 ExpandStrategy::DepthFirst, 8);
    auto bfs = scheduleExpansion(workload(leaves, 4, 1),
                                 ExpandStrategy::BreadthFirst, 8);
    // Depth-first: O(m * log_m l) live nodes; breadth-first: O(l).
    EXPECT_LT(dfs.peakBuffer, 64u);
    EXPECT_GT(bfs.peakBuffer, leaves / 8);
    EXPECT_LT(dfs.peakBuffer, bfs.peakBuffer / 4);
}

TEST(PipelineTest, HybridBufferBoundedByActiveWindow)
{
    auto hybrid = scheduleExpansion(workload(4096, 4, 64),
                                    ExpandStrategy::Hybrid, 8);
    auto bfs = scheduleExpansion(workload(4096, 4, 64),
                                 ExpandStrategy::BreadthFirst, 8);
    // Hybrid keeps ~stages trees in flight at O(m log l) each — far
    // below breadth-first's per-tree O(l).
    EXPECT_LT(hybrid.peakBuffer, bfs.peakBuffer / 2);
}

TEST(PipelineTest, MultiCoreScalesMakespan)
{
    ExpandWorkload wl = workload(4096, 4, 64);
    auto one = scheduleExpansionMultiCore(wl, ExpandStrategy::Hybrid, 1);
    auto four = scheduleExpansionMultiCore(wl, ExpandStrategy::Hybrid, 4);
    EXPECT_EQ(one.ops, four.ops);
    EXPECT_NEAR(double(one.cycles) / double(four.cycles), 4.0, 0.5);
}

TEST(PipelineTest, AesOverrideCostsMoreOpsThanChaCha)
{
    // Pipelined AES bank: m ops per node vs ceil(m/4) for ChaCha.
    ExpandWorkload chacha = workload(1024, 4, 8);
    ExpandWorkload aes = chacha;
    aes.opsPerNodeOverride = 4;
    auto c = scheduleExpansion(chacha, ExpandStrategy::Hybrid, 8);
    auto a = scheduleExpansion(aes, ExpandStrategy::Hybrid, 8);
    EXPECT_EQ(a.ops, c.ops * 4);
    EXPECT_GT(a.cycles, c.cycles * 3);
}

TEST(PipelineTest, MixedRadixTreeSchedules)
{
    // 8192 = 2 * 4^6 exercises the mixed-radix shape end to end.
    auto sched = scheduleExpansion(workload(8192, 4, 4),
                                   ExpandStrategy::Hybrid, 8);
    // Internal nodes: 1 + 2*(4^6-1)/3 = 2731 per tree.
    EXPECT_EQ(sched.ops, 4u * (1 + 2 * (4096 - 1) / 3));
    EXPECT_GT(sched.utilization(), 0.9);
}

} // namespace
} // namespace ironman::sim
