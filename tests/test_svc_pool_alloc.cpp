/**
 * @file
 * Invariant 12 (DESIGN.md): a pooled engine serves successive sessions
 * with zero heap allocations after its first warm extension.
 *
 * The counting global allocator measures whole session turnovers —
 * EnginePool checkout, resetSession onto a fresh channel with fresh
 * base material, warm extensions, lease release — for both engine
 * roles. Session 0 is the warm-up (arena carve, tape build, transcript
 * buffer sizing, pool bookkeeping); sessions 1..N must allocate
 * nothing on either party. Channels and base material are prepared
 * up front: they are session INPUTS, not engine state (the service's
 * session threads own them; a deployment reuses per-connection
 * buffers the same way).
 *
 * Rides along: the bounded MemoryDuplex (reserve() = hard capacity)
 * is what makes the wire's no-allocation property deterministic
 * rather than scheduling-dependent — asserted via
 * capacityPerDirection().
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "net/channel.h"
#include "net/flight_recorder.h"
#include "ot/ferret_params.h"
#include "svc/engine_pool.h"
#include "svc/wire.h"

// ---------------------------------------------------------------------------
// Counting global allocator
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocCount{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace ironman::svc {
namespace {

void
expectPooledSessionsAllocationFree(const ot::FerretParams &p)
{
    constexpr int kSessions = 3; // 0 = warm-up, 1..2 measured
    constexpr int kIters = 2;
    const size_t reserved = p.reservedCots();

    // Session inputs, prepared up front: one duplex (bounded — the
    // reserve is a hard capacity), base material, and delta per
    // session.
    std::vector<std::unique_ptr<net::MemoryDuplex>> duplex;
    std::vector<ot::CotSenderBatch> base_s(kSessions);
    std::vector<ot::CotReceiverBatch> base_r(kSessions);
    std::vector<Block> delta(kSessions);
    for (int s = 0; s < kSessions; ++s) {
        duplex.push_back(std::make_unique<net::MemoryDuplex>());
        duplex.back()->reserve(1 << 20);
        dealSessionBase(p, 7700 + s, &base_s[s], &base_r[s], &delta[s]);
    }
    const size_t fifo_capacity = duplex[0]->capacityPerDirection();

    EnginePool pool;
    std::vector<Block> q(p.usableOts());
    std::vector<Block> t(p.usableOts());
    BitVec choice;

    // Persistent party threads; main releases one session at a time.
    std::atomic<int> go{-1};
    std::atomic<int> done{0};
    std::thread sender_thread([&] {
        for (int s = 0; s < kSessions; ++s) {
            while (go.load(std::memory_order_acquire) < s)
                std::this_thread::yield();
            Rng rng(senderRngSeed(7700 + s));
            EnginePool::SenderLease lease = pool.checkoutSender(p);
            lease->resetSession(duplex[s]->a(), delta[s],
                                base_s[s].q.data(), reserved);
            for (int it = 0; it < kIters; ++it)
                lease->extendInto(rng, q.data());
            lease.release();
            done.fetch_add(1, std::memory_order_acq_rel);
        }
    });
    std::thread receiver_thread([&] {
        for (int s = 0; s < kSessions; ++s) {
            while (go.load(std::memory_order_acquire) < s)
                std::this_thread::yield();
            Rng rng(receiverRngSeed(7700 + s));
            EnginePool::ReceiverLease lease = pool.checkoutReceiver(p);
            lease->resetSession(duplex[s]->b(), base_r[s].choice,
                                base_r[s].t.data(), reserved);
            for (int it = 0; it < kIters; ++it)
                lease->extendInto(rng, choice, t.data());
            lease.release();
            done.fetch_add(1, std::memory_order_acq_rel);
        }
    });

    uint64_t measured_start = 0;
    for (int s = 0; s < kSessions; ++s) {
        if (s == 1)
            measured_start = g_allocCount.load();
        go.store(s, std::memory_order_release);
        while (done.load(std::memory_order_acquire) < 2 * (s + 1))
            std::this_thread::yield();
    }
    const uint64_t measured = g_allocCount.load() - measured_start;
    sender_thread.join();
    receiver_thread.join();

    EXPECT_EQ(measured, 0u)
        << "session turnover on pooled engines performed allocations";

    // Only one engine pair was ever constructed for all sessions.
    EXPECT_EQ(pool.sendersCreated(), 1u);
    EXPECT_EQ(pool.receiversCreated(), 1u);

    // The bounded FIFO never grew (deterministic worst-case bound).
    for (int s = 0; s < kSessions; ++s)
        EXPECT_EQ(duplex[s]->capacityPerDirection(), fifo_capacity);

    // The last session still produced valid correlations.
    for (size_t i = 0; i < q.size(); ++i)
        ASSERT_EQ(t[i],
                  q[i] ^ scalarMul(choice.get(i),
                                   delta[kSessions - 1]))
            << "index " << i;
}

TEST(SvcPoolAllocTest, SessionTurnoverIsAllocationFree)
{
    expectPooledSessionsAllocationFree(ot::tinyTestParams());
}

TEST(SvcPoolAllocTest, ScatterFreeSessionTurnoverIsAllocationFree)
{
    expectPooledSessionsAllocationFree(ot::tinyAlignedParams());
}

TEST(SvcPoolAllocTest, MetricsRecordingIsAllocationFree)
{
    // Invariant 17: recording on pre-registered handles allocates
    // nothing — telemetry must be free to leave on by default on the
    // invariant-12 warm paths. Registration (the only allocating
    // step) is the warm-up here, exactly as the instrumented
    // subsystems do it in their constructors.
    metrics::Counter &c = metrics::counter("alloc_probe_counter");
    metrics::Gauge &g = metrics::gauge("alloc_probe_gauge");
    metrics::Histogram &h = metrics::histogram("alloc_probe_hist");
    net::FlightRecorder fr;
    c.inc();
    g.add(1);
    h.record(1);
    fr.note("warmup");

    const uint64_t start = g_allocCount.load();
    for (uint64_t i = 0; i < 10000; ++i) {
        c.inc();
        g.add(3);
        g.sub(3);
        h.record(i * 37);
        h.recordSinceUs(metrics::nowUs());
        fr.note("probe", uint32_t(i), i);
    }
    EXPECT_EQ(g_allocCount.load() - start, 0u)
        << "metric recording on the warm path performed allocations";
    EXPECT_EQ(c.value(), 10001u);
    EXPECT_EQ(g.value(), 1);
    EXPECT_EQ(fr.total(), 10001u);
}

} // namespace
} // namespace ironman::svc
