/**
 * @file
 * GGM tree tests: the punctured reconstruction must agree with the
 * sender's expansion on every leaf except alpha, across arities, PRGs
 * and tree sizes (invariant 3 of DESIGN.md). Exercises the span-based
 * workspace API (ggmExpandInto / ggmReconstructInto) directly.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/ggm_tree.h"

namespace ironman::ot {
namespace {

using crypto::PrgKind;

/** Test-local expansion mirror of the deleted vector wrapper. */
struct Expansion
{
    std::vector<Block> leaves;
    std::vector<std::vector<Block>> levelSums;
    Block leafSum;
};

Expansion
expand(crypto::SeedExpander &prg, const Block &seed,
       const std::vector<unsigned> &arities)
{
    GgmSumLayout layout = GgmSumLayout::of(arities);
    GgmScratch scratch;
    std::vector<Block> flat(layout.total);

    Expansion out;
    out.leaves.resize(layout.leaves);
    ggmExpandInto(prg, seed, layout, scratch, out.leaves.data(),
                  flat.data(), &out.leafSum);

    out.levelSums.resize(arities.size());
    for (size_t lvl = 0; lvl < arities.size(); ++lvl)
        out.levelSums[lvl].assign(flat.begin() + layout.offset[lvl],
                                  flat.begin() + layout.offset[lvl] +
                                      arities[lvl]);
    return out;
}

std::vector<Block>
reconstruct(crypto::SeedExpander &prg, size_t alpha,
            const std::vector<unsigned> &arities,
            const std::vector<std::vector<Block>> &known_sums)
{
    GgmSumLayout layout = GgmSumLayout::of(arities);
    std::vector<Block> flat(layout.total);
    for (size_t lvl = 0; lvl < arities.size(); ++lvl)
        std::copy(known_sums[lvl].begin(), known_sums[lvl].end(),
                  flat.begin() + layout.offset[lvl]);

    GgmScratch scratch;
    std::vector<Block> leaves(layout.leaves);
    ggmReconstructInto(prg, alpha, layout, flat.data(), scratch,
                       leaves.data());
    return leaves;
}

TEST(TreeAritiesTest, UniformAndMixedRadix)
{
    EXPECT_EQ(treeArities(4096, 2), std::vector<unsigned>(12, 2));
    EXPECT_EQ(treeArities(4096, 4), std::vector<unsigned>(6, 4));
    // 8192 = 2 * 4^6: one binary level on top.
    std::vector<unsigned> expect8192{2, 4, 4, 4, 4, 4, 4};
    EXPECT_EQ(treeArities(8192, 4), expect8192);
    // 32-ary over 1024 leaves = 2 levels of 32.
    EXPECT_EQ(treeArities(1024, 32), std::vector<unsigned>(2, 32));
    // 2048 with 32-ary: 2048 = 2 * 32^2.
    std::vector<unsigned> expect2048{2, 32, 32};
    EXPECT_EQ(treeArities(2048, 32), expect2048);
}

TEST(TreeAritiesTest, ProductAlwaysMatchesLeafCount)
{
    for (unsigned m : {2u, 4u, 8u, 16u, 32u}) {
        for (size_t lg = 1; lg <= 14; ++lg) {
            size_t leaves = size_t(1) << lg;
            if (leaves < m && leaves < 2)
                continue;
            auto arities = treeArities(leaves, m);
            size_t prod = 1;
            for (unsigned a : arities)
                prod *= a;
            EXPECT_EQ(prod, leaves) << "m=" << m << " leaves=" << leaves;
        }
    }
}

TEST(AlphaDigitsTest, MixedRadixDecomposition)
{
    // arities [2, 4]: index = d0*4 + d1.
    std::vector<unsigned> arities{2, 4};
    auto d = alphaDigits(6, arities); // 6 = 1*4 + 2
    EXPECT_EQ(d[0], 1u);
    EXPECT_EQ(d[1], 2u);
    d = alphaDigits(0, arities);
    EXPECT_EQ(d[0], 0u);
    EXPECT_EQ(d[1], 0u);
    d = alphaDigits(7, arities);
    EXPECT_EQ(d[0], 1u);
    EXPECT_EQ(d[1], 3u);
}

TEST(GgmExpandTest, SumsAndLeafSumConsistent)
{
    auto prg = crypto::makeTreeExpander(PrgKind::ChaCha8, 4);
    auto arities = treeArities(64, 4);
    Expansion exp = expand(*prg, Block::fromUint64(5), arities);

    ASSERT_EQ(exp.leaves.size(), 64u);
    ASSERT_EQ(exp.levelSums.size(), 3u);

    // Last level sums: XOR of leaves by child-slot residue.
    std::vector<Block> slot(4, Block::zero());
    Block total = Block::zero();
    for (size_t j = 0; j < exp.leaves.size(); ++j) {
        slot[j % 4] ^= exp.leaves[j];
        total ^= exp.leaves[j];
    }
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(exp.levelSums.back()[c], slot[c]);
    EXPECT_EQ(exp.leafSum, total);
}

struct GgmCase
{
    PrgKind kind;
    unsigned arity;
    size_t leaves;
};

class GgmParamTest : public ::testing::TestWithParam<GgmCase>
{};

TEST_P(GgmParamTest, ReconstructionMatchesExceptAlpha)
{
    const auto [kind, arity, leaves] = GetParam();
    auto arities = treeArities(leaves, arity);

    auto sender_prg = crypto::makeTreeExpander(kind, arity);
    auto receiver_prg = crypto::makeTreeExpander(kind, arity);
    Rng rng(1234);

    Block seed = rng.nextBlock();
    Expansion exp = expand(*sender_prg, seed, arities);

    // Exercise alphas at the edges and a few random interior points.
    std::vector<size_t> alphas{0, leaves - 1, leaves / 2};
    for (int i = 0; i < 3; ++i)
        alphas.push_back(rng.nextBelow(leaves));

    for (size_t alpha : alphas) {
        // The receiver knows every level sum except at its digit; the
        // punctured entries are zeroed to prove they are not read.
        auto digits = alphaDigits(alpha, arities);
        auto known = exp.levelSums;
        for (size_t lvl = 0; lvl < known.size(); ++lvl)
            known[lvl][digits[lvl]] = Block::zero();

        std::vector<Block> rec =
            reconstruct(*receiver_prg, alpha, arities, known);
        ASSERT_EQ(rec.size(), leaves);
        for (size_t j = 0; j < leaves; ++j) {
            if (j == alpha) {
                EXPECT_EQ(rec[j], Block::zero());
            } else {
                EXPECT_EQ(rec[j], exp.leaves[j])
                    << "alpha=" << alpha << " leaf=" << j;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GgmParamTest,
    ::testing::Values(GgmCase{PrgKind::Aes, 2, 64},
                      GgmCase{PrgKind::Aes, 4, 256},
                      GgmCase{PrgKind::Aes, 4, 512},
                      GgmCase{PrgKind::ChaCha8, 2, 64},
                      GgmCase{PrgKind::ChaCha8, 4, 256},
                      GgmCase{PrgKind::ChaCha8, 4, 8192},
                      GgmCase{PrgKind::ChaCha8, 8, 512},
                      GgmCase{PrgKind::ChaCha8, 16, 256},
                      GgmCase{PrgKind::ChaCha8, 32, 2048},
                      GgmCase{PrgKind::ChaCha20, 4, 64}),
    [](const auto &info) {
        return prgKindName(info.param.kind) + "_m" +
               std::to_string(info.param.arity) + "_l" +
               std::to_string(info.param.leaves);
    });

TEST(GgmOpsTest, OperationCountsMatchFig7Model)
{
    // To produce l leaves, an m-ary tree expands (l-1)/(m-1) internal
    // nodes; AES costs m per node, ChaCha ceil(m/4) per node.
    const size_t leaves = 4096;
    struct Row
    {
        PrgKind kind;
        unsigned m;
        uint64_t expect;
    };
    const Row rows[] = {
        {PrgKind::Aes, 2, 2 * (leaves - 1)},        // 8190
        {PrgKind::Aes, 4, 4 * (leaves - 1) / 3},    // 5460
        {PrgKind::ChaCha8, 2, leaves - 1},          // 4095
        {PrgKind::ChaCha8, 4, (leaves - 1) / 3},    // 1365
    };
    for (const Row &row : rows) {
        auto prg = crypto::makeTreeExpander(row.kind, row.m);
        expand(*prg, Block::fromUint64(1), treeArities(leaves, row.m));
        EXPECT_EQ(prg->ops(), row.expect)
            << prgKindName(row.kind) << " m=" << row.m;
    }
    // Headline claim of Sec. 4: 4-ary ChaCha vs 2-ary AES is ~6x.
    EXPECT_NEAR(double(rows[0].expect) / double(rows[3].expect), 6.0, 0.01);
}

} // namespace
} // namespace ironman::ot
