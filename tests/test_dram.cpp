/**
 * @file
 * DDR4 rank-model tests: command-timing invariants, row-buffer
 * behaviour and achievable bandwidth under the Table 3 parameters.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/dram.h"

namespace ironman::sim {
namespace {

DramRankSim
makeSim(unsigned window = 16)
{
    return DramRankSim(DramTimings{}, DramGeometry{}, window);
}

std::vector<DramRequest>
sequentialTrace(size_t n, uint64_t start = 0)
{
    std::vector<DramRequest> t(n);
    for (size_t i = 0; i < n; ++i)
        t[i].addr = start + i * 64;
    return t;
}

std::vector<DramRequest>
randomTrace(size_t n, uint64_t span_bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<DramRequest> t(n);
    for (size_t i = 0; i < n; ++i)
        t[i].addr = rng.nextBelow(span_bytes / 64) * 64;
    return t;
}

TEST(DramTest, SingleReadLatency)
{
    auto sim = makeSim();
    DramStats s = sim.replay({DramRequest{0, false}});
    DramTimings t;
    // Closed bank: ACT at 0, RD at tRCD, data done at tRCD + tCL + tBL.
    EXPECT_EQ(s.cycles, t.tRCD + t.tCL + t.tBL);
    EXPECT_EQ(s.reads, 1u);
    EXPECT_EQ(s.activates, 1u);
    EXPECT_EQ(s.rowMisses, 1u);
    EXPECT_EQ(s.rowHits, 0u);
}

TEST(DramTest, RowHitCostsOnlyColumnTime)
{
    auto sim = makeSim();
    // Same line twice: second access is an open-row hit.
    std::vector<DramRequest> trace{{0, false}, {0, false}};
    DramStats s = sim.replay(trace);
    DramTimings t;
    EXPECT_EQ(s.rowHits, 1u);
    EXPECT_EQ(s.activates, 1u);
    // Second RD issues tCCD_L after the first (same bank group).
    EXPECT_EQ(s.cycles, t.tRCD + t.tCCD_L + t.tCL + t.tBL);
}

TEST(DramTest, SequentialStreamApproachesPeakBandwidth)
{
    auto sim = makeSim(32);
    const size_t n = 20000;
    DramStats s = sim.replay(sequentialTrace(n));
    DramTimings t;
    DramGeometry g;
    // Peak: one 64B line per tCCD_S = 4 cycles -> 19.2 GB/s at 1.2 GHz.
    double peak = 64.0 * t.clockHz / t.tCCD_S;
    double got = s.bandwidthBytesPerSec(t, g);
    EXPECT_GT(got, 0.85 * peak);
    EXPECT_LE(got, peak * 1.001);
    // Interleaved mapping: consecutive lines hit different bank groups,
    // so the stream is row-hit heavy once all banks are open.
    EXPECT_GT(s.rowHitRate(), 0.9);
}

TEST(DramTest, RandomStreamIsMuchSlower)
{
    auto sim = makeSim(32);
    const size_t n = 20000;
    // 512 MB span: essentially every access opens a new row.
    DramStats rnd = sim.replay(randomTrace(n, 512ull << 20, 9));
    DramStats seq = sim.replay(sequentialTrace(n));
    DramTimings t;
    DramGeometry g;
    EXPECT_LT(rnd.rowHitRate(), 0.05);
    double bw_rnd = rnd.bandwidthBytesPerSec(t, g);
    double bw_seq = seq.bandwidthBytesPerSec(t, g);
    // The irregular-access penalty motivating the paper's cache.
    EXPECT_LT(bw_rnd, 0.55 * bw_seq);
}

TEST(DramTest, FourActWindowEnforced)
{
    auto sim = makeSim(1); // in-order to make timing deterministic
    DramTimings t;
    DramGeometry g;
    // 5 accesses to 5 distinct banks, each opening a row.
    std::vector<DramRequest> trace;
    for (int i = 0; i < 5; ++i)
        trace.push_back({uint64_t(i) * 64, false});
    DramStats s = sim.replay(trace);
    // ACT times: 0, tRRD_S.. the 5th ACT waits for tFAW after the 1st;
    // its data lands no earlier than tFAW + tRCD + tCL + tBL.
    EXPECT_GE(s.cycles, t.tFAW + t.tRCD + t.tCL + t.tBL);
    EXPECT_EQ(s.activates, 5u);
}

TEST(DramTest, SameBankConflictPaysRowCycle)
{
    auto sim = makeSim(1);
    DramTimings t;
    DramGeometry g;
    // Two different rows of the same bank: bank stride is
    // banks * linesPerRow lines.
    uint64_t row_stride = uint64_t(g.banks()) * g.linesPerRow() * 64;
    std::vector<DramRequest> trace{{0, false}, {row_stride, false}};
    DramStats s = sim.replay(trace);
    EXPECT_EQ(s.precharges, 1u);
    EXPECT_EQ(s.activates, 2u);
    // Second ACT can start only after tRAS+tRP (=tRC) of the first.
    EXPECT_GE(s.cycles, t.tRC + t.tRCD + t.tCL + t.tBL);
}

TEST(DramTest, FrFcfsPrefersRowHits)
{
    // A row-conflict request followed by row hits: the windowed
    // scheduler should service hits first, shortening the makespan
    // versus a strict in-order replay.
    DramGeometry g;
    uint64_t conflict = uint64_t(g.banks()) * g.linesPerRow() * 64;
    std::vector<DramRequest> trace;
    trace.push_back({0, false});        // opens row 0 of bank 0
    trace.push_back({conflict, false}); // row conflict on bank 0
    for (int i = 1; i <= 6; ++i)
        trace.push_back({uint64_t(i) * 256 * 64, false});

    auto in_order = DramRankSim(DramTimings{}, g, 1).replay(trace);
    auto fr_fcfs = DramRankSim(DramTimings{}, g, 8).replay(trace);
    EXPECT_LE(fr_fcfs.cycles, in_order.cycles);
}

TEST(DramTest, StatsCountsAreExact)
{
    auto sim = makeSim();
    std::vector<DramRequest> trace = sequentialTrace(100);
    trace[7].write = true;
    trace[42].write = true;
    DramStats s = sim.replay(trace);
    EXPECT_EQ(s.reads, 98u);
    EXPECT_EQ(s.writes, 2u);
    EXPECT_EQ(s.rowHits + s.rowMisses, 100u);
}

TEST(DramTest, RefreshStealsBandwidthOnLongStreams)
{
    DramTimings with_ref; // defaults: tREFI=9360, tRFC=420
    DramTimings no_ref = with_ref;
    no_ref.tREFI = 0;
    DramGeometry g;

    // 80k sequential lines ~ 320k cycles: dozens of refresh windows.
    auto trace = sequentialTrace(80000);
    DramStats a = DramRankSim(with_ref, g, 32).replay(trace);
    DramStats b = DramRankSim(no_ref, g, 32).replay(trace);

    EXPECT_GT(a.refreshes, 20u);
    EXPECT_EQ(b.refreshes, 0u);
    EXPECT_GT(a.cycles, b.cycles);
    // The steady-state tax is ~tRFC/tREFI = 4.5%.
    double overhead = double(a.cycles) / double(b.cycles);
    EXPECT_GT(overhead, 1.02);
    EXPECT_LT(overhead, 1.10);
}

TEST(DramTest, RefreshClosesOpenRows)
{
    DramTimings t;
    DramGeometry g;
    DramRankSim sim(t, g, 1);
    // Two accesses to the same line, separated by > tREFI of idle
    // accesses to other banks... emulate by a long same-line stream:
    // after a refresh boundary the row must re-activate.
    std::vector<DramRequest> trace(40000, DramRequest{0, false});
    DramStats s = sim.replay(trace);
    // One ACT initially plus one per refresh that closed the row.
    EXPECT_EQ(s.activates, 1u + s.refreshes);
    EXPECT_GT(s.refreshes, 0u);
}

TEST(DramTest, BandwidthScalesWithWorkingSetLocality)
{
    // Shrinking the span raises the row-hit rate and bandwidth —
    // the effect index sorting exploits.
    auto sim = makeSim(32);
    DramTimings t;
    DramGeometry g;
    double bw_small =
        sim.replay(randomTrace(20000, 1ull << 20, 3))
            .bandwidthBytesPerSec(t, g);
    double bw_large =
        sim.replay(randomTrace(20000, 1ull << 29, 3))
            .bandwidthBytesPerSec(t, g);
    EXPECT_GT(bw_small, bw_large);
}

} // namespace
} // namespace ironman::sim
