/**
 * @file
 * Iteration-pipeline tests (invariant 10 of DESIGN.md): the pipelined
 * FERRET engine — LPN of iteration i overlapped with the SPCOT
 * transcript of iteration i+1, double-buffered transcript slots —
 * must produce BIT-IDENTICAL output to the unpipelined engine for
 * equal RNG seeds, across parameter sets (different tree shapes, LPN
 * sizes and PRGs), across multiple bootstrapped iterations, and
 * across worker counts.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"

namespace ironman::ot {
namespace {

struct RunOutput
{
    std::vector<Block> q;
    std::vector<Block> t;
    BitVec choice;
    Block delta;
};

RunOutput
runExtensions(const FerretParams &p, bool pipelined, int threads,
              int iterations, uint64_t seed)
{
    Rng dealer(seed);
    RunOutput out;
    out.delta = dealer.nextBlock();
    auto [bs, br] = dealBaseCots(dealer, out.delta, p.reservedCots());

    const size_t usable = p.usableOts();
    out.q.resize(usable * iterations);
    out.t.resize(usable * iterations);

    net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotSender sender(ch, p, out.delta, std::move(bs.q));
            sender.setThreads(threads);
            sender.setPipelined(pipelined);
            Rng rng(seed + 1);
            for (int it = 0; it < iterations; ++it)
                sender.extendInto(rng, out.q.data() + it * usable);
        },
        [&](net::Channel &ch) {
            FerretCotReceiver receiver(ch, p, std::move(br.choice),
                                       std::move(br.t));
            receiver.setThreads(threads);
            receiver.setPipelined(pipelined);
            Rng rng(seed + 2);
            BitVec c;
            for (int it = 0; it < iterations; ++it) {
                receiver.extendInto(rng, c, out.t.data() + it * usable);
                for (size_t i = 0; i < c.size(); ++i)
                    out.choice.pushBack(c.get(i));
            }
        });
    return out;
}

/** Parameter sets with different tree shapes, arities and PRGs. */
std::vector<FerretParams>
paramGrid()
{
    std::vector<FerretParams> grid;
    grid.push_back(tinyTestParams()); // 4-ary ChaCha8, l = 1024

    FerretParams a;
    a.name = "small-binary";
    a.n = 6000;
    a.k = 600;
    a.t = 10;
    a.arity = 2; // no mini trees: the binary-levels-only path
    a.prg = crypto::PrgKind::Aes;
    a.lpnSeed = 0x5151;
    grid.push_back(a);

    FerretParams b;
    b.name = "small-8ary";
    b.n = 9000;
    b.k = 800;
    b.t = 14;
    b.arity = 8; // wide mini trees, non-power-of-arity leaf count
    b.prg = crypto::PrgKind::ChaCha8;
    b.lpnSeed = 0x2323;
    grid.push_back(b);

    FerretParams c;
    c.name = "small-cc20";
    c.n = 12000;
    c.k = 1500;
    c.t = 24;
    c.arity = 4;
    c.prg = crypto::PrgKind::ChaCha20;
    c.lpnSeed = 0x7777;
    grid.push_back(c);
    return grid;
}

TEST(FerretPipelineTest, PipelinedBitIdenticalToUnpipelined)
{
    int set_idx = 0;
    for (const FerretParams &p : paramGrid()) {
        ASSERT_GT(p.usableOts(), 0u) << p.name;
        const uint64_t seed = 8800 + 17 * set_idx;
        RunOutput plain = runExtensions(p, false, 1, 3, seed);
        RunOutput piped = runExtensions(p, true, 1, 3, seed);

        EXPECT_EQ(plain.q, piped.q) << p.name;
        EXPECT_EQ(plain.t, piped.t) << p.name;
        EXPECT_EQ(plain.choice, piped.choice) << p.name;

        // And both are valid correlations across every iteration
        // (bootstrap included).
        for (size_t i = 0; i < piped.q.size(); ++i)
            ASSERT_EQ(piped.t[i],
                      piped.q[i] ^ scalarMul(piped.choice.get(i),
                                             piped.delta))
                << p.name << " index " << i;
        ++set_idx;
    }
}

TEST(FerretPipelineTest, PipelinedThreadCountIndependent)
{
    FerretParams p = tinyTestParams();
    RunOutput serial = runExtensions(p, true, 1, 3, 9100);
    RunOutput parallel = runExtensions(p, true, 4, 3, 9100);

    EXPECT_EQ(serial.q, parallel.q);
    EXPECT_EQ(serial.t, parallel.t);
    EXPECT_EQ(serial.choice, parallel.choice);
}

TEST(FerretPipelineTest, ModeFlipBetweenBatchesOfEngines)
{
    // Engines constructed fresh in either mode over the same dealt
    // base must agree with each other (the mode is an engine-local
    // execution strategy, not a protocol change).
    FerretParams p = tinyTestParams();
    RunOutput a = runExtensions(p, false, 2, 2, 9200);
    RunOutput b = runExtensions(p, true, 2, 2, 9200);
    EXPECT_EQ(a.q, b.q);
    EXPECT_EQ(a.t, b.t);
    EXPECT_EQ(a.choice, b.choice);
}

} // namespace
} // namespace ironman::ot
