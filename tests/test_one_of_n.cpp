/**
 * @file
 * 1-out-of-N OT and secure LUT evaluation tests (the table-lookup
 * protocol path of the PPML layer).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/one_of_n.h"
#include "ppml/secure_compute.h"

namespace ironman::ot {
namespace {

class OneOfNParamTest : public ::testing::TestWithParam<size_t>
{};

TEST_P(OneOfNParamTest, ReceiverGetsExactlyChosenMessage)
{
    const size_t n_msgs = GetParam();
    const size_t batch = 40;
    const unsigned bits = std::countr_zero(n_msgs);

    Rng rng(71);
    Block delta = rng.nextBlock();
    auto [cot_s, cot_r] = dealBaseCots(rng, delta, batch * bits);

    std::vector<Block> msgs = rng.nextBlocks(batch * n_msgs);
    std::vector<uint32_t> choices(batch);
    for (auto &c : choices)
        c = uint32_t(rng.nextBelow(n_msgs));

    crypto::Crhf crhf;
    std::vector<Block> got;
    net::runTwoParty(
        [&](net::Channel &ch) {
            Rng key_rng(72);
            uint64_t tweak = 1;
            oneOfNOtSend(ch, crhf, msgs.data(), n_msgs, batch, delta,
                         cot_s.q.data(), key_rng, tweak);
        },
        [&](net::Channel &ch) {
            uint64_t tweak = 1;
            got = oneOfNOtRecv(ch, crhf, choices, n_msgs, cot_r.choice,
                               0, cot_r.t.data(), tweak);
        });

    ASSERT_EQ(got.size(), batch);
    for (size_t e = 0; e < batch; ++e)
        EXPECT_EQ(got[e], msgs[e * n_msgs + choices[e]]) << "inst " << e;
}

INSTANTIATE_TEST_SUITE_P(Sizes, OneOfNParamTest,
                         ::testing::Values(2, 4, 16, 64, 256),
                         [](const auto &info) {
                             return "N" + std::to_string(info.param);
                         });

TEST(OneOfNTest, EveryIndexDecodableOnlyOnce)
{
    // For a single instance, sweep all choices and confirm the
    // receiver decodes its index (and that pads differ across
    // indices, i.e. the other ciphertexts stay masked).
    const size_t n_msgs = 8;
    for (uint32_t choice = 0; choice < n_msgs; ++choice) {
        Rng rng(80 + choice);
        Block delta = rng.nextBlock();
        auto [cot_s, cot_r] = dealBaseCots(rng, delta, 3);
        std::vector<Block> msgs = rng.nextBlocks(n_msgs);

        crypto::Crhf crhf;
        std::vector<Block> got;
        net::runTwoParty(
            [&](net::Channel &ch) {
                Rng key_rng(90);
                uint64_t tweak = 5;
                oneOfNOtSend(ch, crhf, msgs.data(), n_msgs, 1, delta,
                             cot_s.q.data(), key_rng, tweak);
            },
            [&](net::Channel &ch) {
                uint64_t tweak = 5;
                std::vector<uint32_t> choices{choice};
                got = oneOfNOtRecv(ch, crhf, choices, n_msgs,
                                   cot_r.choice, 0, cot_r.t.data(),
                                   tweak);
            });
        ASSERT_EQ(got[0], msgs[choice]) << "choice " << choice;
    }
}

} // namespace
} // namespace ironman::ot

namespace ironman::ppml {
namespace {

TEST(LutEvalTest, IdentityTable)
{
    constexpr unsigned kWidth = 16;
    const size_t n_entries = 64;
    const size_t batch = 100;

    Rng rng(100);
    std::vector<uint64_t> table(n_entries);
    for (size_t i = 0; i < n_entries; ++i)
        table[i] = i * 3 + 1;

    // Index shares mod N.
    std::vector<uint64_t> x(batch), x0(batch), x1(batch);
    for (size_t e = 0; e < batch; ++e) {
        x[e] = rng.nextBelow(n_entries);
        x0[e] = rng.nextBelow(n_entries);
        x1[e] = (x[e] - x0[e] + n_entries) & (n_entries - 1);
    }

    std::vector<uint64_t> y0, y1;
    ot::FerretParams params = ot::tinyTestParams();
    net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotEngine engine(ch, 0, params, 101);
            SecureCompute sc(ch, 0, engine, kWidth);
            y0 = sc.lutEval(x0, table);
        },
        [&](net::Channel &ch) {
            FerretCotEngine engine(ch, 1, params, 101);
            SecureCompute sc(ch, 1, engine, kWidth);
            y1 = sc.lutEval(x1, table);
        });

    for (size_t e = 0; e < batch; ++e) {
        uint64_t got = (y0[e] + y1[e]) & 0xffff;
        EXPECT_EQ(got, table[x[e]]) << "x=" << x[e];
    }
}

TEST(LutEvalTest, QuantizedGeluTable)
{
    // The SiRNN/Bolt pattern: GELU on int8 inputs via a 256-entry LUT
    // in 8.8 fixed point.
    constexpr unsigned kWidth = 32;
    const size_t n_entries = 256;

    auto gelu = [](double v) {
        return 0.5 * v * (1.0 + std::erf(v / std::sqrt(2.0)));
    };
    std::vector<uint64_t> table(n_entries);
    for (size_t i = 0; i < n_entries; ++i) {
        double v = (double(int(i) - 128)) / 16.0; // [-8, 8)
        table[i] =
            uint64_t(int64_t(std::lround(gelu(v) * 256.0))) & 0xffffffff;
    }

    const size_t batch = 64;
    Rng rng(102);
    std::vector<uint64_t> x(batch), x0(batch), x1(batch);
    for (size_t e = 0; e < batch; ++e) {
        x[e] = rng.nextBelow(n_entries);
        x0[e] = rng.nextBelow(n_entries);
        x1[e] = (x[e] - x0[e] + n_entries) & (n_entries - 1);
    }

    std::vector<uint64_t> y0, y1;
    size_t cots = 0;
    ot::FerretParams params = ot::tinyTestParams();
    net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotEngine engine(ch, 0, params, 103);
            SecureCompute sc(ch, 0, engine, kWidth);
            y0 = sc.lutEval(x0, table);
            cots = sc.cotsConsumed();
        },
        [&](net::Channel &ch) {
            FerretCotEngine engine(ch, 1, params, 103);
            SecureCompute sc(ch, 1, engine, kWidth);
            y1 = sc.lutEval(x1, table);
        });

    for (size_t e = 0; e < batch; ++e) {
        uint64_t got = (y0[e] + y1[e]) & 0xffffffff;
        EXPECT_EQ(got, table[x[e]]) << "x=" << x[e];
    }
    // log2(256) = 8 COTs per element.
    EXPECT_EQ(cots, batch * 8);
}

} // namespace
} // namespace ironman::ppml
