/**
 * @file
 * Cross-party request tracing (common/trace.h + the kInferFlagTrace
 * handshake extension) and its guardrails:
 *
 *  - wire negotiation matrix: a v2 hello with the trace flag carries
 *    the 64-bit id + sampled bit and the accept returns the server
 *    clock sample; v1 and flagless v2 peers exchange byte-identical
 *    transcripts with no trailers (extended invariant 17);
 *  - fuzzed trace ids (0, all-ones, random) neither change a single
 *    output-share bit versus the in-process reference nor kill the
 *    server — trace context is observability, never protocol input;
 *  - recording on/off does not change online wire bytes for the same
 *    request stream;
 *  - the Chrome-trace export is structurally sound: spans nest
 *    (inner [ts, ts+dur] inside outer), instants carry thread scope,
 *    and the client's submit->reconstruct request span encloses the
 *    server-side layer spans once merged on the handshake offset.
 *
 * The export's JSON well-formedness is additionally validated by the
 * CI traced-loopback smoke with `python3 -m json.tool`.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/trace.h"
#include "infer/infer_client.h"
#include "infer/infer_server.h"
#include "infer/wire.h"
#include "net/channel.h"
#include "ot/ferret_params.h"
#include "ppml/mlp_runner.h"
#include "ppml/model_zoo.h"

namespace ironman::infer {
namespace {

using ppml::MlpModelSpec;

constexpr uint64_t kShareSeed = 0x517a9e;
constexpr uint64_t kSetupSeed = 4242;

// ---------------------------------------------------------------------------
// Wire negotiation matrix
// ---------------------------------------------------------------------------

TEST(TraceWireTest, V2HelloCarriesTraceContext)
{
    net::MemoryDuplex duplex;
    InferHello h;
    h.modelId = ppml::inferenceZoo().front().id;
    h.width = 32;
    h.batch = 1;
    h.supply = SupplyKind::Engine;
    h.params = svc::WireParams::of(ot::tinyTestParams());
    h.flags = kInferFlagTrace;
    h.traceId = 0xabcdef0123456789ULL;
    h.traceSampled = 0;
    sendInferHello(duplex.a(), h);

    InferHello got;
    ASSERT_EQ(recvInferHello(duplex.b(), &got), InferStatus::Ok);
    EXPECT_EQ(got.flags, kInferFlagTrace);
    EXPECT_EQ(got.traceId, h.traceId);
    EXPECT_EQ(got.traceSampled, 0);

    InferAccept reply;
    reply.status = InferStatus::Ok;
    reply.depth = 1;
    reply.flags = kInferFlagTrace;
    reply.sessionId = 7;
    reply.serverClockUs = 123456789;
    sendInferAccept(duplex.b(), reply);
    const InferAccept a = recvInferAccept(duplex.a());
    EXPECT_EQ(a.flags, kInferFlagTrace);
    EXPECT_EQ(a.serverClockUs, 123456789u);
}

TEST(TraceWireTest, FlaglessAndV1HellosHaveNoTrailer)
{
    // Extended invariant 17: without the negotiated bit, the trace
    // fields leave NO trace on the wire — a flagless hello is
    // byte-identical whether or not the struct carries an id, so old
    // peers parse the same transcript they always did.
    auto helloBytes = [](uint64_t trace_id, uint16_t flags,
                         uint8_t version) {
        net::MemoryDuplex duplex;
        InferHello h;
        h.version = version;
        h.modelId = ppml::inferenceZoo().front().id;
        h.width = 32;
        h.batch = 1;
        h.supply = SupplyKind::Engine;
        h.params = svc::WireParams::of(ot::tinyTestParams());
        h.flags = flags;
        h.traceId = trace_id;
        sendInferHello(duplex.a(), h);
        return duplex.a().bytesSent();
    };
    EXPECT_EQ(helloBytes(0, 0, kInferWireVersion),
              helloBytes(~uint64_t(0), 0, kInferWireVersion));
    EXPECT_EQ(helloBytes(0, 0, kInferWireVersionV1),
              helloBytes(0x1234, 0, kInferWireVersionV1));
    // And the flagged hello is strictly longer: the trailer exists
    // only when negotiated.
    EXPECT_GT(helloBytes(1, kInferFlagTrace, kInferWireVersion),
              helloBytes(1, 0, kInferWireVersion));

    // A v1 receiver parse never surfaces trace fields.
    net::MemoryDuplex duplex;
    InferHello h;
    h.version = kInferWireVersionV1;
    h.modelId = ppml::inferenceZoo().front().id;
    h.width = 32;
    h.batch = 1;
    h.supply = SupplyKind::Engine;
    h.params = svc::WireParams::of(ot::tinyTestParams());
    h.traceId = 0x9999;
    sendInferHello(duplex.a(), h);
    InferHello got;
    ASSERT_EQ(recvInferHello(duplex.b(), &got), InferStatus::Ok);
    EXPECT_EQ(got.traceId, 0u);
    EXPECT_EQ(got.flags & kInferFlagTrace, 0);
}

TEST(TraceWireTest, FlaglessAcceptHasNoClockTrailer)
{
    auto acceptBytes = [](uint16_t flags) {
        net::MemoryDuplex duplex;
        InferAccept a;
        a.status = InferStatus::Ok;
        a.depth = 1;
        a.flags = flags;
        a.sessionId = 1;
        a.serverClockUs = 0xdeadbeef;
        sendInferAccept(duplex.a(), a);
        return duplex.a().bytesSent();
    };
    EXPECT_GT(acceptBytes(kInferFlagTrace), acceptBytes(0));
}

// ---------------------------------------------------------------------------
// Service negotiation + fuzzed ids vs. output-share bit-identity
// ---------------------------------------------------------------------------

TEST(TraceServiceTest, NegotiationMatrixOverLoopback)
{
    InferServer server;
    const uint16_t port = server.listenTcp(0);
    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-16x8x4");

    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = 32;
    opt.batch = 1;
    opt.supply = SupplyKind::Engine;
    opt.setupSeed = kSetupSeed;

    {
        // No trace flag: nothing negotiated.
        auto c = InferClient::connectTcp("127.0.0.1", port, opt);
        EXPECT_FALSE(c->traceNegotiated());
        EXPECT_EQ(c->traceId(), 0u);
        c->close();
    }
    {
        // Trace flag: id generated, server clock echoed, offset
        // measured. Loopback + one shared steady clock => the offset
        // is bounded by the RTT, not by wall-clock skew.
        opt.traceWire = true;
        auto c = InferClient::connectTcp("127.0.0.1", port, opt);
        EXPECT_TRUE(c->traceNegotiated());
        EXPECT_NE(c->traceId(), 0u);
        EXPECT_LE(std::llabs((long long)c->peerClockOffsetUs()),
                  (long long)c->measuredRttUs() + 1000);
        c->close();
    }
    {
        // Explicit id propagates verbatim.
        opt.traceId = 0x5ca1ab1e;
        auto c = InferClient::connectTcp("127.0.0.1", port, opt);
        EXPECT_TRUE(c->traceNegotiated());
        EXPECT_EQ(c->traceId(), 0x5ca1ab1eULL);
        c->close();
    }
    server.stop();
    EXPECT_EQ(server.sessionsServed(), 3u);
}

TEST(TraceServiceTest, FuzzedTraceIdsNeverChangeOutputShares)
{
    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-16x8x4");
    const std::vector<std::vector<int64_t>> reqs = {
        ppml::sampleMlpInput(spec, 9000, 2),
        ppml::sampleMlpInput(spec, 9001, 2)};
    const ppml::LocalMlpResult local = ppml::runLocalMlpInference(
        spec, 32, reqs, kShareSeed, kSetupSeed, ot::tinyTestParams());

    InferServer server;
    const uint16_t port = server.listenTcp(0);

    const uint64_t fuzz_ids[] = {0, ~uint64_t(0), 0x8000000000000000ULL,
                                 0xdb91f6e49c3a5512ULL};
    for (const uint64_t id : fuzz_ids) {
        InferClient::Options opt;
        opt.modelId = spec.id;
        opt.width = 32;
        opt.batch = 2;
        opt.supply = SupplyKind::Engine;
        opt.setupSeed = kSetupSeed;
        opt.shareSeed = kShareSeed;
        opt.traceWire = true;
        opt.traceId = id;
        opt.traceSampled = (id & 1) != 0;
        auto c = InferClient::connectTcp("127.0.0.1", port, opt);
        ASSERT_TRUE(c->traceNegotiated());
        for (size_t r = 0; r < reqs.size(); ++r) {
            // THE guardrail: outputs bit-identical to the untraced
            // in-process path for every fuzzed id.
            EXPECT_EQ(c->infer(reqs[r]), local.outputs[r])
                << "trace id " << id << " request " << r;
        }
        c->close();
    }
    server.stop();
    // The server survived every fuzzed id.
    EXPECT_EQ(server.sessionsServed(),
              sizeof(fuzz_ids) / sizeof(fuzz_ids[0]));
}

TEST(TraceServiceTest, RecordingOnOffKeepsWireBytesIdentical)
{
    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-12x6x3");
    const std::vector<int64_t> req = ppml::sampleMlpInput(spec, 42, 1);

    auto runOnce = [&](bool record) {
        trace::resetForTest();
        trace::setEnabled(record);
        InferServer server;
        const uint16_t port = server.listenTcp(0);
        InferClient::Options opt;
        opt.modelId = spec.id;
        opt.width = 32;
        opt.batch = 1;
        opt.supply = SupplyKind::Engine;
        opt.setupSeed = kSetupSeed;
        opt.shareSeed = kShareSeed;
        opt.traceWire = true;
        auto c = InferClient::connectTcp("127.0.0.1", port, opt);
        (void)c->infer(req);
        const uint64_t online = c->onlineBytesSent();
        c->close();
        server.stop();
        return online;
    };
    const uint64_t bytes_recording = runOnce(true);
    const uint64_t bytes_off = runOnce(false);
    trace::setEnabled(false);
    EXPECT_GT(bytes_off, 0u);
    // Exact wire-byte parity: recording is a local ring write, never
    // a protocol participant.
    EXPECT_EQ(bytes_recording, bytes_off);
}

// ---------------------------------------------------------------------------
// Export structure
// ---------------------------------------------------------------------------

/** First `"key":<num>` after @p from in @p doc (-1 when absent). */
long long
jsonNum(const std::string &doc, const std::string &key, size_t from)
{
    const std::string needle = "\"" + key + "\":";
    const size_t pos = doc.find(needle, from);
    if (pos == std::string::npos)
        return -1;
    return std::atoll(doc.c_str() + pos + needle.size());
}

TEST(TraceExportTest, SpansNestAndDocumentIsStructured)
{
    trace::resetForTest();
    trace::setEnabled(true);
    trace::setParty(0);
    trace::setContext(0x77, true);
    trace::setThreadLabel("test-thread");
    {
        trace::Span outer("outer_span", "test", 1, 100);
        {
            trace::Span inner("inner_span", "test", 2, 50);
            trace::instant("marker", "test", 3, 7);
        }
    }
    const std::string doc = trace::exportChromeTrace();
    trace::setEnabled(false);

    // Structural frame.
    EXPECT_EQ(doc.find("{\n\"traceEvents\":[\n"), 0u) << doc;
    EXPECT_NE(doc.find("\"schema\":\"ironman.trace.v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"test-thread\""), std::string::npos);
    EXPECT_NE(doc.find("\"ironman party 0\""), std::string::npos);

    // The instant is thread-scoped and tagged.
    const size_t marker = doc.find("\"name\":\"marker\"");
    ASSERT_NE(marker, std::string::npos) << doc;
    EXPECT_NE(doc.find("\"s\":\"t\"", marker), std::string::npos);

    // The propagated context rides every event.
    EXPECT_NE(doc.find("\"trace_id\":\"0000000000000077\""),
              std::string::npos)
        << doc;

    // Nesting: inner's [ts, ts+dur] lies within outer's.
    const size_t o = doc.find("\"name\":\"outer_span\"");
    const size_t i = doc.find("\"name\":\"inner_span\"");
    ASSERT_NE(o, std::string::npos);
    ASSERT_NE(i, std::string::npos);
    const long long o_ts = jsonNum(doc, "ts", o);
    const long long o_dur = jsonNum(doc, "dur", o);
    const long long i_ts = jsonNum(doc, "ts", i);
    const long long i_dur = jsonNum(doc, "dur", i);
    ASSERT_GE(o_ts, 0);
    ASSERT_GE(i_ts, 0);
    EXPECT_LE(o_ts, i_ts);
    EXPECT_GE(o_ts + o_dur, i_ts + i_dur);
}

TEST(TraceExportTest, ServedSessionRetainsMergeableTimeline)
{
    // One traced loopback request, recording on: the client's
    // "request" span must enclose the server's per-layer spans once
    // both rings land in the same process-wide export (loopback: one
    // clock, offset ~0).
    trace::resetForTest();
    trace::setEnabled(true);
    trace::setParty(0);

    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-16x8x4");
    InferServer server;
    const uint16_t port = server.listenTcp(0);
    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = 32;
    opt.batch = 1;
    opt.supply = SupplyKind::Engine;
    opt.setupSeed = kSetupSeed;
    opt.traceWire = true;
    auto c = InferClient::connectTcp("127.0.0.1", port, opt);
    (void)c->infer(ppml::sampleMlpInput(spec, 7, 1));
    c->close();
    server.stop();

    const std::string doc = trace::exportChromeTrace();
    trace::setEnabled(false);

    const size_t req = doc.find("\"name\":\"request\"");
    const size_t dense = doc.find("\"name\":\"dense0\"");
    const size_t relu = doc.find("\"name\":\"relu0\"");
    ASSERT_NE(req, std::string::npos) << doc;
    ASSERT_NE(dense, std::string::npos) << doc;
    ASSERT_NE(relu, std::string::npos) << doc;
    const long long req_ts = jsonNum(doc, "ts", req);
    const long long req_dur = jsonNum(doc, "dur", req);
    const long long dense_ts = jsonNum(doc, "ts", dense);
    const long long dense_dur = jsonNum(doc, "dur", dense);
    // Client request span encloses the server's layer work.
    EXPECT_LE(req_ts, dense_ts);
    EXPECT_GE(req_ts + req_dur, dense_ts + dense_dur);

    // The retained per-session export (the /trace endpoint body)
    // contains the server-side session span.
    const std::string retained = trace::lastRetainedExport();
    EXPECT_NE(retained.find("\"name\":\"session\""),
              std::string::npos);
}

} // namespace
} // namespace ironman::infer
