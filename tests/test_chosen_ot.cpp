/**
 * @file
 * Chosen 1-of-2 OT from COT: the receiver always decodes m_c and the
 * untaken ciphertext never decodes to the other message under the
 * receiver's pad (invariant 6 of DESIGN.md).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/crhf.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/chosen_ot.h"

namespace ironman::ot {
namespace {

TEST(ChosenOtTest, ReceiverGetsChosenMessage)
{
    const size_t n = 100;
    Rng rng(31);
    Block delta = rng.nextBlock();
    auto [cot_s, cot_r] = dealBaseCots(rng, delta, n);

    std::vector<Block> m0 = rng.nextBlocks(n);
    std::vector<Block> m1 = rng.nextBlocks(n);
    BitVec choices = rng.nextBits(n);
    std::vector<Block> got(n);

    crypto::Crhf crhf;
    net::runTwoParty(
        [&](net::Channel &ch) {
            ChosenOtScratch scratch;
            chosenOtSend(ch, crhf, m0.data(), m1.data(), n, delta,
                         cot_s.q.data(), 1000, scratch);
        },
        [&](net::Channel &ch) {
            ChosenOtScratch scratch;
            chosenOtRecv(ch, crhf, choices, cot_r.choice, 0,
                         cot_r.t.data(), n, got.data(), 1000, scratch);
        });

    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(got[i], choices.get(i) ? m1[i] : m0[i]) << "i=" << i;
}

TEST(ChosenOtTest, UntakenMessageStaysMasked)
{
    const size_t n = 64;
    Rng rng(32);
    Block delta = rng.nextBlock();
    auto [cot_s, cot_r] = dealBaseCots(rng, delta, n);

    std::vector<Block> m0 = rng.nextBlocks(n);
    std::vector<Block> m1 = rng.nextBlocks(n);
    BitVec choices = rng.nextBits(n);
    std::vector<Block> got(n);
    std::vector<Block> wrong(n);

    crypto::Crhf crhf;
    net::runTwoParty(
        [&](net::Channel &ch) {
            ChosenOtScratch scratch;
            chosenOtSend(ch, crhf, m0.data(), m1.data(), n, delta,
                         cot_s.q.data(), 0, scratch);
        },
        [&](net::Channel &ch) {
            ChosenOtScratch scratch;
            chosenOtRecv(ch, crhf, choices, cot_r.choice, 0,
                         cot_r.t.data(), n, got.data(), 0, scratch);
        });

    for (size_t i = 0; i < n; ++i) {
        // Sanity: the chosen message decodes.
        EXPECT_EQ(got[i], choices.get(i) ? m1[i] : m0[i]);
        // The unchosen ciphertext is padded with H(q ^ (1-b)*Delta),
        // which the receiver's pad H(t) = H(q ^ b*Delta) cannot strip.
        bool b = cot_r.choice.get(i);
        Block pad_recv = crhf.hash(cot_r.t[i], i);
        Block pad_other =
            crhf.hash(cot_s.q[i] ^ scalarMul(!b, delta), i);
        EXPECT_NE(pad_recv, pad_other) << "i=" << i;
    }
}

TEST(ChosenOtTest, ConsumesCotsAtOffset)
{
    const size_t total = 50, used = 20, offset = 17;
    Rng rng(33);
    Block delta = rng.nextBlock();
    auto [cot_s, cot_r] = dealBaseCots(rng, delta, total);

    std::vector<Block> m0 = rng.nextBlocks(used);
    std::vector<Block> m1 = rng.nextBlocks(used);
    BitVec choices = rng.nextBits(used);
    std::vector<Block> got(used);

    crypto::Crhf crhf;
    net::runTwoParty(
        [&](net::Channel &ch) {
            ChosenOtScratch scratch;
            chosenOtSend(ch, crhf, m0.data(), m1.data(), used, delta,
                         cot_s.q.data() + offset, 7, scratch);
        },
        [&](net::Channel &ch) {
            ChosenOtScratch scratch;
            chosenOtRecv(ch, crhf, choices, cot_r.choice, offset,
                         cot_r.t.data() + offset, used, got.data(), 7,
                         scratch);
        });

    for (size_t i = 0; i < used; ++i)
        EXPECT_EQ(got[i], choices.get(i) ? m1[i] : m0[i]);
}

TEST(ChosenOtTest, CotCursorGuardsExhaustion)
{
    CotCursor cursor(10);
    EXPECT_EQ(cursor.take(4), 0u);
    EXPECT_EQ(cursor.take(6), 4u);
    EXPECT_EQ(cursor.remaining(), 0u);
    EXPECT_DEATH(cursor.take(1), "exhausted");
}

TEST(BaseCotTest, DealerCorrelationHolds)
{
    Rng rng(34);
    Block delta = rng.nextBlock();
    auto [s, r] = dealBaseCots(rng, delta, 1000);
    EXPECT_TRUE(verifyCotCorrelation(s, r));
    EXPECT_EQ(s.size(), 1000u);
    // Choice bits are balanced-ish.
    EXPECT_NEAR(double(r.choice.popcount()) / 1000.0, 0.5, 0.1);
}

} // namespace
} // namespace ironman::ot
