/**
 * @file
 * Unit tests for the common substrate: Block, BitVec, Rng, hex.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/hexutil.h"
#include "common/rng.h"

namespace ironman {
namespace {

TEST(BlockTest, XorAndEquality)
{
    Block a(0x0123456789abcdefULL, 0xfedcba9876543210ULL);
    Block b(0x1111111111111111ULL, 0x2222222222222222ULL);
    Block c = a ^ b;
    EXPECT_NE(c, a);
    EXPECT_EQ(c ^ b, a);
    EXPECT_EQ(c ^ a, b);
    EXPECT_EQ(a ^ a, Block::zero());
    EXPECT_TRUE((a ^ a).isZero());
}

TEST(BlockTest, ByteRoundTrip)
{
    Block a(0x0123456789abcdefULL, 0xfedcba9876543210ULL);
    uint8_t bytes[16];
    a.toBytes(bytes);
    EXPECT_EQ(Block::fromBytes(bytes), a);
    // lo lane serializes first, little-endian.
    EXPECT_EQ(bytes[0], 0x10);
    EXPECT_EQ(bytes[7], 0xfe);
    EXPECT_EQ(bytes[8], 0xef);
    EXPECT_EQ(bytes[15], 0x01);
}

TEST(BlockTest, BitAccess)
{
    Block b = Block::zero();
    b.setBit(0, true);
    b.setBit(63, true);
    b.setBit(64, true);
    b.setBit(127, true);
    EXPECT_TRUE(b.getBit(0));
    EXPECT_TRUE(b.getBit(63));
    EXPECT_TRUE(b.getBit(64));
    EXPECT_TRUE(b.getBit(127));
    EXPECT_FALSE(b.getBit(1));
    EXPECT_FALSE(b.getBit(100));
    EXPECT_EQ(b.lo, 0x8000000000000001ULL);
    EXPECT_EQ(b.hi, 0x8000000000000001ULL);
}

TEST(BlockTest, ScalarMul)
{
    Block d(0xdeadbeefULL, 0x12345678ULL);
    EXPECT_EQ(scalarMul(true, d), d);
    EXPECT_EQ(scalarMul(false, d), Block::zero());
}

TEST(BlockTest, LsbHelpers)
{
    Block b(0, 0);
    EXPECT_FALSE(b.lsb());
    EXPECT_TRUE(b.withLsb(true).lsb());
    Block c(0, 0xff);
    EXPECT_TRUE(c.lsb());
    EXPECT_FALSE(c.withLsb(false).lsb());
    EXPECT_EQ(c.withLsb(false).lo, 0xfeULL);
}

TEST(BlockTest, HexFormat)
{
    Block a(0x0123456789abcdefULL, 0xfedcba9876543210ULL);
    EXPECT_EQ(a.toHex(), "0123456789abcdeffedcba9876543210");
    EXPECT_EQ(Block::zero().toHex(), std::string(32, '0'));
}

TEST(BitVecTest, BasicSetGet)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_EQ(v.popcount(), 0u);
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 3u);
    v.flip(0);
    EXPECT_FALSE(v.get(0));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVecTest, AllOnesConstructorTrimsTail)
{
    BitVec v(70, true);
    EXPECT_EQ(v.popcount(), 70u);
    BitVec w(70, true);
    EXPECT_EQ(v, w);
}

TEST(BitVecTest, PushBackAndResize)
{
    BitVec v;
    for (int i = 0; i < 100; ++i)
        v.pushBack(i % 3 == 0);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v.popcount(), 34u);
    v.resize(10);
    EXPECT_EQ(v.size(), 10u);
    EXPECT_EQ(v.popcount(), 4u); // 0,3,6,9
    v.resize(100);
    EXPECT_EQ(v.popcount(), 4u); // new bits zero
}

TEST(BitVecTest, AssignRangeMatchesBitLoop)
{
    Rng rng(8);
    BitVec src = rng.nextBits(517);
    // Unaligned offsets and lengths, including word boundaries.
    for (size_t offset : {0ul, 1ul, 63ul, 64ul, 65ul, 130ul}) {
        for (size_t n : {0ul, 1ul, 64ul, 127ul, 128ul, 300ul}) {
            BitVec got;
            got.assignRange(src, offset, n);
            ASSERT_EQ(got.size(), n);
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(got.get(i), src.get(offset + i))
                    << "offset " << offset << " n " << n << " i " << i;
            EXPECT_EQ(got.popcount(),
                      [&] {
                          size_t c = 0;
                          for (size_t i = 0; i < n; ++i)
                              c += src.get(offset + i);
                          return c;
                      }()); // tail bits beyond n stay clear
        }
    }
}

TEST(BitVecTest, AppendRangeMatchesPushBack)
{
    Rng rng(9);
    BitVec src = rng.nextBits(400);
    BitVec fast, slow;
    // Appends of varying sizes leave the cursor at every alignment.
    for (size_t n : {1ul, 63ul, 64ul, 65ul, 7ul, 200ul, 0ul, 70ul}) {
        size_t offset = (n * 3) % 100;
        fast.appendRange(src, offset, n);
        for (size_t i = 0; i < n; ++i)
            slow.pushBack(src.get(offset + i));
        ASSERT_EQ(fast, slow) << "after append of " << n;
    }
}

TEST(BitVecTest, ZeroAllClearsWithoutResizing)
{
    Rng rng(10);
    BitVec v = rng.nextBits(130);
    v.zeroAll();
    EXPECT_EQ(v.size(), 130u);
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVecTest, XorIsGf2Addition)
{
    Rng rng(7);
    BitVec a = rng.nextBits(257);
    BitVec b = rng.nextBits(257);
    BitVec c = a;
    c ^= b;
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(c.get(i), a.get(i) ^ b.get(i));
    c ^= b;
    EXPECT_EQ(c, a);
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextUint64(), b.nextUint64());
    bool any_diff = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        any_diff |= (a2.nextUint64() != c.nextUint64());
    EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowInRangeAndCoversValues)
{
    Rng rng(1);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = rng.nextBelow(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BitsRoughlyBalanced)
{
    Rng rng(2);
    BitVec bits = rng.nextBits(1 << 16);
    double frac = double(bits.popcount()) / bits.size();
    EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(RngTest, SampleDistinct)
{
    Rng rng(3);
    auto v = rng.sampleDistinct(100, 50);
    std::unordered_set<uint64_t> s(v.begin(), v.end());
    EXPECT_EQ(s.size(), 50u);
    for (uint64_t x : v)
        EXPECT_LT(x, 100u);
}

TEST(HexTest, RoundTrip)
{
    std::vector<uint8_t> data = {0x00, 0x01, 0xab, 0xff, 0x7e};
    std::string hex = hexEncode(data.data(), data.size());
    EXPECT_EQ(hex, "0001abff7e");
    EXPECT_EQ(hexDecode(hex), data);
    EXPECT_EQ(hexDecode("00 01 ab ff 7e"), data);
    EXPECT_EQ(hexDecode("0001ABFF7E"), data);
}

} // namespace
} // namespace ironman
