/**
 * @file
 * Cross-module property tests and failure injection.
 *
 * - Randomized Ferret parameter sweep: the COT correlation must hold
 *   for arbitrary (n, k, t, arity, prg) combinations, not just the
 *   published sets.
 * - Failure injection: corrupting base COTs or tampering with wire
 *   bytes must break the output correlation (semi-honest protocols
 *   do not *detect* tampering, but the correlation check used by
 *   every consumer must expose it — nothing silently "heals").
 * - Channel fuzz: arbitrary segmentation of sends/recvs is lossless.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ggm_tree.h"
#include "ot/spcot.h"

namespace ironman::ot {
namespace {

// ---------------------------------------------------------------------------
// Randomized Ferret parameter sweep
// ---------------------------------------------------------------------------

struct SweepCase
{
    size_t n, k, t;
    unsigned arity;
    crypto::PrgKind prg;
    uint64_t seed;
};

class FerretSweepTest : public ::testing::TestWithParam<SweepCase>
{};

TEST_P(FerretSweepTest, CorrelationHoldsForArbitraryParams)
{
    const SweepCase c = GetParam();
    FerretParams p;
    p.name = "sweep";
    p.n = c.n;
    p.k = c.k;
    p.t = c.t;
    p.arity = c.arity;
    p.prg = c.prg;
    p.lpnSeed = c.seed;
    ASSERT_GT(p.usableOts(), 0u);

    Rng dealer(c.seed);
    Block delta = dealer.nextBlock();
    auto [bs, br] = dealBaseCots(dealer, delta, p.reservedCots());

    std::vector<Block> q(p.usableOts());
    std::vector<Block> t(p.usableOts());
    BitVec choice;
    net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotSender sender(ch, p, delta, std::move(bs.q));
            Rng rng(c.seed + 1);
            sender.extendInto(rng, q.data());
        },
        [&](net::Channel &ch) {
            FerretCotReceiver receiver(ch, p, std::move(br.choice),
                                       std::move(br.t));
            Rng rng(c.seed + 2);
            receiver.extendInto(rng, choice, t.data());
        });

    ASSERT_EQ(choice.size(), p.usableOts());
    for (size_t i = 0; i < q.size(); ++i)
        ASSERT_EQ(t[i], q[i] ^ scalarMul(choice.get(i), delta))
            << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    RandomishGrid, FerretSweepTest,
    ::testing::Values(
        SweepCase{5000, 512, 8, 4, crypto::PrgKind::ChaCha8, 1},
        SweepCase{5000, 512, 8, 2, crypto::PrgKind::Aes, 2},
        SweepCase{9001, 777, 13, 4, crypto::PrgKind::ChaCha8, 3},
        SweepCase{9001, 777, 13, 8, crypto::PrgKind::ChaCha8, 4},
        SweepCase{20000, 2048, 31, 4, crypto::PrgKind::ChaCha20, 5},
        SweepCase{16384, 1000, 16, 16, crypto::PrgKind::ChaCha8, 6},
        SweepCase{33000, 4096, 64, 4, crypto::PrgKind::ChaCha8, 7},
        SweepCase{12345, 999, 7, 2, crypto::PrgKind::ChaCha8, 8}),
    [](const auto &info) {
        const SweepCase &c = info.param;
        return "n" + std::to_string(c.n) + "_k" + std::to_string(c.k) +
               "_t" + std::to_string(c.t) + "_m" +
               std::to_string(c.arity) + "_" +
               crypto::prgKindName(c.prg);
    });

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

TEST(FailureInjectionTest, CorruptedBaseCotBreaksOutput)
{
    FerretParams p = tinyTestParams();
    Rng dealer(500);
    Block delta = dealer.nextBlock();
    auto [bs, br] = dealBaseCots(dealer, delta, p.reservedCots());

    // Flip one bit in one of the receiver's *LPN-input* base COTs:
    // the encoder mixes it into ~n*d/k output rows, so corruption must
    // surface in the usable output (a flipped SPCOT base COT would
    // only poison its own bucket, which may fall entirely inside the
    // bootstrap reserve).
    br.t[3].lo ^= 1ULL << 17;

    std::vector<Block> q(p.usableOts());
    std::vector<Block> t(p.usableOts());
    BitVec choice;
    net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotSender sender(ch, p, delta, std::move(bs.q));
            Rng rng(501);
            sender.extendInto(rng, q.data());
        },
        [&](net::Channel &ch) {
            FerretCotReceiver receiver(ch, p, std::move(br.choice),
                                       std::move(br.t));
            Rng rng(502);
            receiver.extendInto(rng, choice, t.data());
        });

    size_t bad = 0;
    for (size_t i = 0; i < q.size(); ++i)
        bad += (t[i] != (q[i] ^ scalarMul(choice.get(i), delta)));
    EXPECT_GT(bad, 0u);
}

/**
 * Channel wrapper that flips a bit in a 32-byte window of the carried
 * stream (wide enough to hit both ciphertexts of a chosen-OT pair, so
 * the receiver's selected one is corrupted whichever it is).
 */
class TamperingChannel : public net::Channel
{
  public:
    TamperingChannel(net::Channel &inner, uint64_t target_byte)
        : inner(inner), target(target_byte)
    {}

    void
    sendBytes(const void *data, size_t len) override
    {
        std::vector<uint8_t> copy(
            static_cast<const uint8_t *>(data),
            static_cast<const uint8_t *>(data) + len);
        for (uint64_t b = target; b < target + 32; ++b)
            if (sent <= b && b < sent + len)
                copy[b - sent] ^= 0x40;
        sent += len;
        inner.sendBytes(copy.data(), copy.size());
    }

    void
    recvBytes(void *data, size_t len) override
    {
        inner.recvBytes(data, len);
    }

    uint64_t bytesSent() const override { return inner.bytesSent(); }

  private:
    net::Channel &inner;
    uint64_t target;
    uint64_t sent = 0;
};

TEST(FailureInjectionTest, TamperedWireBreaksSpcotCorrelation)
{
    SpcotConfig cfg;
    cfg.numLeaves = 256;
    cfg.arity = 4;
    cfg.prg = crypto::PrgKind::ChaCha8;
    const size_t trees = 4;

    Rng dealer(600);
    Block delta = dealer.nextBlock();
    auto [cs, cr] = dealBaseCots(dealer, delta,
                                 trees * cfg.cotsPerTree());
    std::vector<size_t> alphas(trees, 37);

    std::vector<Block> w(trees * cfg.numLeaves);
    std::vector<Block> v(trees * cfg.numLeaves);
    net::runTwoParty(
        [&](net::Channel &ch) {
            // Corrupt a byte somewhere inside the sender's ciphertext
            // flush (past the first few OT pairs).
            TamperingChannel evil(ch, 672);
            Rng rng(601);
            uint64_t tweak = 1;
            common::ThreadPool pool(1);
            SpcotWorkspace ws;
            spcotSendInto(evil, cfg, trees, delta, cs.q.data(), rng,
                          tweak, pool, ws, w.data(), nullptr);
        },
        [&](net::Channel &ch) {
            uint64_t tweak = 1;
            common::ThreadPool pool(1);
            SpcotWorkspace ws;
            spcotRecvInto(ch, cfg, trees, alphas.data(), cr.choice, 0,
                          cr.t.data(), tweak, pool, ws, v.data(),
                          nullptr);
        });

    size_t bad = 0;
    for (size_t tr = 0; tr < trees; ++tr)
        for (size_t j = 0; j < cfg.numLeaves; ++j) {
            Block expect = w[tr * cfg.numLeaves + j];
            if (j == alphas[tr])
                expect ^= delta;
            bad += (v[tr * cfg.numLeaves + j] != expect);
        }
    EXPECT_GT(bad, 0u);
}

TEST(FailureInjectionTest, WrongGgmSumsPoisonOnlyThatSubtreePath)
{
    auto prg = crypto::makeTreeExpander(crypto::PrgKind::ChaCha8, 4);
    auto arities = treeArities(256, 4);
    GgmSumLayout layout = GgmSumLayout::of(arities);
    GgmScratch scratch;
    std::vector<Block> leaves(layout.leaves);
    std::vector<Block> sums(layout.total);
    Block leaf_sum;
    ggmExpandInto(*prg, Block::fromUint64(9), layout, scratch,
                  leaves.data(), sums.data(), &leaf_sum);

    size_t alpha = 77;
    auto digits = alphaDigits(alpha, arities);
    std::vector<Block> known = sums;
    for (size_t lvl = 0; lvl < arities.size(); ++lvl)
        known[layout.offset[lvl] + digits[lvl]] = Block::zero();

    // Corrupt the *last* level's sums only: earlier levels reconstruct
    // fine, so exactly the (arity-1) recovered children of the last
    // level are wrong.
    unsigned last = arities.size() - 1;
    for (unsigned c = 0; c < arities[last]; ++c)
        if (c != digits[last])
            known[layout.offset[last] + c] ^= Block::fromUint64(0xbad);

    auto prg2 = crypto::makeTreeExpander(crypto::PrgKind::ChaCha8, 4);
    std::vector<Block> rec(layout.leaves);
    GgmScratch scratch2;
    ggmReconstructInto(*prg2, alpha, layout, known.data(), scratch2,
                       rec.data());
    size_t bad = 0;
    for (size_t j = 0; j < rec.size(); ++j) {
        if (j == alpha)
            continue;
        bad += (rec[j] != leaves[j]);
    }
    EXPECT_EQ(bad, arities[last] - 1);
}

// ---------------------------------------------------------------------------
// Channel fuzz
// ---------------------------------------------------------------------------

TEST(ChannelFuzzTest, ArbitrarySegmentationIsLossless)
{
    Rng rng(700);
    const size_t total = 100000;
    std::vector<uint8_t> data(total);
    for (auto &b : data)
        b = uint8_t(rng.nextUint64());

    for (int trial = 0; trial < 5; ++trial) {
        Rng seg_rng(701 + trial);
        std::vector<uint8_t> received(total);
        net::runTwoParty(
            [&](net::Channel &ch) {
                size_t sent = 0;
                Rng local(800 + trial);
                while (sent < total) {
                    size_t chunk = std::min<size_t>(
                        1 + local.nextBelow(4096), total - sent);
                    ch.sendBytes(data.data() + sent, chunk);
                    sent += chunk;
                }
            },
            [&](net::Channel &ch) {
                size_t got = 0;
                while (got < total) {
                    size_t chunk = std::min<size_t>(
                        1 + seg_rng.nextBelow(2048), total - got);
                    ch.recvBytes(received.data() + got, chunk);
                    got += chunk;
                }
            });
        ASSERT_EQ(received, data) << "trial " << trial;
    }
}

} // namespace
} // namespace ironman::ot
