/**
 * @file
 * Bit-transpose tests: round-trip and known-answer coverage for
 * transposeColumnsToBlocks — the core data movement of IKNP-style OT
 * extension — including non-multiple-of-128 widths and the span-based
 * allocation-free entry point.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/bit_transpose.h"

namespace ironman::ot {
namespace {

/** Test-local wrapper over the span API. */
std::vector<Block>
transposeToVector(const std::vector<BitVec> &cols, size_t n)
{
    std::vector<Block> rows(n);
    transposeColumnsToBlocks(cols, n, rows.data());
    return rows;
}

std::vector<BitVec>
randomColumns(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<BitVec> cols(128);
    for (auto &c : cols)
        c = rng.nextBits(n);
    return cols;
}

TEST(Transpose64Test, IsAnInvolution)
{
    Rng rng(1);
    uint64_t a[64], orig[64];
    for (int i = 0; i < 64; ++i)
        orig[i] = a[i] = rng.nextUint64();
    transpose64(a);
    transpose64(a);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a[i], orig[i]) << "row " << i;
}

TEST(Transpose64Test, KnownAnswerDiagonalAndRow)
{
    // A single set row becomes a single set column and vice versa.
    uint64_t a[64] = {};
    a[3] = ~0ULL; // row 3 all ones
    transpose64(a);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a[i], 1ULL << 3) << "row " << i;
}

TEST(BitTransposeTest, DefinitionHoldsOnRandomInput)
{
    const size_t n = 256;
    auto cols = randomColumns(n, 2);
    std::vector<Block> rows = transposeToVector(cols, n);
    ASSERT_EQ(rows.size(), n);
    for (size_t i = 0; i < n; ++i)
        for (unsigned j = 0; j < 128; ++j)
            ASSERT_EQ(rows[i].getBit(j), cols[j].get(i))
                << "row " << i << " bit " << j;
}

TEST(BitTransposeTest, NonMultipleOf128Width)
{
    // n only needs to be a multiple of 64; 192 exercises the odd
    // 64-row tail tile.
    const size_t n = 192;
    auto cols = randomColumns(n, 3);
    std::vector<Block> rows = transposeToVector(cols, n);
    ASSERT_EQ(rows.size(), n);
    for (size_t i = 0; i < n; ++i)
        for (unsigned j = 0; j < 128; ++j)
            ASSERT_EQ(rows[i].getBit(j), cols[j].get(i))
                << "row " << i << " bit " << j;
}

TEST(BitTransposeTest, KnownAnswerUnitColumns)
{
    // Column j = e_j (bit j set, j < 128): row i is then the unit
    // block e_i for i < 128 and zero beyond.
    const size_t n = 192;
    std::vector<BitVec> cols(128, BitVec(n));
    for (unsigned j = 0; j < 128; ++j)
        cols[j].set(j, true);
    std::vector<Block> rows = transposeToVector(cols, n);
    for (size_t i = 0; i < n; ++i) {
        Block expect = Block::zero();
        if (i < 128)
            expect.setBit(unsigned(i), true);
        EXPECT_EQ(rows[i], expect) << "row " << i;
    }
}

TEST(BitTransposeTest, SpanVariantMatchesVectorVariant)
{
    const size_t n = 320;
    auto cols = randomColumns(n, 4);
    std::vector<Block> expect = transposeToVector(cols, n);

    std::vector<Block> got(n, Block::ones()); // pre-filled garbage
    transposeColumnsToBlocks(cols, n, got.data());
    EXPECT_EQ(got, expect);
}

TEST(BitTransposeTest, RoundTripThroughTranspose)
{
    // Transposing the rows back as columns recovers the original
    // columns (128 x 128 round trip embedded in a taller matrix).
    const size_t n = 128;
    auto cols = randomColumns(n, 5);
    std::vector<Block> rows = transposeToVector(cols, n);

    std::vector<BitVec> back_cols(128, BitVec(n));
    for (unsigned j = 0; j < 128; ++j)
        for (size_t i = 0; i < n; ++i)
            back_cols[j].set(i, rows[i].getBit(j));
    std::vector<Block> back = transposeToVector(back_cols, n);

    for (size_t i = 0; i < n; ++i) {
        Block expect;
        for (unsigned j = 0; j < 128; ++j)
            expect.setBit(j, cols[j].get(i));
        // back[i] bit j == back_cols[j].get(i) == rows[i].getBit(j)
        // == cols[j].get(i): double transpose is the identity here.
        EXPECT_EQ(back[i], expect) << "row " << i;
    }
}

} // namespace
} // namespace ironman::ot
