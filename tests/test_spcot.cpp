/**
 * @file
 * SPCOT protocol tests: after one batched execution,
 * w[tree] = v[tree] except at alpha where w = v ^ Delta (invariant 2
 * of DESIGN.md), across arities, PRGs and tree sizes. Runs through
 * the workspace entry points (spcotSendInto / spcotRecvInto).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/spcot.h"

namespace ironman::ot {
namespace {

using crypto::PrgKind;

/** Test-local flat outputs around the workspace entry points. */
struct FlatSend
{
    std::vector<Block> w; ///< trees x leaves, row-major
    uint64_t prgOps = 0;
};

struct FlatRecv
{
    std::vector<Block> v;
};

FlatSend
runSend(net::Channel &ch, const SpcotConfig &cfg, size_t trees,
        const Block &delta, const Block *q, Rng &rng, uint64_t &tweak)
{
    common::ThreadPool pool(1);
    SpcotWorkspace ws;
    FlatSend out;
    out.w.resize(trees * cfg.numLeaves);
    spcotSendInto(ch, cfg, trees, delta, q, rng, tweak, pool, ws,
                  out.w.data(), &out.prgOps);
    return out;
}

FlatRecv
runRecv(net::Channel &ch, const SpcotConfig &cfg,
        const std::vector<size_t> &alphas, const BitVec &b,
        size_t b_offset, const Block *t, uint64_t &tweak)
{
    common::ThreadPool pool(1);
    SpcotWorkspace ws;
    FlatRecv out;
    out.v.resize(alphas.size() * cfg.numLeaves);
    spcotRecvInto(ch, cfg, alphas.size(), alphas.data(), b, b_offset, t,
                  tweak, pool, ws, out.v.data(), nullptr);
    return out;
}

struct SpcotCase
{
    PrgKind kind;
    unsigned arity;
    size_t leaves;
    size_t trees;
};

class SpcotParamTest : public ::testing::TestWithParam<SpcotCase>
{};

TEST_P(SpcotParamTest, CorrelationHolds)
{
    const auto [kind, arity, leaves, trees] = GetParam();

    SpcotConfig cfg;
    cfg.numLeaves = leaves;
    cfg.arity = arity;
    cfg.prg = kind;

    Rng dealer_rng(100);
    Block delta = dealer_rng.nextBlock();
    const size_t n_cots = trees * cfg.cotsPerTree();
    auto [cot_s, cot_r] = dealBaseCots(dealer_rng, delta, n_cots);

    Rng alpha_rng(101);
    std::vector<size_t> alphas(trees);
    for (auto &a : alphas)
        a = alpha_rng.nextBelow(leaves);

    FlatSend sout;
    FlatRecv rout;
    auto wire = net::runTwoParty(
        [&](net::Channel &ch) {
            Rng rng(102);
            uint64_t tweak = 1;
            sout = runSend(ch, cfg, trees, delta, cot_s.q.data(), rng,
                           tweak);
        },
        [&](net::Channel &ch) {
            uint64_t tweak = 1;
            rout = runRecv(ch, cfg, alphas, cot_r.choice, 0,
                           cot_r.t.data(), tweak);
        });

    ASSERT_EQ(sout.w.size(), trees * leaves);
    ASSERT_EQ(rout.v.size(), trees * leaves);
    for (size_t tr = 0; tr < trees; ++tr) {
        for (size_t j = 0; j < leaves; ++j) {
            Block expect = sout.w[tr * leaves + j];
            if (j == alphas[tr])
                expect ^= delta;
            EXPECT_EQ(rout.v[tr * leaves + j], expect)
                << "tree=" << tr << " leaf=" << j;
        }
    }

    // One round trip: receiver bits out, sender blocks back.
    EXPECT_EQ(wire.turns, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpcotParamTest,
    ::testing::Values(SpcotCase{PrgKind::Aes, 2, 64, 4},
                      SpcotCase{PrgKind::Aes, 4, 64, 4},
                      SpcotCase{PrgKind::ChaCha8, 2, 128, 3},
                      SpcotCase{PrgKind::ChaCha8, 4, 256, 5},
                      SpcotCase{PrgKind::ChaCha8, 4, 4096, 2},
                      SpcotCase{PrgKind::ChaCha8, 4, 8192, 2},
                      SpcotCase{PrgKind::ChaCha8, 8, 512, 3},
                      SpcotCase{PrgKind::ChaCha8, 16, 256, 2},
                      SpcotCase{PrgKind::ChaCha8, 32, 1024, 2},
                      SpcotCase{PrgKind::ChaCha20, 4, 64, 2}),
    [](const auto &info) {
        return prgKindName(info.param.kind) + "_m" +
               std::to_string(info.param.arity) + "_l" +
               std::to_string(info.param.leaves) + "_t" +
               std::to_string(info.param.trees);
    });

TEST(SpcotTest, AlphaAtEveryPosition)
{
    // Small tree, exhaustively puncture every leaf.
    SpcotConfig cfg;
    cfg.numLeaves = 16;
    cfg.arity = 4;
    cfg.prg = PrgKind::ChaCha8;

    for (size_t alpha = 0; alpha < cfg.numLeaves; ++alpha) {
        Rng dealer(200 + alpha);
        Block delta = dealer.nextBlock();
        auto [cot_s, cot_r] =
            dealBaseCots(dealer, delta, cfg.cotsPerTree());

        FlatSend sout;
        FlatRecv rout;
        net::runTwoParty(
            [&](net::Channel &ch) {
                Rng rng(300 + alpha);
                uint64_t tweak = 1;
                sout = runSend(ch, cfg, 1, delta, cot_s.q.data(), rng,
                               tweak);
            },
            [&](net::Channel &ch) {
                uint64_t tweak = 1;
                std::vector<size_t> alphas{alpha};
                rout = runRecv(ch, cfg, alphas, cot_r.choice, 0,
                               cot_r.t.data(), tweak);
            });

        for (size_t j = 0; j < cfg.numLeaves; ++j) {
            Block expect = sout.w[j];
            if (j == alpha)
                expect ^= delta;
            ASSERT_EQ(rout.v[j], expect)
                << "alpha=" << alpha << " leaf=" << j;
        }
    }
}

TEST(SpcotTest, CotConsumptionIndependentOfArity)
{
    for (unsigned m : {2u, 4u, 8u}) {
        SpcotConfig cfg;
        cfg.numLeaves = 4096;
        cfg.arity = m;
        EXPECT_EQ(cfg.cotsPerTree(), 12u) << "m=" << m;
    }
}

TEST(SpcotTest, ChaCha4aryUsesFewerPrgOpsThanAes2ary)
{
    const size_t leaves = 1024, trees = 4;
    auto run = [&](PrgKind kind, unsigned m) {
        SpcotConfig cfg;
        cfg.numLeaves = leaves;
        cfg.arity = m;
        cfg.prg = kind;
        Rng dealer(400);
        Block delta = dealer.nextBlock();
        auto [cs, cr] = dealBaseCots(dealer, delta,
                                     trees * cfg.cotsPerTree());
        uint64_t ops = 0;
        net::runTwoParty(
            [&](net::Channel &ch) {
                Rng rng(401);
                uint64_t tweak = 1;
                ops = runSend(ch, cfg, trees, delta, cs.q.data(), rng,
                              tweak).prgOps;
            },
            [&](net::Channel &ch) {
                uint64_t tweak = 1;
                std::vector<size_t> alphas(trees, 5);
                runRecv(ch, cfg, alphas, cr.choice, 0, cr.t.data(),
                        tweak);
            });
        return ops;
    };

    uint64_t aes2 = run(PrgKind::Aes, 2);
    uint64_t chacha4 = run(PrgKind::ChaCha8, 4);
    // Mini trees add a small overhead on top of the main-tree 6x.
    EXPECT_GT(double(aes2) / double(chacha4), 5.0);
}

} // namespace
} // namespace ironman::ot
