/**
 * @file
 * Scatter-free LPN feed tests (invariant 11 of DESIGN.md): on a
 * parameter set with bucketSize() == treeLeaves(), engines write the
 * GGM leaves straight into the LPN row vector. The outputs must be
 * bit-identical to the copying feed for equal RNG seeds, in both
 * pipelined and unpipelined mode and under either feed on either
 * party (the feed is a local layout decision, not a protocol change),
 * and the aliased arena layout must hold.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"
#include "ot/ot_workspace.h"

namespace ironman::ot {
namespace {

struct RunOutput
{
    std::vector<Block> q;
    std::vector<Block> t;
    BitVec choice;
    Block delta;
};

RunOutput
runPair(const FerretParams &p, bool pipelined, bool sender_sf,
        bool receiver_sf, int iterations, uint64_t seed)
{
    Rng dealer(seed);
    RunOutput out;
    out.delta = dealer.nextBlock();
    auto [bs, br] = dealBaseCots(dealer, out.delta, p.reservedCots());

    const size_t usable = p.usableOts();
    out.q.resize(usable * iterations);
    out.t.resize(usable * iterations);

    net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotSender sender(ch, p, out.delta, std::move(bs.q));
            sender.setPipelined(pipelined);
            sender.setScatterFree(sender_sf);
            Rng rng(seed + 1);
            for (int it = 0; it < iterations; ++it)
                sender.extendInto(rng, out.q.data() + it * usable);
        },
        [&](net::Channel &ch) {
            FerretCotReceiver receiver(ch, p, std::move(br.choice),
                                       std::move(br.t));
            receiver.setPipelined(pipelined);
            receiver.setScatterFree(receiver_sf);
            Rng rng(seed + 2);
            BitVec c;
            for (int it = 0; it < iterations; ++it) {
                receiver.extendInto(rng, c,
                                    out.t.data() + it * usable);
                for (size_t i = 0; i < c.size(); ++i)
                    out.choice.pushBack(c.get(i));
            }
        });
    return out;
}

void
expectEqualAndValid(const RunOutput &a, const RunOutput &b)
{
    EXPECT_EQ(a.q, b.q);
    EXPECT_EQ(a.t, b.t);
    EXPECT_EQ(a.choice, b.choice);
    for (size_t i = 0; i < a.q.size(); ++i)
        ASSERT_EQ(a.t[i],
                  a.q[i] ^ scalarMul(a.choice.get(i), a.delta))
            << "index " << i;
}

TEST(ScatterFreeTest, AlignedParamsSelectTheFeed)
{
    EXPECT_FALSE(OtWorkspace::scatterFreeFeed(tinyTestParams()));
    FerretParams p = tinyAlignedParams();
    EXPECT_EQ(p.bucketSize(), p.treeLeaves());
    EXPECT_TRUE(OtWorkspace::scatterFreeFeed(p));
    // Every Table-4 bucket is narrower than its (bit_ceil) tree, so
    // the paper sets stay on the copying feed.
    for (const FerretParams &paper : allPaperParamSets())
        EXPECT_FALSE(OtWorkspace::scatterFreeFeed(paper)) << paper.name;
}

TEST(ScatterFreeTest, MatchesCopyingFeedUnpipelined)
{
    const FerretParams p = tinyAlignedParams();
    RunOutput sf = runPair(p, false, true, true, 2, 8100);
    RunOutput copy = runPair(p, false, false, false, 2, 8100);
    expectEqualAndValid(sf, copy);
}

TEST(ScatterFreeTest, MatchesCopyingFeedPipelined)
{
    const FerretParams p = tinyAlignedParams();
    RunOutput sf = runPair(p, true, true, true, 3, 8200);
    RunOutput copy = runPair(p, true, false, false, 3, 8200);
    expectEqualAndValid(sf, copy);
}

TEST(ScatterFreeTest, FeedIsALocalDecision)
{
    // Mixed feeds across the two parties produce the same transcript
    // and outputs — the wire format cannot depend on the feed.
    const FerretParams p = tinyAlignedParams();
    RunOutput mixed = runPair(p, true, true, false, 2, 8300);
    RunOutput copy = runPair(p, true, false, false, 2, 8300);
    expectEqualAndValid(mixed, copy);
}

TEST(ScatterFreeTest, ArenaAliasesRowsOntoLeafSlots)
{
    const FerretParams p = tinyAlignedParams();

    OtWorkspace sf;
    sf.prepare(p, 1, /*leaf_slots=*/2, /*scatter_free=*/true);
    EXPECT_TRUE(sf.scatterFree());
    EXPECT_EQ(sf.arena.capacity(),
              OtWorkspace::requiredBlocks(p, 2, true));
    EXPECT_EQ(sf.arena.capacity(), 2 * p.t * p.treeLeaves());
    EXPECT_EQ(sf.rows, sf.leaf[0]) << "rows must alias leaf slot 0";
    ASSERT_GE(p.t * p.treeLeaves(), p.n)
        << "aliased slots must cover every LPN row";

    // The copying layout keeps its separate staging rows.
    OtWorkspace copy;
    copy.prepare(p, 1, 2, /*scatter_free=*/false);
    EXPECT_FALSE(copy.scatterFree());
    EXPECT_EQ(copy.arena.capacity(),
              OtWorkspace::requiredBlocks(p, 2, false));
    EXPECT_NE(copy.rows, copy.leaf[0]);

    // Non-aligned params ignore the request.
    OtWorkspace tiny;
    tiny.prepare(tinyTestParams(), 1, 1, /*scatter_free=*/true);
    EXPECT_FALSE(tiny.scatterFree());
}

} // namespace
} // namespace ironman::ot
