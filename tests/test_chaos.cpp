/**
 * @file
 * Fault-tolerance tests for the serving stack (net + svc + infer):
 *
 *  - deterministic fault-injection grid (close / truncate / stall /
 *    corrupt / delay at seeded protocol offsets) against BOTH daemons:
 *    every failure surfaces as a typed net::WireError — never a hang,
 *    crash, or abort — and the daemon stays serviceable afterwards;
 *  - server containment: a stalled peer cannot hold a session thread
 *    past the recv deadline, and a silent one is reaped on the idle
 *    timeout;
 *  - graceful drain: in-flight sessions finish with ZERO failed
 *    requests while new connects are refused;
 *  - client recovery: the factory-mode svc::Reservoir survives a COT
 *    daemon kill/restart (discard stock, redial under backoff,
 *    restock), and infer::InferClient with autoReconnect survives an
 *    inference-backend kill/restart — uncommitted requests replay
 *    from stored shares, committed-but-unanswered ones surface as
 *    typed Result failures, and every COMPLETED image is bit-identical
 *    to an uninterrupted run (DESIGN.md invariant 15; pinned on the
 *    exact fracBits-0 zoo model, whose outputs are position-
 *    independent across session splits).
 *
 * Everything runs over real loopback TCP; the file is part of the CI
 * ASan and TSan jobs.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "net/fault.h"
#include "net/flight_recorder.h"
#include "net/socket_channel.h"
#include "net/wire_error.h"
#include "ot/ferret_params.h"
#include "infer/infer_client.h"
#include "infer/infer_server.h"
#include "ppml/mlp_runner.h"
#include "ppml/model_zoo.h"
#include "svc/cot_client.h"
#include "svc/cot_server.h"
#include "svc/operator_stock.h"
#include "svc/reservoir.h"
#include "svc/retry.h"

namespace ironman {
namespace {

using infer::InferClient;
using infer::InferServer;
using net::FaultPlan;
using net::WireError;
using svc::CotClient;
using svc::CotServer;
using svc::Reservoir;

/** Poll @p pred for a few seconds — server-side effects are async. */
template <typename Pred>
void
waitUntil(Pred pred)
{
    for (int spin = 0; spin < 5000 && !pred(); ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

/** Fast, test-friendly reconnect policy. */
svc::RetryPolicy
fastRetry(unsigned attempts = 6)
{
    svc::RetryPolicy r;
    r.maxAttempts = attempts;
    r.baseBackoffMs = 5;
    r.maxBackoffMs = 80;
    r.jitterSeed = 42;
    return r;
}

constexpr FaultPlan::Kind kAllKinds[] = {
    FaultPlan::Kind::Close,   FaultPlan::Kind::TruncateFrame,
    FaultPlan::Kind::Stall,   FaultPlan::Kind::Corrupt,
    FaultPlan::Kind::Delay,
};

// ---------------------------------------------------------------------------
// Fault-injection grid: COT daemon
// ---------------------------------------------------------------------------

TEST(ChaosFaultGridTest, CotServerSurvivesEveryFaultKind)
{
    const ot::FerretParams p = ot::tinyTestParams();
    CotServer::Config cfg;
    // Containment: Stall leaves the peer's fd open, so only these
    // deadlines free the session thread.
    cfg.sessionRecvTimeoutMs = 300;
    cfg.sessionSendTimeoutMs = 300;
    CotServer server(cfg);
    const uint16_t port = server.listenTcp(0);

    for (const FaultPlan::Kind kind : kAllKinds) {
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            SCOPED_TRACE(std::string("kind=") +
                         FaultPlan::atByte(kind, 0).kindName() +
                         " seed=" + std::to_string(seed));
            try {
                auto ch = net::tcpConnect("127.0.0.1", port);
                // Offsets land anywhere from inside the handshake to
                // several extensions deep.
                ch->setFaultPlan(FaultPlan::seeded(
                    kind, seed * 977, /*max_byte=*/20000,
                    /*delay_us=*/5000));
                CotClient::Options opt;
                opt.setupSeed = 0xfa110 + seed;
                CotClient client(std::move(ch), p, opt);
                BitVec c;
                std::vector<Block> t(client.usableOts());
                for (int it = 0; it < 6; ++it)
                    client.extendRecv(c, t.data());
                client.close();
            } catch (const WireError &) {
                // Typed — exactly what the taxonomy promises.
            }
            // No other exception type may escape (ASSERT via gtest:
            // an untyped throw would propagate and fail the test).
        }
    }

    // Containment: every faulted session unwinds (the stalled ones on
    // the server's recv deadline), no thread left pinned.
    waitUntil([&] { return server.activeSessions() == 0; });
    EXPECT_EQ(server.activeSessions(), 0u);

    // The daemon is still healthy: a clean session serves.
    CotClient::Options opt;
    opt.setupSeed = 0xc1ea4;
    auto client = CotClient::connectTcp("127.0.0.1", port, p, opt);
    BitVec c;
    std::vector<Block> t(client->usableOts());
    client->extendRecv(c, t.data());
    EXPECT_EQ(c.size(), client->usableOts());
    client->close();
    server.stop();
}

// ---------------------------------------------------------------------------
// Telemetry: failed-by-kind counters + flight-recorder forensics
// ---------------------------------------------------------------------------

/** Registry spellings of net::SessionMetrics' failure classes, indexed
 * by WireFault value. */
constexpr const char *kFaultCounterKinds[] = {
    "transient", "peer_closed", "deadline", "protocol", "fatal"};
constexpr size_t kNumFaultKinds = 5;

uint64_t
cotFailedByKind(size_t k)
{
    return metrics::Registry::instance().counterValue(
        std::string("cot_sessions_failed_") + kFaultCounterKinds[k] +
        "_total");
}

TEST(ChaosTelemetryTest, FaultKindsLandInMatchingCountersWithDumps)
{
    const ot::FerretParams p = ot::tinyTestParams();
    CotServer::Config cfg;
    cfg.sessionRecvTimeoutMs = 300;
    cfg.sessionSendTimeoutMs = 300;
    CotServer server(cfg);
    const uint16_t port = server.listenTcp(0);

    struct Case
    {
        FaultPlan::Kind kind;
        bool mustFail;
        bool acceptable[kNumFaultKinds];
    };
    // Which server-side classifications each injected kind may
    // legitimately produce. The faulted client closes its socket as it
    // unwinds, so even Stall usually lands as peer_closed rather than
    // deadline; the invariant is that NOTHING lands outside the set.
    // Corrupt flips one payload byte on a MAC-less semi-honest wire:
    // the frame may still parse, so a seed is allowed to produce no
    // failure at all — but never a hang or an unclassified one.
    const Case kCases[] = {
        {FaultPlan::Kind::Close,
         true,
         {true, true, false, false, false}},
        {FaultPlan::Kind::TruncateFrame,
         true,
         {true, true, false, true, false}},
        {FaultPlan::Kind::Stall,
         true,
         {true, true, true, false, false}},
        {FaultPlan::Kind::Corrupt,
         false,
         {true, true, true, true, true}},
    };

    for (const Case &c : kCases) {
        SCOPED_TRACE(FaultPlan::atByte(c.kind, 0).kindName());
        uint64_t before[kNumFaultKinds];
        for (size_t k = 0; k < kNumFaultKinds; ++k)
            before[k] = cotFailedByKind(k);
        const uint64_t dumps_before =
            metrics::Registry::instance().counterValue(
                "net_flight_dumps_total");

        // Drive seeded faulted sessions until one registers (offsets
        // land anywhere in the first 20 kB, and Corrupt in particular
        // can pass undetected), bounded so a regression fails fast.
        bool counted = false;
        for (uint64_t seed = 1; seed <= 8 && !counted; ++seed) {
            try {
                auto ch = net::tcpConnect("127.0.0.1", port);
                ch->setFaultPlan(FaultPlan::seeded(
                    c.kind, seed * 977, /*max_byte=*/20000,
                    /*delay_us=*/5000));
                CotClient::Options opt;
                opt.setupSeed = 0x7e1e + seed;
                CotClient client(std::move(ch), p, opt);
                BitVec bits;
                std::vector<Block> t(client.usableOts());
                for (int it = 0; it < 6; ++it)
                    client.extendRecv(bits, t.data());
                client.close();
            } catch (const WireError &) {
                // Typed, as the grid test asserts at length.
            }
            // The session thread classifies as it unwinds — async.
            waitUntil([&] { return server.activeSessions() == 0; });
            uint64_t sum = 0;
            for (size_t k = 0; k < kNumFaultKinds; ++k)
                sum += cotFailedByKind(k) - before[k];
            counted = sum > 0;
        }

        if (c.mustFail)
            EXPECT_TRUE(counted)
                << "no seeded fault produced a counted failure";
        uint64_t total_delta = 0;
        for (size_t k = 0; k < kNumFaultKinds; ++k) {
            const uint64_t delta = cotFailedByKind(k) - before[k];
            total_delta += delta;
            if (!c.acceptable[k])
                EXPECT_EQ(delta, 0u) << "failure misclassified as "
                                     << kFaultCounterKinds[k];
        }

        if (total_delta > 0) {
            // Every counted failure dumped the flight ring; the
            // retained copy names the session and its last opcodes.
            EXPECT_GT(metrics::Registry::instance().counterValue(
                          "net_flight_dumps_total"),
                      dumps_before);
            const std::string dump = net::lastFlightDump();
            EXPECT_NE(dump.find("flight recorder"), std::string::npos)
                << dump;
            if (dump.find("tag=") != std::string::npos) {
                // Non-empty ring (fault landed past the handshake):
                // the dump must name at least one session opcode.
                const bool named_op =
                    dump.find("hello") != std::string::npos ||
                    dump.find("accept") != std::string::npos ||
                    dump.find("op") != std::string::npos ||
                    dump.find("extend") != std::string::npos;
                EXPECT_TRUE(named_op) << dump;
            }
        }
    }

    // The daemon survived the whole telemetry grid.
    waitUntil([&] { return server.activeSessions() == 0; });
    EXPECT_EQ(server.activeSessions(), 0u);
    server.stop();
}

// ---------------------------------------------------------------------------
// Fault-injection grid: inference daemon
// ---------------------------------------------------------------------------

TEST(ChaosFaultGridTest, InferServerSurvivesEveryFaultKind)
{
    const ppml::MlpModelSpec &spec = *ppml::findMlpModel("mlp-4x3x2");
    InferServer::Config cfg;
    cfg.sessionRecvTimeoutMs = 300;
    cfg.sessionSendTimeoutMs = 300;
    InferServer server(cfg);
    const uint16_t port = server.listenTcp(0);

    const std::vector<int64_t> input =
        ppml::sampleMlpInput(spec, 777, 1);

    for (const FaultPlan::Kind kind : kAllKinds) {
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            SCOPED_TRACE(std::string("kind=") +
                         FaultPlan::atByte(kind, 0).kindName() +
                         " seed=" + std::to_string(seed));
            try {
                auto ch = net::tcpConnect("127.0.0.1", port);
                ch->setFaultPlan(FaultPlan::seeded(
                    kind, seed * 1381, /*max_byte=*/20000,
                    /*delay_us=*/5000));
                InferClient::Options opt;
                opt.modelId = spec.id;
                opt.width = 16;
                opt.setupSeed = 0xdead + seed;
                // Faults must land in the PR 8 wire too: counted
                // streaming commits over a depth-2 window.
                opt.depth = 2;
                opt.streamCommit = true;
                InferClient client(std::move(ch), opt);
                for (int r = 0; r < 3; ++r)
                    client.infer(input);
                client.close();
            } catch (const WireError &) {
                // Typed.
            }
        }
    }

    waitUntil([&] { return server.activeSessions() == 0; });
    EXPECT_EQ(server.activeSessions(), 0u);

    // Still serving, still correct.
    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = 16;
    opt.setupSeed = 0xfeed;
    auto client = InferClient::connectTcp("127.0.0.1", port, opt);
    const std::vector<int64_t> got = client->infer(input);
    EXPECT_EQ(got, ppml::mlpPlainForward(spec, input))
        << "fracBits-0 model is exact";
    client->close();
    server.stop();
}

// ---------------------------------------------------------------------------
// Containment: deadlines and the idle reaper
// ---------------------------------------------------------------------------

TEST(ChaosContainmentTest, StalledPeerFreedByRecvDeadline)
{
    CotServer::Config cfg;
    cfg.sessionRecvTimeoutMs = 100;
    CotServer server(cfg);
    const uint16_t port = server.listenTcp(0);

    // Connect and go silent WITHOUT closing: without the deadline the
    // session thread would block in recv forever.
    auto stalled = net::tcpConnect("127.0.0.1", port);
    waitUntil([&] { return server.activeSessions() == 0; });
    EXPECT_EQ(server.activeSessions(), 0u)
        << "recv deadline must free the session thread";
    server.stop();
}

TEST(ChaosContainmentTest, SilentPeerReapedOnIdleTimeout)
{
    CotServer::Config cfg;
    cfg.idleTimeoutMs = 100; // reaper only; blocking reads stay
    CotServer server(cfg);
    const uint16_t port = server.listenTcp(0);

    auto silent = net::tcpConnect("127.0.0.1", port);
    waitUntil([&] { return server.sessionsReaped() >= 1; });
    EXPECT_GE(server.sessionsReaped(), 1u);
    waitUntil([&] { return server.activeSessions() == 0; });
    EXPECT_EQ(server.activeSessions(), 0u);
    server.stop();
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

TEST(ChaosDrainTest, CotServerDrainFinishesInFlightRejectsNew)
{
    const ot::FerretParams p = ot::tinyTestParams();
    CotServer server;
    const uint16_t port = server.listenTcp(0);

    // An in-flight session that keeps extending while the drain runs.
    std::atomic<int> extensions_done{0};
    std::atomic<bool> client_threw{false};
    std::thread worker([&] {
        try {
            CotClient::Options opt;
            opt.setupSeed = 0xd4a1;
            auto client =
                CotClient::connectTcp("127.0.0.1", port, p, opt);
            BitVec c;
            std::vector<Block> t(client->usableOts());
            for (int it = 0; it < 8; ++it) {
                client->extendRecv(c, t.data());
                extensions_done.fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
            client->close();
        } catch (...) {
            client_threw = true;
        }
    });
    waitUntil([&] { return extensions_done.load() >= 2; });

    const bool clean = server.drain(10000);
    EXPECT_TRUE(clean)
        << "in-flight session must finish voluntarily within the window";
    worker.join();
    EXPECT_FALSE(client_threw.load())
        << "drain must not fail in-flight work";
    EXPECT_EQ(extensions_done.load(), 8);

    // The drained daemon refuses new connects.
    EXPECT_THROW(net::tcpConnect("127.0.0.1", port), WireError);
}

TEST(ChaosDrainTest, InferServerDrainAnswersEveryPendingRequest)
{
    const ppml::MlpModelSpec &spec = *ppml::findMlpModel("mlp-4x3x2");
    InferServer server;
    const uint16_t port = server.listenTcp(0);

    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = 16;
    opt.depth = 4; // submissions stay pending until drain()
    opt.setupSeed = 0xd4a2;
    auto client = InferClient::connectTcp("127.0.0.1", port, opt);

    std::vector<std::vector<int64_t>> reqs;
    for (int r = 0; r < 3; ++r) {
        reqs.push_back(ppml::sampleMlpInput(spec, 4500 + r, 1));
        client->submit(reqs.back());
    }
    EXPECT_EQ(client->inFlight(), 3u);

    // Drain starts while the requests are in flight; the session must
    // be allowed to commit, collect, and close inside the window.
    std::atomic<bool> drained_clean{false};
    std::thread drainer(
        [&] { drained_clean = server.drain(10000); });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    const std::vector<InferClient::Result> results = client->drain();
    ASSERT_EQ(results.size(), 3u);
    for (size_t r = 0; r < results.size(); ++r) {
        EXPECT_TRUE(results[r].ok) << "request " << r << ": "
                                   << results[r].error;
        EXPECT_EQ(results[r].outputs,
                  ppml::mlpPlainForward(spec, reqs[r]))
            << "request " << r;
    }
    client->close();
    drainer.join();
    EXPECT_TRUE(drained_clean.load())
        << "zero failed requests and a voluntary session end";

    EXPECT_THROW(net::tcpConnect("127.0.0.1", port), WireError);
}

// ---------------------------------------------------------------------------
// Client recovery: factory-mode reservoir vs COT daemon kill/restart
// ---------------------------------------------------------------------------

TEST(ChaosRecoveryTest, ReservoirSurvivesCotServerKillRestart)
{
    const ot::FerretParams p = ot::tinyTestParams();
    auto cot = std::make_unique<CotServer>();
    const uint16_t port = cot->listenTcp(0);

    CotClient::Options copt;
    copt.role = svc::Role::Sender;
    copt.setupSeed = 0x5ee5;
    Reservoir res(
        [&, copt] {
            return CotClient::connectTcp("127.0.0.1", port, p, copt);
        },
        Reservoir::Options{}, fastRetry(10));

    std::vector<Block> q;
    res.takeSend(100, &q);
    EXPECT_EQ(q.size(), 100u);
    EXPECT_EQ(res.reconnects(), 0u);

    // Kill the daemon mid-life (possibly mid-extension: the refill
    // thread runs continuously) and restart it on the same port.
    cot->stop();
    cot = std::make_unique<CotServer>();
    ASSERT_EQ(cot->listenTcp(port), port);

    // The reservoir discards the dead session's stock, redials under
    // backoff, restocks — takers just block a little longer.
    res.takeSend(2 * p.usableOts() + 17, &q);
    EXPECT_EQ(q.size(), 2 * p.usableOts() + 17);
    waitUntil([&] { return res.reconnects() >= 1; });
    EXPECT_GE(res.reconnects(), 1u);
    EXPECT_FALSE(res.failedTerminally());
    res.stopRefill();
    cot->stop();
}

TEST(ChaosRecoveryTest, ReservoirFailsTypedWhenBudgetExhausted)
{
    const ot::FerretParams p = ot::tinyTestParams();
    auto cot = std::make_unique<CotServer>();
    const uint16_t port = cot->listenTcp(0);

    Reservoir res(
        [&] {
            CotClient::Options copt;
            copt.setupSeed = 0xbad5eed;
            return CotClient::connectTcp("127.0.0.1", port, p, copt);
        },
        Reservoir::Options{}, fastRetry(3));

    BitVec bits;
    std::vector<Block> t;
    res.takeRecv(10, &bits, &t); // healthy first

    cot->stop();
    cot.reset(); // kill for good: every redial is refused

    // The refiller burns its budget, then every taker gets a typed
    // error instead of an abort or a forever-block.
    try {
        res.takeRecv(64 * p.usableOts(), &bits, &t);
        FAIL() << "take from a dead supply must throw";
    } catch (const WireError &e) {
        EXPECT_TRUE(e.retryable() || e.fault() == net::WireFault::Fatal)
            << e.what();
    }
    EXPECT_TRUE(res.failedTerminally());
}

// ---------------------------------------------------------------------------
// Client recovery: InferClient vs backend kill/restart (invariant 15)
// ---------------------------------------------------------------------------

TEST(ChaosRecoveryTest, InferClientEngineSupplySurvivesKillRestart)
{
    const ppml::MlpModelSpec &spec = *ppml::findMlpModel("mlp-4x3x2");
    constexpr unsigned kWidth = 16;
    constexpr uint32_t kBatch = 2;
    constexpr int kRequests = 6;
    constexpr int kKillAfter = 3; // requests completed before the kill

    std::vector<std::vector<int64_t>> reqs;
    for (int r = 0; r < kRequests; ++r)
        reqs.push_back(ppml::sampleMlpInput(spec, 8800 + r, kBatch));
    // The uninterrupted reference run (one session, one share tape).
    const ppml::LocalMlpResult local = ppml::runLocalMlpInference(
        spec, kWidth, reqs, /*share_seed=*/0x15a5, /*setup_seed=*/0x99,
        ot::tinyTestParams());

    auto server = std::make_unique<InferServer>();
    const uint16_t port = server->listenTcp(0);

    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = kWidth;
    opt.batch = kBatch;
    opt.shareSeed = 0x15a5;
    opt.setupSeed = 0x99;
    opt.autoReconnect = true;
    opt.retry = fastRetry(10);
    auto client = InferClient::connectTcp("127.0.0.1", port, opt);

    size_t completed = 0, failed = 0;
    for (int r = 0; r < kRequests; ++r) {
        if (r == kKillAfter) {
            // Kill the whole backend and restart it on the same port.
            server->stop();
            server = std::make_unique<InferServer>();
            ASSERT_EQ(server->listenTcp(port), port);
        }
        client->submit(reqs[r]);
        const InferClient::Result res = client->collect();
        if (res.ok) {
            // Invariant 15: every COMPLETED image is bit-identical to
            // the uninterrupted run. (Exact model: outputs do not
            // depend on the session position of the request.)
            EXPECT_EQ(res.outputs, local.outputs[r]) << "request " << r;
            ++completed;
        } else {
            // Committed-but-unanswered: a typed failure, never a
            // silent wrong answer or a double evaluation.
            EXPECT_FALSE(res.error.empty());
            ++failed;
        }
    }
    EXPECT_GE(client->reconnects(), 1u);
    EXPECT_LE(failed, 1u) << "only the request racing the kill may fail";
    EXPECT_GE(completed, size_t(kRequests - 1));
    client->close();
    server->stop();
}

TEST(ChaosRecoveryTest, InferClientReservoirSupplySurvivesKillRestart)
{
    const ppml::MlpModelSpec &spec = *ppml::findMlpModel("mlp-4x3x2");
    constexpr unsigned kWidth = 16;
    constexpr int kRequests = 5;
    constexpr int kKillAfter = 2;

    std::vector<std::vector<int64_t>> reqs;
    for (int r = 0; r < kRequests; ++r)
        reqs.push_back(ppml::sampleMlpInput(spec, 9900 + r, 1));
    const ppml::LocalMlpResult local = ppml::runLocalMlpInference(
        spec, kWidth, reqs, 0x77a1, 0x51, ot::tinyTestParams());

    // Backend A: COT daemon + stock + inference daemon.
    auto stock = std::make_unique<svc::OperatorStock>();
    auto cot = std::make_unique<CotServer>();
    stock->attach(*cot);
    const uint16_t cot_port = cot->listenTcp(0);
    auto server = std::make_unique<InferServer>();
    server->attachOperatorStock(*stock);
    const uint16_t port = server->listenTcp(0);

    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = kWidth;
    opt.batch = 1;
    opt.shareSeed = 0x77a1;
    opt.setupSeed = 0x51;
    opt.autoReconnect = true;
    opt.retry = fastRetry(10);
    // Streaming negotiated, but collect() after every submit keeps
    // the groups single-request — the per-request local reference
    // stays valid, and recovery must renegotiate the flag.
    opt.depth = 2;
    opt.streamCommit = true;
    auto client = InferClient::connectTcpReservoir(
        "127.0.0.1", port, "127.0.0.1", cot_port, opt);
    EXPECT_EQ(client->supply(), infer::SupplyKind::Reservoir);

    size_t completed = 0, failed = 0;
    for (int r = 0; r < kRequests; ++r) {
        if (r == kKillAfter) {
            // Kill the WHOLE backend — inference daemon, COT daemon,
            // stock — and restart all of it on the same ports. The
            // client's reconnect rebuilds its COT sessions and
            // reservoirs from scratch against the fresh stock.
            server->stop();
            cot->stop();
            stock = std::make_unique<svc::OperatorStock>();
            cot = std::make_unique<CotServer>();
            stock->attach(*cot);
            ASSERT_EQ(cot->listenTcp(cot_port), cot_port);
            server = std::make_unique<InferServer>();
            server->attachOperatorStock(*stock);
            ASSERT_EQ(server->listenTcp(port), port);
        }
        client->submit(reqs[r]);
        const InferClient::Result res = client->collect();
        if (res.ok) {
            EXPECT_EQ(res.outputs, local.outputs[r]) << "request " << r;
            ++completed;
        } else {
            EXPECT_FALSE(res.error.empty());
            ++failed;
        }
    }
    EXPECT_GE(client->reconnects(), 1u);
    EXPECT_LE(failed, 1u);
    EXPECT_GE(completed, size_t(kRequests - 1));
    client->close();
    server->stop();
    cot->stop();
}

TEST(ChaosRecoveryTest, InferClientFailsTypedWithoutBackend)
{
    const ppml::MlpModelSpec &spec = *ppml::findMlpModel("mlp-4x3x2");
    auto server = std::make_unique<InferServer>();
    const uint16_t port = server->listenTcp(0);

    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = 16;
    opt.autoReconnect = true;
    opt.retry = fastRetry(3);
    auto client = InferClient::connectTcp("127.0.0.1", port, opt);
    const std::vector<int64_t> input =
        ppml::sampleMlpInput(spec, 321, 1);
    client->infer(input); // healthy first

    server->stop();
    server.reset(); // no restart: the budget must expire

    try {
        client->infer(input);
        FAIL() << "no backend: the retry budget must expire typed";
    } catch (const WireError &e) {
        EXPECT_TRUE(e.retryable() ||
                    e.fault() == net::WireFault::PeerClosed)
            << e.what();
    }
    // The request that raced the death parked a typed failed Result.
    const InferClient::Result r = client->collect();
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
    // The session is terminally dead now; further use stays typed.
    EXPECT_THROW(client->submit(input), WireError);
}

} // namespace
} // namespace ironman
