/**
 * @file
 * Tests for the OT-based online nonlinear protocols: every secure
 * operation must agree with plain evaluation on reconstructed values.
 */

#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "net/two_party.h"
#include "ot/ferret_params.h"
#include "ppml/secure_compute.h"

namespace ironman::ppml {
namespace {

constexpr unsigned kWidth = 32;

uint64_t
mask(uint64_t v)
{
    return v & ((uint64_t(1) << kWidth) - 1);
}

int64_t
toSigned(uint64_t v)
{
    // Interpret as signed kWidth-bit.
    if (v & (uint64_t(1) << (kWidth - 1)))
        return int64_t(v) - (int64_t(1) << kWidth);
    return int64_t(v);
}

/** Split value into two additive shares. */
std::pair<uint64_t, uint64_t>
shareOf(uint64_t v, Rng &rng)
{
    uint64_t s0 = mask(rng.nextUint64());
    return {s0, mask(v - s0)};
}

/**
 * Run both parties, each backed by its half of a persistent
 * FerretCotEngine pair (the pre-dealt DualCotPool path was deleted
 * with the other vector shims — the engine is the only COT supply).
 */
void
runParties(uint64_t seed,
           const std::function<void(SecureCompute &)> &party0,
           const std::function<void(SecureCompute &)> &party1)
{
    ot::FerretParams p = ot::tinyTestParams();
    net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotEngine engine(ch, 0, p, seed);
            SecureCompute sc(ch, 0, engine, kWidth);
            party0(sc);
        },
        [&](net::Channel &ch) {
            FerretCotEngine engine(ch, 1, p, seed);
            SecureCompute sc(ch, 1, engine, kWidth);
            party1(sc);
        });
}

TEST(SecureComputeTest, AndGateMatchesPlain)
{
    const size_t n = 500;
    Rng rng(1);
    BitVec a = rng.nextBits(n), b = rng.nextBits(n);
    BitVec a0 = rng.nextBits(n), b0 = rng.nextBits(n);
    BitVec a1 = SecureCompute::xorShares(a, a0);
    BitVec b1 = SecureCompute::xorShares(b, b0);

    BitVec z0, z1;
    runParties(
        11, [&](SecureCompute &sc) { z0 = sc.andShares(a0, b0); },
        [&](SecureCompute &sc) { z1 = sc.andShares(a1, b1); });

    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(z0.get(i) ^ z1.get(i), a.get(i) && b.get(i))
            << "i=" << i;
}

TEST(SecureComputeTest, DreluMatchesSign)
{
    const size_t n = 64;
    Rng rng(2);
    std::vector<uint64_t> values(n);
    for (size_t i = 0; i < n; ++i) {
        // Mix of positives, negatives, zero and extremes.
        switch (i % 5) {
          case 0: values[i] = mask(rng.nextUint64() >> 34); break;
          case 1: values[i] = mask(-int64_t(rng.nextBelow(1 << 20))); break;
          case 2: values[i] = 0; break;
          case 3: values[i] = mask(uint64_t(1) << (kWidth - 1)); break;
          default: values[i] = mask(rng.nextUint64()); break;
        }
    }

    std::vector<uint64_t> s0(n), s1(n);
    for (size_t i = 0; i < n; ++i)
        std::tie(s0[i], s1[i]) = shareOf(values[i], rng);

    BitVec d0, d1;
    runParties(12, [&](SecureCompute &sc) { d0 = sc.drelu(s0); },
               [&](SecureCompute &sc) { d1 = sc.drelu(s1); });

    for (size_t i = 0; i < n; ++i) {
        bool expect = toSigned(values[i]) >= 0;
        EXPECT_EQ(d0.get(i) ^ d1.get(i), expect)
            << "value " << toSigned(values[i]);
    }
}

TEST(SecureComputeTest, MuxSelectsOrZeroes)
{
    const size_t n = 200;
    Rng rng(3);
    std::vector<uint64_t> x(n);
    BitVec b = rng.nextBits(n);
    for (auto &v : x)
        v = mask(rng.nextUint64());

    std::vector<uint64_t> x0(n), x1(n);
    BitVec b0 = rng.nextBits(n);
    BitVec b1 = SecureCompute::xorShares(b, b0);
    for (size_t i = 0; i < n; ++i)
        std::tie(x0[i], x1[i]) = shareOf(x[i], rng);

    std::vector<uint64_t> y0, y1;
    runParties(13, [&](SecureCompute &sc) { y0 = sc.mux(b0, x0); },
               [&](SecureCompute &sc) { y1 = sc.mux(b1, x1); });

    for (size_t i = 0; i < n; ++i) {
        uint64_t got = mask(y0[i] + y1[i]);
        EXPECT_EQ(got, b.get(i) ? x[i] : 0) << "i=" << i;
    }
}

TEST(SecureComputeTest, ReluMatchesPlain)
{
    const size_t n = 48;
    Rng rng(4);
    std::vector<uint64_t> values(n), s0(n), s1(n);
    for (size_t i = 0; i < n; ++i) {
        int64_t v = int64_t(rng.nextBelow(1 << 24)) - (1 << 23);
        values[i] = mask(uint64_t(v));
        std::tie(s0[i], s1[i]) = shareOf(values[i], rng);
    }

    std::vector<std::vector<uint64_t>> y0_by_mode, y1_by_mode;
    for (CmpMode mode : {CmpMode::Ladder, CmpMode::Ripple}) {
        std::vector<uint64_t> y0, y1;
        size_t cots_used = 0;
        unsigned rounds_used = 0;
        runParties(14,
                   [&](SecureCompute &sc) {
                       sc.setComparisonMode(mode);
                       y0 = sc.relu(s0);
                       cots_used = sc.cotsConsumed();
                       rounds_used = sc.roundsUsed();
                   },
                   [&](SecureCompute &sc) {
                       sc.setComparisonMode(mode);
                       y1 = sc.relu(s1);
                   });

        for (size_t i = 0; i < n; ++i) {
            int64_t v = toSigned(values[i]);
            uint64_t expect = v >= 0 ? values[i] : 0;
            EXPECT_EQ(mask(y0[i] + y1[i]), expect)
                << cmpModeName(mode) << " value " << v;
        }

        // COT accounting: 2 COTs per AND gate (one per direction),
        // gate count per the mode's cost model, mux 2 per element —
        // the formula reservoir sizing relies on. Rounds likewise.
        EXPECT_EQ(cots_used,
                  n * (2 * dreluAndGates(kWidth, mode) + 2))
            << cmpModeName(mode);
        EXPECT_EQ(rounds_used, reluRounds(kWidth, mode))
            << cmpModeName(mode);

        y0_by_mode.push_back(std::move(y0));
        y1_by_mode.push_back(std::move(y1));
    }

    // Stronger than equal reconstructions: relu output SHARES are
    // mode-independent (the mux masks draw from a counter the modes
    // advance identically), which is what lets a ladder local
    // reference check a ripple served session bit-for-bit.
    EXPECT_EQ(y0_by_mode[0], y0_by_mode[1]);
    EXPECT_EQ(y1_by_mode[0], y1_by_mode[1]);
}

TEST(SecureComputeTest, MaxElementwiseMatchesPlain)
{
    const size_t n = 32;
    Rng rng(5);
    std::vector<uint64_t> a(n), b(n), a0(n), a1(n), b0(n), b1(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = mask(uint64_t(int64_t(rng.nextBelow(1 << 20)) - (1 << 19)));
        b[i] = mask(uint64_t(int64_t(rng.nextBelow(1 << 20)) - (1 << 19)));
        std::tie(a0[i], a1[i]) = shareOf(a[i], rng);
        std::tie(b0[i], b1[i]) = shareOf(b[i], rng);
    }

    std::vector<uint64_t> y0, y1;
    runParties(
        15, [&](SecureCompute &sc) { y0 = sc.maxElementwise(a0, b0); },
        [&](SecureCompute &sc) { y1 = sc.maxElementwise(a1, b1); });

    for (size_t i = 0; i < n; ++i) {
        int64_t expect = std::max(toSigned(a[i]), toSigned(b[i]));
        EXPECT_EQ(toSigned(mask(y0[i] + y1[i])), expect) << "i=" << i;
    }
}

TEST(SecureComputeTest, EngineSuppliesArbitrarilyManyCots)
{
    // The engine self-refills, so a workload far beyond one
    // extension's usable output must still complete correctly.
    const size_t n = 400;
    Rng rng(6);
    BitVec a = rng.nextBits(n), b = rng.nextBits(n);
    BitVec a0 = rng.nextBits(n), b0 = rng.nextBits(n);
    BitVec a1 = SecureCompute::xorShares(a, a0);
    BitVec b1 = SecureCompute::xorShares(b, b0);

    BitVec z0, z1;
    size_t consumed = 0;
    runParties(16,
               [&](SecureCompute &sc) {
                   for (int round = 0; round < 40; ++round)
                       z0 = sc.andShares(a0, b0);
                   consumed = sc.cotsConsumed();
               },
               [&](SecureCompute &sc) {
                   for (int round = 0; round < 40; ++round)
                       z1 = sc.andShares(a1, b1);
               });

    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(z0.get(i) ^ z1.get(i), a.get(i) && b.get(i))
            << "i=" << i;
    EXPECT_EQ(consumed, 40u * 2 * n);
}

} // namespace
} // namespace ironman::ppml
