/**
 * @file
 * Cross-tree level-synchronous GGM tests: ggmExpandBatchInto /
 * ggmReconstructBatchInto must be bit-identical to the per-tree
 * reference path (ggmExpandInto / ggmReconstructInto) across the
 * Table-4 tree shapes — including the mixed-radix ones — PRGs, batch
 * sizes, and both the direct (leaf_stride == leaves) and staged
 * (strided destination) final-level write.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/ggm_tree.h"

namespace ironman::ot {
namespace {

using crypto::PrgKind;

struct BatchCase
{
    PrgKind kind;
    unsigned arity;
    size_t leaves;
    size_t trees;
    const char *name;
};

class GgmBatchParamTest : public ::testing::TestWithParam<BatchCase>
{};

TEST_P(GgmBatchParamTest, BatchExpandMatchesPerTree)
{
    const auto c = GetParam();
    const auto arities = treeArities(c.leaves, c.arity);
    const GgmSumLayout layout = GgmSumLayout::of(arities);

    Rng rng(1000);
    std::vector<Block> seeds = rng.nextBlocks(c.trees);

    // Per-tree reference.
    auto ref_prg = crypto::makeTreeExpander(c.kind, c.arity);
    GgmScratch ref_scratch;
    std::vector<Block> ref_leaves(c.trees * layout.leaves);
    std::vector<Block> ref_sums(c.trees * layout.total);
    std::vector<Block> ref_leaf_sums(c.trees);
    for (size_t tr = 0; tr < c.trees; ++tr)
        ggmExpandInto(*ref_prg, seeds[tr], layout, ref_scratch,
                      ref_leaves.data() + tr * layout.leaves,
                      ref_sums.data() + tr * layout.total,
                      &ref_leaf_sums[tr]);

    // Cross-tree batch, direct final-level write.
    auto prg = crypto::makeTreeExpander(c.kind, c.arity);
    GgmBatchScratch scratch;
    std::vector<Block> leaves(c.trees * layout.leaves);
    std::vector<Block> sums(c.trees * layout.total);
    std::vector<Block> leaf_sums(c.trees);
    ggmExpandBatchInto(*prg, seeds.data(), c.trees, layout, scratch,
                       leaves.data(), layout.leaves, sums.data(),
                       layout.total, leaf_sums.data());

    EXPECT_EQ(leaves, ref_leaves);
    EXPECT_EQ(sums, ref_sums);
    EXPECT_EQ(leaf_sums, ref_leaf_sums);
    EXPECT_EQ(prg->ops(), ref_prg->ops())
        << "batching must not change the PRG operation count";

    // Staged write at a wider stride (the copying-feed layout).
    const size_t stride = layout.leaves + 7;
    std::vector<Block> strided(c.trees * stride, Block::ones());
    GgmBatchScratch scratch2;
    auto prg2 = crypto::makeTreeExpander(c.kind, c.arity);
    ggmExpandBatchInto(*prg2, seeds.data(), c.trees, layout, scratch2,
                       strided.data(), stride, sums.data(), layout.total,
                       nullptr);
    for (size_t tr = 0; tr < c.trees; ++tr)
        for (size_t j = 0; j < layout.leaves; ++j)
            ASSERT_EQ(strided[tr * stride + j],
                      ref_leaves[tr * layout.leaves + j])
                << "tree " << tr << " leaf " << j;
}

TEST_P(GgmBatchParamTest, BatchReconstructMatchesPerTree)
{
    const auto c = GetParam();
    const auto arities = treeArities(c.leaves, c.arity);
    const GgmSumLayout layout = GgmSumLayout::of(arities);
    const size_t num_levels = arities.size();

    Rng rng(2000);
    std::vector<Block> seeds = rng.nextBlocks(c.trees);
    std::vector<size_t> alphas(c.trees);
    for (size_t tr = 0; tr < c.trees; ++tr)
        alphas[tr] = rng.nextBelow(layout.leaves);
    alphas[0] = 0;                                  // edges
    alphas[c.trees - 1] = layout.leaves - 1;

    // Sender expansion provides the known sums (punctured digit
    // zeroed to prove it is never read).
    auto send_prg = crypto::makeTreeExpander(c.kind, c.arity);
    GgmScratch send_scratch;
    std::vector<Block> w(c.trees * layout.leaves);
    std::vector<Block> sums(c.trees * layout.total);
    Block leaf_sum;
    for (size_t tr = 0; tr < c.trees; ++tr)
        ggmExpandInto(*send_prg, seeds[tr], layout, send_scratch,
                      w.data() + tr * layout.leaves,
                      sums.data() + tr * layout.total, &leaf_sum);
    for (size_t tr = 0; tr < c.trees; ++tr) {
        auto digits = alphaDigits(alphas[tr], arities);
        for (size_t lvl = 0; lvl < num_levels; ++lvl)
            sums[tr * layout.total + layout.offset[lvl] + digits[lvl]] =
                Block::zero();
    }

    // Per-tree reference reconstruction.
    auto ref_prg = crypto::makeTreeExpander(c.kind, c.arity);
    GgmScratch ref_scratch;
    std::vector<Block> ref_v(c.trees * layout.leaves);
    for (size_t tr = 0; tr < c.trees; ++tr)
        ggmReconstructInto(*ref_prg, alphas[tr], layout,
                           sums.data() + tr * layout.total, ref_scratch,
                           ref_v.data() + tr * layout.leaves);

    // Cross-tree batch, direct.
    auto prg = crypto::makeTreeExpander(c.kind, c.arity);
    GgmBatchScratch scratch;
    std::vector<Block> v(c.trees * layout.leaves);
    ggmReconstructBatchInto(*prg, alphas.data(), c.trees, layout,
                            sums.data(), layout.total, scratch, v.data(),
                            layout.leaves);
    EXPECT_EQ(v, ref_v);

    // And against the sender truth: equal everywhere except alpha.
    for (size_t tr = 0; tr < c.trees; ++tr)
        for (size_t j = 0; j < layout.leaves; ++j) {
            const Block expect = j == alphas[tr]
                                     ? Block::zero()
                                     : w[tr * layout.leaves + j];
            ASSERT_EQ(v[tr * layout.leaves + j], expect)
                << "tree " << tr << " leaf " << j;
        }

    // Staged write at a wider stride.
    const size_t stride = layout.leaves + 3;
    std::vector<Block> strided(c.trees * stride, Block::ones());
    GgmBatchScratch scratch2;
    auto prg2 = crypto::makeTreeExpander(c.kind, c.arity);
    ggmReconstructBatchInto(*prg2, alphas.data(), c.trees, layout,
                            sums.data(), layout.total, scratch2,
                            strided.data(), stride);
    for (size_t tr = 0; tr < c.trees; ++tr)
        for (size_t j = 0; j < layout.leaves; ++j)
            ASSERT_EQ(strided[tr * stride + j],
                      ref_v[tr * layout.leaves + j])
                << "tree " << tr << " leaf " << j;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GgmBatchParamTest,
    ::testing::Values(
        // The four Table-4 tree shapes (l = bit_ceil(ceil(n/t))).
        BatchCase{PrgKind::ChaCha8, 4, 4096, 9, "t4_2e20"},   // 2^20/2^21
        BatchCase{PrgKind::ChaCha8, 4, 8192, 5, "t4_2e22"},   // mixed [2,4^6]
        BatchCase{PrgKind::ChaCha8, 4, 16384, 3, "t4_2e23"},  // 2^23/2^24
        BatchCase{PrgKind::ChaCha8, 4, 1024, 20, "t4_tiny"},  // tiny set
        // Mixed radix with wide levels + AES + single tree + odd batch.
        BatchCase{PrgKind::ChaCha8, 32, 2048, 7, "m32_mixed"}, // [2,32,32]
        BatchCase{PrgKind::Aes, 2, 64, 13, "aes_binary"},
        BatchCase{PrgKind::Aes, 4, 256, 1, "aes_single_tree"},
        BatchCase{PrgKind::ChaCha20, 8, 512, 6, "cc20_m8"}),
    [](const auto &info) { return std::string(info.param.name); });

} // namespace
} // namespace ironman::ot
