/**
 * @file
 * IKNP OT-extension tests: the bit transpose, the COT correlation, and
 * the linear-communication property the paper contrasts with
 * PCG-style OTE.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "net/two_party.h"
#include "ot/bit_transpose.h"
#include "ot/iknp.h"

namespace ironman::ot {
namespace {

TEST(BitTransposeTest, Transpose64MatchesNaive)
{
    Rng rng(61);
    uint64_t a[64], orig[64];
    for (auto &w : a)
        w = rng.nextUint64();
    std::copy(std::begin(a), std::end(a), std::begin(orig));

    transpose64(a);
    for (int i = 0; i < 64; ++i)
        for (int j = 0; j < 64; ++j)
            ASSERT_EQ((a[i] >> j) & 1, (orig[j] >> i) & 1)
                << "i=" << i << " j=" << j;
}

TEST(BitTransposeTest, Transpose64IsInvolution)
{
    Rng rng(62);
    uint64_t a[64], orig[64];
    for (auto &w : a)
        w = rng.nextUint64();
    std::copy(std::begin(a), std::end(a), std::begin(orig));
    transpose64(a);
    transpose64(a);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a[i], orig[i]);
}

TEST(BitTransposeTest, ColumnsToBlocks)
{
    const size_t n = 256;
    Rng rng(63);
    std::vector<BitVec> cols(128);
    for (auto &c : cols)
        c = rng.nextBits(n);

    std::vector<Block> rows(n);
    transposeColumnsToBlocks(cols, n, rows.data());
    for (size_t i = 0; i < n; ++i)
        for (unsigned j = 0; j < 128; ++j)
            ASSERT_EQ(rows[i].getBit(j), cols[j].get(i))
                << "row " << i << " col " << j;
}

TEST(IknpTest, CorrelationHolds)
{
    const size_t n = 1 << 12;
    Rng rng(64);
    IknpSetup setup = dealIknpSetup(rng);
    BitVec choices = rng.nextBits(n);

    std::vector<Block> q(n), t(n);
    net::runTwoParty(
        [&](net::Channel &ch) {
            common::ThreadPool pool(1);
            IknpWorkspace ws;
            iknpExtendSenderInto(ch, setup, n, 0, pool, ws, q.data());
        },
        [&](net::Channel &ch) {
            common::ThreadPool pool(2);
            IknpWorkspace ws;
            iknpExtendReceiverInto(ch, setup, choices, 0, pool, ws,
                                   t.data());
        });

    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(t[i],
                  q[i] ^ scalarMul(choices.get(i), setup.delta))
            << "i=" << i;
}

TEST(IknpTest, SessionsProduceFreshCorrelations)
{
    const size_t n = 256;
    Rng rng(65);
    IknpSetup setup = dealIknpSetup(rng);
    BitVec choices = rng.nextBits(n);

    common::ThreadPool pool(1);
    IknpWorkspace sender_ws, recv_ws;
    auto run = [&](uint64_t session) {
        std::vector<Block> q(n), t(n);
        net::runTwoParty(
            [&](net::Channel &ch) {
                iknpExtendSenderInto(ch, setup, n, session, pool,
                                     sender_ws, q.data());
            },
            [&](net::Channel &ch) {
                common::ThreadPool rpool(1);
                iknpExtendReceiverInto(ch, setup, choices, session,
                                       rpool, recv_ws, t.data());
            });
        return q;
    };

    std::vector<Block> q0 = run(0);
    std::vector<Block> q1 = run(1);
    size_t same = 0;
    for (size_t i = 0; i < n; ++i)
        same += (q0[i] == q1[i]);
    EXPECT_EQ(same, 0u);
}

TEST(IknpTest, CommunicationIsLinearSixteenBytesPerCot)
{
    const size_t n = 1 << 13;
    Rng rng(66);
    IknpSetup setup = dealIknpSetup(rng);
    BitVec choices = rng.nextBits(n);

    std::vector<Block> q(n), t(n);
    auto wire = net::runTwoParty(
        [&](net::Channel &ch) {
            common::ThreadPool pool(1);
            IknpWorkspace ws;
            iknpExtendSenderInto(ch, setup, n, 0, pool, ws, q.data());
        },
        [&](net::Channel &ch) {
            common::ThreadPool pool(1);
            IknpWorkspace ws;
            iknpExtendReceiverInto(ch, setup, choices, 0, pool, ws,
                                   t.data());
        });

    double bytes_per_cot = double(wire.totalBytes) / n;
    // 128 columns of n bits = 16 B/COT plus small length prefixes.
    EXPECT_GT(bytes_per_cot, 15.9);
    EXPECT_LT(bytes_per_cot, 16.5);
}

} // namespace
} // namespace ironman::ot
