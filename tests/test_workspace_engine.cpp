/**
 * @file
 * Workspace-engine tests (invariants 8 and 9 of DESIGN.md):
 *
 *  - a warm FerretCotSender/Receiver::extendInto() performs zero heap
 *    allocations on either party (asserted by a counting global
 *    allocator, including the in-memory wire);
 *  - the multi-threaded batch-SPCOT/LPN path is bit-identical to the
 *    single-threaded path for fixed RNG seeds;
 *  - the OtWorkspace arena is sized once from FerretParams;
 *  - the persistent ppml::FerretCotEngine refills mid-protocol and
 *    engine-backed SecureCompute matches plain evaluation;
 *  - the unified SeedExpander drives TreePrg and the NMP Unified
 *    Unit to identical results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>

#include "common/rng.h"
#include "net/two_party.h"
#include "nmp/unified_unit.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"
#include "ot/ot_workspace.h"
#include "ppml/cot_engine.h"
#include "ppml/secure_compute.h"

// ---------------------------------------------------------------------------
// Counting global allocator
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocCount{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(align),
                                     size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace ironman::ot {
namespace {

// ---------------------------------------------------------------------------
// Invariant 8: zero allocations after warm-up
// ---------------------------------------------------------------------------

void
expectAllocationFreeAfterWarmup(const FerretParams &p)
{
    Rng dealer(901);
    Block delta = dealer.nextBlock();
    auto [bs, br] = dealBaseCots(dealer, delta, p.reservedCots());

    net::MemoryDuplex duplex;
    // reserve() fixes the FIFO capacity (backpressure instead of
    // growth), so the measured window cannot see a wire allocation by
    // construction — one full iteration per direction is well under
    // 1 MB for the tiny set, so the bound never even engages.
    duplex.reserve(1 << 20);
    const size_t fifo_capacity = duplex.capacityPerDirection();
    FerretCotSender sender(duplex.a(), p, delta, std::move(bs.q));
    FerretCotReceiver receiver(duplex.b(), p, std::move(br.choice),
                               std::move(br.t));

    std::vector<Block> q(p.usableOts());
    std::vector<Block> t(p.usableOts());
    BitVec choice;

    // The two party threads persist across iterations (so warm-up
    // state survives); main releases one lock-free round at a time.
    constexpr int kWarm = 2, kMeasured = 3, kTotal = kWarm + kMeasured;
    std::atomic<int> go{0};
    std::atomic<int> done{0};

    std::thread sender_thread([&] {
        Rng rng(902);
        for (int it = 1; it <= kTotal; ++it) {
            while (go.load(std::memory_order_acquire) < it)
                std::this_thread::yield();
            sender.extendInto(rng, q.data());
            done.fetch_add(1, std::memory_order_acq_rel);
        }
    });
    std::thread receiver_thread([&] {
        Rng rng(903);
        for (int it = 1; it <= kTotal; ++it) {
            while (go.load(std::memory_order_acquire) < it)
                std::this_thread::yield();
            receiver.extendInto(rng, choice, t.data());
            done.fetch_add(1, std::memory_order_acq_rel);
        }
    });

    uint64_t measured_start = 0;
    for (int it = 1; it <= kTotal; ++it) {
        if (it == kWarm + 1)
            measured_start = g_allocCount.load();
        go.store(it, std::memory_order_release);
        while (done.load(std::memory_order_acquire) < 2 * it)
            std::this_thread::yield();
    }
    uint64_t measured = g_allocCount.load() - measured_start;

    sender_thread.join();
    receiver_thread.join();

    EXPECT_EQ(measured, 0u)
        << "warm extendInto() performed heap allocations";
    EXPECT_EQ(duplex.capacityPerDirection(), fifo_capacity)
        << "bounded FIFO grew — reserve() must be a hard bound";

    // The measured iterations still produced valid correlations.
    for (size_t i = 0; i < q.size(); ++i)
        ASSERT_EQ(t[i], q[i] ^ scalarMul(choice.get(i), delta))
            << "index " << i;
}

TEST(WorkspaceEngineTest, ExtendIsAllocationFreeAfterWarmup)
{
    expectAllocationFreeAfterWarmup(tinyTestParams());
}

TEST(WorkspaceEngineTest, ScatterFreeExtendIsAllocationFreeAfterWarmup)
{
    // bucketSize() == treeLeaves(): the engines take the scatter-free
    // LPN feed (aliased arena, cross-tree expansion straight into the
    // row slots) — which must be just as allocation-free once warm.
    expectAllocationFreeAfterWarmup(tinyAlignedParams());
}

// ---------------------------------------------------------------------------
// Invariant 9: thread-count independence
// ---------------------------------------------------------------------------

struct RunOutput
{
    std::vector<Block> q;
    std::vector<Block> t;
    BitVec choice;
    Block delta;
};

RunOutput
runExtensions(int threads, int iterations, uint64_t seed)
{
    FerretParams p = tinyTestParams();
    Rng dealer(seed);
    RunOutput out;
    out.delta = dealer.nextBlock();
    auto [bs, br] = dealBaseCots(dealer, out.delta, p.reservedCots());

    const size_t usable = p.usableOts();
    out.q.resize(usable * iterations);
    out.t.resize(usable * iterations);

    net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotSender sender(ch, p, out.delta, std::move(bs.q));
            sender.setThreads(threads);
            Rng rng(seed + 1);
            for (int it = 0; it < iterations; ++it)
                sender.extendInto(rng, out.q.data() + it * usable);
        },
        [&](net::Channel &ch) {
            FerretCotReceiver receiver(ch, p, std::move(br.choice),
                                       std::move(br.t));
            receiver.setThreads(threads);
            Rng rng(seed + 2);
            BitVec c;
            for (int it = 0; it < iterations; ++it) {
                receiver.extendInto(rng, c,
                                    out.t.data() + it * usable);
                for (size_t i = 0; i < c.size(); ++i)
                    out.choice.pushBack(c.get(i));
            }
        });
    return out;
}

TEST(WorkspaceEngineTest, MultiThreadedMatchesSingleThreaded)
{
    RunOutput serial = runExtensions(1, 2, 7100);
    RunOutput parallel = runExtensions(4, 2, 7100);

    ASSERT_EQ(serial.q.size(), parallel.q.size());
    EXPECT_EQ(serial.q, parallel.q);
    EXPECT_EQ(serial.t, parallel.t);
    EXPECT_EQ(serial.choice, parallel.choice);

    // And the outputs are valid correlations.
    for (size_t i = 0; i < serial.q.size(); ++i)
        ASSERT_EQ(serial.t[i],
                  serial.q[i] ^
                      scalarMul(serial.choice.get(i), serial.delta))
            << "index " << i;
}

// ---------------------------------------------------------------------------
// Arena sizing
// ---------------------------------------------------------------------------

TEST(WorkspaceEngineTest, ArenaSizedOnceFromParams)
{
    FerretParams p = tinyTestParams();
    OtWorkspace ws;
    ws.prepare(p, 2);

    EXPECT_EQ(ws.arena.capacity(), OtWorkspace::requiredBlocks(p));
    EXPECT_EQ(ws.arena.used(), ws.arena.capacity())
        << "the arena is carved exactly, no slack";
    ASSERT_NE(ws.leaf[0], nullptr);
    EXPECT_EQ(ws.leaf[1], nullptr) << "one slot unless pipelined sender";
    ASSERT_NE(ws.rows, nullptr);

    // prepare() is idempotent: same params, same carving.
    Block *leaf0 = ws.leaf[0];
    Block *rows = ws.rows;
    ws.prepare(p, 2);
    EXPECT_EQ(ws.leaf[0], leaf0);
    EXPECT_EQ(ws.rows, rows);

    // The pipelined sender double-buffers the leaf matrix.
    OtWorkspace ws2;
    ws2.prepare(p, 2, /*leaf_slots=*/2);
    EXPECT_EQ(ws2.arena.capacity(), OtWorkspace::requiredBlocks(p, 2));
    ASSERT_NE(ws2.leaf[1], nullptr);
    EXPECT_EQ(size_t(ws2.leaf[1] - ws2.leaf[0]),
              p.t * p.treeLeaves());
}

// ---------------------------------------------------------------------------
// Persistent PPML engine
// ---------------------------------------------------------------------------

TEST(FerretCotEngineTest, EngineBackedReluMatchesPlainAcrossRefills)
{
    constexpr unsigned kWidth = 32;
    constexpr uint64_t kMask = 0xffffffffULL;
    // Large enough that the DReLU AND-ladder drains more than one
    // extension per direction, forcing mid-protocol refills.
    const size_t n = 300;

    Rng rng(50);
    std::vector<int64_t> values(n);
    std::vector<uint64_t> s0(n), s1(n);
    for (size_t i = 0; i < n; ++i) {
        values[i] = int64_t(rng.nextBelow(10000)) - 5000;
        s0[i] = rng.nextUint64() & kMask;
        s1[i] = (uint64_t(values[i]) - s0[i]) & kMask;
    }

    FerretParams p = tinyTestParams();
    std::vector<uint64_t> y0, y1;
    uint64_t extensions = 0;
    net::runTwoParty(
        [&](net::Channel &ch) {
            ppml::FerretCotEngine engine(ch, 0, p, 424242);
            ppml::SecureCompute sc(ch, 0, engine, kWidth);
            y0 = sc.relu(s0);
            extensions = engine.extensionsRun();
        },
        [&](net::Channel &ch) {
            ppml::FerretCotEngine engine(ch, 1, p, 424242);
            ppml::SecureCompute sc(ch, 1, engine, kWidth);
            y1 = sc.relu(s1);
        });

    for (size_t i = 0; i < n; ++i) {
        uint64_t got = (y0[i] + y1[i]) & kMask;
        uint64_t expect =
            uint64_t(values[i] > 0 ? values[i] : 0) & kMask;
        ASSERT_EQ(got, expect) << "element " << i;
    }
    // Construction primes one extension per direction; the protocol
    // must have refilled beyond that.
    EXPECT_GT(extensions, 2u);
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ResizeAfterUseDoesNotReplayStaleJob)
{
    common::ThreadPool pool(3);
    std::vector<int> hits(100, 0);
    pool.parallelFor(hits.size(), [&](int, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            hits[i]++;
    });
    for (int h : hits)
        ASSERT_EQ(h, 1);

    // Fresh workers must wait for a new job instead of re-running the
    // previous one (whose context frame is gone).
    pool.resize(4);
    pool.parallelFor(hits.size(), [&](int, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            hits[i]++;
    });
    for (int h : hits)
        ASSERT_EQ(h, 2);
}

// ---------------------------------------------------------------------------
// Unified seed expansion
// ---------------------------------------------------------------------------

TEST(SeedExpanderTest, TreePrgShimMatchesExpander)
{
    for (crypto::PrgKind kind :
         {crypto::PrgKind::Aes, crypto::PrgKind::ChaCha8}) {
        crypto::TreePrg tree(kind, 4);
        auto exp = crypto::makeTreeExpander(kind, 4);

        Rng rng(61);
        std::vector<Block> parents = rng.nextBlocks(8);
        std::vector<Block> a(32), b(32);
        tree.expandLevel(parents.data(), parents.size(), a.data(), 4);
        exp->expand(parents.data(), b.data(), parents.size(), 4);
        EXPECT_EQ(a, b) << crypto::prgKindName(kind);
        EXPECT_EQ(tree.ops(), exp->ops());
    }
}

TEST(SeedExpanderTest, UnifiedUnitExpandAndReduceMatchesGgmSums)
{
    auto prg = crypto::makeTreeExpander(crypto::PrgKind::ChaCha8, 4);
    Rng rng(62);
    std::vector<Block> parents = rng.nextBlocks(16);
    std::vector<Block> children(parents.size() * 4);
    std::vector<Block> sums(4);
    nmp::UnifiedUnit::expandAndReduce(*prg, parents.data(),
                                      parents.size(), 4,
                                      children.data(), sums.data());

    // The same level through the protocol-side expander, reduced
    // naively: child (j, c) lands in slot c.
    auto ref_prg = crypto::makeTreeExpander(crypto::PrgKind::ChaCha8, 4);
    std::vector<Block> ref_children(children.size());
    ref_prg->expand(parents.data(), ref_children.data(), parents.size(),
                    4);
    EXPECT_EQ(children, ref_children);

    std::vector<Block> ref_sums(4, Block::zero());
    for (size_t j = 0; j < parents.size(); ++j)
        for (unsigned c = 0; c < 4; ++c)
            ref_sums[c] ^= ref_children[j * 4 + c];
    EXPECT_EQ(sums, ref_sums);
}

TEST(SeedExpanderTest, GgmScratchReuseAcrossShapes)
{
    // One scratch serving two different tree shapes must give the
    // same answers as fresh scratches.
    auto prg = crypto::makeTreeExpander(crypto::PrgKind::ChaCha8, 4);
    GgmScratch shared;
    Rng rng(63);
    Block seed1 = rng.nextBlock(), seed2 = rng.nextBlock();

    for (auto arities :
         {std::vector<unsigned>{2, 4, 4}, std::vector<unsigned>{4, 4}}) {
        GgmSumLayout layout = GgmSumLayout::of(arities);
        std::vector<Block> leaves_a(layout.leaves),
            leaves_b(layout.leaves);
        std::vector<Block> sums_a(layout.total), sums_b(layout.total);
        Block sum_a, sum_b;

        Block seed = arities.size() == 3 ? seed1 : seed2;
        ggmExpandInto(*prg, seed, layout, shared, leaves_a.data(),
                      sums_a.data(), &sum_a);
        GgmScratch fresh;
        ggmExpandInto(*prg, seed, layout, fresh, leaves_b.data(),
                      sums_b.data(), &sum_b);
        EXPECT_EQ(leaves_a, leaves_b);
        EXPECT_EQ(sums_a, sums_b);
        EXPECT_EQ(sum_a, sum_b);
    }
}

} // namespace
} // namespace ironman::ot
