/**
 * @file
 * End-to-end Ferret OTE tests: output correlations hold, bootstrapping
 * works across iterations, and the parameter sets are self-consistent
 * (invariants 1 and 7 of DESIGN.md).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"
#include "ot/security.h"

namespace ironman::ot {
namespace {

/** Receiver output of one extension (test-local). */
struct RecvOut
{
    BitVec choice;
    std::vector<Block> t;
};

/** Run one or more extensions and return all outputs. */
struct FerretRun
{
    Block delta;
    std::vector<std::vector<Block>> sender_out;
    std::vector<RecvOut> receiver_out;
    net::WireStats wire;
    uint64_t sender_spcot_ops = 0;
};

FerretRun
runFerret(const FerretParams &p, int iterations, uint64_t seed,
          unsigned arity = 4,
          crypto::PrgKind kind = crypto::PrgKind::ChaCha8)
{
    FerretParams params = p;
    params.arity = arity;
    params.prg = kind;

    Rng dealer(seed);
    FerretRun run;
    run.delta = dealer.nextBlock();
    auto [base_s, base_r] =
        dealBaseCots(dealer, run.delta, params.reservedCots());

    run.wire = net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotSender sender(ch, params, run.delta,
                                   std::move(base_s.q));
            Rng rng(seed + 1);
            for (int it = 0; it < iterations; ++it) {
                std::vector<Block> out(params.usableOts());
                sender.extendInto(rng, out.data());
                run.sender_out.push_back(std::move(out));
            }
            run.sender_spcot_ops = sender.stats().get("spcot_prg_ops");
        },
        [&](net::Channel &ch) {
            FerretCotReceiver receiver(ch, params,
                                       std::move(base_r.choice),
                                       std::move(base_r.t));
            Rng rng(seed + 2);
            for (int it = 0; it < iterations; ++it) {
                RecvOut out;
                out.t.resize(params.usableOts());
                receiver.extendInto(rng, out.choice, out.t.data());
                run.receiver_out.push_back(std::move(out));
            }
        });
    return run;
}

void
expectValidCots(const FerretRun &run, size_t expect_size)
{
    ASSERT_EQ(run.sender_out.size(), run.receiver_out.size());
    for (size_t it = 0; it < run.sender_out.size(); ++it) {
        const auto &q = run.sender_out[it];
        const auto &out = run.receiver_out[it];
        ASSERT_EQ(q.size(), expect_size) << "iteration " << it;
        ASSERT_EQ(out.t.size(), expect_size);
        ASSERT_EQ(out.choice.size(), expect_size);
        for (size_t i = 0; i < q.size(); ++i) {
            ASSERT_EQ(out.t[i],
                      q[i] ^ scalarMul(out.choice.get(i), run.delta))
                << "iteration " << it << " index " << i;
        }
    }
}

TEST(FerretTest, SingleExtensionCorrelation)
{
    FerretParams p = tinyTestParams();
    FerretRun run = runFerret(p, 1, 1000);
    expectValidCots(run, p.usableOts());
}

TEST(FerretTest, ThreeIterationsBootstrapCorrectly)
{
    FerretParams p = tinyTestParams();
    FerretRun run = runFerret(p, 3, 2000);
    expectValidCots(run, p.usableOts());
}

TEST(FerretTest, OutputsDifferAcrossIterations)
{
    FerretParams p = tinyTestParams();
    FerretRun run = runFerret(p, 2, 3000);
    // Fresh correlations each round: overlapping values would mean the
    // bootstrap reused outputs.
    size_t same = 0;
    for (size_t i = 0; i < 100; ++i)
        same += (run.sender_out[0][i] == run.sender_out[1][i]);
    EXPECT_EQ(same, 0u);
}

TEST(FerretTest, ChoiceBitsLookRandom)
{
    FerretParams p = tinyTestParams();
    FerretRun run = runFerret(p, 1, 4000);
    double frac = double(run.receiver_out[0].choice.popcount()) /
                  run.receiver_out[0].choice.size();
    EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(FerretTest, WorksWithAes2aryBaseline)
{
    FerretParams p = tinyTestParams();
    FerretRun run = runFerret(p, 1, 5000, 2, crypto::PrgKind::Aes);
    expectValidCots(run, p.usableOts());
}

TEST(FerretTest, WorksWith8aryChaCha)
{
    FerretParams p = tinyTestParams();
    FerretRun run = runFerret(p, 1, 6000, 8, crypto::PrgKind::ChaCha8);
    expectValidCots(run, p.usableOts());
}

TEST(FerretTest, CommunicationIsSublinear)
{
    FerretParams p = tinyTestParams();
    FerretRun run = runFerret(p, 1, 7000);
    // IKNP-style OTE moves >= 16 bytes per OT; PCG-style must be far
    // below that (sub-linear: only the SPCOT messages cross the wire).
    double bytes_per_ot = double(run.wire.totalBytes) / p.usableOts();
    EXPECT_LT(bytes_per_ot, 4.0);
}

TEST(FerretTest, MultiThreadedLpnMatches)
{
    FerretParams p = tinyTestParams();

    Rng dealer(8000);
    Block delta = dealer.nextBlock();
    auto [base_s, base_r] = dealBaseCots(dealer, delta, p.reservedCots());

    std::vector<Block> q_out(p.usableOts());
    RecvOut r_out;
    r_out.t.resize(p.usableOts());
    net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotSender sender(ch, p, delta, std::move(base_s.q));
            sender.setThreads(4);
            Rng rng(8001);
            sender.extendInto(rng, q_out.data());
        },
        [&](net::Channel &ch) {
            FerretCotReceiver receiver(ch, p, std::move(base_r.choice),
                                       std::move(base_r.t));
            receiver.setThreads(4);
            Rng rng(8002);
            receiver.extendInto(rng, r_out.choice, r_out.t.data());
        });

    for (size_t i = 0; i < q_out.size(); ++i)
        ASSERT_EQ(r_out.t[i],
                  q_out[i] ^ scalarMul(r_out.choice.get(i), delta));
}

TEST(FerretParamsTest, Table4SelfConsistency)
{
    auto sets = allPaperParamSets();
    for (size_t i = 0; i < sets.size(); ++i) {
        const FerretParams &p = sets[i];
        // Trees cover every bucket.
        EXPECT_GE(p.treeLeaves(), p.bucketSize()) << p.name;
        EXPECT_GE(p.t * p.bucketSize(), p.n) << p.name;
        // The extension is productive.
        EXPECT_GT(p.usableOts(), 0u) << p.name;
        // Usable output is within 1% of the nominal 2^(20+i) target.
        double target = std::pow(2.0, 20.0 + double(i));
        EXPECT_NEAR(double(p.usableOts()) / target, 1.0, 0.01) << p.name;
    }
}

TEST(FerretParamsTest, TreeSizesMatchPaperWhereCoverable)
{
    EXPECT_EQ(paperParamSet(20).treeLeaves(), 4096u);
    EXPECT_EQ(paperParamSet(21).treeLeaves(), 4096u);
    EXPECT_EQ(paperParamSet(22).treeLeaves(), 8192u);
    // 2^23/2^24: bucket > 8192, we grow to 16384 (see EXPERIMENTS.md).
    EXPECT_EQ(paperParamSet(23).treeLeaves(), 16384u);
    EXPECT_EQ(paperParamSet(24).treeLeaves(), 16384u);
}

TEST(LpnSecurityTest, Table4SetsNear128Bit)
{
    for (const FerretParams &p : allPaperParamSets()) {
        auto est = estimateLpnSecurity(p.n, p.k, p.t);
        // Our estimator should land within ~8 bits of Table 4 and
        // always certify >= 124-bit security.
        EXPECT_NEAR(est.bits(), p.paperBitSec, 8.0) << p.name;
        EXPECT_GE(est.bits(), 124.0) << p.name;
    }
}

TEST(LpnSecurityTest, MonotoneInNoiseWeight)
{
    auto low = estimateLpnSecurity(1 << 20, 100000, 100);
    auto high = estimateLpnSecurity(1 << 20, 100000, 400);
    EXPECT_GT(high.bits(), low.bits());
}

} // namespace
} // namespace ironman::ot
