/**
 * @file
 * Tests for the in-memory duplex channel and the network-time model.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/channel.h"
#include "net/two_party.h"

namespace ironman::net {
namespace {

TEST(ChannelTest, BytesRoundTrip)
{
    auto stats = runTwoParty(
        [](Channel &ch) {
            const char msg[] = "hello ironman";
            ch.sendBytes(msg, sizeof(msg));
            char back[4];
            ch.recvBytes(back, 4);
            EXPECT_EQ(std::string(back, 4), "pong");
        },
        [](Channel &ch) {
            char buf[14];
            ch.recvBytes(buf, sizeof(buf));
            EXPECT_EQ(std::string(buf), "hello ironman");
            ch.sendBytes("pong", 4);
        });
    EXPECT_EQ(stats.totalBytes, 18u);
    EXPECT_EQ(stats.turns, 2u);
}

TEST(ChannelTest, BlocksAndBitsRoundTrip)
{
    Rng rng(21);
    std::vector<Block> blocks = rng.nextBlocks(1000);
    BitVec bits = rng.nextBits(777);

    runTwoParty(
        [&](Channel &ch) {
            ch.sendBlocks(blocks.data(), blocks.size());
            ch.sendBits(bits);
            ch.sendUint64(424242);
        },
        [&](Channel &ch) {
            std::vector<Block> got(blocks.size());
            ch.recvBlocks(got.data(), got.size());
            EXPECT_EQ(got, blocks);
            BitVec got_bits = ch.recvBits();
            EXPECT_EQ(got_bits, bits);
            EXPECT_EQ(ch.recvUint64(), 424242u);
        });
}

TEST(ChannelTest, BoundedReserveNeverGrowsUnderBackpressure)
{
    // reserve() fixes the FIFO capacity: a sender pushing far more
    // than the bound blocks for drained space instead of growing, so
    // the reserved size is a deterministic worst-case bound.
    MemoryDuplex duplex;
    duplex.reserve(4096);
    const size_t cap = duplex.capacityPerDirection();
    ASSERT_GE(cap, 4096u);

    constexpr size_t kTotal = 256 * 1024; // 64x the bound
    Rng rng(33);
    std::vector<uint8_t> out(kTotal), in(kTotal);
    for (auto &x : out)
        x = uint8_t(rng.nextUint64());

    std::thread sender([&] { duplex.a().sendBytes(out.data(), kTotal); });
    // Drain slowly in odd-sized chunks so the sender repeatedly hits
    // the bound.
    size_t got = 0;
    while (got < kTotal) {
        const size_t chunk = std::min<size_t>(4097, kTotal - got);
        duplex.b().recvBytes(in.data() + got, chunk);
        got += chunk;
    }
    sender.join();

    EXPECT_EQ(in, out);
    EXPECT_EQ(duplex.capacityPerDirection(), cap)
        << "bounded FIFO grew despite backpressure";
    EXPECT_EQ(duplex.totalBytes(), kTotal);
}

TEST(ChannelTest, PartialReadsAcrossSegments)
{
    runTwoParty(
        [](Channel &ch) {
            // Three small sends...
            ch.sendBytes("abc", 3);
            ch.sendBytes("defg", 4);
            ch.sendBytes("h", 1);
        },
        [](Channel &ch) {
            // ...consumed by two reads with unaligned sizes.
            char buf[8];
            ch.recvBytes(buf, 5);
            EXPECT_EQ(std::string(buf, 5), "abcde");
            ch.recvBytes(buf, 3);
            EXPECT_EQ(std::string(buf, 3), "fgh");
        });
}

TEST(ChannelTest, TurnCountTracksDirectionChanges)
{
    auto stats = runTwoParty(
        [](Channel &ch) {
            for (int i = 0; i < 5; ++i) {
                ch.sendUint64(i);
                EXPECT_EQ(ch.recvUint64(), uint64_t(i) * 10);
            }
        },
        [](Channel &ch) {
            for (int i = 0; i < 5; ++i) {
                uint64_t v = ch.recvUint64();
                ch.sendUint64(v * 10);
            }
        });
    // Five ping-pongs = 10 direction changes.
    EXPECT_EQ(stats.turns, 10u);
    EXPECT_DOUBLE_EQ(stats.roundTrips(), 5.0);
}

TEST(NetworkModelTest, WireTimeFormula)
{
    NetworkModel wan = wanNetwork();
    // 1 MB at 400 Mbps = 0.02 s serialization + 2 RTT of 20 ms.
    double t = wan.seconds(1000000, 2.0);
    EXPECT_NEAR(t, 0.02 + 0.04, 1e-9);

    NetworkModel lan = lanNetwork();
    EXPECT_LT(lan.seconds(1000000, 2.0), t);
}

TEST(NetworkModelTest, PaperSettingsEncoded)
{
    EXPECT_DOUBLE_EQ(wanNetwork().bandwidthBitsPerSec, 400e6);
    EXPECT_DOUBLE_EQ(wanNetwork().rttSeconds, 20e-3);
    EXPECT_DOUBLE_EQ(lanNetwork().bandwidthBitsPerSec, 3e9);
    EXPECT_DOUBLE_EQ(lanNetwork().rttSeconds, 0.15e-3);
}

} // namespace
} // namespace ironman::net
