/**
 * @file
 * COT service-layer tests (src/svc + net::SocketChannel):
 *
 *  - wire handshake round trips and rejects bad magic/version;
 *  - SocketChannel moves framed byte streams of every awkward size
 *    with MemoryDuplex-compatible accounting;
 *  - multi-session bit-identity (invariant 12's companion): the same
 *    session seeds through CotServer + loopback-TCP SocketChannels
 *    and through direct in-process MemoryDuplex engine pairs produce
 *    IDENTICAL correlations, for 2 parameter sets x 8 concurrent
 *    sessions, both client roles;
 *  - engines are reused across session waves (the pool stops
 *    constructing once warm);
 *  - the background Reservoir and the dual-direction
 *    ReservoirCotSupply hand out correlations that pair correctly
 *    with the server-side halves.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/channel.h"
#include "net/socket_channel.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"
#include "svc/cot_client.h"
#include "svc/cot_server.h"
#include "svc/engine_pool.h"
#include "svc/reservoir.h"
#include "svc/wire.h"

namespace ironman::svc {
namespace {

using ot::FerretParams;

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(SvcWireTest, ParamsRoundTrip)
{
    for (const FerretParams &p :
         {ot::tinyTestParams(), ot::tinyAlignedParams()}) {
        const WireParams w = WireParams::of(p);
        const FerretParams back = w.toFerretParams();
        EXPECT_EQ(back.n, p.n);
        EXPECT_EQ(back.k, p.k);
        EXPECT_EQ(back.t, p.t);
        EXPECT_EQ(back.arity, p.arity);
        EXPECT_EQ(back.prg, p.prg);
        EXPECT_EQ(back.lpnWeight, p.lpnWeight);
        EXPECT_EQ(back.lpnSeed, p.lpnSeed);
        // Derived geometry matches — engines on both ends agree.
        EXPECT_EQ(back.bucketSize(), p.bucketSize());
        EXPECT_EQ(back.treeLeaves(), p.treeLeaves());
        EXPECT_EQ(back.reservedCots(), p.reservedCots());
    }
}

TEST(SvcWireTest, HelloAcceptRoundTrip)
{
    net::MemoryDuplex duplex;
    Hello h;
    h.role = Role::Sender;
    h.setupSeed = 0xabcdef12345678ULL;
    h.params = WireParams::of(ot::tinyTestParams());
    sendHello(duplex.a(), h);

    Hello got;
    ASSERT_EQ(recvHello(duplex.b(), &got), Status::Ok);
    EXPECT_EQ(got.role, h.role);
    EXPECT_EQ(got.setupSeed, h.setupSeed);
    EXPECT_EQ(got.params.n, h.params.n);

    sendAccept(duplex.b(), Accept{Status::Ok, 42});
    const Accept a = recvAccept(duplex.a());
    EXPECT_EQ(a.status, Status::Ok);
    EXPECT_EQ(a.sessionId, 42u);
}

TEST(SvcWireTest, RejectsBadMagicAndVersion)
{
    {
        net::MemoryDuplex duplex;
        // At least one whole Hello's worth of bytes with a bad magic.
        uint8_t junk[64] = {1, 2, 3, 4};
        duplex.a().sendBytes(junk, sizeof(junk));
        Hello got;
        EXPECT_EQ(recvHello(duplex.b(), &got), Status::BadMagic);
    }
    {
        net::MemoryDuplex duplex;
        Hello h;
        h.version = kWireVersion + 1;
        h.params = WireParams::of(ot::tinyTestParams());
        sendHello(duplex.a(), h);
        Hello got;
        EXPECT_EQ(recvHello(duplex.b(), &got), Status::BadVersion);
    }
}

TEST(SvcWireTest, RejectsHostileParams)
{
    // Shapes that pass naive nonzero checks but would abort or
    // mis-size the server: the handshake must reject them.
    auto reject = [](auto mutate) {
        net::MemoryDuplex duplex;
        Hello h;
        h.params = WireParams::of(ot::tinyTestParams());
        mutate(h.params);
        sendHello(duplex.a(), h);
        Hello got;
        EXPECT_EQ(recvHello(duplex.b(), &got), Status::BadParams);
    };
    // usableOts() would underflow: n smaller than the base reserve.
    reject([](WireParams &w) { w.n = w.k + 8; });
    // Multi-TB workspace request.
    reject([](WireParams &w) { w.n = uint64_t(1) << 40; });
    // k >= n breaks the LPN shape.
    reject([](WireParams &w) { w.k = w.n; });
    // Unknown PRG id would abort engine construction.
    reject([](WireParams &w) { w.prg = 200; });
    // Degenerate tree shape.
    reject([](WireParams &w) { w.arity = 1; });
}

// ---------------------------------------------------------------------------
// SocketChannel
// ---------------------------------------------------------------------------

TEST(SocketChannelTest, FramedBytesEverySize)
{
    auto [a, b] = net::socketChannelPair();
    const size_t sizes[] = {1, 3, 16, 17, 4095, 4096, 100000,
                            net::SocketChannel::kFlushThreshold + 123};

    std::thread peer([&] {
        Rng rng(7);
        std::vector<uint8_t> buf;
        for (size_t sz : sizes) {
            buf.resize(sz);
            b->recvBytes(buf.data(), sz);
            // Echo transformed so the main side can verify both
            // directions moved real data.
            for (auto &x : buf)
                x ^= 0x5a;
            b->sendBytes(buf.data(), sz);
        }
    });

    Rng rng(7);
    std::vector<uint8_t> out, echo;
    uint64_t total = 0;
    for (size_t sz : sizes) {
        out.resize(sz);
        for (auto &x : out)
            x = uint8_t(rng.nextUint64());
        a->sendBytes(out.data(), sz);
        echo.resize(sz);
        a->recvBytes(echo.data(), sz);
        for (size_t i = 0; i < sz; ++i)
            ASSERT_EQ(echo[i], uint8_t(out[i] ^ 0x5a)) << "size " << sz;
        total += sz;
    }
    peer.join();

    EXPECT_EQ(a->bytesSent(), total);
    EXPECT_EQ(a->bytesReceived(), total);
    EXPECT_EQ(b->bytesSent(), total);
    // One send+recv turnaround per size on each endpoint.
    EXPECT_GE(a->turns(), 2 * (sizeof(sizes) / sizeof(sizes[0])) - 1);
}

TEST(SocketChannelTest, TypedHelpersOverRealSocket)
{
    auto [a, b] = net::socketChannelPair();
    std::thread peer([&] {
        Block blk = b->recvBlock();
        BitVec bits = b->recvBits();
        b->sendUint64(blk.lo ^ bits.size());
        // Final send before going idle: the turnaround flush cannot
        // trigger, so push the frame explicitly.
        b->flush();
    });
    Rng rng(9);
    Block blk = rng.nextBlock();
    BitVec bits = rng.nextBits(777);
    a->sendBlock(blk);
    a->sendBits(bits);
    EXPECT_EQ(a->recvUint64(), blk.lo ^ 777u);
    peer.join();
}

TEST(SocketChannelTest, LoopbackTcpConnect)
{
    int listener = net::tcpListen(0);
    const uint16_t port = net::tcpListenPort(listener);
    std::thread server([&] {
        int fd = net::acceptOn(listener);
        ASSERT_GE(fd, 0);
        net::SocketChannel ch(fd);
        EXPECT_EQ(ch.recvUint64(), 123u);
        ch.sendUint64(456);
        ch.flush();
    });
    auto ch = net::tcpConnect("127.0.0.1", port);
    ch->sendUint64(123);
    EXPECT_EQ(ch->recvUint64(), 456u);
    server.join();
    ::close(listener);
}

// ---------------------------------------------------------------------------
// Multi-session bit-identity vs direct engines
// ---------------------------------------------------------------------------

struct SessionRef
{
    // Client-receiver view.
    BitVec choice;
    std::vector<Block> t;
    // Server-sender view.
    std::vector<Block> q;
    Block delta;
};

/**
 * The ground truth a service session must reproduce: the same seeds
 * through a direct in-process engine pair over MemoryDuplex.
 */
SessionRef
runDirect(const FerretParams &p, uint64_t setup_seed, int iters)
{
    SessionRef ref;
    ot::CotSenderBatch bs;
    ot::CotReceiverBatch br;
    dealSessionBase(p, setup_seed, &bs, &br, &ref.delta);

    const size_t usable = p.usableOts();
    ref.q.resize(usable * iters);
    ref.t.resize(usable * iters);

    net::MemoryDuplex duplex;
    std::thread sender_thread([&] {
        ot::FerretCotSender sender(duplex.a(), p, ref.delta,
                                   std::move(bs.q));
        Rng rng(senderRngSeed(setup_seed));
        for (int it = 0; it < iters; ++it)
            sender.extendInto(rng, ref.q.data() + it * usable);
    });
    ot::FerretCotReceiver receiver(duplex.b(), p, std::move(br.choice),
                                   std::move(br.t));
    Rng rng(receiverRngSeed(setup_seed));
    BitVec c;
    for (int it = 0; it < iters; ++it) {
        receiver.extendInto(rng, c, ref.t.data() + it * usable);
        ref.choice.appendRange(c, 0, c.size());
    }
    sender_thread.join();
    return ref;
}

/** Poll @p pred (a few seconds max) — server-side effects are async. */
template <typename Pred>
void
waitUntil(Pred pred)
{
    for (int spin = 0; spin < 5000 && !pred(); ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

/**
 * Close is fire-and-forget on the client, so a joined client can race
 * the server's session epilogue; wait for the counter to settle.
 */
void
waitForSessions(CotServer &server, uint64_t expect)
{
    for (int spin = 0; spin < 2000; ++spin) {
        if (server.sessionsServed() >= expect &&
            server.activeSessions() == 0)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

/** Server-side output recorder keyed by session id. */
struct ServerRecorder
{
    std::mutex m;
    std::map<uint64_t, std::vector<Block>> qBySession;
    std::map<uint64_t, Block> deltaBySession;
    std::map<uint64_t, BitVec> choiceBySession;
    std::map<uint64_t, std::vector<Block>> tBySession;

    void
    attach(CotServer &server)
    {
        server.setSenderSink([this](const CotServer::SenderBatch &b) {
            std::lock_guard<std::mutex> lock(m);
            auto &q = qBySession[b.sessionId];
            q.insert(q.end(), b.q, b.q + b.count);
            deltaBySession[b.sessionId] = b.delta;
        });
        server.setReceiverSink(
            [this](const CotServer::ReceiverBatch &b) {
                std::lock_guard<std::mutex> lock(m);
                auto &t = tBySession[b.sessionId];
                t.insert(t.end(), b.t, b.t + b.count);
                choiceBySession[b.sessionId].appendRange(*b.choice, 0,
                                                         b.count);
            });
    }
};

TEST(CotServiceTest, EightConcurrentSessionsBitIdenticalToDirect)
{
    constexpr int kSessions = 8;
    constexpr int kIters = 3;

    ServerRecorder rec; // before the server: sinks must outlive sessions
    CotServer server(CotServer::Config{1, true, kSessions});
    rec.attach(server);
    const uint16_t port = server.listenTcp(0);

    int set_index = 0;
    for (const FerretParams &p :
         {ot::tinyTestParams(), ot::tinyAlignedParams()}) {
        const uint64_t seed_base = 5000 + 100 * set_index++;

        // Ground truth per session seed.
        std::vector<SessionRef> refs;
        for (int i = 0; i < kSessions; ++i)
            refs.push_back(runDirect(p, seed_base + i, kIters));

        // The same seeds through the service, all sessions concurrent.
        std::vector<BitVec> got_choice(kSessions);
        std::vector<std::vector<Block>> got_t(kSessions);
        std::vector<uint64_t> sids(kSessions);
        std::vector<std::thread> clients;
        for (int i = 0; i < kSessions; ++i)
            clients.emplace_back([&, i] {
                CotClient::Options opt;
                opt.role = Role::Receiver;
                opt.setupSeed = seed_base + i;
                auto client = CotClient::connectTcp("127.0.0.1", port,
                                                    p, opt);
                sids[i] = client->sessionId();
                const size_t usable = client->usableOts();
                got_t[i].resize(usable * kIters);
                BitVec c;
                for (int it = 0; it < kIters; ++it) {
                    client->extendRecv(c,
                                       got_t[i].data() + it * usable);
                    got_choice[i].appendRange(c, 0, c.size());
                }
                client->close();
            });
        for (auto &th : clients)
            th.join();

        for (int i = 0; i < kSessions; ++i) {
            ASSERT_EQ(got_choice[i], refs[i].choice)
                << p.name << " session " << i;
            ASSERT_EQ(got_t[i], refs[i].t) << p.name << " session " << i;
            // The final iteration's sink runs on the session thread
            // after the client already has its bytes — wait for it.
            waitUntil([&] {
                std::lock_guard<std::mutex> lock(rec.m);
                return rec.qBySession[sids[i]].size() >=
                       refs[i].q.size();
            });
            std::lock_guard<std::mutex> lock(rec.m);
            ASSERT_EQ(rec.qBySession[sids[i]], refs[i].q)
                << p.name << " session " << i;
            ASSERT_EQ(rec.deltaBySession[sids[i]], refs[i].delta);
        }
    }
    // 8 concurrent sessions per shape -> at most 8 sender engines per
    // shape ever constructed (2 shapes).
    waitForSessions(server, 2u * kSessions);
    EXPECT_LE(server.pool().sendersCreated(), 2u * kSessions);
    EXPECT_EQ(server.sessionsServed(), 2u * kSessions);
    server.stop();
}

TEST(CotServiceTest, SenderRoleClientMatchesDirect)
{
    constexpr int kIters = 2;
    const FerretParams p = ot::tinyTestParams();
    const uint64_t seed = 91001;

    SessionRef ref = runDirect(p, seed, kIters);

    ServerRecorder rec; // before the server: sinks must outlive sessions
    CotServer server;
    rec.attach(server);
    const uint16_t port = server.listenTcp(0);

    CotClient::Options opt;
    opt.role = Role::Sender;
    opt.setupSeed = seed;
    auto client = CotClient::connectTcp("127.0.0.1", port, p, opt);
    EXPECT_EQ(client->delta(), ref.delta);

    const size_t usable = client->usableOts();
    std::vector<Block> q(usable * kIters);
    for (int it = 0; it < kIters; ++it)
        client->extendSend(q.data() + it * usable);
    const uint64_t sid = client->sessionId();
    client->close();
    server.stop();

    EXPECT_EQ(q, ref.q);
    std::lock_guard<std::mutex> lock(rec.m);
    EXPECT_EQ(rec.tBySession[sid], ref.t);
    EXPECT_EQ(rec.choiceBySession[sid], ref.choice);
}

TEST(CotServiceTest, EnginesReusedAcrossSessionWaves)
{
    constexpr int kWaveSessions = 4;
    const FerretParams p = ot::tinyTestParams();

    CotServer server(CotServer::Config{1, true, kWaveSessions});
    const uint16_t port = server.listenTcp(0);

    auto run_wave = [&](uint64_t seed_base) {
        std::vector<std::thread> clients;
        for (int i = 0; i < kWaveSessions; ++i)
            clients.emplace_back([&, i] {
                CotClient::Options opt;
                opt.setupSeed = seed_base + i;
                auto client = CotClient::connectTcp("127.0.0.1", port,
                                                    p, opt);
                BitVec c;
                std::vector<Block> t(client->usableOts());
                client->extendRecv(c, t.data());
                client->close();
            });
        for (auto &th : clients)
            th.join();
    };

    run_wave(7000);
    waitForSessions(server, kWaveSessions);
    const uint64_t created_after_wave1 = server.pool().sendersCreated();
    EXPECT_LE(created_after_wave1, uint64_t(kWaveSessions));

    run_wave(8000);
    waitForSessions(server, 2u * kWaveSessions);
    run_wave(9000);
    waitForSessions(server, 3u * kWaveSessions);
    EXPECT_EQ(server.pool().sendersCreated(), created_after_wave1)
        << "later waves must reuse pooled engines, not construct";
    EXPECT_EQ(server.sessionsServed(), 3u * kWaveSessions);
    server.stop();
}

TEST(CotServiceTest, UnixDomainSessionWorks)
{
    const FerretParams p = ot::tinyTestParams();
    const std::string path = "/tmp/ironman_svc_test.sock";

    ServerRecorder rec; // before the server: sinks must outlive sessions
    CotServer server;
    rec.attach(server);
    server.listenUnix(path);

    SessionRef ref = runDirect(p, 4242, 1);
    CotClient::Options opt;
    opt.setupSeed = 4242;
    auto client = CotClient::connectUnix(path, p, opt);
    BitVec c;
    std::vector<Block> t(client->usableOts());
    client->extendRecv(c, t.data());
    client->close();
    server.stop();

    EXPECT_EQ(c, ref.choice);
    EXPECT_EQ(t, ref.t);
}

// ---------------------------------------------------------------------------
// Reservoir + dual-direction supply
// ---------------------------------------------------------------------------

TEST(ReservoirTest, BackgroundRefillYieldsCorrelatedStream)
{
    const FerretParams p = ot::tinyTestParams();
    const uint64_t seed = 30303;

    ServerRecorder rec; // before the server: sinks must outlive sessions
    CotServer server;
    rec.attach(server);
    const uint16_t port = server.listenTcp(0);

    CotClient::Options opt;
    opt.setupSeed = seed;
    auto client = CotClient::connectTcp("127.0.0.1", port, p, opt);
    const uint64_t sid = client->sessionId();

    Block delta;
    dealSessionBase(p, seed, nullptr, nullptr, &delta);

    {
        Reservoir res(*client);
        // Odd-sized takes crossing batch boundaries: > 2 extensions.
        const size_t usable = p.usableOts();
        const size_t takes[] = {17, usable - 5, usable / 2 + 3, 1234};
        BitVec bits;
        std::vector<Block> t;
        size_t consumed = 0;
        for (size_t n : takes) {
            res.takeRecv(n, &bits, &t);
            ASSERT_EQ(bits.size(), n);
            ASSERT_EQ(t.size(), n);
            // Pair with the server's recorded half at this offset
            // (the sink runs on the session thread — after the bytes
            // that satisfied our take were already on the wire).
            waitUntil([&] {
                std::lock_guard<std::mutex> lock(rec.m);
                return rec.qBySession[sid].size() >= consumed + n;
            });
            std::lock_guard<std::mutex> lock(rec.m);
            const auto &q = rec.qBySession[sid];
            ASSERT_GE(q.size(), consumed + n);
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(t[i],
                          q[consumed + i] ^
                              scalarMul(bits.get(i), delta))
                    << "offset " << consumed + i;
            consumed += n;
        }
        EXPECT_GE(res.refills(), 2u) << "takes crossed >= 2 batches";
        EXPECT_EQ(res.taken(), consumed);
    }
    client->close();
    server.stop();
}

TEST(ReservoirTest, ConcurrentTakersBothComplete)
{
    // Two takers race one reservoir, one asking for more than the
    // refill high-water mark: the demand bookkeeping must keep the
    // refiller producing until BOTH are satisfied (no stranded taker).
    const FerretParams p = ot::tinyTestParams();
    CotServer server;
    const uint16_t port = server.listenTcp(0);
    CotClient::Options opt;
    opt.role = Role::Sender;
    opt.setupSeed = 60606;
    auto client = CotClient::connectTcp("127.0.0.1", port, p, opt);

    const size_t usable = p.usableOts();
    {
        Reservoir res(*client);
        std::vector<Block> big, small;
        std::thread taker([&] { res.takeSend(3 * usable + 7, &big); });
        res.takeSend(usable / 2, &small);
        taker.join();
        EXPECT_EQ(big.size(), 3 * usable + 7);
        EXPECT_EQ(small.size(), usable / 2);
        EXPECT_EQ(res.taken(), 3 * usable + 7 + usable / 2);
    }
    client->close();
    server.stop();
}

// ---------------------------------------------------------------------------
// Handshake policy: params allowlist + per-client quotas
// ---------------------------------------------------------------------------

TEST(CotServicePolicyTest, AllowlistRejectsUnlistedParams)
{
    CotServer::Config cfg;
    cfg.paramsAllowlist = {ot::tinyAlignedParams()};
    CotServer server(cfg);
    const uint16_t port = server.listenTcp(0);

    // Structurally valid but unlisted: clean wire-level reject.
    CotClient::Options opt;
    opt.setupSeed = 1111;
    try {
        auto client = CotClient::connectTcp("127.0.0.1", port,
                                            ot::tinyTestParams(), opt);
        FAIL() << "unlisted params must be rejected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("params not allowed"),
                  std::string::npos)
            << e.what();
    }

    // The listed shape still serves.
    auto client = CotClient::connectTcp("127.0.0.1", port,
                                        ot::tinyAlignedParams(), opt);
    BitVec c;
    std::vector<Block> t(client->usableOts());
    client->extendRecv(c, t.data());
    client->close();
    server.stop();
    EXPECT_EQ(server.sessionsServed(), 1u);
    EXPECT_EQ(server.sessionsRejected(), 1u);
}

TEST(CotServicePolicyTest, SessionQuotaRejectsAtHandshake)
{
    CotServer::Config cfg;
    cfg.maxSessionsPerClient = 2;
    CotServer server(cfg);
    const uint16_t port = server.listenTcp(0);
    const FerretParams p = ot::tinyTestParams();

    for (uint64_t i = 0; i < 2; ++i) {
        CotClient::Options opt;
        opt.setupSeed = 2200 + i;
        auto client = CotClient::connectTcp("127.0.0.1", port, p, opt);
        client->close();
    }
    waitForSessions(server, 2);

    CotClient::Options opt;
    opt.setupSeed = 2299;
    try {
        auto client = CotClient::connectTcp("127.0.0.1", port, p, opt);
        FAIL() << "third session from one address must be rejected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("session quota"),
                  std::string::npos)
            << e.what();
    }
    server.stop();
    EXPECT_EQ(server.sessionsServed(), 2u);
    EXPECT_EQ(server.sessionsRejected(), 1u);
}

TEST(CotServicePolicyTest, ByteQuotaRejectsAtHandshake)
{
    CotServer::Config cfg;
    cfg.maxBytesPerClient = 1; // any served session exhausts it
    CotServer server(cfg);
    const uint16_t port = server.listenTcp(0);
    const FerretParams p = ot::tinyTestParams();

    // First session admitted (no bytes on the tally yet) and served.
    {
        CotClient::Options opt;
        opt.setupSeed = 3300;
        auto client = CotClient::connectTcp("127.0.0.1", port, p, opt);
        BitVec c;
        std::vector<Block> t(client->usableOts());
        client->extendRecv(c, t.data());
        client->close();
    }
    waitForSessions(server, 1);
    EXPECT_GT(server.bytesServedTo("127.0.0.1"), 1u);

    // Tally now exceeds the quota: the next hello is rejected.
    CotClient::Options opt;
    opt.setupSeed = 3301;
    try {
        auto client = CotClient::connectTcp("127.0.0.1", port, p, opt);
        FAIL() << "byte quota must reject the second session";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("byte quota"),
                  std::string::npos)
            << e.what();
    }
    server.stop();
    EXPECT_EQ(server.sessionsRejected(), 1u);
}

TEST(ReservoirTest, DualDirectionSupplyPairsBothWays)
{
    const FerretParams p = ot::tinyTestParams();
    const uint64_t send_seed = 40404, recv_seed = 50505;

    ServerRecorder rec; // before the server: sinks must outlive sessions
    CotServer server;
    rec.attach(server);
    const uint16_t port = server.listenTcp(0);

    CotClient::Options send_opt;
    send_opt.role = Role::Sender;
    send_opt.setupSeed = send_seed;
    auto send_client =
        CotClient::connectTcp("127.0.0.1", port, p, send_opt);
    const uint64_t send_sid = send_client->sessionId();

    CotClient::Options recv_opt;
    recv_opt.setupSeed = recv_seed;
    auto recv_client =
        CotClient::connectTcp("127.0.0.1", port, p, recv_opt);
    const uint64_t recv_sid = recv_client->sessionId();

    Block recv_delta; // the server's delta in the recv-role session
    dealSessionBase(p, recv_seed, nullptr, nullptr, &recv_delta);

    {
        Reservoir send_res(*send_client);
        Reservoir recv_res(*recv_client);
        ReservoirCotSupply supply(send_res, recv_res,
                                  send_client->delta());

        const size_t n = 4096;
        const Block *q = supply.takeSend(n);
        const BitVec *bits;
        size_t off;
        const Block *t;
        supply.takeRecv(n, &bits, &off, &t);
        EXPECT_EQ(supply.cotsTaken(), 2 * n);

        waitUntil([&] {
            std::lock_guard<std::mutex> lock(rec.m);
            return rec.tBySession[send_sid].size() >= n &&
                   rec.qBySession[recv_sid].size() >= n;
        });
        std::lock_guard<std::mutex> lock(rec.m);
        // Send direction: our q + delta vs the server's receiver half.
        const auto &srv_t = rec.tBySession[send_sid];
        const auto &srv_c = rec.choiceBySession[send_sid];
        ASSERT_GE(srv_t.size(), n);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(srv_t[i],
                      q[i] ^ scalarMul(srv_c.get(i),
                                           supply.sendDelta()));
        // Recv direction: our (bits, t) vs the server's sender half.
        const auto &srv_q = rec.qBySession[recv_sid];
        ASSERT_GE(srv_q.size(), n);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(t[i], srv_q[i] ^ scalarMul(
                                           bits->get(off + i),
                                           recv_delta));
    }
    send_client->close();
    recv_client->close();
    server.stop();
}

// ---------------------------------------------------------------------------
// Broken-wire fuzz: the extension phase vs a malformed peer
// ---------------------------------------------------------------------------

/**
 * A peer that handshakes CORRECTLY and then speaks garbage — bogus
 * ops, valid frames full of noise, truncated extension traffic,
 * abrupt disconnects. The server must unwind each session with a
 * typed error (never a crash, hang, or sanitizer finding) and keep
 * serving honest clients afterwards.
 */
TEST(CotServiceFuzzTest, ExtensionPhaseSurvivesMalformedPeers)
{
    const FerretParams p = ot::tinyTestParams();
    CotServer::Config cfg;
    cfg.sessionRecvTimeoutMs = 500; // a truncating peer must not pin
    CotServer server(cfg);          // a session thread forever
    const uint16_t port = server.listenTcp(0);

    for (uint64_t seed = 1; seed <= 8; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(0xf022 * seed);
        try {
            auto ch = net::tcpConnect("127.0.0.1", port);
            Hello h;
            h.role = Role::Receiver;
            h.setupSeed = 0xbad0 + seed;
            h.params = WireParams::of(p);
            sendHello(*ch, h);
            ch->flush();
            const Accept a = recvAccept(*ch);
            ASSERT_EQ(a.status, Status::Ok);

            switch (seed % 4) {
              case 0:
                // Vanish right after the handshake.
                break;
              case 1: {
                // A bogus op byte.
                uint8_t op = uint8_t(200 + rng.nextBelow(50));
                ch->sendBytes(&op, 1);
                ch->flush();
                break;
              }
              case 2: {
                // A real Extend, then noise instead of the protocol.
                sendOp(*ch, Op::Extend);
                const size_t words = 1 + rng.nextBelow(200);
                for (size_t i = 0; i < words; ++i)
                    ch->sendUint64(rng.nextUint64());
                ch->flush();
                break;
              }
              default:
                // A real Extend, then silence: the peer truncates the
                // exchange and disconnects mid-protocol.
                sendOp(*ch, Op::Extend);
                ch->flush();
                break;
            }
            // ch destructs here: abrupt close, no polite Op::Close.
        } catch (const net::WireError &) {
            // The server may slam the door first; also typed.
        }
    }

    // Every fuzzed session unwinds...
    waitUntil([&] { return server.activeSessions() == 0; });
    EXPECT_EQ(server.activeSessions(), 0u);

    // ...and an honest session still gets bit-exact service.
    const uint64_t seed = 0x600d;
    SessionRef ref = runDirect(p, seed, 1);
    CotClient::Options opt;
    opt.setupSeed = seed;
    auto client = CotClient::connectTcp("127.0.0.1", port, p, opt);
    BitVec c;
    std::vector<Block> t(client->usableOts());
    client->extendRecv(c, t.data());
    for (size_t i = 0; i < t.size(); ++i)
        ASSERT_EQ(t[i], ref.t[i]);
    for (size_t i = 0; i < c.size(); ++i)
        ASSERT_EQ(c.get(i), ref.choice.get(i));
    client->close();
    server.stop();
}

// ---------------------------------------------------------------------------
// Quota adversary: a flooding client cannot degrade honest service
// ---------------------------------------------------------------------------

TEST(CotServicePolicyTest, QuotaAdversaryCannotStarveHonestClient)
{
    const FerretParams p = ot::tinyTestParams();
    CotServer::Config cfg;
    cfg.maxSessionsPerClient = 2;
    CotServer server(cfg);
    const uint16_t port = server.listenTcp(0);

    // Honest client from 127.0.0.1, session open across the flood.
    const uint64_t seed = 0x40ae57;
    constexpr int kIters = 4; // one before, two during, one after
    SessionRef ref = runDirect(p, seed, kIters);
    CotClient::Options opt;
    opt.setupSeed = seed;
    auto honest = CotClient::connectTcp("127.0.0.1", port, p, opt);
    const size_t usable = p.usableOts();
    BitVec c;
    std::vector<Block> t(usable);
    BitVec got_c;
    std::vector<Block> got_t;
    auto extendOnce = [&] {
        honest->extendRecv(c, t.data());
        got_c.appendRange(c, 0, c.size());
        got_t.insert(got_t.end(), t.begin(), t.end());
    };
    extendOnce();

    // The adversary floods from its own address (loopback source
    // bind), burning its session quota...
    for (uint64_t i = 0; i < 2; ++i) {
        CotClient::Options aopt;
        aopt.setupSeed = 0xadd0 + i;
        CotClient adv(net::tcpConnect("127.0.0.1", port, "127.0.0.2"),
                      p, aopt);
        adv.close();
    }
    // ...then every further connect gets a clean typed quota reject —
    // while the honest session keeps extending in between.
    for (uint64_t i = 0; i < 4; ++i) {
        try {
            CotClient::Options aopt;
            aopt.setupSeed = 0xadd8 + i;
            CotClient adv(
                net::tcpConnect("127.0.0.1", port, "127.0.0.2"), p,
                aopt);
            FAIL() << "flood connect " << i << " must be rejected";
        } catch (const net::WireError &e) {
            EXPECT_NE(std::string(e.what()).find("session quota"),
                      std::string::npos)
                << e.what();
        }
        if (i % 2 == 0)
            extendOnce();
    }
    extendOnce();

    // The adversary's bucket is full; the honest client's is not, and
    // its correlations are bit-identical to the direct reference.
    ASSERT_EQ(got_t.size(), usable * kIters);
    for (size_t i = 0; i < got_t.size(); ++i)
        ASSERT_EQ(got_t[i], ref.t[i]);
    for (size_t i = 0; i < got_c.size(); ++i)
        ASSERT_EQ(got_c.get(i), ref.choice.get(i));
    honest->close();
    server.stop();
    EXPECT_EQ(server.sessionsRejected(), 4u);
}

// ---------------------------------------------------------------------------
// Unix-domain quota identity: SO_PEERCRED, not a shared bucket
// ---------------------------------------------------------------------------

TEST(CotServicePolicyTest, UnixPeerAddressIsKernelAssertedUid)
{
    // The accepted end of a Unix-domain connection must key quotas by
    // the kernel-asserted peer uid — not a single "unix" bucket every
    // local process could drain or spoof into.
    const std::string path = "/tmp/ironman_peercred_test.sock";
    int listener = net::unixListen(path);
    std::thread client([&] {
        auto ch = net::unixConnect(path);
        ch->sendUint64(1);
        ch->flush();
        EXPECT_EQ(ch->recvUint64(), 2u);
    });
    int fd = net::acceptOn(listener);
    ASSERT_GE(fd, 0);
    {
        net::SocketChannel ch(fd);
        EXPECT_EQ(ch.peerAddress(),
                  "unix:uid:" + std::to_string(::getuid()));
        EXPECT_EQ(ch.recvUint64(), 1u);
        ch.sendUint64(2);
        ch.flush();
    }
    client.join();
    ::close(listener);
    ::unlink(path.c_str());
}

} // namespace
} // namespace ironman::svc
