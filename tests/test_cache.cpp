/**
 * @file
 * Memory-side cache model tests: LRU behaviour, set mapping, spatial
 * locality through 64-byte lines.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/cache.h"

namespace ironman::sim {
namespace {

CacheConfig
tinyConfig()
{
    CacheConfig c;
    c.sizeBytes = 4096; // 64 lines
    c.lineBytes = 64;
    c.ways = 4;         // 16 sets
    return c;
}

TEST(CacheTest, ColdMissThenHit)
{
    CacheSim cache(tinyConfig());
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(63));   // same line
    EXPECT_FALSE(cache.access(64));  // next line
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CacheTest, LruEvictionWithinSet)
{
    CacheConfig cfg = tinyConfig();
    CacheSim cache(cfg);
    const uint64_t set_stride = cfg.sets() * cfg.lineBytes; // 1024

    // Fill one set's 4 ways: tags 0..3.
    for (uint64_t w = 0; w < 4; ++w)
        EXPECT_FALSE(cache.access(w * set_stride));
    // All resident.
    for (uint64_t w = 0; w < 4; ++w)
        EXPECT_TRUE(cache.access(w * set_stride));
    // Touch tag 0 to refresh it, then insert tag 4: victim must be
    // tag 1 (least recently used).
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(4 * set_stride));
    EXPECT_TRUE(cache.access(0));                 // still resident
    EXPECT_FALSE(cache.access(1 * set_stride));   // evicted
}

TEST(CacheTest, DistinctSetsDoNotInterfere)
{
    CacheConfig cfg = tinyConfig();
    CacheSim cache(cfg);
    // 16 consecutive lines land in 16 different sets.
    for (uint64_t i = 0; i < cfg.sets(); ++i)
        EXPECT_FALSE(cache.access(i * cfg.lineBytes));
    for (uint64_t i = 0; i < cfg.sets(); ++i)
        EXPECT_TRUE(cache.access(i * cfg.lineBytes));
}

TEST(CacheTest, WorkingSetFitDrivesHitRate)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    CacheSim cache(cfg);
    Rng rng(4);

    // Working set half the cache: after warmup, ~every access hits.
    for (int i = 0; i < 50000; ++i)
        cache.access(rng.nextBelow(32 * 1024));
    double fit_rate = cache.stats().hitRate();
    EXPECT_GT(fit_rate, 0.95);

    cache.reset();
    // Working set 64x the cache: hit rate collapses toward 1/64.
    for (int i = 0; i < 50000; ++i)
        cache.access(rng.nextBelow(4 * 1024 * 1024));
    EXPECT_LT(cache.stats().hitRate(), 0.10);
}

TEST(CacheTest, SequentialScanHitsWithinLines)
{
    // 16-byte blocks, 64-byte lines: 3 of 4 sequential block reads hit.
    CacheSim cache(tinyConfig());
    for (uint64_t addr = 0; addr < 2048; addr += 16)
        cache.access(addr);
    EXPECT_EQ(cache.stats().misses, 32u);
    EXPECT_EQ(cache.stats().hits, 96u);
}

TEST(CacheTest, ResetClearsContents)
{
    CacheSim cache(tinyConfig());
    cache.access(0);
    EXPECT_TRUE(cache.access(0));
    cache.reset();
    EXPECT_FALSE(cache.access(0));
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CacheTest, AccessLatencyGrowsWithCapacity)
{
    EXPECT_EQ(CacheSim::accessLatencyCycles(32 * 1024), 1u);
    EXPECT_EQ(CacheSim::accessLatencyCycles(128 * 1024), 3u);
    EXPECT_EQ(CacheSim::accessLatencyCycles(256 * 1024), 4u);
    EXPECT_EQ(CacheSim::accessLatencyCycles(1024 * 1024), 6u);
    EXPECT_EQ(CacheSim::accessLatencyCycles(2 * 1024 * 1024), 7u);
}

TEST(CacheTest, PaperCacheShapesConstructible)
{
    for (uint64_t kb : {32, 64, 128, 256, 512, 1024, 2048}) {
        CacheConfig cfg;
        cfg.sizeBytes = kb * 1024;
        CacheSim cache(cfg);
        cache.access(0);
        EXPECT_EQ(cache.stats().accesses(), 1u) << kb << "KB";
    }
}

} // namespace
} // namespace ironman::sim
