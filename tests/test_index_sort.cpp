/**
 * @file
 * Index-sorting tests (invariant 5 of DESIGN.md): the sorted layout is
 * a pure schedule transformation — results bit-identical, locality
 * strictly better on the traces we measure.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nmp/index_sort.h"
#include "ot/lpn.h"
#include "sim/cache.h"

namespace ironman::nmp {
namespace {

ot::LpnParams
lpnParams(size_t n, size_t k, uint64_t seed = 3)
{
    ot::LpnParams p;
    p.n = n;
    p.k = k;
    p.d = 10;
    p.seed = seed;
    return p;
}

struct SortCase
{
    bool columnSwap;
    bool rowLookahead;
    bool zigzag;
    const char *name;
};

class SortParamTest : public ::testing::TestWithParam<SortCase>
{};

TEST_P(SortParamTest, EncodeIsBitIdentical)
{
    const auto c = GetParam();
    ot::LpnEncoder enc(lpnParams(3000, 700));

    SortOptions opt;
    opt.columnSwap = c.columnSwap;
    opt.rowLookahead = c.rowLookahead;
    opt.zigzag = c.zigzag;
    opt.windowRows = 256;

    SortedLpnLayout layout = buildSortedLayout(enc, 0, 3000, opt);

    Rng rng(9);
    std::vector<Block> in = rng.nextBlocks(700);
    std::vector<Block> base = rng.nextBlocks(3000);

    std::vector<Block> reference = base;
    ot::LpnEncodeScratch scratch;
    enc.encodeBlocks(in.data(), reference.data(), 0, 3000, scratch);

    std::vector<Block> sorted = base;
    encodeWithLayout(layout, in.data(), sorted.data());

    EXPECT_EQ(sorted, reference);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SortParamTest,
    ::testing::Values(SortCase{false, false, false, "baseline"},
                      SortCase{true, false, false, "colswap"},
                      SortCase{false, true, true, "lookahead"},
                      SortCase{true, true, false, "both_nozigzag"},
                      SortCase{true, true, true, "full"}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(IndexSortTest, LaneTapeReplayIsBitIdentical)
{
    // n % 8 != 0 exercises the scalar tail of the software order.
    const size_t n = 3003, k = 700;
    ot::LpnEncoder enc(lpnParams(n, k));
    SortedLpnLayout layout =
        buildSortedLayout(enc, 0, n, softwareTapeOrder());
    ASSERT_EQ(layout.accesses(), n * 10);

    Rng rng(19);
    std::vector<Block> in = rng.nextBlocks(k);
    std::vector<Block> base = rng.nextBlocks(n);

    std::vector<Block> reference = base;
    ot::LpnEncodeScratch scratch;
    enc.encodeBlocks(in.data(), reference.data(), 0, n, scratch);

    std::vector<Block> replayed = base;
    encodeWithLayout(layout, in.data(), replayed.data());
    EXPECT_EQ(replayed, reference);
}

TEST(IndexSortTest, LaneTapeReplayMatchesSoftwareTapeWalk)
{
    // The replay's service order must be exactly the order the SIMD
    // gather-XOR kernels read the lane-transposed LpnIndexTape:
    // per 8-row group, tap-major, each tap's 8 lanes in row order.
    const size_t n = 1029, k = 500; // 128 full groups + 5 tail rows
    ot::LpnEncoder enc(lpnParams(n, k));
    SortedLpnLayout layout =
        buildSortedLayout(enc, 0, n, softwareTapeOrder());

    common::ThreadPool pool(1);
    ot::LpnEncodeScratch scratch;
    ot::LpnIndexTape tape;
    enc.buildTape(tape, n, pool, &scratch);

    constexpr size_t lane = ot::LpnIndexTape::kLane;
    const unsigned d = enc.params().d;
    size_t a = 0;
    for (size_t g = 0; g + lane <= n; g += lane)
        for (unsigned i = 0; i < d; ++i)
            for (size_t x = 0; x < lane; ++x, ++a) {
                // Tap i's lane x of group g is one contiguous tape
                // read in the kernel.
                ASSERT_EQ(layout.colidx[a],
                          tape.idx[(g / lane) * d * lane + i * lane + x])
                    << "access " << a;
                ASSERT_EQ(layout.rowidx[a], g + x);
            }
    // Tail rows row-major.
    for (size_t r = n - n % lane; r < n; ++r)
        for (unsigned i = 0; i < d; ++i, ++a)
            ASSERT_EQ(layout.rowidx[a], r);
    EXPECT_EQ(a, layout.accesses());
}

TEST(IndexSortTest, LayoutCoversEveryAccessExactlyOnce)
{
    ot::LpnEncoder enc(lpnParams(1024, 300));
    SortOptions opt;
    SortedLpnLayout layout = buildSortedLayout(enc, 0, 1024, opt);
    ASSERT_EQ(layout.accesses(), 1024u * 10);

    // Multiset of (row, original col) must match the raw matrix.
    std::vector<std::vector<uint32_t>> per_row(1024);
    for (size_t a = 0; a < layout.accesses(); ++a)
        per_row[layout.rowidx[a]].push_back(
            layout.newToOld[layout.colidx[a]]);

    std::vector<uint32_t> raw(10);
    for (size_t r = 0; r < 1024; ++r) {
        enc.rowIndices(r, raw.data());
        std::vector<uint32_t> expect(raw.begin(), raw.end());
        std::sort(expect.begin(), expect.end());
        std::sort(per_row[r].begin(), per_row[r].end());
        EXPECT_EQ(per_row[r], expect) << "row " << r;
    }
}

TEST(IndexSortTest, ColumnPermutationIsABijection)
{
    ot::LpnEncoder enc(lpnParams(512, 2000));
    SortOptions opt;
    SortedLpnLayout layout = buildSortedLayout(enc, 0, 512, opt);
    ASSERT_EQ(layout.newToOld.size(), 2000u);
    std::vector<bool> seen(2000, false);
    for (uint32_t old_col : layout.newToOld) {
        ASSERT_LT(old_col, 2000u);
        EXPECT_FALSE(seen[old_col]);
        seen[old_col] = true;
    }
}

TEST(IndexSortTest, RowLookaheadSortsWithinWindows)
{
    ot::LpnEncoder enc(lpnParams(512, 600));
    SortOptions opt;
    opt.windowRows = 128;
    opt.zigzag = false;
    SortedLpnLayout layout = buildSortedLayout(enc, 0, 512, opt);
    const size_t window_accesses = 128 * 10;
    for (size_t w = 0; w < 4; ++w) {
        for (size_t a = 1; a < window_accesses; ++a) {
            size_t idx = w * window_accesses + a;
            EXPECT_LE(layout.colidx[idx - 1], layout.colidx[idx])
                << "window " << w << " access " << a;
        }
    }
}

TEST(IndexSortTest, SortingImprovesCacheHitRate)
{
    // k = 8192 blocks = 128 KB vector, 32 KB cache: the cache holds a
    // quarter of the vector.
    const size_t n = 60000, k = 8192;
    ot::LpnEncoder enc(lpnParams(n, k));

    sim::CacheConfig cache_cfg;
    cache_cfg.sizeBytes = 32 * 1024;

    auto hit_rate = [&](bool swap, bool lookahead) {
        SortOptions opt;
        opt.columnSwap = swap;
        opt.rowLookahead = lookahead;
        SortedLpnLayout layout = buildSortedLayout(enc, 0, n, opt);
        sim::CacheSim cache(cache_cfg);
        return simulateLayoutCache(layout, cache).hitRate();
    };

    double baseline = hit_rate(false, false);
    double swapped = hit_rate(true, false);
    double full = hit_rate(true, true);

    // Unsorted random access hits ~ cache/vector fraction; column
    // swapping helps a little, look-ahead a lot (Sec. 5.3's "Column
    // Swapping alone achieves a maximum cache hit rate of only 20%").
    EXPECT_GE(swapped, baseline * 0.95);
    EXPECT_GT(full, swapped + 0.15);
    EXPECT_GT(full, 0.5);
}

TEST(IndexSortTest, ZigzagBeatsOneDirectionAcrossWindows)
{
    const size_t n = 60000, k = 8192;
    ot::LpnEncoder enc(lpnParams(n, k));
    sim::CacheConfig cache_cfg;
    cache_cfg.sizeBytes = 64 * 1024; // half the vector resident

    auto hit_rate = [&](bool zigzag) {
        SortOptions opt;
        opt.zigzag = zigzag;
        SortedLpnLayout layout = buildSortedLayout(enc, 0, n, opt);
        sim::CacheSim cache(cache_cfg);
        return simulateLayoutCache(layout, cache).hitRate();
    };
    EXPECT_GT(hit_rate(true), hit_rate(false));
}

TEST(IndexSortTest, MissStreamMatchesStats)
{
    ot::LpnEncoder enc(lpnParams(4000, 1200));
    SortOptions opt;
    SortedLpnLayout layout = buildSortedLayout(enc, 0, 4000, opt);
    sim::CacheSim cache(sim::CacheConfig{});
    std::vector<uint64_t> misses;
    auto stats = simulateLayoutCache(layout, cache, &misses);
    EXPECT_EQ(misses.size(), stats.misses);
    for (uint64_t line : misses)
        EXPECT_EQ(line % 64, 0u);
}

} // namespace
} // namespace ironman::nmp
