/**
 * @file
 * PR 8 round-chain guarantees: the Kogge-Stone comparison ladder,
 * streaming commits, and RTT-driven depth auto-tuning.
 *
 *  - Ladder and ripple DReLU reconstruct the same sign bit across
 *    power-of-two, non-power-of-two, and degenerate widths, and relu
 *    output SHARES are mode-independent — so full forwards are
 *    bit-identical across modes (DESIGN.md invariant 16).
 *  - MlpLayerStat reports MEASURED rounds that match the cost model:
 *    ceil(log2(width-1))+2 per ReLU layer in ladder mode (<= 8 at
 *    width 32, the acceptance bound) vs width+1 for the ripple.
 *  - Streaming commits evaluate the same depth-sized groups as the
 *    non-streaming client, so served outputs equal the grouped local
 *    reference bit for bit — engine and reservoir supplies alike.
 *  - Malformed streaming commits (count 0, count > pending, frame
 *    floods past the 2x-depth window) kill the session, not the
 *    server.
 *  - Depth auto-tune picks a small depth on a fast link and pins the
 *    negotiated ceiling on a simulated WAN.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "infer/infer_client.h"
#include "infer/infer_server.h"
#include "infer/wire.h"
#include "net/socket_channel.h"
#include "net/two_party.h"
#include "ot/ferret_params.h"
#include "ppml/cmp_mode.h"
#include "ppml/cot_engine.h"
#include "ppml/mlp_runner.h"
#include "ppml/model_zoo.h"
#include "ppml/secure_compute.h"
#include "svc/cot_server.h"
#include "svc/operator_stock.h"

namespace ironman::infer {
namespace {

using ppml::CmpMode;
using ppml::MlpModelSpec;

constexpr uint64_t kShareSeed = 0x9a11ad;
constexpr uint64_t kSetupSeed = 4321;

std::vector<std::vector<int64_t>>
makeRequests(const MlpModelSpec &spec, uint32_t batch, int count)
{
    std::vector<std::vector<int64_t>> reqs;
    for (int r = 0; r < count; ++r)
        reqs.push_back(ppml::sampleMlpInput(spec, 8200 + r, batch));
    return reqs;
}

std::vector<int64_t>
concatRequests(const std::vector<std::vector<int64_t>> &reqs,
               size_t first, size_t count)
{
    std::vector<int64_t> cat;
    for (size_t r = first; r < first + count; ++r)
        cat.insert(cat.end(), reqs[r].begin(), reqs[r].end());
    return cat;
}

/** Two in-process GMW parties at an arbitrary width. */
void
runParties(uint64_t seed, unsigned width,
           const std::function<void(ppml::SecureCompute &)> &party0,
           const std::function<void(ppml::SecureCompute &)> &party1)
{
    net::runTwoParty(
        [&](net::Channel &ch) {
            ppml::FerretCotEngine engine(ch, 0, ot::tinyTestParams(),
                                         seed);
            ppml::SecureCompute sc(ch, 0, engine, width);
            party0(sc);
        },
        [&](net::Channel &ch) {
            ppml::FerretCotEngine engine(ch, 1, ot::tinyTestParams(),
                                         seed);
            ppml::SecureCompute sc(ch, 1, engine, width);
            party1(sc);
        });
}

// ---------------------------------------------------------------------------
// The carry circuits agree — everywhere
// ---------------------------------------------------------------------------

// Power-of-two, non-power-of-two (m = width-1 = 11 and 16), and the
// degenerate width-2 circuit (m = 1: the ladder has no combine
// levels, the carry IS the lone generate).
constexpr unsigned kWidths[] = {2, 8, 12, 17, 32};

TEST(RoundChainTest, LadderAndRippleReconstructTheSameSign)
{
    const size_t n = 33; // odd, to catch stride bugs in the lanes
    for (const unsigned width : kWidths) {
        const uint64_t mask = (uint64_t(1) << width) - 1;
        const uint64_t sign = uint64_t(1) << (width - 1);
        Rng rng(0xd0e0 + width);
        std::vector<uint64_t> values(n), s0(n), s1(n);
        for (size_t i = 0; i < n; ++i) {
            // Dense around the boundaries: 0, -1, min, max included.
            if (i == 0) values[i] = 0;
            else if (i == 1) values[i] = mask;        // -1
            else if (i == 2) values[i] = sign;        // most negative
            else if (i == 3) values[i] = sign - 1;    // most positive
            else values[i] = rng.nextUint64() & mask;
            s0[i] = rng.nextUint64() & mask;
            s1[i] = (values[i] - s0[i]) & mask;
        }

        for (const CmpMode mode : {CmpMode::Ladder, CmpMode::Ripple}) {
            BitVec b0, b1;
            runParties(77, width,
                       [&](ppml::SecureCompute &sc) {
                           sc.setComparisonMode(mode);
                           b0 = sc.drelu(s0);
                       },
                       [&](ppml::SecureCompute &sc) {
                           sc.setComparisonMode(mode);
                           b1 = sc.drelu(s1);
                       });
            for (size_t i = 0; i < n; ++i) {
                const bool nonneg = (values[i] & sign) == 0;
                EXPECT_EQ(b0.get(i) ^ b1.get(i), nonneg)
                    << cmpModeName(mode) << " width " << width
                    << " value " << values[i];
            }
        }
    }
}

TEST(RoundChainTest, CrossModeLocalForwardsBitIdentical)
{
    struct Case
    {
        const char *model;
        unsigned width;
    };
    // The fracBits-0 width-8 floor model, a non-default width, the
    // acceptance-grid model, and the deep 3-ReLU-layer one.
    constexpr Case kCases[] = {{"mlp-4x3x2", 8},
                               {"mlp-12x6x3", 16},
                               {"mlp-16x8x4", 32},
                               {"mlp-16x16x16x8", 24}};
    for (const Case &c : kCases) {
        const MlpModelSpec &spec = *ppml::findMlpModel(c.model);
        const auto reqs = makeRequests(spec, 2, 2);
        const ppml::LocalMlpResult ladder = ppml::runLocalMlpInference(
            spec, c.width, reqs, kShareSeed, kSetupSeed,
            ot::tinyTestParams(), CmpMode::Ladder);
        const ppml::LocalMlpResult ripple = ppml::runLocalMlpInference(
            spec, c.width, reqs, kShareSeed, kSetupSeed,
            ot::tinyTestParams(), CmpMode::Ripple);

        // The invariant the whole negotiation story leans on: the
        // comparison mode never changes output bits.
        EXPECT_EQ(ladder.outputs, ripple.outputs)
            << spec.name << " w" << c.width;

        // The trade is real: more ladder COTs (offline), and the
        // per-mode estimator matches what was actually consumed
        // (cotsPerImage is per DIRECTION; the party counter sees 2
        // COTs per AND gate).
        EXPECT_GT(ladder.cotsPerParty, ripple.cotsPerParty);
        const uint64_t imgs = 2 * 2; // requests x batch
        EXPECT_EQ(ladder.cotsPerParty,
                  2 * imgs * spec.cotsPerImage(c.width, CmpMode::Ladder));
        EXPECT_EQ(ripple.cotsPerParty,
                  2 * imgs * spec.cotsPerImage(c.width, CmpMode::Ripple));

        const int64_t bound = ppml::mlpTruncationErrorBound(spec);
        for (size_t r = 0; r < reqs.size(); ++r) {
            const auto plain = ppml::mlpPlainForward(spec, reqs[r]);
            for (size_t i = 0; i < plain.size(); ++i)
                EXPECT_LE(std::llabs(ladder.outputs[r][i] - plain[i]),
                          bound)
                    << spec.name << " output " << i;
        }
    }
}

TEST(RoundChainTest, MeasuredRoundsMatchCostModel)
{
    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-16x8x4");
    constexpr unsigned kWidth = 32;
    const std::vector<uint64_t> x(spec.inputDim(), 5);

    for (const CmpMode mode : {CmpMode::Ladder, CmpMode::Ripple}) {
        std::vector<ppml::MlpLayerStat> stats;
        net::runTwoParty(
            [&](net::Channel &ch) {
                ppml::FerretCotEngine engine(ch, 0,
                                             ot::tinyTestParams(), 78);
                ppml::SecureCompute sc(ch, 0, engine, kWidth);
                sc.setComparisonMode(mode);
                ppml::MlpRunner runner(spec, kWidth);
                runner.forward(sc, ch, x);
                stats = runner.layerStats();
            },
            [&](net::Channel &ch) {
                ppml::FerretCotEngine engine(ch, 1,
                                             ot::tinyTestParams(), 78);
                ppml::SecureCompute sc(ch, 1, engine, kWidth);
                sc.setComparisonMode(mode);
                ppml::MlpRunner runner(spec, kWidth);
                runner.forward(sc, ch, x);
            });

        bool saw_relu = false;
        for (const ppml::MlpLayerStat &st : stats) {
            if (st.label.rfind("relu", 0) != 0)
                continue;
            saw_relu = true;
            // MEASURED interaction batches, not an analytic constant.
            EXPECT_EQ(st.rounds, ppml::reluRounds(kWidth, mode))
                << cmpModeName(mode);
            EXPECT_EQ(st.cots,
                      spec.reluElements() *
                          (2 * ppml::dreluAndGates(kWidth, mode) + 2))
                << cmpModeName(mode);
        }
        EXPECT_TRUE(saw_relu);
        if (mode == CmpMode::Ladder)
            // The acceptance bound: width-32 DReLU+MUX in <= 8 rounds.
            EXPECT_LE(ppml::reluRounds(kWidth, mode), 8u);
    }
}

// ---------------------------------------------------------------------------
// Streaming commits: bit-identity + window mechanics
// ---------------------------------------------------------------------------

TEST(RoundChainTest, StreamingServedMatchesGroupedReference)
{
    svc::OperatorStock stock;
    svc::CotServer cot;
    stock.attach(cot);
    const uint16_t cot_port = cot.listenTcp(0);
    InferServer server;
    server.attachOperatorStock(stock);
    const uint16_t port = server.listenTcp(0);

    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-16x8x4");
    constexpr unsigned kWidth = 32;
    constexpr uint16_t kDepth = 2;
    constexpr int kCount = 6;
    const auto reqs = makeRequests(spec, 1, kCount);

    // Streaming with depth 2 commits groups {0,1}, {2,3}, {4,5} —
    // the SAME boundaries as the non-streaming depth-2 client — so
    // the reference is one local session evaluating those three
    // grouped requests in order.
    std::vector<std::vector<int64_t>> grouped_reqs;
    for (int g = 0; g < kCount; g += kDepth)
        grouped_reqs.push_back(concatRequests(reqs, g, kDepth));
    const ppml::LocalMlpResult grouped = ppml::runLocalMlpInference(
        spec, kWidth, grouped_reqs, kShareSeed, kSetupSeed,
        ot::tinyTestParams());
    const size_t req_out = spec.outputDim();

    for (const SupplyKind supply :
         {SupplyKind::Engine, SupplyKind::Reservoir}) {
        InferClient::Options opt;
        opt.modelId = spec.id;
        opt.width = kWidth;
        opt.batch = 1;
        opt.setupSeed = kSetupSeed;
        opt.shareSeed = kShareSeed;
        opt.depth = kDepth;
        opt.streamCommit = true;
        auto client =
            supply == SupplyKind::Reservoir
                ? InferClient::connectTcpReservoir(
                      "127.0.0.1", port, "127.0.0.1", cot_port, opt)
                : InferClient::connectTcp("127.0.0.1", port, opt);
        ASSERT_TRUE(client->streaming());
        ASSERT_EQ(client->negotiatedDepth(), kDepth);

        std::vector<uint32_t> tags;
        for (int r = 0; r < kCount; ++r)
            tags.push_back(client->submit(reqs[r]));
        // Streaming streams AHEAD of the window: after 6 submissions
        // two groups committed ({0,1} at the 4th, {2,3} at the 6th)
        // and {4,5} is still pending — more than a non-streaming
        // client could ever hold after submit() returns.
        EXPECT_EQ(client->inFlight(), size_t(kDepth));

        const auto results = client->drain();
        ASSERT_EQ(results.size(), size_t(kCount));
        for (int r = 0; r < kCount; ++r) {
            EXPECT_EQ(results[r].tag, tags[r]);
            const auto &group_out = grouped.outputs[r / kDepth];
            const size_t off = size_t(r % kDepth) * req_out;
            EXPECT_EQ(results[r].outputs,
                      std::vector<int64_t>(group_out.begin() + off,
                                           group_out.begin() + off +
                                               req_out))
                << supplyKindName(supply) << " request " << r;
        }
        client->close();
    }

    // And streaming is purely a scheduling property: a non-streaming
    // depth-2 session over the same seeds reconstructs the same bits.
    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = kWidth;
    opt.batch = 1;
    opt.setupSeed = kSetupSeed;
    opt.shareSeed = kShareSeed;
    opt.depth = kDepth;
    auto plainClient = InferClient::connectTcp("127.0.0.1", port, opt);
    ASSERT_FALSE(plainClient->streaming());
    for (int r = 0; r < kCount; ++r)
        plainClient->submit(reqs[r]);
    const auto plain_results = plainClient->drain();
    ASSERT_EQ(plain_results.size(), size_t(kCount));
    for (int r = 0; r < kCount; ++r) {
        const auto &group_out = grouped.outputs[r / kDepth];
        const size_t off = size_t(r % kDepth) * req_out;
        EXPECT_EQ(plain_results[r].outputs,
                  std::vector<int64_t>(group_out.begin() + off,
                                       group_out.begin() + off +
                                           req_out))
            << "non-streaming request " << r;
    }
    plainClient->close();
    server.stop();
    cot.stop();
}

// ---------------------------------------------------------------------------
// Malformed streaming commits
// ---------------------------------------------------------------------------

TEST(RoundChainTest, MalformedStreamingCommitsKillSessionNotServer)
{
    InferServer::Config cfg;
    cfg.maxDepth = 2;
    InferServer server(cfg);
    const uint16_t port = server.listenTcp(0);
    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-4x3x2");

    // A hand-rolled streaming session that really reaches the v2 op
    // loop: play the hello AND the interactive engine priming, then
    // misbehave. (The raw post-accept probes in test_infer_pipeline
    // die inside engine setup instead, which never exercises the
    // counted-commit validation.)
    struct RawSession
    {
        std::unique_ptr<net::SocketChannel> ch;
        std::unique_ptr<ppml::FerretCotEngine> engine;
    };
    auto openStreaming = [&]() {
        RawSession s;
        s.ch = net::tcpConnect("127.0.0.1", port);
        InferHello h;
        h.supply = SupplyKind::Engine;
        h.modelId = spec.id;
        h.width = 8;
        h.batch = 1;
        h.setupSeed = kSetupSeed;
        h.params = svc::WireParams::of(ot::tinyTestParams());
        h.depth = 2;
        h.flags = kInferFlagStreamCommit; // unpacked, ripple
        sendInferHello(*s.ch, h);
        const InferAccept a = recvInferAccept(*s.ch);
        EXPECT_EQ(a.status, InferStatus::Ok);
        EXPECT_NE(a.flags & kInferFlagStreamCommit, 0);
        s.engine = std::make_unique<ppml::FerretCotEngine>(
            *s.ch, 0, ot::tinyTestParams(), kSetupSeed);
        return s;
    };
    const std::vector<uint64_t> x(spec.inputDim(), 1);
    auto sendFrame = [&](net::SocketChannel &ch, uint32_t tag) {
        sendInferOp(ch, InferOp::Infer);
        sendInferTag(ch, tag);
        sendShareVector(ch, x.data(), x.size());
    };
    // The server must reject WITHOUT answering: the next read sees a
    // dead session, never a response tag.
    auto expectSessionDied = [](RawSession &s, const char *what) {
        try {
            s.ch->flush();
            (void)recvInferTag(*s.ch);
            ADD_FAILURE() << what << ": server answered a bad commit";
        } catch (const std::exception &) {
            // Dropped, as required.
        }
    };

    {
        // Commit count 0: meaningless — nothing-pending is expressed
        // by not committing.
        RawSession s = openStreaming();
        sendInferOp(*s.ch, InferOp::Commit);
        sendCommitCount(*s.ch, 0);
        expectSessionDied(s, "count zero");
    }
    {
        // Commit count beyond what was enqueued.
        RawSession s = openStreaming();
        sendFrame(*s.ch, 1);
        sendInferOp(*s.ch, InferOp::Commit);
        sendCommitCount(*s.ch, 2);
        expectSessionDied(s, "count beyond pending");
    }
    {
        // Frame flood past the streaming window (2 x depth = 4).
        RawSession s = openStreaming();
        try {
            for (uint32_t r = 0; r < 5; ++r)
                sendFrame(*s.ch, r);
        } catch (const std::exception &) {
            // The server may hang up mid-flood; also a pass.
        }
        expectSessionDied(s, "window flood");
    }

    // The server still serves a well-formed streaming session.
    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = 8;
    opt.batch = 1;
    opt.setupSeed = kSetupSeed;
    opt.shareSeed = kShareSeed;
    opt.depth = 2;
    opt.streamCommit = true;
    auto client = InferClient::connectTcp("127.0.0.1", port, opt);
    ASSERT_TRUE(client->streaming());
    const auto reqs = makeRequests(spec, 1, 2);
    const ppml::LocalMlpResult grouped = ppml::runLocalMlpInference(
        spec, 8, {concatRequests(reqs, 0, 2)}, kShareSeed, kSetupSeed,
        ot::tinyTestParams());
    client->submit(reqs[0]);
    client->submit(reqs[1]);
    const auto results = client->drain();
    ASSERT_EQ(results.size(), 2u);
    const size_t out = spec.outputDim();
    for (size_t r = 0; r < 2; ++r)
        EXPECT_EQ(results[r].outputs,
                  std::vector<int64_t>(
                      grouped.outputs[0].begin() + r * out,
                      grouped.outputs[0].begin() + (r + 1) * out));
    client->close();
    server.stop();
    EXPECT_GE(server.sessionsServed(), 1u);
}

// ---------------------------------------------------------------------------
// Depth auto-tune
// ---------------------------------------------------------------------------

TEST(RoundChainTest, AutoDepthScalesWithMeasuredRtt)
{
    InferServer server; // maxDepth 32: the negotiated ceiling
    const uint16_t port = server.listenTcp(0);
    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-16x8x4");

    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = 32;
    opt.batch = 1;
    opt.setupSeed = kSetupSeed;
    opt.shareSeed = kShareSeed;
    opt.depthAuto = true;
    opt.depthBudgetUs = 2000; // wide margins for a noisy CI box

    // Fast link: loopback RTT against a 2 ms budget tunes shallow.
    auto lan = InferClient::connectTcp("127.0.0.1", port, opt);
    const uint16_t lan_depth = lan->negotiatedDepth();
    EXPECT_GE(lan_depth, 1u);
    // 7 rounds/group at w32 ladder: hitting 32 would need a ~9 ms
    // loopback handshake.
    EXPECT_LT(lan_depth, 32u);
    lan->infer(makeRequests(spec, 1, 1)[0]); // sane session end to end
    lan->close();

    // Simulated WAN: >= 40 ms of injected RTT pins the ceiling.
    opt.simulatedDelayUs = 20000;
    opt.shareSeed = kShareSeed + 1;
    auto wan = InferClient::connectTcp("127.0.0.1", port, opt);
    EXPECT_GE(wan->measuredRttUs(), 20000u);
    const uint16_t wan_depth = wan->negotiatedDepth();
    EXPECT_EQ(wan_depth, 32u);
    EXPECT_GT(wan_depth, lan_depth);
    wan->close();
    server.stop();
}

} // namespace
} // namespace ironman::infer
