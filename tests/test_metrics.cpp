/**
 * @file
 * The live telemetry layer (common/metrics.h, net/flight_recorder.h,
 * net/metrics_endpoint.h) and its guardrails:
 *
 *  - log-linear histogram bucket geometry: exact unit buckets below
 *    2*kSubBuckets, <=1/kSubBuckets relative width above, a single
 *    overflow bucket past the tracked range;
 *  - percentile monotonicity (p50 <= p90 <= p99) by construction;
 *  - registry identity: one name, one handle, process-wide totals;
 *  - concurrent recording from many threads (the TSan job runs this
 *    binary — the registry's whole point is hot-path thread safety);
 *  - the text/JSON scrape surfaces;
 *  - flight recorder ring semantics and the WireError dump;
 *  - StatSet self-merge stays a no-op (the bench-side guardrail that
 *    rode along with the registry split, see common/stats.h).
 */

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/stats.h"
#include "net/flight_recorder.h"
#include "net/metrics_endpoint.h"

namespace ironman {
namespace {

using metrics::Histogram;

// ---------------------------------------------------------------------------
// Histogram bucket geometry
// ---------------------------------------------------------------------------

TEST(MetricsHistogramTest, SmallValuesGetExactUnitBuckets)
{
    for (uint64_t v = 0; v < 2 * Histogram::kSubBuckets; ++v) {
        EXPECT_EQ(Histogram::bucketIndex(v), size_t(v)) << "v=" << v;
        EXPECT_EQ(Histogram::bucketLowerBound(v), v);
    }
}

TEST(MetricsHistogramTest, BucketsAreContiguousAndMonotone)
{
    // Every bucket's lower bound maps back into that bucket, and the
    // value just below the NEXT bucket's lower bound still maps here:
    // no gaps, no overlaps, monotone bounds.
    for (size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
        const uint64_t lo = Histogram::bucketLowerBound(i);
        const uint64_t next = Histogram::bucketLowerBound(i + 1);
        ASSERT_LT(lo, next) << "bucket " << i;
        EXPECT_EQ(Histogram::bucketIndex(lo), i) << "bucket " << i;
        EXPECT_EQ(Histogram::bucketIndex(next - 1), i)
            << "bucket " << i;
    }
}

TEST(MetricsHistogramTest, RelativeBucketWidthIsBounded)
{
    // The HDR property: above the unit range, bucket width / lower
    // bound never exceeds 1/kSubBuckets (12.5% at kSubBucketBits=3).
    for (size_t i = 2 * Histogram::kSubBuckets;
         i + 1 < Histogram::kBuckets; ++i) {
        const uint64_t lo = Histogram::bucketLowerBound(i);
        const uint64_t width = Histogram::bucketLowerBound(i + 1) - lo;
        EXPECT_LE(width * Histogram::kSubBuckets, lo)
            << "bucket " << i;
    }
}

TEST(MetricsHistogramTest, OverflowBucketCatchesOutOfRange)
{
    const uint64_t max_tracked =
        (uint64_t(Histogram::kSubBuckets) << Histogram::kOctaves) - 1;
    EXPECT_LT(Histogram::bucketIndex(max_tracked),
              size_t(Histogram::kBuckets));
    EXPECT_EQ(Histogram::bucketIndex(max_tracked + 1),
              size_t(Histogram::kOverflowIndex));
    EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX),
              size_t(Histogram::kOverflowIndex));

    Histogram h;
    h.record(5);
    h.record(max_tracked + 1);
    h.record(UINT64_MAX);
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.overflow, 2u);
}

TEST(MetricsHistogramTest, PercentilesAreMonotoneAndBucketAligned)
{
    Histogram h;
    // A deliberately skewed distribution: lots of small samples, a
    // long tail.
    for (uint64_t i = 0; i < 850; ++i)
        h.record(10 + i % 7);
    for (uint64_t i = 0; i < 145; ++i)
        h.record(1000 + i * 13);
    for (uint64_t i = 0; i < 5; ++i)
        h.record(100000 + i * 997);

    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 1000u);
    EXPECT_LE(s.p50, s.p90);
    EXPECT_LE(s.p90, s.p99);
    // Percentiles are reported as bucket lower bounds.
    EXPECT_EQ(s.p50,
              Histogram::bucketLowerBound(Histogram::bucketIndex(s.p50)));
    EXPECT_EQ(s.p99,
              Histogram::bucketLowerBound(Histogram::bucketIndex(s.p99)));
    // And land in the right regions of the skew.
    EXPECT_LT(s.p50, 20u);
    EXPECT_GE(s.p90, 100u);
    EXPECT_GE(s.p99, 1000u);
}

TEST(MetricsHistogramTest, EmptySnapshotIsAllZero)
{
    Histogram h;
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.sum, 0u);
    EXPECT_EQ(s.p50, 0u);
    EXPECT_EQ(s.p99, 0u);
}

// ---------------------------------------------------------------------------
// Registry identity + scrape surfaces
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameYieldsSameHandle)
{
    metrics::Counter &a = metrics::counter("test_registry_shared");
    metrics::Counter &b = metrics::counter("test_registry_shared");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    b.inc(4);
    EXPECT_EQ(metrics::Registry::instance().counterValue(
                  "test_registry_shared"),
              7u);

    metrics::Gauge &g1 = metrics::gauge("test_registry_gauge");
    metrics::Gauge &g2 = metrics::gauge("test_registry_gauge");
    EXPECT_EQ(&g1, &g2);
    g1.add(10);
    g2.sub(4);
    EXPECT_EQ(metrics::Registry::instance().gaugeValue(
                  "test_registry_gauge"),
              6);
}

TEST(MetricsRegistryTest, AbsentNamesReadAsZero)
{
    EXPECT_EQ(metrics::Registry::instance().counterValue(
                  "test_registry_never_registered"),
              0u);
    EXPECT_EQ(metrics::Registry::instance()
                  .histogramSnapshot("test_registry_never_registered")
                  .count,
              0u);
}

TEST(MetricsRegistryTest, RenderTextExposesAllKinds)
{
    metrics::counter("test_render_counter").inc(42);
    metrics::gauge("test_render_gauge").add(-5);
    metrics::histogram("test_render_hist").record(100);

    const std::string text =
        metrics::Registry::instance().renderText();
    EXPECT_NE(text.find("test_render_counter 42\n"), std::string::npos)
        << text;
    EXPECT_NE(text.find("test_render_gauge -5\n"), std::string::npos);
    EXPECT_NE(text.find("test_render_hist_count 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("test_render_hist_p99 "), std::string::npos);
}

TEST(MetricsRegistryTest, RenderTextEmitsCumulativeBucketLines)
{
    metrics::Histogram &h =
        metrics::histogram("test_bucket_lines_hist");
    h.record(10);
    h.record(10);
    h.record(5000);

    const std::string text =
        metrics::Registry::instance().renderText();
    // Existing series survive (the CI smoke greps _count/_p99)...
    EXPECT_NE(text.find("test_bucket_lines_hist_count 3\n"),
              std::string::npos)
        << text;
    // ...and the new cumulative buckets close with a mandatory +Inf
    // line equal to _count.
    EXPECT_NE(text.find("test_bucket_lines_hist_bucket{le=\"11\"} 2\n"),
              std::string::npos)
        << text;
    EXPECT_NE(
        text.find("test_bucket_lines_hist_bucket{le=\"+Inf\"} 3\n"),
        std::string::npos)
        << text;
    // Cumulative means the tail bucket counts all three samples.
    size_t last_cum = 0;
    size_t at = 0;
    while ((at = text.find("test_bucket_lines_hist_bucket{le=\"",
                           at)) != std::string::npos) {
        const size_t sp = text.find("} ", at);
        const size_t cum = size_t(
            std::atoll(text.c_str() + sp + 2));
        EXPECT_GE(cum, last_cum);
        last_cum = cum;
        at = sp;
    }
    EXPECT_EQ(last_cum, 3u);
}

TEST(MetricsRegistryTest, RenderJsonMatchesWriteJson)
{
    metrics::counter("test_render_json_counter").inc(9);
    const std::string doc =
        metrics::Registry::instance().renderJson();
    EXPECT_EQ(doc.front(), '{');
    EXPECT_EQ(doc[doc.size() - 2], '}'); // trailing newline after }
    EXPECT_NE(doc.find("\"ironman.metrics.v1\""), std::string::npos);
    EXPECT_NE(doc.find("\"test_render_json_counter\": 9"),
              std::string::npos);

    const std::string path = "test_metrics_render_json.json";
    ASSERT_TRUE(metrics::Registry::instance().writeJson(path));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string body(1 << 20, '\0');
    body.resize(std::fread(body.data(), 1, body.size(), f));
    std::fclose(f);
    std::remove(path.c_str());
    // One code path: the file IS the endpoint body (modulo counters
    // that moved between the two snapshots — compare the prefix up to
    // the first volatile value instead of full equality).
    EXPECT_EQ(body.substr(0, body.find("\"counters\"")),
              doc.substr(0, doc.find("\"counters\"")));
}

TEST(MetricsRegistryTest, WriteJsonProducesSnapshotFile)
{
    metrics::counter("test_json_counter").inc(7);
    const std::string path = "test_metrics_snapshot.json";
    ASSERT_TRUE(metrics::Registry::instance().writeJson(path));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string body(1 << 16, '\0');
    body.resize(std::fread(body.data(), 1, body.size(), f));
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_NE(body.find("\"ironman.metrics.v1\""), std::string::npos)
        << body;
    EXPECT_NE(body.find("\"test_json_counter\""), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsExact)
{
    // The TSan job runs this binary: hammer one counter, one gauge and
    // one histogram from several threads and require exact totals.
    metrics::Counter &c = metrics::counter("test_concurrent_counter");
    metrics::Gauge &g = metrics::gauge("test_concurrent_gauge");
    metrics::Histogram &h =
        metrics::histogram("test_concurrent_hist");
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;

    const uint64_t c0 = c.value();
    const uint64_t h0 = h.count();
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                c.inc();
                g.add(1);
                g.sub(1);
                h.record(uint64_t(t) * 1000 + uint64_t(i % 100));
            }
        });
    for (std::thread &w : workers)
        w.join();

    EXPECT_EQ(c.value() - c0, uint64_t(kThreads) * kIters);
    EXPECT_EQ(h.count() - h0, uint64_t(kThreads) * kIters);
    EXPECT_EQ(g.value(), 0);
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_LE(s.p50, s.p90);
    EXPECT_LE(s.p90, s.p99);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, RingKeepsOnlyTheLastEvents)
{
    net::FlightRecorder fr;
    for (uint32_t i = 0; i < net::FlightRecorder::kCapacity + 10; ++i)
        fr.note("event", i, i * 2);
    EXPECT_EQ(fr.total(), net::FlightRecorder::kCapacity + 10);

    const std::string text = fr.render();
    // The oldest surviving event is exactly 10 notes in.
    EXPECT_EQ(text.find("tag=9 "), std::string::npos) << text;
    EXPECT_NE(text.find("tag=10 "), std::string::npos) << text;
    EXPECT_NE(
        text.find("tag=" + std::to_string(
                               net::FlightRecorder::kCapacity + 9)),
        std::string::npos)
        << text;
}

TEST(FlightRecorderTest, DumpStoresForensicRecord)
{
    net::FlightRecorder fr;
    fr.note("hello", 0);
    fr.note("extend", 3, 4096);
    fr.dump(77, "deadline");

    const std::string dump = net::lastFlightDump();
    EXPECT_NE(dump.find("session 77"), std::string::npos) << dump;
    EXPECT_NE(dump.find("deadline"), std::string::npos);
    EXPECT_NE(dump.find("hello"), std::string::npos);
    EXPECT_NE(dump.find("extend"), std::string::npos);
    EXPECT_NE(dump.find("bytes=4096"), std::string::npos);
    EXPECT_GE(metrics::Registry::instance().counterValue(
                  "net_flight_dumps_total"),
              1u);
}

TEST(FlightRecorderTest, DumpAllRendersEveryLiveRing)
{
    net::FlightRecorder a;
    a.setSession(101);
    a.note("alpha", 1);
    net::FlightRecorder b;
    b.setSession(202);
    b.note("beta", 2, 64);

    const std::string all = net::dumpAllFlightRecorders("SIGUSR1");
    EXPECT_NE(all.find("SIGUSR1"), std::string::npos) << all;
    EXPECT_NE(all.find("session 101"), std::string::npos);
    EXPECT_NE(all.find("session 202"), std::string::npos);
    EXPECT_NE(all.find("alpha"), std::string::npos);
    EXPECT_NE(all.find("beta"), std::string::npos);
    // Retained: the /flight endpoint serves the same text.
    EXPECT_EQ(net::lastFlightDump(), all);

    // The owner can keep recording while another thread dumps.
    std::thread dumper([&] {
        for (int i = 0; i < 8; ++i)
            (void)net::dumpAllFlightRecorders("race");
    });
    for (uint32_t i = 0; i < 5000; ++i)
        a.note("spin", i, i);
    dumper.join();
}

// ---------------------------------------------------------------------------
// Metrics endpoint (scrape over plain HTTP)
// ---------------------------------------------------------------------------

std::string
scrapeOnce(uint16_t port, const std::string &path = "/metrics")
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
              ssize_t(req.size()));
    std::string body;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        body.append(buf, size_t(n));
    }
    ::close(fd);
    return body;
}

TEST(MetricsEndpointTest, ServesRegistryAsText)
{
    metrics::counter("test_endpoint_counter").inc(11);
    net::MetricsEndpoint ep;
    const uint16_t port = ep.listenTcp(0);
    ASSERT_NE(port, 0);
    EXPECT_TRUE(ep.listening());

    const std::string reply = scrapeOnce(port);
    EXPECT_NE(reply.find("HTTP/1.0 200 OK"), std::string::npos)
        << reply;
    EXPECT_NE(reply.find("test_endpoint_counter 11\n"),
              std::string::npos)
        << reply;

    // Serial accept loop: a second scrape works too.
    const std::string again = scrapeOnce(port);
    EXPECT_NE(again.find("test_endpoint_counter 11\n"),
              std::string::npos);

    ep.stop();
    EXPECT_FALSE(ep.listening());
    ep.stop(); // idempotent
}

TEST(MetricsEndpointTest, RoutesPathsWithCorrectTypes)
{
    metrics::counter("test_routes_counter").inc(5);
    net::FlightRecorder fr;
    fr.note("probe", 1, 2);
    net::dumpAllFlightRecorders("test");

    net::MetricsEndpoint ep;
    const uint16_t port = ep.listenTcp(0);

    // /metrics and / and the bare (request-less) reader all serve the
    // Prometheus text.
    EXPECT_NE(scrapeOnce(port, "/metrics")
                  .find("test_routes_counter 5\n"),
              std::string::npos);
    EXPECT_NE(scrapeOnce(port, "/").find("test_routes_counter 5\n"),
              std::string::npos);

    // /metrics.json: JSON body, JSON Content-Type.
    const std::string json = scrapeOnce(port, "/metrics.json");
    EXPECT_NE(json.find("Content-Type: application/json"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"ironman.metrics.v1\""), std::string::npos);
    EXPECT_NE(json.find("\"test_routes_counter\": 5"),
              std::string::npos);

    // /trace: always a parseable trace document (live export when no
    // session retained one yet).
    const std::string tr = scrapeOnce(port, "/trace");
    EXPECT_NE(tr.find("Content-Type: application/json"),
              std::string::npos);
    EXPECT_NE(tr.find("\"traceEvents\""), std::string::npos) << tr;

    // /flight: the retained all-sessions dump.
    const std::string fl = scrapeOnce(port, "/flight");
    EXPECT_NE(fl.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(fl.find("probe"), std::string::npos) << fl;

    // Unknown paths are a 404, not a silent /metrics alias.
    const std::string missing = scrapeOnce(port, "/nope");
    EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"),
              std::string::npos)
        << missing;
    EXPECT_EQ(missing.find("test_routes_counter"), std::string::npos);

    // Every reply advertises a correct Content-Length.
    const size_t hdr_end = json.find("\r\n\r\n");
    ASSERT_NE(hdr_end, std::string::npos);
    const size_t cl = json.find("Content-Length: ");
    ASSERT_NE(cl, std::string::npos);
    EXPECT_EQ(size_t(std::atoll(json.c_str() + cl + 16)),
              json.size() - (hdr_end + 4));

    ep.stop();
}

// ---------------------------------------------------------------------------
// StatSet guardrail (satellite of the registry split)
// ---------------------------------------------------------------------------

TEST(StatSetGuardrailTest, SelfMergeIsANoOp)
{
    StatSet s;
    s.add("alpha", 3);
    s.add("alpha", 5);
    s.add("beta", 2);

    s.merge(s); // must not double every counter

    EXPECT_EQ(s.get("alpha"), 8u);
    EXPECT_EQ(s.get("beta"), 2u);

    // A genuine merge still sums.
    StatSet other;
    other.add("alpha", 1);
    s.merge(other);
    EXPECT_EQ(s.get("alpha"), 9u);
}

} // namespace
} // namespace ironman
