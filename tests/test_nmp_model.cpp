/**
 * @file
 * Ironman-NMP model tests: area/power calibration against Table 6,
 * performance-model trend checks against the paper's headline claims
 * (rank scaling, cache sweet spots, SPCOT-vs-LPN balance), and the
 * unified-unit functional equivalence.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/prg.h"
#include "nmp/area_power.h"
#include "nmp/ironman_model.h"
#include "nmp/reference.h"
#include "nmp/unified_unit.h"
#include "ot/ggm_tree.h"

namespace ironman::nmp {
namespace {

IronmanConfig
config(unsigned dimms, uint64_t cache_bytes)
{
    IronmanConfig cfg;
    cfg.numDimms = dimms;
    cfg.cacheBytes = cache_bytes;
    cfg.sampleRows = 60000; // keep unit tests fast
    return cfg;
}

TEST(AreaPowerTest, Table6Calibration)
{
    PuSpec pu256;
    pu256.cacheBytes = 256 * 1024;
    EXPECT_NEAR(pu256.areaMm2(), 1.482, 0.01);
    EXPECT_NEAR(pu256.powerWatt(), 1.301, 0.01);

    PuSpec pu1m;
    pu1m.cacheBytes = 1024 * 1024;
    EXPECT_NEAR(pu1m.areaMm2(), 2.995, 0.01);
    EXPECT_NEAR(pu1m.powerWatt(), 1.430, 0.01);

    // Far below a DRAM chip / LRDIMM budget (Sec. 6.6).
    EXPECT_LT(pu1m.areaMm2(), ReferencePlatforms::dramChipAreaMm2 / 10);
    EXPECT_LT(pu1m.powerWatt(), ReferencePlatforms::lrdimmPowerWatt / 2);
}

TEST(AreaPowerTest, Table2PerfPerArea)
{
    // ChaCha8: 512 bits/cycle / 0.215 mm^2 vs AES 128 bits / 0.233.
    auto chacha = chaCha8Core();
    auto aes = aes128Core();
    double ratio = (double(chacha.outputBits) / chacha.areaMm2) /
                   (double(aes.outputBits) / aes.areaMm2);
    EXPECT_NEAR(ratio, 4.49, 0.2); // Table 2's 4.491

    // Power per block: ChaCha 45.33mW/4 blocks vs AES 35.05mW/1.
    double power_per_block_ratio =
        (aes.powerWatt / aes.blocksPerOp()) /
        (chacha.powerWatt / chacha.blocksPerOp());
    EXPECT_NEAR(power_per_block_ratio, 3.09, 0.15); // Table 2's 3.092
}

TEST(IronmanModelTest, MoreRanksReduceLpnLatency)
{
    ot::FerretParams p = ot::paperParamSet(20);
    double prev = 1e30;
    for (unsigned dimms : {1u, 2u, 4u, 8u}) {
        IronmanModel model(config(dimms, 256 * 1024), p);
        IronmanReport r = model.simulate();
        EXPECT_LT(r.lpnSeconds, prev) << dimms << " DIMMs";
        prev = r.lpnSeconds;
    }
}

TEST(IronmanModelTest, BiggerCacheRaisesHitRateSmallParams)
{
    // 2^20 set: k = 168000 blocks = 2.6 MB. 1 MB holds far more of it
    // than 256 KB.
    ot::FerretParams p = ot::paperParamSet(20);
    IronmanModel small(config(4, 256 * 1024), p);
    IronmanModel big(config(4, 1024 * 1024), p);
    double hr_small = small.simulate().cache.hitRate();
    double hr_big = big.simulate().cache.hitRate();
    EXPECT_GT(hr_big, hr_small + 0.1);
}

TEST(IronmanModelTest, SpcotStaysBelowLpnWithChaCha4ary)
{
    // Fig. 13(b): 4-ary ChaCha SPCOT latency remains below LPN across
    // rank configurations.
    ot::FerretParams p = ot::paperParamSet(22);
    for (unsigned dimms : {1u, 2u, 4u, 8u}) {
        IronmanModel model(config(dimms, 256 * 1024), p);
        IronmanReport r = model.simulate();
        EXPECT_LT(r.spcotSeconds, r.lpnSeconds) << dimms << " DIMMs";
    }
}

TEST(IronmanModelTest, Aes2aryInvertsTheBalance)
{
    // Fig. 13(a)/(b): 2-ary AES SPCOT dominates; switching to 4-ary
    // ChaCha cuts SPCOT ~6x.
    ot::FerretParams p = ot::paperParamSet(20);
    p.arity = 2;
    p.prg = crypto::PrgKind::Aes;
    IronmanModel aes_model(config(4, 256 * 1024), p);
    IronmanReport aes_r = aes_model.simulate();

    ot::FerretParams q = ot::paperParamSet(20);
    IronmanModel cc_model(config(4, 256 * 1024), q);
    IronmanReport cc_r = cc_model.simulate();

    EXPECT_GT(aes_r.spcotSeconds, aes_r.lpnSeconds);
    EXPECT_NEAR(aes_r.spcotSeconds / cc_r.spcotSeconds, 6.0, 1.5);
}

TEST(IronmanModelTest, SortingLowersLpnTime)
{
    ot::FerretParams p = ot::paperParamSet(20);
    IronmanModel model(config(2, 256 * 1024), p);

    SortOptions none;
    none.columnSwap = false;
    none.rowLookahead = false;
    SortOptions full;

    double unsorted = model.simulateLpn(none).lpnSeconds;
    double sorted = model.simulateLpn(full).lpnSeconds;
    EXPECT_LT(sorted, unsorted * 0.8);
}

TEST(IronmanModelTest, EnergyAndAreaPopulated)
{
    ot::FerretParams p = ot::paperParamSet(20);
    IronmanModel model(config(2, 256 * 1024), p);
    IronmanReport r = model.simulate();
    EXPECT_GT(r.energyJoule, 0.0);
    EXPECT_GT(r.powerWatt, 0.0);
    EXPECT_NEAR(r.areaMm2, 1.482, 0.01);
    EXPECT_GT(r.totalSeconds, 0.0);
    EXPECT_GE(r.totalSeconds,
              std::max(r.spcotSeconds, r.lpnSeconds));
}

TEST(IronmanModelTest, SampledAndScaledAgreeOnSmallInstance)
{
    // With a small n, full simulation and a half sample must land on
    // similar per-row costs (the SMARTS-style scaling assumption).
    ot::FerretParams p = ot::tinyTestParams();
    IronmanConfig full_cfg = config(1, 64 * 1024);
    full_cfg.sampleRows = 0; // everything
    IronmanConfig half_cfg = full_cfg;
    half_cfg.sampleRows = 6400;

    double full = IronmanModel(full_cfg, p).simulate().lpnSeconds;
    double half = IronmanModel(half_cfg, p).simulate().lpnSeconds;
    EXPECT_NEAR(half / full, 1.0, 0.25);
}

TEST(UnifiedUnitTest, LevelSumsMatchGgmExpansion)
{
    auto prg = crypto::makeTreeExpander(crypto::PrgKind::ChaCha8, 4);
    auto arities = ot::treeArities(256, 4);
    ot::GgmSumLayout layout = ot::GgmSumLayout::of(arities);
    ot::GgmScratch scratch;
    std::vector<Block> leaves(layout.leaves);
    std::vector<Block> sums(layout.total);
    Block leaf_sum;
    ot::ggmExpandInto(*prg, Block::fromUint64(3), layout, scratch,
                      leaves.data(), sums.data(), &leaf_sum);

    // Rebuild each level's nodes by expanding and compare sums.
    std::vector<Block> level{Block::fromUint64(3)};
    for (size_t lvl = 0; lvl < arities.size(); ++lvl) {
        std::vector<Block> next(level.size() * arities[lvl]);
        crypto::TreePrg prg2(crypto::PrgKind::ChaCha8, 4);
        prg2.expandLevel(level.data(), level.size(), next.data(),
                         arities[lvl]);
        std::vector<Block> expect(
            sums.begin() + layout.offset[lvl],
            sums.begin() + layout.offset[lvl] + arities[lvl]);
        EXPECT_EQ(UnifiedUnit::levelSums(next, arities[lvl]), expect)
            << "level " << lvl;
        level = std::move(next);
    }
}

TEST(UnifiedUnitTest, SenderCostsMorePassesThanReceiver)
{
    UnifiedUnit unit(4);
    uint64_t kg = unit.treeCycles(4096, 4, UnitRole::KeyGenerator);
    uint64_t md = unit.treeCycles(4096, 4, UnitRole::MessageDecoder);
    EXPECT_GT(kg, md);
    // Same hardware serves both roles — the functional API is shared.
    EXPECT_EQ(unit.fanIn(), 8u);
}

TEST(GpuReferenceTest, ModelConstants)
{
    EXPECT_NEAR(GpuReference::secondsPerExec(5.88), 1.0, 1e-9);
    EXPECT_NEAR(GpuReference::spcotFraction + GpuReference::lpnFraction,
                0.943, 0.01);
}

TEST(CpuReferenceTest, MeasurementRunsOnTinyParams)
{
    ot::FerretParams p = ot::tinyTestParams();
    CpuOteMeasurement m = measureCpuOte(p, 2, 1);
    EXPECT_GT(m.secondsPerExec, 0.0);
    EXPECT_EQ(m.usableOts, p.usableOts());
    EXPECT_GT(m.otsPerSecond(), 0.0);
    EXPECT_GT(m.wireBytes, 0u);
}

} // namespace
} // namespace ironman::nmp
