/**
 * @file
 * PR 6 service-layer guarantees: width-packed online wire and
 * request-level pipelining.
 *
 *  - Packed and unpacked sessions reconstruct IDENTICAL outputs, both
 *    equal to the in-process reference (DESIGN.md invariant 14), with
 *    the packed transcript several times smaller.
 *  - A depth-k pipelined session equals the GROUPED local reference —
 *    runLocalMlpInference over the concatenated requests — bit for
 *    bit. (Grouping changes the mask-tape tweak sequence, so the
 *    per-request sequential reference only agrees within the dense
 *    truncation bound; on the fracBits-0 zoo entry both are exact.)
 *  - A v1 client against the v2 server negotiates depth 1 / unpacked
 *    and reproduces the PR 5 transcript unchanged.
 *  - Malformed or protocol-violating byte streams reject cleanly and
 *    never poison the server for the next well-formed session.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "infer/infer_client.h"
#include "infer/infer_server.h"
#include "infer/wire.h"
#include "net/socket_channel.h"
#include "ppml/mlp_runner.h"
#include "ppml/model_zoo.h"
#include "svc/cot_server.h"
#include "svc/operator_stock.h"

namespace ironman::infer {
namespace {

using ppml::MlpModelSpec;

constexpr uint64_t kShareSeed = 0x9a11ad;
constexpr uint64_t kSetupSeed = 1234;

std::vector<std::vector<int64_t>>
makeRequests(const MlpModelSpec &spec, uint32_t batch, int count)
{
    std::vector<std::vector<int64_t>> reqs;
    for (int r = 0; r < count; ++r)
        reqs.push_back(ppml::sampleMlpInput(spec, 7100 + r, batch));
    return reqs;
}

/** Concatenate per-request inputs into one grouped request. */
std::vector<int64_t>
concatRequests(const std::vector<std::vector<int64_t>> &reqs)
{
    std::vector<int64_t> cat;
    for (const auto &r : reqs)
        cat.insert(cat.end(), r.begin(), r.end());
    return cat;
}

// ---------------------------------------------------------------------------
// Invariant 14: packed and unpacked transcripts decode to the same
// shares
// ---------------------------------------------------------------------------

struct PackGridPoint
{
    const char *model;
    unsigned width;
};
// The narrow end (width 8 exists only on the fracBits-0 toy) and the
// acceptance-grid widths.
constexpr PackGridPoint kPackGrid[] = {
    {"mlp-4x3x2", 8},
    {"mlp-12x6x3", 16},
    {"mlp-16x8x4", 32},
};

TEST(InferPackingTest, PackedAndUnpackedBitIdenticalToLocal)
{
    InferServer server;
    const uint16_t port = server.listenTcp(0);
    constexpr uint32_t kBatch = 2;
    constexpr int kCount = 2;

    for (const PackGridPoint &g : kPackGrid) {
        const MlpModelSpec &spec = *ppml::findMlpModel(g.model);
        const auto reqs = makeRequests(spec, kBatch, kCount);
        const ppml::LocalMlpResult local = ppml::runLocalMlpInference(
            spec, g.width, reqs, kShareSeed, kSetupSeed,
            ot::tinyTestParams());

        uint64_t bytes_packed = 0, bytes_unpacked = 0;
        for (const bool packed : {true, false}) {
            InferClient::Options opt;
            opt.modelId = spec.id;
            opt.width = g.width;
            opt.batch = kBatch;
            opt.setupSeed = kSetupSeed;
            opt.shareSeed = kShareSeed;
            opt.packedWire = packed;
            auto client =
                InferClient::connectTcp("127.0.0.1", port, opt);
            ASSERT_EQ(client->packedWire(), packed);
            // Engine-supply preprocessing (handshake + primed
            // extensions) rides this channel too and is identical for
            // both runs; measure the ONLINE traffic from here.
            const uint64_t base = client->onlineBytesSent() +
                                  client->onlineBytesReceived();
            for (int r = 0; r < kCount; ++r) {
                const std::vector<int64_t> served =
                    client->infer(reqs[r]);
                // The whole point: packing is a TRANSCRIPT property,
                // not a semantic one.
                ASSERT_EQ(served, local.outputs[r])
                    << spec.name << " w" << g.width << " packed "
                    << packed << " request " << r;
            }
            const uint64_t bytes = client->onlineBytesSent() +
                                   client->onlineBytesReceived() - base;
            (packed ? bytes_packed : bytes_unpacked) = bytes;
            client->close();
        }
        // The headline ratio (engine handshake/extension bytes ride
        // in both numbers, so the pure online ratio is higher still).
        EXPECT_GE(bytes_unpacked, 4 * bytes_packed)
            << spec.name << " w" << g.width;
    }
    server.stop();
    EXPECT_EQ(server.sessionsServed(),
              2 * sizeof(kPackGrid) / sizeof(kPackGrid[0]));
}

TEST(InferPackingTest, PackedReservoirSupplyBitIdenticalToLocal)
{
    svc::OperatorStock stock;
    svc::CotServer cot;
    stock.attach(cot);
    const uint16_t cot_port = cot.listenTcp(0);
    InferServer server;
    server.attachOperatorStock(stock);
    const uint16_t port = server.listenTcp(0);

    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-16x8x4");
    constexpr unsigned kWidth = 32;
    constexpr uint32_t kBatch = 2;
    const auto reqs = makeRequests(spec, kBatch, 2);
    const ppml::LocalMlpResult local = ppml::runLocalMlpInference(
        spec, kWidth, reqs, kShareSeed, kSetupSeed,
        ot::tinyTestParams());

    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = kWidth;
    opt.batch = kBatch;
    opt.setupSeed = kSetupSeed;
    opt.shareSeed = kShareSeed;
    auto client = InferClient::connectTcpReservoir(
        "127.0.0.1", port, "127.0.0.1", cot_port, opt);
    ASSERT_TRUE(client->packedWire());
    for (size_t r = 0; r < reqs.size(); ++r)
        ASSERT_EQ(client->infer(reqs[r]), local.outputs[r]);
    client->close();
    server.stop();
    cot.stop();
}

// ---------------------------------------------------------------------------
// Request-level pipelining
// ---------------------------------------------------------------------------

TEST(InferPipelineTest, DepthEightMatchesGroupedLocalReference)
{
    InferServer server;
    const uint16_t port = server.listenTcp(0);
    constexpr int kDepth = 8;
    constexpr uint32_t kBatch = 1;

    struct Case
    {
        const char *model;
        unsigned width;
    };
    // The fracBits-0 toy is exact against plaintext too; the grid
    // model pins the realistic case.
    constexpr Case kCases[] = {{"mlp-4x3x2", 8}, {"mlp-16x8x4", 32}};

    for (const Case &c : kCases) {
        const MlpModelSpec &spec = *ppml::findMlpModel(c.model);
        const auto reqs = makeRequests(spec, kBatch, kDepth);

        // The bit-identity reference for a pipelined group is ONE
        // grouped evaluation (identical share stream, identical
        // tweak sequence), not kDepth sequential ones.
        const ppml::LocalMlpResult grouped =
            ppml::runLocalMlpInference(spec, c.width,
                                       {concatRequests(reqs)},
                                       kShareSeed, kSetupSeed,
                                       ot::tinyTestParams());
        const size_t req_out = size_t(kBatch) * spec.outputDim();
        ASSERT_EQ(grouped.outputs[0].size(), kDepth * req_out);

        InferClient::Options opt;
        opt.modelId = spec.id;
        opt.width = c.width;
        opt.batch = kBatch;
        opt.setupSeed = kSetupSeed;
        opt.shareSeed = kShareSeed;
        opt.depth = kDepth;
        auto client = InferClient::connectTcp("127.0.0.1", port, opt);
        ASSERT_EQ(client->negotiatedDepth(), kDepth);

        std::vector<uint32_t> tags;
        for (int r = 0; r < kDepth - 1; ++r) {
            tags.push_back(client->submit(reqs[r]));
            // Nothing evaluates until the group commits.
            ASSERT_EQ(client->inFlight(), size_t(r + 1));
        }
        // The depth-filling submission auto-commits the group.
        tags.push_back(client->submit(reqs[kDepth - 1]));
        ASSERT_EQ(client->inFlight(), 0u);

        const auto results = client->drain();
        ASSERT_EQ(results.size(), size_t(kDepth));
        const int64_t bound = ppml::mlpTruncationErrorBound(spec);
        for (int r = 0; r < kDepth; ++r) {
            EXPECT_EQ(results[r].tag, tags[r]);
            const std::vector<int64_t> expect(
                grouped.outputs[0].begin() + r * req_out,
                grouped.outputs[0].begin() + (r + 1) * req_out);
            EXPECT_EQ(results[r].outputs, expect)
                << spec.name << " w" << c.width << " request " << r;
            const std::vector<int64_t> plain =
                ppml::mlpPlainForward(spec, reqs[r]);
            for (size_t i = 0; i < plain.size(); ++i)
                EXPECT_LE(std::llabs(results[r].outputs[i] - plain[i]),
                          bound)
                    << spec.name << " output " << i;
        }
        EXPECT_EQ(client->requestsRun(), uint64_t(kDepth));
        client->close();
    }
    server.stop();
    EXPECT_EQ(server.imagesServed(), uint64_t(2 * kDepth * kBatch));
}

TEST(InferPipelineTest, PartialGroupCommitsOnCollectAndClose)
{
    InferServer server;
    const uint16_t port = server.listenTcp(0);
    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-4x3x2");
    const auto reqs = makeRequests(spec, 1, 3);
    const ppml::LocalMlpResult grouped = ppml::runLocalMlpInference(
        spec, 8, {concatRequests(reqs)}, kShareSeed, kSetupSeed,
        ot::tinyTestParams());

    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = 8;
    opt.batch = 1;
    opt.setupSeed = kSetupSeed;
    opt.shareSeed = kShareSeed;
    opt.depth = 8; // deeper than we fill: collect() must flush
    auto client = InferClient::connectTcp("127.0.0.1", port, opt);
    for (const auto &r : reqs)
        client->submit(r);
    ASSERT_EQ(client->inFlight(), 3u);

    const size_t out = spec.outputDim();
    const InferClient::Result first = client->collect();
    EXPECT_EQ(client->inFlight(), 0u);
    EXPECT_EQ(first.outputs,
              std::vector<int64_t>(grouped.outputs[0].begin(),
                                   grouped.outputs[0].begin() + out));
    // close() drains the rest implicitly; no hang, no protocol error.
    client->close();
    server.stop();
    EXPECT_EQ(server.requestsServed(), 3u);
}

TEST(InferPipelineTest, ServerClampsRequestedDepth)
{
    InferServer::Config cfg;
    cfg.maxDepth = 2;
    InferServer server(cfg);
    const uint16_t port = server.listenTcp(0);

    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-4x3x2");
    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = 8;
    opt.batch = 1;
    opt.setupSeed = kSetupSeed;
    opt.shareSeed = kShareSeed;
    opt.depth = 8;
    auto client = InferClient::connectTcp("127.0.0.1", port, opt);
    EXPECT_EQ(client->negotiatedDepth(), 2);

    // Five submissions through a depth-2 window: auto-commit keeps the
    // session inside the negotiated bound without caller bookkeeping.
    const auto reqs = makeRequests(spec, 1, 5);
    for (const auto &r : reqs)
        client->submit(r);
    EXPECT_EQ(client->drain().size(), 5u);
    client->close();
    server.stop();
    EXPECT_EQ(server.requestsServed(), 5u);
}

// ---------------------------------------------------------------------------
// Version compatibility
// ---------------------------------------------------------------------------

TEST(InferPipelineTest, V1ClientAgainstV2ServerIsPr5Protocol)
{
    InferServer server;
    const uint16_t port = server.listenTcp(0);
    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-16x8x4");
    constexpr unsigned kWidth = 32;
    const auto reqs = makeRequests(spec, 2, 2);
    const ppml::LocalMlpResult local = ppml::runLocalMlpInference(
        spec, kWidth, reqs, kShareSeed, kSetupSeed,
        ot::tinyTestParams());

    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = kWidth;
    opt.batch = 2;
    opt.setupSeed = kSetupSeed;
    opt.shareSeed = kShareSeed;
    opt.wireVersion = kInferWireVersionV1;
    opt.depth = 8;          // must be ignored on the v1 wire
    opt.packedWire = true;  // likewise
    auto client = InferClient::connectTcp("127.0.0.1", port, opt);
    EXPECT_EQ(client->negotiatedDepth(), 1);
    EXPECT_FALSE(client->packedWire());
    // The issue/drain shape works on v1 too (immediate evaluation).
    for (size_t r = 0; r < reqs.size(); ++r)
        client->submit(reqs[r]);
    const auto results = client->drain();
    ASSERT_EQ(results.size(), reqs.size());
    for (size_t r = 0; r < reqs.size(); ++r)
        EXPECT_EQ(results[r].outputs, local.outputs[r]) << r;
    client->close();
    server.stop();
    EXPECT_EQ(server.sessionsServed(), 1u);
}

// ---------------------------------------------------------------------------
// Malformed-stream robustness
// ---------------------------------------------------------------------------

TEST(InferPipelineTest, MalformedStreamsRejectCleanlyAndServerSurvives)
{
    InferServer::Config cfg;
    cfg.maxDepth = 2;
    InferServer server(cfg);
    const uint16_t port = server.listenTcp(0);
    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-4x3x2");

    auto goodHello = [&] {
        InferHello h;
        h.supply = SupplyKind::Engine;
        h.modelId = spec.id;
        h.width = 8;
        h.batch = 1;
        h.setupSeed = kSetupSeed;
        h.params = svc::WireParams::of(ot::tinyTestParams());
        h.depth = 2;
        h.flags = 0; // unpacked: raw probes below are width-agnostic
        return h;
    };
    auto expectRejected = [&](const char *what, auto send) {
        auto ch = net::tcpConnect("127.0.0.1", port);
        send(*ch);
        ch->flush();
        const InferAccept a = recvInferAccept(*ch);
        EXPECT_NE(a.status, InferStatus::Ok) << what;
    };

    // 1. Truncated hello, then close: the server never gets a full
    // prefix to answer, so don't wait for a reply — just hang up and
    // let the session abort. (Waiting here would deadlock: both ends
    // blocked reading.)
    {
        auto ch = net::tcpConnect("127.0.0.1", port);
        uint8_t prefix[3] = {0x46, 0x49, 0x52};
        ch->sendBytes(prefix, sizeof(prefix));
        ch->flush();
    }
    // 2. Bad magic with a full-size body.
    expectRejected("bad magic", [](net::SocketChannel &ch) {
        uint8_t junk[128] = {1, 2, 3, 4};
        ch.sendBytes(junk, sizeof(junk));
    });
    // 3. Unknown version.
    expectRejected("bad version", [&](net::SocketChannel &ch) {
        InferHello h = goodHello();
        h.version = 9;
        sendInferHello(ch, h);
    });
    // 4. Zero depth.
    expectRejected("zero depth", [&](net::SocketChannel &ch) {
        InferHello h = goodHello();
        h.depth = 0;
        sendInferHello(ch, h);
    });

    // Post-accept violations: the session dies, the server lives. The
    // Engine handshake primes interactively, so a client that will
    // violate the protocol must still play the engine setup first —
    // cheaper to probe with garbage right after the accept instead.
    auto probeAfterAccept = [&](const char *what, auto send) {
        auto ch = net::tcpConnect("127.0.0.1", port);
        sendInferHello(*ch, goodHello());
        const InferAccept a = recvInferAccept(*ch);
        ASSERT_EQ(a.status, InferStatus::Ok) << what;
        send(*ch);
        try {
            ch->flush();
        } catch (const std::exception &) {
            // The server may already have torn the session down.
        }
    };
    // 5. Garbage opcode instead of the engine handshake.
    probeAfterAccept("garbage opcode", [](net::SocketChannel &ch) {
        uint8_t op = 0xEE;
        ch.sendBytes(&op, 1);
    });
    // 6. Abrupt close mid-session (empty send: connect + accept only).
    probeAfterAccept("abrupt close", [](net::SocketChannel &) {});
    // 7. A torrent of Infer ops beyond the negotiated depth; the
    // server kills the session at depth+1 without evaluating.
    probeAfterAccept("depth flood", [&](net::SocketChannel &ch) {
        const size_t lane = spec.inputDim();
        std::vector<uint64_t> x(lane, 1);
        for (uint32_t r = 0; r < 8; ++r) {
            sendInferOp(ch, InferOp::Infer);
            sendInferTag(ch, r);
            sendShareVector(ch, x.data(), x.size());
        }
    });
    // 8. Truncated share vector then close.
    probeAfterAccept("truncated shares", [](net::SocketChannel &ch) {
        sendInferOp(ch, InferOp::Infer);
        sendInferTag(ch, 1);
        uint8_t half[4] = {0, 0, 0, 0};
        ch.sendBytes(half, sizeof(half));
    });

    // The server must still serve a well-formed session afterwards.
    InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = 8;
    opt.batch = 1;
    opt.setupSeed = kSetupSeed;
    opt.shareSeed = kShareSeed;
    opt.depth = 2;
    auto client = InferClient::connectTcp("127.0.0.1", port, opt);
    const auto reqs = makeRequests(spec, 1, 2);
    const ppml::LocalMlpResult grouped = ppml::runLocalMlpInference(
        spec, 8, {concatRequests(reqs)}, kShareSeed, kSetupSeed,
        ot::tinyTestParams());
    client->submit(reqs[0]);
    client->submit(reqs[1]);
    const auto results = client->drain();
    ASSERT_EQ(results.size(), 2u);
    const size_t out = spec.outputDim();
    for (size_t r = 0; r < 2; ++r)
        EXPECT_EQ(results[r].outputs,
                  std::vector<int64_t>(
                      grouped.outputs[0].begin() + r * out,
                      grouped.outputs[0].begin() + (r + 1) * out));
    client->close();
    server.stop();
    // Steps 2-4 reject at the handshake; the truncated hello and the
    // post-accept violations abort without counting either way.
    EXPECT_GE(server.sessionsRejected(), 3u);
    EXPECT_GE(server.sessionsServed(), 1u);
}

} // namespace
} // namespace ironman::infer
