/**
 * @file
 * Regression coverage for the PR 4 ASan watch item (ROADMAP.md): one
 * unreproduced heap-buffer-overflow read in SpcotWorkspace teardown
 * pointed at the pipelined engine's destroy-with-pending-transcript
 * path and the ThreadPool async handoff. This file makes those exact
 * paths a permanent part of the (ASan+UBSan-run) suite:
 *
 *  - destroying a pipelined FerretCotSender/Receiver pair right after
 *    1..3 extensions — the receiver then holds a pending deferred
 *    transcript (SpcotRecvSlot) and the sender a prefetched one —
 *    across both LPN feeds and worker-pool widths;
 *  - destroying engines that never ran an extension;
 *  - resetSession() mid-session WITH a pending transcript (both slot
 *    parities), then verifying the rebound engines are bit-identical
 *    to freshly constructed ones — teardown state must not leak into
 *    the next session.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/channel.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"
#include "svc/wire.h"

namespace ironman::ot {
namespace {

struct SessionHalves
{
    CotSenderBatch senderBase;
    CotReceiverBatch receiverBase;
    Block delta;
};

SessionHalves
deal(const FerretParams &p, uint64_t seed)
{
    SessionHalves h;
    svc::dealSessionBase(p, seed, &h.senderBase, &h.receiverBase,
                         &h.delta);
    return h;
}

/** Reference outputs of a fresh engine pair over @p iters extensions. */
void
runFresh(const FerretParams &p, uint64_t seed, int iters, int threads,
         std::vector<Block> *q, BitVec *choice, std::vector<Block> *t)
{
    SessionHalves h = deal(p, seed);
    const size_t usable = p.usableOts();
    q->assign(size_t(iters) * usable, Block{});
    t->assign(size_t(iters) * usable, Block{});
    *choice = BitVec();

    net::MemoryDuplex duplex;
    std::thread sender_thread([&] {
        FerretCotSender sender(duplex.a(), p, h.delta,
                               std::move(h.senderBase.q));
        sender.setThreads(threads);
        Rng rng(svc::senderRngSeed(seed));
        for (int it = 0; it < iters; ++it)
            sender.extendInto(rng, q->data() + size_t(it) * usable);
    });
    FerretCotReceiver receiver(duplex.b(), p,
                               std::move(h.receiverBase.choice),
                               std::move(h.receiverBase.t));
    receiver.setThreads(threads);
    Rng rng(svc::receiverRngSeed(seed));
    BitVec c;
    for (int it = 0; it < iters; ++it) {
        receiver.extendInto(rng, c, t->data() + size_t(it) * usable);
        choice->appendRange(c, 0, c.size());
    }
    sender_thread.join();
}

TEST(EngineTeardownTest, DestroyWithPendingTranscript)
{
    // Odd AND even iteration counts: the pending transcript sits in
    // either pipeline slot at destruction time.
    for (const FerretParams &p :
         {tinyTestParams(), tinyAlignedParams()}) {
        for (int iters : {1, 2, 3}) {
            for (int threads : {1, 3}) {
                std::vector<Block> q, t;
                BitVec choice;
                runFresh(p, 0xdead0 + iters, iters, threads, &q,
                         &choice, &t);
                // Sanity: the outputs produced right before teardown
                // still correlate.
                SessionHalves h = deal(p, 0xdead0 + iters);
                for (size_t i = 0; i < q.size(); ++i)
                    ASSERT_EQ(t[i],
                              q[i] ^ scalarMul(choice.get(i), h.delta))
                        << p.name << " iters " << iters << " threads "
                        << threads << " index " << i;
            }
        }
    }
}

TEST(EngineTeardownTest, DestroyWithoutRunning)
{
    const FerretParams p = tinyTestParams();
    SessionHalves h = deal(p, 31337);
    net::MemoryDuplex duplex;
    {
        FerretCotSender sender(duplex.a(), p, h.delta,
                               std::move(h.senderBase.q));
        FerretCotReceiver receiver(duplex.b(), p,
                                   std::move(h.receiverBase.choice),
                                   std::move(h.receiverBase.t));
        sender.setThreads(2);
        receiver.setThreads(2);
        // Construction only; destroyed with no extension run.
    }
    {
        // The unbound (pool) constructor + prewarm, never bound.
        FerretCotSender sender(p);
        FerretCotReceiver receiver(p);
        sender.prewarm();
        receiver.prewarm();
    }
}

TEST(EngineTeardownTest, MidSessionResetWithPendingTranscript)
{
    const FerretParams p = tinyTestParams();
    const uint64_t seed_a = 41001, seed_b = 41002;
    constexpr int kItersB = 2;
    const size_t usable = p.usableOts();

    // What a FRESH pair produces for session B: the rebound engines
    // must match bit for bit.
    std::vector<Block> want_q, want_t;
    BitVec want_choice;
    runFresh(p, seed_b, kItersB, 2, &want_q, &want_choice, &want_t);

    for (int iters_a : {1, 2}) { // pending transcript in either slot
        SessionHalves ha = deal(p, seed_a);
        SessionHalves hb = deal(p, seed_b);

        net::MemoryDuplex duplex_a, duplex_b;
        std::vector<Block> q(size_t(kItersB) * usable);
        std::vector<Block> t(size_t(kItersB) * usable);
        BitVec choice;

        std::thread sender_thread([&] {
            FerretCotSender sender(duplex_a.a(), p, ha.delta,
                                   std::move(ha.senderBase.q));
            sender.setThreads(2);
            Rng rng_a(svc::senderRngSeed(seed_a));
            std::vector<Block> scratch(usable);
            for (int it = 0; it < iters_a; ++it)
                sender.extendInto(rng_a, scratch.data());
            // Reset with session A's prefetched transcript pending.
            sender.resetSession(duplex_b.a(), hb.delta,
                                hb.senderBase.q.data(),
                                hb.senderBase.q.size());
            Rng rng_b(svc::senderRngSeed(seed_b));
            for (int it = 0; it < kItersB; ++it)
                sender.extendInto(rng_b,
                                  q.data() + size_t(it) * usable);
        });

        FerretCotReceiver receiver(duplex_a.b(), p,
                                   std::move(ha.receiverBase.choice),
                                   std::move(ha.receiverBase.t));
        receiver.setThreads(2);
        Rng rng_a(svc::receiverRngSeed(seed_a));
        BitVec c;
        std::vector<Block> scratch(usable);
        for (int it = 0; it < iters_a; ++it)
            receiver.extendInto(rng_a, c, scratch.data());
        receiver.resetSession(duplex_b.b(), hb.receiverBase.choice,
                              hb.receiverBase.t.data(),
                              hb.receiverBase.t.size());
        Rng rng_b(svc::receiverRngSeed(seed_b));
        for (int it = 0; it < kItersB; ++it) {
            receiver.extendInto(rng_b, c,
                                t.data() + size_t(it) * usable);
            choice.appendRange(c, 0, c.size());
        }
        sender_thread.join();

        EXPECT_EQ(q, want_q) << "iters_a " << iters_a;
        EXPECT_EQ(choice, want_choice) << "iters_a " << iters_a;
        EXPECT_EQ(t, want_t) << "iters_a " << iters_a;
    }
}

} // namespace
} // namespace ironman::ot
