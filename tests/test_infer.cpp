/**
 * @file
 * Inference-service tests (src/infer + the operator-stock half of
 * src/svc):
 *
 *  - infer wire handshake round trips and rejects structurally bad
 *    hellos (magic, model, width, batch, params, session ids);
 *  - THE acceptance criterion: served inference over loopback TCP
 *    reconstructs outputs BIT-IDENTICAL to the in-process
 *    MlpRunner/FerretCotEngine path (ppml::runLocalMlpInference) for
 *    2 model-zoo networks x 2 bitwidths each, with BOTH supply kinds
 *    (per-session FerretCotEngine and reservoir-fed via the attached
 *    COT service) — and within the truncation bound of the plaintext
 *    reference;
 *  - concurrent sessions of mixed supply kinds all reconstruct
 *    correctly;
 *  - invariant 13 (DESIGN.md): serving a second wave of reservoir-fed
 *    sessions constructs no new OT engines — the COT service's warm
 *    pool covers session churn.
 *
 * The whole file runs over real sockets where it matters; it is also
 * part of the CI TSan target (server threads + reservoir refill
 * threads + operator-stock handoff).
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "infer/infer_client.h"
#include "infer/infer_server.h"
#include "infer/wire.h"
#include "net/channel.h"
#include "ppml/mlp_runner.h"
#include "ppml/model_zoo.h"
#include "svc/cot_server.h"
#include "svc/operator_stock.h"

namespace ironman::infer {
namespace {

using ppml::MlpModelSpec;

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(InferWireTest, HelloAcceptRoundTrip)
{
    net::MemoryDuplex duplex;
    InferHello h;
    h.supply = SupplyKind::Reservoir;
    h.modelId = ppml::inferenceZoo().front().id;
    h.width = 32;
    h.batch = 7;
    h.setupSeed = 0x1234;
    h.sendSessionId = 11;
    h.recvSessionId = 12;
    h.depth = 6;
    h.flags = kInferFlagPackedWire | 0x8000; // unknown bit: dropped
    sendInferHello(duplex.a(), h);

    InferHello got;
    ASSERT_EQ(recvInferHello(duplex.b(), &got), InferStatus::Ok);
    EXPECT_EQ(got.version, kInferWireVersion);
    EXPECT_EQ(got.supply, h.supply);
    EXPECT_EQ(got.modelId, h.modelId);
    EXPECT_EQ(got.width, h.width);
    EXPECT_EQ(got.batch, h.batch);
    EXPECT_EQ(got.sendSessionId, h.sendSessionId);
    EXPECT_EQ(got.recvSessionId, h.recvSessionId);
    EXPECT_EQ(got.depth, 6);
    EXPECT_EQ(got.flags, kInferFlagPackedWire);

    InferAccept reply;
    reply.status = InferStatus::Ok;
    reply.depth = 6;
    reply.flags = kInferFlagPackedWire;
    reply.sessionId = 99;
    sendInferAccept(duplex.b(), reply);
    const InferAccept a = recvInferAccept(duplex.a());
    EXPECT_EQ(a.status, InferStatus::Ok);
    EXPECT_EQ(a.depth, 6);
    EXPECT_EQ(a.flags, kInferFlagPackedWire);
    EXPECT_EQ(a.sessionId, 99u);
}

TEST(InferWireTest, V1HelloSurfacesAsDepthOneUnpacked)
{
    net::MemoryDuplex duplex;
    InferHello h;
    h.version = kInferWireVersionV1;
    h.modelId = ppml::inferenceZoo().front().id;
    h.width = 32;
    h.batch = 2;
    h.supply = SupplyKind::Engine;
    h.params = svc::WireParams::of(ot::tinyTestParams());
    h.depth = 9; // v1 body has no room for these: must not leak
    h.flags = kInferFlagPackedWire;
    sendInferHello(duplex.a(), h);

    InferHello got;
    ASSERT_EQ(recvInferHello(duplex.b(), &got), InferStatus::Ok);
    EXPECT_EQ(got.version, kInferWireVersionV1);
    EXPECT_EQ(got.depth, 1);
    EXPECT_EQ(got.flags, 0);
}

TEST(InferWireTest, RejectsStructurallyBadHellos)
{
    auto reject = [](auto mutate, InferStatus expect) {
        net::MemoryDuplex duplex;
        InferHello h;
        h.modelId = ppml::inferenceZoo().front().id;
        h.width = 32;
        h.batch = 1;
        h.supply = SupplyKind::Engine;
        h.params = svc::WireParams::of(ot::tinyTestParams());
        mutate(h);
        sendInferHello(duplex.a(), h);
        InferHello got;
        EXPECT_EQ(recvInferHello(duplex.b(), &got), expect);
    };
    reject([](InferHello &h) { h.modelId = 0xdead; },
           InferStatus::BadModel);
    reject([](InferHello &h) { h.width = 8; }, InferStatus::BadWidth);
    reject([](InferHello &h) { h.width = 63; }, InferStatus::BadWidth);
    reject([](InferHello &h) { h.batch = 0; }, InferStatus::BadBatch);
    reject([](InferHello &h) { h.depth = 0; }, InferStatus::BadDepth);
    reject([](InferHello &h) { h.version = 7; },
           InferStatus::BadVersion);
    reject([](InferHello &h) { h.params.k = h.params.n; },
           InferStatus::BadParams);
    reject(
        [](InferHello &h) {
            h.supply = SupplyKind::Reservoir;
            h.sendSessionId = 0;
        },
        InferStatus::BadSupply);
    reject(
        [](InferHello &h) {
            h.supply = SupplyKind::Reservoir;
            h.sendSessionId = h.recvSessionId = 5;
        },
        InferStatus::BadSupply);
    {
        // Bad magic: enough junk bytes for one whole hello.
        net::MemoryDuplex duplex;
        uint8_t junk[128] = {9, 9, 9, 9};
        duplex.a().sendBytes(junk, sizeof(junk));
        InferHello got;
        EXPECT_EQ(recvInferHello(duplex.b(), &got),
                  InferStatus::BadMagic);
    }
}

// ---------------------------------------------------------------------------
// Served inference == in-process inference, bit for bit
// ---------------------------------------------------------------------------

/** The model x width grid the acceptance criterion names. */
struct GridPoint
{
    const char *model;
    unsigned width;
};
constexpr GridPoint kGrid[] = {
    {"mlp-16x8x4", 24},
    {"mlp-16x8x4", 32},
    {"mlp-12x6x3", 16},
    {"mlp-12x6x3", 32},
};

constexpr uint64_t kShareSeed = 0x517a9e;
constexpr uint64_t kSetupSeed = 777;
constexpr int kRequests = 2;
constexpr uint32_t kBatch = 3;

std::vector<std::vector<int64_t>>
gridRequests(const MlpModelSpec &spec)
{
    std::vector<std::vector<int64_t>> reqs;
    for (int r = 0; r < kRequests; ++r)
        reqs.push_back(
            ppml::sampleMlpInput(spec, 9000 + r, kBatch));
    return reqs;
}

void
expectServedMatchesLocal(InferClient &client, const MlpModelSpec &spec,
                         unsigned width)
{
    const std::vector<std::vector<int64_t>> reqs = gridRequests(spec);
    const ppml::LocalMlpResult local = ppml::runLocalMlpInference(
        spec, width, reqs, kShareSeed, kSetupSeed,
        ot::tinyTestParams());
    const int64_t bound = ppml::mlpTruncationErrorBound(spec);

    for (int r = 0; r < kRequests; ++r) {
        const std::vector<int64_t> served = client.infer(reqs[r]);
        // Bit-identity with the in-process path: the GMW shares are
        // deterministic given the input shares, so supply kind and
        // transport must not change a single output bit.
        ASSERT_EQ(served, local.outputs[r])
            << spec.name << " w" << width << " request " << r;
        // And sanity against plaintext, within the truncation bound.
        const std::vector<int64_t> plain =
            ppml::mlpPlainForward(spec, reqs[r]);
        ASSERT_EQ(served.size(), plain.size());
        for (size_t i = 0; i < served.size(); ++i)
            ASSERT_LE(std::llabs(served[i] - plain[i]), bound)
                << spec.name << " w" << width << " output " << i;
    }
}

TEST(InferServiceTest, EngineSupplyBitIdenticalToLocal)
{
    InferServer server;
    const uint16_t port = server.listenTcp(0);

    for (const GridPoint &g : kGrid) {
        const MlpModelSpec &spec = *ppml::findMlpModel(g.model);
        InferClient::Options opt;
        opt.modelId = spec.id;
        opt.width = g.width;
        opt.batch = kBatch;
        opt.supply = SupplyKind::Engine;
        opt.setupSeed = kSetupSeed;
        opt.shareSeed = kShareSeed;
        auto client = InferClient::connectTcp("127.0.0.1", port, opt);
        expectServedMatchesLocal(*client, spec, g.width);
        EXPECT_EQ(client->requestsRun(), uint64_t(kRequests));
        EXPECT_GT(client->cotsConsumed(), 0u);
        client->close();
    }
    server.stop();
    EXPECT_EQ(server.sessionsServed(),
              sizeof(kGrid) / sizeof(kGrid[0]));
    EXPECT_EQ(server.imagesServed(),
              uint64_t(kRequests) * kBatch *
                  (sizeof(kGrid) / sizeof(kGrid[0])));
}

TEST(InferServiceTest, ReservoirSupplyBitIdenticalToLocal)
{
    svc::OperatorStock stock; // outlives both servers
    svc::CotServer cot;
    stock.attach(cot);
    const uint16_t cot_port = cot.listenTcp(0);

    InferServer server;
    server.attachOperatorStock(stock);
    const uint16_t port = server.listenTcp(0);

    for (const GridPoint &g : kGrid) {
        const MlpModelSpec &spec = *ppml::findMlpModel(g.model);
        InferClient::Options opt;
        opt.modelId = spec.id;
        opt.width = g.width;
        opt.batch = kBatch;
        opt.setupSeed = kSetupSeed + g.width; // distinct COT sessions
        opt.shareSeed = kShareSeed;
        auto client = InferClient::connectTcpReservoir(
            "127.0.0.1", port, "127.0.0.1", cot_port, opt);
        EXPECT_EQ(client->supply(), SupplyKind::Reservoir);
        expectServedMatchesLocal(*client, spec, g.width);
        EXPECT_GT(client->preprocBytesSent(), 0u);
        client->close();
    }
    server.stop();
    cot.stop();
    EXPECT_EQ(server.sessionsServed(),
              sizeof(kGrid) / sizeof(kGrid[0]));
}

TEST(InferServiceTest, ConcurrentMixedSupplySessions)
{
    svc::OperatorStock stock;
    svc::CotServer cot;
    stock.attach(cot);
    const uint16_t cot_port = cot.listenTcp(0);

    InferServer server;
    server.attachOperatorStock(stock);
    const uint16_t port = server.listenTcp(0);

    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-16x8x4");
    constexpr int kClients = 4;
    std::vector<std::thread> clients;
    std::vector<int> ok(kClients, 0); // int, not bool: bit-packing races
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            InferClient::Options opt;
            opt.modelId = spec.id;
            opt.width = 32;
            opt.batch = 2;
            opt.setupSeed = 4000 + i;
            opt.shareSeed = 5000 + i;
            auto client =
                i % 2 == 0
                    ? InferClient::connectTcp("127.0.0.1", port, opt)
                    : InferClient::connectTcpReservoir(
                          "127.0.0.1", port, "127.0.0.1", cot_port,
                          opt);
            const std::vector<int64_t> input =
                ppml::sampleMlpInput(spec, 6000 + i, 2);
            const std::vector<int64_t> served = client->infer(input);
            const std::vector<int64_t> plain =
                ppml::mlpPlainForward(spec, input);
            const int64_t bound = ppml::mlpTruncationErrorBound(spec);
            bool all = served.size() == plain.size();
            for (size_t j = 0; all && j < served.size(); ++j)
                all = std::llabs(served[j] - plain[j]) <= bound;
            ok[i] = all;
            client->close();
        });
    for (auto &th : clients)
        th.join();
    for (int i = 0; i < kClients; ++i)
        EXPECT_TRUE(ok[i]) << "client " << i;
    server.stop();
    cot.stop();
    EXPECT_EQ(server.sessionsServed(), uint64_t(kClients));
}

// ---------------------------------------------------------------------------
// Server policy + operator-stock robustness
// ---------------------------------------------------------------------------

TEST(InferServiceTest, EngineParamsAllowlistRejectsUnlisted)
{
    InferServer::Config cfg;
    cfg.engineParamsAllowlist = {ot::tinyAlignedParams()};
    InferServer server(cfg);
    const uint16_t port = server.listenTcp(0);

    InferClient::Options opt;
    opt.modelId = ppml::inferenceZoo().front().id;
    opt.params = ot::tinyTestParams(); // valid but unlisted
    try {
        auto client = InferClient::connectTcp("127.0.0.1", port, opt);
        FAIL() << "unlisted engine params must be rejected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("params not allowed"),
                  std::string::npos)
            << e.what();
    }

    opt.params = ot::tinyAlignedParams();
    auto client = InferClient::connectTcp("127.0.0.1", port, opt);
    (void)client->infer(ppml::sampleMlpInput(
        *ppml::findMlpModel(opt.modelId), 1, 1));
    client->close();
    server.stop();
    EXPECT_EQ(server.sessionsServed(), 1u);
    EXPECT_EQ(server.sessionsRejected(), 1u);
}

TEST(OperatorStockTest, TakeTimesOutOnDeadProducer)
{
    // A session id nobody stocks (dead client / bogus hello): the
    // take must expire and throw instead of pinning its session slot
    // until shutdown — and the probe must leave no map residue
    // (takes use find(), only the sinks materialize entries).
    svc::OperatorStock stock;
    stock.setWaitTimeout(std::chrono::milliseconds(50));
    BitVec bits;
    std::vector<Block> blocks;
    Block delta;
    EXPECT_THROW(stock.takeRecv(424242, 10, &bits, &blocks),
                 std::runtime_error);
    EXPECT_THROW(stock.takeSend(424243, 10, &blocks, &delta),
                 std::runtime_error);
    EXPECT_EQ(stock.stock(424242), 0u);
    EXPECT_EQ(stock.stock(424243), 0u);
}

TEST(InferServiceTest, ForeignOrBogusCotSessionsRejectedAtHandshake)
{
    svc::OperatorStock stock;
    svc::CotServer cot;
    stock.attach(cot);
    const uint16_t cot_port = cot.listenTcp(0);
    InferServer server;
    server.attachOperatorStock(stock);
    const uint16_t port = server.listenTcp(0);

    // Reservoir hello naming sessions that do not exist: a clean
    // wire-level reject, not a stock-wait timeout.
    auto ch = net::tcpConnect("127.0.0.1", port);
    InferHello h;
    h.supply = SupplyKind::Reservoir;
    h.modelId = ppml::inferenceZoo().front().id;
    h.width = 32;
    h.batch = 1;
    h.sendSessionId = 999998;
    h.recvSessionId = 999999;
    sendInferHello(*ch, h);
    ch->flush();
    EXPECT_EQ(recvInferAccept(*ch).status,
              InferStatus::ForeignSession);
    ch.reset();

    // Live sids of the right owner still admit (the whole reservoir
    // grid exercises this; here just confirm the counter).
    (void)cot_port;
    server.stop();
    cot.stop();
    EXPECT_EQ(server.sessionsRejected(), 1u);
}

TEST(OperatorStockTest, SessionEndFreesUnclaimedResidue)
{
    // A COT session nobody's inference session ever consumes (e.g. a
    // rejected hello, or a client that died before its hello) banks
    // stock; the CotServer's session-end sink must erase it the
    // moment the COT session closes.
    svc::OperatorStock stock;
    svc::CotServer cot;
    stock.attach(cot);
    const uint16_t port = cot.listenTcp(0);

    svc::CotClient::Options opt;
    opt.setupSeed = 9911;
    auto client = svc::CotClient::connectTcp(
        "127.0.0.1", port, ot::tinyTestParams(), opt);
    const uint64_t sid = client->sessionId();
    BitVec c;
    std::vector<Block> t(client->usableOts());
    client->extendRecv(c, t.data());
    // The sink runs on the session thread after its extendInto.
    for (int spin = 0; spin < 2000 && stock.stock(sid) == 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GT(stock.stock(sid), 0u); // banked, unclaimed
    client->close();

    for (int spin = 0; spin < 2000 && stock.stock(sid) > 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(stock.stock(sid), 0u);
    cot.stop();
}

TEST(OperatorStockTest, ShutdownWakesBlockedTaker)
{
    svc::OperatorStock stock;
    stock.setWaitTimeout(std::chrono::minutes(1));
    std::thread taker([&] {
        BitVec bits;
        std::vector<Block> blocks;
        EXPECT_THROW(stock.takeRecv(7, 10, &bits, &blocks),
                     std::runtime_error);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stock.shutdown();
    taker.join();
}

// ---------------------------------------------------------------------------
// Invariant 13: warm session churn builds no new engines
// ---------------------------------------------------------------------------

TEST(InferServiceTest, ReservoirSessionChurnReusesWarmEngines)
{
    svc::OperatorStock stock;
    svc::CotServer cot;
    stock.attach(cot);
    const uint16_t cot_port = cot.listenTcp(0);

    InferServer server;
    server.attachOperatorStock(stock);
    const uint16_t port = server.listenTcp(0);

    const MlpModelSpec &spec = *ppml::findMlpModel("mlp-12x6x3");
    // A session's engine returns to the pool when its (asynchronous)
    // server-side epilogue runs; the next wave may only start once the
    // previous wave's COT sessions fully unwound, or it correctly
    // checks out FRESH engines alongside the still-leased ones.
    auto drain = [&](uint64_t expect_cot_sessions) {
        for (int spin = 0; spin < 5000; ++spin) {
            if (cot.sessionsServed() >= expect_cot_sessions &&
                cot.activeSessions() == 0)
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    };
    auto run_session = [&](uint64_t seed) {
        InferClient::Options opt;
        opt.modelId = spec.id;
        opt.width = 16;
        opt.batch = 1;
        opt.setupSeed = seed;
        auto client = InferClient::connectTcpReservoir(
            "127.0.0.1", port, "127.0.0.1", cot_port, opt);
        (void)client->infer(ppml::sampleMlpInput(spec, seed, 1));
        client->close();
    };

    run_session(8101); // wave 1: engines constructed + prewarmed
    drain(2);
    const uint64_t engines_after_wave1 =
        cot.pool().sendersCreated() + cot.pool().receiversCreated();
    EXPECT_GE(engines_after_wave1, 2u); // one per role at least

    run_session(8202);
    drain(4);
    run_session(8303);
    drain(6);
    EXPECT_EQ(cot.pool().sendersCreated() +
                  cot.pool().receiversCreated(),
              engines_after_wave1)
        << "invariant 13: later inference sessions must reuse warm "
           "engines, not construct";
    EXPECT_EQ(server.sessionsServed(), 3u);

    server.stop();
    cot.stop();
}

} // namespace
} // namespace ironman::infer
