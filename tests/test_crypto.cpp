/**
 * @file
 * Known-answer and property tests for the crypto substrate.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/hexutil.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/chacha.h"
#include "crypto/crhf.h"
#include "crypto/prg.h"

namespace ironman::crypto {
namespace {

// ---------------------------------------------------------------------------
// AES
// ---------------------------------------------------------------------------

/** FIPS-197 Appendix C.1 known-answer test. */
TEST(AesTest, Fips197KnownAnswer)
{
    auto key = hexDecode("000102030405060708090a0b0c0d0e0f");
    auto pt = hexDecode("00112233445566778899aabbccddeeff");
    auto expect = hexDecode("69c4e0d86a7b0430d8cdb78070b4c55a");

    Aes128 aes(Block::fromBytes(key.data()));
    uint8_t out[16];
    aes.encryptBytes(pt.data(), out);
    EXPECT_EQ(hexEncode(out, 16), hexEncode(expect.data(), 16));
}

/** NIST all-zero vector. */
TEST(AesTest, ZeroVector)
{
    Aes128 aes(Block::zero());
    Block ct = aes.encrypt(Block::zero());
    EXPECT_EQ(hexEncode(reinterpret_cast<uint8_t *>(&ct), 16),
              "66e94bd4ef8a2c3b884cfa59ca342b2e");
}

/** The AES-NI engine and the software engine must agree bit-for-bit. */
TEST(AesTest, EnginesAgree)
{
    if (!Aes128::usingAesni())
        GTEST_SKIP() << "AES-NI not available on this host";

    Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        Block key = rng.nextBlock();
        Block pt = rng.nextBlock();
        Aes128 aes(key);
        Block fast = aes.encrypt(pt);
        Aes128::forceSoftware(true);
        Block slow = aes.encrypt(pt);
        Aes128::forceSoftware(false);
        EXPECT_EQ(fast, slow) << "trial " << trial;
    }
}

TEST(AesTest, BatchMatchesSingle)
{
    Rng rng(12);
    Aes128 aes(rng.nextBlock());
    std::vector<Block> in = rng.nextBlocks(37); // odd size exercises tail
    std::vector<Block> batch(in.size());
    aes.encryptBatch(in.data(), batch.data(), in.size());
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(batch[i], aes.encrypt(in[i]));
}

TEST(AesTest, DifferentKeysDiffer)
{
    Aes128 a(Block::fromUint64(1));
    Aes128 b(Block::fromUint64(2));
    Block pt = Block::fromUint64(99);
    EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

// ---------------------------------------------------------------------------
// ChaCha
// ---------------------------------------------------------------------------

/** RFC 8439 section 2.3.2 ChaCha20 block-function test vector. */
TEST(ChaChaTest, Rfc8439KnownAnswer)
{
    std::array<uint32_t, 8> key;
    for (int i = 0; i < 8; ++i) {
        // Key bytes 00 01 02 ... 1f, little-endian words.
        uint32_t w = 0;
        for (int b = 3; b >= 0; --b)
            w = (w << 8) | uint32_t(4 * i + b);
        key[i] = w;
    }
    std::array<uint32_t, 3> nonce = {0x09000000, 0x4a000000, 0x00000000};

    ChaCha chacha(20);
    uint8_t out[64];
    chacha.block(key, 1, nonce, out);

    const std::string expect =
        "10f1e7e4d13b5915500fdd1fa32071c4"
        "c7d1f4c733c068030422aa9ac3d46c4e"
        "d2826446079faa0914c2d705d98b02a2"
        "b5129cd1de164eb9cbd083e8a2503c4e";
    EXPECT_EQ(hexEncode(out, 64), expect);
}

TEST(ChaChaTest, RoundCountChangesOutput)
{
    std::array<uint32_t, 8> key{1, 2, 3, 4, 5, 6, 7, 8};
    std::array<uint32_t, 3> nonce{9, 10, 11};
    uint8_t o8[64], o12[64], o20[64];
    ChaCha(8).block(key, 0, nonce, o8);
    ChaCha(12).block(key, 0, nonce, o12);
    ChaCha(20).block(key, 0, nonce, o20);
    EXPECT_NE(hexEncode(o8, 64), hexEncode(o12, 64));
    EXPECT_NE(hexEncode(o12, 64), hexEncode(o20, 64));
}

TEST(ChaChaTest, ExpandSeedDeterministicAndTweaked)
{
    ChaCha chacha(8);
    Block seed = Block::fromUint64(77);
    std::array<Block, 4> a, b, c;
    chacha.expandSeed(seed, 0, a);
    chacha.expandSeed(seed, 0, b);
    chacha.expandSeed(seed, 1, c);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    // All four blocks distinct (overwhelming probability).
    std::set<std::string> uniq;
    for (const Block &blk : a)
        uniq.insert(blk.toHex());
    EXPECT_EQ(uniq.size(), 4u);
}

/**
 * The SIMD multi-seed batch (AVX2 x8 / SSE2 x4 lanes + scalar tail)
 * must be bit-identical to per-seed expandSeed() for every round
 * count, batch size (exercising every lane-width path and the tail),
 * take count and output stride — and with the SIMD cores forced off.
 */
TEST(ChaChaTest, ExpandSeedsBatchMatchesScalar)
{
    Rng rng(31);
    for (int rounds : {8, 12, 20}) {
        ChaCha chacha(rounds);
        for (size_t n : {1u, 3u, 4u, 7u, 8u, 9u, 16u, 21u}) {
            std::vector<Block> seeds = rng.nextBlocks(n);
            const uint64_t tweak = rng.nextUint64();
            for (unsigned take : {1u, 2u, 4u}) {
                const size_t stride = take + (n % 3); // unaligned strides
                std::vector<Block> batch(n * stride, Block::ones());
                chacha.expandSeedsBatch(seeds.data(), n, tweak,
                                        batch.data(), stride, take);

                ChaCha::forceScalar(true);
                std::vector<Block> scalar(n * stride, Block::ones());
                chacha.expandSeedsBatch(seeds.data(), n, tweak,
                                        scalar.data(), stride, take);
                ChaCha::forceScalar(false);
                EXPECT_EQ(batch, scalar)
                    << "rounds=" << rounds << " n=" << n
                    << " take=" << take;

                std::array<Block, 4> ref;
                for (size_t i = 0; i < n; ++i) {
                    chacha.expandSeed(seeds[i], tweak, ref);
                    for (unsigned q = 0; q < take; ++q)
                        ASSERT_EQ(batch[i * stride + q], ref[q])
                            << "rounds=" << rounds << " n=" << n
                            << " seed=" << i << " block=" << q;
                    // Blocks past `take` untouched.
                    for (size_t q = take; q < stride; ++q)
                        ASSERT_EQ(batch[i * stride + q], Block::ones());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TreePrg
// ---------------------------------------------------------------------------

class TreePrgParamTest
    : public ::testing::TestWithParam<std::tuple<PrgKind, unsigned>>
{};

TEST_P(TreePrgParamTest, DeterministicAcrossInstances)
{
    auto [kind, arity] = GetParam();
    TreePrg p1(kind, arity), p2(kind, arity);
    Block seed = Block::fromUint64(123);
    std::vector<Block> c1(arity), c2(arity);
    p1.expand(seed, c1.data(), arity);
    p2.expand(seed, c2.data(), arity);
    EXPECT_EQ(c1, c2);
}

TEST_P(TreePrgParamTest, LevelMatchesScalar)
{
    auto [kind, arity] = GetParam();
    Rng rng(5);
    std::vector<Block> parents = rng.nextBlocks(19);
    TreePrg prg(kind, arity);

    std::vector<Block> level(parents.size() * arity);
    prg.expandLevel(parents.data(), parents.size(), level.data(), arity);

    TreePrg ref(kind, arity);
    std::vector<Block> one(arity);
    for (size_t j = 0; j < parents.size(); ++j) {
        ref.expand(parents[j], one.data(), arity);
        for (unsigned c = 0; c < arity; ++c)
            EXPECT_EQ(level[j * arity + c], one[c]);
    }
}

TEST_P(TreePrgParamTest, OpCountMatchesModel)
{
    auto [kind, arity] = GetParam();
    TreePrg prg(kind, arity);
    Block seed = Block::fromUint64(9);
    std::vector<Block> kids(arity);
    prg.expand(seed, kids.data(), arity);
    uint64_t expect = kind == PrgKind::Aes ? arity : (arity + 3) / 4;
    EXPECT_EQ(prg.ops(), expect);
    EXPECT_EQ(prg.opsForExpansion(arity), expect);
}

TEST_P(TreePrgParamTest, ChildrenDistinctFromParentAndEachOther)
{
    auto [kind, arity] = GetParam();
    TreePrg prg(kind, arity);
    Rng rng(6);
    Block seed = rng.nextBlock();
    std::vector<Block> kids(arity);
    prg.expand(seed, kids.data(), arity);
    std::set<std::string> uniq;
    uniq.insert(seed.toHex());
    for (const Block &k : kids)
        uniq.insert(k.toHex());
    EXPECT_EQ(uniq.size(), arity + 1);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndArities, TreePrgParamTest,
    ::testing::Combine(::testing::Values(PrgKind::Aes, PrgKind::ChaCha8,
                                         PrgKind::ChaCha20),
                       ::testing::Values(2u, 4u, 8u, 16u, 32u)),
    [](const auto &info) {
        return prgKindName(std::get<0>(info.param)) + "_m" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// CtrStream
// ---------------------------------------------------------------------------

TEST(CtrStreamTest, DeterministicAndSeedSensitive)
{
    CtrStream a(PrgKind::Aes, Block::fromUint64(1));
    CtrStream b(PrgKind::Aes, Block::fromUint64(1));
    CtrStream c(PrgKind::Aes, Block::fromUint64(2));
    bool diff = false;
    for (int i = 0; i < 256; ++i) {
        uint32_t va = a.nextUint32();
        EXPECT_EQ(va, b.nextUint32());
        diff |= (va != c.nextUint32());
    }
    EXPECT_TRUE(diff);
}

TEST(CtrStreamTest, NextBelowBounds)
{
    CtrStream s(PrgKind::ChaCha8, Block::fromUint64(3));
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(s.nextBelow(1000), 1000u);
}

TEST(CtrStreamTest, ValuesRoughlyUniform)
{
    CtrStream s(PrgKind::Aes, Block::fromUint64(4));
    std::map<uint32_t, int> hist;
    const int draws = 40000;
    for (int i = 0; i < draws; ++i)
        hist[s.nextBelow(16)]++;
    for (auto &[v, count] : hist)
        EXPECT_NEAR(count, draws / 16, draws / 16 * 0.2);
}

// ---------------------------------------------------------------------------
// CRHF
// ---------------------------------------------------------------------------

TEST(CrhfTest, DeterministicTweakSeparated)
{
    Crhf h;
    Block x = Block::fromUint64(5);
    EXPECT_EQ(h.hash(x, 0), h.hash(x, 0));
    EXPECT_NE(h.hash(x, 0), h.hash(x, 1));
    EXPECT_NE(h.hash(x, 0), h.hash(Block::fromUint64(6), 0));
}

TEST(CrhfTest, BatchMatchesSingle)
{
    Crhf h;
    Rng rng(8);
    std::vector<Block> in = rng.nextBlocks(23);
    std::vector<Block> out(in.size());
    h.hashBatch(in.data(), out.data(), in.size(), 100);
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(out[i], h.hash(in[i], 100 + i));
}

TEST(CrhfTest, BatchMatchesSingleOnEveryBackend)
{
    // The fused 8-wide AES-NI MMO pipeline and the portable software
    // path must agree with the scalar hash — including at sizes that
    // exercise the 8-wide main loop, its tail, and in-place hashing.
    Rng rng(81);
    std::vector<Block> in = rng.nextBlocks(67);

    for (bool force_soft : {false, true}) {
        Aes128::forceSoftware(force_soft);
        Crhf h;
        for (size_t n : {size_t(1), size_t(7), size_t(8), size_t(9),
                         size_t(64), in.size()}) {
            std::vector<Block> out(n);
            h.hashBatch(in.data(), out.data(), n, 777);
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(out[i], h.hash(in[i], 777 + i))
                    << (force_soft ? "software" : "native") << " n=" << n
                    << " i=" << i;

            // In-place batch (the chosen-OT pad path).
            std::vector<Block> inplace(in.begin(), in.begin() + n);
            h.hashBatch(inplace.data(), inplace.data(), n, 777);
            ASSERT_EQ(inplace, out)
                << (force_soft ? "software" : "native") << " n=" << n;
        }
        Aes128::forceSoftware(false);
    }

    // Both engines compute the same MMO function.
    Crhf native;
    Aes128::forceSoftware(true);
    Crhf soft;
    std::vector<Block> a(in.size()), b(in.size());
    native.hashBatch(in.data(), a.data(), in.size(), 5);
    Aes128::forceSoftware(false);
    soft.hashBatch(in.data(), b.data(), in.size(), 5);
    EXPECT_EQ(a, b);
}

TEST(CrhfTest, NotTheIdentityAndMixesDelta)
{
    Crhf h;
    Rng rng(9);
    Block x = rng.nextBlock();
    Block delta = rng.nextBlock();
    EXPECT_NE(h.hash(x, 0), x);
    // H(x) ^ H(x ^ delta) must not equal delta (else COT->OT leaks).
    EXPECT_NE(h.hash(x, 0) ^ h.hash(x ^ delta, 0), delta);
}

} // namespace
} // namespace ironman::crypto
