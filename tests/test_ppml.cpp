/**
 * @file
 * PPML layer tests: model zoo sanity, framework cost models, the
 * end-to-end estimator's reproduction of the paper's qualitative
 * claims (Fig. 1(a) breakdown, Table 5 speedup bands, Fig. 16).
 */

#include <gtest/gtest.h>

#include "net/channel.h"
#include "ppml/estimator.h"
#include "ppml/framework.h"
#include "ppml/matmul.h"
#include "ppml/model_zoo.h"

namespace ironman::ppml {
namespace {

// Engines in the ballpark of our measurements (benches use live
// numbers; tests pin representative constants).
const OtEngine kCpu = OtEngine::cpu(2.5e6);
const OtEngine kIronman = OtEngine::ironman(450e6);

TEST(ModelZooTest, AllModelsWellFormed)
{
    auto models = allModels();
    EXPECT_EQ(models.size(), 10u);
    for (const auto &m : models) {
        EXPECT_FALSE(m.name.empty());
        EXPECT_GT(m.totalNonlinearElements(), 0u);
        EXPECT_GT(m.linearGmacs, 0.0);
        EXPECT_GT(m.protocolLayers, 0u);
        for (const auto &c : m.nonlinear) {
            if (m.transformer) {
                EXPECT_NE(c.op, NonlinearOp::ReLU) << m.name;
            } else {
                EXPECT_TRUE(c.op == NonlinearOp::ReLU ||
                            c.op == NonlinearOp::MaxPool)
                    << m.name;
            }
        }
    }
}

TEST(ModelZooTest, CnnLatencyOrderingPreconditions)
{
    // Table 5's CNN ordering is driven by ReLU counts.
    EXPECT_LT(mobileNetV2().totalNonlinearElements(),
              squeezeNet().totalNonlinearElements());
    EXPECT_LT(squeezeNet().totalNonlinearElements(),
              resNet50().totalNonlinearElements());
    EXPECT_LT(resNet18().totalNonlinearElements(),
              resNet34().totalNonlinearElements());
    EXPECT_LT(resNet50().totalNonlinearElements(),
              denseNet121().totalNonlinearElements());
}

TEST(FrameworkTest, SupportMatrix)
{
    EXPECT_TRUE(FrameworkModel::crypTFlow2().supports(resNet50()));
    EXPECT_FALSE(FrameworkModel::crypTFlow2().supports(bertBase()));
    EXPECT_TRUE(FrameworkModel::bolt().supports(bertBase()));
    EXPECT_FALSE(FrameworkModel::bolt().supports(resNet50()));
    EXPECT_TRUE(FrameworkModel::sirnn().supports(resNet50()));
    EXPECT_TRUE(FrameworkModel::sirnn().supports(bertBase()));
}

TEST(FrameworkTest, CrypTFlow2ReluAnchor)
{
    // Sec. 1: ~2^25 COTs for ResNet18's 802,816-ReLU first layer.
    double cots = FrameworkModel::crypTFlow2()
                      .cost(NonlinearOp::ReLU)
                      .cotsPerElement *
                  802816;
    EXPECT_NEAR(cots / double(1ull << 25), 1.0, 0.05);
}

TEST(EstimatorTest, OteDominatesOnCpu)
{
    // Fig. 1(a): on the CPU baseline, OT extension is the largest
    // component (51-69% in the paper; our software stack is in the
    // same half-to-three-quarters band).
    net::NetworkModel lan = net::lanNetwork();
    for (const auto &[model, fw] :
         {std::pair{resNet50(), FrameworkModel::cheetah()},
          std::pair{bertBase(), FrameworkModel::bolt()},
          std::pair{denseNet121(), FrameworkModel::crypTFlow2()}}) {
        LatencyBreakdown b = estimateInference(model, fw, lan, kCpu);
        EXPECT_GT(b.oteFraction(), 0.45) << model.name;
        EXPECT_LT(b.oteFraction(), 0.90) << model.name;
    }
}

TEST(EstimatorTest, IronmanSpeedupBandsLan)
{
    // Table 5, (3Gbps, 0.15ms): 2.11-2.67x for CNNs, 2.91-3.40x for
    // Transformers. Allow a generous band around those targets.
    net::NetworkModel lan = net::lanNetwork();

    auto speedup = [&](const ModelProfile &m, const FrameworkModel &f) {
        double base = estimateInference(m, f, lan, kCpu).totalSeconds();
        double ours =
            estimateInference(m, f, lan, kIronman).totalSeconds();
        return base / ours;
    };

    for (const auto &m :
         {mobileNetV2(), resNet18(), resNet50(), denseNet121()}) {
        double s_ctf = speedup(m, FrameworkModel::crypTFlow2());
        double s_che = speedup(m, FrameworkModel::cheetah());
        EXPECT_GT(s_ctf, 1.5) << m.name;
        EXPECT_LT(s_ctf, 6.0) << m.name;
        EXPECT_GT(s_che, 1.5) << m.name;
        EXPECT_LT(s_che, 6.0) << m.name;
    }
    for (const auto &m : {vitBase(), bertBase(), bertLarge(),
                          gpt2Large()}) {
        double s = speedup(m, FrameworkModel::bolt());
        EXPECT_GT(s, 1.9) << m.name;
        EXPECT_LT(s, 7.0) << m.name;
    }
}

TEST(EstimatorTest, WanSpeedupsSmallerThanLan)
{
    // Table 5's second observation: at 400Mbps/20ms the communication
    // bottleneck caps the benefit.
    net::NetworkModel lan = net::lanNetwork();
    net::NetworkModel wan = net::wanNetwork();
    auto speedup = [&](const net::NetworkModel &net) {
        auto m = resNet50();
        auto f = FrameworkModel::cheetah();
        return estimateInference(m, f, net, kCpu).totalSeconds() /
               estimateInference(m, f, net, kIronman).totalSeconds();
    };
    EXPECT_LT(speedup(wan), speedup(lan));
    EXPECT_GT(speedup(wan), 1.1);
}

TEST(EstimatorTest, AccelerationRemovesTheOteBottleneck)
{
    // The mechanism behind every Table 5 row: with Ironman supplying
    // COTs, OT extension stops being the dominant component and the
    // residual is linear layers + communication.
    net::NetworkModel lan = net::lanNetwork();
    for (const auto &[model, fw] :
         {std::pair{resNet50(), FrameworkModel::cheetah()},
          std::pair{bertLarge(), FrameworkModel::bolt()},
          std::pair{denseNet121(), FrameworkModel::crypTFlow2()}}) {
        LatencyBreakdown b = estimateInference(model, fw, lan, kIronman);
        EXPECT_LT(b.oteFraction(), 0.05) << model.name;
    }
}

TEST(EstimatorTest, NonlinearOpSpeedupAroundFourX)
{
    // Fig. 15: ~3.9-4.4x per-op latency reduction once the OT
    // computation is accelerated (communication remains).
    net::NetworkModel lan = net::lanNetwork();
    for (NonlinearOp op : {NonlinearOp::GELU, NonlinearOp::Softmax,
                           NonlinearOp::LayerNorm}) {
        auto base = estimateNonlinearOp(op, 1 << 20,
                                        FrameworkModel::sirnn(), lan,
                                        kCpu);
        auto ours = estimateNonlinearOp(op, 1 << 20,
                                        FrameworkModel::sirnn(), lan,
                                        kIronman);
        double speedup = base.totalSeconds() / ours.totalSeconds();
        EXPECT_GT(speedup, 2.5) << nonlinearOpName(op);
        EXPECT_LT(speedup, 30.0) << nonlinearOpName(op);
    }
}

TEST(MatMulTest, UnifiedHalvesCommunication)
{
    // Fig. 16: exactly 2x communication reduction on all three shapes.
    for (MatMulDims dims : {MatMulDims{64, 768, 768},
                            MatMulDims{64, 768, 64},
                            MatMulDims{64, 4096, 64}}) {
        auto base = secureMatMulCost(dims, 8, false, 450e6);
        auto unified = secureMatMulCost(dims, 8, true, 450e6);
        EXPECT_EQ(base.bytes, 2 * unified.bytes);
        EXPECT_EQ(base.cots, unified.cots);
    }
}

TEST(MatMulTest, LatencyGainAroundOnePointFour)
{
    // Fig. 16's companion claim: 2x comm -> ~1.4x latency at WAN
    // bandwidth (compute is unchanged).
    net::NetworkModel wan = net::wanNetwork();
    MatMulDims dims{64, 768, 768};
    auto base = secureMatMulCost(dims, 8, false, 450e6);
    auto unified = secureMatMulCost(dims, 8, true, 450e6);
    double gain = base.latencySeconds(wan) / unified.latencySeconds(wan);
    EXPECT_GT(gain, 1.2);
    EXPECT_LT(gain, 2.0);
}

} // namespace
} // namespace ironman::ppml
