/**
 * @file
 * Table 4 — OTE parameter sets and their LPN bit security.
 *
 * Prints the published (n, l, k, t) tuples, the tree size this
 * implementation actually uses (power-of-two covering the regular-
 * noise bucket), the per-extension COT budget, and our attack-cost
 * estimates next to the paper's bit-security column.
 */

#include "bench_util.h"
#include "ot/security.h"

using namespace ironman;
using namespace ironman::bench;

int
main()
{
    banner("Table 4", "PCG-style OTE parameter sets + LPN security");

    std::printf("%-6s | %9s %6s %7s %5s | %6s %9s | %7s %7s %7s | %7s\n",
                "#OTs", "n", "l", "k", "t", "ours_l", "usable",
                "gauss", "isd", "ours", "paper");
    for (const ot::FerretParams &p : ot::allPaperParamSets()) {
        auto est = ot::estimateLpnSecurity(p.n, p.k, p.t);
        std::printf("%-6s | %9zu %6zu %7zu %5zu | %6zu %9zu | "
                    "%7.1f %7.1f %7.1f | %7.1f\n",
                    p.name.c_str(), p.n, p.paperEll, p.k, p.t,
                    p.treeLeaves(), p.usableOts(), est.gaussBits,
                    est.isdBits, est.bits(), p.paperBitSec);
    }

    note("ours_l differs from the paper's l for 2^23/2^24: ceil(n/t) > "
         "8192, so our trees grow to 16384 to cover every noise bucket "
         "(see EXPERIMENTS.md).");
    note("security estimates: pooled-Gauss and Prange-ISD cost models "
         "(Sec. 'security.h'); all sets clear the 128-bit bar, "
         "within a few bits of the paper's estimator.");
    return 0;
}
