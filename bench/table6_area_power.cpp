/**
 * @file
 * Table 6 — design overhead of the Ironman-NMP processing unit, plus
 * the power-efficiency comparison against the GPU (Sec. 6.1's 84.5x
 * claim).
 */

#include "bench_util.h"
#include "nmp/area_power.h"
#include "nmp/ironman_model.h"
#include "nmp/reference.h"

using namespace ironman;
using namespace ironman::bench;

int
main()
{
    banner("Table 6", "Ironman-NMP area and power (45nm, model "
                      "calibrated to the paper's synthesis)");

    auto chacha = nmp::chaCha8Core();
    std::printf("%-24s | %10s | %10s\n", "component", "area mm^2",
                "power W");
    std::printf("%-24s | %10.3f | %10.3f\n", "ChaCha8 core",
                chacha.areaMm2, chacha.powerWatt);

    for (uint64_t kb : {256u, 1024u}) {
        nmp::PuSpec pu;
        pu.cacheBytes = kb * 1024;
        std::printf("%-16s%4lluKB$ | %10.3f | %10.3f\n", "Ironman-NMP,",
                    static_cast<unsigned long long>(kb), pu.areaMm2(),
                    pu.powerWatt());
    }
    std::printf("%-24s | %10.1f | %10.1f\n", "typical DRAM chip",
                nmp::ReferencePlatforms::dramChipAreaMm2,
                nmp::ReferencePlatforms::lrdimmPowerWatt);

    std::printf("\npaper: 1.482 / 2.995 mm^2 and 1.301 / 1.430 W for "
                "the 256KB / 1MB PUs (our model is calibrated to "
                "these, then extrapolates other sizes).\n");

    // Power-efficiency comparison vs the GPU (Sec. 6.1).
    nmp::IronmanConfig cfg;
    cfg.numDimms = 8;
    cfg.cacheBytes = 1024 * 1024;
    cfg.sampleRows = fastMode() ? 60000 : 120000;
    ot::FerretParams p = ironmanParams(22);
    auto rep = nmp::IronmanModel(cfg, p).simulate();

    auto cpu = nmp::measureCpuOte(cpuBaselineParams(22), 24, 1);
    double gpu_secs = nmp::GpuReference::secondsPerExec(
        cpu.secondsPerExec);
    double gpu_energy = gpu_secs * nmp::ReferencePlatforms::gpuPowerWatt;

    std::printf("\nper-execution energy (2^22 set):\n");
    std::printf("%-10s | %10s | %12s | %10s\n", "platform", "time s",
                "avg power W", "energy J");
    std::printf("%-10s | %10.4f | %12.1f | %10.3f\n", "GPU(model)",
                gpu_secs, nmp::ReferencePlatforms::gpuPowerWatt,
                gpu_energy);
    std::printf("%-10s | %10.4f | %12.1f | %10.3f\n", "Ironman",
                rep.totalSeconds, rep.powerWatt, rep.energyJoule);

    nmp::PuSpec pu1m;
    pu1m.cacheBytes = 1024 * 1024;
    double pu_logic_power = pu1m.powerWatt() * cfg.numDimms;
    std::printf("-> latency gain %.1fx; power: %.1fx on PU logic "
                "(%.1f W), %.1fx on total incl. DRAM (%.1f W); "
                "energy %.0fx\n",
                gpu_secs / rep.totalSeconds,
                nmp::ReferencePlatforms::gpuPowerWatt / pu_logic_power,
                pu_logic_power,
                nmp::ReferencePlatforms::gpuPowerWatt / rep.powerWatt,
                rep.powerWatt, gpu_energy / rep.energyJoule);
    std::printf("   (paper: 40.31x latency, 84.5x power vs the "
                "A6000)\n");
    return 0;
}
