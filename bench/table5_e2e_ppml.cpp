/**
 * @file
 * Table 5 — end-to-end PPML latency across frameworks, models and
 * network settings, base (CPU OT stack) vs ours (Ironman), with the
 * paper's published numbers printed alongside.
 */

#include <map>
#include <string>

#include "bench_util.h"
#include "nmp/ironman_model.h"
#include "nmp/reference.h"
#include "ppml/estimator.h"

using namespace ironman;
using namespace ironman::bench;
using namespace ironman::ppml;

namespace {

/** Paper Table 5: {framework|model|network} -> (base s, ours s). */
const std::map<std::string, std::pair<double, double>> kPaper = {
    {"CrypTFlow2|MobileNetV2|wan", {46.3, 29.6}},
    {"CrypTFlow2|SqueezeNet|wan", {71.0, 38.8}},
    {"CrypTFlow2|ResNet18|wan", {130.6, 80.1}},
    {"CrypTFlow2|ResNet34|wan", {287.4, 168.1}},
    {"CrypTFlow2|ResNet50|wan", {357.4, 223.5}},
    {"CrypTFlow2|DenseNet121|wan", {629.0, 411.0}},
    {"CrypTFlow2|MobileNetV2|lan", {32.0, 16.4}},
    {"CrypTFlow2|SqueezeNet|lan", {61.8, 27.7}},
    {"CrypTFlow2|ResNet18|lan", {113.6, 57.6}},
    {"CrypTFlow2|ResNet34|lan", {217.0, 100.5}},
    {"CrypTFlow2|ResNet50|lan", {252.4, 119.7}},
    {"CrypTFlow2|DenseNet121|lan", {452.5, 201.3}},
    {"Cheetah|MobileNetV2|wan", {31.6, 22.4}},
    {"Cheetah|SqueezeNet|wan", {29.9, 20.5}},
    {"Cheetah|ResNet18|wan", {39.7, 27.4}},
    {"Cheetah|ResNet34|wan", {66.1, 45.4}},
    {"Cheetah|ResNet50|wan", {83.8, 63.3}},
    {"Cheetah|DenseNet121|wan", {126.9, 96.5}},
    {"Cheetah|MobileNetV2|lan", {12.9, 5.3}},
    {"Cheetah|SqueezeNet|lan", {15.6, 6.4}},
    {"Cheetah|ResNet18|lan", {21.3, 9.1}},
    {"Cheetah|ResNet34|lan", {40.7, 16.3}},
    {"Cheetah|ResNet50|lan", {48.3, 21.4}},
    {"Cheetah|DenseNet121|lan", {62.1, 23.3}},
    {"Bolt|ViT|wan", {1026.8, 693.8}},
    {"Bolt|BERT-Base|wan", {667.2, 436.8}},
    {"Bolt|BERT-Large|wan", {1543.2, 923.9}},
    {"Bolt|GPT2-Large|wan", {2538.0, 1555.2}},
    {"Bolt|ViT|lan", {812.2, 272.6}},
    {"Bolt|BERT-Base|lan", {527.7, 190.0}},
    {"Bolt|BERT-Large|lan", {1392.8, 421.6}},
    {"Bolt|GPT2-Large|lan", {2349.4, 739.4}},
};

void
printBlock(const FrameworkModel &fw,
           const std::vector<ModelProfile> &models, const OtEngine &cpu,
           const OtEngine &iron)
{
    std::printf("%s:\n", fw.name().c_str());
    std::printf("  %-12s | %8s %8s %6s | %8s %8s %6s | %18s\n", "model",
                "baseW", "oursW", "spdW", "baseL", "oursL", "spdL",
                "paper L (base/ours)");
    for (const ModelProfile &m : models) {
        if (!fw.supports(m))
            continue;
        auto wan = net::wanNetwork();
        auto lan = net::lanNetwork();
        double bw = estimateInference(m, fw, wan, cpu).totalSeconds();
        double ow = estimateInference(m, fw, wan, iron).totalSeconds();
        double bl = estimateInference(m, fw, lan, cpu).totalSeconds();
        double ol = estimateInference(m, fw, lan, iron).totalSeconds();

        std::string key = fw.name() + "|" + m.name + "|lan";
        auto it = kPaper.find(key);
        char paper[40] = "-";
        if (it != kPaper.end())
            std::snprintf(paper, sizeof(paper), "%.1f / %.1f (%.2fx)",
                          it->second.first, it->second.second,
                          it->second.first / it->second.second);
        std::printf("  %-12s | %8.1f %8.1f %5.2fx | %8.1f %8.1f "
                    "%5.2fx | %18s\n",
                    m.name.c_str(), bw, ow, bw / ow, bl, ol, bl / ol,
                    paper);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    banner("Table 5", "end-to-end private inference: base (CPU OT) vs "
                      "ours (Ironman), WAN and LAN");

    auto cpu_meas = nmp::measureCpuOte(cpuBaselineParams(20), 24, 1);
    OtEngine cpu = OtEngine::cpu(cpu_meas.otsPerSecond());

    nmp::IronmanConfig cfg;
    cfg.numDimms = 8;
    cfg.cacheBytes = 1024 * 1024;
    cfg.sampleRows = fastMode() ? 60000 : 150000;
    ot::FerretParams params = ironmanParams(22);
    auto rep = nmp::IronmanModel(cfg, params).simulate();
    OtEngine iron =
        OtEngine::ironman(rep.otThroughput(params.usableOts()));

    std::printf("engines: CPU %.2f MCOT/s measured, Ironman %.0f "
                "MCOT/s simulated (16 ranks, 1MB)\n\n",
                cpu.cotsPerSecond / 1e6, iron.cotsPerSecond / 1e6);

    auto cnns = std::vector<ModelProfile>{
        mobileNetV2(), squeezeNet(), resNet18(),
        resNet34(),    resNet50(),   denseNet121()};
    auto transformers = std::vector<ModelProfile>{
        vitBase(), bertBase(), bertLarge(), gpt2Large()};

    printBlock(FrameworkModel::crypTFlow2(), cnns, cpu, iron);
    printBlock(FrameworkModel::cheetah(), cnns, cpu, iron);
    printBlock(FrameworkModel::bolt(), transformers, cpu, iron);

    std::printf("paper bands: LAN 2.11-2.67x (CNNs), 2.91-3.40x "
                "(Transformers); WAN 1.32-1.83x — communication "
                "becomes the residual bottleneck.\n");
    return 0;
}
