/**
 * @file
 * Multi-session COT service throughput: aggregate OT/s of a loopback
 * CotServer as the concurrent-session count grows — the first
 * bench of the concurrent-serving workload class (the ROADMAP's
 * "many users" axis), measured over the real socket transport.
 *
 * Each client thread runs a fixed number of extension batches; the
 * table reports per-sweep aggregate throughput and the engine-pool
 * construction count (sessions beyond the first wave reuse warm
 * engines). On this single-core container the aggregate cannot scale
 * with sessions — the interesting columns here are the per-session
 * cost of multiplexing and the pool behavior; re-measure on real
 * cores for the scaling curve.
 *
 * Emits BENCH_svc_multi_session.json for the CI perf trajectory.
 *
 * Run: ./bench_svc_multi_session   (IRONMAN_BENCH_FAST=1 trims)
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "ot/ferret_params.h"
#include "svc/cot_client.h"
#include "svc/cot_server.h"

using namespace ironman;
using namespace ironman::svc;

namespace {

struct SweepPoint
{
    int sessions;
    uint64_t totalOts;
    double seconds;
    double aggregateOtsPerSec;
};

SweepPoint
runSweep(uint16_t port, const ot::FerretParams &p, int sessions,
         int iters, uint64_t seed_base)
{
    Timer timer;
    std::vector<std::thread> clients;
    std::atomic<uint64_t> total{0};
    for (int i = 0; i < sessions; ++i)
        clients.emplace_back([&, i] {
            CotClient::Options opt;
            opt.setupSeed = seed_base + uint64_t(i);
            auto client =
                CotClient::connectTcp("127.0.0.1", port, p, opt);
            BitVec choice;
            std::vector<Block> t(client->usableOts());
            for (int it = 0; it < iters; ++it)
                client->extendRecv(choice, t.data());
            total.fetch_add(uint64_t(client->usableOts()) * iters);
            client->close();
        });
    for (auto &th : clients)
        th.join();

    SweepPoint pt;
    pt.sessions = sessions;
    pt.totalOts = total.load();
    pt.seconds = timer.seconds();
    pt.aggregateOtsPerSec = double(pt.totalOts) / pt.seconds;
    return pt;
}

} // namespace

int
main()
{
    bench::banner("svc_multi_session",
                  "aggregate COT service throughput vs concurrent "
                  "session count (loopback TCP)");

    const bool fast = bench::fastMode();
    const int iters = fast ? 2 : 4;
    const int session_counts[] = {1, 2, 4, 8};

    bench::JsonWriter j("BENCH_svc_multi_session.json");
    j.kv("bench", "svc_multi_session");
    j.kv("iters_per_session", uint64_t(iters));
    j.key("series");
    j.beginArray();

    bool ok = true;
    for (const ot::FerretParams &p :
         {ot::tinyAlignedParams(), ot::tinyTestParams()}) {
        CotServer::Config cfg;
        cfg.maxSessions = 16;
        CotServer server(cfg);
        const uint16_t port = server.listenTcp(0);

        std::printf("\nparam set %s (n=%zu, %zu usable OTs/ext):\n",
                    p.name.c_str(), p.n, p.usableOts());
        std::printf("  %8s %12s %10s %14s %16s\n", "sessions",
                    "total OTs", "seconds", "aggregate OT/s",
                    "engines built");

        uint64_t seed = 0xb0b0 + uint64_t(p.n);
        for (int sessions : session_counts) {
            const SweepPoint pt =
                runSweep(port, p, sessions, iters, seed);
            seed += uint64_t(sessions);
            const uint64_t engines = server.pool().sendersCreated();
            std::printf("  %8d %12llu %10.3f %11.2f M/s %16llu\n",
                        pt.sessions,
                        (unsigned long long)pt.totalOts, pt.seconds,
                        pt.aggregateOtsPerSec / 1e6,
                        (unsigned long long)engines);
            if (pt.aggregateOtsPerSec < 1e5)
                ok = false;

            j.beginObject();
            j.kv("params", p.name);
            j.kv("sessions", uint64_t(pt.sessions));
            j.kv("total_ots", pt.totalOts);
            j.kv("seconds", pt.seconds);
            j.kv("aggregate_ots_per_sec", pt.aggregateOtsPerSec);
            j.kv("engines_built", engines);
            j.endObject();
        }
        // Warm-reuse sentinel: engines built must stay well under the
        // total sessions served (15 per sweep). It can transiently
        // exceed the peak concurrency (8) — a finishing session's
        // engine may still be mid-return when the next checkout
        // lands — but a pool that builds per session would hit 15.
        uint64_t total_sessions = 0;
        for (int s : session_counts)
            total_sessions += uint64_t(s);
        if (server.pool().sendersCreated() >= total_sessions)
            ok = false;
        server.stop();
    }
    j.endArray();
    j.kv("ok", uint64_t(ok ? 1 : 0));
    j.close();

    bench::note("single-core container: aggregate OT/s cannot scale "
                "with sessions here; the pool column is the point — "
                "engines built should track peak concurrency, not "
                "session count. Re-measure scaling on real cores.");
    std::printf("%s\n", ok ? "BENCH-SMOKE OK" : "BENCH-SMOKE FAILED");
    return ok ? 0 : 1;
}
