/**
 * @file
 * Microbench: unpipelined vs pipelined FERRET extension on the
 * workspace engine.
 *
 * Both paths run extendInto() (zero heap allocations once warm); the
 * pipelined path additionally overlaps iteration i's LPN gather-XOR
 * with iteration i+1's SPCOT transcript on the wire and uses the
 * precomputed LPN index tape. A thread sweep shows the fixed-pool
 * batch-SPCOT/LPN scaling.
 *
 * Run: ./bench_micro_workspace_reuse   (IRONMAN_BENCH_FAST=1 trims)
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"

using namespace ironman;
using namespace ironman::ot;

namespace {

struct Result
{
    double otsPerSec = 0;
    double usPerExtension = 0;
};

/** One measured configuration: @p iters extensions after one warm-up. */
Result
measure(const FerretParams &p, bool pipelined, int threads, int iters)
{
    Rng dealer(1234);
    Block delta = dealer.nextBlock();
    auto [bs, br] = dealBaseCots(dealer, delta, p.reservedCots());

    double seconds = 0;
    net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotSender sender(ch, p, delta, std::move(bs.q));
            sender.setThreads(threads);
            sender.setPipelined(pipelined);
            Rng rng(1);
            std::vector<Block> out(p.usableOts());
            // Warm-up extension (sizes workspaces, faults pages).
            sender.extendInto(rng, out.data());
            Timer timer;
            for (int it = 0; it < iters; ++it)
                sender.extendInto(rng, out.data());
            seconds = timer.seconds();
        },
        [&](net::Channel &ch) {
            FerretCotReceiver receiver(ch, p, std::move(br.choice),
                                       std::move(br.t));
            receiver.setThreads(threads);
            receiver.setPipelined(pipelined);
            Rng rng(2);
            BitVec choice;
            std::vector<Block> t(p.usableOts());
            receiver.extendInto(rng, choice, t.data());
            for (int it = 0; it < iters; ++it)
                receiver.extendInto(rng, choice, t.data());
        });

    Result r;
    r.usPerExtension = seconds * 1e6 / iters;
    r.otsPerSec = double(p.usableOts()) * iters / seconds;
    return r;
}

void
row(const char *label, const FerretParams &p, bool pipelined, int threads,
    int iters)
{
    Result r = measure(p, pipelined, threads, iters);
    std::printf("  %-22s %2d thr   %9.0f us/ext   %8.2f M OT/s\n", label,
                threads, r.usPerExtension, r.otsPerSec / 1e6);
}

} // namespace

int
main()
{
    bench::banner("micro_workspace_reuse",
                  "unpipelined vs pipelined FERRET extension");

    const bool fast = bench::fastMode();
    const int iters = fast ? 2 : 8;

    FerretParams tiny = tinyTestParams();
    std::printf("%s set: n=%zu k=%zu t=%zu l=%zu, %zu usable OTs/ext\n",
                tiny.name.c_str(), tiny.n, tiny.k, tiny.t,
                tiny.treeLeaves(), tiny.usableOts());
    row("unpipelined", tiny, false, 1, iters);
    row("pipelined", tiny, true, 1, iters);
    row("pipelined", tiny, true, 2, iters);
    row("pipelined", tiny, true, 4, iters);

    if (!fast) {
        FerretParams big = paperParamSet(20);
        std::printf("\n%s set: n=%zu k=%zu t=%zu l=%zu, %zu usable "
                    "OTs/ext\n",
                    big.name.c_str(), big.n, big.k, big.t,
                    big.treeLeaves(), big.usableOts());
        const int big_iters = 2;
        row("unpipelined", big, false, 1, big_iters);
        row("pipelined", big, true, 1, big_iters);
        row("pipelined", big, true, 2, big_iters);
        row("pipelined", big, true, 4, big_iters);
    }

    bench::note("both rows run extendInto() (zero allocations once "
                "warm); pipelined additionally overlaps LPN with the "
                "next SPCOT transcript and replays the LPN index tape");
    return 0;
}
