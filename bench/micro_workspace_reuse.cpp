/**
 * @file
 * Microbench: allocate-per-call vs workspace-reuse FERRET extension.
 *
 * The legacy path is the historical vector-returning extend() (fresh
 * output vectors every call, plus whatever the protocol allocated
 * internally before the OtWorkspace refactor — the shim itself still
 * allocates its outputs). The workspace path is extendInto() writing
 * into preallocated spans, zero heap allocations once warm. A thread
 * sweep shows the fixed-pool batch-SPCOT/LPN scaling.
 *
 * Run: ./bench_micro_workspace_reuse   (IRONMAN_BENCH_FAST=1 trims)
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"

using namespace ironman;
using namespace ironman::ot;

namespace {

struct Result
{
    double otsPerSec = 0;
    double usPerExtension = 0;
};

/** One measured configuration: @p iters extensions after one warm-up. */
Result
measure(const FerretParams &p, bool workspace, int threads, int iters)
{
    Rng dealer(1234);
    Block delta = dealer.nextBlock();
    auto [bs, br] = dealBaseCots(dealer, delta, p.reservedCots());

    double seconds = 0;
    net::runTwoParty(
        [&](net::Channel &ch) {
            FerretCotSender sender(ch, p, delta, std::move(bs.q));
            sender.setThreads(threads);
            Rng rng(1);
            std::vector<Block> out(p.usableOts());
            // Warm-up extension (sizes workspaces, faults pages).
            sender.extendInto(rng, out.data());
            Timer timer;
            for (int it = 0; it < iters; ++it) {
                if (workspace)
                    sender.extendInto(rng, out.data());
                else
                    out = sender.extend(rng); // fresh vector per call
            }
            seconds = timer.seconds();
        },
        [&](net::Channel &ch) {
            FerretCotReceiver receiver(ch, p, std::move(br.choice),
                                       std::move(br.t));
            receiver.setThreads(threads);
            Rng rng(2);
            BitVec choice;
            std::vector<Block> t(p.usableOts());
            receiver.extendInto(rng, choice, t.data());
            for (int it = 0; it < iters; ++it) {
                if (workspace) {
                    receiver.extendInto(rng, choice, t.data());
                } else {
                    auto got = receiver.extend(rng);
                    (void)got;
                }
            }
        });

    Result r;
    r.usPerExtension = seconds * 1e6 / iters;
    r.otsPerSec = double(p.usableOts()) * iters / seconds;
    return r;
}

void
row(const char *label, const FerretParams &p, bool workspace, int threads,
    int iters)
{
    Result r = measure(p, workspace, threads, iters);
    std::printf("  %-22s %2d thr   %9.0f us/ext   %8.2f M OT/s\n", label,
                threads, r.usPerExtension, r.otsPerSec / 1e6);
}

} // namespace

int
main()
{
    bench::banner("micro_workspace_reuse",
                  "allocate-per-call vs workspace-reuse FERRET extension");

    const bool fast = bench::fastMode();
    const int iters = fast ? 2 : 8;

    FerretParams tiny = tinyTestParams();
    std::printf("%s set: n=%zu k=%zu t=%zu l=%zu, %zu usable OTs/ext\n",
                tiny.name.c_str(), tiny.n, tiny.k, tiny.t,
                tiny.treeLeaves(), tiny.usableOts());
    row("alloc-per-call", tiny, false, 1, iters);
    row("workspace-reuse", tiny, true, 1, iters);
    row("workspace-reuse", tiny, true, 2, iters);
    row("workspace-reuse", tiny, true, 4, iters);

    if (!fast) {
        FerretParams big = paperParamSet(20);
        std::printf("\n%s set: n=%zu k=%zu t=%zu l=%zu, %zu usable "
                    "OTs/ext\n",
                    big.name.c_str(), big.n, big.k, big.t,
                    big.treeLeaves(), big.usableOts());
        const int big_iters = 2;
        row("alloc-per-call", big, false, 1, big_iters);
        row("workspace-reuse", big, true, 1, big_iters);
        row("workspace-reuse", big, true, 2, big_iters);
        row("workspace-reuse", big, true, 4, big_iters);
    }

    bench::note("workspace path = extendInto() (zero allocations once "
                "warm; see tests/test_workspace_engine.cpp)");
    return 0;
}
