/**
 * @file
 * Figure 7 — the m-ary tree trade-off.
 *
 * For m in {2,4,8,16,32} with the ChaCha8 PRG, run one real OTE
 * extension (2^20 set) and report:
 *   (a) PRG operation count (measured through the protocol's
 *       counters),
 *   (b) wire bytes (measured on the in-memory duplex),
 *   (c) protocol latency under WAN (400 Mbps / 20 ms) and LAN
 *       (3 Gbps / 0.15 ms): measured compute + modelled wire time.
 *
 * The paper selects m = 4: nearly all of the op reduction with little
 * of the communication growth.
 */

#include "bench_util.h"
#include "nmp/reference.h"

using namespace ironman;
using namespace ironman::bench;

int
main()
{
    banner("Figure 7", "m-ary GGM trees: operations vs communication "
                       "vs latency (ChaCha8, 2^20 set, measured)");

    net::NetworkModel wan = net::wanNetwork();
    net::NetworkModel lan = net::lanNetwork();
    const double hw_clock = 350e6; // accelerated SPCOT pipeline

    std::printf("%-4s | %12s %9s | %11s | %9s %9s | %9s %9s\n", "m",
                "prg_ops", "vs m=2", "comm (MB)", "cpuWAN(s)",
                "cpuLAN(s)", "hwWAN(ms)", "hwLAN(ms)");

    double ops_m2 = 0;
    for (unsigned m : {2u, 4u, 8u, 16u, 32u}) {
        ot::FerretParams p = ironmanParams(20);
        p.arity = m;

        auto meas = nmp::measureCpuOte(p, 8, 1);

        // Sender PRG invocations, measured through the protocol's
        // TreePrg counters (main trees + (m-1)-of-m mini trees).
        double ops = double(meas.spcotPrgOps);
        if (m == 2)
            ops_m2 = ops;

        double wan_s =
            meas.secondsPerExec + wan.seconds(meas.wireBytes, 2.0);
        double lan_s =
            meas.secondsPerExec + lan.seconds(meas.wireBytes, 2.0);

        // Accelerated view (the paper's Fig. 7(c) regime): SPCOT runs
        // on the pipeline, so wire time dominates and grows with m —
        // the reason m=4 wins over wider trees.
        double hw_wan =
            ops / hw_clock + wan.seconds(meas.wireBytes, 2.0);
        double hw_lan =
            ops / hw_clock + lan.seconds(meas.wireBytes, 2.0);

        std::printf("%-4u | %12.0f %8.2fx | %11.3f | %9.3f %9.3f | "
                    "%9.2f %9.2f\n",
                    m, ops, ops_m2 / ops, meas.wireBytes / 1e6, wan_s,
                    lan_s, hw_wan * 1e3, hw_lan * 1e3);
    }

    std::printf("\npaper: 4-ary reaches 2.99x op reduction over 2-ary "
                "(32-ary only 3.86x) while communication grows with m; "
                "m=4 selected.\n");
    std::printf("note: our per-level (m-1)-of-m OT ships both chosen-OT "
                "ciphertexts, so comm grows faster with m than the "
                "paper's (trend identical; see EXPERIMENTS.md).\n");
    return 0;
}
