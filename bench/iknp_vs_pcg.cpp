/**
 * @file
 * Extra experiment — IKNP vs PCG-style OTE (the Sec. 2.3 comparison
 * motivating the whole paper): IKNP moves 16 B per COT with cheap
 * computation; PCG-style Ferret moves sub-linear bytes at >4x the
 * compute. Under WAN bandwidth, PCG wins end-to-end; Ironman then
 * removes PCG's compute penalty in hardware.
 */

#include "bench_util.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "nmp/reference.h"
#include "ot/base_cot.h"
#include "ot/iknp.h"

using namespace ironman;
using namespace ironman::bench;

namespace {

struct IknpRun
{
    double seconds;
    uint64_t bytes;
    uint64_t cots;
};

IknpRun
runIknp(size_t n)
{
    Rng rng(3);
    ot::IknpSetup setup = ot::dealIknpSetup(rng);
    BitVec choices = rng.nextBits(n);

    // Workspace path: warm one session, measure the next, so the
    // comparison is protocol vs protocol rather than allocator noise.
    std::vector<Block> q(n), t_rows(n);
    auto run_once = [&](uint64_t session) {
        return net::runTwoParty(
            [&](net::Channel &ch) {
                static common::ThreadPool pool(1);
                static ot::IknpWorkspace ws;
                ot::iknpExtendSenderInto(ch, setup, n, session, pool,
                                         ws, q.data());
            },
            [&](net::Channel &ch) {
                static common::ThreadPool pool(1);
                static ot::IknpWorkspace ws;
                ot::iknpExtendReceiverInto(ch, setup, choices, session,
                                           pool, ws, t_rows.data());
            });
    };
    run_once(0); // warm-up
    Timer t;
    auto wire = run_once(1);
    return {t.seconds(), wire.totalBytes, n};
}

} // namespace

int
main()
{
    banner("Extra: IKNP vs PCG", "the linear-vs-sublinear trade "
                                 "(Sec. 2.3), both OTEs measured");

    const size_t n = size_t(1) << 20;
    IknpRun iknp = runIknp(n);
    auto ferret = nmp::measureCpuOte(ironmanParams(20), 8, 1);

    net::NetworkModel wan = net::wanNetwork();
    net::NetworkModel lan = net::lanNetwork();

    std::printf("%-10s | %10s %12s %12s | %10s %10s\n", "OTE", "MCOT/s",
                "bytes/COT", "compute s", "WAN e2e s", "LAN e2e s");

    double iknp_wan = iknp.seconds + wan.seconds(iknp.bytes, 2);
    double iknp_lan = iknp.seconds + lan.seconds(iknp.bytes, 2);
    std::printf("%-10s | %10.2f %12.2f %12.3f | %10.3f %10.3f\n",
                "IKNP", iknp.cots / iknp.seconds / 1e6,
                double(iknp.bytes) / iknp.cots, iknp.seconds, iknp_wan,
                iknp_lan);

    double fer_wan =
        ferret.secondsPerExec + wan.seconds(ferret.wireBytes, 4);
    double fer_lan =
        ferret.secondsPerExec + lan.seconds(ferret.wireBytes, 4);
    std::printf("%-10s | %10.2f %12.2f %12.3f | %10.3f %10.3f\n",
                "Ferret", ferret.otsPerSecond() / 1e6,
                double(ferret.wireBytes) / ferret.usableOts,
                ferret.secondsPerExec, fer_wan, fer_lan);

    std::printf("\ncommunication reduction PCG vs IKNP: %.0fx; "
                "compute ratio (per COT): %.1fx\n",
                (double(iknp.bytes) / iknp.cots) /
                    (double(ferret.wireBytes) / ferret.usableOts),
                (ferret.secondsPerExec / ferret.usableOts) /
                    (iknp.seconds / iknp.cots));
    std::printf("paper: PCG-style OTE trades sub-linear communication "
                "for >4.3x computation — the gap Ironman closes in "
                "hardware.\n");
    return 0;
}
