/**
 * @file
 * Figure 13 — SPCOT optimization ablation.
 *
 * (a) SPCOT latency of {2,4}-ary trees x {AES, ChaCha8} PRGs on the
 *     accelerator's pipeline (the 1.5x / 2x / 6x ladder of Sec. 6.2).
 * (b) SPCOT vs LPN latency across active-rank counts: only 4-ary
 *     ChaCha8 keeps SPCOT under the LPN curve everywhere.
 */

#include "bench_util.h"
#include "nmp/ironman_model.h"

using namespace ironman;
using namespace ironman::bench;

namespace {

nmp::IronmanConfig
config(unsigned dimms)
{
    nmp::IronmanConfig cfg;
    cfg.numDimms = dimms;
    cfg.cacheBytes = 256 * 1024;
    cfg.sampleRows = fastMode() ? 60000 : 150000;
    return cfg;
}

} // namespace

int
main()
{
    const int lg = 22;

    banner("Figure 13(a)", "SPCOT ablation: arity x PRG "
                           "(2^22 set, simulated pipeline)");
    std::printf("%-22s | %10s | %9s\n", "variant", "latency ms",
                "vs 2-ary AES");

    struct Variant
    {
        const char *name;
        unsigned arity;
        crypto::PrgKind prg;
    };
    const Variant variants[] = {
        {"2-ary tree, AES", 2, crypto::PrgKind::Aes},
        {"4-ary tree, AES", 4, crypto::PrgKind::Aes},
        {"2-ary tree, ChaCha8", 2, crypto::PrgKind::ChaCha8},
        {"4-ary tree, ChaCha8", 4, crypto::PrgKind::ChaCha8},
    };

    double base_ms = 0;
    for (const Variant &v : variants) {
        ot::FerretParams p = ironmanParams(lg);
        p.arity = v.arity;
        p.prg = v.prg;
        nmp::IronmanModel model(config(4), p);
        nmp::IronmanReport r = model.simulate();
        double ms = r.spcotSeconds * 1e3;
        if (base_ms == 0)
            base_ms = ms;
        std::printf("%-22s | %10.2f | %8.2fx\n", v.name, ms,
                    base_ms / ms);
    }
    std::printf("paper: 4-ary AES 1.5x, 2-ary ChaCha 2x, 4-ary ChaCha "
                "6x over the 2-ary AES baseline.\n\n");

    banner("Figure 13(b)", "SPCOT vs LPN latency across active ranks "
                           "(2^22 set)");
    std::printf("%-6s | %14s %14s %14s | %10s\n", "ranks",
                "spcot AES2 ms", "spcot CC4 ms", "lpn ms",
                "CC4 < LPN?");
    for (unsigned dimms : {1u, 2u, 4u, 8u}) {
        ot::FerretParams aes2 = ironmanParams(lg);
        aes2.arity = 2;
        aes2.prg = crypto::PrgKind::Aes;
        auto r_aes = nmp::IronmanModel(config(dimms), aes2).simulate();

        ot::FerretParams cc4 = ironmanParams(lg);
        auto r_cc = nmp::IronmanModel(config(dimms), cc4).simulate();

        std::printf("%-6u | %14.2f %14.2f %14.2f | %10s\n", dimms * 2,
                    r_aes.spcotSeconds * 1e3, r_cc.spcotSeconds * 1e3,
                    r_cc.lpnSeconds * 1e3,
                    r_cc.spcotSeconds < r_cc.lpnSeconds ? "yes" : "NO");
    }
    std::printf("paper: AES trees dominate total latency at every rank "
                "count; 4-ary ChaCha stays below LPN, so LPN's "
                "rank-scaling is fully realized.\n");
    return 0;
}
