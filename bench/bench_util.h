/**
 * @file
 * Shared plumbing for the reproduction benches: consistent headers,
 * paper-vs-measured annotation, fast-mode switch, and cached CPU /
 * Ironman engine acquisition.
 *
 * Every bench prints the rows/series of one table or figure of the
 * paper. Absolute values are this host's / this simulator's; the
 * paper's published values are printed alongside where available so
 * EXPERIMENTS.md can record both.
 */

#ifndef IRONMAN_BENCH_BENCH_UTIL_H
#define IRONMAN_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ot/ferret_params.h"

namespace ironman::bench {

/**
 * Minimal machine-readable results emitter: every bench that feeds the
 * perf trajectory writes a BENCH_<name>.json next to its stdout table,
 * so CI can archive numbers without scraping text. Usage:
 *
 *   JsonWriter j("BENCH_foo.json");
 *   j.kv("bench", "foo");
 *   j.key("series"); j.beginArray();
 *   for (...) { j.beginObject(); j.kv("n", n); j.endObject(); }
 *   j.endArray();           // close() / destructor finishes the file
 */
class JsonWriter
{
  public:
    explicit JsonWriter(const std::string &path)
        : f(std::fopen(path.c_str(), "w"))
    {
        if (f)
            std::fputc('{', f);
    }
    ~JsonWriter() { close(); }

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void
    close()
    {
        if (!f)
            return;
        std::fputs("}\n", f);
        std::fclose(f);
        f = nullptr;
    }

    void
    key(const char *name)
    {
        if (!f)
            return;
        sep();
        std::fprintf(f, "\"%s\":", name);
        comma = false;
    }

    void
    value(double v)
    {
        if (!f)
            return;
        sep();
        std::fprintf(f, "%.6g", v);
        comma = true;
    }

    void
    value(uint64_t v)
    {
        if (!f)
            return;
        sep();
        std::fprintf(f, "%llu", (unsigned long long)v);
        comma = true;
    }

    void
    value(const char *v)
    {
        if (!f)
            return;
        sep();
        std::fprintf(f, "\"%s\"", v);
        comma = true;
    }

    void kv(const char *name, double v) { key(name); value(v); }
    void kv(const char *name, uint64_t v) { key(name); value(v); }
    void kv(const char *name, const char *v) { key(name); value(v); }
    void
    kv(const char *name, const std::string &v)
    {
        key(name);
        value(v.c_str());
    }

    void
    beginObject()
    {
        if (!f)
            return;
        sep();
        std::fputc('{', f);
        comma = false;
    }

    void
    endObject()
    {
        if (!f)
            return;
        std::fputc('}', f);
        comma = true;
    }

    void
    beginArray()
    {
        if (!f)
            return;
        sep();
        std::fputc('[', f);
        comma = false;
    }

    void
    endArray()
    {
        if (!f)
            return;
        std::fputc(']', f);
        comma = true;
    }

  private:
    void
    sep()
    {
        if (comma)
            std::fputc(',', f);
    }

    std::FILE *f = nullptr;
    bool comma = false;
};

/** IRONMAN_BENCH_FAST=1 trims sweeps for smoke runs. */
inline bool
fastMode()
{
    const char *v = std::getenv("IRONMAN_BENCH_FAST");
    return v && v[0] == '1';
}

inline void
banner(const char *experiment, const char *what)
{
    std::printf("==============================================================================\n");
    std::printf("%s — %s\n", experiment, what);
    std::printf("==============================================================================\n");
}

inline void
note(const char *text)
{
    std::printf("note: %s\n", text);
}

/** The paper's CPU baseline algorithm: Ferret's 2-ary AES GGM trees. */
inline ot::FerretParams
cpuBaselineParams(int log_ots)
{
    ot::FerretParams p = ot::paperParamSet(log_ots);
    p.arity = 2;
    p.prg = crypto::PrgKind::Aes;
    return p;
}

/** Ironman's algorithm: 4-ary ChaCha8 trees (paperParamSet default). */
inline ot::FerretParams
ironmanParams(int log_ots)
{
    return ot::paperParamSet(log_ots);
}

} // namespace ironman::bench

#endif // IRONMAN_BENCH_BENCH_UTIL_H
