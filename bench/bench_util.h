/**
 * @file
 * Shared plumbing for the reproduction benches: consistent headers,
 * paper-vs-measured annotation, fast-mode switch, and cached CPU /
 * Ironman engine acquisition.
 *
 * Every bench prints the rows/series of one table or figure of the
 * paper. Absolute values are this host's / this simulator's; the
 * paper's published values are printed alongside where available so
 * EXPERIMENTS.md can record both.
 */

#ifndef IRONMAN_BENCH_BENCH_UTIL_H
#define IRONMAN_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "ot/ferret_params.h"

namespace ironman::bench {

/** IRONMAN_BENCH_FAST=1 trims sweeps for smoke runs. */
inline bool
fastMode()
{
    const char *v = std::getenv("IRONMAN_BENCH_FAST");
    return v && v[0] == '1';
}

inline void
banner(const char *experiment, const char *what)
{
    std::printf("==============================================================================\n");
    std::printf("%s — %s\n", experiment, what);
    std::printf("==============================================================================\n");
}

inline void
note(const char *text)
{
    std::printf("note: %s\n", text);
}

/** The paper's CPU baseline algorithm: Ferret's 2-ary AES GGM trees. */
inline ot::FerretParams
cpuBaselineParams(int log_ots)
{
    ot::FerretParams p = ot::paperParamSet(log_ots);
    p.arity = 2;
    p.prg = crypto::PrgKind::Aes;
    return p;
}

/** Ironman's algorithm: 4-ary ChaCha8 trees (paperParamSet default). */
inline ot::FerretParams
ironmanParams(int log_ots)
{
    return ot::paperParamSet(log_ots);
}

} // namespace ironman::bench

#endif // IRONMAN_BENCH_BENCH_UTIL_H
