/**
 * @file
 * Google-benchmark microbenchmarks of the OT-extension primitives:
 * AES / ChaCha throughput, GGM expansion, CRHF, LPN encode, chosen
 * OT, and one full Ferret extension. These are the per-kernel numbers
 * behind the Fig. 1(c) roofline and the CPU baseline of Fig. 12.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/aes.h"
#include "crypto/chacha.h"
#include "crypto/crhf.h"
#include "crypto/prg.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"
#include "ot/ggm_tree.h"
#include "ot/lpn.h"

using namespace ironman;

namespace {

void
BM_AesEncryptBatch(benchmark::State &state)
{
    crypto::Aes128 aes(Block::fromUint64(1));
    std::vector<Block> buf(size_t(state.range(0)));
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = Block::fromUint64(i);
    for (auto _ : state) {
        aes.encryptBatch(buf.data(), buf.data(), buf.size());
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(state.iterations() * buf.size());
    state.SetBytesProcessed(state.iterations() * buf.size() *
                            sizeof(Block));
}
BENCHMARK(BM_AesEncryptBatch)->Arg(8)->Arg(1024)->Arg(65536);

void
BM_ChaCha8Expand(benchmark::State &state)
{
    crypto::ChaCha chacha(8);
    std::array<Block, 4> out;
    Block seed = Block::fromUint64(2);
    for (auto _ : state) {
        chacha.expandSeed(seed, 0, out);
        benchmark::DoNotOptimize(out.data());
        seed = out[0];
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ChaCha8Expand);

void
BM_GgmExpand(benchmark::State &state)
{
    const unsigned arity = unsigned(state.range(0));
    const auto kind = state.range(1) == 0 ? crypto::PrgKind::Aes
                                          : crypto::PrgKind::ChaCha8;
    auto prg = crypto::makeTreeExpander(kind, arity);
    auto arities = ot::treeArities(4096, arity);
    ot::GgmSumLayout layout = ot::GgmSumLayout::of(arities);
    ot::GgmScratch scratch;
    std::vector<Block> leaves(layout.leaves);
    std::vector<Block> sums(layout.total);
    Block seed = Block::fromUint64(3);
    Block leaf_sum;
    for (auto _ : state) {
        ot::ggmExpandInto(*prg, seed, layout, scratch, leaves.data(),
                          sums.data(), &leaf_sum);
        benchmark::DoNotOptimize(leaves.data());
    }
    state.SetItemsProcessed(state.iterations() * 4096); // leaves
    state.SetLabel(crypto::prgKindName(kind) + "/m=" +
                   std::to_string(arity));
}
BENCHMARK(BM_GgmExpand)
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({2, 1})
    ->Args({4, 1});

void
BM_CrhfBatch(benchmark::State &state)
{
    crypto::Crhf crhf;
    Rng rng(4);
    std::vector<Block> in = rng.nextBlocks(4096);
    std::vector<Block> out(in.size());
    for (auto _ : state) {
        crhf.hashBatch(in.data(), out.data(), in.size(), 0);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_CrhfBatch);

void
BM_LpnEncode(benchmark::State &state)
{
    ot::LpnParams p;
    p.n = size_t(state.range(0));
    p.k = 65536;
    p.seed = 5;
    ot::LpnEncoder enc(p);
    Rng rng(6);
    std::vector<Block> in = rng.nextBlocks(p.k);
    std::vector<Block> out = rng.nextBlocks(p.n);
    ot::LpnEncodeScratch scratch;
    for (auto _ : state) {
        enc.encodeBlocks(in.data(), out.data(), 0, p.n, scratch);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * p.n);
    state.SetBytesProcessed(state.iterations() * p.n * 11 *
                            sizeof(Block));
}
BENCHMARK(BM_LpnEncode)->Arg(1 << 16)->Arg(1 << 20);

void
BM_LpnEncodeTape(benchmark::State &state)
{
    ot::LpnParams p;
    p.n = size_t(state.range(0));
    p.k = 65536;
    p.seed = 5;
    ot::LpnEncoder enc(p);
    Rng rng(6);
    std::vector<Block> in = rng.nextBlocks(p.k);
    std::vector<Block> out = rng.nextBlocks(p.n);
    common::ThreadPool pool(1);
    ot::LpnEncodeScratch scratch;
    ot::LpnIndexTape tape;
    enc.buildTape(tape, p.n, pool, &scratch);
    for (auto _ : state) {
        enc.encodeBlocksTape(in.data(), out.data(), 0, p.n, tape);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * p.n);
    state.SetBytesProcessed(state.iterations() * p.n * 11 *
                            sizeof(Block));
}
BENCHMARK(BM_LpnEncodeTape)->Arg(1 << 16)->Arg(1 << 20);

void
BM_FerretExtension(benchmark::State &state)
{
    ot::FerretParams params = ot::tinyTestParams();
    for (auto _ : state) {
        state.PauseTiming();
        Rng dealer(7);
        Block delta = dealer.nextBlock();
        auto [bs, br] =
            ot::dealBaseCots(dealer, delta, params.reservedCots());
        state.ResumeTiming();

        size_t produced = 0;
        net::runTwoParty(
            [&](net::Channel &ch) {
                ot::FerretCotSender sender(ch, params, delta,
                                           std::move(bs.q));
                Rng rng(8);
                std::vector<Block> out(params.usableOts());
                sender.extendInto(rng, out.data());
                produced = out.size();
            },
            [&](net::Channel &ch) {
                ot::FerretCotReceiver receiver(ch, params,
                                               std::move(br.choice),
                                               std::move(br.t));
                Rng rng(9);
                BitVec choice;
                std::vector<Block> t(params.usableOts());
                receiver.extendInto(rng, choice, t.data());
            });
        benchmark::DoNotOptimize(produced);
    }
    state.SetItemsProcessed(state.iterations() *
                            int64_t(params.usableOts()));
}
BENCHMARK(BM_FerretExtension)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
