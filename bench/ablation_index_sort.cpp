/**
 * @file
 * Extra experiment — ablation of the index-sorting pipeline called out
 * in DESIGN.md: none -> column swap -> + row look-ahead -> + zigzag,
 * measured as cache hit rate and resulting LPN latency on the NMP
 * model (the Sec. 5.3 "Column Swapping alone achieves a maximum cache
 * hit rate of only 20%" claim).
 */

#include "bench_util.h"
#include "nmp/ironman_model.h"

using namespace ironman;
using namespace ironman::bench;

int
main()
{
    banner("Extra: index-sorting ablation", "cache hit rate / LPN "
                                            "latency per sorting stage");

    struct Mode
    {
        const char *name;
        nmp::SortOptions opt;
    };
    Mode modes[4];
    modes[0] = {"unsorted", {}};
    modes[0].opt.columnSwap = false;
    modes[0].opt.rowLookahead = false;
    modes[1] = {"colswap", {}};
    modes[1].opt.columnSwap = true;
    modes[1].opt.rowLookahead = false;
    modes[2] = {"colswap+lookahead", {}};
    modes[2].opt.zigzag = false;
    modes[3] = {"full (zigzag)", {}};

    const int max_lg = fastMode() ? 21 : 23;
    for (uint64_t cache_kb : {256u, 1024u}) {
        std::printf("\n%lluKB memory-side cache:\n",
                    static_cast<unsigned long long>(cache_kb));
        std::printf("%-20s", "variant");
        for (int lg = 20; lg <= max_lg; ++lg)
            std::printf(" | 2^%d hit%% lpn_ms", lg);
        std::printf("\n");

        for (const Mode &m : modes) {
            std::printf("%-20s", m.name);
            for (int lg = 20; lg <= max_lg; ++lg) {
                nmp::IronmanConfig cfg;
                cfg.numDimms = 4;
                cfg.cacheBytes = cache_kb * 1024;
                cfg.sampleRows = fastMode() ? 50000 : 100000;
                nmp::IronmanModel model(cfg, ironmanParams(lg));
                auto r = model.simulateLpn(m.opt);
                std::printf(" | %7.1f%% %6.2f", r.cache.hitRate() * 100,
                            r.lpnSeconds * 1e3);
            }
            std::printf("\n");
        }
    }

    std::printf("\npaper anchor: column swapping alone peaks around a "
                "20%% hit rate at 1MB; the look-ahead stage is what "
                "unlocks the bandwidth (Sec. 5.3).\n");
    return 0;
}
