/**
 * @file
 * Figure 12 — headline result: OTE latency of CPU, GPU and Ironman
 * across memory configurations (2-16 active ranks), cache sizes
 * (256 KB, 1 MB) and the five Table 4 parameter sets.
 *
 * CPU: the real software protocol (Ferret, 2-ary AES-NI trees)
 *      measured on this host with all threads.
 * GPU: analytic A6000 model (5.88x CPU, per the paper — no GPU here).
 * Ironman: the cycle-level NMP simulation (4-ary ChaCha8 trees,
 *      memory-side cache + index sorting, rank-parallel LPN).
 */

#include <map>

#include "bench_util.h"
#include "nmp/ironman_model.h"
#include "nmp/reference.h"

using namespace ironman;
using namespace ironman::bench;

int
main()
{
    banner("Figure 12", "OTE latency per execution: CPU vs GPU vs "
                        "Ironman (measured + simulated)");

    const int max_lg = fastMode() ? 21 : 24;

    // --- CPU + GPU baselines -------------------------------------------
    std::printf("baselines (per execution):\n");
    std::printf("%-6s | %10s %12s | %10s\n", "#OTs", "CPU (s)",
                "CPU MCOT/s", "GPU (s, model)");
    std::map<int, double> cpu_seconds;
    for (int lg = 20; lg <= max_lg; ++lg) {
        auto m = nmp::measureCpuOte(cpuBaselineParams(lg), 24, 1);
        cpu_seconds[lg] = m.secondsPerExec;
        std::printf("2^%-4d | %10.3f %12.2f | %10.3f\n", lg,
                    m.secondsPerExec, m.otsPerSecond() / 1e6,
                    nmp::GpuReference::secondsPerExec(m.secondsPerExec));
    }

    // --- Ironman grid ---------------------------------------------------
    for (uint64_t cache_kb : {256u, 1024u}) {
        std::printf("\nIronman, %lluKB memory-side cache "
                    "(latency ms | speedup over CPU):\n",
                    static_cast<unsigned long long>(cache_kb));
        std::printf("%-6s |", "#OTs");
        for (unsigned ranks : {2u, 4u, 8u, 16u})
            std::printf(" %8u ranks      |", ranks);
        std::printf("\n");

        double best = 0, worst = 1e30;
        for (int lg = 20; lg <= max_lg; ++lg) {
            std::printf("2^%-4d |", lg);
            for (unsigned dimms : {1u, 2u, 4u, 8u}) {
                nmp::IronmanConfig cfg;
                cfg.numDimms = dimms;
                cfg.cacheBytes = cache_kb * 1024;
                cfg.sampleRows = fastMode() ? 60000 : 150000;
                nmp::IronmanModel model(cfg, ironmanParams(lg));
                auto r = model.simulate();
                double speedup = cpu_seconds[lg] / r.totalSeconds;
                std::printf(" %8.2f (%6.1fx) |", r.totalSeconds * 1e3,
                            speedup);
                best = std::max(best, speedup);
                worst = std::min(worst, speedup);
            }
            std::printf("\n");
        }
        std::printf("speedup range this run: %.1fx - %.1fx   "
                    "(paper, %lluKB: %s)\n",
                    worst, best,
                    static_cast<unsigned long long>(cache_kb),
                    cache_kb == 256 ? "3.66x - 39.26x across ranks"
                                    : "5.03x - 237.04x across ranks");
    }

    std::printf("\npaper trends to check: best speedup at 16 ranks; "
                "1MB cache dominates 256KB most at the 2^20 set "
                "(k fits); GPU ~5.9x CPU.\n");
    return 0;
}
