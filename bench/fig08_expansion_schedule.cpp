/**
 * @file
 * Figure 8 — GGM expansion schedules on the 8-stage ChaCha pipeline:
 * depth-first (bubbles on every descent, small buffer), breadth-first
 * (full pipe, O(l) buffer), and Ironman's hybrid (full pipe AND small
 * buffer via inter-tree parallelism).
 */

#include "bench_util.h"
#include "ot/ggm_tree.h"
#include "sim/pipeline.h"

using namespace ironman;
using namespace ironman::bench;

int
main()
{
    banner("Figure 8", "GGM expansion schedule comparison "
                       "(8-stage pipeline, 4-ary ChaCha trees)");

    struct Shape
    {
        size_t leaves;
        uint64_t trees;
    };
    const Shape shapes[] = {{4, 4}, {4096, 16}, {4096, 480},
                            {16384, 2100}};

    std::printf("%-14s %-6s | %12s %12s %9s %7s %12s\n", "workload",
                "sched", "ops", "cycles", "util%", "bubbles",
                "peak buffer");
    for (const Shape &s : shapes) {
        sim::ExpandWorkload wl;
        wl.arities = ot::treeArities(s.leaves, 4);
        wl.numTrees = s.trees;
        for (auto strat : {sim::ExpandStrategy::DepthFirst,
                           sim::ExpandStrategy::BreadthFirst,
                           sim::ExpandStrategy::Hybrid}) {
            auto sched = sim::scheduleExpansion(wl, strat, 8);
            std::printf("l=%-5zu t=%-4llu %-6.6s | %12llu %12llu "
                        "%8.1f%% %7llu %12llu\n",
                        s.leaves,
                        static_cast<unsigned long long>(s.trees),
                        sim::expandStrategyName(strat),
                        static_cast<unsigned long long>(sched.ops),
                        static_cast<unsigned long long>(sched.cycles),
                        sched.utilization() * 100,
                        static_cast<unsigned long long>(sched.bubbles),
                        static_cast<unsigned long long>(
                            sched.peakBuffer));
        }
        std::printf("\n");
    }

    std::printf("paper: depth-first stalls the pipe on every descent; "
                "hybrid reaches 100%% utilization with the depth-first "
                "buffer footprint.\n");
    return 0;
}
