/**
 * @file
 * Figure 16 — what the unified sender/receiver architecture buys:
 * OT-based MatMul communication and latency with and without role
 * switching, on the three Bert/LLaMA-derived shapes.
 */

#include "bench_util.h"
#include "nmp/unified_unit.h"
#include "ppml/matmul.h"

using namespace ironman;
using namespace ironman::bench;
using namespace ironman::ppml;

int
main()
{
    banner("Figure 16", "secure MatMul w/ and w/o the unified "
                        "architecture (8-bit operands)");

    const MatMulDims dims[] = {
        {64, 768, 768}, {64, 768, 64}, {64, 4096, 64}};
    const double iron_throughput = 450e6;
    net::NetworkModel wan = net::wanNetwork();

    std::printf("%-18s | %13s %13s %9s | %11s %11s %8s\n",
                "dims (M,K,N)", "comm w/o MB", "comm w/ MB", "norm %",
                "lat w/o s", "lat w/ s", "gain");
    for (const MatMulDims &d : dims) {
        auto base = secureMatMulCost(d, 8, false, iron_throughput);
        auto unified = secureMatMulCost(d, 8, true, iron_throughput);
        std::printf("(%3llu,%5llu,%4llu)  | %13.2f %13.2f %8.1f%% | "
                    "%11.3f %11.3f %7.2fx\n",
                    static_cast<unsigned long long>(d.m),
                    static_cast<unsigned long long>(d.k),
                    static_cast<unsigned long long>(d.n),
                    base.bytes / 1e6, unified.bytes / 1e6,
                    100.0 * unified.bytes / base.bytes,
                    base.latencySeconds(wan),
                    unified.latencySeconds(wan),
                    base.latencySeconds(wan) /
                        unified.latencySeconds(wan));
    }

    // The hardware that makes switching free: one XOR tree serving
    // both roles.
    nmp::UnifiedUnit unit(4);
    std::printf("\nunified unit (x=4 cores, %u-input XOR tree): "
                "key-gen %llu cycles/tree vs decode %llu cycles/tree "
                "(l=4096, m=4) — same silicon, both roles\n",
                unit.fanIn(),
                static_cast<unsigned long long>(unit.treeCycles(
                    4096, 4, nmp::UnitRole::KeyGenerator)),
                static_cast<unsigned long long>(unit.treeCycles(
                    4096, 4, nmp::UnitRole::MessageDecoder)));

    std::printf("\npaper: 2x communication reduction and ~1.4x latency "
                "reduction from role switching.\n");
    return 0;
}
