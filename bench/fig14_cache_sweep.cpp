/**
 * @file
 * Figure 14 — memory-side cache design sweep.
 *
 * (a) Per parameter set: normalized LPN latency and cache hit rate as
 *     the cache grows from 32 KB to 2 MB (with index sorting on).
 * (b) Average hit rate across sets and the SRAM area of each size —
 *     the sweet-spot argument for 256 KB (large sets) / 1 MB (small
 *     sets).
 */

#include <vector>

#include "bench_util.h"
#include "nmp/area_power.h"
#include "nmp/ironman_model.h"

using namespace ironman;
using namespace ironman::bench;

int
main()
{
    banner("Figure 14", "cache-capacity sweep: normalized LPN latency "
                        "and hit rate per parameter set");

    const std::vector<uint64_t> sizes_kb = {32, 64, 128, 256, 512,
                                            1024, 2048};
    const int max_lg = fastMode() ? 21 : 23;

    std::vector<double> avg_hit(sizes_kb.size(), 0.0);
    int sets = 0;

    for (int lg = 20; lg <= max_lg; ++lg, ++sets) {
        ot::FerretParams p = ironmanParams(lg);
        std::printf("\noutput size %s (k = %zu = %.1f MB vector):\n",
                    p.name.c_str(), p.k,
                    p.k * sizeof(Block) / 1048576.0);
        std::printf("%8s | %12s %9s %11s | %12s\n", "cache",
                    "lpn (norm)", "hit rate", "sw-tape hit", "sram mm^2");

        double base_ms = 0;
        for (size_t i = 0; i < sizes_kb.size(); ++i) {
            nmp::IronmanConfig cfg;
            cfg.numDimms = 4;
            cfg.cacheBytes = sizes_kb[i] * 1024;
            cfg.sampleRows = fastMode() ? 50000 : 120000;
            nmp::IronmanModel model(cfg, p);
            auto r = model.simulateLpn(cfg.sort);
            // The same cache fed the access order the SOFTWARE path
            // actually has (the SIMD kernels' lane-transposed tape
            // walk, no index sorting) — the locality gap the offline
            // sort buys.
            auto sw = model.simulateLpn(nmp::softwareTapeOrder());
            double ms = r.lpnSeconds * 1e3;
            if (i == 0)
                base_ms = ms;
            avg_hit[i] += r.cache.hitRate();
            std::printf("%6lluKB | %12.3f %8.1f%% %10.1f%% | %12.3f\n",
                        static_cast<unsigned long long>(sizes_kb[i]),
                        ms / base_ms, r.cache.hitRate() * 100,
                        sw.cache.hitRate() * 100,
                        nmp::sramAreaMm2(cfg.cacheBytes));
        }
    }

    std::printf("\naverage hit rate vs area (Fig. 14(b)):\n");
    std::printf("%8s | %9s | %10s\n", "cache", "avg hit%", "sram mm^2");
    for (size_t i = 0; i < sizes_kb.size(); ++i)
        std::printf("%6lluKB | %8.1f%% | %10.3f\n",
                    static_cast<unsigned long long>(sizes_kb[i]),
                    avg_hit[i] / sets * 100,
                    nmp::sramAreaMm2(sizes_kb[i] * 1024));

    std::printf("\npaper: hit rate jumps 1.47x from 128KB to 256KB at "
                "small area cost; 1MB->2MB buys little hit rate for "
                "2.21x the area, and deeper SRAM slows each access — "
                "hence 256KB (large sets) / 1MB (small sets).\n");
    return 0;
}
