/**
 * @file
 * Figure 1 — the motivation study.
 *
 * (a) Execution-time breakdown of private inference across frameworks
 *     and models: OT extension is the bottleneck on the CPU stack.
 * (b) Software OTE latency per execution vs output size, split into
 *     Init / SPCOT / LPN (measured by running the real protocol).
 * (c) Roofline: SPCOT is compute-bound, LPN is memory-bound
 *     (operation intensity in AES-equivalents per byte vs achieved
 *     primitive throughput, against the host's peak AES rate).
 */

#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "crypto/aes.h"
#include "nmp/reference.h"
#include "ppml/estimator.h"

using namespace ironman;
using namespace ironman::bench;

namespace {

double
measurePeakAesPerSec()
{
    crypto::Aes128 aes(Block::fromUint64(7));
    std::vector<Block> buf(4096);
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = Block::fromUint64(i);
    Timer t;
    uint64_t ops = 0;
    while (t.seconds() < 0.2) {
        aes.encryptBatch(buf.data(), buf.data(), buf.size());
        ops += buf.size();
    }
    return ops / t.seconds();
}

void
figure1a(double cpu_cots_per_sec)
{
    banner("Figure 1(a)", "execution-time breakdown per model/framework "
                          "(CPU OT stack)");
    std::printf("paper: OT extension accounts for 51%%-69%% of "
                "end-to-end time across all models/frameworks\n\n");
    std::printf("%-12s %-11s | %7s %7s %7s %7s | %6s\n", "model",
                "framework", "OTE", "HE", "comm", "other", "OTE%");

    ppml::OtEngine cpu = ppml::OtEngine::cpu(cpu_cots_per_sec);
    net::NetworkModel lan = net::lanNetwork();

    struct Row
    {
        ppml::ModelProfile model;
        ppml::FrameworkModel fw;
    };
    const Row rows[] = {
        {ppml::squeezeNet(), ppml::FrameworkModel::cheetah()},
        {ppml::resNet50(), ppml::FrameworkModel::cheetah()},
        {ppml::denseNet121(), ppml::FrameworkModel::cheetah()},
        {ppml::squeezeNet(), ppml::FrameworkModel::crypTFlow2()},
        {ppml::resNet50(), ppml::FrameworkModel::crypTFlow2()},
        {ppml::denseNet121(), ppml::FrameworkModel::crypTFlow2()},
        {ppml::bertBase(), ppml::FrameworkModel::bolt()},
        {ppml::bertLarge(), ppml::FrameworkModel::bolt()},
        {ppml::gpt2Large(), ppml::FrameworkModel::bolt()},
    };
    for (const Row &r : rows) {
        auto b = ppml::estimateInference(r.model, r.fw, lan, cpu);
        std::printf("%-12s %-11s | %6.1fs %6.1fs %6.1fs %6.1fs | %5.1f%%\n",
                    r.model.name.c_str(), r.fw.name().c_str(),
                    b.oteComputeSeconds, b.linearSeconds, b.commSeconds,
                    b.otherSeconds, b.oteFraction() * 100);
    }
    std::printf("\n");
}

double
figure1b()
{
    banner("Figure 1(b)", "software OTE latency per execution vs output "
                          "size (Init/SPCOT/LPN, measured)");
    std::printf("%-6s | %9s %9s %9s %9s | %9s\n", "#OTs", "init_s",
                "spcot_s", "lpn_s", "total_s", "MCOT/s");

    double full_thread_rate = 0;
    int max_lg = fastMode() ? 22 : 24;
    for (int lg = 20; lg <= max_lg; ++lg) {
        ot::FerretParams p = cpuBaselineParams(lg);
        auto m = nmp::measureCpuOte(p, 24, 1);
        std::printf("2^%-4d | %9.3f %9.3f %9.3f %9.3f | %9.2f\n", lg,
                    m.initSeconds, m.spcotSeconds, m.lpnSeconds,
                    m.secondsPerExec, m.otsPerSecond() / 1e6);
        if (lg == 22)
            full_thread_rate = m.otsPerSecond();
    }
    std::printf("paper (Fig. 1(b), their Xeon): 0.45s at 2^20 rising to "
                "~2.9s at 2^24 per execution\n\n");
    return full_thread_rate;
}

void
figure1c(double peak_aes)
{
    banner("Figure 1(c)", "roofline of SPCOT vs LPN (AES-equivalents)");

    // Measure the two kernels through the real protocol.
    ot::FerretParams p = cpuBaselineParams(20);
    auto m = nmp::measureCpuOte(p, 1, 1);

    // SPCOT: 2(l-1) AES per tree; bytes = leaves written once.
    double spcot_ops = 2.0 * (p.treeLeaves() - 1) * p.t;
    double spcot_bytes = double(p.treeLeaves()) * p.t * sizeof(Block);
    double spcot_perf = spcot_ops / m.spcotSeconds;

    // LPN: 3 AES of index generation per row; bytes = 10 gathered
    // blocks + 1 write per row.
    double lpn_ops = 3.0 * p.n;
    double lpn_bytes = double(p.n) * (10 + 1) * sizeof(Block);
    double lpn_perf = lpn_ops / m.lpnSeconds;

    std::printf("%-8s | %14s %16s | %10s\n", "kernel", "AES/byte",
                "achieved GAES/s", "bound");
    std::printf("%-8s | %14.4f %16.3f | %10s\n", "SPCOT",
                spcot_ops / spcot_bytes, spcot_perf / 1e9, "compute");
    std::printf("%-8s | %14.4f %16.3f | %10s\n", "LPN",
                lpn_ops / lpn_bytes, lpn_perf / 1e9, "memory");
    std::printf("%-8s | %14s %16.3f | %10s\n", "peak", "-",
                peak_aes / 1e9, "-");
    std::printf("paper: SPCOT sits at the compute roof, LPN an order "
                "of magnitude below it at low intensity\n\n");
}

} // namespace

int
main()
{
    double peak_aes = measurePeakAesPerSec();
    double cpu_rate = figure1b();
    if (cpu_rate <= 0)
        cpu_rate = 2.5e6;
    figure1a(cpu_rate);
    figure1c(peak_aes);
    return 0;
}
