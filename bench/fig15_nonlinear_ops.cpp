/**
 * @file
 * Figure 15 — nonlinear-operator benchmarks under EzPC-SiRNN and
 * Bolt: latency of LayerNorm / GELU / Softmax / ReLU batches with the
 * CPU OT stack vs with Ironman supplying the COTs.
 */

#include "bench_util.h"
#include "nmp/ironman_model.h"
#include "nmp/reference.h"
#include "ppml/estimator.h"

using namespace ironman;
using namespace ironman::bench;
using namespace ironman::ppml;

int
main()
{
    banner("Figure 15", "nonlinear ops w/ and w/o Ironman "
                        "(1M elements per op, LAN)");

    // Live engines: measured CPU rate, simulated Ironman rate.
    auto cpu_meas = nmp::measureCpuOte(cpuBaselineParams(20), 24, 1);
    OtEngine cpu = OtEngine::cpu(cpu_meas.otsPerSecond());

    nmp::IronmanConfig cfg;
    cfg.numDimms = 8;
    cfg.cacheBytes = 1024 * 1024;
    cfg.sampleRows = fastMode() ? 60000 : 150000;
    ot::FerretParams params = ironmanParams(22);
    auto rep = nmp::IronmanModel(cfg, params).simulate();
    OtEngine iron =
        OtEngine::ironman(rep.otThroughput(params.usableOts()));

    std::printf("engines: CPU %.2f MCOT/s (measured), Ironman %.0f "
                "MCOT/s (simulated)\n\n",
                cpu.cotsPerSecond / 1e6, iron.cotsPerSecond / 1e6);

    net::NetworkModel lan = net::lanNetwork();
    const uint64_t elems = 1 << 20;

    for (const auto &fw :
         {FrameworkModel::sirnn(), FrameworkModel::bolt()}) {
        std::printf("%s:\n", fw.name().c_str());
        std::printf("  %-10s | %11s %11s | %8s\n", "op", "CPU (s)",
                    "Ironman (s)", "speedup");
        for (NonlinearOp op : {NonlinearOp::LayerNorm, NonlinearOp::GELU,
                               NonlinearOp::Softmax, NonlinearOp::ReLU}) {
            auto base = estimateNonlinearOp(op, elems, fw, lan, cpu);
            auto ours = estimateNonlinearOp(op, elems, fw, lan, iron);
            std::printf("  %-10s | %11.2f %11.2f | %7.2fx\n",
                        nonlinearOpName(op), base.totalSeconds(),
                        ours.totalSeconds(),
                        base.totalSeconds() / ours.totalSeconds());
        }
        std::printf("\n");
    }

    std::printf("paper: 3.9x-4.4x latency reduction per op, roughly "
                "framework-agnostic (the residual is online "
                "communication).\n");
    return 0;
}
