/**
 * @file
 * End-to-end private-inference serving bench: images/s, COT/image,
 * online bytes/image and online rounds/image for the ways the
 * repository can run the same GMW MLP inference —
 *
 *   in-process   MemoryDuplex + per-party FerretCotEngine (the
 *                baseline examples/private_mlp runs),
 *   served+engine    loopback TCP, per-session dual-direction engine
 *                    on the inference channel (packed and unpacked
 *                    wire, the PR 6 A/B),
 *   served+reservoir loopback TCP, correlations from background
 *                    COT-service sessions (the paper architecture:
 *                    online phase overlaps with COT refill),
 *
 * plus two PR 6 sections: request-level pipelining (depth-8 batch-1
 * vs depth-1 batch-8 over the same images) and simulated-latency rows
 * (SocketChannel::setSimulatedDelay on the client end, LAN 0.15 ms
 * RTT always, WAN 20 ms RTT in full mode) where pipelining must show
 * its round-hiding.
 *
 * Sentinels (CI runs fast mode; any failure fails the bench):
 *   - every served output bit-identical to its local reference —
 *     sequential for depth-1 rows, grouped for pipelined rows (a
 *     depth-k batch-1 group shares and evaluates exactly like one
 *     batch-k request, so the same reference covers both),
 *   - packed/unpacked online-byte ratio >= 4x at width 32 and >= 6x
 *     at width 8, and the packed mlp-16x8x4@32 row under an absolute
 *     bytes/image ceiling,
 *   - depth-8 batch-1 >= 0.8x the depth-1 batch-8 throughput on
 *     loopback, and STRICTLY faster on every simulated-latency row.
 *
 * Single-core caveat (EXPERIMENTS.md): on a 1-core container the
 * reservoir's refill thread, the COT server's session threads and
 * the online phase all share one CPU, so the overlap the reservoir
 * buys shows up as latency hiding only on real cores.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "infer/infer_client.h"
#include "infer/infer_server.h"
#include "ppml/mlp_runner.h"
#include "ppml/model_zoo.h"
#include "svc/cot_server.h"
#include "svc/operator_stock.h"

using namespace ironman;

namespace {

constexpr uint64_t kShareSeed = 0xbe7c5;
constexpr uint64_t kSetupSeed = 424242;

/** Regression ceiling for the packed mlp-16x8x4@32 reservoir row
 *  (PR 5 shipped ~34 kB/img; the packed codec lands near 0.6 kB/img
 *  on the ripple, ~1.7 kB/img on the default Kogge-Stone ladder —
 *  the ladder burns ~4x the AND gates to cut the round chain ~4x,
 *  and every gate is online payload). The reservoir row is the
 *  honest online measurement: its COT preprocessing rides the
 *  separate COT-service channel, whereas the engine-supply row's
 *  mid-session extensions share the inference channel and pollute
 *  the delta once image counts grow. */
constexpr double kPackedByteCeiling = 2200.0;

struct Row
{
    std::string path;
    double seconds = 0;
    double imagesPerSec = 0;
    double cotsPerImage = 0;
    double onlineBytesPerImage = 0;
    double onlineRoundsPerImage = 0;
    double preprocBytesPerImage = 0;
    unsigned inflightDepth = 1;
    bool packed = true;
    bool ladder = true; ///< negotiated comparison circuit
    bool stream = false; ///< negotiated streaming commits
    double rttMs = 0;
    double bandwidthMbps = 0;
    bool bitIdentical = true;
};

struct ServedCfg
{
    std::string path;
    bool reservoir = false;
    bool packed = true;
    uint16_t depth = 1;
    uint64_t rttUs = 0; ///< client-side per-turnaround sleep
    uint64_t bandwidthBps = 0; ///< server-side link shaping (0 = off)
    bool ladder = true; ///< Kogge-Stone ladder (false = ripple A/B)
    bool stream = false; ///< counted streaming commits
};

void
emitRow(bench::JsonWriter &json, const std::string &model,
        size_t images, const Row &row)
{
    std::printf("%-24s | %9.1f | %8.0f | %11.0f | %8.1f | %s\n",
                row.path.c_str(), row.imagesPerSec, row.cotsPerImage,
                row.onlineBytesPerImage, row.onlineRoundsPerImage,
                row.bitIdentical ? "bit-identical" : "MISMATCH");
    json.beginObject();
    json.kv("model", model);
    json.kv("path", row.path);
    json.kv("images", uint64_t(images));
    json.kv("seconds", row.seconds);
    json.kv("images_per_s", row.imagesPerSec);
    json.kv("cots_per_image", row.cotsPerImage);
    json.kv("online_bytes_per_image", row.onlineBytesPerImage);
    json.kv("rounds_per_image", row.onlineRoundsPerImage);
    json.kv("preproc_bytes_per_image", row.preprocBytesPerImage);
    json.kv("inflight_depth", uint64_t(row.inflightDepth));
    json.kv("packed", uint64_t(row.packed ? 1 : 0));
    json.kv("cmp_mode", row.ladder ? "ladder" : "ripple");
    json.kv("stream", uint64_t(row.stream ? 1 : 0));
    json.kv("rtt_ms", row.rttMs);
    json.kv("bandwidth_mbps", row.bandwidthMbps);
    json.kv("bit_identical", uint64_t(row.bitIdentical ? 1 : 0));
    json.endObject();
}

void
printHeader()
{
    std::printf("%-24s | %9s | %8s | %11s | %8s | %s\n", "path",
                "images/s", "COT/img", "online B/img", "rnd/img",
                "outputs");
}

/**
 * One served run: a fresh server (+ COT service when reservoir), one
 * client session, @p reqs submitted through the negotiated window,
 * outputs compared against @p expected (one vector per request for
 * depth 1; for depth k, group g's concatenated outputs against
 * expected[g]). Timings/bytes/rounds are ONLINE deltas measured after
 * session bring-up so engine-supply preprocessing doesn't pollute the
 * wire numbers.
 */
Row
runServed(const ppml::MlpModelSpec &spec, unsigned width,
          uint32_t batch, const ot::FerretParams &params,
          const std::vector<std::vector<int64_t>> &reqs,
          const std::vector<std::vector<int64_t>> &expected,
          const ServedCfg &cfg)
{
    svc::OperatorStock stock;
    svc::CotServer cot;
    stock.attach(cot);
    const uint16_t cot_port = cot.listenTcp(0);
    infer::InferServer::Config srv_cfg;
    srv_cfg.simulatedBandwidthBps = cfg.bandwidthBps;
    infer::InferServer server(srv_cfg);
    server.attachOperatorStock(stock);
    const uint16_t port = server.listenTcp(0);

    infer::InferClient::Options opt;
    opt.modelId = spec.id;
    opt.width = width;
    opt.batch = batch;
    opt.setupSeed = kSetupSeed;
    opt.shareSeed = kShareSeed;
    opt.params = params;
    opt.depth = cfg.depth;
    opt.packedWire = cfg.packed;
    opt.ladderCmp = cfg.ladder;
    opt.streamCommit = cfg.stream;
    opt.simulatedDelayUs = cfg.rttUs;

    Row row;
    row.path = cfg.path;
    row.inflightDepth = cfg.depth;
    row.packed = cfg.packed;
    row.rttMs = double(cfg.rttUs) / 1000.0;
    row.bandwidthMbps = double(cfg.bandwidthBps) / 1e6;

    auto client =
        cfg.reservoir ? infer::InferClient::connectTcpReservoir(
                            "127.0.0.1", port, "127.0.0.1", cot_port,
                            opt)
                      : infer::InferClient::connectTcp("127.0.0.1",
                                                       port, opt);
    row.ladder = client->comparisonMode() == ppml::CmpMode::Ladder;
    row.stream = client->streaming();
    const uint64_t base_bytes =
        client->onlineBytesSent() + client->onlineBytesReceived();
    const uint64_t base_turns = client->onlineTurns();

    const size_t images = reqs.size() * batch;
    Timer timer;
    if (cfg.depth <= 1) {
        for (size_t r = 0; r < reqs.size(); ++r) {
            const std::vector<int64_t> out = client->infer(reqs[r]);
            row.bitIdentical &= out == expected[r];
        }
    } else {
        // Issue half: the client auto-commits every full window.
        for (const auto &r : reqs)
            client->submit(r);
        const auto results = client->drain();
        row.bitIdentical &= results.size() == reqs.size();
        // Drain half: group g's concatenated outputs must equal the
        // grouped reference request g.
        std::vector<int64_t> cat;
        for (size_t i = 0; i < results.size(); ++i) {
            cat.insert(cat.end(), results[i].outputs.begin(),
                       results[i].outputs.end());
            if ((i + 1) % cfg.depth == 0 || i + 1 == results.size()) {
                row.bitIdentical &= cat == expected[i / cfg.depth];
                cat.clear();
            }
        }
    }
    row.seconds = timer.seconds();
    row.imagesPerSec = double(images) / row.seconds;
    row.cotsPerImage = double(client->cotsConsumed()) / double(images);
    row.onlineBytesPerImage =
        double(client->onlineBytesSent() +
               client->onlineBytesReceived() - base_bytes) /
        double(images);
    row.onlineRoundsPerImage =
        double(client->onlineTurns() - base_turns) / 2.0 /
        double(images);
    row.preprocBytesPerImage =
        double(client->preprocBytesSent()) / double(images);
    client->close();
    server.stop();
    cot.stop();
    return row;
}

} // namespace

int
main()
{
    const bool fast = bench::fastMode();
    const size_t requests = fast ? 3 : 16;
    const uint32_t batch = fast ? 2 : 8;
    const ot::FerretParams params = ot::tinyTestParams();

    bench::banner("infer_e2e",
                  "served GMW MLP inference: packed wire, pipelining, "
                  "latency rows");
    bench::note("byte/round columns are online deltas measured after "
                "session bring-up; single-core caveat in "
                "EXPERIMENTS.md applies to the overlap paths");

    bench::JsonWriter json("BENCH_infer_e2e.json");
    json.kv("bench", "infer_e2e");
    json.kv("requests", uint64_t(requests));
    json.kv("batch", uint64_t(batch));
    json.key("series");
    json.beginArray();

    bool all_identical = true;
    bool sentinels_ok = true;

    // ------------------------------------------------------------------
    // Section A: wire packing A/B on the depth-1 protocol
    // ------------------------------------------------------------------
    struct PackPoint
    {
        const char *model;
        unsigned width;
        double minRatio; ///< unpacked/packed online-byte floor
    };
    std::vector<PackPoint> pack_grid = {{"mlp-16x8x4", 32, 4.0},
                                        {"mlp-4x3x2", 8, 6.0}};
    if (!fast)
        pack_grid.push_back({"mlp-32x16x10", 32, 4.0});

    for (const PackPoint &g : pack_grid) {
        const ppml::MlpModelSpec &spec = *ppml::findMlpModel(g.model);
        const size_t images = requests * batch;
        std::vector<std::vector<int64_t>> reqs;
        for (size_t r = 0; r < requests; ++r)
            reqs.push_back(ppml::sampleMlpInput(spec, 7000 + r, batch));

        std::printf("\n%s, width %u, %zu requests x %u images\n",
                    spec.name.c_str(), g.width, requests, batch);
        printHeader();

        Timer local_timer;
        const ppml::LocalMlpResult local = ppml::runLocalMlpInference(
            spec, g.width, reqs, kShareSeed, kSetupSeed, params);
        Row local_row;
        local_row.path = "in-process";
        local_row.seconds = local_timer.seconds();
        local_row.imagesPerSec = double(images) / local_row.seconds;
        local_row.cotsPerImage =
            double(local.cotsPerParty) / double(images);
        local_row.onlineBytesPerImage =
            double(local.onlineBytes) / double(images);
        emitRow(json, spec.name, images, local_row);

        const Row packed_row =
            runServed(spec, g.width, batch, params, reqs,
                      local.outputs,
                      {"served+engine packed", false, true, 1, 0});
        const Row unpacked_row =
            runServed(spec, g.width, batch, params, reqs,
                      local.outputs,
                      {"served+engine unpacked", false, false, 1, 0});
        const Row reservoir_row =
            runServed(spec, g.width, batch, params, reqs,
                      local.outputs,
                      {"served+reservoir packed", true, true, 1, 0});
        for (const Row *row :
             {&packed_row, &unpacked_row, &reservoir_row}) {
            emitRow(json, spec.name, images, *row);
            all_identical &= row->bitIdentical;
        }

        const double ratio = unpacked_row.onlineBytesPerImage /
                             packed_row.onlineBytesPerImage;
        std::printf("  packed saves %.1fx online bytes (floor %.0fx)\n",
                    ratio, g.minRatio);
        if (ratio < g.minRatio) {
            std::printf("BENCH-SMOKE: FAIL — %s w%u packing ratio "
                        "%.2f below %.0fx\n",
                        spec.name.c_str(), g.width, ratio, g.minRatio);
            sentinels_ok = false;
        }
        if (g.width == 32 && spec.name == "mlp-16x8x4" &&
            reservoir_row.onlineBytesPerImage > kPackedByteCeiling) {
            std::printf("BENCH-SMOKE: FAIL — packed %s@32 "
                        "%.0f B/img above the %.0f ceiling\n",
                        spec.name.c_str(),
                        reservoir_row.onlineBytesPerImage,
                        kPackedByteCeiling);
            sentinels_ok = false;
        }
    }

    // ------------------------------------------------------------------
    // Section B: request-level pipelining, loopback
    // ------------------------------------------------------------------
    {
        const ppml::MlpModelSpec &spec =
            *ppml::findMlpModel("mlp-16x8x4");
        constexpr unsigned width = 32;
        constexpr uint16_t depth = 8;
        const size_t groups = fast ? 4 : 8;
        const size_t images = groups * depth;

        // The same images once as batch-8 requests, once as batch-1:
        // identical share stream, so one grouped reference covers both.
        std::vector<std::vector<int64_t>> reqs8, reqs1;
        for (size_t g = 0; g < groups; ++g) {
            reqs8.push_back(
                ppml::sampleMlpInput(spec, 7800 + g, depth));
            for (size_t i = 0; i < depth; ++i)
                reqs1.emplace_back(
                    reqs8.back().begin() + i * spec.inputDim(),
                    reqs8.back().begin() + (i + 1) * spec.inputDim());
        }
        const ppml::LocalMlpResult grouped =
            ppml::runLocalMlpInference(spec, width, reqs8, kShareSeed,
                                       kSetupSeed, params);
        // A depth-1 batch-1 session evaluates per request, which is a
        // different tweak stream than the grouped runs: it gets its
        // own sequential reference.
        const ppml::LocalMlpResult seq1 =
            ppml::runLocalMlpInference(spec, width, reqs1, kShareSeed,
                                       kSetupSeed, params);

        std::printf("\n%s w%u pipelining, %zu images, loopback\n",
                    spec.name.c_str(), width, images);
        printHeader();
        // Best of two runs per row: single-core loopback throughput
        // at this scale is noisy (refill threads share the CPU) and
        // the sentinel compares the two rows against each other.
        auto best = [&](const std::vector<std::vector<int64_t>> &rq,
                        uint32_t b, uint16_t d, const char *path) {
            Row r1 = runServed(spec, width, b, params, rq,
                               grouped.outputs,
                               {path, true, true, d, 0});
            const Row r2 = runServed(spec, width, b, params, rq,
                                     grouped.outputs,
                                     {path, true, true, d, 0});
            r1.bitIdentical &= r2.bitIdentical;
            if (r2.imagesPerSec > r1.imagesPerSec) {
                const bool id = r1.bitIdentical;
                r1 = r2;
                r1.bitIdentical = id;
            }
            return r1;
        };
        const Row wide = best(reqs8, depth, 1, "depth-1 batch-8");
        const Row deep = best(reqs1, 1, depth, "depth-8 batch-1");
        for (const Row *row : {&wide, &deep}) {
            emitRow(json, spec.name, images, *row);
            all_identical &= row->bitIdentical;
        }
        if (deep.imagesPerSec < 0.8 * wide.imagesPerSec) {
            std::printf("BENCH-SMOKE: FAIL — depth-8 batch-1 "
                        "%.1f img/s under 0.8x of batch-8 %.1f\n",
                        deep.imagesPerSec, wide.imagesPerSec);
            sentinels_ok = false;
        }

        // --------------------------------------------------------------
        // Section C: the same A/B under simulated link latency, where
        // hiding rounds is the whole game.
        // --------------------------------------------------------------
        std::vector<std::pair<const char *, uint64_t>> links = {
            {"LAN", 150}};
        if (!fast)
            links.push_back({"WAN", 20000});
        for (const auto &[link, rtt_us] : links) {
            std::printf("\n%s w%u pipelining, %zu images, %s "
                        "(%.2f ms RTT)\n",
                        spec.name.c_str(), width, images, link,
                        double(rtt_us) / 1000.0);
            printHeader();
            const Row lwide = runServed(
                spec, width, depth, params, reqs8, grouped.outputs,
                {std::string("depth-1 batch-8 ") + link, true, true, 1,
                 rtt_us});
            const Row ldeep = runServed(
                spec, width, 1, params, reqs1, grouped.outputs,
                {std::string("depth-8 batch-1 ") + link, true, true,
                 depth, rtt_us});
            for (const Row *row : {&lwide, &ldeep}) {
                emitRow(json, spec.name, images, *row);
                all_identical &= row->bitIdentical;
            }
            // Same rounds per image here (one commit either way);
            // the depth-8 path must not be slower, and depth-1
            // batch-1 vs depth-8 batch-1 is the dramatic gap — show
            // it on the LAN row.
            if (ldeep.imagesPerSec < lwide.imagesPerSec * 0.8) {
                std::printf("BENCH-SMOKE: FAIL — %s depth-8 %.1f "
                            "img/s under depth-1 batch-8 %.1f\n",
                            link, ldeep.imagesPerSec,
                            lwide.imagesPerSec);
                sentinels_ok = false;
            }
            const Row lone = runServed(
                spec, width, 1, params, reqs1, seq1.outputs,
                {std::string("depth-1 batch-1 ") + link, true, true, 1,
                 rtt_us});
            emitRow(json, spec.name, images, lone);
            all_identical &= lone.bitIdentical;
            if (ldeep.imagesPerSec <= lone.imagesPerSec) {
                std::printf("BENCH-SMOKE: FAIL — %s pipelining not "
                            "strictly faster: depth-8 %.1f img/s vs "
                            "depth-1 batch-1 %.1f\n",
                            link, ldeep.imagesPerSec,
                            lone.imagesPerSec);
                sentinels_ok = false;
            }

            // PR 8 A/B on the LAN link: the ripple baseline and the
            // streaming ladder through the same depth-8 window. The
            // outputs are mode- and schedule-independent (invariant
            // 16), so the grouped reference covers all three.
            if (std::string(link) == "LAN") {
                const Row rdeep = runServed(
                    spec, width, 1, params, reqs1, grouped.outputs,
                    {std::string("depth-8 ripple ") + link, true, true,
                     depth, rtt_us, 0, /*ladder=*/false});
                const Row sdeep = runServed(
                    spec, width, 1, params, reqs1, grouped.outputs,
                    {std::string("depth-8 streaming ") + link, true,
                     true, depth, rtt_us, 0, /*ladder=*/true,
                     /*stream=*/true});
                for (const Row *row : {&rdeep, &sdeep}) {
                    emitRow(json, spec.name, images, *row);
                    all_identical &= row->bitIdentical;
                }
                // The tentpole sentinel: the Kogge-Stone ladder cuts
                // the measured width-32 round chain to a quarter of
                // the ripple's, per image, on the same window.
                if (ldeep.onlineRoundsPerImage >
                    rdeep.onlineRoundsPerImage / 4.0) {
                    std::printf(
                        "BENCH-SMOKE: FAIL — ladder %.2f rounds/img "
                        "above ripple %.2f / 4 at w32\n",
                        ldeep.onlineRoundsPerImage,
                        rdeep.onlineRoundsPerImage);
                    sentinels_ok = false;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Section D: bandwidth-shaped WAN — RTT plus a finite link, the
    // complete PR 6/7 WAN model. Shaping is server-side
    // (Config::simulatedBandwidthBps), the RTT client-side, so both
    // knobs cross the config surface they'd use in a real deployment.
    // ------------------------------------------------------------------
    {
        const ppml::MlpModelSpec &spec =
            *ppml::findMlpModel("mlp-16x8x4");
        constexpr unsigned width = 32;
        const size_t wan_requests = fast ? 2 : 8;
        const uint32_t wan_batch = fast ? 2 : 8;
        // Fast mode keeps CI quick on a thin pipe; full mode is the
        // honest 20 ms / 100 Mbps WAN row for EXPERIMENTS.md.
        const uint64_t rtt_us = fast ? 1000 : 20000;
        const uint64_t bps = fast ? 200'000'000 : 100'000'000;

        std::vector<std::vector<int64_t>> reqs;
        for (size_t r = 0; r < wan_requests; ++r)
            reqs.push_back(
                ppml::sampleMlpInput(spec, 7900 + r, wan_batch));
        const ppml::LocalMlpResult local = ppml::runLocalMlpInference(
            spec, width, reqs, kShareSeed, kSetupSeed, params);

        std::printf("\n%s w%u bandwidth-shaped WAN (%.1f ms RTT, "
                    "%.0f Mbps), %zu images\n",
                    spec.name.c_str(), width, double(rtt_us) / 1000.0,
                    double(bps) / 1e6, wan_requests * size_t(wan_batch));
        printHeader();
        const Row shaped = runServed(
            spec, width, wan_batch, params, reqs, local.outputs,
            {"served+reservoir shaped", true, true, 1, rtt_us, bps});
        emitRow(json, spec.name, wan_requests * size_t(wan_batch),
                shaped);
        all_identical &= shaped.bitIdentical;

        // PR 8: the same images again through a full-depth streaming
        // ladder window — every round-chain trick at once on the
        // shaped link. One group of wan_requests, so the grouped
        // reference is the one concatenated request.
        const uint16_t wdepth = uint16_t(wan_requests);
        std::vector<int64_t> cat;
        for (const auto &r : reqs)
            cat.insert(cat.end(), r.begin(), r.end());
        const ppml::LocalMlpResult glocal = ppml::runLocalMlpInference(
            spec, width, {cat}, kShareSeed, kSetupSeed, params);
        const Row deep = runServed(
            spec, width, wan_batch, params, reqs, glocal.outputs,
            {"served+reservoir shaped deep+stream", true, true, wdepth,
             rtt_us, bps, /*ladder=*/true, /*stream=*/true});
        emitRow(json, spec.name, wan_requests * size_t(wan_batch),
                deep);
        all_identical &= deep.bitIdentical;
        // Full mode is the honest WAN row EXPERIMENTS.md quotes: the
        // PR 7 protocol served 6.2 img/s here; ladder + pipelining +
        // streaming must clear 3x that.
        if (!fast && deep.imagesPerSec < 3.0 * 6.2) {
            std::printf("BENCH-SMOKE: FAIL — WAN deep+stream %.1f "
                        "img/s under the 18.6 floor (3x the PR 7 "
                        "row)\n",
                        deep.imagesPerSec);
            sentinels_ok = false;
        }
    }

    // ------------------------------------------------------------------
    // Section E: recovery latency — kill the daemon under an
    // autoReconnect client and time the redial + re-handshake +
    // replay until the next bit-identical answer lands.
    // ------------------------------------------------------------------
    {
        const ppml::MlpModelSpec &spec = *ppml::findMlpModel("mlp-4x3x2");
        constexpr unsigned width = 16;
        std::vector<std::vector<int64_t>> reqs;
        for (size_t r = 0; r < 4; ++r)
            reqs.push_back(ppml::sampleMlpInput(spec, 8100 + r, 1));

        auto server = std::make_unique<infer::InferServer>();
        const uint16_t port = server->listenTcp(0);

        infer::InferClient::Options opt;
        opt.modelId = spec.id;
        opt.width = width;
        opt.setupSeed = kSetupSeed;
        opt.shareSeed = kShareSeed;
        opt.params = params;
        opt.autoReconnect = true;
        opt.retry.baseBackoffMs = 5; // the daemon restarts instantly
        auto client =
            infer::InferClient::connectTcp("127.0.0.1", port, opt);
        client->infer(reqs[0]);
        client->infer(reqs[1]);

        server->stop();
        server = std::make_unique<infer::InferServer>();
        server->listenTcp(port);

        // The next request detects the dead session and reconnects.
        // Its Commit raced the kill, so the library reports it failed
        // (maybe-answered) rather than replaying; the app-level retry
        // on the recovered session is the measured tail. The exact
        // model keeps the answer bit-identical (invariant 15).
        Timer recover;
        client->submit(reqs[2]);
        infer::InferClient::Result r2 = client->collect();
        if (!r2.ok) {
            client->submit(reqs[2]);
            r2 = client->collect();
        }
        const double recovery_ms = recover.seconds() * 1000.0;
        const bool recovered_identical =
            r2.ok && r2.outputs == ppml::mlpPlainForward(spec, reqs[2]) &&
            client->reconnects() == 1;
        client->infer(reqs[3]);
        client->close();
        server->stop();

        std::printf("\nrecovery: daemon killed+restarted under an "
                    "autoReconnect client -> next answer in %.1f ms "
                    "(%s)\n",
                    recovery_ms,
                    recovered_identical ? "bit-identical"
                                        : "MISMATCH");
        json.beginObject();
        json.kv("model", spec.name);
        json.kv("path", "recovery");
        json.kv("recovery_ms", recovery_ms);
        json.kv("bit_identical",
                uint64_t(recovered_identical ? 1 : 0));
        json.endObject();
        if (!recovered_identical) {
            std::printf("BENCH-SMOKE: FAIL — recovered request not "
                        "bit-identical after reconnect\n");
            sentinels_ok = false;
        }
    }

    json.endArray();
    json.close();

    if (!all_identical) {
        std::printf("\nBENCH-SMOKE: FAIL — served outputs diverged "
                    "from the local reference\n");
        return 1;
    }
    if (!sentinels_ok) {
        std::printf("\nBENCH-SMOKE: FAIL — sentinel thresholds "
                    "violated (see above)\n");
        return 1;
    }
    std::printf("\nBENCH-SMOKE: OK — bit-identity, packing ratios, "
                "byte ceiling and pipelining sentinels all hold "
                "(BENCH_infer_e2e.json written)\n");
    return 0;
}
