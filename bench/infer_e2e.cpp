/**
 * @file
 * End-to-end private-inference serving bench: images/s, COT/image and
 * online bytes/image for the three ways the repository can run the
 * same GMW MLP inference —
 *
 *   in-process   MemoryDuplex + per-party FerretCotEngine (the
 *                baseline examples/private_mlp runs),
 *   served+engine    loopback TCP, per-session dual-direction engine
 *                    on the inference channel,
 *   served+reservoir loopback TCP, correlations from background
 *                    COT-service sessions (the paper architecture:
 *                    online phase overlaps with COT refill).
 *
 * Every served output is compared bit-for-bit against the in-process
 * run (the BENCH-SMOKE sentinel — a broken supply or transport fails
 * the bench, CI runs it in fast mode), and the rows land in
 * BENCH_infer_e2e.json for the artifact trail.
 *
 * Single-core caveat (EXPERIMENTS.md): on a 1-core container the
 * reservoir's refill thread, the COT server's session threads and
 * the online phase all share one CPU, so the overlap the reservoir
 * buys shows up as latency hiding only on real cores.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "infer/infer_client.h"
#include "infer/infer_server.h"
#include "ppml/mlp_runner.h"
#include "ppml/model_zoo.h"
#include "svc/cot_server.h"
#include "svc/operator_stock.h"

using namespace ironman;

namespace {

constexpr uint64_t kShareSeed = 0xbe7c5;
constexpr uint64_t kSetupSeed = 424242;

struct Row
{
    const char *path;
    double seconds = 0;
    double imagesPerSec = 0;
    double cotsPerImage = 0;
    double onlineBytesPerImage = 0;
    double preprocBytesPerImage = 0;
    bool bitIdentical = true;
};

} // namespace

int
main()
{
    const bool fast = bench::fastMode();
    const size_t requests = fast ? 3 : 16;
    const uint32_t batch = fast ? 2 : 8;
    const unsigned width = 32;
    const ot::FerretParams params = ot::tinyTestParams();

    bench::banner("infer_e2e",
                  "served GMW MLP inference vs the in-process path");
    bench::note("images/s includes session setup (connect, handshake, "
                "engine/reservoir bring-up); single-core caveat in "
                "EXPERIMENTS.md applies to the overlap paths");

    bench::JsonWriter json("BENCH_infer_e2e.json");
    json.kv("bench", "infer_e2e");
    json.kv("requests", uint64_t(requests));
    json.kv("batch", uint64_t(batch));
    json.kv("width", uint64_t(width));
    json.key("series");
    json.beginArray();

    bool all_identical = true;
    for (const char *model_name : {"mlp-16x8x4", "mlp-32x16x10"}) {
        const ppml::MlpModelSpec &spec =
            *ppml::findMlpModel(model_name);
        const size_t images = requests * batch;

        std::vector<std::vector<int64_t>> reqs;
        for (size_t r = 0; r < requests; ++r)
            reqs.push_back(
                ppml::sampleMlpInput(spec, 7000 + r, batch));

        std::printf("\n%s, width %u, %zu requests x %u images\n",
                    spec.name.c_str(), width, requests, batch);
        std::printf("%-18s | %9s | %9s | %11s | %12s | %s\n", "path",
                    "images/s", "COT/img", "online B/img",
                    "preproc B/img", "outputs");

        // -- in-process baseline (also the bit-identity reference) ----
        Timer local_timer;
        const ppml::LocalMlpResult local = ppml::runLocalMlpInference(
            spec, width, reqs, kShareSeed, kSetupSeed, params);
        Row local_row{"in-process"};
        local_row.seconds = local_timer.seconds();
        local_row.imagesPerSec = double(images) / local_row.seconds;
        local_row.cotsPerImage =
            double(local.cotsPerParty) / double(images);
        local_row.onlineBytesPerImage =
            double(local.onlineBytes) / double(images);

        auto run_served = [&](const char *path, bool reservoir) {
            svc::OperatorStock stock;
            svc::CotServer cot;
            stock.attach(cot);
            const uint16_t cot_port = cot.listenTcp(0);
            infer::InferServer server;
            server.attachOperatorStock(stock);
            const uint16_t port = server.listenTcp(0);

            infer::InferClient::Options opt;
            opt.modelId = spec.id;
            opt.width = width;
            opt.batch = batch;
            opt.setupSeed = kSetupSeed;
            opt.shareSeed = kShareSeed;
            opt.params = params;

            Row row{path};
            Timer timer;
            auto client =
                reservoir ? infer::InferClient::connectTcpReservoir(
                                "127.0.0.1", port, "127.0.0.1",
                                cot_port, opt)
                          : infer::InferClient::connectTcp(
                                "127.0.0.1", port, opt);
            for (size_t r = 0; r < requests; ++r) {
                const std::vector<int64_t> out =
                    client->infer(reqs[r]);
                row.bitIdentical &= out == local.outputs[r];
            }
            client->close();
            row.seconds = timer.seconds();
            row.imagesPerSec = double(images) / row.seconds;
            row.cotsPerImage =
                double(client->cotsConsumed()) / double(images);
            row.onlineBytesPerImage =
                double(client->onlineBytesSent() +
                       client->onlineBytesReceived()) /
                double(images);
            row.preprocBytesPerImage =
                double(client->preprocBytesSent()) / double(images);
            server.stop();
            cot.stop();
            return row;
        };

        Row rows[3];
        rows[0] = local_row;
        rows[1] = run_served("served+engine", false);
        rows[2] = run_served("served+reservoir", true);

        for (const Row &row : rows) {
            std::printf("%-18s | %9.1f | %9.0f | %11.0f | %12.0f | %s\n",
                        row.path, row.imagesPerSec, row.cotsPerImage,
                        row.onlineBytesPerImage,
                        row.preprocBytesPerImage,
                        row.bitIdentical ? "bit-identical"
                                         : "MISMATCH");
            all_identical &= row.bitIdentical;

            json.beginObject();
            json.kv("model", spec.name);
            json.kv("path", row.path);
            json.kv("images", uint64_t(images));
            json.kv("seconds", row.seconds);
            json.kv("images_per_s", row.imagesPerSec);
            json.kv("cots_per_image", row.cotsPerImage);
            json.kv("online_bytes_per_image", row.onlineBytesPerImage);
            json.kv("preproc_bytes_per_image",
                    row.preprocBytesPerImage);
            json.kv("bit_identical",
                    uint64_t(row.bitIdentical ? 1 : 0));
            json.endObject();
        }
    }
    json.endArray();
    json.close();

    if (!all_identical) {
        std::printf("\nBENCH-SMOKE: FAIL — served outputs diverged "
                    "from the in-process reference\n");
        return 1;
    }
    std::printf("\nBENCH-SMOKE: OK — every served output bit-identical "
                "to the in-process path (BENCH_infer_e2e.json "
                "written)\n");
    return 0;
}
