/**
 * @file
 * Per-stage breakdown of the FERRET steady-state hot path:
 *
 *   SPCOT expand — t GGM tree expansions (PRG-bound),
 *   CRHF         — every MMO hash of one extension (chosen-OT pads,
 *                  unmask pads, mini-leaf pads), batched vs scalar,
 *   LPN          — the n-row gather-XOR, streaming (per-extension AES
 *                  index generation) vs precomputed tape + SIMD,
 *   wire         — measured transcript bytes, converted to LAN/WAN
 *                  seconds with the analytic NetworkModel.
 *
 * plus the end-to-end OT/s of the unpipelined and pipelined engines.
 * Cycles are TSC ticks on x86 (calibrated against the wall clock so
 * the printed cycles/unit are meaningful on this host); elsewhere the
 * cycle columns fall back to nanoseconds.
 *
 * Record the numbers in EXPERIMENTS.md. Caveat (ROADMAP.md): this dev
 * container is single-core, so the iteration pipeline cannot overlap
 * stages here — its LPN tail runs inline — and the measured gains come
 * from batched CRHF + the index tape. Re-measure on multicore.
 *
 * Run: ./bench_micro_hotpath_stages   (IRONMAN_BENCH_FAST=1 trims)
 */

#include <cstdio>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define IRONMAN_HAVE_TSC 1
#endif

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "crypto/crhf.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"
#include "ot/ggm_tree.h"
#include "ot/lpn.h"
#include "ot/spcot.h"

using namespace ironman;
using namespace ironman::ot;

namespace {

uint64_t
ticks()
{
#ifdef IRONMAN_HAVE_TSC
    return __rdtsc();
#else
    return uint64_t(Timer().seconds()); // unused fallback path
#endif
}

/** TSC ticks per second (calibrated once). */
double
ticksPerSecond()
{
    static const double tps = [] {
#ifdef IRONMAN_HAVE_TSC
        Timer t;
        uint64_t c0 = ticks();
        while (t.seconds() < 0.05) {
        }
        return double(ticks() - c0) / t.seconds();
#else
        return 1e9; // report nanoseconds
#endif
    }();
    return tps;
}

struct StageRow
{
    const char *name;
    double cycles;       ///< per extension
    double per_unit;     ///< cycles per item
    const char *unit;
};

void
printRow(const StageRow &r)
{
    std::printf("  %-26s %14.0f cyc/ext   %8.2f cyc/%s\n", r.name,
                r.cycles, r.per_unit, r.unit);
}

/** Cycles for fn(), median-free quick repeat (min of reps). */
template <typename F>
double
measureCycles(int reps, F &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        uint64_t c0 = ticks();
        fn();
        double c = double(ticks() - c0);
        if (c < best)
            best = c;
    }
    return best;
}

struct E2e
{
    double otsPerSec = 0;
    uint64_t wireBytes = 0;
};

E2e
endToEnd(const FerretParams &p, bool pipelined, int iters)
{
    Rng dealer(1234);
    Block delta = dealer.nextBlock();
    auto [bs, br] = dealBaseCots(dealer, delta, p.reservedCots());

    double seconds = 0;
    net::MemoryDuplex duplex;
    std::thread sender_thread([&] {
        FerretCotSender sender(duplex.a(), p, delta, std::move(bs.q));
        sender.setPipelined(pipelined);
        Rng rng(1);
        std::vector<Block> out(p.usableOts());
        sender.extendInto(rng, out.data()); // warm-up
        Timer timer;
        for (int it = 0; it < iters; ++it)
            sender.extendInto(rng, out.data());
        seconds = timer.seconds();
    });
    FerretCotReceiver receiver(duplex.b(), p, std::move(br.choice),
                               std::move(br.t));
    receiver.setPipelined(pipelined);
    Rng rng(2);
    BitVec choice;
    std::vector<Block> t(p.usableOts());
    for (int it = 0; it <= iters; ++it)
        receiver.extendInto(rng, choice, t.data());
    sender_thread.join();

    E2e e;
    e.otsPerSec = double(p.usableOts()) * iters / seconds;
    e.wireBytes = duplex.totalBytes() / uint64_t(iters + 1);
    return e;
}

} // namespace

int
main()
{
    bench::banner("micro_hotpath_stages",
                  "per-stage cycles of one FERRET extension "
                  "(SPCOT expand / CRHF / LPN / wire)");

    const bool fast = bench::fastMode();
    const FerretParams p =
        fast ? tinyTestParams() : bench::ironmanParams(20);
    const SpcotConfig cfg{p.treeLeaves(), p.arity, p.prg};
    const double tps = ticksPerSecond();
    std::printf("param set %s: n=%zu k=%zu t=%zu l=%zu (%.2f GHz "
                "TSC)\n\n",
                p.name.c_str(), p.n, p.k, p.t, p.treeLeaves(),
                tps / 1e9);

    // -- stage 1: SPCOT expansion (t GGM trees) ------------------------
    {
        auto prg = crypto::makeTreeExpander(p.prg, p.arity);
        GgmSumLayout layout =
            GgmSumLayout::of(treeArities(p.treeLeaves(), p.arity));
        GgmScratch scratch;
        std::vector<Block> leaves(layout.leaves);
        std::vector<Block> sums(layout.total);
        Block leaf_sum;
        double cyc = measureCycles(3, [&] {
            for (size_t tr = 0; tr < p.t; ++tr)
                ggmExpandInto(*prg, Block::fromUint64(tr), layout,
                              scratch, leaves.data(), sums.data(),
                              &leaf_sum);
        });
        printRow({"SPCOT expand (t trees)", cyc,
                  cyc / double(p.t * p.treeLeaves()), "leaf"});
    }

    // -- stage 2: CRHF (all hashes of one extension) -------------------
    {
        SpcotShape shape;
        shape.prepare(cfg);
        // Sender-side hash volume per extension: 2 pads per chosen OT
        // + the per-tree mini-leaf pads. (The receiver's unmask adds
        // one more pad per OT instance.)
        const size_t n_inst = p.t * shape.cotsPerTree;
        const size_t hashes = 2 * n_inst + p.t * shape.sumsPerTree;
        crypto::Crhf crhf;
        Rng rng(7);
        std::vector<Block> in = rng.nextBlocks(hashes);
        std::vector<Block> out(hashes);

        double batched = measureCycles(5, [&] {
            crhf.hashBatch(in.data(), out.data(), hashes, 1);
        });
        double scalar = measureCycles(3, [&] {
            for (size_t i = 0; i < hashes; ++i)
                out[i] = crhf.hash(in[i], 1 + i);
        });
        printRow({"CRHF batched (fused MMO)", batched,
                  batched / double(hashes), "hash"});
        printRow({"CRHF scalar (PR1 path)", scalar,
                  scalar / double(hashes), "hash"});
        std::printf("    -> batch speedup %.2fx over %zu hashes/ext\n",
                    scalar / batched, hashes);
    }

    // -- stage 3: LPN gather-XOR over n rows ---------------------------
    {
        LpnParams lp;
        lp.n = p.n;
        lp.k = p.k;
        lp.d = p.lpnWeight;
        lp.seed = p.lpnSeed;
        LpnEncoder enc(lp);
        Rng rng(8);
        std::vector<Block> in = rng.nextBlocks(lp.k);
        std::vector<Block> rows = rng.nextBlocks(lp.n);
        LpnEncodeScratch scratch;
        common::ThreadPool pool(1);
        LpnIndexTape tape;
        enc.buildTape(tape, lp.n, pool, &scratch);

        double streaming = measureCycles(3, [&] {
            enc.encodeBlocks(in.data(), rows.data(), 0, lp.n, scratch);
        });
        double taped = measureCycles(3, [&] {
            enc.encodeBlocksTape(in.data(), rows.data(), 0, lp.n, tape);
        });
        LpnEncoder::forceScalarKernel(true);
        double taped_scalar = measureCycles(3, [&] {
            enc.encodeBlocksTape(in.data(), rows.data(), 0, lp.n, tape);
        });
        LpnEncoder::forceScalarKernel(false);
        printRow({"LPN streaming (PR1 path)", streaming,
                  streaming / double(lp.n), "row"});
        printRow({"LPN tape + SIMD", taped, taped / double(lp.n),
                  "row"});
        printRow({"LPN tape, scalar kernel", taped_scalar,
                  taped_scalar / double(lp.n), "row"});
        std::printf("    -> tape+SIMD speedup %.2fx (index AES "
                    "eliminated: %zu calls/ext)\n",
                    streaming / taped,
                    size_t(LpnEncoder::aesCallsPerRow) * lp.n);
    }

    // -- stage 4 + end to end ------------------------------------------
    const int iters = fast ? 2 : 2;
    E2e plain = endToEnd(p, false, iters);
    E2e piped = endToEnd(p, true, iters);

    net::NetworkModel lan = net::lanNetwork();
    net::NetworkModel wan = net::wanNetwork();
    std::printf("\n  %-26s %10.1f KB/ext   LAN %.1f ms   WAN %.1f ms "
                "(1 round trip)\n",
                "wire (measured bytes)", plain.wireBytes / 1024.0,
                lan.seconds(plain.wireBytes, 1) * 1e3,
                wan.seconds(plain.wireBytes, 1) * 1e3);

    std::printf("\nend to end (%d iters, 1 thread):\n", iters);
    std::printf("  unpipelined engine        %8.2f M OT/s\n",
                plain.otsPerSec / 1e6);
    std::printf("  pipelined engine          %8.2f M OT/s\n",
                piped.otsPerSec / 1e6);
    if (!fast)
        std::printf("  PR1 workspace baseline      3.61 M OT/s "
                    "(CHANGES.md, this container)\n  -> speedup "
                    "%.2fx (acceptance: >= 1.3x)\n",
                    std::max(plain.otsPerSec, piped.otsPerSec) / 3.61e6);

    bench::note("single-core container: the pipeline's async LPN tail "
                "runs inline (no workers), so stage overlap cannot "
                "show here — gains are batched CRHF + index tape; "
                "re-measure on multicore.");
    return 0;
}
