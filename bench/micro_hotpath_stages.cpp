/**
 * @file
 * Per-stage breakdown of the FERRET steady-state hot path:
 *
 *   SPCOT expand — t GGM tree expansions (PRG-bound),
 *   CRHF         — every MMO hash of one extension (chosen-OT pads,
 *                  unmask pads, mini-leaf pads), batched vs scalar,
 *   LPN          — the n-row gather-XOR, streaming (per-extension AES
 *                  index generation) vs precomputed tape + SIMD,
 *   wire         — measured transcript bytes, converted to LAN/WAN
 *                  seconds with the analytic NetworkModel.
 *
 * plus the end-to-end OT/s of the unpipelined and pipelined engines.
 * Cycles are TSC ticks on x86 (calibrated against the wall clock so
 * the printed cycles/unit are meaningful on this host); elsewhere the
 * cycle columns fall back to nanoseconds.
 *
 * Record the numbers in EXPERIMENTS.md. Caveat (ROADMAP.md): this dev
 * container is single-core, so the iteration pipeline cannot overlap
 * stages here — its LPN tail runs inline — and the measured gains come
 * from batched CRHF + the index tape. Re-measure on multicore.
 *
 * Run: ./bench_micro_hotpath_stages   (IRONMAN_BENCH_FAST=1 trims)
 */

#include <cstdio>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define IRONMAN_HAVE_TSC 1
#endif

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "crypto/crhf.h"
#include "net/two_party.h"
#include "ot/base_cot.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"
#include "ot/ggm_tree.h"
#include "ot/lpn.h"
#include "ot/spcot.h"

using namespace ironman;
using namespace ironman::ot;

namespace {

uint64_t
ticks()
{
#ifdef IRONMAN_HAVE_TSC
    return __rdtsc();
#else
    return uint64_t(Timer().seconds()); // unused fallback path
#endif
}

/** TSC ticks per second (calibrated once). */
double
ticksPerSecond()
{
    static const double tps = [] {
#ifdef IRONMAN_HAVE_TSC
        Timer t;
        uint64_t c0 = ticks();
        while (t.seconds() < 0.05) {
        }
        return double(ticks() - c0) / t.seconds();
#else
        return 1e9; // report nanoseconds
#endif
    }();
    return tps;
}

struct StageRow
{
    const char *name;
    double cycles;       ///< per extension
    double per_unit;     ///< cycles per item
    const char *unit;
};

/** Stage rows collected for the machine-readable BENCH json. */
std::vector<StageRow> g_rows;

void
printRow(const StageRow &r)
{
    std::printf("  %-26s %14.0f cyc/ext   %8.2f cyc/%s\n", r.name,
                r.cycles, r.per_unit, r.unit);
    g_rows.push_back(r);
}

/** Cycles for fn(), median-free quick repeat (min of reps). */
template <typename F>
double
measureCycles(int reps, F &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        uint64_t c0 = ticks();
        fn();
        double c = double(ticks() - c0);
        if (c < best)
            best = c;
    }
    return best;
}

struct E2e
{
    double otsPerSec = 0;
    uint64_t wireBytes = 0;
};

/**
 * End to end; the final iteration's outputs are correlation-checked
 * (t = q ^ x*Delta on every index) so the CI bench-smoke step fails
 * on a protocol regression, not just a crash.
 */
E2e
endToEnd(const FerretParams &p, bool pipelined, int iters, bool *ok)
{
    Rng dealer(1234);
    Block delta = dealer.nextBlock();
    auto [bs, br] = dealBaseCots(dealer, delta, p.reservedCots());

    double seconds = 0;
    std::vector<Block> q(p.usableOts());
    net::MemoryDuplex duplex;
    std::thread sender_thread([&] {
        FerretCotSender sender(duplex.a(), p, delta, std::move(bs.q));
        sender.setPipelined(pipelined);
        Rng rng(1);
        sender.extendInto(rng, q.data()); // warm-up
        Timer timer;
        for (int it = 0; it < iters; ++it)
            sender.extendInto(rng, q.data());
        seconds = timer.seconds();
    });
    FerretCotReceiver receiver(duplex.b(), p, std::move(br.choice),
                               std::move(br.t));
    receiver.setPipelined(pipelined);
    Rng rng(2);
    BitVec choice;
    std::vector<Block> t(p.usableOts());
    for (int it = 0; it <= iters; ++it)
        receiver.extendInto(rng, choice, t.data());
    sender_thread.join();

    for (size_t i = 0; i < q.size(); ++i)
        if (t[i] != (q[i] ^ scalarMul(choice.get(i), delta))) {
            std::printf("CORRELATION BROKEN at index %zu\n", i);
            *ok = false;
            break;
        }

    E2e e;
    e.otsPerSec = double(p.usableOts()) * iters / seconds;
    e.wireBytes = duplex.totalBytes() / uint64_t(iters + 1);
    return e;
}

} // namespace

int
main()
{
    bench::banner("micro_hotpath_stages",
                  "per-stage cycles of one FERRET extension "
                  "(SPCOT expand / CRHF / LPN / wire)");

    const bool fast = bench::fastMode();
    const FerretParams p =
        fast ? tinyTestParams() : bench::ironmanParams(20);
    const SpcotConfig cfg{p.treeLeaves(), p.arity, p.prg};
    const double tps = ticksPerSecond();
    std::printf("param set %s: n=%zu k=%zu t=%zu l=%zu (%.2f GHz "
                "TSC)\n\n",
                p.name.c_str(), p.n, p.k, p.t, p.treeLeaves(),
                tps / 1e9);

    // -- stage 1: SPCOT expansion (t GGM trees) ------------------------
    {
        GgmSumLayout layout =
            GgmSumLayout::of(treeArities(p.treeLeaves(), p.arity));

        // Per-tree reference path (one expander call per tree level).
        auto prg = crypto::makeTreeExpander(p.prg, p.arity);
        GgmScratch scratch;
        std::vector<Block> leaves(layout.leaves);
        std::vector<Block> sums(layout.total);
        Block leaf_sum;
        double per_tree = measureCycles(3, [&] {
            for (size_t tr = 0; tr < p.t; ++tr)
                ggmExpandInto(*prg, Block::fromUint64(tr), layout,
                              scratch, leaves.data(), sums.data(),
                              &leaf_sum);
        });

        // Cross-tree level-synchronous path (one expander call per
        // level per chunk — the hot path of spcotSendTranscript).
        constexpr size_t kChunk = SpcotWorkspace::kBatchTrees;
        auto batch_prg = crypto::makeTreeExpander(p.prg, p.arity);
        GgmBatchScratch batch_scratch;
        std::vector<Block> seeds(kChunk);
        for (size_t i = 0; i < kChunk; ++i)
            seeds[i] = Block::fromUint64(i);
        std::vector<Block> batch_leaves(kChunk * layout.leaves);
        std::vector<Block> batch_sums(kChunk * layout.total);
        std::vector<Block> batch_leaf_sums(kChunk);
        double cross = measureCycles(3, [&] {
            for (size_t tr0 = 0; tr0 < p.t; tr0 += kChunk) {
                const size_t cnt = std::min(kChunk, p.t - tr0);
                ggmExpandBatchInto(*batch_prg, seeds.data(), cnt, layout,
                                   batch_scratch, batch_leaves.data(),
                                   layout.leaves, batch_sums.data(),
                                   layout.total, batch_leaf_sums.data());
            }
        });

        printRow({"GGM expand, per-tree", per_tree,
                  per_tree / double(p.t * p.treeLeaves()), "leaf"});
        printRow({"GGM expand, cross-tree", cross,
                  cross / double(p.t * p.treeLeaves()), "leaf"});
        std::printf("    -> level-synchronous speedup %.2fx over t=%zu "
                    "trees\n",
                    per_tree / cross, p.t);
    }

    // -- stage 2: CRHF (all hashes of one extension) -------------------
    {
        SpcotShape shape;
        shape.prepare(cfg);
        // Sender-side hash volume per extension: 2 pads per chosen OT
        // + the per-tree mini-leaf pads. (The receiver's unmask adds
        // one more pad per OT instance.)
        const size_t n_inst = p.t * shape.cotsPerTree;
        const size_t hashes = 2 * n_inst + p.t * shape.sumsPerTree;
        crypto::Crhf crhf;
        Rng rng(7);
        std::vector<Block> in = rng.nextBlocks(hashes);
        std::vector<Block> out(hashes);

        double batched = measureCycles(5, [&] {
            crhf.hashBatch(in.data(), out.data(), hashes, 1);
        });
        double scalar = measureCycles(3, [&] {
            for (size_t i = 0; i < hashes; ++i)
                out[i] = crhf.hash(in[i], 1 + i);
        });
        printRow({"CRHF batched (fused MMO)", batched,
                  batched / double(hashes), "hash"});
        printRow({"CRHF scalar (PR1 path)", scalar,
                  scalar / double(hashes), "hash"});
        std::printf("    -> batch speedup %.2fx over %zu hashes/ext\n",
                    scalar / batched, hashes);
    }

    // -- stage 3: LPN gather-XOR over n rows ---------------------------
    {
        LpnParams lp;
        lp.n = p.n;
        lp.k = p.k;
        lp.d = p.lpnWeight;
        lp.seed = p.lpnSeed;
        LpnEncoder enc(lp);
        Rng rng(8);
        std::vector<Block> in = rng.nextBlocks(lp.k);
        std::vector<Block> rows = rng.nextBlocks(lp.n);
        LpnEncodeScratch scratch;
        common::ThreadPool pool(1);
        LpnIndexTape tape;
        enc.buildTape(tape, lp.n, pool, &scratch);

        double streaming = measureCycles(3, [&] {
            enc.encodeBlocks(in.data(), rows.data(), 0, lp.n, scratch);
        });
        double taped = measureCycles(3, [&] {
            enc.encodeBlocksTape(in.data(), rows.data(), 0, lp.n, tape);
        });
        auto taped_with = [&](LpnKernel k, bool prefetch) {
            LpnEncoder::setKernel(k);
            LpnEncoder::setPrefetch(prefetch);
            double c = measureCycles(5, [&] {
                enc.encodeBlocksTape(in.data(), rows.data(), 0, lp.n,
                                     tape);
            });
            LpnEncoder::setKernel(LpnKernel::Auto);
            LpnEncoder::setPrefetchAuto();
            return c;
        };
        double taped_scalar = taped_with(LpnKernel::Scalar, true);
        double taped_scalar_nopf = taped_with(LpnKernel::Scalar, false);
        double taped_sse2 = taped_with(LpnKernel::Sse2, true);
        double taped_sse2_nopf = taped_with(LpnKernel::Sse2, false);
        double taped_insert = taped_with(LpnKernel::Avx2, true);
        double taped_insert_nopf = taped_with(LpnKernel::Avx2, false);
        double taped_gather = taped_with(LpnKernel::Avx2Gather, true);
        printRow({"LPN streaming (PR1 path)", streaming,
                  streaming / double(lp.n), "row"});
        std::printf("  LPN tape, auto kernel = %s, auto prefetch = %s "
                    "(both measured per CPU)\n",
                    LpnEncoder::activeKernelName(),
                    detail::lpnPrefetchEnabled() ? "on" : "off");
        printRow({"LPN tape + SIMD (auto)", taped, taped / double(lp.n),
                  "row"});
        printRow({"LPN tape, scalar kernel", taped_scalar,
                  taped_scalar / double(lp.n), "row"});
        printRow({"LPN tape, scalar, no pf", taped_scalar_nopf,
                  taped_scalar_nopf / double(lp.n), "row"});
        printRow({"LPN tape, sse2", taped_sse2,
                  taped_sse2 / double(lp.n), "row"});
        printRow({"LPN tape, sse2, no pf", taped_sse2_nopf,
                  taped_sse2_nopf / double(lp.n), "row"});
        printRow({"LPN tape, avx2-insert", taped_insert,
                  taped_insert / double(lp.n), "row"});
        printRow({"LPN tape, avx2-insert, no pf", taped_insert_nopf,
                  taped_insert_nopf / double(lp.n), "row"});
        printRow({"LPN tape, avx2-vpgatherqq", taped_gather,
                  taped_gather / double(lp.n), "row"});
        std::printf("    -> tape+SIMD speedup %.2fx (index AES "
                    "eliminated: %zu calls/ext); auto keeps the "
                    "per-CPU winner; 'no pf' rows = software tap "
                    "prefetch disabled\n",
                    streaming / taped,
                    size_t(LpnEncoder::aesCallsPerRow) * lp.n);

        // Bit-LPN (the receiver's x = e*A ^ u path).
        Rng bit_rng(9);
        BitVec bits_in = bit_rng.nextBits(lp.k);
        BitVec bits_rows = bit_rng.nextBits(lp.n);
        double bits_streaming = measureCycles(3, [&] {
            enc.encodeBits(bits_in, bits_rows, scratch);
        });
        double bits_taped = measureCycles(3, [&] {
            enc.encodeBitsTape(bits_in, bits_rows, tape);
        });
        LpnEncoder::setKernel(LpnKernel::Scalar);
        double bits_scalar = measureCycles(3, [&] {
            enc.encodeBitsTape(bits_in, bits_rows, tape);
        });
        LpnEncoder::setKernel(LpnKernel::Auto);
        printRow({"bit-LPN streaming", bits_streaming,
                  bits_streaming / double(lp.n), "row"});
        printRow({"bit-LPN tape + SIMD", bits_taped,
                  bits_taped / double(lp.n), "row"});
        printRow({"bit-LPN tape, scalar", bits_scalar,
                  bits_scalar / double(lp.n), "row"});
    }

    // -- stage 4 + end to end ------------------------------------------
    const int iters = fast ? 2 : 2;
    bool ok = true;
    E2e plain = endToEnd(p, false, iters, &ok);
    E2e piped = endToEnd(p, true, iters, &ok);

    net::NetworkModel lan = net::lanNetwork();
    net::NetworkModel wan = net::wanNetwork();
    std::printf("\n  %-26s %10.1f KB/ext   LAN %.1f ms   WAN %.1f ms "
                "(1 round trip)\n",
                "wire (measured bytes)", plain.wireBytes / 1024.0,
                lan.seconds(plain.wireBytes, 1) * 1e3,
                wan.seconds(plain.wireBytes, 1) * 1e3);

    std::printf("\nend to end (%d iters, 1 thread):\n", iters);
    std::printf("  unpipelined engine        %8.2f M OT/s\n",
                plain.otsPerSec / 1e6);
    std::printf("  pipelined engine          %8.2f M OT/s\n",
                piped.otsPerSec / 1e6);
    if (!fast)
        std::printf("  PR2 pipelined baseline      5.5-5.9 M OT/s "
                    "(EXPERIMENTS.md, this container)\n  -> speedup "
                    "%.2fx (acceptance: >= 1.2x)\n",
                    std::max(plain.otsPerSec, piped.otsPerSec) / 5.9e6);

    // Scatter-free feed (bucketSize() == treeLeaves()): measured on
    // the aligned tiny set, where the leaf matrix IS the row vector.
    double sf_ots = 0;
    {
        const FerretParams ap = tinyAlignedParams();
        E2e sf = endToEnd(ap, true, iters, &ok);
        sf_ots = sf.otsPerSec;
        std::printf("  scatter-free feed (%s) %8.2f M OT/s "
                    "(pipelined)\n",
                    ap.name.c_str(), sf.otsPerSec / 1e6);
    }

    bench::note("single-core container: the pipeline's async LPN tail "
                "runs inline (no workers), so stage overlap cannot "
                "show here; re-measure on multicore.");

    // Regression sentinel for the CI bench-smoke step: a broken
    // correlation or an implausibly slow hot path fails the run.
    if (plain.otsPerSec < 1e5 || piped.otsPerSec < 1e5)
        ok = false;

    // Machine-readable mirror of the table above, for the CI perf
    // trajectory (cat/archive BENCH_*.json).
    {
        bench::JsonWriter j("BENCH_micro_hotpath_stages.json");
        j.kv("bench", "micro_hotpath_stages");
        j.kv("params", p.name);
        j.kv("n", uint64_t(p.n));
        j.kv("tsc_ghz", tps / 1e9);
        j.kv("lpn_auto_kernel", LpnEncoder::activeKernelName());
        j.kv("lpn_auto_prefetch",
             detail::lpnPrefetchEnabled() ? "on" : "off");
        j.key("stages_cyc_per_unit");
        j.beginObject();
        for (const StageRow &r : g_rows)
            j.kv(r.name, r.per_unit);
        j.endObject();
        j.key("e2e");
        j.beginObject();
        j.kv("unpipelined_ots_per_sec", plain.otsPerSec);
        j.kv("pipelined_ots_per_sec", piped.otsPerSec);
        j.kv("scatter_free_ots_per_sec", sf_ots);
        j.kv("wire_bytes_per_ext", plain.wireBytes);
        j.endObject();
        j.kv("ok", uint64_t(ok ? 1 : 0));
    }

    std::printf("%s\n", ok ? "BENCH-SMOKE OK" : "BENCH-SMOKE FAILED");
    return ok ? 0 : 1;
}
