/**
 * @file
 * Table 2 — PRG comparison (AES-128 vs ChaCha8).
 *
 * Area/power come from the paper's 45 nm synthesis (inputs to our
 * model); perf/area and power/block ratios are re-derived from them;
 * software throughput of both primitives on this host is measured as
 * a bonus column (the AES-NI advantage that makes AES the CPU choice
 * and ChaCha the ASIC choice).
 */

#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "crypto/aes.h"
#include "crypto/prg.h"
#include "nmp/area_power.h"

using namespace ironman;
using namespace ironman::bench;

namespace {

double
softwareBlocksPerSec(crypto::PrgKind kind)
{
    crypto::TreePrg prg(kind, 4);
    std::vector<Block> out(4);
    Block seed = Block::fromUint64(3);
    Timer t;
    uint64_t blocks = 0;
    while (t.seconds() < 0.2) {
        for (int i = 0; i < 1000; ++i) {
            prg.expand(seed, out.data(), 4);
            seed = out[0];
            blocks += 4;
        }
    }
    return blocks / t.seconds();
}

} // namespace

int
main()
{
    banner("Table 2", "PRG comparison (hardware numbers: paper's 45nm "
                      "synthesis; software: this host)");

    auto aes = nmp::aes128Core();
    auto chacha = nmp::chaCha8Core();

    double aes_perf_area = aes.outputBits / aes.areaMm2;
    double cc_perf_area = chacha.outputBits / chacha.areaMm2;
    double aes_power_block = aes.powerWatt / aes.blocksPerOp();
    double cc_power_block = chacha.powerWatt / chacha.blocksPerOp();

    std::printf("%-9s | %10s %9s %11s | %9s %13s | %14s\n", "PRG",
                "out(bit)", "area mm2", "perf/area", "power mW",
                "power/block", "sw Mblock/s");
    std::printf("%-9s | %10u %9.3f %11.2f | %9.2f %13.2f | %14.1f\n",
                aes.name, aes.outputBits, aes.areaMm2, 1.0,
                aes.powerWatt * 1e3, 1.0,
                softwareBlocksPerSec(crypto::PrgKind::Aes) / 1e6);
    std::printf("%-9s | %10u %9.3f %11.2f | %9.2f %13.2f | %14.1f\n",
                chacha.name, chacha.outputBits, chacha.areaMm2,
                cc_perf_area / aes_perf_area, chacha.powerWatt * 1e3,
                aes_power_block / cc_power_block,
                softwareBlocksPerSec(crypto::PrgKind::ChaCha8) / 1e6);

    std::printf("\npaper: perf/area ratio 4.491, power/block ratio "
                "3.092 (ChaCha8 normalized to AES)\n");
    std::printf("ours : perf/area ratio %.3f, power/block ratio %.3f\n",
                cc_perf_area / aes_perf_area,
                aes_power_block / cc_power_block);
    std::printf("AES-NI active on this host: %s (why CPUs pick AES "
                "while the ASIC picks ChaCha8)\n",
                crypto::Aes128::usingAesni() ? "yes" : "no");
    return 0;
}
