/**
 * @file
 * The private-inference daemon: MPC party 1 as a service.
 *
 * InferServer accepts inference sessions over real sockets (loopback/
 * remote TCP or Unix-domain), negotiates model/bitwidth/batch/supply
 * plus wire packing and in-flight depth via the infer/wire.h
 * handshake, and then plays the second GMW party of ppml::MlpRunner
 * over the session's net::SocketChannel — the first subsystem where
 * the ONLINE protocol, not just correlation generation, crosses the
 * wire. v2 sessions enqueue up to the negotiated depth of tagged
 * requests and evaluate them as ONE joint forward on Commit, so the
 * DReLU round latency is paid per group instead of per request; v1
 * peers get the PR 5 one-at-a-time protocol unchanged.
 *
 * Concurrency model is net::SessionServer's (shared with CotServer):
 * one accept loop plus one joined (never detached) thread per active
 * session, bounded by Config::maxSessions with accept-side
 * backpressure; stop() shuts down live channels, retires the
 * operator stock (waking sessions parked in stock waits), and joins
 * everything (TSan-clean).
 *
 * Correlation supply per session (the handshake's SupplyKind):
 *
 *   - Reservoir (the paper architecture): the client stocks two
 *     sessions on the ATTACHED CotServer through background
 *     reservoirs; this server consumes the operator halves of the
 *     same two sessions through svc::OperatorCotSupply. The online
 *     phase overlaps with COT refill on both sides, and warm
 *     EnginePool turnover keeps session churn allocation-free
 *     (DESIGN.md invariant 13).
 *   - Engine (A/B baseline): one dual-direction ppml::FerretCotEngine
 *     per session on the inference channel itself, extension latency
 *     inline with the online phase.
 */

#ifndef IRONMAN_INFER_INFER_SERVER_H
#define IRONMAN_INFER_INFER_SERVER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "infer/wire.h"
#include "net/flight_recorder.h"
#include "net/session_server.h"
#include "net/socket_channel.h"
#include "svc/cot_server.h"
#include "svc/operator_stock.h"

namespace ironman::infer {

class InferServer
{
  public:
    struct Config
    {
        size_t maxSessions = 8; ///< concurrent inference sessions
        uint32_t maxBatch = 256; ///< images per request bound
        /**
         * In-flight requests per v2 session; a hello asking for more
         * is clamped (negotiated down in the accept), never rejected.
         */
        uint16_t maxDepth = 32;
        int engineThreads = 1; ///< Engine-supply worker width

        /**
         * Simulated one-way latency added on this end of every
         * session channel (SocketChannel::setSimulatedDelay) — bench
         * harness knob for measured LAN/WAN rows, zero in production.
         */
        uint64_t simulatedDelayUs = 0;

        /**
         * Simulated link bandwidth for every session channel
         * (SocketChannel::setSimulatedBandwidth, bits/sec); 0 = off.
         * With simulatedDelayUs this completes the WAN model.
         */
        uint64_t simulatedBandwidthBps = 0;

        // -- containment (see net::SessionServer) ----------------------
        uint64_t sessionRecvTimeoutMs = 0; ///< blocked-read deadline
        uint64_t sessionSendTimeoutMs = 0; ///< blocked-write deadline
        uint64_t idleTimeoutMs = 0;        ///< no-traffic reap window

        /**
         * OT parameter shapes Engine-supply sessions may request;
         * empty = any structurally valid shape (dev/loopback).
         * Deployments MUST set this: a structurally valid hello can
         * still name a multi-GB engine (wireParamsValid allows n up
         * to 2^26), and the engine is built per session. Membership
         * compares the EngineKey fields, like CotServer's allowlist.
         */
        std::vector<ot::FerretParams> engineParamsAllowlist;
    };

    InferServer() : InferServer(Config{}) {}
    explicit InferServer(Config cfg);
    ~InferServer();

    InferServer(const InferServer &) = delete;
    InferServer &operator=(const InferServer &) = delete;

    /**
     * Enable SupplyKind::Reservoir sessions: @p stock must be
     * attached (stock.attach(cot)) to the CotServer the inference
     * clients open their COT sessions on — that attachment, done
     * before either server listens, is the whole wiring; this server
     * only consumes the stock. It must outlive this server or stop()
     * must run first (stop() retires it via shutdown()).
     */
    void attachOperatorStock(svc::OperatorStock &stock);

    /** Bind 127.0.0.1:@p port (0 = ephemeral); returns the port. */
    uint16_t listenTcp(uint16_t port = 0);

    /** Bind a Unix-domain path and start the accept loop. */
    void listenUnix(const std::string &path);

    /** Stop accepting, unwind sessions, join everything. Idempotent. */
    void stop();

    /**
     * Graceful shutdown: stop accepting, give in-flight sessions
     * @p timeout_ms to finish (they keep drawing from the operator
     * stock, which is retired only afterwards), then force-close
     * stragglers. Returns true iff every session ended voluntarily.
     */
    bool drain(uint64_t timeout_ms);

    /** Sessions force-closed by the idle reaper. */
    uint64_t sessionsReaped() const { return server_.sessionsReaped(); }

    uint64_t sessionsServed() const { return served.load(); }
    uint64_t sessionsRejected() const { return rejected.load(); }
    uint64_t requestsServed() const { return requests.load(); }
    uint64_t imagesServed() const { return images.load(); }
    uint64_t cotsConsumed() const { return cots.load(); }
    size_t activeSessions() const;

  private:
    void serveSession(net::SocketChannel &ch, uint64_t sid);
    void runSession(net::SocketChannel &ch, uint64_t sid,
                    const InferHello &hello, net::FlightRecorder &fr);

    Config cfg_;
    svc::OperatorStock *stock_ = nullptr;
    net::SessionServer server_;

    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> images{0};
    std::atomic<uint64_t> cots{0};
};

} // namespace ironman::infer

#endif // IRONMAN_INFER_INFER_SERVER_H
