#include "infer/infer_client.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "common/logging.h"

namespace ironman::infer {

namespace {

const ppml::MlpModelSpec &
specOrThrow(uint32_t model_id)
{
    const ppml::MlpModelSpec *spec = ppml::findMlpModel(model_id);
    if (!spec)
        throw std::runtime_error("InferClient: unknown model id " +
                                 std::to_string(model_id));
    return *spec;
}

} // namespace

InferClient::InferClient(std::unique_ptr<net::SocketChannel> channel,
                         Options opt)
    : ch(std::move(channel)), opt_(opt), spec_(specOrThrow(opt.modelId)),
      shareRng(opt.shareSeed)
{
    IRONMAN_CHECK(opt_.supply == SupplyKind::Engine,
                  "reservoir supply needs the two-session constructor");
    if (opt_.simulatedDelayUs > 0)
        ch->setSimulatedDelay(opt_.simulatedDelayUs);
    handshake();
    // In lockstep with the server's engine construction (it primes
    // one extension per direction interactively).
    engine = std::make_unique<ppml::FerretCotEngine>(
        *ch, 0, opt_.params, opt_.setupSeed, opt_.threads);
    sc = std::make_unique<ppml::SecureCompute>(*ch, 0, *engine,
                                               opt_.width);
    sc->setWirePacking(packed_);
    runner = std::make_unique<ppml::MlpRunner>(spec_, opt_.width);
}

InferClient::InferClient(std::unique_ptr<net::SocketChannel> channel,
                         std::unique_ptr<svc::CotClient> send_session,
                         std::unique_ptr<svc::CotClient> recv_session,
                         Options opt)
    : ch(std::move(channel)), opt_(opt), spec_(specOrThrow(opt.modelId)),
      sendSession(std::move(send_session)),
      recvSession(std::move(recv_session)), shareRng(opt.shareSeed)
{
    opt_.supply = SupplyKind::Reservoir;
    IRONMAN_CHECK(sendSession && recvSession, "need both COT sessions");
    IRONMAN_CHECK(sendSession->role() == svc::Role::Sender &&
                      recvSession->role() == svc::Role::Receiver,
                  "sessions must have opposite roles, sender first");

    if (opt_.simulatedDelayUs > 0)
        ch->setSimulatedDelay(opt_.simulatedDelayUs);

    // Stock sized from the model's COT estimate: keep one commit
    // group's worth of correlations ahead per direction. Sized from
    // the REQUESTED depth — the server may clamp lower, which only
    // leaves the stock oversized, never starved.
    const uint64_t group = opt_.depth > 0 ? opt_.depth : 1;
    const uint64_t per_commit =
        spec_.cotsPerImage(opt_.width) * opt_.batch * group;
    const svc::Reservoir::Options res_opt =
        svc::Reservoir::Options::sizedFor(per_commit,
                                          sendSession->usableOts());
    sendRes = std::make_unique<svc::Reservoir>(*sendSession, res_opt);
    recvRes = std::make_unique<svc::Reservoir>(*recvSession, res_opt);
    reservoirSupply = std::make_unique<svc::ReservoirCotSupply>(
        *sendRes, *recvRes, sendSession->delta());

    handshake();
    sc = std::make_unique<ppml::SecureCompute>(*ch, 0, *reservoirSupply,
                                               opt_.width);
    sc->setWirePacking(packed_);
    runner = std::make_unique<ppml::MlpRunner>(spec_, opt_.width);
}

void
InferClient::handshake()
{
    // Validate locally before committing the server to a session (the
    // wire carries width as one byte, so an out-of-range width would
    // otherwise truncate into something the server might accept).
    if (!spec_.widthOk(opt_.width))
        throw std::runtime_error(
            "InferClient: width " + std::to_string(opt_.width) +
            " outside " + spec_.name + "'s range [" +
            std::to_string(spec_.minWidth) + ", " +
            std::to_string(spec_.maxWidth) + "]");
    InferHello h;
    h.version = opt_.wireVersion;
    h.supply = opt_.supply;
    h.modelId = opt_.modelId;
    h.width = uint8_t(opt_.width);
    h.batch = opt_.batch;
    h.setupSeed = opt_.setupSeed;
    h.depth = opt_.depth > 0 ? opt_.depth : uint16_t(1);
    h.flags = opt_.packedWire ? kInferFlagPackedWire : uint16_t(0);
    if (opt_.supply == SupplyKind::Reservoir) {
        h.sendSessionId = sendSession->sessionId();
        h.recvSessionId = recvSession->sessionId();
    } else {
        h.params = svc::WireParams::of(opt_.params);
    }
    sendInferHello(*ch, h);
    const InferAccept a = recvInferAccept(*ch);
    if (a.status != InferStatus::Ok)
        throw std::runtime_error(
            std::string("InferClient: server rejected hello: ") +
            inferStatusName(a.status));
    sid = a.sessionId;
    // Adopt the server's negotiation (it only ever clamps); a v1
    // dialect pins the PR 5 wire regardless of what we asked for.
    if (opt_.wireVersion >= 2) {
        depth_ = a.depth > 0 ? a.depth : uint16_t(1);
        packed_ = (a.flags & kInferFlagPackedWire) != 0;
    } else {
        depth_ = 1;
        packed_ = false;
    }
}

std::unique_ptr<InferClient>
InferClient::connectTcp(const std::string &host, uint16_t port,
                        Options opt)
{
    return std::make_unique<InferClient>(net::tcpConnect(host, port),
                                         opt);
}

std::unique_ptr<InferClient>
InferClient::connectTcpReservoir(const std::string &host, uint16_t port,
                                 const std::string &cot_host,
                                 uint16_t cot_port, Options opt)
{
    svc::CotClient::Options send_opt;
    send_opt.role = svc::Role::Sender;
    send_opt.setupSeed = opt.setupSeed * 2 + 1;
    auto send_session = svc::CotClient::connectTcp(cot_host, cot_port,
                                                   opt.params, send_opt);
    svc::CotClient::Options recv_opt;
    recv_opt.role = svc::Role::Receiver;
    recv_opt.setupSeed = opt.setupSeed * 2 + 2;
    auto recv_session = svc::CotClient::connectTcp(cot_host, cot_port,
                                                   opt.params, recv_opt);
    return std::make_unique<InferClient>(
        net::tcpConnect(host, port), std::move(send_session),
        std::move(recv_session), opt);
}

InferClient::~InferClient()
{
    try {
        close();
    } catch (...) {
        // Teardown with a dead peer: nothing to do.
    }
}

std::vector<int64_t>
InferClient::infer(const std::vector<int64_t> &inputs)
{
    IRONMAN_CHECK(pendingTags.empty() && ready.empty(),
                  "infer() with pipelined submissions outstanding; use "
                  "collect()/drain()");
    submit(inputs);
    return collect().outputs;
}

uint32_t
InferClient::submit(const std::vector<int64_t> &inputs)
{
    IRONMAN_CHECK(!closed, "submit() on a closed session");
    IRONMAN_CHECK(inputs.size() ==
                      size_t(opt_.batch) * spec_.inputDim(),
                  "inputs are batch * inputDim values");

    const uint32_t tag = nextTag++;
    ppml::shareMlpValues(shareRng, opt_.width, inputs, &x0, &x1);

    if (opt_.wireVersion < 2) {
        // PR 5 dialect: evaluate immediately, park the result so the
        // issue/drain call shape works against a v1 session too.
        sendInferOp(*ch, InferOp::Infer);
        sendShareVector(*ch, x1.data(), x1.size());
        const std::vector<uint64_t> y0 = runner->forward(*sc, *ch, x0);
        y1.resize(size_t(opt_.batch) * spec_.outputDim());
        recvShareVector(*ch, y1.data(), y1.size());
        ++requests;
        ready.push_back(
            {tag, ppml::reconstructMlpValues(opt_.width, y0, y1)});
        return tag;
    }

    sendInferOp(*ch, InferOp::Infer);
    sendInferTag(*ch, tag);
    if (packed_)
        sendShareVectorPacked(*ch, x1.data(), x1.size(), opt_.width);
    else
        sendShareVector(*ch, x1.data(), x1.size());
    pendingTags.push_back(tag);
    pendingX0.insert(pendingX0.end(), x0.begin(), x0.end());
    if (pendingTags.size() >= depth_)
        commitPending();
    return tag;
}

void
InferClient::commitPending()
{
    if (pendingTags.empty())
        return;
    sendInferOp(*ch, InferOp::Commit);
    // One joint forward over the whole group: effective batch is
    // pending * batch, so the DReLU round chain is paid once. The
    // server makes the exact mirror call.
    const std::vector<uint64_t> y0cat =
        runner->forward(*sc, *ch, pendingX0);
    const size_t req_out = size_t(opt_.batch) * spec_.outputDim();
    y1.resize(req_out);
    std::vector<uint64_t> y0(req_out);
    for (size_t r = 0; r < pendingTags.size(); ++r) {
        const uint32_t tag = recvInferTag(*ch);
        IRONMAN_CHECK(tag == pendingTags[r],
                      "response tags must follow submission order");
        if (packed_)
            recvShareVectorPacked(*ch, y1.data(), req_out, opt_.width);
        else
            recvShareVector(*ch, y1.data(), req_out);
        std::copy(y0cat.begin() + r * req_out,
                  y0cat.begin() + (r + 1) * req_out, y0.begin());
        ready.push_back(
            {tag, ppml::reconstructMlpValues(opt_.width, y0, y1)});
    }
    requests += pendingTags.size();
    pendingTags.clear();
    pendingX0.clear();
}

InferClient::Result
InferClient::collect()
{
    if (ready.empty())
        commitPending();
    IRONMAN_CHECK(!ready.empty(), "collect() with nothing submitted");
    Result r = std::move(ready.front());
    ready.pop_front();
    return r;
}

std::vector<InferClient::Result>
InferClient::drain()
{
    commitPending();
    std::vector<Result> all(std::make_move_iterator(ready.begin()),
                            std::make_move_iterator(ready.end()));
    ready.clear();
    return all;
}

size_t
InferClient::cotsConsumed() const
{
    return sc ? sc->cotsConsumed() : 0;
}

uint64_t
InferClient::preprocBytesSent() const
{
    uint64_t bytes = 0;
    if (sendSession)
        bytes += sendSession->bytesSent();
    if (recvSession)
        bytes += recvSession->bytesSent();
    return bytes;
}

const std::vector<ppml::MlpLayerStat> &
InferClient::layerStats() const
{
    return runner->layerStats();
}

void
InferClient::close()
{
    if (closed || !ch)
        return;
    // The server would drop uncommitted requests at Close; evaluate
    // them instead so every submit() has a collectible result.
    commitPending();
    closed = true;
    // Stop stocking before the session goodbyes: a refill racing the
    // server's epilogue would die on a retired stock for nothing.
    if (sendRes)
        sendRes->stopRefill();
    if (recvRes)
        recvRes->stopRefill();
    sendInferOp(*ch, InferOp::Close);
    ch->flush();
    if (sendSession)
        sendSession->close();
    if (recvSession)
        recvSession->close();
}

} // namespace ironman::infer
