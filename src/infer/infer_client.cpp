#include "infer/infer_client.h"

#include <stdexcept>

#include "common/logging.h"

namespace ironman::infer {

namespace {

const ppml::MlpModelSpec &
specOrThrow(uint32_t model_id)
{
    const ppml::MlpModelSpec *spec = ppml::findMlpModel(model_id);
    if (!spec)
        throw std::runtime_error("InferClient: unknown model id " +
                                 std::to_string(model_id));
    return *spec;
}

} // namespace

InferClient::InferClient(std::unique_ptr<net::SocketChannel> channel,
                         Options opt)
    : ch(std::move(channel)), opt_(opt), spec_(specOrThrow(opt.modelId)),
      shareRng(opt.shareSeed)
{
    IRONMAN_CHECK(opt_.supply == SupplyKind::Engine,
                  "reservoir supply needs the two-session constructor");
    handshake();
    // In lockstep with the server's engine construction (it primes
    // one extension per direction interactively).
    engine = std::make_unique<ppml::FerretCotEngine>(
        *ch, 0, opt_.params, opt_.setupSeed, opt_.threads);
    sc = std::make_unique<ppml::SecureCompute>(*ch, 0, *engine,
                                               opt_.width);
    runner = std::make_unique<ppml::MlpRunner>(spec_, opt_.width);
}

InferClient::InferClient(std::unique_ptr<net::SocketChannel> channel,
                         std::unique_ptr<svc::CotClient> send_session,
                         std::unique_ptr<svc::CotClient> recv_session,
                         Options opt)
    : ch(std::move(channel)), opt_(opt), spec_(specOrThrow(opt.modelId)),
      sendSession(std::move(send_session)),
      recvSession(std::move(recv_session)), shareRng(opt.shareSeed)
{
    opt_.supply = SupplyKind::Reservoir;
    IRONMAN_CHECK(sendSession && recvSession, "need both COT sessions");
    IRONMAN_CHECK(sendSession->role() == svc::Role::Sender &&
                      recvSession->role() == svc::Role::Receiver,
                  "sessions must have opposite roles, sender first");

    // Stock sized from the model's COT estimate: keep one request's
    // worth of correlations ahead per direction.
    const uint64_t per_request =
        spec_.cotsPerImage(opt_.width) * opt_.batch;
    const svc::Reservoir::Options res_opt =
        svc::Reservoir::Options::sizedFor(per_request,
                                          sendSession->usableOts());
    sendRes = std::make_unique<svc::Reservoir>(*sendSession, res_opt);
    recvRes = std::make_unique<svc::Reservoir>(*recvSession, res_opt);
    reservoirSupply = std::make_unique<svc::ReservoirCotSupply>(
        *sendRes, *recvRes, sendSession->delta());

    handshake();
    sc = std::make_unique<ppml::SecureCompute>(*ch, 0, *reservoirSupply,
                                               opt_.width);
    runner = std::make_unique<ppml::MlpRunner>(spec_, opt_.width);
}

void
InferClient::handshake()
{
    // Validate locally before committing the server to a session (the
    // wire carries width as one byte, so an out-of-range width would
    // otherwise truncate into something the server might accept).
    if (!spec_.widthOk(opt_.width))
        throw std::runtime_error(
            "InferClient: width " + std::to_string(opt_.width) +
            " outside " + spec_.name + "'s range [" +
            std::to_string(spec_.minWidth) + ", " +
            std::to_string(spec_.maxWidth) + "]");
    InferHello h;
    h.supply = opt_.supply;
    h.modelId = opt_.modelId;
    h.width = uint8_t(opt_.width);
    h.batch = opt_.batch;
    h.setupSeed = opt_.setupSeed;
    if (opt_.supply == SupplyKind::Reservoir) {
        h.sendSessionId = sendSession->sessionId();
        h.recvSessionId = recvSession->sessionId();
    } else {
        h.params = svc::WireParams::of(opt_.params);
    }
    sendInferHello(*ch, h);
    const InferAccept a = recvInferAccept(*ch);
    if (a.status != InferStatus::Ok)
        throw std::runtime_error(
            std::string("InferClient: server rejected hello: ") +
            inferStatusName(a.status));
    sid = a.sessionId;
}

std::unique_ptr<InferClient>
InferClient::connectTcp(const std::string &host, uint16_t port,
                        Options opt)
{
    return std::make_unique<InferClient>(net::tcpConnect(host, port),
                                         opt);
}

std::unique_ptr<InferClient>
InferClient::connectTcpReservoir(const std::string &host, uint16_t port,
                                 const std::string &cot_host,
                                 uint16_t cot_port, Options opt)
{
    svc::CotClient::Options send_opt;
    send_opt.role = svc::Role::Sender;
    send_opt.setupSeed = opt.setupSeed * 2 + 1;
    auto send_session = svc::CotClient::connectTcp(cot_host, cot_port,
                                                   opt.params, send_opt);
    svc::CotClient::Options recv_opt;
    recv_opt.role = svc::Role::Receiver;
    recv_opt.setupSeed = opt.setupSeed * 2 + 2;
    auto recv_session = svc::CotClient::connectTcp(cot_host, cot_port,
                                                   opt.params, recv_opt);
    return std::make_unique<InferClient>(
        net::tcpConnect(host, port), std::move(send_session),
        std::move(recv_session), opt);
}

InferClient::~InferClient()
{
    try {
        close();
    } catch (...) {
        // Teardown with a dead peer: nothing to do.
    }
}

std::vector<int64_t>
InferClient::infer(const std::vector<int64_t> &inputs)
{
    IRONMAN_CHECK(!closed, "infer() on a closed session");
    IRONMAN_CHECK(inputs.size() ==
                      size_t(opt_.batch) * spec_.inputDim(),
                  "inputs are batch * inputDim values");

    ppml::shareMlpValues(shareRng, opt_.width, inputs, &x0, &x1);
    sendInferOp(*ch, InferOp::Infer);
    sendShareVector(*ch, x1.data(), x1.size());

    const std::vector<uint64_t> y0 = runner->forward(*sc, *ch, x0);

    y1.resize(size_t(opt_.batch) * spec_.outputDim());
    recvShareVector(*ch, y1.data(), y1.size());
    ++requests;
    return ppml::reconstructMlpValues(opt_.width, y0, y1);
}

size_t
InferClient::cotsConsumed() const
{
    return sc ? sc->cotsConsumed() : 0;
}

uint64_t
InferClient::preprocBytesSent() const
{
    uint64_t bytes = 0;
    if (sendSession)
        bytes += sendSession->bytesSent();
    if (recvSession)
        bytes += recvSession->bytesSent();
    return bytes;
}

const std::vector<ppml::MlpLayerStat> &
InferClient::layerStats() const
{
    return runner->layerStats();
}

void
InferClient::close()
{
    if (closed || !ch)
        return;
    closed = true;
    // Stop stocking before the session goodbyes: a refill racing the
    // server's epilogue would die on a retired stock for nothing.
    if (sendRes)
        sendRes->stopRefill();
    if (recvRes)
        recvRes->stopRefill();
    sendInferOp(*ch, InferOp::Close);
    ch->flush();
    if (sendSession)
        sendSession->close();
    if (recvSession)
        recvSession->close();
}

} // namespace ironman::infer
