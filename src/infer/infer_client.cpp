#include "infer/infer_client.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <stdexcept>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "net/wire_error.h"

namespace ironman::infer {

namespace {

/** Client-side request latency (submit -> reconstruction). */
metrics::Histogram &
requestLatency()
{
    static metrics::Histogram &h =
        metrics::histogram("infer_client_request_latency_us");
    return h;
}

const ppml::MlpModelSpec &
specOrThrow(uint32_t model_id)
{
    const ppml::MlpModelSpec *spec = ppml::findMlpModel(model_id);
    if (!spec)
        throw std::runtime_error("InferClient: unknown model id " +
                                 std::to_string(model_id));
    return *spec;
}

svc::CotClient::Options
cotSendOptions(const InferClient::Options &opt)
{
    svc::CotClient::Options o;
    o.role = svc::Role::Sender;
    o.setupSeed = opt.setupSeed * 2 + 1;
    return o;
}

svc::CotClient::Options
cotRecvOptions(const InferClient::Options &opt)
{
    svc::CotClient::Options o;
    o.role = svc::Role::Receiver;
    o.setupSeed = opt.setupSeed * 2 + 2;
    return o;
}

} // namespace

InferClient::InferClient(std::unique_ptr<net::SocketChannel> channel,
                         Options opt)
    : ch(std::move(channel)), opt_(opt), spec_(specOrThrow(opt.modelId)),
      shareRng(opt.shareSeed)
{
    IRONMAN_CHECK(opt_.supply == SupplyKind::Engine,
                  "reservoir supply needs the two-session constructor");
    if (opt_.simulatedDelayUs > 0)
        ch->setSimulatedDelay(opt_.simulatedDelayUs);
    handshake();
    // In lockstep with the server's engine construction (it primes
    // one extension per direction interactively).
    engine = std::make_unique<ppml::FerretCotEngine>(
        *ch, 0, opt_.params, opt_.setupSeed, opt_.threads);
    sc = std::make_unique<ppml::SecureCompute>(*ch, 0, *engine,
                                               opt_.width);
    sc->setWirePacking(packed_);
    sc->setComparisonMode(comparisonMode());
    runner = std::make_unique<ppml::MlpRunner>(spec_, opt_.width);
}

InferClient::InferClient(std::unique_ptr<net::SocketChannel> channel,
                         std::unique_ptr<svc::CotClient> send_session,
                         std::unique_ptr<svc::CotClient> recv_session,
                         Options opt)
    : ch(std::move(channel)), opt_(opt), spec_(specOrThrow(opt.modelId)),
      sendSession(std::move(send_session)),
      recvSession(std::move(recv_session)), shareRng(opt.shareSeed)
{
    opt_.supply = SupplyKind::Reservoir;
    IRONMAN_CHECK(sendSession && recvSession, "need both COT sessions");
    IRONMAN_CHECK(sendSession->role() == svc::Role::Sender &&
                      recvSession->role() == svc::Role::Receiver,
                  "sessions must have opposite roles, sender first");

    if (opt_.simulatedDelayUs > 0)
        ch->setSimulatedDelay(opt_.simulatedDelayUs);

    buildReservoirs();
    handshake();
    sc = std::make_unique<ppml::SecureCompute>(*ch, 0, *reservoirSupply,
                                               opt_.width);
    sc->setWirePacking(packed_);
    sc->setComparisonMode(comparisonMode());
    runner = std::make_unique<ppml::MlpRunner>(spec_, opt_.width);
}

void
InferClient::buildReservoirs()
{
    // Stock sized from the model's COT estimate: keep one commit
    // group's worth of correlations ahead per direction. Sized from
    // the REQUESTED depth and comparison mode (reservoirs exist
    // before the handshake can negotiate) — the server may clamp or
    // refuse either, which only leaves the stock oversized, never
    // starved.
    const uint64_t group =
        opt_.depthAuto ? 64 : (opt_.depth > 0 ? opt_.depth : 1);
    const uint64_t per_commit =
        spec_.cotsPerImage(opt_.width,
                           opt_.ladderCmp ? ppml::CmpMode::Ladder
                                          : ppml::CmpMode::Ripple) *
        opt_.batch * group;
    const svc::Reservoir::Options res_opt =
        svc::Reservoir::Options::sizedFor(per_commit,
                                          sendSession->usableOts());
    sendRes = std::make_unique<svc::Reservoir>(*sendSession, res_opt);
    recvRes = std::make_unique<svc::Reservoir>(*recvSession, res_opt);
    reservoirSupply = std::make_unique<svc::ReservoirCotSupply>(
        *sendRes, *recvRes, sendSession->delta());
}

void
InferClient::handshake()
{
    // Validate locally before committing the server to a session (the
    // wire carries width as one byte, so an out-of-range width would
    // otherwise truncate into something the server might accept).
    if (!spec_.widthOk(opt_.width))
        throw std::runtime_error(
            "InferClient: width " + std::to_string(opt_.width) +
            " outside " + spec_.name + "'s range [" +
            std::to_string(spec_.minWidth) + ", " +
            std::to_string(spec_.maxWidth) + "]");
    InferHello h;
    h.version = opt_.wireVersion;
    h.supply = opt_.supply;
    h.modelId = opt_.modelId;
    h.width = uint8_t(opt_.width);
    h.batch = opt_.batch;
    h.setupSeed = opt_.setupSeed;
    // Auto-depth asks for a deep window (the server clamps to its
    // bound) and tunes the ACTUAL group size locally from the RTT.
    h.depth = opt_.depthAuto
                  ? uint16_t(64)
                  : (opt_.depth > 0 ? opt_.depth : uint16_t(1));
    h.flags =
        uint16_t((opt_.packedWire ? kInferFlagPackedWire : 0) |
                 (opt_.ladderCmp ? kInferFlagLadderCmp : 0) |
                 (opt_.streamCommit ? kInferFlagStreamCommit : 0) |
                 (opt_.traceWire ? kInferFlagTrace : 0));
    if (opt_.traceWire) {
        // One id per dial (a reconnect is a new timeline segment);
        // both parties' spans correlate under it in the merged export.
        traceId_ = opt_.traceId ? opt_.traceId
                                : trace::newTraceId(opt_.setupSeed);
        h.traceId = traceId_;
        h.traceSampled = opt_.traceSampled ? 1 : 0;
    }
    if (opt_.supply == SupplyKind::Reservoir) {
        h.sendSessionId = sendSession->sessionId();
        h.recvSessionId = recvSession->sessionId();
    } else {
        h.params = svc::WireParams::of(opt_.params);
    }
    // The hello/accept turnaround doubles as the RTT probe the depth
    // auto-tuner uses — and, with the trace flag, as the clock-offset
    // probe: the server stamps the accept with its own clock, and the
    // RTT midpoint is our best estimate of when that stamp was taken
    // (Cristian). It rides every (re)dial, so reconnects re-tune.
    const uint64_t t0_us = trace::nowUs();
    sendInferHello(*ch, h);
    const InferAccept a = recvInferAccept(*ch);
    const uint64_t t1_us = trace::nowUs();
    rttUs_ = t1_us - t0_us;
    if (a.status != InferStatus::Ok)
        throw net::WireError(
            net::WireFault::Fatal,
            std::string("InferClient: server rejected hello: ") +
                inferStatusName(a.status));
    sid = a.sessionId;
    // Adopt the server's negotiation (it only ever clamps); a v1
    // dialect pins the PR 5 wire regardless of what we asked for.
    if (opt_.wireVersion >= 2) {
        depth_ = a.depth > 0 ? a.depth : uint16_t(1);
        packed_ = (a.flags & kInferFlagPackedWire) != 0;
        ladder_ = (a.flags & kInferFlagLadderCmp) != 0;
        stream_ = (a.flags & kInferFlagStreamCommit) != 0;
        traceOn_ = (a.flags & kInferFlagTrace) != 0;
        if (traceOn_) {
            clockOffsetUs_ = int64_t(a.serverClockUs) -
                             int64_t((t0_us + t1_us) / 2);
            trace::setContext(traceId_, opt_.traceSampled);
            trace::setPeerClockOffsetUs(clockOffsetUs_);
            trace::instant("handshake", "infer", 0, rttUs_);
        } else {
            traceId_ = 0;
        }
        if (opt_.depthAuto) {
            // One commit group costs group_rounds dependent round
            // trips no matter how many requests ride in it; pick the
            // depth whose per-request share of that latency meets the
            // budget. A loopback link lands at depth 1-2, a WAN pins
            // the negotiated ceiling.
            const uint64_t group_rounds =
                uint64_t(spec_.dims.size() - 2) *
                ppml::reluRounds(opt_.width, comparisonMode());
            const uint64_t budget =
                opt_.depthBudgetUs > 0 ? opt_.depthBudgetUs : 1;
            uint64_t tuned =
                (group_rounds * rttUs_ + budget - 1) / budget;
            tuned = std::clamp<uint64_t>(tuned, 1, depth_);
            depth_ = uint16_t(tuned);
        }
    } else {
        depth_ = 1;
        packed_ = false;
        ladder_ = false;
        stream_ = false;
        traceOn_ = false;
        traceId_ = 0;
    }
}

std::unique_ptr<InferClient>
InferClient::connectTcp(const std::string &host, uint16_t port,
                        Options opt)
{
    const unsigned attempts =
        opt.autoReconnect && opt.retry.maxAttempts > 0
            ? opt.retry.maxAttempts
            : 1u;
    for (unsigned attempt = 1;; ++attempt) {
        try {
            opt.retry.sleepBefore(attempt);
            auto c = std::make_unique<InferClient>(
                net::tcpConnect(host, port), opt);
            c->host_ = host;
            c->port_ = port;
            c->endpointsKnown_ = true;
            return c;
        } catch (const net::WireError &e) {
            if (!e.retryable() || attempt >= attempts)
                throw;
            if (opt.retryHook)
                opt.retryHook(attempt, opt.retry.backoffMs(attempt + 1),
                              e.what());
        }
    }
}

std::unique_ptr<InferClient>
InferClient::connectTcpReservoir(const std::string &host, uint16_t port,
                                 const std::string &cot_host,
                                 uint16_t cot_port, Options opt)
{
    const unsigned attempts =
        opt.autoReconnect && opt.retry.maxAttempts > 0
            ? opt.retry.maxAttempts
            : 1u;
    for (unsigned attempt = 1;; ++attempt) {
        try {
            opt.retry.sleepBefore(attempt);
            auto send_session = svc::CotClient::connectTcp(
                cot_host, cot_port, opt.params, cotSendOptions(opt));
            auto recv_session = svc::CotClient::connectTcp(
                cot_host, cot_port, opt.params, cotRecvOptions(opt));
            auto c = std::make_unique<InferClient>(
                net::tcpConnect(host, port), std::move(send_session),
                std::move(recv_session), opt);
            c->host_ = host;
            c->port_ = port;
            c->cotHost_ = cot_host;
            c->cotPort_ = cot_port;
            c->endpointsKnown_ = true;
            return c;
        } catch (const net::WireError &e) {
            if (!e.retryable() || attempt >= attempts)
                throw;
            if (opt.retryHook)
                opt.retryHook(attempt, opt.retry.backoffMs(attempt + 1),
                              e.what());
        }
    }
}

InferClient::~InferClient()
{
    try {
        close();
    } catch (...) {
        // Teardown with a dead peer: nothing to do.
    }
}

bool
InferClient::canRecover(const std::exception &e) const
{
    return opt_.autoReconnect && opt_.wireVersion >= 2 &&
           endpointsKnown_ && !dead_ && net::isRetryable(e);
}

void
InferClient::redial()
{
    ch = net::tcpConnect(host_, port_);
    if (opt_.simulatedDelayUs > 0)
        ch->setSimulatedDelay(opt_.simulatedDelayUs);
    if (opt_.supply == SupplyKind::Reservoir) {
        // Same derived seeds as the original dial: the restarted
        // daemon re-deals the same deterministic session base, so the
        // fresh sessions are indistinguishable from first contact.
        sendSession = svc::CotClient::connectTcp(
            cotHost_, cotPort_, opt_.params, cotSendOptions(opt_));
        recvSession = svc::CotClient::connectTcp(
            cotHost_, cotPort_, opt_.params, cotRecvOptions(opt_));
        buildReservoirs();
    }
    handshake();
    if (opt_.supply == SupplyKind::Engine) {
        engine = std::make_unique<ppml::FerretCotEngine>(
            *ch, 0, opt_.params, opt_.setupSeed, opt_.threads);
        sc = std::make_unique<ppml::SecureCompute>(*ch, 0, *engine,
                                                   opt_.width);
    } else {
        sc = std::make_unique<ppml::SecureCompute>(
            *ch, 0, *reservoirSupply, opt_.width);
    }
    sc->setWirePacking(packed_);
    sc->setComparisonMode(comparisonMode());
    runner = std::make_unique<ppml::MlpRunner>(spec_, opt_.width);
}

void
InferClient::reconnect(const std::string &cause)
{
    // Tear the whole transport down before redialing. The share tape
    // (shareRng) survives untouched: uncommitted requests resubmit
    // their STORED shares, so the tape position stays consistent with
    // an uninterrupted run.
    if (sendRes)
        sendRes->stopRefill();
    if (recvRes)
        recvRes->stopRefill();
    sc.reset();
    runner.reset();
    engine.reset();
    reservoirSupply.reset();
    sendRes.reset();
    recvRes.reset();
    sendSession.reset();
    recvSession.reset();
    ch.reset();

    const unsigned attempts =
        opt_.retry.maxAttempts > 0 ? opt_.retry.maxAttempts : 1u;
    std::string last = cause;
    for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
        if (opt_.retryHook)
            opt_.retryHook(attempt, opt_.retry.backoffMs(attempt + 1),
                           last);
        // Backoff BEFORE the dial: the failure that brought us here
        // is evidence the daemon is down right now.
        opt_.retry.sleepBefore(attempt + 1);
        try {
            redial();
            resubmitPending();
            ++reconnectCount;
            return;
        } catch (const net::WireError &e) {
            if (!e.retryable()) {
                dead_ = true;
                throw;
            }
            last = e.what();
        } catch (const std::exception &e) {
            dead_ = true;
            throw;
        }
    }
    dead_ = true;
    throw net::WireError(net::WireFault::PeerClosed,
                         "InferClient: reconnect budget exhausted: " +
                             last);
}

void
InferClient::resubmitPending()
{
    const size_t req_in = size_t(opt_.batch) * spec_.inputDim();
    for (size_t r = 0; r < pendingTags.size(); ++r) {
        sendInferOp(*ch, InferOp::Infer);
        sendInferTag(*ch, pendingTags[r]);
        const uint64_t *src = pendingX1.data() + r * req_in;
        if (packed_)
            sendShareVectorPacked(*ch, src, req_in, opt_.width);
        else
            sendShareVector(*ch, src, req_in);
    }
}

void
InferClient::failPendingFrom(size_t answered, size_t group,
                             const std::string &what)
{
    const size_t req_in = size_t(opt_.batch) * spec_.inputDim();
    for (size_t r = answered; r < group; ++r) {
        Result failed;
        failed.tag = pendingTags[r];
        failed.ok = false;
        failed.error = what;
        ready.push_back(std::move(failed));
    }
    // Only the COMMITTED group dies; requests streamed ahead of it
    // were never committed and resubmit with the recovered session.
    pendingTags.erase(pendingTags.begin(), pendingTags.begin() + group);
    pendingX0.erase(pendingX0.begin(),
                    pendingX0.begin() + group * req_in);
    pendingX1.erase(pendingX1.begin(),
                    pendingX1.begin() + group * req_in);
    pendingT0Us.erase(pendingT0Us.begin(),
                      pendingT0Us.begin() + group);
}

std::vector<int64_t>
InferClient::infer(const std::vector<int64_t> &inputs)
{
    IRONMAN_CHECK(pendingTags.empty() && ready.empty(),
                  "infer() with pipelined submissions outstanding; use "
                  "collect()/drain()");
    submit(inputs);
    Result r = collect();
    if (!r.ok)
        throw net::WireError(net::WireFault::PeerClosed,
                             "InferClient: request failed: " + r.error);
    return std::move(r.outputs);
}

uint32_t
InferClient::submit(const std::vector<int64_t> &inputs)
{
    IRONMAN_CHECK(!closed, "submit() on a closed session");
    if (dead_)
        throw net::WireError(net::WireFault::Fatal,
                             "InferClient: session failed terminally");
    IRONMAN_CHECK(inputs.size() ==
                      size_t(opt_.batch) * spec_.inputDim(),
                  "inputs are batch * inputDim values");

    const uint32_t tag = nextTag++;
    const uint64_t t0_us = metrics::nowUs();
    // The tape advances exactly once per submission, reconnect or not.
    ppml::shareMlpValues(shareRng, opt_.width, inputs, &x0, &x1);

    if (opt_.wireVersion < 2) {
        // PR 5 dialect: evaluate immediately, park the result so the
        // issue/drain call shape works against a v1 session too.
        sendInferOp(*ch, InferOp::Infer);
        sendShareVector(*ch, x1.data(), x1.size());
        const std::vector<uint64_t> y0 = runner->forward(*sc, *ch, x0);
        y1.resize(size_t(opt_.batch) * spec_.outputDim());
        recvShareVector(*ch, y1.data(), y1.size());
        ++requests;
        Result r{tag, ppml::reconstructMlpValues(opt_.width, y0, y1)};
        r.latencyUs = metrics::nowUs() - t0_us;
        requestLatency().record(r.latencyUs);
        ready.push_back(std::move(r));
        return tag;
    }

    for (;;) {
        try {
            trace::Span submit_span("submit", "infer", tag,
                                    x1.size() * sizeof(uint64_t));
            sendInferOp(*ch, InferOp::Infer);
            sendInferTag(*ch, tag);
            if (packed_)
                sendShareVectorPacked(*ch, x1.data(), x1.size(),
                                      opt_.width);
            else
                sendShareVector(*ch, x1.data(), x1.size());
            break;
        } catch (const std::exception &e) {
            if (!canRecover(e))
                throw;
            // The session died before this request's Commit, so it is
            // safe to replay: reconnect() resubmits the stored pending
            // group, then the loop retries this send.
            reconnect(e.what());
        }
    }
    pendingTags.push_back(tag);
    pendingX0.insert(pendingX0.end(), x0.begin(), x0.end());
    pendingX1.insert(pendingX1.end(), x1.begin(), x1.end());
    pendingT0Us.push_back(t0_us);
    if (stream_) {
        // Keep the recv-ahead window primed: once two full groups are
        // pending, commit the OLDEST — its evaluation overlaps the
        // younger group's frames already crossing the wire. Grouping
        // boundaries stay every depth_ submissions, exactly like the
        // non-streaming client, so grouped references stay valid.
        if (pendingTags.size() >= 2 * size_t(depth_))
            commitGroup(depth_);
    } else if (pendingTags.size() >= depth_) {
        commitGroup(pendingTags.size());
    }
    return tag;
}

void
InferClient::commitPending()
{
    while (!pendingTags.empty())
        commitGroup(stream_ ? std::min(size_t(depth_),
                                       pendingTags.size())
                            : pendingTags.size());
}

void
InferClient::commitGroup(size_t group)
{
    if (pendingTags.empty())
        return;
    IRONMAN_CHECK(group > 0 && group <= pendingTags.size(),
                  "commit group out of range");
    IRONMAN_CHECK(stream_ || group == pendingTags.size(),
                  "partial commits need the streaming flag");
    const size_t req_in = size_t(opt_.batch) * spec_.inputDim();
    const size_t req_out = size_t(opt_.batch) * spec_.outputDim();
    size_t answered = 0;
    try {
        trace::Span commit_span("commit_group", "infer",
                                uint32_t(group));
        sendInferOp(*ch, InferOp::Commit);
        if (stream_)
            sendCommitCount(*ch, uint16_t(group));
        // One joint forward over the group: effective batch is group *
        // batch, so the DReLU round chain is paid once. The server
        // makes the exact mirror call.
        const std::vector<uint64_t> x0group(
            pendingX0.begin(), pendingX0.begin() + group * req_in);
        const std::vector<uint64_t> y0cat =
            runner->forward(*sc, *ch, x0group);
        y1.resize(req_out);
        std::vector<uint64_t> y0(req_out);
        for (size_t r = 0; r < group; ++r) {
            const uint32_t tag = recvInferTag(*ch);
            IRONMAN_CHECK(tag == pendingTags[r],
                          "response tags must follow submission order");
            if (packed_)
                recvShareVectorPacked(*ch, y1.data(), req_out,
                                      opt_.width);
            else
                recvShareVector(*ch, y1.data(), req_out);
            std::copy(y0cat.begin() + r * req_out,
                      y0cat.begin() + (r + 1) * req_out, y0.begin());
            Result res{tag,
                       ppml::reconstructMlpValues(opt_.width, y0, y1)};
            res.latencyUs = metrics::nowUs() - pendingT0Us[r];
            requestLatency().record(res.latencyUs);
            // The per-request span every server-side layer span of
            // this tag nests inside on the merged timeline.
            trace::emitSpan("request", "infer", pendingT0Us[r],
                            res.latencyUs, tag,
                            res.outputs.size() * sizeof(int64_t));
            ready.push_back(std::move(res));
            ++answered;
        }
    } catch (const std::exception &e) {
        if (!canRecover(e))
            throw;
        // This group's Commit was on the wire: the server may have
        // evaluated any or all of it, so replaying could answer a
        // request twice. Fail the group's unanswered remainder with
        // the cause (the answered prefix reconstructed fine and stays
        // collectible); requests streamed BEHIND the group were never
        // committed, so reconnect() resubmits them safely.
        requests += answered;
        failPendingFrom(answered, group, e.what());
        reconnect(e.what());
        return;
    }
    requests += group;
    pendingTags.erase(pendingTags.begin(), pendingTags.begin() + group);
    pendingX0.erase(pendingX0.begin(),
                    pendingX0.begin() + group * req_in);
    pendingX1.erase(pendingX1.begin(),
                    pendingX1.begin() + group * req_in);
    pendingT0Us.erase(pendingT0Us.begin(),
                      pendingT0Us.begin() + group);
}

InferClient::Result
InferClient::collect()
{
    if (ready.empty() && !pendingTags.empty())
        commitGroup(stream_ ? std::min(size_t(depth_),
                                       pendingTags.size())
                            : pendingTags.size());
    IRONMAN_CHECK(!ready.empty(), "collect() with nothing submitted");
    Result r = std::move(ready.front());
    ready.pop_front();
    return r;
}

std::vector<InferClient::Result>
InferClient::drain()
{
    commitPending();
    std::vector<Result> all(std::make_move_iterator(ready.begin()),
                            std::make_move_iterator(ready.end()));
    ready.clear();
    return all;
}

size_t
InferClient::cotsConsumed() const
{
    return sc ? sc->cotsConsumed() : 0;
}

uint64_t
InferClient::preprocBytesSent() const
{
    uint64_t bytes = 0;
    if (sendSession)
        bytes += sendSession->bytesSent();
    if (recvSession)
        bytes += recvSession->bytesSent();
    return bytes;
}

const std::vector<ppml::MlpLayerStat> &
InferClient::layerStats() const
{
    return runner->layerStats();
}

void
InferClient::close()
{
    if (closed || !ch)
        return;
    // The server would drop uncommitted requests at Close; evaluate
    // them instead so every submit() has a collectible result.
    if (!dead_)
        commitPending();
    closed = true;
    // Stop stocking before the session goodbyes: a refill racing the
    // server's epilogue would die on a retired stock for nothing.
    if (sendRes)
        sendRes->stopRefill();
    if (recvRes)
        recvRes->stopRefill();
    if (dead_)
        return;
    sendInferOp(*ch, InferOp::Close);
    ch->flush();
    if (sendSession)
        sendSession->close();
    if (recvSession)
        recvSession->close();
}

} // namespace ironman::infer
