#include "infer/infer_server.h"

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "net/flight_recorder.h"
#include "net/wire_error.h"
#include "ppml/cot_engine.h"
#include "ppml/mlp_runner.h"
#include "ppml/secure_compute.h"

namespace ironman::infer {

namespace {

/**
 * Online-phase telemetry, summed across sessions. The histograms are
 * the serving-quality surface: commit latency is the server-side share
 * of the client's submit->collect time, group size and window
 * occupancy say how well pipelining is actually filling the negotiated
 * depth. The rounds/COTs/bytes counters aggregate MlpLayerStat totals
 * per forward — the live mirror of the bench-only StatSet breakdown.
 */
struct InferMetrics {
    metrics::Counter &requests =
        metrics::counter("infer_requests_total");
    metrics::Counter &images = metrics::counter("infer_images_total");
    metrics::Counter &cots = metrics::counter("infer_cots_total");
    metrics::Counter &rounds = metrics::counter("infer_rounds_total");
    metrics::Counter &onlineBytes =
        metrics::counter("infer_online_bytes_total");
    metrics::Histogram &commitUs =
        metrics::histogram("infer_commit_latency_us");
    metrics::Histogram &groupSize =
        metrics::histogram("infer_commit_group_size");
    metrics::Histogram &windowOccupancy =
        metrics::histogram("infer_window_occupancy");
};

InferMetrics &
inferMetrics()
{
    static InferMetrics m;
    return m;
}

} // namespace

InferServer::InferServer(Config cfg)
    : cfg_(cfg), server_(cfg.maxSessions)
{
    IRONMAN_CHECK(cfg_.maxBatch > 0, "need a nonzero batch bound");
    server_.setMetricsPrefix("infer");
    inferMetrics(); // register handles before any session traffic
    server_.setHandler([this](net::SocketChannel &ch, uint64_t sid) {
        serveSession(ch, sid);
    });
    server_.setSessionRecvTimeout(cfg_.sessionRecvTimeoutMs);
    server_.setSessionSendTimeout(cfg_.sessionSendTimeoutMs);
    server_.setIdleTimeout(cfg_.idleTimeoutMs);
}

InferServer::~InferServer()
{
    stop();
}

void
InferServer::attachOperatorStock(svc::OperatorStock &stock)
{
    IRONMAN_CHECK(!server_.listening(),
                  "attach the operator stock before listening");
    stock_ = &stock;
}

uint16_t
InferServer::listenTcp(uint16_t port)
{
    return server_.listenTcp(port);
}

void
InferServer::listenUnix(const std::string &path)
{
    server_.listenUnix(path);
}

void
InferServer::stop()
{
    // Retire the stock first: sessions parked in a stock wait (a dead
    // client's reservoir stops producing) unwind alongside the ones
    // the skeleton wakes by shutting their sockets down.
    if (stock_ && server_.listening())
        stock_->shutdown();
    server_.stop();
}

bool
InferServer::drain(uint64_t timeout_ms)
{
    // Opposite order from stop(): in-flight sessions must keep drawing
    // from the stock until their committed work is answered. drain()
    // has already force-closed any straggler by the time the stock is
    // retired, so nothing can park in a stock wait afterwards.
    const bool clean = server_.drain(timeout_ms);
    if (stock_)
        stock_->shutdown();
    return clean;
}

size_t
InferServer::activeSessions() const
{
    return server_.activeSessions();
}

void
InferServer::serveSession(net::SocketChannel &ch, uint64_t sid)
{
    net::FlightRecorder fr;
    fr.setSession(sid);
    try {
        if (cfg_.simulatedDelayUs > 0)
            ch.setSimulatedDelay(cfg_.simulatedDelayUs);
        if (cfg_.simulatedBandwidthBps > 0)
            ch.setSimulatedBandwidth(cfg_.simulatedBandwidthBps);
        InferHello hello;
        InferStatus st = recvInferHello(ch, &hello);
        fr.note("hello", uint32_t(st));
        // Policy on top of the structural checks.
        if (st == InferStatus::Ok && hello.batch > cfg_.maxBatch)
            st = InferStatus::BadBatch;
        if (st == InferStatus::Ok &&
            hello.supply == SupplyKind::Reservoir && !stock_)
            st = InferStatus::BadSupply;
        if (st == InferStatus::Ok &&
            hello.supply == SupplyKind::Engine &&
            !svc::paramsAllowed(hello.params.toFerretParams(),
                                cfg_.engineParamsAllowlist))
            st = InferStatus::ParamsNotAllowed;
        if (st == InferStatus::Ok &&
            hello.supply == SupplyKind::Reservoir && stock_) {
            // The named COT sessions must exist, be live, and belong
            // to the peer making this request — a foreign sid would
            // let one client consume (and on exit drop) another's
            // correlations. Address-level granularity, like the
            // quotas; recorded before the owner could read its
            // Accept, so a race cannot admit a thief first.
            const std::string peer = ch.peerAddress();
            if (stock_->peerOf(hello.sendSessionId) != peer ||
                stock_->peerOf(hello.recvSessionId) != peer)
                st = InferStatus::ForeignSession;
        }
        // Negotiate: clamp the requested depth to this server's bound
        // and echo the honored flags (recvInferHello already dropped
        // unknown bits). hello carries the NEGOTIATED values from
        // here on; v1 peers pin depth 1 / unpacked by construction.
        InferAccept accept;
        accept.status = st;
        accept.sessionId = sid;
        if (hello.version >= 2) {
            const uint16_t bound =
                cfg_.maxDepth > 0 ? cfg_.maxDepth : uint16_t(1);
            if (hello.depth > bound)
                hello.depth = bound;
            accept.depth = hello.depth;
            accept.flags = hello.flags;
            if (hello.flags & kInferFlagTrace) {
                // Adopt the wire context for every span this session
                // thread records, and stamp the accept with our clock
                // so the client can estimate the cross-party offset
                // from the RTT midpoint it measures anyway.
                trace::setContext(hello.traceId,
                                  hello.traceSampled != 0);
                trace::setThreadLabel("infer-session");
                accept.serverClockUs = trace::nowUs();
            }
        }
        sendInferAccept(ch, accept);
        ch.flush();
        fr.note("accept", uint32_t(st));
        if (st == InferStatus::Ok) {
            runSession(ch, sid, hello, fr);
            served.fetch_add(1, std::memory_order_relaxed);
        } else {
            rejected.fetch_add(1, std::memory_order_relaxed);
        }
    } catch (const net::WireError &e) {
        // A dying client must not take the server down. Classify the
        // fault here (the skeleton never sees this exception) and dump
        // the flight ring — the last opcodes before the unwind are the
        // forensic record a chaos run asserts on.
        server_.metrics().noteFailure(e.fault());
        fr.dump(sid, net::wireFaultName(e.fault()));
        IRONMAN_WARN("infer session %llu aborted (%s): %s",
                     (unsigned long long)sid,
                     net::wireFaultName(e.fault()), e.what());
    } catch (const std::exception &e) {
        server_.metrics().noteFailure(net::WireFault::Fatal);
        fr.dump(sid, "exception");
        IRONMAN_WARN("infer session %llu aborted: %s",
                     (unsigned long long)sid, e.what());
    }
}

void
InferServer::runSession(net::SocketChannel &ch, uint64_t sid,
                        const InferHello &hello,
                        net::FlightRecorder &fr)
{
    const ppml::MlpModelSpec &spec = *ppml::findMlpModel(hello.modelId);
    const unsigned width = hello.width;

    // The session's correlation supply, then the GMW engine over it.
    // Engine supply primes interactively here — the client constructs
    // its engine at the same protocol point (right after the Accept).
    std::unique_ptr<ppml::FerretCotEngine> engine;
    std::unique_ptr<svc::OperatorCotSupply> operatorSupply;
    ppml::CotSupply *supply = nullptr;
    if (hello.supply == SupplyKind::Engine) {
        engine = std::make_unique<ppml::FerretCotEngine>(
            ch, 1, hello.params.toFerretParams(), hello.setupSeed,
            cfg_.engineThreads);
        supply = engine.get();
    } else {
        // The stock sids are named from the CLIENT's perspective: the
        // client's Receiver-role session is the one where THIS party
        // holds (delta, q) — our send direction.
        operatorSupply = std::make_unique<svc::OperatorCotSupply>(
            *stock_, hello.recvSessionId, hello.sendSessionId);
        supply = operatorSupply.get();
    }

    // Free the session's banked halves promptly on every exit path;
    // the COT service's session-end sink is the backstop for hellos
    // that never reach this point.
    struct StockGuard
    {
        svc::OperatorStock *stock;
        uint64_t a, b;
        ~StockGuard()
        {
            if (stock) {
                stock->drop(a);
                stock->drop(b);
            }
        }
    } guard{hello.supply == SupplyKind::Reservoir ? stock_ : nullptr,
            hello.sendSessionId, hello.recvSessionId};

    ppml::SecureCompute sc(ch, 1, *supply, width);
    const bool packed =
        hello.version >= 2 && (hello.flags & kInferFlagPackedWire);
    sc.setWirePacking(packed);
    // Flags 0 (v1 peers, or v2 without the flag) = ripple: both ends
    // must run the same carry circuit, and absent-flag must degrade to
    // the baseline dialect.
    sc.setComparisonMode(hello.version >= 2 &&
                                 (hello.flags & kInferFlagLadderCmp)
                             ? ppml::CmpMode::Ladder
                             : ppml::CmpMode::Ripple);
    const bool stream =
        hello.version >= 2 && (hello.flags & kInferFlagStreamCommit);
    ppml::MlpRunner runner(spec, width);

    const size_t req_in = size_t(hello.batch) * spec.inputDim();
    const size_t req_out = size_t(hello.batch) * spec.outputDim();
    InferMetrics &im = inferMetrics();
    auto account = [&, cots_counted = size_t(0)](size_t reqs) mutable {
        requests.fetch_add(reqs, std::memory_order_relaxed);
        images.fetch_add(uint64_t(reqs) * hello.batch,
                         std::memory_order_relaxed);
        // Per commit, not at Close: an aborted session must not leave
        // its consumption uncounted next to counted images.
        const uint64_t consumed = sc.cotsConsumed() - cots_counted;
        cots.fetch_add(consumed, std::memory_order_relaxed);
        cots_counted = sc.cotsConsumed();
        im.requests.inc(reqs);
        im.images.inc(uint64_t(reqs) * hello.batch);
        im.cots.inc(consumed);
        // Live mirror of the bench-only StatSet breakdown: totals of
        // the last forward's per-layer rows (a short fixed vector — no
        // allocation on the warm path).
        for (const ppml::MlpLayerStat &ls : runner.layerStats()) {
            im.rounds.inc(ls.rounds);
            im.onlineBytes.inc(ls.bytes);
        }
    };

    if (hello.version < 2) {
        // PR 5 dialect: one untagged request per round trip.
        std::vector<uint64_t> x1(req_in);
        for (;;) {
            const InferOp op = recvInferOp(ch);
            fr.note("op", uint32_t(op));
            if (op != InferOp::Infer)
                break;
            const uint64_t t0_us = metrics::nowUs();
            recvShareVector(ch, x1.data(), x1.size());
            const std::vector<uint64_t> y1 =
                runner.forward(sc, ch, x1);
            sendShareVector(ch, y1.data(), y1.size());
            ch.flush();
            fr.note("infer", 0, req_out * sizeof(uint64_t));
            im.commitUs.recordSinceUs(t0_us);
            im.groupSize.record(1);
            im.windowOccupancy.record(1);
            account(1);
        }
        (void)sid;
        return;
    }

    // v2: tagged requests enqueue up to the negotiated depth; Commit
    // evaluates a group as ONE forward (effective batch = group *
    // batch — same lockstep call the client makes), then answers per
    // request in submission order. With streaming negotiated the
    // recv-ahead bound doubles and Commit carries an explicit group
    // count, so the NEXT group's Infer frames can cross the wire (and
    // enqueue here) while the current group's forward evaluates —
    // overlap the PipeliningSimulator occupancy model says a
    // fill/drain loop leaves on the table.
    const size_t recvAhead = stream ? 2 * size_t(hello.depth)
                                    : size_t(hello.depth);
    const bool traced =
        hello.version >= 2 && (hello.flags & kInferFlagTrace);
    const uint64_t sess_t0_us = trace::nowUs();
    std::vector<uint32_t> tags;
    std::vector<uint64_t> x1cat; // pending inputs, concatenated
    tags.reserve(recvAhead);
    x1cat.reserve(recvAhead * req_in);
    for (;;) {
        const InferOp op = recvInferOp(ch);
        fr.note("op", uint32_t(op));
        if (op == InferOp::Infer) {
            if (tags.size() >= recvAhead)
                throw net::WireError(
                    net::WireFault::Protocol,
                    "infer session: in-flight depth exceeded");
            tags.push_back(recvInferTag(ch));
            x1cat.resize(x1cat.size() + req_in);
            uint64_t *dst = x1cat.data() + x1cat.size() - req_in;
            if (packed)
                recvShareVectorPacked(ch, dst, req_in, width);
            else
                recvShareVector(ch, dst, req_in);
            fr.note("infer", tags.back(), req_in * sizeof(uint64_t));
            trace::instant("recv_infer", "infer", tags.back(),
                           req_in * sizeof(uint64_t));
        } else if (op == InferOp::Commit) {
            size_t group = tags.size();
            if (stream) {
                group = recvCommitCount(ch);
                if (group == 0 || group > tags.size())
                    throw net::WireError(
                        net::WireFault::Protocol,
                        "infer session: bad streaming commit count");
            } else if (tags.empty()) {
                continue; // nothing in flight: a no-op, not an error
            }
            const uint64_t t0_us = metrics::nowUs();
            // Occupancy at commit time: how much of the negotiated
            // window the client actually keeps in flight.
            im.windowOccupancy.record(tags.size());
            trace::Span commit_span("commit", "infer",
                                    uint32_t(group));
            const std::vector<uint64_t> xgroup(
                x1cat.begin(), x1cat.begin() + group * req_in);
            const std::vector<uint64_t> y1cat =
                runner.forward(sc, ch, xgroup);
            for (size_t r = 0; r < group; ++r) {
                sendInferTag(ch, tags[r]);
                const uint64_t *src = y1cat.data() + r * req_out;
                if (packed)
                    sendShareVectorPacked(ch, src, req_out, width);
                else
                    sendShareVector(ch, src, req_out);
            }
            ch.flush();
            commit_span.setArg(group * req_out * sizeof(uint64_t));
            fr.note("commit", uint32_t(group),
                    group * req_out * sizeof(uint64_t));
            im.commitUs.recordSinceUs(t0_us);
            im.groupSize.record(group);
            account(group);
            tags.erase(tags.begin(), tags.begin() + group);
            x1cat.erase(x1cat.begin(),
                        x1cat.begin() + group * req_in);
        } else {
            break;
        }
    }
    if (traced && trace::enabled()) {
        // The session closed voluntarily: publish its timeline as the
        // endpoint's "most recent completed session" document.
        trace::emitSpan("session", "infer", sess_t0_us,
                        trace::nowUs() - sess_t0_us, uint32_t(sid));
        trace::retainExport();
    }
    (void)sid;
}

} // namespace ironman::infer
