/**
 * @file
 * Wire protocol of the inference service (src/infer): the handshake
 * that negotiates WHAT to compute (a ppml::MlpModelSpec by wire id,
 * the fixed-point bitwidth, the images-per-request batch size, and
 * where the COT correlations come from), plus the length-framed
 * request/response opcodes that carry secret-shared tensors.
 *
 * One session, client's (= MPC party 0's) view:
 *
 *   connect ──► InferHello { magic, version, supply, model, width,
 *                            batch, setupSeed, cot session ids,
 *                            engine params }
 *           ◄── InferAccept { status, sessionId }
 *   [supply == Engine: both ends construct one dual-direction
 *    ppml::FerretCotEngine over THIS channel — the handshake's
 *    setupSeed seeds the dealer substitution, exactly like the COT
 *    service]
 *   loop:   ──► InferOp::Infer, batch*inputDim input shares (the
 *               server's share x1), then both ends run
 *               MlpRunner::forward in lockstep over this channel
 *           ◄── batch*outputDim output shares (the server's y1)
 *   final:  ──► InferOp::Close
 *
 * Supply negotiation is the tentpole's architectural point: with
 * SupplyKind::Reservoir the hello names two ALREADY-OPEN sessions on
 * the inference server's attached COT service — the client's
 * Sender-role session (its send direction; the server consumes the
 * mirror receiver half) and its Receiver-role session (recv
 * direction; server consumes the sender half). The online phase then
 * overlaps with background COT refill on both sides, the paper's
 * Sec. 5.2 architecture as served traffic. SupplyKind::Engine keeps
 * the in-process dual-direction engine on the inference channel as
 * the A/B baseline.
 *
 * Tensor elements travel as explicit little-endian u64 one per
 * value (shares are width-masked; the wire does not compress to
 * width — byte accounting reports the actual cost).
 */

#ifndef IRONMAN_INFER_WIRE_H
#define IRONMAN_INFER_WIRE_H

#include <cstdint>
#include <vector>

#include "net/channel.h"
#include "svc/wire.h"

namespace ironman::infer {

constexpr uint32_t kInferMagic = 0x49524946; ///< "IRIF"
constexpr uint16_t kInferWireVersion = 1;

/** Where a session's COT correlations come from. */
enum class SupplyKind : uint8_t
{
    /** Dual-direction FerretCotEngine on the inference channel. */
    Engine = 0,
    /**
     * Client: svc::ReservoirCotSupply over two COT-service sessions;
     * server: svc::OperatorCotSupply over the same sessions' operator
     * halves.
     */
    Reservoir = 1,
};

const char *supplyKindName(SupplyKind k);

/** Per-request opcodes (client to server). */
enum class InferOp : uint8_t
{
    Infer = 1, ///< one batch: input shares in, output shares out
    Close = 2, ///< end the session
};

/** Handshake outcome (server to client). */
enum class InferStatus : uint8_t
{
    Ok = 0,
    BadMagic = 1,
    BadVersion = 2,
    BadModel = 3,   ///< model id not in ppml::inferenceZoo()
    BadWidth = 4,   ///< width outside the model's overflow-free range
    BadBatch = 5,   ///< zero or above the server's maxBatch
    BadSupply = 6,  ///< unknown kind, or Reservoir with no COT service
    BadParams = 7,  ///< Engine supply with invalid FerretParams
    /** Valid engine params, but not on the server's allowlist. */
    ParamsNotAllowed = 8,
    /** Reservoir sids unknown, ended, or owned by another client. */
    ForeignSession = 9,
};

const char *inferStatusName(InferStatus s);

/** Client's opening message. */
struct InferHello
{
    uint16_t version = kInferWireVersion;
    SupplyKind supply = SupplyKind::Engine;
    uint32_t modelId = 0;
    uint8_t width = 32;
    uint32_t batch = 1;
    /** Engine supply: dealer seed of the dual-direction engine. */
    uint64_t setupSeed = 0;
    /** Reservoir supply: the client's Sender-role COT session id. */
    uint64_t sendSessionId = 0;
    /** Reservoir supply: the client's Receiver-role COT session id. */
    uint64_t recvSessionId = 0;
    /** Engine supply: the OT parameter set (ignored for Reservoir). */
    svc::WireParams params;
};

/** Server's reply. */
struct InferAccept
{
    InferStatus status = InferStatus::Ok;
    uint64_t sessionId = 0;
};

void sendInferHello(net::Channel &ch, const InferHello &h);

/**
 * Parse the peer's hello. Returns Ok and fills @p out, or the
 * structural rejection (magic/version/model/width/batch/params);
 * policy rejections (maxBatch, missing COT service) are the server's
 * to add.
 */
InferStatus recvInferHello(net::Channel &ch, InferHello *out);

void sendInferAccept(net::Channel &ch, const InferAccept &a);
InferAccept recvInferAccept(net::Channel &ch);

void sendInferOp(net::Channel &ch, InferOp op);
InferOp recvInferOp(net::Channel &ch);

/** One secret-shared tensor, explicit-LE u64 per element. */
void sendShareVector(net::Channel &ch, const uint64_t *shares,
                     size_t n);
void recvShareVector(net::Channel &ch, uint64_t *shares, size_t n);

} // namespace ironman::infer

#endif // IRONMAN_INFER_WIRE_H
