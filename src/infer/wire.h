/**
 * @file
 * Wire protocol of the inference service (src/infer): the handshake
 * that negotiates WHAT to compute (a ppml::MlpModelSpec by wire id,
 * the fixed-point bitwidth, the images-per-request batch size, and
 * where the COT correlations come from) and HOW the online bytes
 * travel (width-packed or legacy Block-wide lanes, and how many
 * requests may ride in flight), plus the length-framed
 * request/response opcodes that carry secret-shared tensors.
 *
 * Version 2 session, client's (= MPC party 0's) view:
 *
 *   connect ──► InferHello { magic, version, supply, model, width,
 *                            batch, setupSeed, cot session ids,
 *                            engine params, depth, flags }
 *           ◄── InferAccept { status, negotiated depth, negotiated
 *                             flags, sessionId }
 *   [supply == Engine: both ends construct one dual-direction
 *    ppml::FerretCotEngine over THIS channel — the handshake's
 *    setupSeed seeds the dealer substitution, exactly like the COT
 *    service]
 *   loop:   ──► InferOp::Infer, u32 tag, batch*inputDim input shares
 *               (the server's share x1) — ENQUEUED on both sides, up
 *               to the negotiated depth in flight
 *           ──► InferOp::Commit — both ends run ONE joint
 *               MlpRunner::forward over every pending request's
 *               concatenated shares (effective batch = in-flight
 *               count x batch, so the DReLU round chain is paid once
 *               per group, not once per request)
 *           ◄── per pending request, in submission order: u32 tag,
 *               batch*outputDim output shares (the server's y1)
 *   final:  ──► InferOp::Close
 *
 * Streaming commits (kInferFlagStreamCommit, v2): Commit carries a
 * u16 group COUNT and evaluates only the OLDEST count pending
 * requests, and the server accepts Infer frames for up to 2x the
 * negotiated depth — so the client can push group k+1's frames while
 * group k's forward is still evaluating, keeping the channel busy
 * during compute. Without the flag Commit has no count byte and
 * drains everything pending (the PR 6 wire, unchanged).
 *
 * Version negotiation: the server reads the 6-byte magic+version
 * prefix first and parses the rest in the hello's dialect; it replies
 * and serves in that dialect too. A v1 peer therefore negotiates
 * depth 1, unpacked wire, untagged immediate evaluation — exactly the
 * PR 5 protocol — against a v2 server.
 *
 * Flags (v2): kInferFlagPackedWire switches every online payload to
 * semantic width — chosen-OT lanes via SecureCompute::setWirePacking
 * (1-bit AND messages, width-bit MUX arms, raw derand bytes) and the
 * tensor shares below as width-bit LE lanes. The unmasked SHARES are
 * bit-identical either way (DESIGN.md invariant 14); packing is a
 * transcript property, negotiated so both ends agree.
 * kInferFlagLadderCmp selects the Kogge-Stone comparison ladder
 * (SecureCompute::setComparisonMode) — both ends must run the same
 * carry circuit, so it is negotiated exactly like packing; a v2 peer
 * that doesn't set it (or a v1 peer, flags 0) gets the ripple, and
 * the reconstructed outputs are identical either way (DESIGN.md
 * invariant 16). kInferFlagStreamCommit enables counted partial
 * commits (above). The server clamps the requested depth to its own
 * bound and echoes the result in the accept; unknown flag bits are
 * dropped, not rejected.
 *
 * Supply negotiation is unchanged from v1 (see SupplyKind).
 */

#ifndef IRONMAN_INFER_WIRE_H
#define IRONMAN_INFER_WIRE_H

#include <cstdint>
#include <vector>

#include "net/channel.h"
#include "svc/wire.h"

namespace ironman::infer {

constexpr uint32_t kInferMagic = 0x49524946; ///< "IRIF"
constexpr uint16_t kInferWireVersion = 2;
constexpr uint16_t kInferWireVersionV1 = 1; ///< PR 5 dialect, still served

/** Hello/accept flag bits (v2). */
constexpr uint16_t kInferFlagPackedWire = 0x1;
/** Kogge-Stone comparison ladder (unset = ripple baseline). */
constexpr uint16_t kInferFlagLadderCmp = 0x2;
/** Counted partial commits + 2x-depth recv-ahead (streaming). */
constexpr uint16_t kInferFlagStreamCommit = 0x4;
/**
 * Wire-propagated trace context (PR 10): the hello carries a 64-bit
 * trace id + sampled bit as trailing bytes, the accept returns the
 * server's monotonic clock sample (the client pairs it with the
 * hello->accept RTT midpoint for the cross-party clock-offset
 * estimate — see common/trace.h). Both trailers exist ONLY when this
 * bit is set on the respective message, so v1 peers and flagless v2
 * transcripts are byte-identical to the PR 8 wire.
 */
constexpr uint16_t kInferFlagTrace = 0x8;

/** Where a session's COT correlations come from. */
enum class SupplyKind : uint8_t
{
    /** Dual-direction FerretCotEngine on the inference channel. */
    Engine = 0,
    /**
     * Client: svc::ReservoirCotSupply over two COT-service sessions;
     * server: svc::OperatorCotSupply over the same sessions' operator
     * halves.
     */
    Reservoir = 1,
};

const char *supplyKindName(SupplyKind k);

/** Per-request opcodes (client to server). */
enum class InferOp : uint8_t
{
    Infer = 1,  ///< one batch: input shares in (v2: tagged, enqueued)
    Close = 2,  ///< end the session
    Commit = 3, ///< v2: jointly evaluate every pending request
};

/** Handshake outcome (server to client). */
enum class InferStatus : uint8_t
{
    Ok = 0,
    BadMagic = 1,
    BadVersion = 2,
    BadModel = 3,   ///< model id not in ppml::inferenceZoo()
    BadWidth = 4,   ///< width outside the model's overflow-free range
    BadBatch = 5,   ///< zero or above the server's maxBatch
    BadSupply = 6,  ///< unknown kind, or Reservoir with no COT service
    BadParams = 7,  ///< Engine supply with invalid FerretParams
    /** Valid engine params, but not on the server's allowlist. */
    ParamsNotAllowed = 8,
    /** Reservoir sids unknown, ended, or owned by another client. */
    ForeignSession = 9,
    BadDepth = 10, ///< v2 hello with zero in-flight depth
};

const char *inferStatusName(InferStatus s);

/** Client's opening message. */
struct InferHello
{
    uint16_t version = kInferWireVersion;
    SupplyKind supply = SupplyKind::Engine;
    uint32_t modelId = 0;
    uint8_t width = 32;
    uint32_t batch = 1;
    /** Engine supply: dealer seed of the dual-direction engine. */
    uint64_t setupSeed = 0;
    /** Reservoir supply: the client's Sender-role COT session id. */
    uint64_t sendSessionId = 0;
    /** Reservoir supply: the client's Receiver-role COT session id. */
    uint64_t recvSessionId = 0;
    /** Engine supply: the OT parameter set (ignored for Reservoir). */
    svc::WireParams params;
    /** v2: requested in-flight requests per session (server clamps). */
    uint16_t depth = 1;
    /** v2: requested wire properties (kInferFlag*). */
    uint16_t flags = kInferFlagPackedWire;
    /** v2 + kInferFlagTrace: the Dapper-style trace id this session's
     * spans correlate under on both parties (0 = let the client pick). */
    uint64_t traceId = 0;
    /** v2 + kInferFlagTrace: whether the chain is sampled (servers
     * adopt the bit; unsampled sessions negotiate but record nothing). */
    uint8_t traceSampled = 1;
};

/** Server's reply (depth/flags meaningful only for v2 hellos). */
struct InferAccept
{
    InferStatus status = InferStatus::Ok;
    uint16_t depth = 0; ///< negotiated in-flight bound
    uint16_t flags = 0; ///< negotiated wire properties
    uint64_t sessionId = 0;
    /** kInferFlagTrace only: the server's trace::nowUs() sample taken
     * while sending this accept — the client's clock-offset anchor. */
    uint64_t serverClockUs = 0;
};

void sendInferHello(net::Channel &ch, const InferHello &h);

/**
 * Parse the peer's hello in its own dialect (v1 hellos surface with
 * depth 1, flags 0). Returns Ok and fills @p out, or the structural
 * rejection (magic/version/model/width/batch/params/depth); policy
 * rejections (maxBatch, depth clamp, missing COT service) are the
 * server's to add.
 */
InferStatus recvInferHello(net::Channel &ch, InferHello *out);

/**
 * The accept codec is version-stable: status and sessionId sit where
 * v1 put them, depth/flags occupy former pad bytes v1 peers ignore.
 */
void sendInferAccept(net::Channel &ch, const InferAccept &a);
InferAccept recvInferAccept(net::Channel &ch);

void sendInferOp(net::Channel &ch, InferOp op);
InferOp recvInferOp(net::Channel &ch);

/** v2 request/response tag. */
void sendInferTag(net::Channel &ch, uint32_t tag);
uint32_t recvInferTag(net::Channel &ch);

/**
 * Streaming-commit group count (follows InferOp::Commit only when
 * kInferFlagStreamCommit was negotiated).
 */
void sendCommitCount(net::Channel &ch, uint16_t count);
uint16_t recvCommitCount(net::Channel &ch);

/** One secret-shared tensor, explicit-LE u64 per element (v1 wire). */
void sendShareVector(net::Channel &ch, const uint64_t *shares,
                     size_t n);
void recvShareVector(net::Channel &ch, uint64_t *shares, size_t n);

/**
 * Width-packed tensor: n width-bit LSB-first lanes, ceil(n*width/8)
 * bytes, no length prefix (n and width are negotiated session state).
 * Elements are masked to width on the way out and arrive masked.
 */
void sendShareVectorPacked(net::Channel &ch, const uint64_t *shares,
                           size_t n, unsigned width);
void recvShareVectorPacked(net::Channel &ch, uint64_t *shares, size_t n,
                           unsigned width);

} // namespace ironman::infer

#endif // IRONMAN_INFER_WIRE_H
