#include "infer/wire.h"

#include "net/codec.h"
#include "ppml/model_zoo.h"

namespace ironman::infer {

using net::getU16;
using net::getU32;
using net::getU64;
using net::putU16;
using net::putU32;
using net::putU64;

namespace {

// magic(4) version(2) supply(1) width(1) modelId(4) batch(4)
// setupSeed(8) sendSid(8) recvSid(8)
// params: prg(1) pad(3) n(8) k(8) t(8) lpnSeed(8) arity(4) weight(4)
constexpr size_t kInferHelloBytes =
    4 + 2 + 1 + 1 + 4 + 4 + 3 * 8 + (1 + 3 + 4 * 8 + 2 * 4);
// status(1) pad(7) sessionId(8)
constexpr size_t kInferAcceptBytes = 1 + 7 + 8;

} // namespace

const char *
supplyKindName(SupplyKind k)
{
    return k == SupplyKind::Engine ? "engine" : "reservoir";
}

const char *
inferStatusName(InferStatus s)
{
    switch (s) {
      case InferStatus::Ok: return "ok";
      case InferStatus::BadMagic: return "bad magic";
      case InferStatus::BadVersion: return "bad version";
      case InferStatus::BadModel: return "unknown model";
      case InferStatus::BadWidth: return "bad bitwidth";
      case InferStatus::BadBatch: return "bad batch size";
      case InferStatus::BadSupply: return "bad supply kind";
      case InferStatus::BadParams: return "bad params";
      case InferStatus::ParamsNotAllowed: return "params not allowed";
      case InferStatus::ForeignSession:
          return "cot session not owned by this client";
    }
    return "?";
}

void
sendInferHello(net::Channel &ch, const InferHello &h)
{
    uint8_t buf[kInferHelloBytes] = {};
    uint8_t *p = buf;
    putU32(p, kInferMagic);
    p += 4;
    putU16(p, h.version);
    p += 2;
    *p++ = uint8_t(h.supply);
    *p++ = h.width;
    putU32(p, h.modelId);
    p += 4;
    putU32(p, h.batch);
    p += 4;
    putU64(p, h.setupSeed);
    p += 8;
    putU64(p, h.sendSessionId);
    p += 8;
    putU64(p, h.recvSessionId);
    p += 8;
    *p = h.params.prg;
    p += 4; // 3 pad bytes
    putU64(p, h.params.n);
    p += 8;
    putU64(p, h.params.k);
    p += 8;
    putU64(p, h.params.t);
    p += 8;
    putU64(p, h.params.lpnSeed);
    p += 8;
    putU32(p, h.params.arity);
    p += 4;
    putU32(p, h.params.lpnWeight);
    ch.sendBytes(buf, sizeof(buf));
}

InferStatus
recvInferHello(net::Channel &ch, InferHello *out)
{
    uint8_t buf[kInferHelloBytes];
    ch.recvBytes(buf, sizeof(buf));
    const uint8_t *p = buf;
    if (getU32(p) != kInferMagic)
        return InferStatus::BadMagic;
    p += 4;
    out->version = getU16(p);
    p += 2;
    if (out->version != kInferWireVersion)
        return InferStatus::BadVersion;
    const uint8_t supply = *p++;
    if (supply > uint8_t(SupplyKind::Reservoir))
        return InferStatus::BadSupply;
    out->supply = SupplyKind(supply);
    out->width = *p++;
    out->modelId = getU32(p);
    p += 4;
    out->batch = getU32(p);
    p += 4;
    out->setupSeed = getU64(p);
    p += 8;
    out->sendSessionId = getU64(p);
    p += 8;
    out->recvSessionId = getU64(p);
    p += 8;
    out->params.prg = *p;
    p += 4;
    out->params.n = getU64(p);
    p += 8;
    out->params.k = getU64(p);
    p += 8;
    out->params.t = getU64(p);
    p += 8;
    out->params.lpnSeed = getU64(p);
    p += 8;
    out->params.arity = getU32(p);
    p += 4;
    out->params.lpnWeight = getU32(p);

    const ppml::MlpModelSpec *spec =
        ppml::findMlpModel(out->modelId);
    if (!spec)
        return InferStatus::BadModel;
    if (!spec->widthOk(out->width))
        return InferStatus::BadWidth;
    if (out->batch == 0)
        return InferStatus::BadBatch;
    if (out->supply == SupplyKind::Engine &&
        !svc::wireParamsValid(out->params))
        return InferStatus::BadParams;
    if (out->supply == SupplyKind::Reservoir &&
        (out->sendSessionId == 0 || out->recvSessionId == 0 ||
         out->sendSessionId == out->recvSessionId))
        return InferStatus::BadSupply;
    return InferStatus::Ok;
}

void
sendInferAccept(net::Channel &ch, const InferAccept &a)
{
    uint8_t buf[kInferAcceptBytes] = {};
    buf[0] = uint8_t(a.status);
    putU64(buf + 8, a.sessionId);
    ch.sendBytes(buf, sizeof(buf));
}

InferAccept
recvInferAccept(net::Channel &ch)
{
    uint8_t buf[kInferAcceptBytes];
    ch.recvBytes(buf, sizeof(buf));
    InferAccept a;
    a.status = InferStatus(buf[0]);
    a.sessionId = getU64(buf + 8);
    return a;
}

void
sendInferOp(net::Channel &ch, InferOp op)
{
    uint8_t b = uint8_t(op);
    ch.sendBytes(&b, 1);
}

InferOp
recvInferOp(net::Channel &ch)
{
    uint8_t b = 0;
    ch.recvBytes(&b, 1);
    return InferOp(b);
}

void
sendShareVector(net::Channel &ch, const uint64_t *shares, size_t n)
{
    uint8_t buf[512];
    while (n > 0) {
        const size_t chunk = n < sizeof(buf) / 8 ? n : sizeof(buf) / 8;
        for (size_t i = 0; i < chunk; ++i)
            putU64(buf + 8 * i, shares[i]);
        ch.sendBytes(buf, 8 * chunk);
        shares += chunk;
        n -= chunk;
    }
}

void
recvShareVector(net::Channel &ch, uint64_t *shares, size_t n)
{
    uint8_t buf[512];
    while (n > 0) {
        const size_t chunk = n < sizeof(buf) / 8 ? n : sizeof(buf) / 8;
        ch.recvBytes(buf, 8 * chunk);
        for (size_t i = 0; i < chunk; ++i)
            shares[i] = getU64(buf + 8 * i);
        shares += chunk;
        n -= chunk;
    }
}

} // namespace ironman::infer
