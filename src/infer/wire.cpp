#include "infer/wire.h"

#include <vector>

#include "common/logging.h"
#include "net/codec.h"
#include "ppml/model_zoo.h"

namespace ironman::infer {

using net::getU16;
using net::getU32;
using net::getU64;
using net::putU16;
using net::putU32;
using net::putU64;

namespace {

// v1 hello body (after the 6-byte magic+version prefix):
// supply(1) width(1) modelId(4) batch(4) setupSeed(8) sendSid(8)
// recvSid(8)
// params: prg(1) pad(3) n(8) k(8) t(8) lpnSeed(8) arity(4) weight(4)
constexpr size_t kInferHelloPrefixBytes = 4 + 2;
constexpr size_t kInferHelloV1BodyBytes =
    1 + 1 + 4 + 4 + 3 * 8 + (1 + 3 + 4 * 8 + 2 * 4);
// v2 body appends depth(2) flags(2).
constexpr size_t kInferHelloV2BodyBytes = kInferHelloV1BodyBytes + 2 + 2;
// kInferFlagTrace trailer: traceId(8) sampled(1), present exactly when
// the hello's flag word carries the bit — so flagless transcripts stay
// byte-identical and the fixed-size body parse stays version-driven.
constexpr size_t kInferHelloTraceBytes = 8 + 1;
// status(1) pad(1) depth(2) flags(2) pad(2) sessionId(8) — depth and
// flags live in bytes that were pad in v1, so one codec serves both.
constexpr size_t kInferAcceptBytes = 1 + 1 + 2 + 2 + 2 + 8;
// Accept trailer when the echoed flags carry kInferFlagTrace: the
// server's monotonic clock sample (8), the clock-offset anchor.
constexpr size_t kInferAcceptTraceBytes = 8;

constexpr uint16_t kKnownFlags = kInferFlagPackedWire |
                                 kInferFlagLadderCmp |
                                 kInferFlagStreamCommit | kInferFlagTrace;

size_t
putHelloBody(uint8_t *p, const InferHello &h)
{
    const uint8_t *base = p;
    *p++ = uint8_t(h.supply);
    *p++ = h.width;
    putU32(p, h.modelId);
    p += 4;
    putU32(p, h.batch);
    p += 4;
    putU64(p, h.setupSeed);
    p += 8;
    putU64(p, h.sendSessionId);
    p += 8;
    putU64(p, h.recvSessionId);
    p += 8;
    *p = h.params.prg;
    p += 4; // 3 pad bytes
    putU64(p, h.params.n);
    p += 8;
    putU64(p, h.params.k);
    p += 8;
    putU64(p, h.params.t);
    p += 8;
    putU64(p, h.params.lpnSeed);
    p += 8;
    putU32(p, h.params.arity);
    p += 4;
    putU32(p, h.params.lpnWeight);
    p += 4;
    if (h.version >= 2) {
        putU16(p, h.depth);
        p += 2;
        putU16(p, h.flags);
        p += 2;
        if (h.flags & kInferFlagTrace) {
            putU64(p, h.traceId);
            p += 8;
            *p++ = h.traceSampled ? 1 : 0;
        }
    }
    return size_t(p - base);
}

void
getHelloBody(const uint8_t *p, InferHello *out)
{
    out->supply = SupplyKind(*p++);
    out->width = *p++;
    out->modelId = getU32(p);
    p += 4;
    out->batch = getU32(p);
    p += 4;
    out->setupSeed = getU64(p);
    p += 8;
    out->sendSessionId = getU64(p);
    p += 8;
    out->recvSessionId = getU64(p);
    p += 8;
    out->params.prg = *p;
    p += 4;
    out->params.n = getU64(p);
    p += 8;
    out->params.k = getU64(p);
    p += 8;
    out->params.t = getU64(p);
    p += 8;
    out->params.lpnSeed = getU64(p);
    p += 8;
    out->params.arity = getU32(p);
    p += 4;
    out->params.lpnWeight = getU32(p);
    p += 4;
    if (out->version >= 2) {
        out->depth = getU16(p);
        p += 2;
        // Unknown flag bits are dropped (forward compatibility), not
        // rejected: a newer client degrades to what we both speak.
        out->flags = getU16(p) & kKnownFlags;
    } else {
        out->depth = 1;
        out->flags = 0;
    }
}

} // namespace

const char *
supplyKindName(SupplyKind k)
{
    return k == SupplyKind::Engine ? "engine" : "reservoir";
}

const char *
inferStatusName(InferStatus s)
{
    switch (s) {
      case InferStatus::Ok: return "ok";
      case InferStatus::BadMagic: return "bad magic";
      case InferStatus::BadVersion: return "bad version";
      case InferStatus::BadModel: return "unknown model";
      case InferStatus::BadWidth: return "bad bitwidth";
      case InferStatus::BadBatch: return "bad batch size";
      case InferStatus::BadSupply: return "bad supply kind";
      case InferStatus::BadParams: return "bad params";
      case InferStatus::ParamsNotAllowed: return "params not allowed";
      case InferStatus::ForeignSession:
          return "cot session not owned by this client";
      case InferStatus::BadDepth: return "bad in-flight depth";
    }
    return "?";
}

void
sendInferHello(net::Channel &ch, const InferHello &h)
{
    uint8_t buf[kInferHelloPrefixBytes + kInferHelloV2BodyBytes +
                kInferHelloTraceBytes] = {};
    putU32(buf, kInferMagic);
    putU16(buf + 4, h.version);
    const size_t body = putHelloBody(buf + kInferHelloPrefixBytes, h);
    ch.sendBytes(buf, kInferHelloPrefixBytes + body);
}

InferStatus
recvInferHello(net::Channel &ch, InferHello *out)
{
    // Magic + version first; the rest is parsed in the hello's own
    // dialect, so a v1 peer can be served without renegotiation.
    uint8_t prefix[kInferHelloPrefixBytes];
    ch.recvBytes(prefix, sizeof(prefix));
    if (getU32(prefix) != kInferMagic)
        return InferStatus::BadMagic;
    out->version = getU16(prefix + 4);
    if (out->version != kInferWireVersionV1 &&
        out->version != kInferWireVersion)
        return InferStatus::BadVersion;

    uint8_t body[kInferHelloV2BodyBytes];
    ch.recvBytes(body, out->version >= 2 ? kInferHelloV2BodyBytes
                                         : kInferHelloV1BodyBytes);
    if (uint8_t(body[0]) > uint8_t(SupplyKind::Reservoir))
        return InferStatus::BadSupply;
    getHelloBody(body, out);
    if (out->version >= 2 && (out->flags & kInferFlagTrace)) {
        // The trace trailer travels iff the flag bit is set, so both
        // ends agree on the body length without a second negotiation.
        uint8_t trailer[kInferHelloTraceBytes];
        ch.recvBytes(trailer, sizeof(trailer));
        out->traceId = getU64(trailer);
        out->traceSampled = trailer[8] != 0;
    } else {
        out->traceId = 0;
        out->traceSampled = 0;
    }

    const ppml::MlpModelSpec *spec =
        ppml::findMlpModel(out->modelId);
    if (!spec)
        return InferStatus::BadModel;
    if (!spec->widthOk(out->width))
        return InferStatus::BadWidth;
    if (out->batch == 0)
        return InferStatus::BadBatch;
    if (out->depth == 0)
        return InferStatus::BadDepth;
    if (out->supply == SupplyKind::Engine &&
        !svc::wireParamsValid(out->params))
        return InferStatus::BadParams;
    if (out->supply == SupplyKind::Reservoir &&
        (out->sendSessionId == 0 || out->recvSessionId == 0 ||
         out->sendSessionId == out->recvSessionId))
        return InferStatus::BadSupply;
    return InferStatus::Ok;
}

void
sendInferAccept(net::Channel &ch, const InferAccept &a)
{
    uint8_t buf[kInferAcceptBytes + kInferAcceptTraceBytes] = {};
    buf[0] = uint8_t(a.status);
    putU16(buf + 2, a.depth);
    putU16(buf + 4, a.flags);
    putU64(buf + 8, a.sessionId);
    size_t len = kInferAcceptBytes;
    if (a.flags & kInferFlagTrace) {
        putU64(buf + len, a.serverClockUs);
        len += kInferAcceptTraceBytes;
    }
    ch.sendBytes(buf, len);
}

InferAccept
recvInferAccept(net::Channel &ch)
{
    uint8_t buf[kInferAcceptBytes];
    ch.recvBytes(buf, sizeof(buf));
    InferAccept a;
    a.status = InferStatus(buf[0]);
    a.depth = getU16(buf + 2);
    a.flags = getU16(buf + 4) & kKnownFlags;
    a.sessionId = getU64(buf + 8);
    if (a.flags & kInferFlagTrace) {
        uint8_t trailer[kInferAcceptTraceBytes];
        ch.recvBytes(trailer, sizeof(trailer));
        a.serverClockUs = getU64(trailer);
    }
    return a;
}

void
sendInferOp(net::Channel &ch, InferOp op)
{
    uint8_t b = uint8_t(op);
    ch.sendBytes(&b, 1);
}

InferOp
recvInferOp(net::Channel &ch)
{
    uint8_t b = 0;
    ch.recvBytes(&b, 1);
    return InferOp(b);
}

void
sendInferTag(net::Channel &ch, uint32_t tag)
{
    uint8_t buf[4];
    putU32(buf, tag);
    ch.sendBytes(buf, sizeof(buf));
}

uint32_t
recvInferTag(net::Channel &ch)
{
    uint8_t buf[4];
    ch.recvBytes(buf, sizeof(buf));
    return getU32(buf);
}

void
sendCommitCount(net::Channel &ch, uint16_t count)
{
    uint8_t buf[2];
    putU16(buf, count);
    ch.sendBytes(buf, sizeof(buf));
}

uint16_t
recvCommitCount(net::Channel &ch)
{
    uint8_t buf[2];
    ch.recvBytes(buf, sizeof(buf));
    return getU16(buf);
}

void
sendShareVector(net::Channel &ch, const uint64_t *shares, size_t n)
{
    uint8_t buf[512];
    while (n > 0) {
        const size_t chunk = n < sizeof(buf) / 8 ? n : sizeof(buf) / 8;
        for (size_t i = 0; i < chunk; ++i)
            putU64(buf + 8 * i, shares[i]);
        ch.sendBytes(buf, 8 * chunk);
        shares += chunk;
        n -= chunk;
    }
}

void
recvShareVector(net::Channel &ch, uint64_t *shares, size_t n)
{
    uint8_t buf[512];
    while (n > 0) {
        const size_t chunk = n < sizeof(buf) / 8 ? n : sizeof(buf) / 8;
        ch.recvBytes(buf, 8 * chunk);
        for (size_t i = 0; i < chunk; ++i)
            shares[i] = getU64(buf + 8 * i);
        shares += chunk;
        n -= chunk;
    }
}

void
sendShareVectorPacked(net::Channel &ch, const uint64_t *shares, size_t n,
                      unsigned width)
{
    IRONMAN_CHECK(width >= 1 && width <= 64);
    const uint64_t mask =
        width == 64 ? ~uint64_t(0) : (uint64_t(1) << width) - 1;
    std::vector<uint8_t> buf(net::packedLaneBytes(n, width), 0);
    for (size_t i = 0; i < n; ++i)
        net::putBitsLE(buf.data(), i * size_t(width), width,
                       shares[i] & mask);
    ch.sendBytes(buf.data(), buf.size());
}

void
recvShareVectorPacked(net::Channel &ch, uint64_t *shares, size_t n,
                      unsigned width)
{
    IRONMAN_CHECK(width >= 1 && width <= 64);
    std::vector<uint8_t> buf(net::packedLaneBytes(n, width));
    ch.recvBytes(buf.data(), buf.size());
    for (size_t i = 0; i < n; ++i)
        shares[i] = net::getBitsLE(buf.data(), i * size_t(width), width);
}

} // namespace ironman::infer
