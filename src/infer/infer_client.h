/**
 * @file
 * Client of the inference service: MPC party 0, the input owner.
 *
 * One InferClient is one inference session: it handshakes model /
 * bitwidth / batch / supply over infer/wire.h, then serves infer()
 * calls — share the plaintext input tensor, hand the server its
 * share, drive the layered GMW evaluation in lockstep over the same
 * socket, receive the server's output share, reconstruct.
 *
 * v2 adds request-level pipelining: submit() enqueues up to the
 * negotiated depth of tagged requests WITHOUT waiting for results;
 * collect()/drain() trigger the joint evaluation (one Commit, one
 * MlpRunner::forward over the concatenated shares) and reconstruct
 * the responses in submission order. infer() stays the one-shot
 * convenience (submit + collect) and is bit-identical to PR 5 for a
 * depth-1 session. NOTE: a depth-k group is evaluated as ONE forward
 * with effective batch k * batch, so its shares follow the GROUPED
 * tweak sequence — bit-identical to runLocalMlpInference over the
 * concatenated requests, while dense share-local truncation may
 * differ from k sequential calls within mlpTruncationErrorBound.
 *
 * Supply kinds (the handshake's SupplyKind):
 *
 *   - Engine: a dual-direction ppml::FerretCotEngine on the inference
 *     channel, constructed right after the Accept in lockstep with
 *     the server's (the in-process baseline, served).
 *   - Reservoir: the client opens TWO sessions of opposite roles on
 *     the inference server's attached COT service and stocks them
 *     through background svc::Reservoirs sized from the model's COT
 *     estimate (MlpModelSpec::cotsPerImage * batch, via
 *     Reservoir::Options::sizedFor) — the online phase draws from
 *     local stock and overlaps with refill, the paper's architecture.
 *
 * Outputs are bit-identical to ppml::runLocalMlpInference for equal
 * (model, width, share seed, request sequence) regardless of supply
 * kind — the GMW shares are deterministic given the input shares (see
 * mlp_runner.h) — which is what tests/test_infer.cpp pins down.
 */

#ifndef IRONMAN_INFER_INFER_CLIENT_H
#define IRONMAN_INFER_INFER_CLIENT_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "infer/wire.h"
#include "net/socket_channel.h"
#include "ot/ferret_params.h"
#include "ppml/cot_engine.h"
#include "ppml/mlp_runner.h"
#include "ppml/secure_compute.h"
#include "svc/cot_client.h"
#include "svc/reservoir.h"

namespace ironman::infer {

class InferClient
{
  public:
    struct Options
    {
        uint32_t modelId = 1;
        unsigned width = 32;
        uint32_t batch = 1;
        SupplyKind supply = SupplyKind::Engine;
        /** Engine supply: dealer seed of the dual-direction engine. */
        uint64_t setupSeed = 1;
        /** Input-sharing tape; equal seeds give equal share streams. */
        uint64_t shareSeed = 0x5eedf00d;
        /** Engine supply: the OT parameter set (both ends build it). */
        ot::FerretParams params = ot::tinyTestParams();
        /** Engine supply: engine worker width. */
        int threads = 1;
        /**
         * Requested in-flight requests per session (v2); the server
         * clamps to its own bound — read negotiatedDepth() after
         * construction. submit() auto-commits at the negotiated depth.
         */
        uint16_t depth = 1;
        /** Request width-packed online payloads (v2, default on). */
        bool packedWire = true;
        /**
         * Request the Kogge-Stone comparison ladder (v2, default on).
         * The server echoes the honored flag; against a v1 dialect
         * the session degrades to the ripple baseline, and the
         * reconstructed outputs are bit-identical either way
         * (DESIGN.md invariant 16).
         */
        bool ladderCmp = true;
        /**
         * Streaming commits (v2, default off): submit() keeps up to
         * 2x the negotiated depth in flight and commits the OLDEST
         * depth-sized group, so that group's evaluation overlaps the
         * next group's Infer frames crossing the wire. Grouping
         * boundaries match the non-streaming client for the same
         * submit/collect pattern, so results stay bit-identical.
         */
        bool streamCommit = false;
        /**
         * Pick the in-flight depth from the measured handshake RTT
         * instead of `depth`: request a deep window (the server
         * clamps), then run at ceil(group_rounds * rtt /
         * depthBudgetUs) — slow links amortize the round chain over
         * more requests, fast links don't batch for nothing.
         * Re-measured and re-tuned on every reconnect.
         */
        bool depthAuto = false;
        /** Auto-depth: per-request share of group latency (us). */
        uint64_t depthBudgetUs = 500;
        /**
         * Dialect to speak. kInferWireVersionV1 pins the PR 5 protocol
         * (depth 1, unpacked, untagged) against any server — the
         * mixed-version compatibility knob tests exercise.
         */
        uint16_t wireVersion = kInferWireVersion;
        /**
         * Request wire-propagated trace context (v2, default off):
         * the hello carries a 64-bit trace id + sampled bit
         * (kInferFlagTrace) so both parties' span recorders correlate
         * under one id, and the accept returns the server's clock
         * sample — paired with the hello/accept RTT midpoint this
         * yields the clock-offset estimate trace_merge aligns the two
         * exports with (read it back via peerClockOffsetUs()). The
         * flag changes ONLY the handshake trailer, never online
         * bytes; it does not by itself enable recording (that is
         * IRONMAN_TRACE / trace::setEnabled).
         */
        bool traceWire = false;
        /** Trace id to propagate (0 = generate one per dial). */
        uint64_t traceId = 0;
        /** Sampled bit to propagate (unsampled = negotiate only). */
        bool traceSampled = true;
        /** Simulated one-way latency on this end (bench harness). */
        uint64_t simulatedDelayUs = 0;

        /**
         * Survive a lost server: when a retryable wire error lands
         * mid-session (daemon killed, connection reset, deadline), tear
         * the whole transport down — inference channel, COT sessions,
         * reservoirs, engine — redial under `retry`'s backoff/budget,
         * re-handshake with the SAME seeds, and resubmit every
         * UNCOMMITTED request from its stored shares. Requests whose
         * Commit was already on the wire are NOT retried (the server
         * may have evaluated them; re-running could answer twice) —
         * they surface as Result{ok=false} with the triggering error.
         * Requires a connectTcp* factory (it records the endpoints)
         * and a v2 session. Off by default: a bench run would rather
         * die loudly than silently remeasure a reconnect.
         */
        bool autoReconnect = false;
        svc::RetryPolicy retry;
        /** Observer of reconnect attempts (the --chaos printer). */
        svc::RetryEventHook retryHook;
    };

    /** One reconstructed response (tags are submit()'s return). */
    struct Result
    {
        uint32_t tag = 0;
        std::vector<int64_t> outputs;
        /**
         * false = this request's Commit raced a session loss and its
         * answer is unknowable (outputs empty, error says why). Only
         * autoReconnect sessions produce failed Results; without it
         * the error throws instead.
         */
        bool ok = true;
        std::string error;
        /**
         * Submit-to-reconstruction time (us) of this request, also
         * recorded in the process registry histogram
         * `infer_client_request_latency_us` — the client-side mirror
         * of the server's commit-latency histogram.
         */
        uint64_t latencyUs = 0;
    };

    /**
     * Engine-supply session over an already-connected channel. Throws
     * std::runtime_error when the server rejects the hello.
     */
    InferClient(std::unique_ptr<net::SocketChannel> ch, Options opt);

    /**
     * Reservoir-supply session: @p send_session / @p recv_session are
     * connected Sender-/Receiver-role sessions on the COT service
     * ATTACHED to this inference server. The client owns them (and
     * their refill reservoirs) for the life of the session.
     */
    InferClient(std::unique_ptr<net::SocketChannel> ch,
                std::unique_ptr<svc::CotClient> send_session,
                std::unique_ptr<svc::CotClient> recv_session,
                Options opt);

    /** Connect + handshake, Engine supply. */
    static std::unique_ptr<InferClient>
    connectTcp(const std::string &host, uint16_t port, Options opt);

    /**
     * Connect + handshake, Reservoir supply: dials the inference
     * server at @p host:@p port and the COT service at @p cot_port
     * (two sessions, seeds derived from opt.setupSeed).
     */
    static std::unique_ptr<InferClient>
    connectTcpReservoir(const std::string &host, uint16_t port,
                        const std::string &cot_host, uint16_t cot_port,
                        Options opt);

    ~InferClient();

    InferClient(const InferClient &) = delete;
    InferClient &operator=(const InferClient &) = delete;

    /**
     * One request: @p inputs holds batch * inputDim plaintext
     * fixed-point values; returns batch * outputDim reconstructed
     * outputs (exact GMW reconstruction; dense truncation is the
     * local approximation, see mlpTruncationErrorBound).
     */
    std::vector<int64_t> infer(const std::vector<int64_t> &inputs);

    /**
     * Pipelined issue half: share @p inputs, ship the server's share
     * tagged, and return immediately (unless this submission fills the
     * negotiated depth, which triggers the commit inline). Responses
     * come back through collect()/drain() in submission order. On a
     * v1 session this degrades to an immediate infer() whose result
     * is parked for collect().
     */
    uint32_t submit(const std::vector<int64_t> &inputs);

    /**
     * Drain half: the oldest un-collected response, committing the
     * pending group first when nothing is ready. It is a bug to call
     * with no submission outstanding.
     */
    Result collect();

    /** Commit and collect everything outstanding, in order. */
    std::vector<Result> drain();

    /** Submitted but not yet committed requests. */
    size_t inFlight() const { return pendingTags.size(); }

    const ppml::MlpModelSpec &model() const { return spec_; }
    unsigned width() const { return opt_.width; }
    uint64_t sessionId() const { return sid; }
    SupplyKind supply() const { return opt_.supply; }

    /** Server-clamped in-flight bound (1 on a v1 session). */
    uint16_t negotiatedDepth() const { return depth_; }

    /** Whether the session's online payloads travel width-packed. */
    bool packedWire() const { return packed_; }

    /** Negotiated comparison circuit (Ripple on v1 sessions). */
    ppml::CmpMode
    comparisonMode() const
    {
        return ladder_ ? ppml::CmpMode::Ladder : ppml::CmpMode::Ripple;
    }

    /** Whether counted streaming commits were negotiated. */
    bool streaming() const { return stream_; }

    /** Handshake round-trip time of the current dial (us). */
    uint64_t measuredRttUs() const { return rttUs_; }

    /** Whether the trace-context flag was negotiated. */
    bool traceNegotiated() const { return traceOn_; }

    /** Trace id of the current dial (0 = trace flag not negotiated). */
    uint64_t traceId() const { return traceId_; }

    /**
     * Server clock minus client clock (us), estimated from the accept's
     * clock sample and the handshake RTT midpoint (Cristian); 0 until
     * a traced handshake completes. Loopback pairs share the monotonic
     * clock, so the estimate there is the measurement error (≈ RTT/2).
     */
    int64_t peerClockOffsetUs() const { return clockOffsetUs_; }

    /** Direction changes on the inference channel (2 per round). */
    uint64_t onlineTurns() const { return ch->turns(); }

    uint64_t requestsRun() const { return requests; }

    /** Successful session recoveries (autoReconnect only). */
    uint64_t reconnects() const { return reconnectCount; }

    /** Correlations this party consumed (both directions). */
    size_t cotsConsumed() const;

    /** Online bytes this endpoint pushed on the inference channel. */
    uint64_t onlineBytesSent() const { return ch->bytesSent(); }

    /** Mirror direction — sent + received covers both parties. */
    uint64_t onlineBytesReceived() const { return ch->bytesReceived(); }

    /** Preprocessing bytes pushed on the COT sessions (Reservoir). */
    uint64_t preprocBytesSent() const;

    /** Per-layer costs of the last request (party-0 view). */
    const std::vector<ppml::MlpLayerStat> &layerStats() const;

    /** End the session politely; further infer() calls are bugs. */
    void close();

  private:
    void handshake();
    void commitPending();
    void commitGroup(size_t group);
    void buildReservoirs();
    bool canRecover(const std::exception &e) const;
    void reconnect(const std::string &cause);
    void redial();
    void resubmitPending();
    void failPendingFrom(size_t answered, size_t group,
                         const std::string &what);

    std::unique_ptr<net::SocketChannel> ch;
    Options opt_;
    ppml::MlpModelSpec spec_;
    uint64_t sid = 0;
    bool closed = false;
    bool dead_ = false; ///< recovery budget spent: session is gone

    // Recorded by the connectTcp* factories; recovery needs somewhere
    // to redial (a session over a caller-supplied channel cannot).
    std::string host_;
    uint16_t port_ = 0;
    std::string cotHost_;
    uint16_t cotPort_ = 0;
    bool endpointsKnown_ = false;
    uint64_t reconnectCount = 0;
    uint16_t depth_ = 1; ///< negotiated (and auto-tuned) group size
    bool packed_ = false; ///< negotiated wire packing
    bool ladder_ = false; ///< negotiated Kogge-Stone comparison
    bool stream_ = false; ///< negotiated streaming commits
    uint64_t rttUs_ = 0;  ///< handshake RTT of the current dial
    bool traceOn_ = false;     ///< negotiated trace context
    uint64_t traceId_ = 0;     ///< propagated trace id (0 = none)
    int64_t clockOffsetUs_ = 0; ///< server clock - client clock
    uint32_t nextTag = 1;

    // Engine supply.
    std::unique_ptr<ppml::FerretCotEngine> engine;

    // Reservoir supply (declaration order = teardown order reversed:
    // reservoirs stop before their sessions close).
    std::unique_ptr<svc::CotClient> sendSession;
    std::unique_ptr<svc::CotClient> recvSession;
    std::unique_ptr<svc::Reservoir> sendRes;
    std::unique_ptr<svc::Reservoir> recvRes;
    std::unique_ptr<svc::ReservoirCotSupply> reservoirSupply;

    std::unique_ptr<ppml::SecureCompute> sc;
    std::unique_ptr<ppml::MlpRunner> runner;
    Rng shareRng;
    uint64_t requests = 0;

    std::vector<uint64_t> x0, x1, y1; ///< staging, reused per request

    // Pipelining state: submitted-but-uncommitted requests (tags plus
    // BOTH parties' concatenated input shares — x1 is stored so a
    // reconnect can resubmit the exact same shares without touching
    // the share tape) and committed-but-uncollected responses in
    // submission order.
    std::vector<uint32_t> pendingTags;
    std::vector<uint64_t> pendingX0;
    std::vector<uint64_t> pendingX1;
    std::vector<uint64_t> pendingT0Us; ///< submit() stamps, per tag
    std::deque<Result> ready;
};

} // namespace ironman::infer

#endif // IRONMAN_INFER_INFER_CLIENT_H
