#include "common/stats.h"

#include <sstream>

namespace ironman {

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

void
StatSet::merge(const StatSet &o)
{
    // Self-merge is a no-op, not a doubling: iterating a map while
    // inserting into it is also UB-adjacent, so bail out first.
    if (&o == this)
        return;
    for (const auto &[name, value] : o.counters)
        counters[name] += value;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters)
        os << name << "=" << value << "\n";
    return os.str();
}

} // namespace ironman
