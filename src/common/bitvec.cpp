#include "common/bitvec.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace ironman {

BitVec::BitVec(size_t n, bool value)
    : numBits(n), words((n + 63) / 64, value ? ~0ULL : 0ULL)
{
    // Clear any bits beyond the logical length so popcount/== stay exact.
    if (value && (n & 63))
        words.back() &= (1ULL << (n & 63)) - 1;
}

void
BitVec::pushBack(bool v)
{
    if ((numBits & 63) == 0)
        words.push_back(0);
    ++numBits;
    set(numBits - 1, v);
}

void
BitVec::resize(size_t n)
{
    words.resize((n + 63) / 64, 0);
    if (n < numBits && (n & 63))
        words.back() &= (1ULL << (n & 63)) - 1;
    numBits = n;
}

void
BitVec::assignRange(const BitVec &src, size_t offset, size_t n)
{
    IRONMAN_CHECK(this != &src, "assignRange cannot alias its source");
    IRONMAN_CHECK(offset + n <= src.numBits);
    resize(n);

    const size_t w0 = offset >> 6;
    const unsigned shift = offset & 63;
    const auto &sw = src.words;
    for (size_t i = 0; i < words.size(); ++i) {
        uint64_t lo = sw[w0 + i] >> shift;
        uint64_t hi = (shift && w0 + i + 1 < sw.size())
                          ? sw[w0 + i + 1] << (64 - shift)
                          : 0;
        words[i] = lo | hi;
    }
    if (n & 63)
        words.back() &= (1ULL << (n & 63)) - 1;
}

void
BitVec::zeroAll()
{
    std::fill(words.begin(), words.end(), 0);
}

void
BitVec::appendRange(const BitVec &src, size_t offset, size_t n)
{
    IRONMAN_CHECK(this != &src, "appendRange cannot alias its source");
    IRONMAN_CHECK(offset + n <= src.numBits);
    const size_t old = numBits;
    resize(old + n);

    size_t i = 0;
    // Align the destination cursor to a word boundary.
    for (; i < n && ((old + i) & 63); ++i)
        set(old + i, src.get(offset + i));
    // Word-wise interior.
    for (; i + 64 <= n; i += 64) {
        const size_t s = offset + i;
        const size_t w = s >> 6;
        const unsigned shift = s & 63;
        uint64_t lo = src.words[w] >> shift;
        uint64_t hi = (shift && w + 1 < src.words.size())
                          ? src.words[w + 1] << (64 - shift)
                          : 0;
        words[(old + i) >> 6] = lo | hi;
    }
    // Tail.
    for (; i < n; ++i)
        set(old + i, src.get(offset + i));
}

size_t
BitVec::popcount() const
{
    size_t total = 0;
    for (uint64_t w : words)
        total += std::popcount(w);
    return total;
}

BitVec &
BitVec::operator^=(const BitVec &o)
{
    IRONMAN_CHECK(numBits == o.numBits);
    for (size_t i = 0; i < words.size(); ++i)
        words[i] ^= o.words[i];
    return *this;
}

bool
BitVec::operator==(const BitVec &o) const
{
    return numBits == o.numBits && words == o.words;
}

} // namespace ironman
