#include "common/bitvec.h"

#include <bit>

#include "common/logging.h"

namespace ironman {

BitVec::BitVec(size_t n, bool value)
    : numBits(n), words((n + 63) / 64, value ? ~0ULL : 0ULL)
{
    // Clear any bits beyond the logical length so popcount/== stay exact.
    if (value && (n & 63))
        words.back() &= (1ULL << (n & 63)) - 1;
}

void
BitVec::pushBack(bool v)
{
    if ((numBits & 63) == 0)
        words.push_back(0);
    ++numBits;
    set(numBits - 1, v);
}

void
BitVec::resize(size_t n)
{
    words.resize((n + 63) / 64, 0);
    if (n < numBits && (n & 63))
        words.back() &= (1ULL << (n & 63)) - 1;
    numBits = n;
}

size_t
BitVec::popcount() const
{
    size_t total = 0;
    for (uint64_t w : words)
        total += std::popcount(w);
    return total;
}

BitVec &
BitVec::operator^=(const BitVec &o)
{
    IRONMAN_CHECK(numBits == o.numBits);
    for (size_t i = 0; i < words.size(); ++i)
        words[i] ^= o.words[i];
    return *this;
}

bool
BitVec::operator==(const BitVec &o) const
{
    return numBits == o.numBits && words == o.words;
}

} // namespace ironman
