/**
 * @file
 * Compact bit vector.
 *
 * Used for the receiver's choice-bit vector u, the LPN error vector e,
 * and every GF(2) vector the protocols exchange. Storage is packed
 * 64-bit words, LSB-first within a word.
 */

#ifndef IRONMAN_COMMON_BITVEC_H
#define IRONMAN_COMMON_BITVEC_H

#include <cstdint>
#include <cstddef>
#include <vector>

namespace ironman {

/** Packed vector of bits with GF(2) arithmetic. */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct @p n bits, all set to @p value. */
    explicit BitVec(size_t n, bool value = false);

    size_t size() const { return numBits; }
    bool empty() const { return numBits == 0; }

    bool
    get(size_t i) const
    {
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(size_t i, bool v)
    {
        uint64_t mask = 1ULL << (i & 63);
        if (v)
            words[i >> 6] |= mask;
        else
            words[i >> 6] &= ~mask;
    }

    /** Flip bit i. */
    void flip(size_t i) { words[i >> 6] ^= 1ULL << (i & 63); }

    /** Append a bit. */
    void pushBack(bool v);

    /** Change length to @p n, new bits are zero. */
    void resize(size_t n);

    /**
     * Make this vector a copy of @p n bits of @p src starting at
     * @p offset (word-wise, no per-bit loop). Storage is reused, so
     * repeated calls at a stable length allocate nothing.
     */
    void assignRange(const BitVec &src, size_t offset, size_t n);

    /** Set every bit to zero without changing the length. */
    void zeroAll();

    /**
     * Append @p n bits of @p src starting at @p offset (word-wise in
     * the interior, so appending a large vector is O(n/64)).
     */
    void appendRange(const BitVec &src, size_t offset, size_t n);

    /** Number of set bits. */
    size_t popcount() const;

    /** XOR another vector of the same length into this one. */
    BitVec &operator^=(const BitVec &o);

    bool operator==(const BitVec &o) const;
    bool operator!=(const BitVec &o) const { return !(*this == o); }

    /** Raw word storage (rounded up to a multiple of 64 bits). */
    const std::vector<uint64_t> &rawWords() const { return words; }
    std::vector<uint64_t> &rawWords() { return words; }

  private:
    size_t numBits = 0;
    std::vector<uint64_t> words;
};

} // namespace ironman

#endif // IRONMAN_COMMON_BITVEC_H
