/**
 * @file
 * Process-wide live telemetry registry: lock-free counters, gauges and
 * HDR-style log-linear latency histograms with pre-registered handles.
 *
 * Division of labor vs common/stats.h:
 *  - `metrics::` (this file) is the RUNTIME surface. Handles are
 *    registered once (allocating, mutex-guarded) and then recorded
 *    through forever after with a single relaxed atomic RMW — safe on
 *    the zero-alloc warm paths (DESIGN.md invariants 12 and 17) and
 *    from any thread. Snapshots (text render, JSON, percentiles) do
 *    all the expensive work at read time, never at record time.
 *  - `StatSet` (common/stats.h) stays the OFFLINE bench surface:
 *    string-keyed, allocating, single-threaded.
 *
 * Recording is on by default; `IRONMAN_METRICS=off` (or `0`) turns
 * every record path into a cheap early-out for overhead A/B runs.
 * Registration itself always works so handles stay valid either way.
 */

#ifndef IRONMAN_COMMON_METRICS_H
#define IRONMAN_COMMON_METRICS_H

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ironman::metrics {

namespace detail {
/** One-time read of IRONMAN_METRICS (defined in metrics.cpp). */
bool readEnabledFromEnv();
} // namespace detail

/**
 * Process-wide recording switch, read once from the environment.
 * The function-local static costs one predictable branch per record —
 * the price of the IRONMAN_METRICS=off overhead baseline.
 */
inline bool
enabled()
{
    static const bool on = detail::readEnabledFromEnv();
    return on;
}

/** Monotonic microseconds (steady clock) for latency measurement. */
uint64_t nowUs();

/** Monotonically increasing event count. Record path: 1 relaxed RMW. */
class Counter
{
  public:
    void
    inc(uint64_t delta = 1)
    {
        if (enabled())
            v_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Signed level (stock depth, active sessions). Updated by deltas so
 * several instances sharing one name sum instead of clobbering. */
class Gauge
{
  public:
    void
    add(int64_t delta)
    {
        if (enabled())
            v_.fetch_add(delta, std::memory_order_relaxed);
    }

    void sub(int64_t delta) { add(-delta); }

    /** Absolute store — only for single-writer gauges. */
    void
    set(int64_t value)
    {
        if (enabled())
            v_.store(value, std::memory_order_relaxed);
    }

    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/**
 * Log-linear (HDR-style) histogram of non-negative integer samples.
 *
 * Values below 2*kSubBuckets get exact unit buckets; above that each
 * power-of-two octave is split into kSubBuckets equal slices, so the
 * relative bucket width is bounded by 1/kSubBuckets (12.5%) across the
 * whole tracked range [0, 2^36). Larger samples land in one overflow
 * bucket. Recording is three relaxed RMWs and no branches beyond the
 * enabled() gate; percentiles are computed only in snapshot().
 */
class Histogram
{
  public:
    static constexpr unsigned kSubBucketBits = 3;
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
    /** Octaves with sub-bucket resolution; tracked max is
     * kSubBuckets << kOctaves = 2^36 (19h in us, 64 GB in bytes). */
    static constexpr unsigned kOctaves = 33;
    static constexpr unsigned kBuckets = (kOctaves + 1) * kSubBuckets;
    static constexpr unsigned kOverflowIndex = kBuckets;

    /** Bucket for sample @p v (kOverflowIndex for v >= 2^36). */
    static size_t
    bucketIndex(uint64_t v)
    {
        if (v < 2 * kSubBuckets)
            return size_t(v);
        const unsigned msb = 63u - unsigned(std::countl_zero(v));
        const size_t idx = size_t(msb - kSubBucketBits + 1) * kSubBuckets +
                           size_t((v >> (msb - kSubBucketBits)) - kSubBuckets);
        return idx < kBuckets ? idx : kOverflowIndex;
    }

    /** Smallest sample that lands in bucket @p i. */
    static uint64_t
    bucketLowerBound(size_t i)
    {
        if (i >= kBuckets)
            return uint64_t(kSubBuckets) << kOctaves;
        if (i < 2 * kSubBuckets)
            return uint64_t(i);
        return (uint64_t(kSubBuckets) + i % kSubBuckets)
               << (i / kSubBuckets - 1);
    }

    void
    record(uint64_t v)
    {
        if (!enabled())
            return;
        buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    /** Convenience: record now()-t0 for a metrics::nowUs() start. */
    void
    recordSinceUs(uint64_t t0_us)
    {
        if (enabled())
            record(nowUs() - t0_us);
    }

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

    struct Snapshot {
        uint64_t count = 0;
        uint64_t sum = 0;
        /** Percentiles reported as the containing bucket's lower
         * bound: deterministic, and monotone by construction. */
        uint64_t p50 = 0;
        uint64_t p90 = 0;
        uint64_t p99 = 0;
        uint64_t overflow = 0; ///< samples beyond the tracked range
    };

    /** Consistent-enough read (relaxed loads; concurrent recording
     * may skew the tail by in-flight samples, never corrupt it). */
    Snapshot snapshot() const;

    /**
     * Visit the non-empty buckets in ascending order as
     * fn(upper_bound, cumulative_count) — the Prometheus
     * `_bucket{le="..."}` shape, sparse so a 272-bucket histogram
     * with a tight distribution stays a handful of lines. Overflow
     * samples are NOT visited; the caller closes the series with an
     * explicit le="+Inf" line at count().
     */
    template <typename Fn>
    void
    forEachNonEmptyBucket(Fn &&fn) const
    {
        uint64_t cum = 0;
        for (size_t i = 0; i < kBuckets; ++i) {
            const uint64_t c =
                buckets_[i].load(std::memory_order_relaxed);
            if (c == 0)
                continue;
            cum += c;
            fn(bucketLowerBound(i + 1), cum);
        }
    }

  private:
    std::atomic<uint64_t> buckets_[kBuckets + 1] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/**
 * Process-wide name -> handle registry. Handles live forever at
 * stable addresses (deque-backed); registering the same name twice
 * returns the same handle, so independent subsystems (or several
 * instances of one) share a process-wide total. Registration takes a
 * mutex and may allocate — do it at construction/warm-up, never on
 * the hot path (invariant 17).
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Read-side lookups by name; zero/default when absent. */
    uint64_t counterValue(const std::string &name) const;
    int64_t gaugeValue(const std::string &name) const;
    Histogram::Snapshot histogramSnapshot(const std::string &name) const;

    /**
     * Prometheus-style exposition: one "name value" line per counter
     * and gauge, and name_count/_sum/_p50/_p90/_p99 plus cumulative
     * name_bucket{le="..."} lines per histogram, sorted by name.
     */
    std::string renderText() const;

    /** The writeJson() document as a string (the /metrics.json
     * endpoint body). Schema "ironman.metrics.v1". */
    std::string renderJson() const;

    /** JSON snapshot (bench::JsonWriter idiom — see BENCH_*.json).
     * Returns false if the file cannot be written. */
    bool writeJson(const std::string &path) const;

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

  private:
    Registry() = default;
    struct Impl;
    Impl &impl() const;
};

/** Shorthands for the singleton. */
inline Counter &counter(const std::string &name)
{
    return Registry::instance().counter(name);
}
inline Gauge &gauge(const std::string &name)
{
    return Registry::instance().gauge(name);
}
inline Histogram &histogram(const std::string &name)
{
    return Registry::instance().histogram(name);
}

} // namespace ironman::metrics

#endif // IRONMAN_COMMON_METRICS_H
