/**
 * @file
 * Hex encode/decode helpers shared by tests and diagnostics.
 */

#ifndef IRONMAN_COMMON_HEXUTIL_H
#define IRONMAN_COMMON_HEXUTIL_H

#include <cstdint>
#include <string>
#include <vector>

namespace ironman {

/** Encode @p data as lowercase hex. */
std::string hexEncode(const uint8_t *data, size_t len);

/**
 * Decode a hex string (whitespace tolerated) into bytes.
 * Calls IRONMAN_FATAL on malformed input.
 */
std::vector<uint8_t> hexDecode(const std::string &hex);

} // namespace ironman

#endif // IRONMAN_COMMON_HEXUTIL_H
