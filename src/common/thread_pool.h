/**
 * @file
 * Fixed-size worker pool for deterministic data-parallel loops.
 *
 * The OTE hot path (batch-SPCOT tree expansion, LPN gather-XOR) is
 * embarrassingly parallel over disjoint output ranges, but spawning
 * std::threads per call costs both latency and heap allocations. This
 * pool follows the stage/work-queue idiom of the pipelined-simulator
 * exemplar: N-1 persistent workers plus the calling thread, each
 * handed one contiguous range per job.
 *
 * Properties the protocol code relies on:
 *  - the range partition depends only on (count, threads), never on
 *    scheduling, so parallel output is bit-identical to serial;
 *  - run() performs no heap allocation (jobs are a function pointer +
 *    context, not a queue of std::functions);
 *  - with threads <= 1 the pool holds no workers and runs inline.
 *
 * Jobs must not throw (protocol invariants use IRONMAN_CHECK, which
 * aborts) and must not call run() reentrantly from a worker.
 */

#ifndef IRONMAN_COMMON_THREAD_POOL_H
#define IRONMAN_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace ironman::common {

/** Persistent worker pool; one contiguous range per worker. */
class ThreadPool
{
  public:
    explicit ThreadPool(int threads = 1);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Change the worker count (joins and respawns threads). Must not
     * race with run(). No-op when the count is unchanged.
     */
    void resize(int threads);

    /** Ranges a job is split into (workers + the calling thread). */
    int threads() const { return int(workers.size()) + 1; }

    using RangeFn = void (*)(void *ctx, int worker, size_t begin,
                             size_t end);

    /**
     * Split [0, count) into threads() contiguous ranges of
     * ceil(count/threads()) and invoke fn(ctx, worker, begin, end) on
     * each non-empty one; blocks until all complete. Worker 0 runs on
     * the calling thread.
     */
    void run(size_t count, RangeFn fn, void *ctx);

    /** Sugar: parallelFor(n, [&](int worker, size_t b, size_t e) {...}). */
    template <typename F>
    void
    parallelFor(size_t count, F &&f)
    {
        run(count,
            [](void *ctx, int worker, size_t begin, size_t end) {
                (*static_cast<std::remove_reference_t<F> *>(ctx))(
                    worker, begin, end);
            },
            &f);
    }

    /**
     * Launch a job on the background workers ONLY and return
     * immediately, leaving the calling thread free for other work
     * (e.g. wire I/O of the next pipeline stage). [0, count) is split
     * into workers.size() contiguous ranges; fn receives worker ids
     * 1..workers.size(). With no workers (threads() == 1) the job runs
     * inline before returning. @p ctx and the data it references must
     * stay alive until wait(). run()/parallelFor() must not be called
     * while an async job is pending.
     */
    void runAsync(size_t count, RangeFn fn, void *ctx);

    /** Block until the job launched by runAsync() has completed. */
    void wait();

    /** Async sugar; the callable must outlive the matching wait(). */
    template <typename F>
    void
    parallelForAsync(size_t count, F &f)
    {
        runAsync(count,
                 [](void *ctx, int worker, size_t begin, size_t end) {
                     (*static_cast<F *>(ctx))(worker, begin, end);
                 },
                 &f);
    }

  private:
    void workerMain(int id, uint64_t start_gen);
    void stopWorkers();

    std::vector<std::thread> workers;

    std::mutex mutex;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    uint64_t jobGen = 0;   ///< incremented per job; workers watch it
    RangeFn jobFn = nullptr;
    void *jobCtx = nullptr;
    size_t jobCount = 0;
    size_t jobPer = 0;     ///< range width (ceil(count / slices))
    bool jobAsync = false; ///< workers-only split (no caller slice)
    size_t pending = 0;    ///< workers still running the current job
    bool asyncPending = false; ///< a runAsync() awaits wait()
    bool stopping = false;
};

} // namespace ironman::common

#endif // IRONMAN_COMMON_THREAD_POOL_H
