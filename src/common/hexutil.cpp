#include "common/hexutil.h"

#include <cctype>

#include "common/block.h"
#include "common/logging.h"

namespace ironman {

std::string
hexEncode(const uint8_t *data, size_t len)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(len * 2);
    for (size_t i = 0; i < len; ++i) {
        out.push_back(digits[data[i] >> 4]);
        out.push_back(digits[data[i] & 0xf]);
    }
    return out;
}

std::vector<uint8_t>
hexDecode(const std::string &hex)
{
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
    };

    std::vector<uint8_t> out;
    int pending = -1;
    for (char c : hex) {
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        int v = nibble(c);
        if (v < 0)
            IRONMAN_FATAL("invalid hex character '%c'", c);
        if (pending < 0) {
            pending = v;
        } else {
            out.push_back(static_cast<uint8_t>((pending << 4) | v));
            pending = -1;
        }
    }
    if (pending >= 0)
        IRONMAN_FATAL("odd number of hex digits");
    return out;
}

std::string
Block::toHex() const
{
    uint8_t bytes[16];
    toBytes(bytes);
    // Print most-significant byte first for human readability.
    uint8_t rev[16];
    for (int i = 0; i < 16; ++i)
        rev[i] = bytes[15 - i];
    return hexEncode(rev, 16);
}

} // namespace ironman
