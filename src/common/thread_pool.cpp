#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace ironman::common {

ThreadPool::ThreadPool(int threads)
{
    resize(threads);
}

ThreadPool::~ThreadPool()
{
    stopWorkers();
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    cvStart.notify_all();
    for (auto &w : workers)
        w.join();
    workers.clear();
    stopping = false;
}

void
ThreadPool::resize(int threads)
{
    int want = std::max(threads, 1) - 1; // workers beside the caller
    if (want == int(workers.size()))
        return;
    stopWorkers();
    workers.reserve(want);
    // Capture the current generation at spawn time: a worker must
    // neither replay the job that ran before the resize (its ctx
    // frame is gone) nor read jobGen so late that it misses the next
    // one. resize() never races run(), so jobGen is stable here.
    for (int id = 1; id <= want; ++id)
        workers.emplace_back(
            [this, id, gen = jobGen] { workerMain(id, gen); });
}

void
ThreadPool::run(size_t count, RangeFn fn, void *ctx)
{
    if (count == 0)
        return;
    // asyncPending is only ever toggled by the owning thread (the one
    // allowed to call run/runAsync/wait), so this unlocked check is
    // safe — and it must cover the inline fast path too.
    IRONMAN_CHECK(!asyncPending,
                  "ThreadPool::run while an async job is pending");
    const int n = threads();
    if (n == 1 || count == 1) {
        fn(ctx, 0, 0, count);
        return;
    }

    const size_t per = (count + n - 1) / n;
    {
        std::lock_guard<std::mutex> lock(mutex);
        IRONMAN_CHECK(pending == 0, "reentrant ThreadPool::run");
        jobFn = fn;
        jobCtx = ctx;
        jobCount = count;
        jobPer = per;
        jobAsync = false;
        pending = workers.size();
        ++jobGen;
    }
    cvStart.notify_all();

    // Worker 0 is the calling thread.
    fn(ctx, 0, 0, std::min(per, count));

    std::unique_lock<std::mutex> lock(mutex);
    cvDone.wait(lock, [this] { return pending == 0; });
}

void
ThreadPool::runAsync(size_t count, RangeFn fn, void *ctx)
{
    if (count == 0)
        return;
    if (workers.empty()) {
        // Degenerate pipeline: no background workers, run inline so
        // the caller's subsequent wait() is a no-op.
        fn(ctx, 0, 0, count);
        return;
    }

    const size_t nw = workers.size();
    const size_t per = (count + nw - 1) / nw;
    {
        std::lock_guard<std::mutex> lock(mutex);
        IRONMAN_CHECK(pending == 0 && !asyncPending,
                      "ThreadPool::runAsync while a job is pending");
        jobFn = fn;
        jobCtx = ctx;
        jobCount = count;
        jobPer = per;
        jobAsync = true;
        pending = nw;
        asyncPending = true;
        ++jobGen;
    }
    cvStart.notify_all();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    if (!asyncPending)
        return;
    cvDone.wait(lock, [this] { return pending == 0; });
    asyncPending = false;
}

void
ThreadPool::workerMain(int id, uint64_t seen)
{
    for (;;) {
        RangeFn fn;
        void *ctx;
        size_t count, per;
        bool async;
        {
            std::unique_lock<std::mutex> lock(mutex);
            cvStart.wait(lock,
                         [&] { return stopping || jobGen != seen; });
            if (stopping)
                return;
            seen = jobGen;
            fn = jobFn;
            ctx = jobCtx;
            count = jobCount;
            per = jobPer;
            async = jobAsync;
        }

        // Async jobs have no caller slice: worker 1 starts at 0.
        size_t slice = size_t(id) - (async ? 1 : 0);
        size_t begin = std::min(count, slice * per);
        size_t end = std::min(count, begin + per);
        if (begin < end)
            fn(ctx, id, begin, end);

        {
            std::lock_guard<std::mutex> lock(mutex);
            --pending;
        }
        cvDone.notify_all();
    }
}

} // namespace ironman::common
