/**
 * @file
 * Lightweight named counters and wall-clock timers.
 *
 * Protocol objects expose a StatSet so benches can read operation
 * counts (AES calls, ChaCha calls, bytes moved, DRAM accesses...)
 * without recompiling with instrumentation flags.
 *
 * Scope guardrail — StatSet vs common/metrics.h:
 *  - StatSet is OFFLINE, bench-only accounting: string-keyed map,
 *    allocates on every new name, and has NO concurrency story —
 *    callers must externally serialize all access (including reads;
 *    get()/toString() walk the same map add() mutates). Never place
 *    it on a serving hot path: it would break both thread safety and
 *    the zero-alloc warm-path invariant (DESIGN.md invariant 12).
 *  - Live, multi-threaded, hot-path telemetry belongs to the
 *    `metrics::` registry (common/metrics.h): pre-registered handles,
 *    relaxed-atomic record paths, snapshots priced at read time
 *    (invariant 17).
 */

#ifndef IRONMAN_COMMON_STATS_H
#define IRONMAN_COMMON_STATS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace ironman {

/** A named bag of monotonically increasing counters. */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        counters[name] += delta;
    }

    /** Current value (0 if never touched). */
    uint64_t get(const std::string &name) const;

    /** Reset every counter to zero. */
    void clear() { counters.clear(); }

    /** Merge another set into this one (summing matching names).
     * Self-merge is a no-op. */
    void merge(const StatSet &o);

    const std::map<std::string, uint64_t> &all() const { return counters; }

    /** Render as "name=value" lines for logs. */
    std::string toString() const;

  private:
    std::map<std::string, uint64_t> counters;
};

/** Monotonic stopwatch measuring seconds of wall time. */
class Timer
{
  public:
    Timer() { reset(); }

    void reset() { start = std::chrono::steady_clock::now(); }

    /** Seconds elapsed since construction or last reset(). */
    double
    seconds() const
    {
        auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start).count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

} // namespace ironman

#endif // IRONMAN_COMMON_STATS_H
