/**
 * @file
 * Deterministic pseudo-random source for protocol sampling.
 *
 * Every place a party "samples a random value" in the protocols draws
 * from an Rng so whole protocol executions are reproducible from a
 * seed. The generator is xoshiro256** (public-domain construction by
 * Blackman & Vigna) seeded through splitmix64.
 *
 * This is NOT a cryptographic PRG — the cryptographic PRGs live in
 * src/crypto (AES / ChaCha based). Rng models the local randomness
 * tape of a party in a simulated execution.
 */

#ifndef IRONMAN_COMMON_RNG_H
#define IRONMAN_COMMON_RNG_H

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"

namespace ironman {

/** Seedable, reproducible random source. */
class Rng
{
  public:
    /** Seed the randomness tape; equal seeds give equal tapes. */
    explicit Rng(uint64_t seed = 0x1234abcd5678ef90ULL);

    /** Next 64 uniform bits. */
    uint64_t nextUint64();

    /** Uniform value in [0, bound); bound must be non-zero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform 128-bit block. */
    Block nextBlock();

    /** Uniform bit. */
    bool nextBit() { return nextUint64() & 1; }

    /** Fill @p n blocks. */
    std::vector<Block> nextBlocks(size_t n);

    /** Uniform bit vector of length @p n. */
    BitVec nextBits(size_t n);

    /**
     * Sample @p count distinct indices in [0, range), uniformly.
     * Used for noise-position sampling in tests; the LPN protocols use
     * regular noise (one index per fixed-size bucket) instead.
     */
    std::vector<uint64_t> sampleDistinct(uint64_t range, size_t count);

  private:
    uint64_t s[4];
};

} // namespace ironman

#endif // IRONMAN_COMMON_RNG_H
