/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (library bug); aborts.
 * fatal()  — the caller supplied an impossible configuration; exits(1).
 * warn()   — something is suspicious but execution can continue.
 */

#ifndef IRONMAN_COMMON_LOGGING_H
#define IRONMAN_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace ironman {

/** Print a formatted message and abort(); use for internal bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted warning to stderr and continue. */
void warnImpl(const char *file, int line, const char *fmt, ...);

} // namespace ironman

#define IRONMAN_PANIC(...) \
    ::ironman::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define IRONMAN_FATAL(...) \
    ::ironman::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define IRONMAN_WARN(...) \
    ::ironman::warnImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Always-on invariant check (independent of NDEBUG). */
#define IRONMAN_CHECK(cond, ...)                 \
    do {                                         \
        if (!(cond)) {                           \
            IRONMAN_PANIC("check failed: %s — " #cond, #__VA_ARGS__); \
        }                                        \
    } while (0)

#endif // IRONMAN_COMMON_LOGGING_H
