/**
 * @file
 * 128-bit block type used throughout the OT-extension stack.
 *
 * A Block is the atomic unit of every OT/COT correlation (the security
 * parameter lambda = 128 in the paper). The representation is two
 * little-endian 64-bit lanes; `lo` holds bytes 0..7 and `hi` bytes
 * 8..15 of the canonical byte serialization.
 */

#ifndef IRONMAN_COMMON_BLOCK_H
#define IRONMAN_COMMON_BLOCK_H

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

namespace ironman {

/** 128-bit value with GF(2)-friendly operations. */
struct Block
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    constexpr Block() = default;
    constexpr Block(uint64_t hi_word, uint64_t lo_word)
        : lo(lo_word), hi(hi_word) {}

    /** Build a block whose low lane is @p v and high lane is zero. */
    static constexpr Block
    fromUint64(uint64_t v)
    {
        return Block(0, v);
    }

    /** All-zero block. */
    static constexpr Block zero() { return Block(); }

    /** All-one block. */
    static constexpr Block
    ones()
    {
        return Block(~0ULL, ~0ULL);
    }

    /** Load 16 bytes (little-endian lanes) from @p src. */
    static Block
    fromBytes(const uint8_t *src)
    {
        Block b;
        std::memcpy(&b.lo, src, 8);
        std::memcpy(&b.hi, src + 8, 8);
        return b;
    }

    /** Store the canonical 16-byte serialization into @p dst. */
    void
    toBytes(uint8_t *dst) const
    {
        std::memcpy(dst, &lo, 8);
        std::memcpy(dst + 8, &hi, 8);
    }

    constexpr Block
    operator^(const Block &o) const
    {
        return Block(hi ^ o.hi, lo ^ o.lo);
    }

    constexpr Block &
    operator^=(const Block &o)
    {
        lo ^= o.lo;
        hi ^= o.hi;
        return *this;
    }

    constexpr Block
    operator&(const Block &o) const
    {
        return Block(hi & o.hi, lo & o.lo);
    }

    constexpr Block
    operator|(const Block &o) const
    {
        return Block(hi | o.hi, lo | o.lo);
    }

    constexpr bool
    operator==(const Block &o) const
    {
        return lo == o.lo && hi == o.hi;
    }

    constexpr bool operator!=(const Block &o) const { return !(*this == o); }

    /** Total order (hi, lo) — handy for maps and dedup tests. */
    constexpr bool
    operator<(const Block &o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }

    /** Bit i of the 128-bit value, i in [0, 128). */
    constexpr bool
    getBit(unsigned i) const
    {
        return i < 64 ? (lo >> i) & 1 : (hi >> (i - 64)) & 1;
    }

    /** Set bit i to @p v. */
    constexpr void
    setBit(unsigned i, bool v)
    {
        if (i < 64) {
            lo = (lo & ~(1ULL << i)) | (uint64_t(v) << i);
        } else {
            hi = (hi & ~(1ULL << (i - 64))) | (uint64_t(v) << (i - 64));
        }
    }

    /** Force the least significant bit to @p v (used for COT choice bits). */
    constexpr Block
    withLsb(bool v) const
    {
        Block b = *this;
        b.lo = (b.lo & ~1ULL) | uint64_t(v);
        return b;
    }

    /** Least significant bit. */
    constexpr bool lsb() const { return lo & 1; }

    /** True iff every bit is zero. */
    constexpr bool isZero() const { return lo == 0 && hi == 0; }

    /** Hex string (32 nibbles, most significant first) for diagnostics. */
    std::string toHex() const;
};

static_assert(sizeof(Block) == 16, "Block must be exactly 128 bits");

/**
 * Multiply a block by a GF(2) scalar bit: returns b when bit is set,
 * zero otherwise. This is the `u * Delta` operation of the COT
 * correlation w = v XOR u*Delta.
 */
constexpr Block
scalarMul(bool bit, const Block &b)
{
    const uint64_t mask = bit ? ~0ULL : 0ULL;
    return Block(b.hi & mask, b.lo & mask);
}

/** FNV-1a style mixing of a block — for hash maps in tests only. */
struct BlockHasher
{
    size_t
    operator()(const Block &b) const
    {
        uint64_t h = 1469598103934665603ULL;
        for (uint64_t w : {b.lo, b.hi}) {
            h ^= w;
            h *= 1099511628211ULL;
        }
        return static_cast<size_t>(h);
    }
};

} // namespace ironman

#endif // IRONMAN_COMMON_BLOCK_H
