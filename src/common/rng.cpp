#include "common/rng.h"

#include <unordered_set>

#include "common/logging.h"

namespace ironman {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &lane : s)
        lane = splitmix64(sm);
}

uint64_t
Rng::nextUint64()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    IRONMAN_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = bound * (UINT64_MAX / bound);
    uint64_t v;
    do {
        v = nextUint64();
    } while (v >= limit);
    return v % bound;
}

Block
Rng::nextBlock()
{
    uint64_t lo = nextUint64();
    uint64_t hi = nextUint64();
    return Block(hi, lo);
}

std::vector<Block>
Rng::nextBlocks(size_t n)
{
    std::vector<Block> out(n);
    for (auto &b : out)
        b = nextBlock();
    return out;
}

BitVec
Rng::nextBits(size_t n)
{
    BitVec out(n);
    auto &words = out.rawWords();
    for (auto &w : words)
        w = nextUint64();
    // Trim the tail word to the logical length.
    if (n & 63)
        words.back() &= (1ULL << (n & 63)) - 1;
    return out;
}

std::vector<uint64_t>
Rng::sampleDistinct(uint64_t range, size_t count)
{
    IRONMAN_CHECK(count <= range);
    std::unordered_set<uint64_t> seen;
    std::vector<uint64_t> out;
    out.reserve(count);
    while (out.size() < count) {
        uint64_t v = nextBelow(range);
        if (seen.insert(v).second)
            out.push_back(v);
    }
    return out;
}

} // namespace ironman
