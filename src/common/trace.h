/**
 * @file
 * Per-request tracing: the read-side twin of common/metrics.h.
 *
 * Where the metrics registry answers "how much, in aggregate", this
 * recorder answers "where inside ONE request did the time go": every
 * thread owns a fixed ring of span/instant events (begin time,
 * duration, literal label, request tag, byte count, wire-propagated
 * trace id) that the warm paths stamp with plain relaxed atomic
 * stores — no allocation, no locks, no syscalls beyond the clock read
 * — behind one cached IRONMAN_TRACE check, so recording is
 * constitutionally free when off (DESIGN.md invariant 17 extends to
 * tracing: it never changes wire bytes, output shares, or warm-path
 * allocation counts).
 *
 * The cold path drains every thread ring into Chrome trace-event JSON
 * (chrome://tracing / Perfetto: `ph:"X"` duration events, `ph:"i"`
 * instants; pid = MPC party, tid = recording thread), one event per
 * line so tools/trace_merge can align two parties' exports textually.
 * Cross-party alignment rides the handshake: the infer hello/accept
 * carries a 64-bit trace id + sampled bit (kInferFlagTrace) and the
 * accept returns the server's clock sample, which together with the
 * client's measured RTT gives the clock-offset estimate embedded in
 * the export (`otherData.clock_offset_us`).
 *
 * Rings are seqlock-stamped: writers bump a per-ring sequence with a
 * release store after the event words land, readers validate each
 * slot's stamp and discard events overwritten mid-read — export can
 * run concurrently with live sessions and stays TSan-clean (every
 * shared word is an atomic).
 *
 * Enablement: IRONMAN_TRACE=1/on in the environment, or
 * setEnabled(true) from a --trace FILE flag (cold path, before
 * traffic). Labels MUST be string literals — the ring stores the
 * pointer, exactly like net::FlightRecorder.
 */

#ifndef IRONMAN_COMMON_TRACE_H
#define IRONMAN_COMMON_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace ironman::trace {

namespace detail {
/** One-time read of IRONMAN_TRACE (default off), overridable by
 * setEnabled(). Defined in trace.cpp. */
std::atomic<bool> &enabledFlag();

struct Ring;
/** The calling thread's ring, registering it on first use (mutex +
 * deque, cold path — never called from a record site while off). */
Ring &threadRing();

void emitEvent(uint8_t kind, const char *name, const char *cat,
               uint64_t t_us, uint64_t dur_us, uint32_t tag,
               uint64_t arg);
} // namespace detail

/** Process-wide recording switch: one relaxed load per record. */
inline bool
enabled()
{
    return detail::enabledFlag().load(std::memory_order_relaxed);
}

/** Cold-path override (the --trace FILE flag). */
void setEnabled(bool on);

/** MPC party id for the export's pid field (0 = client, 1 = server;
 * processes hosting both daemons are still one party). */
void setParty(int party);
int party();

/**
 * Wire-propagated per-thread trace context: the 64-bit id the infer
 * handshake negotiated (0 = unset) and whether this request chain is
 * sampled. An unsampled context mutes recording on this thread
 * without touching the process switch.
 */
struct Context
{
    uint64_t traceId = 0;
    bool sampled = true;
};

void setContext(uint64_t trace_id, bool sampled);
Context context();

/** Fresh pseudo-random trace id (splitmix64 over clock + counter). */
uint64_t newTraceId(uint64_t salt = 0);

/** Literal name for this thread in the export's metadata ("session",
 * "refill", ...). Cold path. */
void setThreadLabel(const char *label);

/**
 * Clock-offset estimate: peer (server) clock minus local clock, in
 * microseconds, from the hello->accept RTT midpoint (Cristian). The
 * value is embedded in this party's export so trace_merge can shift
 * the peer's timeline onto ours.
 */
void setPeerClockOffsetUs(int64_t offset_us);
int64_t peerClockOffsetUs();

/** Point event (ph:"i"). @p name/@p cat MUST be literals. */
inline void
instant(const char *name, const char *cat = nullptr, uint32_t tag = 0,
        uint64_t arg = 0);

/**
 * Completed span with explicit bounds (ph:"X") — for spans whose
 * begin predates the emitting scope (client submit->reconstruct,
 * sampled engine phases timed by an existing Timer).
 */
void emitSpan(const char *name, const char *cat, uint64_t t0_us,
              uint64_t dur_us, uint32_t tag = 0, uint64_t arg = 0);

/** Monotonic microseconds (same clock as metrics::nowUs()). */
uint64_t nowUs();

/**
 * RAII duration span (ph:"X"). Construction takes the begin stamp,
 * destruction emits the one ring write. Overhead when tracing is off:
 * one relaxed load and a branch. @p name/@p cat MUST be literals.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *cat = nullptr,
                  uint32_t tag = 0, uint64_t arg = 0)
    {
        if (enabled()) {
            name_ = name;
            cat_ = cat;
            tag_ = tag;
            arg_ = arg;
            t0_ = nowUs();
        }
    }

    ~Span()
    {
        if (name_)
            emitSpan(name_, cat_, t0_, nowUs() - t0_, tag_, arg_);
    }

    /** Late-bound payload size (byte deltas known only at scope end). */
    void setArg(uint64_t arg) { arg_ = arg; }
    void setTag(uint32_t tag) { tag_ = tag; }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_ = nullptr; ///< null = tracing was off at entry
    const char *cat_ = nullptr;
    uint64_t t0_ = 0;
    uint64_t arg_ = 0;
    uint32_t tag_ = 0;
};

inline void
instant(const char *name, const char *cat, uint32_t tag, uint64_t arg)
{
    if (enabled())
        detail::emitEvent(1, name, cat, nowUs(), 0, tag, arg);
}

// ---------------------------------------------------------------------------
// Cold-path export
// ---------------------------------------------------------------------------

/**
 * Drain every thread ring into a Chrome trace-event JSON document
 * (one event per line). Safe to call while sessions record; events
 * overwritten mid-read are discarded, never torn into the output.
 */
std::string exportChromeTrace();

/** exportChromeTrace() to @p path; false if the file can't open. */
bool writeChromeTrace(const std::string &path);

/**
 * Snapshot the current export as the "most recent completed session"
 * document the /trace endpoint serves. The inference server calls
 * this when a traced session closes.
 */
void retainExport();

/** The last retained export ("" if none yet). */
std::string lastRetainedExport();

/** Drop all recorded events (tests; not thread-safe vs. recorders). */
void resetForTest();

} // namespace ironman::trace

#endif // IRONMAN_COMMON_TRACE_H
