#include "common/trace.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <vector>

namespace ironman::trace {

namespace detail {

/**
 * One thread's event ring. Slots are 8 atomic words wide:
 *   [0] stamp   — event index + 1, stored release AFTER the payload
 *   [1] kind<<32 | tag
 *   [2] t_us    [3] dur_us
 *   [4] name*   [5] cat*      (string literals)
 *   [6] traceId [7] arg (byte count etc.)
 * Only the owning thread writes; the exporter validates each slot's
 * stamp and discards events overwritten mid-read (a wrapped writer
 * re-stamps with a larger index, so a stale read can't masquerade).
 */
struct Ring
{
    static constexpr size_t kCapacity = 2048;
    static constexpr size_t kWords = 8;

    std::atomic<uint64_t> seq{0}; ///< events ever recorded
    std::atomic<uint64_t> words[kCapacity * kWords] = {};
    std::atomic<const char *> label{nullptr};
    uint32_t tid = 0;
};

namespace {

bool
readEnabledFromEnv()
{
    const char *env = std::getenv("IRONMAN_TRACE");
    if (!env)
        return false;
    std::string v(env);
    for (char &c : v)
        c = char(std::tolower((unsigned char)c));
    return v == "1" || v == "on" || v == "true" || v == "yes";
}

struct Registry
{
    std::mutex m;
    std::deque<Ring> rings;       ///< stable addresses, live forever
    std::vector<Ring *> freeRings; ///< rings of exited threads
    std::string retained;          ///< last retained export
};

Registry &
registry()
{
    static Registry r;
    return r;
}

std::atomic<int> g_party{0};
std::atomic<int64_t> g_peerOffsetUs{0};

/**
 * Ring ownership follows the thread: at thread exit the lease returns
 * the ring to a free list so session-per-thread daemons reuse a
 * bounded set of rings instead of growing one per session. A reused
 * ring keeps its tid and retained events (they age out by overwrite),
 * which two threads may share SEQUENTIALLY, never concurrently.
 */
struct RingLease
{
    Ring *ring = nullptr;

    ~RingLease()
    {
        if (!ring)
            return;
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.m);
        r.freeRings.push_back(ring);
    }
};

thread_local RingLease tl_lease;
thread_local Context tl_context;

} // namespace

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> on{readEnabledFromEnv()};
    return on;
}

Ring &
threadRing()
{
    if (!tl_lease.ring) {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.m);
        if (!r.freeRings.empty()) {
            tl_lease.ring = r.freeRings.back();
            r.freeRings.pop_back();
        } else {
            Ring &ring = r.rings.emplace_back();
            ring.tid = uint32_t(r.rings.size());
            tl_lease.ring = &ring;
        }
    }
    return *tl_lease.ring;
}

void
emitEvent(uint8_t kind, const char *name, const char *cat, uint64_t t_us,
          uint64_t dur_us, uint32_t tag, uint64_t arg)
{
    if (!tl_context.sampled)
        return;
    Ring &ring = threadRing();
    const uint64_t idx = ring.seq.load(std::memory_order_relaxed);
    std::atomic<uint64_t> *w =
        ring.words + (idx % Ring::kCapacity) * Ring::kWords;
    // Invalidate the slot first so a concurrent reader can't validate
    // a half-written event against the OLD stamp.
    w[0].store(0, std::memory_order_relaxed);
    w[1].store(uint64_t(kind) << 32 | tag, std::memory_order_relaxed);
    w[2].store(t_us, std::memory_order_relaxed);
    w[3].store(dur_us, std::memory_order_relaxed);
    w[4].store(uint64_t(reinterpret_cast<uintptr_t>(name)),
               std::memory_order_relaxed);
    w[5].store(uint64_t(reinterpret_cast<uintptr_t>(cat)),
               std::memory_order_relaxed);
    w[6].store(tl_context.traceId, std::memory_order_relaxed);
    w[7].store(arg, std::memory_order_relaxed);
    w[0].store(idx + 1, std::memory_order_release);
    ring.seq.store(idx + 1, std::memory_order_release);
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::enabledFlag().store(on, std::memory_order_relaxed);
}

void
setParty(int party)
{
    detail::g_party.store(party, std::memory_order_relaxed);
}

int
party()
{
    return detail::g_party.load(std::memory_order_relaxed);
}

void
setContext(uint64_t trace_id, bool sampled)
{
    detail::tl_context.traceId = trace_id;
    detail::tl_context.sampled = sampled;
}

Context
context()
{
    return detail::tl_context;
}

uint64_t
newTraceId(uint64_t salt)
{
    // splitmix64 over the clock, a process-wide counter and caller
    // salt: unique enough for correlating two parties' exports, with
    // zero reserved as "unset".
    static std::atomic<uint64_t> counter{0};
    uint64_t z = nowUs() ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                 (counter.fetch_add(1, std::memory_order_relaxed) + 1)
                     * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z ? z : 1;
}

void
setThreadLabel(const char *label)
{
    // No ring is materialised for a thread that never records: with
    // tracing off this is the same one-load early-out as a Span.
    if (enabled())
        detail::threadRing().label.store(label, std::memory_order_relaxed);
}

void
setPeerClockOffsetUs(int64_t offset_us)
{
    detail::g_peerOffsetUs.store(offset_us, std::memory_order_relaxed);
}

int64_t
peerClockOffsetUs()
{
    return detail::g_peerOffsetUs.load(std::memory_order_relaxed);
}

void
emitSpan(const char *name, const char *cat, uint64_t t0_us,
         uint64_t dur_us, uint32_t tag, uint64_t arg)
{
    if (enabled())
        detail::emitEvent(0, name, cat, t0_us, dur_us, tag, arg);
}

uint64_t
nowUs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

namespace {

struct ReadEvent
{
    uint64_t kindTag, t_us, dur_us, name, cat, traceId, arg;
    uint32_t tid;
};

void
appendEventJson(std::string &out, const ReadEvent &e, int pid,
                bool &first)
{
    const uint8_t kind = uint8_t(e.kindTag >> 32);
    const uint32_t tag = uint32_t(e.kindTag);
    const char *name =
        reinterpret_cast<const char *>(uintptr_t(e.name));
    const char *cat = reinterpret_cast<const char *>(uintptr_t(e.cat));
    if (!name)
        return; // torn slot: never emit a null label
    char line[512];
    int n = std::snprintf(
        line, sizeof(line),
        "%s{\"ph\":\"%s\",\"name\":\"%s\",\"cat\":\"%s\","
        "\"ts\":%llu,\"dur\":%llu,\"pid\":%d,\"tid\":%u",
        first ? "" : ",\n", kind == 0 ? "X" : "i", name,
        cat ? cat : "misc", (unsigned long long)e.t_us,
        (unsigned long long)e.dur_us, pid, e.tid);
    if (n < 0 || size_t(n) >= sizeof(line))
        return;
    out.append(line, size_t(n));
    if (kind != 0)
        out += ",\"s\":\"t\""; // instant scope: thread
    n = std::snprintf(line, sizeof(line),
                      ",\"args\":{\"tag\":%u,\"bytes\":%llu", tag,
                      (unsigned long long)e.arg);
    out.append(line, size_t(n));
    if (e.traceId) {
        n = std::snprintf(line, sizeof(line),
                          ",\"trace_id\":\"%016llx\"",
                          (unsigned long long)e.traceId);
        out.append(line, size_t(n));
    }
    out += "}}";
    first = false;
}

} // namespace

std::string
exportChromeTrace()
{
    using detail::Ring;
    detail::Registry &r = detail::registry();
    const int pid = party();
    std::string out;
    out.reserve(1 << 16);
    out += "{\n\"traceEvents\":[\n";
    bool first = true;

    std::vector<std::pair<uint32_t, const char *>> labels;
    {
        std::lock_guard<std::mutex> lock(r.m);
        for (Ring &ring : r.rings) {
            if (const char *label =
                    ring.label.load(std::memory_order_relaxed))
                labels.emplace_back(ring.tid, label);
            const uint64_t seq =
                ring.seq.load(std::memory_order_acquire);
            const uint64_t from =
                seq > Ring::kCapacity ? seq - Ring::kCapacity : 0;
            for (uint64_t idx = from; idx < seq; ++idx) {
                std::atomic<uint64_t> *w =
                    ring.words +
                    (idx % Ring::kCapacity) * Ring::kWords;
                if (w[0].load(std::memory_order_acquire) != idx + 1)
                    continue; // overwritten (or mid-write) — skip
                ReadEvent e;
                e.kindTag = w[1].load(std::memory_order_relaxed);
                e.t_us = w[2].load(std::memory_order_relaxed);
                e.dur_us = w[3].load(std::memory_order_relaxed);
                e.name = w[4].load(std::memory_order_relaxed);
                e.cat = w[5].load(std::memory_order_relaxed);
                e.traceId = w[6].load(std::memory_order_relaxed);
                e.arg = w[7].load(std::memory_order_relaxed);
                if (w[0].load(std::memory_order_acquire) != idx + 1)
                    continue; // re-stamped while we read: torn
                e.tid = ring.tid;
                appendEventJson(out, e, pid, first);
            }
        }
    }
    for (const auto &[tid, label] : labels) {
        char line[256];
        const int n = std::snprintf(
            line, sizeof(line),
            "%s{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,"
            "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
            first ? "" : ",\n", pid, tid, label);
        if (n > 0 && size_t(n) < sizeof(line)) {
            out.append(line, size_t(n));
            first = false;
        }
    }
    {
        char line[256];
        const int n = std::snprintf(
            line, sizeof(line),
            "%s{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,"
            "\"tid\":0,\"args\":{\"name\":\"ironman party %d\"}}",
            first ? "" : ",\n", pid, pid);
        out.append(line, size_t(n));
    }
    char tail[256];
    const int n = std::snprintf(
        tail, sizeof(tail),
        "\n],\n\"otherData\":{\"schema\":\"ironman.trace.v1\","
        "\"party\":%d,\"clock_offset_us\":%lld}\n}\n",
        pid, (long long)peerClockOffsetUs());
    out.append(tail, size_t(n));
    return out;
}

bool
writeChromeTrace(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string doc = exportChromeTrace();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) ==
                    doc.size();
    std::fclose(f);
    return ok;
}

void
retainExport()
{
    std::string doc = exportChromeTrace();
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.m);
    r.retained = std::move(doc);
}

std::string
lastRetainedExport()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.m);
    return r.retained;
}

void
resetForTest()
{
    using detail::Ring;
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.m);
    for (Ring &ring : r.rings) {
        ring.seq.store(0, std::memory_order_relaxed);
        for (size_t i = 0; i < Ring::kCapacity; ++i)
            ring.words[i * Ring::kWords].store(
                0, std::memory_order_relaxed);
    }
    r.retained.clear();
}

} // namespace ironman::trace
