#include "common/metrics.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>

namespace ironman::metrics {

namespace detail {

bool
readEnabledFromEnv()
{
    const char *env = std::getenv("IRONMAN_METRICS");
    if (!env)
        return true;
    std::string v(env);
    for (char &c : v)
        c = char(std::tolower((unsigned char)c));
    return !(v == "off" || v == "0" || v == "false" || v == "no");
}

} // namespace detail

uint64_t
nowUs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot s;
    uint64_t counts[kBuckets + 1];
    for (size_t i = 0; i <= kBuckets; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        s.count += counts[i];
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    s.overflow = counts[kOverflowIndex];
    if (s.count == 0)
        return s;
    // Percentile q = lower bound of the bucket holding the
    // ceil(q*count)-th sample (1-based).
    const auto pct = [&](double q) {
        uint64_t target = uint64_t(q * double(s.count));
        if (target * 1.0 < q * double(s.count))
            ++target;
        if (target == 0)
            target = 1;
        uint64_t seen = 0;
        for (size_t i = 0; i <= kBuckets; ++i) {
            seen += counts[i];
            if (seen >= target)
                return bucketLowerBound(i);
        }
        return bucketLowerBound(kOverflowIndex);
    };
    s.p50 = pct(0.50);
    s.p90 = pct(0.90);
    s.p99 = pct(0.99);
    return s;
}

/**
 * Singleton state. Deques give every handle a stable address for the
 * lifetime of the process; the maps (sorted, for deterministic
 * exposition order) dedup by name.
 */
struct Registry::Impl {
    mutable std::mutex m;
    std::deque<Counter> counterSlots;
    std::deque<Gauge> gaugeSlots;
    std::deque<Histogram> histogramSlots;
    std::map<std::string, Counter *> counters;
    std::map<std::string, Gauge *> gauges;
    std::map<std::string, Histogram *> histograms;
};

Registry &
Registry::instance()
{
    static Registry r;
    return r;
}

Registry::Impl &
Registry::impl() const
{
    static Impl impl;
    return impl;
}

Counter &
Registry::counter(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.m);
    Counter *&slot = i.counters[name];
    if (!slot)
        slot = &i.counterSlots.emplace_back();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.m);
    Gauge *&slot = i.gauges[name];
    if (!slot)
        slot = &i.gaugeSlots.emplace_back();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.m);
    Histogram *&slot = i.histograms[name];
    if (!slot)
        slot = &i.histogramSlots.emplace_back();
    return *slot;
}

uint64_t
Registry::counterValue(const std::string &name) const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.m);
    const auto it = i.counters.find(name);
    return it == i.counters.end() ? 0 : it->second->value();
}

int64_t
Registry::gaugeValue(const std::string &name) const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.m);
    const auto it = i.gauges.find(name);
    return it == i.gauges.end() ? 0 : it->second->value();
}

Histogram::Snapshot
Registry::histogramSnapshot(const std::string &name) const
{
    Histogram *h = nullptr;
    {
        Impl &i = impl();
        std::lock_guard<std::mutex> lock(i.m);
        const auto it = i.histograms.find(name);
        if (it != i.histograms.end())
            h = it->second;
    }
    return h ? h->snapshot() : Histogram::Snapshot{};
}

std::string
Registry::renderText() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.m);
    std::string out;
    out.reserve(4096);
    char line[256];
    for (const auto &[name, c] : i.counters) {
        std::snprintf(line, sizeof(line), "%s %llu\n", name.c_str(),
                      (unsigned long long)c->value());
        out += line;
    }
    for (const auto &[name, g] : i.gauges) {
        std::snprintf(line, sizeof(line), "%s %lld\n", name.c_str(),
                      (long long)g->value());
        out += line;
    }
    for (const auto &[name, h] : i.histograms) {
        const Histogram::Snapshot s = h->snapshot();
        std::snprintf(line, sizeof(line),
                      "%s_count %llu\n%s_sum %llu\n%s_p50 %llu\n"
                      "%s_p90 %llu\n%s_p99 %llu\n",
                      name.c_str(), (unsigned long long)s.count,
                      name.c_str(), (unsigned long long)s.sum,
                      name.c_str(), (unsigned long long)s.p50,
                      name.c_str(), (unsigned long long)s.p90,
                      name.c_str(), (unsigned long long)s.p99);
        out += line;
        // Sparse cumulative buckets, closed by the mandatory +Inf
        // line (= _count, including overflow samples).
        h->forEachNonEmptyBucket([&](uint64_t le, uint64_t cum) {
            std::snprintf(line, sizeof(line),
                          "%s_bucket{le=\"%llu\"} %llu\n", name.c_str(),
                          (unsigned long long)le,
                          (unsigned long long)cum);
            out += line;
        });
        std::snprintf(line, sizeof(line),
                      "%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                      (unsigned long long)s.count);
        out += line;
    }
    return out;
}

std::string
Registry::renderJson() const
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.m);
    std::string out;
    out.reserve(4096);
    char line[320];
    out += "{\n  \"schema\": \"ironman.metrics.v1\",\n";
    out += "  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : i.counters) {
        std::snprintf(line, sizeof(line), "%s\n    \"%s\": %llu",
                      first ? "" : ",", name.c_str(),
                      (unsigned long long)c->value());
        out += line;
        first = false;
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : i.gauges) {
        std::snprintf(line, sizeof(line), "%s\n    \"%s\": %lld",
                      first ? "" : ",", name.c_str(),
                      (long long)g->value());
        out += line;
        first = false;
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : i.histograms) {
        const Histogram::Snapshot s = h->snapshot();
        std::snprintf(line, sizeof(line),
                      "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, "
                      "\"p50\": %llu, \"p90\": %llu, \"p99\": %llu, "
                      "\"overflow\": %llu}",
                      first ? "" : ",", name.c_str(),
                      (unsigned long long)s.count,
                      (unsigned long long)s.sum, (unsigned long long)s.p50,
                      (unsigned long long)s.p90, (unsigned long long)s.p99,
                      (unsigned long long)s.overflow);
        out += line;
        first = false;
    }
    out += "\n  }\n}\n";
    return out;
}

bool
Registry::writeJson(const std::string &path) const
{
    // renderJson takes the registry lock; the file write happens
    // outside it.
    const std::string doc = renderJson();
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const size_t wrote = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return wrote == doc.size();
}

} // namespace ironman::metrics
