/**
 * @file
 * Length-expanding PRGs for GGM-tree construction.
 *
 * The paper's SPCOT optimization (Sec. 4.1) is a joint choice of
 * (PRG construction, tree arity):
 *
 *   - AES:    expanding one parent into m children costs m AES calls
 *             (one fixed key per child slot), Fig. 6(a)/(b);
 *   - ChaCha: one core call yields 512 bits = 4 children, so m children
 *             cost ceil(m/4) calls, Fig. 6(c)/(d).
 *
 * TreePrg abstracts this and counts primitive invocations so benches
 * can reproduce the operation-reduction numbers of Fig. 7(a).
 */

#ifndef IRONMAN_CRYPTO_PRG_H
#define IRONMAN_CRYPTO_PRG_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/block.h"
#include "crypto/aes.h"
#include "crypto/chacha.h"

namespace ironman::crypto {

/** Which primitive instantiates the GGM PRG. */
enum class PrgKind
{
    Aes,      ///< AES-128, one call per child (AES-NI when available).
    ChaCha8,  ///< 8-round ChaCha, four children per call (Ironman's pick).
    ChaCha12, ///< 12-round ChaCha.
    ChaCha20, ///< 20-round ChaCha (conservative margin).
};

/** Human-readable name ("AES", "ChaCha8", ...). */
std::string prgKindName(PrgKind kind);

/**
 * Seed-to-children expander used by GGM trees.
 *
 * Both parties must construct the expander with identical parameters
 * (the key material is fixed, derived from public constants), so the
 * receiver's reconstruction matches the sender's expansion.
 */
class TreePrg
{
  public:
    /**
     * @param kind Primitive choice.
     * @param max_arity Largest child count expand() will be asked for.
     */
    TreePrg(PrgKind kind, unsigned max_arity);

    /** Expand @p parent into @p arity children (deterministic). */
    void expand(const Block &parent, Block *children, unsigned arity);

    /**
     * Expand a whole tree level: @p count parents, children written to
     * children[j*arity + c]. Identical output to calling expand() per
     * parent, but batches the AES pipeline (the software analogue of
     * the breadth-first hardware schedule of Sec. 4.3).
     */
    void expandLevel(const Block *parents, size_t count, Block *children,
                     unsigned arity);

    /** Primitive calls one expansion of width @p arity costs. */
    uint64_t opsForExpansion(unsigned arity) const;

    /** Total primitive invocations since construction / resetOps(). */
    uint64_t ops() const { return opCount; }

    void resetOps() { opCount = 0; }

    PrgKind kind() const { return prgKind; }

  private:
    PrgKind prgKind;
    unsigned maxArity;
    uint64_t opCount = 0;

    /// One fixed-key AES instance per child slot (AES mode).
    std::vector<Aes128> aesSlots;
    /// ChaCha core (ChaCha modes).
    std::unique_ptr<ChaCha> chacha;
    /// Scratch for batched level expansion.
    std::vector<Block> scratch;
};

/**
 * Counter-mode pseudo-random stream over a primitive; used for the LPN
 * index generator ("LPN uses [AES] to generate indices of random
 * access", Sec. 1) and anywhere a party needs a long public
 * pseudo-random tape bound to a seed.
 */
class CtrStream
{
  public:
    CtrStream(PrgKind kind, const Block &seed);

    /** Next 32 uniform bits. */
    uint32_t nextUint32();

    /** Uniform value in [0, bound), bound > 0 (rejection sampled). */
    uint32_t nextBelow(uint32_t bound);

    /** Primitive invocations so far. */
    uint64_t ops() const { return opCount; }

  private:
    void refill();

    PrgKind prgKind;
    Block seed;
    uint64_t counter = 0;
    uint64_t opCount = 0;

    std::unique_ptr<Aes128> aes;
    std::unique_ptr<ChaCha> chacha;

    uint32_t buffer[16];
    unsigned bufferLen = 0; ///< valid words in buffer
    unsigned bufferPos = 0;
};

} // namespace ironman::crypto

#endif // IRONMAN_CRYPTO_PRG_H
