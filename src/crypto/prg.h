/**
 * @file
 * Length-expanding PRGs for GGM-tree construction.
 *
 * The paper's SPCOT optimization (Sec. 4.1) is a joint choice of
 * (PRG construction, tree arity):
 *
 *   - AES:    expanding one parent into m children costs m AES calls
 *             (one fixed key per child slot), Fig. 6(a)/(b);
 *   - ChaCha: one core call yields 512 bits = 4 children, so m children
 *             cost ceil(m/4) calls, Fig. 6(c)/(d).
 *
 * TreePrg is a thin compatibility wrapper over the unified
 * SeedExpander interface (crypto/seed_expander.h); it keeps the
 * historical per-parent API and the operation counter benches use to
 * reproduce the Fig. 7(a) numbers. New code should prefer
 * SeedExpander directly.
 */

#ifndef IRONMAN_CRYPTO_PRG_H
#define IRONMAN_CRYPTO_PRG_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/block.h"
#include "crypto/aes.h"
#include "crypto/chacha.h"
#include "crypto/seed_expander.h"

namespace ironman::crypto {

/**
 * Seed-to-children expander used by GGM trees.
 *
 * Both parties must construct the expander with identical parameters
 * (the key material is fixed, derived from public constants), so the
 * receiver's reconstruction matches the sender's expansion.
 */
class TreePrg
{
  public:
    /**
     * @param kind Primitive choice.
     * @param max_arity Largest child count expand() will be asked for.
     */
    TreePrg(PrgKind kind, unsigned max_arity);

    /** Expand @p parent into @p arity children (deterministic). */
    void expand(const Block &parent, Block *children, unsigned arity);

    /**
     * Expand a whole tree level: @p count parents, children written to
     * children[j*arity + c]. Identical output to calling expand() per
     * parent, but batches the AES pipeline (the software analogue of
     * the breadth-first hardware schedule of Sec. 4.3).
     */
    void expandLevel(const Block *parents, size_t count, Block *children,
                     unsigned arity);

    /** Primitive calls one expansion of width @p arity costs. */
    uint64_t opsForExpansion(unsigned arity) const;

    /** Total primitive invocations since construction / resetOps(). */
    uint64_t ops() const { return exp->ops(); }

    void resetOps() { exp->resetOps(); }

    PrgKind kind() const { return prgKind; }

    /** Underlying unified expander (one instance — not thread-safe). */
    SeedExpander &expander() { return *exp; }

  private:
    PrgKind prgKind;
    std::unique_ptr<SeedExpander> exp;
};

/**
 * Counter-mode pseudo-random stream over a primitive; used for the LPN
 * index generator ("LPN uses [AES] to generate indices of random
 * access", Sec. 1) and anywhere a party needs a long public
 * pseudo-random tape bound to a seed.
 */
class CtrStream
{
  public:
    CtrStream(PrgKind kind, const Block &seed);

    /** Next 32 uniform bits. */
    uint32_t nextUint32();

    /** Uniform value in [0, bound), bound > 0 (rejection sampled). */
    uint32_t nextBelow(uint32_t bound);

    /** Primitive invocations so far. */
    uint64_t ops() const { return opCount; }

  private:
    void refill();

    PrgKind prgKind;
    Block seed;
    uint64_t counter = 0;
    uint64_t opCount = 0;

    std::unique_ptr<Aes128> aes;
    std::unique_ptr<ChaCha> chacha;

    uint32_t buffer[16];
    unsigned bufferLen = 0; ///< valid words in buffer
    unsigned bufferPos = 0;
};

} // namespace ironman::crypto

#endif // IRONMAN_CRYPTO_PRG_H
