/**
 * @file
 * Correlation-robust hash function (CRHF).
 *
 * COT correlations r1 = r0 XOR Delta leak Delta if used directly as OT
 * pads, so the online phase hashes them first (Fig. 2 of the paper):
 * (y0, y1) = (m0 XOR H(r0), m1 XOR H(r1)). We instantiate H with the
 * standard MMO construction over fixed-key AES:
 *
 *   H(x, tweak) = AES_K(sigma) XOR sigma,  sigma = x XOR tweakBlock
 *
 * which is the construction used by Ferret/EMP and is correlation
 * robust in the ideal-cipher model.
 */

#ifndef IRONMAN_CRYPTO_CRHF_H
#define IRONMAN_CRYPTO_CRHF_H

#include "common/block.h"
#include "crypto/aes.h"

namespace ironman::crypto {

/** MMO hash with a process-wide fixed AES key. */
class Crhf
{
  public:
    Crhf();

    /** Hash one block under tweak @p tweak (e.g. the OT instance id). */
    Block hash(const Block &x, uint64_t tweak) const;

    /**
     * Hash a batch sharing one base tweak (tweak + index per entry).
     * Allocation-free; @p in == @p out is allowed (in-place). The
     * AES-NI engine runs a fused 8-wide MMO pipeline.
     */
    void hashBatch(const Block *in, Block *out, size_t n,
                   uint64_t tweak_base) const;

  private:
    Aes128 cipher;
};

} // namespace ironman::crypto

#endif // IRONMAN_CRYPTO_CRHF_H
