#include "crypto/chacha.h"

#include <cstring>

#include "common/logging.h"

namespace ironman::crypto {

namespace {

uint32_t
rotl32(uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

void
quarterRound(uint32_t &a, uint32_t &b, uint32_t &c, uint32_t &d)
{
    a += b; d ^= a; d = rotl32(d, 16);
    c += d; b ^= c; b = rotl32(b, 12);
    a += b; d ^= a; d = rotl32(d, 8);
    c += d; b ^= c; b = rotl32(b, 7);
}

} // namespace

ChaCha::ChaCha(int rounds) : numRounds(rounds)
{
    IRONMAN_CHECK(rounds > 0 && rounds % 2 == 0);
}

void
ChaCha::block(const std::array<uint32_t, 8> &key, uint32_t counter,
              const std::array<uint32_t, 3> &nonce, uint8_t out[64]) const
{
    // "expand 32-byte k"
    uint32_t state[16] = {
        0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
        key[0], key[1], key[2], key[3],
        key[4], key[5], key[6], key[7],
        counter, nonce[0], nonce[1], nonce[2],
    };

    uint32_t x[16];
    std::memcpy(x, state, sizeof(x));

    for (int r = 0; r < numRounds; r += 2) {
        // Column round.
        quarterRound(x[0], x[4], x[8], x[12]);
        quarterRound(x[1], x[5], x[9], x[13]);
        quarterRound(x[2], x[6], x[10], x[14]);
        quarterRound(x[3], x[7], x[11], x[15]);
        // Diagonal round.
        quarterRound(x[0], x[5], x[10], x[15]);
        quarterRound(x[1], x[6], x[11], x[12]);
        quarterRound(x[2], x[7], x[8], x[13]);
        quarterRound(x[3], x[4], x[9], x[14]);
    }

    for (int i = 0; i < 16; ++i) {
        uint32_t v = x[i] + state[i];
        out[4 * i + 0] = uint8_t(v);
        out[4 * i + 1] = uint8_t(v >> 8);
        out[4 * i + 2] = uint8_t(v >> 16);
        out[4 * i + 3] = uint8_t(v >> 24);
    }
}

void
ChaCha::expandSeed(const Block &seed, uint64_t tweak,
                   std::array<Block, 4> &out) const
{
    uint8_t seed_bytes[16];
    seed.toBytes(seed_bytes);

    std::array<uint32_t, 8> key;
    for (int i = 0; i < 4; ++i) {
        std::memcpy(&key[i], seed_bytes + 4 * i, 4);
    }
    // Fixed domain-separation constant in the upper key half. Any value
    // works for correctness; fixing it makes executions reproducible.
    key[4] = 0x49524f4e; // "IRON"
    key[5] = 0x4d414e2d; // "MAN-"
    key[6] = 0x4f545047; // "OTPG"
    key[7] = 0x52474747; // "RGGG"

    std::array<uint32_t, 3> nonce = {
        uint32_t(tweak), uint32_t(tweak >> 32), 0
    };

    uint8_t ks[64];
    block(key, 0, nonce, ks);
    for (int i = 0; i < 4; ++i)
        out[i] = Block::fromBytes(ks + 16 * i);
}

} // namespace ironman::crypto
