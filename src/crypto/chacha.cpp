#include "crypto/chacha.h"

#include <atomic>
#include <cstring>

#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>
#define IRONMAN_CHACHA_HAVE_SSE2 1
#endif

namespace ironman::crypto {

namespace detail {

const uint32_t kChaChaPrgKeyHigh[4] = {
    0x49524f4e, // "IRON"
    0x4d414e2d, // "MAN-"
    0x4f545047, // "OTPG"
    0x52474747, // "RGGG"
};

} // namespace detail

namespace {

uint32_t
rotl32(uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

void
quarterRound(uint32_t &a, uint32_t &b, uint32_t &c, uint32_t &d)
{
    a += b; d ^= a; d = rotl32(d, 16);
    c += d; b ^= c; b = rotl32(b, 12);
    a += b; d ^= a; d = rotl32(d, 8);
    c += d; b ^= c; b = rotl32(b, 7);
}

std::atomic<bool> forceScalarChaCha{false};

#ifdef IRONMAN_CHACHA_HAVE_SSE2

// ---------------------------------------------------------------------------
// SSE2 x4 core: four independent states, one state word per 32-bit
// lane. The round function is identical arithmetic to the scalar core,
// so every lane reproduces expandSeed() exactly.
// ---------------------------------------------------------------------------

inline __m128i
rotlVec(__m128i v, int k)
{
    return _mm_or_si128(_mm_slli_epi32(v, k), _mm_srli_epi32(v, 32 - k));
}

#define IRONMAN_CHACHA_QR(a, b, c, d)                                      \
    do {                                                                   \
        a = _mm_add_epi32(a, b); d = _mm_xor_si128(d, a);                  \
        d = rotlVec(d, 16);                                                \
        c = _mm_add_epi32(c, d); b = _mm_xor_si128(b, c);                  \
        b = rotlVec(b, 12);                                                \
        a = _mm_add_epi32(a, b); d = _mm_xor_si128(d, a);                  \
        d = rotlVec(d, 8);                                                 \
        c = _mm_add_epi32(c, d); b = _mm_xor_si128(b, c);                  \
        b = rotlVec(b, 7);                                                 \
    } while (0)

void
chachaExpandX4(int rounds, const Block *seeds, uint32_t n0, uint32_t n1,
               Block *out, size_t stride, unsigned take)
{
    // State rows: 4 constants, seed words 0-3, PRG key-high words,
    // counter 0 and the tweak nonce — broadcast except the seed rows.
    __m128i v[16];
    v[0] = _mm_set1_epi32(int(0x61707865));
    v[1] = _mm_set1_epi32(int(0x3320646e));
    v[2] = _mm_set1_epi32(int(0x79622d32));
    v[3] = _mm_set1_epi32(int(0x6b206574));
    alignas(16) uint32_t sw[4][4];
    for (int s = 0; s < 4; ++s) {
        sw[0][s] = uint32_t(seeds[s].lo);
        sw[1][s] = uint32_t(seeds[s].lo >> 32);
        sw[2][s] = uint32_t(seeds[s].hi);
        sw[3][s] = uint32_t(seeds[s].hi >> 32);
    }
    for (int w = 0; w < 4; ++w)
        v[4 + w] = _mm_load_si128(reinterpret_cast<__m128i *>(sw[w]));
    for (int w = 0; w < 4; ++w)
        v[8 + w] = _mm_set1_epi32(int(detail::kChaChaPrgKeyHigh[w]));
    v[12] = _mm_setzero_si128();
    v[13] = _mm_set1_epi32(int(n0));
    v[14] = _mm_set1_epi32(int(n1));
    v[15] = _mm_setzero_si128();

    __m128i x[16];
    for (int i = 0; i < 16; ++i)
        x[i] = v[i];

    for (int r = 0; r < rounds; r += 2) {
        IRONMAN_CHACHA_QR(x[0], x[4], x[8], x[12]);
        IRONMAN_CHACHA_QR(x[1], x[5], x[9], x[13]);
        IRONMAN_CHACHA_QR(x[2], x[6], x[10], x[14]);
        IRONMAN_CHACHA_QR(x[3], x[7], x[11], x[15]);
        IRONMAN_CHACHA_QR(x[0], x[5], x[10], x[15]);
        IRONMAN_CHACHA_QR(x[1], x[6], x[11], x[12]);
        IRONMAN_CHACHA_QR(x[2], x[7], x[8], x[13]);
        IRONMAN_CHACHA_QR(x[3], x[4], x[9], x[14]);
    }

    for (int i = 0; i < 16; ++i)
        x[i] = _mm_add_epi32(x[i], v[i]);

    // Transpose word-major lanes back to seed-major 64-byte outputs:
    // quad q of x rows 4q..4q+3 yields, per seed lane, output words
    // 4q..4q+3 = keystream block q.
    for (int q = 0; q < 4 && unsigned(q) < take; ++q) {
        __m128i a = x[4 * q + 0], b = x[4 * q + 1];
        __m128i c = x[4 * q + 2], d = x[4 * q + 3];
        __m128i t0 = _mm_unpacklo_epi32(a, b); // a0 b0 a1 b1
        __m128i t1 = _mm_unpackhi_epi32(a, b); // a2 b2 a3 b3
        __m128i t2 = _mm_unpacklo_epi32(c, d); // c0 d0 c1 d1
        __m128i t3 = _mm_unpackhi_epi32(c, d); // c2 d2 c3 d3
        __m128i r0 = _mm_unpacklo_epi64(t0, t2); // seed 0's block q
        __m128i r1 = _mm_unpackhi_epi64(t0, t2); // seed 1's block q
        __m128i r2 = _mm_unpacklo_epi64(t1, t3); // seed 2's block q
        __m128i r3 = _mm_unpackhi_epi64(t1, t3); // seed 3's block q
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + q), r0);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + stride + q),
                         r1);
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(out + 2 * stride + q), r2);
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(out + 3 * stride + q), r3);
    }
}

#undef IRONMAN_CHACHA_QR

#endif // IRONMAN_CHACHA_HAVE_SSE2

} // namespace

ChaCha::ChaCha(int rounds) : numRounds(rounds)
{
    IRONMAN_CHECK(rounds > 0 && rounds % 2 == 0);
}

void
ChaCha::forceScalar(bool force)
{
    forceScalarChaCha.store(force, std::memory_order_relaxed);
}

void
ChaCha::block(const std::array<uint32_t, 8> &key, uint32_t counter,
              const std::array<uint32_t, 3> &nonce, uint8_t out[64]) const
{
    // "expand 32-byte k"
    uint32_t state[16] = {
        0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
        key[0], key[1], key[2], key[3],
        key[4], key[5], key[6], key[7],
        counter, nonce[0], nonce[1], nonce[2],
    };

    uint32_t x[16];
    std::memcpy(x, state, sizeof(x));

    for (int r = 0; r < numRounds; r += 2) {
        // Column round.
        quarterRound(x[0], x[4], x[8], x[12]);
        quarterRound(x[1], x[5], x[9], x[13]);
        quarterRound(x[2], x[6], x[10], x[14]);
        quarterRound(x[3], x[7], x[11], x[15]);
        // Diagonal round.
        quarterRound(x[0], x[5], x[10], x[15]);
        quarterRound(x[1], x[6], x[11], x[12]);
        quarterRound(x[2], x[7], x[8], x[13]);
        quarterRound(x[3], x[4], x[9], x[14]);
    }

    for (int i = 0; i < 16; ++i) {
        uint32_t v = x[i] + state[i];
        out[4 * i + 0] = uint8_t(v);
        out[4 * i + 1] = uint8_t(v >> 8);
        out[4 * i + 2] = uint8_t(v >> 16);
        out[4 * i + 3] = uint8_t(v >> 24);
    }
}

void
ChaCha::expandSeed(const Block &seed, uint64_t tweak,
                   std::array<Block, 4> &out) const
{
    uint8_t seed_bytes[16];
    seed.toBytes(seed_bytes);

    std::array<uint32_t, 8> key;
    for (int i = 0; i < 4; ++i) {
        std::memcpy(&key[i], seed_bytes + 4 * i, 4);
    }
    // Fixed domain-separation constant in the upper key half. Any value
    // works for correctness; fixing it makes executions reproducible.
    key[4] = detail::kChaChaPrgKeyHigh[0];
    key[5] = detail::kChaChaPrgKeyHigh[1];
    key[6] = detail::kChaChaPrgKeyHigh[2];
    key[7] = detail::kChaChaPrgKeyHigh[3];

    std::array<uint32_t, 3> nonce = {
        uint32_t(tweak), uint32_t(tweak >> 32), 0
    };

    uint8_t ks[64];
    block(key, 0, nonce, ks);
    for (int i = 0; i < 4; ++i)
        out[i] = Block::fromBytes(ks + 16 * i);
}

void
ChaCha::expandSeedsBatch(const Block *seeds, size_t n, uint64_t tweak,
                         Block *out, size_t stride, unsigned take) const
{
    IRONMAN_CHECK(take >= 1 && take <= 4 && stride >= take);
    const uint32_t n0 = uint32_t(tweak);
    const uint32_t n1 = uint32_t(tweak >> 32);
    size_t i = 0;

    if (!forceScalarChaCha.load(std::memory_order_relaxed)) {
#ifdef IRONMAN_CHACHA_HAVE_SSE2
        static const bool have_avx2 = detail::chachaAvx2Supported();
        if (have_avx2)
            for (; i + 8 <= n; i += 8)
                detail::chachaExpandX8(numRounds, seeds + i, n0, n1,
                                       out + i * stride, stride, take);
        for (; i + 4 <= n; i += 4)
            chachaExpandX4(numRounds, seeds + i, n0, n1, out + i * stride,
                           stride, take);
#endif
    }

    std::array<Block, 4> chunk;
    for (; i < n; ++i) {
        expandSeed(seeds[i], tweak, chunk);
        for (unsigned c = 0; c < take; ++c)
            out[i * stride + c] = chunk[c];
    }
}

} // namespace ironman::crypto
