#include "crypto/seed_expander.h"

#include <algorithm>
#include <array>
#include <vector>

#include "common/logging.h"
#include "crypto/aes.h"
#include "crypto/chacha.h"

namespace ironman::crypto {

std::string
prgKindName(PrgKind kind)
{
    switch (kind) {
      case PrgKind::Aes: return "AES";
      case PrgKind::ChaCha8: return "ChaCha8";
      case PrgKind::ChaCha12: return "ChaCha12";
      case PrgKind::ChaCha20: return "ChaCha20";
    }
    return "?";
}

namespace {

int
chachaRounds(PrgKind kind)
{
    switch (kind) {
      case PrgKind::ChaCha8: return 8;
      case PrgKind::ChaCha12: return 12;
      case PrgKind::ChaCha20: return 20;
      default: IRONMAN_PANIC("not a ChaCha kind");
    }
}

/** Fixed, public per-slot AES keys (both parties derive the same). */
Block
slotKey(unsigned slot)
{
    // Distinct nothing-up-my-sleeve constants per child slot.
    return Block(0x9e3779b97f4a7c15ULL * (slot + 1),
                 0xc2b2ae3d27d4eb4fULL ^ (uint64_t(slot) << 32));
}

/**
 * AES tree expander: child_c = AES_{k_c}(s) ^ s — the standard
 * double-length PRG of Sec. 2.3.1 generalized to m fixed keys
 * (Fig. 6(b)). Batched per slot so the AES pipeline stays full (the
 * software analogue of the breadth-first hardware schedule, Sec. 4.3).
 */
class AesTreeExpander final : public SeedExpander
{
  public:
    explicit AesTreeExpander(unsigned max_fanout)
        : SeedExpander(max_fanout)
    {
        aesSlots.reserve(max_fanout);
        for (unsigned i = 0; i < max_fanout; ++i)
            aesSlots.emplace_back(slotKey(i));
    }

    void
    expand(const Block *seeds, Block *out, size_t n,
           unsigned fanout) override
    {
        IRONMAN_CHECK(fanout >= 1 && fanout <= maxFan);
        if (scratch.size() < n)
            scratch.resize(n);
        for (unsigned c = 0; c < fanout; ++c) {
            aesSlots[c].encryptBatch(seeds, scratch.data(), n);
            for (size_t i = 0; i < n; ++i)
                out[i * fanout + c] = scratch[i] ^ seeds[i];
        }
        opCount += uint64_t(fanout) * n;
    }

    uint64_t opsPerSeed(unsigned fanout) const override { return fanout; }

  private:
    std::vector<Aes128> aesSlots;
    std::vector<Block> scratch;
};

/** ChaCha tree expander: one core call yields 4 children (Fig. 6(c)). */
class ChaChaTreeExpander final : public SeedExpander
{
  public:
    ChaChaTreeExpander(PrgKind kind, unsigned max_fanout)
        : SeedExpander(max_fanout), core(chachaRounds(kind))
    {
    }

    void
    expand(const Block *seeds, Block *out, size_t n,
           unsigned fanout) override
    {
        IRONMAN_CHECK(fanout >= 1 && fanout <= maxFan);
        // Chunk index is the tweak so all chunks of one expansion stay
        // distinct; every chunk runs all n seeds through the SIMD
        // multi-seed core (8-wide on AVX2), which is what keeps the
        // level-synchronous cross-tree GGM expansion pipeline-bound
        // rather than call-overhead-bound.
        for (unsigned produced = 0, chunk_idx = 0; produced < fanout;
             produced += 4, ++chunk_idx) {
            const unsigned take = std::min(4u, fanout - produced);
            core.expandSeedsBatch(seeds, n, chunk_idx, out + produced,
                                  fanout, take);
            opCount += n;
        }
    }

    uint64_t
    opsPerSeed(unsigned fanout) const override
    {
        return (fanout + 3) / 4; // 512-bit output = 4 blocks per call
    }

  private:
    ChaCha core;
};

/** Keyed AES counter expander (the LPN index tape). */
class AesCtrExpander final : public SeedExpander
{
  public:
    AesCtrExpander(const Block &key, unsigned max_fanout)
        : SeedExpander(max_fanout), aes(key)
    {
    }

    void
    expand(const Block *seeds, Block *out, size_t n,
           unsigned fanout) override
    {
        IRONMAN_CHECK(fanout >= 1 && fanout <= maxFan);
        if (ctrs.size() < n * fanout)
            ctrs.resize(n * fanout);
        for (size_t i = 0; i < n; ++i)
            for (unsigned c = 0; c < fanout; ++c)
                ctrs[i * fanout + c] =
                    Block(seeds[i].hi, seeds[i].lo + c);
        aes.encryptBatch(ctrs.data(), out, n * fanout);
        opCount += uint64_t(fanout) * n;
    }

    uint64_t opsPerSeed(unsigned fanout) const override { return fanout; }

  private:
    Aes128 aes;
    std::vector<Block> ctrs;
};

} // namespace

std::unique_ptr<SeedExpander>
makeTreeExpander(PrgKind kind, unsigned max_fanout)
{
    IRONMAN_CHECK(max_fanout >= 2);
    if (kind == PrgKind::Aes)
        return std::make_unique<AesTreeExpander>(max_fanout);
    return std::make_unique<ChaChaTreeExpander>(kind, max_fanout);
}

std::unique_ptr<SeedExpander>
makeCtrExpander(const Block &key, unsigned max_fanout)
{
    IRONMAN_CHECK(max_fanout >= 1);
    return std::make_unique<AesCtrExpander>(key, max_fanout);
}

} // namespace ironman::crypto
