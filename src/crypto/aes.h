/**
 * @file
 * AES-128 block cipher.
 *
 * Two engines are provided behind one class:
 *  - a portable table-based software implementation (always available,
 *    validated against the FIPS-197 known-answer vector), and
 *  - an AES-NI implementation compiled with -maes and selected at
 *    runtime when the CPU supports it (this mirrors the paper's CPU
 *    baseline, which relies on AES-NI for the GGM-tree PRG).
 *
 * The cipher is used in three places:
 *  - the AES-based double/m-ary length PRG for GGM trees,
 *  - the MMO correlation-robust hash converting COT to OT,
 *  - the index generator of the LPN encoder.
 */

#ifndef IRONMAN_CRYPTO_AES_H
#define IRONMAN_CRYPTO_AES_H

#include <array>
#include <cstdint>

#include "common/block.h"

namespace ironman::crypto {

/** AES-128 with a fixed expanded key. */
class Aes128
{
  public:
    /** Expand @p key into the round-key schedule. */
    explicit Aes128(const Block &key);

    /** Encrypt one 16-byte block (byte-oriented API). */
    void encryptBytes(const uint8_t in[16], uint8_t out[16]) const;

    /** Encrypt one Block. */
    Block encrypt(const Block &in) const;

    /**
     * Encrypt @p n blocks; uses the widest engine available
     * (AES-NI pipelines 8 blocks at a time when present).
     */
    void encryptBatch(const Block *in, Block *out, size_t n) const;

    /**
     * Davies-Meyer style batch: inout[i] = AES(inout[i]) ^ inout[i].
     * This is the inner loop of the MMO correlation-robust hash; the
     * AES-NI engine keeps the pre-whitened input in registers so the
     * whole hash is one fused 8-wide pass with no staging buffer.
     */
    void encryptXorBatch(Block *inout, size_t n) const;

    /** True when the process selected the AES-NI engine. */
    static bool usingAesni();

    /** Force the software engine for all future Aes128 uses (tests). */
    static void forceSoftware(bool force);

    /** Round keys as 44 big-endian words (exposed for the NI engine). */
    const std::array<uint32_t, 44> &roundKeys() const { return rk; }

  private:
    void softwareEncrypt(const uint8_t in[16], uint8_t out[16]) const;

    std::array<uint32_t, 44> rk;
    /// Byte-ordered schedule for the AES-NI engine (11 x 16 bytes).
    alignas(16) std::array<uint8_t, 176> niSchedule;
};

namespace detail {

/** AES-NI engine entry points (defined in aes_ni.cpp, built with -maes). */
bool aesniSupported();
void aesniEncryptBatch(const uint8_t *schedule, const Block *in,
                       Block *out, size_t n);
void aesniEncryptXorBatch(const uint8_t *schedule, Block *inout, size_t n);

} // namespace detail

} // namespace ironman::crypto

#endif // IRONMAN_CRYPTO_AES_H
