/**
 * @file
 * ChaCha stream-cipher core with a configurable round count.
 *
 * Ironman replaces the AES-based GGM PRG with ChaCha8: one core
 * invocation emits 512 bits (four 128-bit blocks), which is exactly
 * what the 4-ary tree expansion consumes (Sec. 4.1). The 20-round
 * variant is validated against the RFC 8439 known-answer vector; the
 * 8- and 12-round variants share the identical round function.
 */

#ifndef IRONMAN_CRYPTO_CHACHA_H
#define IRONMAN_CRYPTO_CHACHA_H

#include <array>
#include <cstdint>

#include "common/block.h"

namespace ironman::crypto {

/** One ChaCha block-function evaluation: 64 bytes of keystream. */
class ChaCha
{
  public:
    /**
     * @param rounds Total rounds; must be even (8, 12 or 20).
     */
    explicit ChaCha(int rounds);

    /**
     * Run the block function.
     *
     * @param key 256-bit key as 8 little-endian words.
     * @param counter 32-bit block counter.
     * @param nonce 96-bit nonce as 3 little-endian words.
     * @param out 64 bytes of keystream.
     */
    void block(const std::array<uint32_t, 8> &key, uint32_t counter,
               const std::array<uint32_t, 3> &nonce, uint8_t out[64]) const;

    /**
     * PRG-flavoured call: expand a 128-bit seed into four 128-bit
     * blocks. The seed fills key words 0-3; words 4-7 hold a domain
     * constant; @p tweak becomes the nonce. One call == one "ChaCha
     * operation" in the paper's operation counts.
     */
    void expandSeed(const Block &seed, uint64_t tweak,
                    std::array<Block, 4> &out) const;

    int rounds() const { return numRounds; }

  private:
    int numRounds;
};

} // namespace ironman::crypto

#endif // IRONMAN_CRYPTO_CHACHA_H
