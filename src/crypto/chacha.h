/**
 * @file
 * ChaCha stream-cipher core with a configurable round count.
 *
 * Ironman replaces the AES-based GGM PRG with ChaCha8: one core
 * invocation emits 512 bits (four 128-bit blocks), which is exactly
 * what the 4-ary tree expansion consumes (Sec. 4.1). The 20-round
 * variant is validated against the RFC 8439 known-answer vector; the
 * 8- and 12-round variants share the identical round function.
 *
 * expandSeedsBatch() runs many independent seed expansions through a
 * lane-parallel core (8 states per AVX2 pass, 4 per SSE2 pass, one
 * state word per SIMD lane) — the software analogue of the paper's
 * multi-core ChaCha pipeline, and what makes the level-synchronous
 * cross-tree GGM expansion pay: every tree level hands hundreds of
 * seeds to one call. Output is bit-identical to expandSeed() per seed
 * (forceScalar() pins the scalar core for equivalence tests).
 */

#ifndef IRONMAN_CRYPTO_CHACHA_H
#define IRONMAN_CRYPTO_CHACHA_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/block.h"

namespace ironman::crypto {

/** One ChaCha block-function evaluation: 64 bytes of keystream. */
class ChaCha
{
  public:
    /**
     * @param rounds Total rounds; must be even (8, 12 or 20).
     */
    explicit ChaCha(int rounds);

    /**
     * Run the block function.
     *
     * @param key 256-bit key as 8 little-endian words.
     * @param counter 32-bit block counter.
     * @param nonce 96-bit nonce as 3 little-endian words.
     * @param out 64 bytes of keystream.
     */
    void block(const std::array<uint32_t, 8> &key, uint32_t counter,
               const std::array<uint32_t, 3> &nonce, uint8_t out[64]) const;

    /**
     * PRG-flavoured call: expand a 128-bit seed into four 128-bit
     * blocks. The seed fills key words 0-3; words 4-7 hold a domain
     * constant; @p tweak becomes the nonce. One call == one "ChaCha
     * operation" in the paper's operation counts.
     */
    void expandSeed(const Block &seed, uint64_t tweak,
                    std::array<Block, 4> &out) const;

    /**
     * Batched expandSeed(): for each of @p n seeds, write the first
     * @p take (1..4) keystream blocks of chunk @p tweak to
     * out[i*stride .. i*stride+take). Bit-identical to calling
     * expandSeed() per seed; dispatches to the widest SIMD core the
     * CPU supports (AVX2 x8 / SSE2 x4 / scalar tail).
     */
    void expandSeedsBatch(const Block *seeds, size_t n, uint64_t tweak,
                          Block *out, size_t stride, unsigned take) const;

    int rounds() const { return numRounds; }

    /** Force the scalar core for all ChaCha batch calls (tests). */
    static void forceScalar(bool force);

  private:
    int numRounds;
};

namespace detail {

/** Fixed PRG domain constant occupying key words 4-7 of expandSeed. */
extern const uint32_t kChaChaPrgKeyHigh[4];

/** AVX2 x8 engine (chacha_avx2.cpp, built with -mavx2). */
bool chachaAvx2Supported();
void chachaExpandX8(int rounds, const Block *seeds, uint32_t n0,
                    uint32_t n1, Block *out, size_t stride,
                    unsigned take);

} // namespace detail

} // namespace ironman::crypto

#endif // IRONMAN_CRYPTO_CHACHA_H
