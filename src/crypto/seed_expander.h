/**
 * @file
 * Unified batched seed-expansion interface.
 *
 * Every pseudo-random expansion in the OTE stack — GGM tree levels
 * (AES-NI, portable AES, or ChaCha), the LPN index generator, and the
 * NMP Unified Unit's functional model — is one of two shapes:
 *
 *   - tree expansion: child c of seed s is PRG_c(s) for fixed public
 *     per-slot constructions (Sec. 2.3.1 / Fig. 6 of the paper);
 *   - counter expansion: output c of seed s is PRF_key(s + c), the
 *     AES-CTR index tape of the LPN encoder (Sec. 1).
 *
 * SeedExpander abstracts both behind one batched entry point
 * expand(seeds, out, n, fanout) so protocol code is written once and
 * the primitive choice (and its operation count, for the Fig. 7(a)
 * reproductions) is a construction-time decision. The batch size n is
 * the performance lever: the level-synchronous cross-tree GGM path
 * hands a whole chunk of trees' level-i nodes to one call, which the
 * ChaCha expander runs through its SIMD multi-seed core (8 states per
 * AVX2 pass) and the AES expander through full 8-wide AES-NI
 * pipelines. Engine selection (AES-NI vs portable, AVX2 vs SSE2 vs
 * scalar ChaCha) happens at runtime inside Aes128 / ChaCha.
 *
 * Instances carry mutable scratch and an operation counter, so one
 * instance must not be shared across threads; the batch-SPCOT driver
 * keeps one expander per worker.
 */

#ifndef IRONMAN_CRYPTO_SEED_EXPANDER_H
#define IRONMAN_CRYPTO_SEED_EXPANDER_H

#include <cstdint>
#include <memory>
#include <string>

#include "common/block.h"

namespace ironman::crypto {

/** Which primitive instantiates a PRG. */
enum class PrgKind
{
    Aes,      ///< AES-128, one call per child (AES-NI when available).
    ChaCha8,  ///< 8-round ChaCha, four children per call (Ironman's pick).
    ChaCha12, ///< 12-round ChaCha.
    ChaCha20, ///< 20-round ChaCha (conservative margin).
};

/** Human-readable name ("AES", "ChaCha8", ...). */
std::string prgKindName(PrgKind kind);

/** Batched seed-to-children expander. */
class SeedExpander
{
  public:
    virtual ~SeedExpander() = default;

    /** Largest fanout expand() accepts. */
    unsigned maxFanout() const { return maxFan; }

    /**
     * Expand @p n seeds into @p fanout children each:
     * out[i*fanout + c] = child c of seeds[i]. Deterministic; both
     * parties constructing equal expanders derive equal children.
     * @p out must not alias @p seeds.
     */
    virtual void expand(const Block *seeds, Block *out, size_t n,
                        unsigned fanout) = 0;

    /** Primitive invocations one seed costs at @p fanout. */
    virtual uint64_t opsPerSeed(unsigned fanout) const = 0;

    /** Total primitive invocations since construction / resetOps(). */
    uint64_t ops() const { return opCount; }

    void resetOps() { opCount = 0; }

  protected:
    explicit SeedExpander(unsigned max_fanout) : maxFan(max_fanout) {}

    unsigned maxFan;
    uint64_t opCount = 0;
};

/**
 * GGM-style tree expander: fixed public per-slot constructions, so a
 * sender and receiver constructing (kind, max_fanout) independently
 * expand identically. AES: child_c = AES_{k_c}(s) ^ s with one
 * nothing-up-my-sleeve key per slot; ChaCha: 4 children per core call.
 */
std::unique_ptr<SeedExpander> makeTreeExpander(PrgKind kind,
                                               unsigned max_fanout);

/**
 * Keyed AES counter expander: child c of seed s is AES_key(s + c)
 * (addition on the low lane). This is the LPN index tape: with seeds
 * s_i = fromUint64(i * fanout) it emits the classic AES-CTR stream
 * AES_key(0), AES_key(1), ...
 */
std::unique_ptr<SeedExpander> makeCtrExpander(const Block &key,
                                              unsigned max_fanout);

} // namespace ironman::crypto

#endif // IRONMAN_CRYPTO_SEED_EXPANDER_H
