/**
 * @file
 * AVX2 x8 engine of the batched ChaCha seed expansion: eight
 * independent states, one state word per 32-bit lane of a ymm
 * register (16 registers hold the full 16-word state of all eight
 * seeds). This translation unit is the only one compiled with -mavx2;
 * dispatch in chacha.cpp is guarded by a runtime CPUID check, so the
 * binary still runs on SSE2-only machines.
 */

#include "crypto/chacha.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)
#include <immintrin.h>
#define IRONMAN_HAVE_CHACHA_AVX2_BUILD 1
#endif

namespace ironman::crypto::detail {

bool
chachaAvx2Supported()
{
#ifdef IRONMAN_HAVE_CHACHA_AVX2_BUILD
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

#ifdef IRONMAN_HAVE_CHACHA_AVX2_BUILD

namespace {

inline __m256i
rotl16(__m256i v)
{
    const __m256i mask = _mm256_set_epi8(
        13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2,
        13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
    return _mm256_shuffle_epi8(v, mask);
}

inline __m256i
rotl8(__m256i v)
{
    const __m256i mask = _mm256_set_epi8(
        14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3,
        14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3);
    return _mm256_shuffle_epi8(v, mask);
}

inline __m256i
rotl(__m256i v, int k)
{
    return _mm256_or_si256(_mm256_slli_epi32(v, k),
                           _mm256_srli_epi32(v, 32 - k));
}

#define IRONMAN_CHACHA_QR(a, b, c, d)                                      \
    do {                                                                   \
        a = _mm256_add_epi32(a, b); d = _mm256_xor_si256(d, a);            \
        d = rotl16(d);                                                     \
        c = _mm256_add_epi32(c, d); b = _mm256_xor_si256(b, c);            \
        b = rotl(b, 12);                                                   \
        a = _mm256_add_epi32(a, b); d = _mm256_xor_si256(d, a);            \
        d = rotl8(d);                                                      \
        c = _mm256_add_epi32(c, d); b = _mm256_xor_si256(b, c);            \
        b = rotl(b, 7);                                                    \
    } while (0)

} // namespace

void
chachaExpandX8(int rounds, const Block *seeds, uint32_t n0, uint32_t n1,
               Block *out, size_t stride, unsigned take)
{
    __m256i v[16];
    v[0] = _mm256_set1_epi32(int(0x61707865));
    v[1] = _mm256_set1_epi32(int(0x3320646e));
    v[2] = _mm256_set1_epi32(int(0x79622d32));
    v[3] = _mm256_set1_epi32(int(0x6b206574));

    // Seed words transposed to word-major lanes: v[4+w] lane s = word w
    // of seed s.
    alignas(32) uint32_t sw[4][8];
    for (int s = 0; s < 8; ++s) {
        sw[0][s] = uint32_t(seeds[s].lo);
        sw[1][s] = uint32_t(seeds[s].lo >> 32);
        sw[2][s] = uint32_t(seeds[s].hi);
        sw[3][s] = uint32_t(seeds[s].hi >> 32);
    }
    for (int w = 0; w < 4; ++w)
        v[4 + w] =
            _mm256_load_si256(reinterpret_cast<const __m256i *>(sw[w]));
    for (int w = 0; w < 4; ++w)
        v[8 + w] = _mm256_set1_epi32(int(kChaChaPrgKeyHigh[w]));
    v[12] = _mm256_setzero_si256();
    v[13] = _mm256_set1_epi32(int(n0));
    v[14] = _mm256_set1_epi32(int(n1));
    v[15] = _mm256_setzero_si256();

    __m256i x[16];
    for (int i = 0; i < 16; ++i)
        x[i] = v[i];

    for (int r = 0; r < rounds; r += 2) {
        IRONMAN_CHACHA_QR(x[0], x[4], x[8], x[12]);
        IRONMAN_CHACHA_QR(x[1], x[5], x[9], x[13]);
        IRONMAN_CHACHA_QR(x[2], x[6], x[10], x[14]);
        IRONMAN_CHACHA_QR(x[3], x[7], x[11], x[15]);
        IRONMAN_CHACHA_QR(x[0], x[5], x[10], x[15]);
        IRONMAN_CHACHA_QR(x[1], x[6], x[11], x[12]);
        IRONMAN_CHACHA_QR(x[2], x[7], x[8], x[13]);
        IRONMAN_CHACHA_QR(x[3], x[4], x[9], x[14]);
    }

    for (int i = 0; i < 16; ++i)
        x[i] = _mm256_add_epi32(x[i], v[i]);

    // Per output block q (state words 4q..4q+3): transpose the four
    // word-major rows into one 16-byte block per seed lane.
    for (unsigned q = 0; q < take; ++q) {
        __m256i a = x[4 * q + 0], b = x[4 * q + 1];
        __m256i c = x[4 * q + 2], d = x[4 * q + 3];
        // Within each 128-bit lane: seeds {0,1,2,3} low, {4,5,6,7} high.
        __m256i t0 = _mm256_unpacklo_epi32(a, b); // a0 b0 a1 b1 | a4 b4 a5 b5
        __m256i t1 = _mm256_unpackhi_epi32(a, b); // a2 b2 a3 b3 | a6 ...
        __m256i t2 = _mm256_unpacklo_epi32(c, d);
        __m256i t3 = _mm256_unpackhi_epi32(c, d);
        __m256i u0 = _mm256_unpacklo_epi64(t0, t2); // s0 | s4
        __m256i u1 = _mm256_unpackhi_epi64(t0, t2); // s1 | s5
        __m256i u2 = _mm256_unpacklo_epi64(t1, t3); // s2 | s6
        __m256i u3 = _mm256_unpackhi_epi64(t1, t3); // s3 | s7
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + q),
                         _mm256_castsi256_si128(u0));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + stride + q),
                         _mm256_castsi256_si128(u1));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(out + 2 * stride + q),
            _mm256_castsi256_si128(u2));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(out + 3 * stride + q),
            _mm256_castsi256_si128(u3));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(out + 4 * stride + q),
            _mm256_extracti128_si256(u0, 1));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(out + 5 * stride + q),
            _mm256_extracti128_si256(u1, 1));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(out + 6 * stride + q),
            _mm256_extracti128_si256(u2, 1));
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(out + 7 * stride + q),
            _mm256_extracti128_si256(u3, 1));
    }
}

#undef IRONMAN_CHACHA_QR

#else // !IRONMAN_HAVE_CHACHA_AVX2_BUILD

void
chachaExpandX8(int, const Block *, uint32_t, uint32_t, Block *, size_t,
               unsigned)
{
    // Unreachable: chachaAvx2Supported() returned false.
}

#endif

} // namespace ironman::crypto::detail
