#include "crypto/prg.h"

#include <cstring>

#include "common/logging.h"

namespace ironman::crypto {

std::string
prgKindName(PrgKind kind)
{
    switch (kind) {
      case PrgKind::Aes: return "AES";
      case PrgKind::ChaCha8: return "ChaCha8";
      case PrgKind::ChaCha12: return "ChaCha12";
      case PrgKind::ChaCha20: return "ChaCha20";
    }
    return "?";
}

namespace {

int
chachaRounds(PrgKind kind)
{
    switch (kind) {
      case PrgKind::ChaCha8: return 8;
      case PrgKind::ChaCha12: return 12;
      case PrgKind::ChaCha20: return 20;
      default: IRONMAN_PANIC("not a ChaCha kind");
    }
}

/** Fixed, public per-slot AES keys (both parties derive the same). */
Block
slotKey(unsigned slot)
{
    // Distinct nothing-up-my-sleeve constants per child slot.
    return Block(0x9e3779b97f4a7c15ULL * (slot + 1),
                 0xc2b2ae3d27d4eb4fULL ^ (uint64_t(slot) << 32));
}

} // namespace

TreePrg::TreePrg(PrgKind kind, unsigned max_arity)
    : prgKind(kind), maxArity(max_arity)
{
    IRONMAN_CHECK(max_arity >= 2);
    if (kind == PrgKind::Aes) {
        aesSlots.reserve(max_arity);
        for (unsigned i = 0; i < max_arity; ++i)
            aesSlots.emplace_back(slotKey(i));
    } else {
        chacha = std::make_unique<ChaCha>(chachaRounds(kind));
    }
}

uint64_t
TreePrg::opsForExpansion(unsigned arity) const
{
    if (prgKind == PrgKind::Aes)
        return arity;
    return (arity + 3) / 4; // 512-bit output = 4 blocks per call
}

void
TreePrg::expand(const Block &parent, Block *children, unsigned arity)
{
    IRONMAN_CHECK(arity >= 1 && arity <= maxArity);

    if (prgKind == PrgKind::Aes) {
        // child_i = AES_{k_i}(s) XOR s  — the standard double-length
        // PRG of Sec. 2.3.1 generalized to m fixed keys (Fig. 6(b)).
        for (unsigned i = 0; i < arity; ++i)
            children[i] = aesSlots[i].encrypt(parent) ^ parent;
        opCount += arity;
        return;
    }

    // ChaCha: each call emits 4 children; chunk index is the tweak so
    // all chunks of one expansion stay distinct.
    std::array<Block, 4> chunk;
    unsigned produced = 0;
    uint64_t chunk_idx = 0;
    while (produced < arity) {
        chacha->expandSeed(parent, chunk_idx++, chunk);
        ++opCount;
        for (unsigned i = 0; i < 4 && produced < arity; ++i)
            children[produced++] = chunk[i];
    }
}

void
TreePrg::expandLevel(const Block *parents, size_t count, Block *children,
                     unsigned arity)
{
    IRONMAN_CHECK(arity >= 1 && arity <= maxArity);

    if (prgKind == PrgKind::Aes) {
        scratch.resize(count);
        for (unsigned c = 0; c < arity; ++c) {
            aesSlots[c].encryptBatch(parents, scratch.data(), count);
            for (size_t j = 0; j < count; ++j)
                children[j * arity + c] = scratch[j] ^ parents[j];
        }
        opCount += uint64_t(arity) * count;
        return;
    }

    for (size_t j = 0; j < count; ++j)
        expand(parents[j], children + j * arity, arity);
}

CtrStream::CtrStream(PrgKind kind, const Block &seed_in)
    : prgKind(kind), seed(seed_in)
{
    if (kind == PrgKind::Aes)
        aes = std::make_unique<Aes128>(seed);
    else
        chacha = std::make_unique<ChaCha>(chachaRounds(kind));
}

void
CtrStream::refill()
{
    if (prgKind == PrgKind::Aes) {
        // Four AES-CTR blocks per refill -> 16 words.
        Block in[4], out[4];
        for (int i = 0; i < 4; ++i)
            in[i] = Block::fromUint64(counter++);
        aes->encryptBatch(in, out, 4);
        opCount += 4;
        std::memcpy(buffer, out, sizeof(out));
        bufferLen = 16;
    } else {
        std::array<Block, 4> out;
        chacha->expandSeed(seed, counter++, out);
        ++opCount;
        std::memcpy(buffer, out.data(), 64);
        bufferLen = 16;
    }
    bufferPos = 0;
}

uint32_t
CtrStream::nextUint32()
{
    if (bufferPos >= bufferLen)
        refill();
    return buffer[bufferPos++];
}

uint32_t
CtrStream::nextBelow(uint32_t bound)
{
    IRONMAN_CHECK(bound > 0);
    const uint32_t limit = bound * (UINT32_MAX / bound);
    uint32_t v;
    do {
        v = nextUint32();
    } while (v >= limit);
    return v % bound;
}

} // namespace ironman::crypto
