#include "crypto/prg.h"

#include <cstring>

#include "common/logging.h"

namespace ironman::crypto {

namespace {

int
chachaRounds(PrgKind kind)
{
    switch (kind) {
      case PrgKind::ChaCha8: return 8;
      case PrgKind::ChaCha12: return 12;
      case PrgKind::ChaCha20: return 20;
      default: IRONMAN_PANIC("not a ChaCha kind");
    }
}

} // namespace

TreePrg::TreePrg(PrgKind kind, unsigned max_arity)
    : prgKind(kind), exp(makeTreeExpander(kind, max_arity))
{
    IRONMAN_CHECK(max_arity >= 2);
}

uint64_t
TreePrg::opsForExpansion(unsigned arity) const
{
    return exp->opsPerSeed(arity);
}

void
TreePrg::expand(const Block &parent, Block *children, unsigned arity)
{
    exp->expand(&parent, children, 1, arity);
}

void
TreePrg::expandLevel(const Block *parents, size_t count, Block *children,
                     unsigned arity)
{
    exp->expand(parents, children, count, arity);
}

CtrStream::CtrStream(PrgKind kind, const Block &seed_in)
    : prgKind(kind), seed(seed_in)
{
    if (kind == PrgKind::Aes)
        aes = std::make_unique<Aes128>(seed);
    else
        chacha = std::make_unique<ChaCha>(chachaRounds(kind));
}

void
CtrStream::refill()
{
    if (prgKind == PrgKind::Aes) {
        // Four AES-CTR blocks per refill -> 16 words.
        Block in[4], out[4];
        for (int i = 0; i < 4; ++i)
            in[i] = Block::fromUint64(counter++);
        aes->encryptBatch(in, out, 4);
        opCount += 4;
        std::memcpy(buffer, out, sizeof(out));
        bufferLen = 16;
    } else {
        std::array<Block, 4> out;
        chacha->expandSeed(seed, counter++, out);
        ++opCount;
        std::memcpy(buffer, out.data(), 64);
        bufferLen = 16;
    }
    bufferPos = 0;
}

uint32_t
CtrStream::nextUint32()
{
    if (bufferPos >= bufferLen)
        refill();
    return buffer[bufferPos++];
}

uint32_t
CtrStream::nextBelow(uint32_t bound)
{
    IRONMAN_CHECK(bound > 0);
    const uint32_t limit = bound * (UINT32_MAX / bound);
    uint32_t v;
    do {
        v = nextUint32();
    } while (v >= limit);
    return v % bound;
}

} // namespace ironman::crypto
