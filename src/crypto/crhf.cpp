#include "crypto/crhf.h"

#include <vector>

namespace ironman::crypto {

namespace {

/** Arbitrary fixed key (nothing-up-my-sleeve: digits of pi). */
const Block kCrhfKey(0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL);

Block
tweakBlock(uint64_t tweak)
{
    // Spread the tweak across both lanes so tweaks differing only in
    // low bits still produce unrelated sigma values.
    return Block(tweak * 0x9e3779b97f4a7c15ULL, tweak);
}

} // namespace

Crhf::Crhf() : cipher(kCrhfKey)
{
}

Block
Crhf::hash(const Block &x, uint64_t tweak) const
{
    Block sigma = x ^ tweakBlock(tweak);
    return cipher.encrypt(sigma) ^ sigma;
}

void
Crhf::hashBatch(const Block *in, Block *out, size_t n,
                uint64_t tweak_base) const
{
    std::vector<Block> sigma(n);
    for (size_t i = 0; i < n; ++i)
        sigma[i] = in[i] ^ tweakBlock(tweak_base + i);
    cipher.encryptBatch(sigma.data(), out, n);
    for (size_t i = 0; i < n; ++i)
        out[i] ^= sigma[i];
}

} // namespace ironman::crypto
