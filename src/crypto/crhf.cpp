#include "crypto/crhf.h"

namespace ironman::crypto {

namespace {

/** Arbitrary fixed key (nothing-up-my-sleeve: digits of pi). */
const Block kCrhfKey(0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL);

Block
tweakBlock(uint64_t tweak)
{
    // Spread the tweak across both lanes so tweaks differing only in
    // low bits still produce unrelated sigma values.
    return Block(tweak * 0x9e3779b97f4a7c15ULL, tweak);
}

} // namespace

Crhf::Crhf() : cipher(kCrhfKey)
{
}

Block
Crhf::hash(const Block &x, uint64_t tweak) const
{
    Block sigma = x ^ tweakBlock(tweak);
    return cipher.encrypt(sigma) ^ sigma;
}

void
Crhf::hashBatch(const Block *in, Block *out, size_t n,
                uint64_t tweak_base) const
{
    // Pre-whiten into the output span (in == out is allowed), then run
    // the fused Davies-Meyer pass: out = AES(sigma) ^ sigma. No
    // staging buffer, so steady-state hashing allocates nothing; the
    // AES-NI engine pipelines 8 sigmas at a time with the feed-forward
    // kept in registers.
    for (size_t i = 0; i < n; ++i)
        out[i] = in[i] ^ tweakBlock(tweak_base + i);
    cipher.encryptXorBatch(out, n);
}

} // namespace ironman::crypto
