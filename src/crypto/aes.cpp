#include "crypto/aes.h"

#include <atomic>
#include <cstring>

namespace ironman::crypto {

namespace {

/** FIPS-197 S-box. */
const uint8_t sbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

struct Tables
{
    uint32_t te0[256];
    uint32_t te1[256];
    uint32_t te2[256];
    uint32_t te3[256];

    Tables()
    {
        for (int x = 0; x < 256; ++x) {
            uint32_t s = sbox[x];
            uint32_t s2 = (s << 1) ^ ((s >> 7) * 0x11b);
            uint32_t s3 = s2 ^ s;
            te0[x] = (s2 << 24) | (s << 16) | (s << 8) | s3;
            te1[x] = (s3 << 24) | (s2 << 16) | (s << 8) | s;
            te2[x] = (s << 24) | (s3 << 16) | (s2 << 8) | s;
            te3[x] = (s << 24) | (s << 16) | (s3 << 8) | s2;
        }
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

uint32_t
loadBe32(const uint8_t *p)
{
    return (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) |
           (uint32_t(p[2]) << 8) | uint32_t(p[3]);
}

void
storeBe32(uint8_t *p, uint32_t v)
{
    p[0] = uint8_t(v >> 24);
    p[1] = uint8_t(v >> 16);
    p[2] = uint8_t(v >> 8);
    p[3] = uint8_t(v);
}

uint32_t
subWord(uint32_t w)
{
    return (uint32_t(sbox[(w >> 24) & 0xff]) << 24) |
           (uint32_t(sbox[(w >> 16) & 0xff]) << 16) |
           (uint32_t(sbox[(w >> 8) & 0xff]) << 8) |
           uint32_t(sbox[w & 0xff]);
}

std::atomic<bool> forceSoftwareEngine{false};

} // namespace

Aes128::Aes128(const Block &key)
{
    static const uint32_t rcon[10] = {
        0x01000000, 0x02000000, 0x04000000, 0x08000000, 0x10000000,
        0x20000000, 0x40000000, 0x80000000, 0x1b000000, 0x36000000,
    };

    uint8_t kb[16];
    key.toBytes(kb);
    for (int i = 0; i < 4; ++i)
        rk[i] = loadBe32(kb + 4 * i);
    for (int i = 4; i < 44; ++i) {
        uint32_t temp = rk[i - 1];
        if (i % 4 == 0) {
            temp = subWord((temp << 8) | (temp >> 24)) ^ rcon[i / 4 - 1];
        }
        rk[i] = rk[i - 4] ^ temp;
    }

    // Pre-serialize the byte-ordered schedule the AES-NI engine loads.
    for (int i = 0; i < 44; ++i) {
        niSchedule[4 * i + 0] = uint8_t(rk[i] >> 24);
        niSchedule[4 * i + 1] = uint8_t(rk[i] >> 16);
        niSchedule[4 * i + 2] = uint8_t(rk[i] >> 8);
        niSchedule[4 * i + 3] = uint8_t(rk[i]);
    }
}

void
Aes128::softwareEncrypt(const uint8_t in[16], uint8_t out[16]) const
{
    const Tables &t = tables();

    uint32_t s0 = loadBe32(in + 0) ^ rk[0];
    uint32_t s1 = loadBe32(in + 4) ^ rk[1];
    uint32_t s2 = loadBe32(in + 8) ^ rk[2];
    uint32_t s3 = loadBe32(in + 12) ^ rk[3];

    uint32_t t0, t1, t2, t3;
    for (int round = 1; round < 10; ++round) {
        const uint32_t *k = &rk[4 * round];
        t0 = t.te0[s0 >> 24] ^ t.te1[(s1 >> 16) & 0xff] ^
             t.te2[(s2 >> 8) & 0xff] ^ t.te3[s3 & 0xff] ^ k[0];
        t1 = t.te0[s1 >> 24] ^ t.te1[(s2 >> 16) & 0xff] ^
             t.te2[(s3 >> 8) & 0xff] ^ t.te3[s0 & 0xff] ^ k[1];
        t2 = t.te0[s2 >> 24] ^ t.te1[(s3 >> 16) & 0xff] ^
             t.te2[(s0 >> 8) & 0xff] ^ t.te3[s1 & 0xff] ^ k[2];
        t3 = t.te0[s3 >> 24] ^ t.te1[(s0 >> 16) & 0xff] ^
             t.te2[(s1 >> 8) & 0xff] ^ t.te3[s2 & 0xff] ^ k[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    const uint32_t *k = &rk[40];
    t0 = (uint32_t(sbox[s0 >> 24]) << 24) |
         (uint32_t(sbox[(s1 >> 16) & 0xff]) << 16) |
         (uint32_t(sbox[(s2 >> 8) & 0xff]) << 8) |
         uint32_t(sbox[s3 & 0xff]);
    t1 = (uint32_t(sbox[s1 >> 24]) << 24) |
         (uint32_t(sbox[(s2 >> 16) & 0xff]) << 16) |
         (uint32_t(sbox[(s3 >> 8) & 0xff]) << 8) |
         uint32_t(sbox[s0 & 0xff]);
    t2 = (uint32_t(sbox[s2 >> 24]) << 24) |
         (uint32_t(sbox[(s3 >> 16) & 0xff]) << 16) |
         (uint32_t(sbox[(s0 >> 8) & 0xff]) << 8) |
         uint32_t(sbox[s1 & 0xff]);
    t3 = (uint32_t(sbox[s3 >> 24]) << 24) |
         (uint32_t(sbox[(s0 >> 16) & 0xff]) << 16) |
         (uint32_t(sbox[(s1 >> 8) & 0xff]) << 8) |
         uint32_t(sbox[s2 & 0xff]);

    storeBe32(out + 0, t0 ^ k[0]);
    storeBe32(out + 4, t1 ^ k[1]);
    storeBe32(out + 8, t2 ^ k[2]);
    storeBe32(out + 12, t3 ^ k[3]);
}

void
Aes128::encryptBytes(const uint8_t in[16], uint8_t out[16]) const
{
    if (usingAesni()) {
        Block b = Block::fromBytes(in);
        Block o;
        detail::aesniEncryptBatch(niSchedule.data(), &b, &o, 1);
        o.toBytes(out);
    } else {
        softwareEncrypt(in, out);
    }
}

Block
Aes128::encrypt(const Block &in) const
{
    if (usingAesni()) {
        Block out;
        detail::aesniEncryptBatch(niSchedule.data(), &in, &out, 1);
        return out;
    }
    uint8_t ib[16], ob[16];
    in.toBytes(ib);
    softwareEncrypt(ib, ob);
    return Block::fromBytes(ob);
}

void
Aes128::encryptBatch(const Block *in, Block *out, size_t n) const
{
    if (usingAesni()) {
        detail::aesniEncryptBatch(niSchedule.data(), in, out, n);
        return;
    }
    for (size_t i = 0; i < n; ++i)
        out[i] = encrypt(in[i]);
}

void
Aes128::encryptXorBatch(Block *inout, size_t n) const
{
    if (usingAesni()) {
        detail::aesniEncryptXorBatch(niSchedule.data(), inout, n);
        return;
    }
    for (size_t i = 0; i < n; ++i) {
        Block sigma = inout[i];
        inout[i] = encrypt(sigma) ^ sigma;
    }
}

bool
Aes128::usingAesni()
{
    static const bool supported = detail::aesniSupported();
    return supported && !forceSoftwareEngine.load(std::memory_order_relaxed);
}

void
Aes128::forceSoftware(bool force)
{
    forceSoftwareEngine.store(force, std::memory_order_relaxed);
}

} // namespace ironman::crypto
