/**
 * @file
 * AES-NI engine. This translation unit is the only one compiled with
 * -maes; everything else stays portable. Entry is guarded by a runtime
 * CPUID check so the binary still runs on machines without AES-NI.
 */

#include "crypto/aes.h"

#if defined(__x86_64__) || defined(__i386__)
#include <wmmintrin.h>
#define IRONMAN_HAVE_AESNI_BUILD 1
#endif

namespace ironman::crypto::detail {

bool
aesniSupported()
{
#ifdef IRONMAN_HAVE_AESNI_BUILD
    return __builtin_cpu_supports("aes");
#else
    return false;
#endif
}

#ifdef IRONMAN_HAVE_AESNI_BUILD

void
aesniEncryptBatch(const uint8_t *schedule, const Block *in, Block *out,
                  size_t n)
{
    __m128i keys[11];
    for (int r = 0; r < 11; ++r)
        keys[r] = _mm_load_si128(
            reinterpret_cast<const __m128i *>(schedule + 16 * r));

    size_t i = 0;
    // Eight-wide main loop keeps the AES units' pipelines full.
    for (; i + 8 <= n; i += 8) {
        __m128i s[8];
        for (int j = 0; j < 8; ++j) {
            s[j] = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(&in[i + j]));
            s[j] = _mm_xor_si128(s[j], keys[0]);
        }
        for (int r = 1; r < 10; ++r)
            for (int j = 0; j < 8; ++j)
                s[j] = _mm_aesenc_si128(s[j], keys[r]);
        for (int j = 0; j < 8; ++j) {
            s[j] = _mm_aesenclast_si128(s[j], keys[10]);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(&out[i + j]), s[j]);
        }
    }
    for (; i < n; ++i) {
        __m128i s =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(&in[i]));
        s = _mm_xor_si128(s, keys[0]);
        for (int r = 1; r < 10; ++r)
            s = _mm_aesenc_si128(s, keys[r]);
        s = _mm_aesenclast_si128(s, keys[10]);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(&out[i]), s);
    }
}

void
aesniEncryptXorBatch(const uint8_t *schedule, Block *inout, size_t n)
{
    __m128i keys[11];
    for (int r = 0; r < 11; ++r)
        keys[r] = _mm_load_si128(
            reinterpret_cast<const __m128i *>(schedule + 16 * r));

    size_t i = 0;
    // Fused Davies-Meyer: the pre-whitened sigma stays in registers
    // across the 8-wide AES pipeline and the final feed-forward XOR,
    // so the MMO hash costs no staging loads or stores.
    for (; i + 8 <= n; i += 8) {
        __m128i sigma[8], s[8];
        for (int j = 0; j < 8; ++j) {
            sigma[j] = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(&inout[i + j]));
            s[j] = _mm_xor_si128(sigma[j], keys[0]);
        }
        for (int r = 1; r < 10; ++r)
            for (int j = 0; j < 8; ++j)
                s[j] = _mm_aesenc_si128(s[j], keys[r]);
        for (int j = 0; j < 8; ++j) {
            s[j] = _mm_aesenclast_si128(s[j], keys[10]);
            s[j] = _mm_xor_si128(s[j], sigma[j]);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(&inout[i + j]),
                             s[j]);
        }
    }
    for (; i < n; ++i) {
        __m128i sigma =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(&inout[i]));
        __m128i s = _mm_xor_si128(sigma, keys[0]);
        for (int r = 1; r < 10; ++r)
            s = _mm_aesenc_si128(s, keys[r]);
        s = _mm_aesenclast_si128(s, keys[10]);
        s = _mm_xor_si128(s, sigma);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(&inout[i]), s);
    }
}

#else // !IRONMAN_HAVE_AESNI_BUILD

void
aesniEncryptBatch(const uint8_t *, const Block *, Block *, size_t)
{
    // Unreachable: aesniSupported() returned false.
}

void
aesniEncryptXorBatch(const uint8_t *, Block *, size_t)
{
    // Unreachable: aesniSupported() returned false.
}

#endif

} // namespace ironman::crypto::detail
