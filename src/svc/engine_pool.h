/**
 * @file
 * Warm-engine pooling for the COT service.
 *
 * A Ferret engine's expensive state — the OtWorkspace arena (tens of
 * MB on the paper sets), the spawned worker pool, and above all the
 * precomputed LPN index tape (~46 MB of AES + transpose for 2^20) —
 * depends only on FerretParams, not on the session. EnginePool keeps
 * finished engines warm, keyed by (params shape, role), and hands them
 * to the next session of the same shape: resetSession() swaps in the
 * new channel and base reserve, and the engine behaves bit-identically
 * to a freshly constructed one while reusing every buffer.
 *
 * Invariant 12 (DESIGN.md): a pooled engine serves successive sessions
 * with zero heap allocations after its first warm extension — checkout,
 * resetSession, extendInto, and release are all allocation-free once
 * the engine and the pool's bookkeeping are warm (counting-allocator
 * test in tests/test_svc_pool_alloc.cpp).
 *
 * Leases are RAII: destroying a SenderLease/ReceiverLease returns the
 * engine to the idle set. The pool is thread-safe; individual engines
 * are not (one session at a time — the lease enforces exclusivity).
 */

#ifndef IRONMAN_SVC_ENGINE_POOL_H
#define IRONMAN_SVC_ENGINE_POOL_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "ot/ferret.h"
#include "ot/ferret_params.h"

namespace ironman::svc {

/** The FerretParams fields that determine engine shape and output. */
struct EngineKey
{
    uint64_t n, k, t, lpnSeed;
    uint32_t arity, lpnWeight;
    uint8_t prg;

    static EngineKey of(const ot::FerretParams &p);

    bool
    operator<(const EngineKey &o) const
    {
        return std::tie(n, k, t, lpnSeed, arity, lpnWeight, prg) <
               std::tie(o.n, o.k, o.t, o.lpnSeed, o.arity, o.lpnWeight,
                        o.prg);
    }

    bool
    operator==(const EngineKey &o) const
    {
        return !(*this < o) && !(o < *this);
    }
};

/**
 * Admission-policy membership: is @p p's shape (EngineKey fields) on
 * @p allowlist? An EMPTY allowlist allows everything — the opt-in
 * convention both CotServer and InferServer use.
 */
bool paramsAllowed(const ot::FerretParams &p,
                   const std::vector<ot::FerretParams> &allowlist);

class EnginePool
{
  public:
    struct Config
    {
        int threads = 1;        ///< worker-pool width per engine
        bool pipelined = true;  ///< engine mode (both peers must match)
    };

    EnginePool() : EnginePool(Config{}) {}
    explicit EnginePool(Config cfg) : cfg_(cfg) {}

    EnginePool(const EnginePool &) = delete;
    EnginePool &operator=(const EnginePool &) = delete;

    /** RAII checkout of one sender engine. */
    class SenderLease
    {
      public:
        SenderLease() = default;
        SenderLease(SenderLease &&o) noexcept { *this = std::move(o); }
        SenderLease &operator=(SenderLease &&o) noexcept;
        ~SenderLease() { release(); }

        ot::FerretCotSender *get() const { return engine.get(); }
        ot::FerretCotSender *operator->() const { return engine.get(); }
        explicit operator bool() const { return engine != nullptr; }

        /** Return the engine to the pool early. */
        void release();

      private:
        friend class EnginePool;
        std::unique_ptr<ot::FerretCotSender> engine;
        EnginePool *pool = nullptr;
        EngineKey key{};
    };

    /** RAII checkout of one receiver engine. */
    class ReceiverLease
    {
      public:
        ReceiverLease() = default;
        ReceiverLease(ReceiverLease &&o) noexcept { *this = std::move(o); }
        ReceiverLease &operator=(ReceiverLease &&o) noexcept;
        ~ReceiverLease() { release(); }

        ot::FerretCotReceiver *get() const { return engine.get(); }
        ot::FerretCotReceiver *operator->() const { return engine.get(); }
        explicit operator bool() const { return engine != nullptr; }

        void release();

      private:
        friend class EnginePool;
        std::unique_ptr<ot::FerretCotReceiver> engine;
        EnginePool *pool = nullptr;
        EngineKey key{};
    };

    /**
     * Check out a warm engine for @p p, constructing (and prewarming)
     * one only when no idle engine of that shape exists.
     */
    SenderLease checkoutSender(const ot::FerretParams &p);
    ReceiverLease checkoutReceiver(const ot::FerretParams &p);

    /**
     * Construct + prewarm @p count engines per role ahead of traffic
     * so the first sessions skip the tape build.
     */
    void prewarm(const ot::FerretParams &p, int count);

    /** Engines ever constructed (reuse means this stops growing). */
    uint64_t sendersCreated() const;
    uint64_t receiversCreated() const;

    /** Engines currently idle in the pool. */
    size_t idleSenders() const;
    size_t idleReceivers() const;

    const Config &config() const { return cfg_; }

  private:
    void returnSender(const EngineKey &key,
                      std::unique_ptr<ot::FerretCotSender> e);
    void returnReceiver(const EngineKey &key,
                        std::unique_ptr<ot::FerretCotReceiver> e);
    std::unique_ptr<ot::FerretCotSender>
    makeSender(const ot::FerretParams &p);
    std::unique_ptr<ot::FerretCotReceiver>
    makeReceiver(const ot::FerretParams &p);

    Config cfg_;
    mutable std::mutex m;
    std::map<EngineKey, std::vector<std::unique_ptr<ot::FerretCotSender>>>
        idleSend;
    std::map<EngineKey,
             std::vector<std::unique_ptr<ot::FerretCotReceiver>>>
        idleRecv;
    uint64_t madeSenders = 0;
    uint64_t madeReceivers = 0;
};

} // namespace ironman::svc

#endif // IRONMAN_SVC_ENGINE_POOL_H
