#include "svc/reservoir.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace ironman::svc {

namespace {

/**
 * Stock telemetry summed across every Reservoir in the process — the
 * demand signal the ROADMAP's refill-scheduling item needs. The stock
 * gauge moves by deltas so concurrent reservoirs compose.
 */
struct ReservoirMetrics {
    metrics::Gauge &stock = metrics::gauge("svc_reservoir_stock_cots");
    metrics::Counter &refills =
        metrics::counter("svc_reservoir_refills_total");
    metrics::Counter &reconnects =
        metrics::counter("svc_reservoir_reconnects_total");
    metrics::Counter &stalls =
        metrics::counter("svc_reservoir_stalls_total");
    metrics::Counter &stallUs =
        metrics::counter("svc_reservoir_stall_us_total");
    metrics::Counter &taken = metrics::counter("svc_reservoir_taken_total");
};

ReservoirMetrics &
reservoirMetrics()
{
    static ReservoirMetrics m;
    return m;
}

} // namespace

Reservoir::Reservoir(CotClient &c, Options opt)
    : client_(&c), opt_(opt), role_(c.role()), usable_(c.usableOts())
{
    IRONMAN_CHECK(opt_.lowWaterBatches >= 1 &&
                      opt_.maxBatches >= opt_.lowWaterBatches,
                  "reservoir watermarks inverted");
    reservoirMetrics(); // register handles before the refill loop runs
    refillThread = std::thread([this] { refillLoop(); });
}

Reservoir::Reservoir(SessionFactory f, Options opt, RetryPolicy retry,
                     RetryEventHook hook)
    : factory(std::move(f)), retry_(retry), retryHook(std::move(hook)),
      opt_(opt)
{
    IRONMAN_CHECK(opt_.lowWaterBatches >= 1 &&
                      opt_.maxBatches >= opt_.lowWaterBatches,
                  "reservoir watermarks inverted");
    IRONMAN_CHECK(factory, "reservoir factory mode needs a factory");

    // The initial dial gets the same budget as a recovery dial: a
    // daemon mid-restart looks identical at connect time.
    const unsigned attempts =
        retry_.maxAttempts > 0 ? retry_.maxAttempts : 1u;
    for (unsigned attempt = 1;; ++attempt) {
        try {
            retry_.sleepBefore(attempt);
            owned = factory();
            break;
        } catch (const net::WireError &e) {
            if (!e.retryable() || attempt >= attempts)
                throw;
            if (retryHook)
                retryHook(attempt, retry_.backoffMs(attempt + 1),
                          e.what());
        }
    }
    IRONMAN_CHECK(owned, "reservoir factory returned null");
    client_ = owned.get();
    role_ = client_->role();
    usable_ = client_->usableOts();
    reservoirMetrics();
    refillThread = std::thread([this] { refillLoop(); });
}

Reservoir::~Reservoir()
{
    stopRefill();
    // Retire the remaining stock from the process-wide gauge so a
    // finished reservoir doesn't leave phantom inventory behind.
    std::lock_guard<std::mutex> lock(m);
    reservoirMetrics().stock.sub(int64_t(blocks.size() - head));
}

void
Reservoir::stopRefill()
{
    {
        std::lock_guard<std::mutex> lock(m);
        running = false;
        needCv.notify_all();
        stockCv.notify_all();
    }
    if (refillThread.joinable())
        refillThread.join();
}

void
Reservoir::markFailed(net::WireFault fault, const std::string &what)
{
    std::lock_guard<std::mutex> lock(m);
    failed = true;
    failFault = fault;
    failWhat = what;
    stockCv.notify_all();
}

bool
Reservoir::recoverSession(const net::WireError &cause)
{
    // The dead session's stock is unusable: the operator halves lived
    // in the old server process. Discard before redialing so takers
    // never see a tape mixing two sessions.
    {
        std::lock_guard<std::mutex> lock(m);
        discardStockLocked();
    }

    const unsigned attempts =
        retry_.maxAttempts > 0 ? retry_.maxAttempts : 1u;
    std::string last = cause.what();
    for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
        {
            std::lock_guard<std::mutex> lock(m);
            if (!running)
                return false;
        }
        if (retryHook)
            retryHook(attempt, retry_.backoffMs(attempt + 1), last);
        try {
            // Backoff BEFORE the dial: the failure that brought us
            // here is evidence the daemon is down right now.
            retry_.sleepBefore(attempt + 1);
            std::unique_ptr<CotClient> fresh = factory();
            IRONMAN_CHECK(fresh && fresh->role() == role_ &&
                              fresh->usableOts() == usable_,
                          "reservoir factory changed session shape");
            std::lock_guard<std::mutex> lock(m);
            owned = std::move(fresh);
            client_ = owned.get();
            ++reconnectCount;
            reservoirMetrics().reconnects.inc();
            return true;
        } catch (const net::WireError &e) {
            last = e.what();
            if (!e.retryable()) {
                markFailed(e.fault(), last);
                return false;
            }
        } catch (const std::exception &e) {
            markFailed(net::WireFault::Fatal, e.what());
            return false;
        }
    }
    markFailed(net::WireFault::PeerClosed,
               "reconnect budget exhausted: " + last);
    return false;
}

void
Reservoir::refillLoop()
{
    const size_t usable = usable_;
    const size_t low = opt_.lowWaterBatches * usable;
    const size_t cap = opt_.maxBatches * usable;
    const bool recv_role = role_ == Role::Receiver;

    for (;;) {
        {
            // Wake on crossing the low-water mark or on a pending
            // take the current stock cannot satisfy.
            std::unique_lock<std::mutex> lock(m);
            needCv.wait(lock, [&] {
                const size_t have = blocks.size() - head;
                return !running || have < low || have < demand;
            });
            if (!running)
                return;
        }

        // Once triggered, fill to the high-water mark (or the pending
        // demand, whichever is larger) with hysteresis. Extensions run
        // OUTSIDE the lock: takers keep draining the existing stock
        // while the session round trips.
        for (;;) {
            trace::Span refill_span("refill", "svc",
                                    recv_role ? 1u : 0u, usable);
            try {
                stageBlocks.resize(usable);
                if (recv_role)
                    client_->extendRecv(stageBits, stageBlocks.data());
                else
                    client_->extendSend(stageBlocks.data());
            } catch (const net::WireError &e) {
                if (!factory || !e.retryable()) {
                    markFailed(e.fault(), e.what());
                    return;
                }
                if (!recoverSession(e))
                    return;
                continue; // retry this extension on the fresh session
            } catch (const std::exception &e) {
                markFailed(net::WireFault::Fatal, e.what());
                return;
            }

            std::lock_guard<std::mutex> lock(m);
            if (recv_role)
                bits.appendRange(stageBits, 0, stageBits.size());
            blocks.insert(blocks.end(), stageBlocks.begin(),
                          stageBlocks.end());
            ++refillCount;
            reservoirMetrics().refills.inc();
            reservoirMetrics().stock.add(int64_t(stageBlocks.size()));
            stockCv.notify_all();
            const size_t have = blocks.size() - head;
            // The refiller retires demand once covered — a woken taker
            // must not (another taker may still be waiting on a larger
            // figure).
            if (have >= demand)
                demand = 0;
            if (!running || have >= std::max(cap, demand))
                break;
        }
    }
}

void
Reservoir::discardStockLocked()
{
    reservoirMetrics().stock.sub(int64_t(blocks.size() - head));
    blocks.clear();
    bits = BitVec();
    head = 0;
}

void
Reservoir::waitForStockLocked(std::unique_lock<std::mutex> &lock,
                              size_t n)
{
    // Stall accounting: time spent by takers blocked under the low
    // water mark is THE congestion signal for refill scheduling.
    const bool stalled = running && !failed && blocks.size() - head < n;
    const uint64_t t0_us = stalled ? metrics::nowUs() : 0;
    // The demand re-arms on EVERY unsatisfied wake (the predicate runs
    // under the lock): another taker may have drained the stock after
    // the refiller retired the previous figure, and a woken taker must
    // never clear what a concurrent larger take still needs. The
    // refill loop retires demand once the stock covers it.
    stockCv.wait(lock, [&] {
        if (!running || failed || blocks.size() - head >= n)
            return true;
        demand = std::max(demand, n);
        needCv.notify_all();
        return false;
    });
    if (stalled) {
        reservoirMetrics().stalls.inc();
        reservoirMetrics().stallUs.inc(metrics::nowUs() - t0_us);
    }
    if (blocks.size() - head < n) {
        // The taker's error, not the refiller's: a typed throw the
        // consumer can catch and route, never a process abort.
        if (failed)
            throw net::WireError(failFault,
                                 "Reservoir: supply failed: " +
                                     failWhat);
        throw net::WireError(
            net::WireFault::PeerClosed,
            "Reservoir: stopped with takers waiting");
    }
}

void
Reservoir::takeRecv(size_t n, BitVec *out_bits, std::vector<Block> *t)
{
    IRONMAN_CHECK(role_ == Role::Receiver,
                  "takeRecv on a sender-role reservoir");
    std::unique_lock<std::mutex> lock(m);
    waitForStockLocked(lock, n);
    out_bits->assignRange(bits, head, n);
    t->resize(n);
    std::copy_n(blocks.data() + head, n, t->data());
    head += n;
    takenCount += n;
    reservoirMetrics().taken.inc(n);
    reservoirMetrics().stock.sub(int64_t(n));

    // Compact consumed whole batches so the stock stays bounded.
    const size_t usable = usable_;
    if (head >= usable) {
        const size_t drop = head - head % usable;
        blocks.erase(blocks.begin(), blocks.begin() + drop);
        BitVec rest;
        rest.assignRange(bits, drop, bits.size() - drop);
        std::swap(bits, rest);
        head -= drop;
    }
    needCv.notify_all();
}

void
Reservoir::takeSend(size_t n, std::vector<Block> *q)
{
    IRONMAN_CHECK(role_ == Role::Sender,
                  "takeSend on a receiver-role reservoir");
    std::unique_lock<std::mutex> lock(m);
    waitForStockLocked(lock, n);
    q->resize(n);
    std::copy_n(blocks.data() + head, n, q->data());
    head += n;
    takenCount += n;
    reservoirMetrics().taken.inc(n);
    reservoirMetrics().stock.sub(int64_t(n));

    const size_t usable = usable_;
    if (head >= usable) {
        const size_t drop = head - head % usable;
        blocks.erase(blocks.begin(), blocks.begin() + drop);
        head -= drop;
    }
    needCv.notify_all();
}

size_t
Reservoir::stock() const
{
    std::lock_guard<std::mutex> lock(m);
    return blocks.size() - head;
}

uint64_t
Reservoir::refills() const
{
    std::lock_guard<std::mutex> lock(m);
    return refillCount;
}

uint64_t
Reservoir::taken() const
{
    std::lock_guard<std::mutex> lock(m);
    return takenCount;
}

uint64_t
Reservoir::reconnects() const
{
    std::lock_guard<std::mutex> lock(m);
    return reconnectCount;
}

bool
Reservoir::failedTerminally() const
{
    std::lock_guard<std::mutex> lock(m);
    return failed;
}

} // namespace ironman::svc
