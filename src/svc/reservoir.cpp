#include "svc/reservoir.h"

#include <algorithm>

#include "common/logging.h"

namespace ironman::svc {

Reservoir::Reservoir(CotClient &c, Options opt) : client(c), opt_(opt)
{
    IRONMAN_CHECK(opt_.lowWaterBatches >= 1 &&
                      opt_.maxBatches >= opt_.lowWaterBatches,
                  "reservoir watermarks inverted");
    refillThread = std::thread([this] { refillLoop(); });
}

Reservoir::~Reservoir()
{
    stopRefill();
}

void
Reservoir::stopRefill()
{
    {
        std::lock_guard<std::mutex> lock(m);
        running = false;
        needCv.notify_all();
        stockCv.notify_all();
    }
    if (refillThread.joinable())
        refillThread.join();
}

void
Reservoir::refillLoop()
{
    const size_t usable = client.usableOts();
    const size_t low = opt_.lowWaterBatches * usable;
    const size_t cap = opt_.maxBatches * usable;
    const bool recv_role = client.role() == Role::Receiver;

    for (;;) {
        {
            // Wake on crossing the low-water mark or on a pending
            // take the current stock cannot satisfy.
            std::unique_lock<std::mutex> lock(m);
            needCv.wait(lock, [&] {
                const size_t have = blocks.size() - head;
                return !running || have < low || have < demand;
            });
            if (!running)
                return;
        }

        // Once triggered, fill to the high-water mark (or the pending
        // demand, whichever is larger) with hysteresis. Extensions run
        // OUTSIDE the lock: takers keep draining the existing stock
        // while the session round trips.
        for (;;) {
            stageBlocks.resize(usable);
            if (recv_role)
                client.extendRecv(stageBits, stageBlocks.data());
            else
                client.extendSend(stageBlocks.data());

            std::lock_guard<std::mutex> lock(m);
            if (recv_role)
                bits.appendRange(stageBits, 0, stageBits.size());
            blocks.insert(blocks.end(), stageBlocks.begin(),
                          stageBlocks.end());
            ++refillCount;
            stockCv.notify_all();
            const size_t have = blocks.size() - head;
            // The refiller retires demand once covered — a woken taker
            // must not (another taker may still be waiting on a larger
            // figure).
            if (have >= demand)
                demand = 0;
            if (!running || have >= std::max(cap, demand))
                break;
        }
    }
}

void
Reservoir::waitForStockLocked(std::unique_lock<std::mutex> &lock,
                              size_t n)
{
    // The demand re-arms on EVERY unsatisfied wake (the predicate runs
    // under the lock): another taker may have drained the stock after
    // the refiller retired the previous figure, and a woken taker must
    // never clear what a concurrent larger take still needs. The
    // refill loop retires demand once the stock covers it.
    stockCv.wait(lock, [&] {
        if (!running || blocks.size() - head >= n)
            return true;
        demand = std::max(demand, n);
        needCv.notify_all();
        return false;
    });
    IRONMAN_CHECK(blocks.size() - head >= n,
                  "reservoir stopped with takers waiting");
}

void
Reservoir::takeRecv(size_t n, BitVec *out_bits, std::vector<Block> *t)
{
    IRONMAN_CHECK(client.role() == Role::Receiver,
                  "takeRecv on a sender-role reservoir");
    std::unique_lock<std::mutex> lock(m);
    waitForStockLocked(lock, n);
    out_bits->assignRange(bits, head, n);
    t->resize(n);
    std::copy_n(blocks.data() + head, n, t->data());
    head += n;
    takenCount += n;

    // Compact consumed whole batches so the stock stays bounded.
    const size_t usable = client.usableOts();
    if (head >= usable) {
        const size_t drop = head - head % usable;
        blocks.erase(blocks.begin(), blocks.begin() + drop);
        BitVec rest;
        rest.assignRange(bits, drop, bits.size() - drop);
        std::swap(bits, rest);
        head -= drop;
    }
    needCv.notify_all();
}

void
Reservoir::takeSend(size_t n, std::vector<Block> *q)
{
    IRONMAN_CHECK(client.role() == Role::Sender,
                  "takeSend on a receiver-role reservoir");
    std::unique_lock<std::mutex> lock(m);
    waitForStockLocked(lock, n);
    q->resize(n);
    std::copy_n(blocks.data() + head, n, q->data());
    head += n;
    takenCount += n;

    const size_t usable = client.usableOts();
    if (head >= usable) {
        const size_t drop = head - head % usable;
        blocks.erase(blocks.begin(), blocks.begin() + drop);
        head -= drop;
    }
    needCv.notify_all();
}

size_t
Reservoir::stock() const
{
    std::lock_guard<std::mutex> lock(m);
    return blocks.size() - head;
}

uint64_t
Reservoir::refills() const
{
    std::lock_guard<std::mutex> lock(m);
    return refillCount;
}

uint64_t
Reservoir::taken() const
{
    std::lock_guard<std::mutex> lock(m);
    return takenCount;
}

} // namespace ironman::svc
