#include "svc/operator_stock.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "net/wire_error.h"

namespace ironman::svc {

namespace {

/** Server-side bank telemetry, summed across sessions and stocks. */
struct StockMetrics {
    metrics::Gauge &depth = metrics::gauge("svc_operator_bank_depth");
    metrics::Counter &taken =
        metrics::counter("svc_operator_taken_total");
    metrics::Counter &waits =
        metrics::counter("svc_operator_waits_total");
    metrics::Counter &waitUs =
        metrics::counter("svc_operator_wait_us_total");
};

StockMetrics &
stockMetrics()
{
    static StockMetrics m;
    return m;
}

} // namespace

void
OperatorStock::attach(CotServer &server)
{
    stockMetrics(); // register handles before any session traffic
    server.setSenderSink([this](const CotServer::SenderBatch &b) {
        std::lock_guard<std::mutex> lock(m);
        SessionStock &s = sessions[b.sessionId];
        s.blocks.insert(s.blocks.end(), b.q, b.q + b.count);
        s.delta = b.delta;
        s.haveDelta = true;
        stockMetrics().depth.add(int64_t(b.count));
        cv.notify_all();
    });
    server.setReceiverSink([this](const CotServer::ReceiverBatch &b) {
        std::lock_guard<std::mutex> lock(m);
        SessionStock &s = sessions[b.sessionId];
        s.blocks.insert(s.blocks.end(), b.t, b.t + b.count);
        s.bits.appendRange(*b.choice, 0, b.count);
        stockMetrics().depth.add(int64_t(b.count));
        cv.notify_all();
    });
    // Ownership, recorded before the client can quote the sid: the
    // inference handshake validates its hello's session ids against
    // this (bogus or foreign sids get a clean reject).
    server.setSessionStartSink(
        [this](uint64_t sid, const std::string &peer) {
            std::lock_guard<std::mutex> lock(m);
            sessions[sid].peer = peer;
        });
    // After a COT session's end no more batches can arrive, so any
    // residue nobody consumed (rejected infer hello, client dead
    // before its hello) is freed here — the last sink call of the
    // session thread.
    server.setSessionEndSink([this](uint64_t sid) { drop(sid); });
}

void
OperatorStock::compactLocked(SessionStock &s)
{
    // Drop the consumed prefix once it dominates the stock, so a
    // long-lived session stays bounded without per-take churn.
    if (s.head < 4096 || s.head * 2 < s.blocks.size())
        return;
    s.blocks.erase(s.blocks.begin(), s.blocks.begin() + long(s.head));
    if (!s.bits.empty()) {
        BitVec rest;
        rest.assignRange(s.bits, s.head, s.bits.size() - s.head);
        std::swap(s.bits, rest);
    }
    s.head = 0;
}

void
OperatorStock::takeSend(uint64_t sid, size_t n, std::vector<Block> *q,
                        Block *delta)
{
    std::unique_lock<std::mutex> lock(m);
    const uint64_t t0_us = metrics::nowUs();
    // find(), never operator[]: a take must not materialize entries
    // for sids nobody stocks (a bogus hello would otherwise grow the
    // map permanently with every probe).
    if (!cv.wait_for(lock, waitTimeout, [&] {
            if (stopped)
                return true;
            const auto it = sessions.find(sid);
            return it != sessions.end() && it->second.haveDelta &&
                   it->second.blocks.size() - it->second.head >= n;
        }))
        throw net::WireError(
            net::WireFault::Deadline,
            "OperatorStock: timed out waiting for stock (client dead, "
            "stalled, or bogus session id)");
    if (stopped)
        throw net::WireError(net::WireFault::Fatal,
                             "OperatorStock: retired");
    noteTakeLocked(t0_us, n);
    SessionStock &s = sessions[sid];
    q->resize(n);
    std::copy_n(s.blocks.data() + s.head, n, q->data());
    *delta = s.delta;
    s.head += n;
    compactLocked(s);
}

void
OperatorStock::takeRecv(uint64_t sid, size_t n, BitVec *bits,
                        std::vector<Block> *t)
{
    std::unique_lock<std::mutex> lock(m);
    const uint64_t t0_us = metrics::nowUs();
    if (!cv.wait_for(lock, waitTimeout, [&] {
            if (stopped)
                return true;
            const auto it = sessions.find(sid);
            return it != sessions.end() &&
                   it->second.blocks.size() - it->second.head >= n;
        }))
        throw net::WireError(
            net::WireFault::Deadline,
            "OperatorStock: timed out waiting for stock (client dead, "
            "stalled, or bogus session id)");
    if (stopped)
        throw net::WireError(net::WireFault::Fatal,
                             "OperatorStock: retired");
    noteTakeLocked(t0_us, n);
    SessionStock &s = sessions[sid];
    bits->assignRange(s.bits, s.head, n);
    t->resize(n);
    std::copy_n(s.blocks.data() + s.head, n, t->data());
    s.head += n;
    compactLocked(s);
}

std::string
OperatorStock::peerOf(uint64_t sid) const
{
    std::lock_guard<std::mutex> lock(m);
    const auto it = sessions.find(sid);
    return it == sessions.end() ? std::string() : it->second.peer;
}

size_t
OperatorStock::stock(uint64_t sid) const
{
    std::lock_guard<std::mutex> lock(m);
    const auto it = sessions.find(sid);
    return it == sessions.end() ? 0
                                : it->second.blocks.size() -
                                      it->second.head;
}

void
OperatorStock::noteTakeLocked(uint64_t t0_us, size_t n)
{
    StockMetrics &sm = stockMetrics();
    const uint64_t waited = metrics::nowUs() - t0_us;
    if (waited > 0) {
        sm.waits.inc();
        sm.waitUs.inc(waited);
        trace::emitSpan("stock_wait", "svc", t0_us, waited, 0, n);
    }
    sm.taken.inc(n);
    sm.depth.sub(int64_t(n));
}

void
OperatorStock::drop(uint64_t sid)
{
    std::lock_guard<std::mutex> lock(m);
    const auto it = sessions.find(sid);
    if (it == sessions.end())
        return;
    // Unconsumed residue leaves the bank with its session.
    stockMetrics().depth.sub(
        int64_t(it->second.blocks.size() - it->second.head));
    sessions.erase(it);
}

void
OperatorStock::shutdown()
{
    std::lock_guard<std::mutex> lock(m);
    stopped = true;
    cv.notify_all();
}

void
OperatorStock::setWaitTimeout(std::chrono::milliseconds timeout)
{
    std::lock_guard<std::mutex> lock(m);
    waitTimeout = timeout;
}

} // namespace ironman::svc
