#include "svc/cot_server.h"

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "net/wire_error.h"

namespace ironman::svc {

CotServer::CotServer(Config cfg)
    : cfg_(cfg),
      pool_(EnginePool::Config{cfg.engineThreads, cfg.pipelined}),
      server_(cfg.maxSessions)
{
    server_.setMetricsPrefix("cot");
    server_.setHandler([this](net::SocketChannel &ch, uint64_t sid) {
        serveSession(ch, sid);
    });
    server_.setSessionRecvTimeout(cfg_.sessionRecvTimeoutMs);
    server_.setSessionSendTimeout(cfg_.sessionSendTimeoutMs);
    server_.setIdleTimeout(cfg_.idleTimeoutMs);
}

CotServer::~CotServer()
{
    stop();
}

uint16_t
CotServer::listenTcp(uint16_t port)
{
    return server_.listenTcp(port);
}

void
CotServer::listenUnix(const std::string &path)
{
    server_.listenUnix(path);
}

void
CotServer::stop()
{
    server_.stop();
}

bool
CotServer::drain(uint64_t timeout_ms)
{
    return server_.drain(timeout_ms);
}

size_t
CotServer::activeSessions() const
{
    return server_.activeSessions();
}

Status
CotServer::admitSession(const std::string &client, const Hello &hello)
{
    if (!paramsAllowed(hello.params.toFerretParams(),
                       cfg_.paramsAllowlist))
        return Status::ParamsNotAllowed;
    // No per-client policy -> no per-client bookkeeping: a public
    // daemon must not grow a map entry per peer address for nothing.
    if (cfg_.maxSessionsPerClient == 0 && cfg_.maxBytesPerClient == 0)
        return Status::Ok;
    std::lock_guard<std::mutex> lock(m);
    ClientUsage &usage = clients[client];
    if (cfg_.maxSessionsPerClient > 0 &&
        usage.sessions >= cfg_.maxSessionsPerClient)
        return Status::SessionQuota;
    if (cfg_.maxBytesPerClient > 0 &&
        usage.bytes >= cfg_.maxBytesPerClient)
        return Status::ByteQuota;
    ++usage.sessions;
    return Status::Ok;
}

uint64_t
CotServer::bytesServedTo(const std::string &client_addr) const
{
    std::lock_guard<std::mutex> lock(m);
    const auto it = clients.find(client_addr);
    return it == clients.end() ? 0 : it->second.bytes;
}

void
CotServer::serveSession(net::SocketChannel &ch, uint64_t sid)
{
    net::FlightRecorder fr;
    fr.setSession(sid);
    try {
        Hello hello;
        Status st = recvHello(ch, &hello);
        fr.note("hello", uint32_t(st));
        if (st == Status::Ok)
            st = admitSession(ch.peerAddress(), hello);
        // Before the Accept: the client can only quote this sid once
        // it has read the Accept, so observers are already up to date.
        if (st == Status::Ok && sessionStartSink)
            sessionStartSink(sid, ch.peerAddress());
        sendAccept(ch, Accept{st, sid});
        ch.flush();
        fr.note("accept", uint32_t(st));
        if (st == Status::Ok) {
            if (hello.role == Role::Receiver)
                serveSenderSession(ch, sid, hello, fr);
            else
                serveReceiverSession(ch, sid, hello, fr);
            served.fetch_add(1, std::memory_order_relaxed);
        } else {
            rejected.fetch_add(1, std::memory_order_relaxed);
        }
    } catch (const net::WireError &e) {
        // A dying client must not take the server down; the engine
        // lease already unwound and the engine is back in the pool.
        // Classify HERE — the skeleton's handler wrapper never sees
        // this exception, so exactly one layer counts each failure.
        server_.metrics().noteFailure(e.fault());
        fr.dump(sid, net::wireFaultName(e.fault()));
        IRONMAN_WARN("svc session %llu aborted (%s): %s",
                     (unsigned long long)sid,
                     net::wireFaultName(e.fault()), e.what());
    } catch (const std::exception &e) {
        server_.metrics().noteFailure(net::WireFault::Fatal);
        fr.dump(sid, "exception");
        IRONMAN_WARN("svc session %llu aborted: %s",
                     (unsigned long long)sid, e.what());
    }
    if (cfg_.maxSessionsPerClient > 0 || cfg_.maxBytesPerClient > 0) {
        std::lock_guard<std::mutex> lock(m);
        clients[ch.peerAddress()].bytes += ch.bytesSent();
    }
    if (sessionEndSink)
        sessionEndSink(sid);
}

void
CotServer::serveSenderSession(net::SocketChannel &ch, uint64_t sid,
                              const Hello &hello,
                              net::FlightRecorder &fr)
{
    const ot::FerretParams p = hello.params.toFerretParams();
    ot::CotSenderBatch half;
    Block delta;
    dealSessionBase(p, hello.setupSeed, &half, nullptr, &delta);

    EnginePool::SenderLease lease = pool_.checkoutSender(p);
    lease->resetSession(ch, delta, half.q.data(), half.q.size());

    Rng rng(senderRngSeed(hello.setupSeed));
    std::vector<Block> out(p.usableOts());
    for (uint64_t iter = 0;; ++iter) {
        const Op op = recvOp(ch);
        fr.note("op", uint32_t(op));
        if (op != Op::Extend)
            break;
        lease->extendInto(rng, out.data());
        ch.flush();
        fr.note("extend", uint32_t(iter), out.size() * sizeof(Block));
        extensions.fetch_add(1, std::memory_order_relaxed);
        cots.fetch_add(out.size(), std::memory_order_relaxed);
        if (senderSink)
            senderSink(
                SenderBatch{sid, iter, delta, out.data(), out.size()});
    }
}

void
CotServer::serveReceiverSession(net::SocketChannel &ch, uint64_t sid,
                                const Hello &hello,
                                net::FlightRecorder &fr)
{
    const ot::FerretParams p = hello.params.toFerretParams();
    ot::CotReceiverBatch half;
    dealSessionBase(p, hello.setupSeed, nullptr, &half, nullptr);

    EnginePool::ReceiverLease lease = pool_.checkoutReceiver(p);
    lease->resetSession(ch, half.choice, half.t.data(), half.t.size());

    Rng rng(receiverRngSeed(hello.setupSeed));
    BitVec choice;
    std::vector<Block> out(p.usableOts());
    for (uint64_t iter = 0;; ++iter) {
        const Op op = recvOp(ch);
        fr.note("op", uint32_t(op));
        if (op != Op::Extend)
            break;
        lease->extendInto(rng, choice, out.data());
        ch.flush();
        fr.note("extend", uint32_t(iter), out.size() * sizeof(Block));
        extensions.fetch_add(1, std::memory_order_relaxed);
        cots.fetch_add(out.size(), std::memory_order_relaxed);
        if (receiverSink)
            receiverSink(ReceiverBatch{sid, iter, &choice, out.data(),
                                       out.size()});
    }
}

void
CotServer::setSenderSink(std::function<void(const SenderBatch &)> fn)
{
    senderSink = std::move(fn);
}

void
CotServer::setReceiverSink(std::function<void(const ReceiverBatch &)> fn)
{
    receiverSink = std::move(fn);
}

void
CotServer::setSessionStartSink(
    std::function<void(uint64_t, const std::string &)> fn)
{
    sessionStartSink = std::move(fn);
}

void
CotServer::setSessionEndSink(std::function<void(uint64_t)> fn)
{
    sessionEndSink = std::move(fn);
}

} // namespace ironman::svc
