#include "svc/cot_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/rng.h"

namespace ironman::svc {

CotServer::CotServer(Config cfg)
    : cfg_(cfg),
      pool_(EnginePool::Config{cfg.engineThreads, cfg.pipelined})
{
    IRONMAN_CHECK(cfg_.maxSessions > 0, "need at least one session slot");
}

CotServer::~CotServer()
{
    stop();
}

uint16_t
CotServer::listenTcp(uint16_t port)
{
    IRONMAN_CHECK(listenFd.load() < 0, "server already listening");
    const int fd = net::tcpListen(port);
    listenFd.store(fd);
    const uint16_t bound = net::tcpListenPort(fd);
    startAccepting(fd);
    return bound;
}

void
CotServer::listenUnix(const std::string &path)
{
    IRONMAN_CHECK(listenFd.load() < 0, "server already listening");
    const int fd = net::unixListen(path);
    listenFd.store(fd);
    startAccepting(fd);
}

void
CotServer::startAccepting(int)
{
    stopping.store(false);
    acceptThread = std::thread([this] { acceptLoop(); });
}

void
CotServer::acceptLoop()
{
    for (;;) {
        // Session-slot backpressure: leave new connections in the
        // listen backlog until a slot frees up.
        {
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [&] {
                return stopping.load() || active < cfg_.maxSessions;
            });
        }
        if (stopping.load())
            return;
        const int listener = listenFd.load(std::memory_order_acquire);
        if (listener < 0)
            return;
        int fd = net::acceptOn(listener);
        if (fd < 0)
            return; // listener closed by stop()
        uint64_t sid;
        std::unique_ptr<net::SocketChannel> ch;
        try {
            ch = std::make_unique<net::SocketChannel>(fd);
        } catch (...) {
            continue;
        }
        auto finished = std::make_shared<std::atomic<bool>>(false);
        {
            std::lock_guard<std::mutex> lock(m);
            sid = nextSession++;
            ++active;
            liveChannels[sid] = ch.get();
            reapFinishedLocked();
        }
        Session sess;
        sess.finished = finished;
        sess.thread = std::thread(
            [this, sid, finished](
                std::unique_ptr<net::SocketChannel> sess_ch) {
                serveSession(std::move(sess_ch), sid);
                finished->store(true, std::memory_order_release);
            },
            std::move(ch));
        std::lock_guard<std::mutex> lock(m);
        sessions.push_back(std::move(sess));
    }
}

void
CotServer::reapFinishedLocked()
{
    // Join threads whose sessions completed; a long-running daemon
    // must not accumulate dead stacks. Finished threads join without
    // blocking the accept path for more than an epilogue.
    for (size_t i = 0; i < sessions.size();) {
        if (sessions[i].finished->load(std::memory_order_acquire)) {
            sessions[i].thread.join();
            sessions.erase(sessions.begin() + long(i));
        } else {
            ++i;
        }
    }
}

void
CotServer::serveSession(std::unique_ptr<net::SocketChannel> ch,
                        uint64_t sid)
{
    try {
        Hello hello;
        const Status st = recvHello(*ch, &hello);
        sendAccept(*ch, Accept{st, sid});
        ch->flush();
        if (st == Status::Ok) {
            if (hello.role == Role::Receiver)
                serveSenderSession(*ch, sid, hello);
            else
                serveReceiverSession(*ch, sid, hello);
            served.fetch_add(1, std::memory_order_relaxed);
        }
    } catch (const std::exception &e) {
        // A dying client must not take the server down; the engine
        // lease already unwound and the engine is back in the pool.
        IRONMAN_WARN("svc session %llu aborted: %s",
                     (unsigned long long)sid, e.what());
    }
    std::lock_guard<std::mutex> lock(m);
    liveChannels.erase(sid);
    --active;
    cv.notify_all();
}

void
CotServer::serveSenderSession(net::SocketChannel &ch, uint64_t sid,
                              const Hello &hello)
{
    const ot::FerretParams p = hello.params.toFerretParams();
    ot::CotSenderBatch half;
    Block delta;
    dealSessionBase(p, hello.setupSeed, &half, nullptr, &delta);

    EnginePool::SenderLease lease = pool_.checkoutSender(p);
    lease->resetSession(ch, delta, half.q.data(), half.q.size());

    Rng rng(senderRngSeed(hello.setupSeed));
    std::vector<Block> out(p.usableOts());
    for (uint64_t iter = 0;; ++iter) {
        if (recvOp(ch) != Op::Extend)
            break;
        lease->extendInto(rng, out.data());
        ch.flush();
        extensions.fetch_add(1, std::memory_order_relaxed);
        cots.fetch_add(out.size(), std::memory_order_relaxed);
        if (senderSink)
            senderSink(
                SenderBatch{sid, iter, delta, out.data(), out.size()});
    }
}

void
CotServer::serveReceiverSession(net::SocketChannel &ch, uint64_t sid,
                                const Hello &hello)
{
    const ot::FerretParams p = hello.params.toFerretParams();
    ot::CotReceiverBatch half;
    dealSessionBase(p, hello.setupSeed, nullptr, &half, nullptr);

    EnginePool::ReceiverLease lease = pool_.checkoutReceiver(p);
    lease->resetSession(ch, half.choice, half.t.data(), half.t.size());

    Rng rng(receiverRngSeed(hello.setupSeed));
    BitVec choice;
    std::vector<Block> out(p.usableOts());
    for (uint64_t iter = 0;; ++iter) {
        if (recvOp(ch) != Op::Extend)
            break;
        lease->extendInto(rng, choice, out.data());
        ch.flush();
        extensions.fetch_add(1, std::memory_order_relaxed);
        cots.fetch_add(out.size(), std::memory_order_relaxed);
        if (receiverSink)
            receiverSink(ReceiverBatch{sid, iter, &choice, out.data(),
                                       out.size()});
    }
}

void
CotServer::stop()
{
    if (listenFd.load() < 0 && !acceptThread.joinable())
        return;
    stopping.store(true);
    // Retire the listener first (atomically), then close it: the
    // accept thread either sees -1 or gets EBADF/EINVAL from accept —
    // both exit paths.
    const int fd = listenFd.exchange(-1);
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    {
        // Wake sessions parked in recvOp; their threads unwind through
        // the exception path and release their engines.
        std::lock_guard<std::mutex> lock(m);
        for (auto &[sid, ch] : liveChannels)
            ch->shutdownBoth();
        cv.notify_all();
    }
    if (acceptThread.joinable())
        acceptThread.join();
    // Join every session thread (their sockets are shut down, so they
    // unwind promptly). Never detach: a detached thread could still be
    // releasing the server's mutex while the server destructs.
    std::vector<Session> to_join;
    {
        std::lock_guard<std::mutex> lock(m);
        to_join.swap(sessions);
    }
    for (Session &s : to_join)
        s.thread.join();
}

size_t
CotServer::activeSessions() const
{
    std::lock_guard<std::mutex> lock(m);
    return active;
}

void
CotServer::setSenderSink(std::function<void(const SenderBatch &)> fn)
{
    senderSink = std::move(fn);
}

void
CotServer::setReceiverSink(std::function<void(const ReceiverBatch &)> fn)
{
    receiverSink = std::move(fn);
}

} // namespace ironman::svc
