#include "svc/engine_pool.h"

#include "common/metrics.h"

namespace ironman::svc {

namespace {

/**
 * Pool telemetry, shared across every EnginePool in the process.
 * Registered on the first checkout (a cold path: the counting-
 * allocator suite's warm-up session) so the warm checkout fast path
 * is a pure relaxed increment — invariant 12 stays intact.
 */
struct PoolMetrics {
    metrics::Counter &checkouts =
        metrics::counter("svc_engine_checkouts_total");
    metrics::Counter &warmHits =
        metrics::counter("svc_engine_warm_hits_total");
    metrics::Counter &built = metrics::counter("svc_engine_built_total");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics m;
    return m;
}

} // namespace

EngineKey
EngineKey::of(const ot::FerretParams &p)
{
    EngineKey k;
    k.n = p.n;
    k.k = p.k;
    k.t = p.t;
    k.lpnSeed = p.lpnSeed;
    k.arity = p.arity;
    k.lpnWeight = p.lpnWeight;
    k.prg = uint8_t(p.prg);
    return k;
}

bool
paramsAllowed(const ot::FerretParams &p,
              const std::vector<ot::FerretParams> &allowlist)
{
    if (allowlist.empty())
        return true;
    const EngineKey key = EngineKey::of(p);
    for (const ot::FerretParams &allowed : allowlist)
        if (key == EngineKey::of(allowed))
            return true;
    return false;
}

// ---------------------------------------------------------------------------
// Leases
// ---------------------------------------------------------------------------

EnginePool::SenderLease &
EnginePool::SenderLease::operator=(SenderLease &&o) noexcept
{
    if (this != &o) {
        release();
        engine = std::move(o.engine);
        pool = o.pool;
        key = o.key;
        o.pool = nullptr;
    }
    return *this;
}

void
EnginePool::SenderLease::release()
{
    if (engine && pool)
        pool->returnSender(key, std::move(engine));
    engine.reset();
    pool = nullptr;
}

EnginePool::ReceiverLease &
EnginePool::ReceiverLease::operator=(ReceiverLease &&o) noexcept
{
    if (this != &o) {
        release();
        engine = std::move(o.engine);
        pool = o.pool;
        key = o.key;
        o.pool = nullptr;
    }
    return *this;
}

void
EnginePool::ReceiverLease::release()
{
    if (engine && pool)
        pool->returnReceiver(key, std::move(engine));
    engine.reset();
    pool = nullptr;
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

std::unique_ptr<ot::FerretCotSender>
EnginePool::makeSender(const ot::FerretParams &p)
{
    auto e = std::make_unique<ot::FerretCotSender>(p);
    e->setThreads(cfg_.threads);
    e->setPipelined(cfg_.pipelined);
    e->prewarm();
    return e;
}

std::unique_ptr<ot::FerretCotReceiver>
EnginePool::makeReceiver(const ot::FerretParams &p)
{
    auto e = std::make_unique<ot::FerretCotReceiver>(p);
    e->setThreads(cfg_.threads);
    e->setPipelined(cfg_.pipelined);
    e->prewarm();
    return e;
}

EnginePool::SenderLease
EnginePool::checkoutSender(const ot::FerretParams &p)
{
    const EngineKey key = EngineKey::of(p);
    PoolMetrics &pm = poolMetrics();
    pm.checkouts.inc();
    SenderLease lease;
    lease.pool = this;
    lease.key = key;
    {
        std::lock_guard<std::mutex> lock(m);
        auto it = idleSend.find(key);
        if (it != idleSend.end() && !it->second.empty()) {
            lease.engine = std::move(it->second.back());
            it->second.pop_back();
            pm.warmHits.inc();
            return lease;
        }
        ++madeSenders;
    }
    pm.built.inc();
    // Construction + prewarm outside the lock: tape builds are slow
    // and other sessions must keep checking out.
    lease.engine = makeSender(p);
    return lease;
}

EnginePool::ReceiverLease
EnginePool::checkoutReceiver(const ot::FerretParams &p)
{
    const EngineKey key = EngineKey::of(p);
    PoolMetrics &pm = poolMetrics();
    pm.checkouts.inc();
    ReceiverLease lease;
    lease.pool = this;
    lease.key = key;
    {
        std::lock_guard<std::mutex> lock(m);
        auto it = idleRecv.find(key);
        if (it != idleRecv.end() && !it->second.empty()) {
            lease.engine = std::move(it->second.back());
            it->second.pop_back();
            pm.warmHits.inc();
            return lease;
        }
        ++madeReceivers;
    }
    pm.built.inc();
    lease.engine = makeReceiver(p);
    return lease;
}

void
EnginePool::prewarm(const ot::FerretParams &p, int count)
{
    const EngineKey key = EngineKey::of(p);
    for (int i = 0; i < count; ++i) {
        auto s = makeSender(p);
        auto r = makeReceiver(p);
        std::lock_guard<std::mutex> lock(m);
        idleSend[key].push_back(std::move(s));
        idleRecv[key].push_back(std::move(r));
        ++madeSenders;
        ++madeReceivers;
    }
}

void
EnginePool::returnSender(const EngineKey &key,
                         std::unique_ptr<ot::FerretCotSender> e)
{
    std::lock_guard<std::mutex> lock(m);
    idleSend[key].push_back(std::move(e));
}

void
EnginePool::returnReceiver(const EngineKey &key,
                           std::unique_ptr<ot::FerretCotReceiver> e)
{
    std::lock_guard<std::mutex> lock(m);
    idleRecv[key].push_back(std::move(e));
}

uint64_t
EnginePool::sendersCreated() const
{
    std::lock_guard<std::mutex> lock(m);
    return madeSenders;
}

uint64_t
EnginePool::receiversCreated() const
{
    std::lock_guard<std::mutex> lock(m);
    return madeReceivers;
}

size_t
EnginePool::idleSenders() const
{
    std::lock_guard<std::mutex> lock(m);
    size_t n = 0;
    for (const auto &[k, v] : idleSend)
        n += v.size();
    return n;
}

size_t
EnginePool::idleReceivers() const
{
    std::lock_guard<std::mutex> lock(m);
    size_t n = 0;
    for (const auto &[k, v] : idleRecv)
        n += v.size();
    return n;
}

} // namespace ironman::svc
