/**
 * @file
 * Client-side correlation reservoir: a background thread keeps a
 * per-session COT stock topped up, so consumers (the PPML online
 * phase, or anything drawing through ppml::CotSupply) take from local
 * memory and never stall on extension latency — the service session's
 * round trips and LPN time are paid off the consumer's critical path.
 *
 * One Reservoir wraps one CotClient session and matches its role:
 * takeRecv() on a receiver-role session, takeSend() on a sender-role
 * session. The refill thread extends whenever the stock drops under
 * the low-water mark and parks once it holds maxBatches extensions.
 *
 * Failure handling: a reservoir constructed over an EXTERNAL session
 * (the legacy reference constructor) treats any refill error as
 * terminal — the owner owns recovery. A reservoir constructed with a
 * session FACTORY owns its session and recovers from retryable wire
 * errors (net::WireError): it discards the dead session's remaining
 * stock (the peer's matching halves died with the server — mixing
 * tapes across sessions would hand out unpaired correlations),
 * redials through the factory under the RetryPolicy's backoff/budget,
 * and restocks. Only when the budget is spent (or the error is not
 * retryable) does the failure surface — as a typed WireError thrown
 * to every blocked and future taker, never as a silent stall.
 *
 * ReservoirCotSupply composes two reservoirs over two sessions of
 * opposite roles into the dual-direction ppml::CotSupply the GMW
 * engine consumes; the peer holding the matching halves is the
 * service operator (the server's batch sinks carry them).
 */

#ifndef IRONMAN_SVC_RESERVOIR_H
#define IRONMAN_SVC_RESERVOIR_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "net/wire_error.h"
#include "ppml/cot_supply.h"
#include "svc/cot_client.h"
#include "svc/retry.h"

namespace ironman::svc {

class Reservoir
{
  public:
    struct Options
    {
        size_t lowWaterBatches = 1; ///< refill below this many extensions
        size_t maxBatches = 2;      ///< stop refilling at this stock

        /**
         * Watermarks sized from a consumer's known per-request demand
         * (e.g. ppml::MlpModelSpec::cotsPerImage() * batch): keep at
         * least one whole request's worth of stock ahead plus one
         * batch of slack, capped so one session never hoards.
         */
        static Options
        sizedFor(uint64_t cots_per_request,
                 size_t usable_ots_per_extension)
        {
            const uint64_t need =
                (cots_per_request + usable_ots_per_extension - 1) /
                usable_ots_per_extension;
            Options o;
            o.lowWaterBatches =
                size_t(need < 1 ? 1 : (need > 8 ? 8 : need));
            o.maxBatches = 2 * o.lowWaterBatches;
            return o;
        }
    };

    /** Dials one session; called again (under backoff) on recovery. */
    using SessionFactory =
        std::function<std::unique_ptr<CotClient>()>;

    /**
     * Start refilling immediately. @p client must outlive the
     * reservoir and must not be used elsewhere while it runs (the
     * refill thread owns the session). No recovery: a refill error is
     * terminal for this reservoir.
     */
    explicit Reservoir(CotClient &client)
        : Reservoir(client, Options{})
    {
    }
    Reservoir(CotClient &client, Options opt);

    /**
     * Owning, self-healing mode: dial the initial session through
     * @p factory (retried under @p retry if the first dial fails
     * retryably), and on a retryable refill error discard stock,
     * redial, restock. @p hook observes retry events (may be empty).
     */
    Reservoir(SessionFactory factory, Options opt, RetryPolicy retry,
              RetryEventHook hook = RetryEventHook());

    ~Reservoir();

    Reservoir(const Reservoir &) = delete;
    Reservoir &operator=(const Reservoir &) = delete;

    /**
     * Take @p n receiver-role correlations into caller storage
     * (resized; reused storage allocates nothing). Blocks until the
     * refill thread has produced enough; throws net::WireError if the
     * supply failed terminally (see file comment).
     */
    void takeRecv(size_t n, BitVec *bits, std::vector<Block> *t);

    /** Take @p n sender-role strings; see takeRecv. */
    void takeSend(size_t n, std::vector<Block> *q);

    /** The current session (rebuilt across recoveries). */
    CotClient &session() { return *client_; }

    /** Correlations currently in stock. */
    size_t stock() const;

    /** Extensions the refill thread has run. */
    uint64_t refills() const;

    /** Correlations handed out. */
    uint64_t taken() const;

    /** Successful session recoveries (factory mode only). */
    uint64_t reconnects() const;

    /** Whether the supply failed terminally (takers will throw). */
    bool failedTerminally() const;

    /**
     * Stop the refill thread (it finishes any in-flight extension).
     * Called by the destructor; the session itself stays open for the
     * owner to close.
     */
    void stopRefill();

  private:
    void refillLoop();
    bool recoverSession(const net::WireError &cause);
    void markFailed(net::WireFault fault, const std::string &what);
    void waitForStockLocked(std::unique_lock<std::mutex> &lock,
                            size_t n);
    void discardStockLocked();

    CotClient *client_ = nullptr; ///< external, or owned.get()
    std::unique_ptr<CotClient> owned; ///< factory mode only
    SessionFactory factory;           ///< empty = no recovery
    RetryPolicy retry_;
    RetryEventHook retryHook;
    Options opt_;
    // Session invariants cached at construction so takers never touch
    // client_ (the refill thread may be swapping it mid-recovery).
    Role role_ = Role::Receiver;
    size_t usable_ = 0;

    mutable std::mutex m;
    std::condition_variable stockCv; ///< takers wait for stock
    std::condition_variable needCv;  ///< refiller waits for demand

    // Stock, role-dependent: receiver sessions fill bits+t, sender
    // sessions fill q. head is the consumed prefix; compaction drops
    // whole batches once consumed.
    BitVec bits;
    std::vector<Block> blocks;
    size_t head = 0;
    size_t demand = 0; ///< largest pending take (refiller must cover it)
    bool running = true;
    bool failed = false; ///< terminal: takers throw instead of waiting
    net::WireFault failFault = net::WireFault::Fatal;
    std::string failWhat;
    uint64_t refillCount = 0;
    uint64_t takenCount = 0;
    uint64_t reconnectCount = 0;

    // Refill staging (thread-local to the refill loop, reused).
    BitVec stageBits;
    std::vector<Block> stageBlocks;

    std::thread refillThread;
};

/** Dual-direction ppml::CotSupply backed by two reservoirs. */
class ReservoirCotSupply final : public ppml::CotSupply
{
  public:
    /**
     * @param send_res Reservoir over a Role::Sender session (this
     *        party holds delta and q there).
     * @param recv_res Reservoir over a Role::Receiver session.
     */
    ReservoirCotSupply(Reservoir &send_res, Reservoir &recv_res,
                       const Block &send_delta)
        : sendRes(send_res), recvRes(recv_res), delta(send_delta)
    {
    }

    const Block &sendDelta() const override { return delta; }

    const Block *
    takeSend(size_t n) override
    {
        sendRes.takeSend(n, &qBuf);
        taken += n;
        return qBuf.data();
    }

    void
    takeRecv(size_t n, const BitVec **bits, size_t *bit_offset,
             const Block **t) override
    {
        recvRes.takeRecv(n, &bitBuf, &tBuf);
        *bits = &bitBuf;
        *bit_offset = 0;
        *t = tBuf.data();
        taken += n;
    }

    size_t cotsTaken() const override { return taken; }

  private:
    Reservoir &sendRes;
    Reservoir &recvRes;
    Block delta;
    std::vector<Block> qBuf;
    BitVec bitBuf;
    std::vector<Block> tBuf;
    size_t taken = 0;
};

} // namespace ironman::svc

#endif // IRONMAN_SVC_RESERVOIR_H
