/**
 * @file
 * Client-side correlation reservoir: a background thread keeps a
 * per-session COT stock topped up, so consumers (the PPML online
 * phase, or anything drawing through ppml::CotSupply) take from local
 * memory and never stall on extension latency — the service session's
 * round trips and LPN time are paid off the consumer's critical path.
 *
 * One Reservoir wraps one CotClient session and matches its role:
 * takeRecv() on a receiver-role session, takeSend() on a sender-role
 * session. The refill thread extends whenever the stock drops under
 * the low-water mark and parks once it holds maxBatches extensions.
 *
 * ReservoirCotSupply composes two reservoirs over two sessions of
 * opposite roles into the dual-direction ppml::CotSupply the GMW
 * engine consumes; the peer holding the matching halves is the
 * service operator (the server's batch sinks carry them).
 */

#ifndef IRONMAN_SVC_RESERVOIR_H
#define IRONMAN_SVC_RESERVOIR_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "ppml/cot_supply.h"
#include "svc/cot_client.h"

namespace ironman::svc {

class Reservoir
{
  public:
    struct Options
    {
        size_t lowWaterBatches = 1; ///< refill below this many extensions
        size_t maxBatches = 2;      ///< stop refilling at this stock

        /**
         * Watermarks sized from a consumer's known per-request demand
         * (e.g. ppml::MlpModelSpec::cotsPerImage() * batch): keep at
         * least one whole request's worth of stock ahead plus one
         * batch of slack, capped so one session never hoards.
         */
        static Options
        sizedFor(uint64_t cots_per_request,
                 size_t usable_ots_per_extension)
        {
            const uint64_t need =
                (cots_per_request + usable_ots_per_extension - 1) /
                usable_ots_per_extension;
            Options o;
            o.lowWaterBatches =
                size_t(need < 1 ? 1 : (need > 8 ? 8 : need));
            o.maxBatches = 2 * o.lowWaterBatches;
            return o;
        }
    };

    /**
     * Start refilling immediately. @p client must outlive the
     * reservoir and must not be used elsewhere while it runs (the
     * refill thread owns the session).
     */
    explicit Reservoir(CotClient &client)
        : Reservoir(client, Options{})
    {
    }
    Reservoir(CotClient &client, Options opt);
    ~Reservoir();

    Reservoir(const Reservoir &) = delete;
    Reservoir &operator=(const Reservoir &) = delete;

    /**
     * Take @p n receiver-role correlations into caller storage
     * (resized; reused storage allocates nothing). Blocks until the
     * refill thread has produced enough.
     */
    void takeRecv(size_t n, BitVec *bits, std::vector<Block> *t);

    /** Take @p n sender-role strings; see takeRecv. */
    void takeSend(size_t n, std::vector<Block> *q);

    /** Correlations currently in stock. */
    size_t stock() const;

    /** Extensions the refill thread has run. */
    uint64_t refills() const;

    /** Correlations handed out. */
    uint64_t taken() const;

    /**
     * Stop the refill thread (it finishes any in-flight extension).
     * Called by the destructor; the session itself stays open for the
     * owner to close.
     */
    void stopRefill();

  private:
    void refillLoop();
    void waitForStockLocked(std::unique_lock<std::mutex> &lock,
                            size_t n);

    CotClient &client;
    Options opt_;

    mutable std::mutex m;
    std::condition_variable stockCv; ///< takers wait for stock
    std::condition_variable needCv;  ///< refiller waits for demand

    // Stock, role-dependent: receiver sessions fill bits+t, sender
    // sessions fill q. head is the consumed prefix; compaction drops
    // whole batches once consumed.
    BitVec bits;
    std::vector<Block> blocks;
    size_t head = 0;
    size_t demand = 0; ///< largest pending take (refiller must cover it)
    bool running = true;
    uint64_t refillCount = 0;
    uint64_t takenCount = 0;

    // Refill staging (thread-local to the refill loop, reused).
    BitVec stageBits;
    std::vector<Block> stageBlocks;

    std::thread refillThread;
};

/** Dual-direction ppml::CotSupply backed by two reservoirs. */
class ReservoirCotSupply final : public ppml::CotSupply
{
  public:
    /**
     * @param send_res Reservoir over a Role::Sender session (this
     *        party holds delta and q there).
     * @param recv_res Reservoir over a Role::Receiver session.
     */
    ReservoirCotSupply(Reservoir &send_res, Reservoir &recv_res,
                       const Block &send_delta)
        : sendRes(send_res), recvRes(recv_res), delta(send_delta)
    {
    }

    const Block &sendDelta() const override { return delta; }

    const Block *
    takeSend(size_t n) override
    {
        sendRes.takeSend(n, &qBuf);
        taken += n;
        return qBuf.data();
    }

    void
    takeRecv(size_t n, const BitVec **bits, size_t *bit_offset,
             const Block **t) override
    {
        recvRes.takeRecv(n, &bitBuf, &tBuf);
        *bits = &bitBuf;
        *bit_offset = 0;
        *t = tBuf.data();
        taken += n;
    }

    size_t cotsTaken() const override { return taken; }

  private:
    Reservoir &sendRes;
    Reservoir &recvRes;
    Block delta;
    std::vector<Block> qBuf;
    BitVec bitBuf;
    std::vector<Block> tBuf;
    size_t taken = 0;
};

} // namespace ironman::svc

#endif // IRONMAN_SVC_RESERVOIR_H
