/**
 * @file
 * Blocking client of the COT service: connects a SocketChannel, runs
 * the wire handshake and the base-OT substitute setup, then streams
 * extension batches — each extend*() call sends one Op::Extend and
 * runs this side's half of FerretCotSender/Receiver::extendInto
 * against the server's pooled engine.
 *
 * The client picks its role at connect time: Role::Receiver (the
 * common case — the service hands out (choice, t) correlations under
 * the server's delta) or Role::Sender (the client holds delta and q;
 * the server plays receiver). Outputs are bit-identical to a direct
 * in-process engine pair fed the same session seed (the multi-session
 * test pins this down), so everything downstream of a Channel keeps
 * working unchanged over the real transport.
 */

#ifndef IRONMAN_SVC_COT_CLIENT_H
#define IRONMAN_SVC_COT_CLIENT_H

#include <cstdint>
#include <memory>
#include <string>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/rng.h"
#include "net/socket_channel.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"
#include "svc/retry.h"
#include "svc/wire.h"

namespace ironman::svc {

class CotClient
{
  public:
    struct Options
    {
        Role role = Role::Receiver;
        uint64_t setupSeed = 1;
        int threads = 1;
        bool pipelined = true; ///< must match the server's config
    };

    /**
     * Handshake over an already-connected channel (from tcpConnect /
     * unixConnect / socketChannelPair). Throws net::WireError{Fatal}
     * when the server rejects the hello (a reject is a verdict, not a
     * hiccup — retrying the same hello gets the same answer).
     */
    CotClient(std::unique_ptr<net::SocketChannel> ch,
              const ot::FerretParams &params, Options opt);

    /** Convenience: connect + handshake over loopback/remote TCP. */
    static std::unique_ptr<CotClient>
    connectTcp(const std::string &host, uint16_t port,
               const ot::FerretParams &params, Options opt);

    /**
     * connectTcp with reconnect: retryable failures (refused connect —
     * the daemon is restarting — or a wire error inside the handshake)
     * are retried under @p retry's backoff/budget; the last error is
     * rethrown once the budget is spent. Non-retryable errors (a
     * server REJECT, bad configuration) propagate immediately.
     * @p hook observes each retry (may be empty).
     */
    static std::unique_ptr<CotClient>
    connectTcpRetry(const std::string &host, uint16_t port,
                    const ot::FerretParams &params, Options opt,
                    const RetryPolicy &retry,
                    const RetryEventHook &hook = RetryEventHook());

    /** Convenience: connect + handshake over a Unix-domain path. */
    static std::unique_ptr<CotClient>
    connectUnix(const std::string &path, const ot::FerretParams &params,
                Options opt);

    ~CotClient();

    CotClient(const CotClient &) = delete;
    CotClient &operator=(const CotClient &) = delete;

    uint64_t sessionId() const { return sid; }
    Role role() const { return opt_.role; }
    const ot::FerretParams &params() const { return p; }

    /** Fresh correlations one extension yields. */
    size_t usableOts() const { return p.usableOts(); }

    /**
     * One receiver-role extension: usableOts() choice bits into
     * @p choice and as many blocks into @p t.
     */
    void extendRecv(BitVec &choice, Block *t);

    /** One sender-role extension: usableOts() strings into @p q. */
    void extendSend(Block *q);

    /** Session offset (sender role only). */
    const Block &delta() const;

    /** Extensions run so far. */
    uint64_t extensionsRun() const { return extensions; }

    /** Wire bytes this endpoint pushed (payload, transport-independent). */
    uint64_t bytesSent() const { return ch->bytesSent(); }

    /** End the session politely; further extend*() calls are bugs. */
    void close();

  private:
    std::unique_ptr<net::SocketChannel> ch;
    ot::FerretParams p;
    Options opt_;
    uint64_t sid = 0;
    bool closed = false;
    Rng rng;
    Block delta_;
    std::unique_ptr<ot::FerretCotSender> sender;
    std::unique_ptr<ot::FerretCotReceiver> receiver;
    uint64_t extensions = 0;
};

} // namespace ironman::svc

#endif // IRONMAN_SVC_COT_CLIENT_H
