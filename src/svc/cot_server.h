/**
 * @file
 * The COT-as-a-service daemon: accepts client sessions over real
 * sockets (loopback/remote TCP or Unix-domain), plays the opposite OT
 * role of each client, and serves extensions from warm pooled engines.
 *
 * Concurrency model: one accept loop plus one thread per active
 * session (sessions are blocking protocol loops — each one spends its
 * life inside interactive extendInto calls). Kernel parallelism comes
 * from each engine's own fixed worker pool (EnginePool::Config::threads
 * wide), the same ThreadPool the single-connection engines use; the
 * session count is bounded by Config::maxSessions, beyond which the
 * accept loop applies backpressure (clients queue in the listen
 * backlog). Engines outlive sessions: a finished session's engine
 * returns to the EnginePool and the next session of the same parameter
 * shape reuses it via resetSession() — allocation-free once warm
 * (invariant 12).
 *
 * The server's own protocol outputs (sender strings q, or receiver
 * choice/t) are the service operator's half of the correlations. Tests
 * and deployments that consume them register batch sinks; without a
 * sink the outputs are dropped after each extension (the client half
 * is still perfectly usable — this matches a dealer that only retains
 * what its operator needs).
 */

#ifndef IRONMAN_SVC_COT_SERVER_H
#define IRONMAN_SVC_COT_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_channel.h"
#include "svc/engine_pool.h"
#include "svc/wire.h"

namespace ironman::svc {

class CotServer
{
  public:
    struct Config
    {
        int engineThreads = 1;   ///< worker-pool width per engine
        bool pipelined = true;   ///< engine mode (clients must match)
        size_t maxSessions = 32; ///< concurrent-session bound
    };

    CotServer() : CotServer(Config{}) {}
    explicit CotServer(Config cfg);
    ~CotServer();

    CotServer(const CotServer &) = delete;
    CotServer &operator=(const CotServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral), start the accept loop,
     * return the bound port.
     */
    uint16_t listenTcp(uint16_t port = 0);

    /** Bind a Unix-domain path and start the accept loop. */
    void listenUnix(const std::string &path);

    /**
     * Stop accepting, shut down active sessions, wait for them to
     * unwind, and join the accept loop. Idempotent.
     */
    void stop();

    EnginePool &pool() { return pool_; }

    uint64_t sessionsServed() const { return served.load(); }
    uint64_t extensionsServed() const { return extensions.load(); }
    uint64_t cotsServed() const { return cots.load(); }
    size_t activeSessions() const;

    // -- output sinks (tests / operator-side consumption) ---------------

    /** One sender-side extension result; pointers valid during the call. */
    struct SenderBatch
    {
        uint64_t sessionId;
        uint64_t iteration; ///< 0-based extension index in the session
        Block delta;
        const Block *q;
        size_t count;
    };

    /** One receiver-side extension result; pointers valid during the call. */
    struct ReceiverBatch
    {
        uint64_t sessionId;
        uint64_t iteration;
        const BitVec *choice;
        const Block *t;
        size_t count;
    };

    /**
     * Register batch observers. Called from session threads (must be
     * thread-safe); set before listening. LIFETIME: anything a sink
     * references must outlive the server — or stop() must run first —
     * because session threads may still be delivering batches until
     * stop() joins them.
     */
    void setSenderSink(std::function<void(const SenderBatch &)> fn);
    void setReceiverSink(std::function<void(const ReceiverBatch &)> fn);

  private:
    void startAccepting(int fd);
    void acceptLoop();
    void serveSession(std::unique_ptr<net::SocketChannel> ch,
                      uint64_t sid);
    void serveSenderSession(net::SocketChannel &ch, uint64_t sid,
                            const Hello &hello);
    void serveReceiverSession(net::SocketChannel &ch, uint64_t sid,
                              const Hello &hello);

    Config cfg_;
    EnginePool pool_;

    std::atomic<int> listenFd{-1}; ///< stop() retires it from another thread
    std::thread acceptThread;
    std::atomic<bool> stopping{false};

    /** One accepted session: its serving thread + completion flag. */
    struct Session
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> finished;
    };

    void reapFinishedLocked();

    mutable std::mutex m;
    std::condition_variable cv; ///< session-slot and drain waits
    size_t active = 0;
    std::map<uint64_t, net::SocketChannel *> liveChannels;
    std::vector<Session> sessions; ///< joined on reap/stop, never detached
    uint64_t nextSession = 1;

    std::function<void(const SenderBatch &)> senderSink;
    std::function<void(const ReceiverBatch &)> receiverSink;

    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> extensions{0};
    std::atomic<uint64_t> cots{0};
};

} // namespace ironman::svc

#endif // IRONMAN_SVC_COT_SERVER_H
