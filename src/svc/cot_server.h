/**
 * @file
 * The COT-as-a-service daemon: accepts client sessions over real
 * sockets (loopback/remote TCP or Unix-domain), plays the opposite OT
 * role of each client, and serves extensions from warm pooled engines.
 *
 * Concurrency model: net::SessionServer's — one accept loop plus one
 * joined thread per active session (sessions are blocking protocol
 * loops — each one spends its life inside interactive extendInto
 * calls). Kernel parallelism comes from each engine's own fixed
 * worker pool (EnginePool::Config::threads wide), the same ThreadPool
 * the single-connection engines use; the session count is bounded by
 * Config::maxSessions, beyond which the accept loop applies
 * backpressure (clients queue in the listen backlog). Engines outlive
 * sessions: a finished session's engine returns to the EnginePool and
 * the next session of the same parameter shape reuses it via
 * resetSession() — allocation-free once warm (invariant 12).
 *
 * The server's own protocol outputs (sender strings q, or receiver
 * choice/t) are the service operator's half of the correlations. Tests
 * and deployments that consume them register batch sinks; without a
 * sink the outputs are dropped after each extension (the client half
 * is still perfectly usable — this matches a dealer that only retains
 * what its operator needs).
 */

#ifndef IRONMAN_SVC_COT_SERVER_H
#define IRONMAN_SVC_COT_SERVER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/flight_recorder.h"
#include "net/session_server.h"
#include "net/socket_channel.h"
#include "svc/engine_pool.h"
#include "svc/wire.h"

namespace ironman::svc {

class CotServer
{
  public:
    struct Config
    {
        int engineThreads = 1;   ///< worker-pool width per engine
        bool pipelined = true;   ///< engine mode (clients must match)
        size_t maxSessions = 32; ///< concurrent-session bound

        // -- containment (see net::SessionServer) ----------------------
        // Per-session socket deadlines plus an idle reaper, so one
        // stalled or dead peer cannot pin a session thread forever.
        // 0 = off (trusted-bench default; the daemons set these).
        uint64_t sessionRecvTimeoutMs = 0; ///< blocked-read deadline
        uint64_t sessionSendTimeoutMs = 0; ///< blocked-write deadline
        uint64_t idleTimeoutMs = 0;        ///< no-traffic reap window

        // -- per-client policy, enforced at handshake ------------------
        // A rejected hello gets a clean wire-level Accept{status} (the
        // client can log it) instead of a dropped connection. Clients
        // are keyed by SocketChannel::peerAddress() — for TCP the
        // remote IP, so all connections from one host share a bucket.
        // CAVEAT: Unix-domain peers all key as "unix", so on a Unix
        // listener these quotas are ONE GLOBAL bucket, not per client
        // (distinguishing local peers needs SO_PEERCRED — ROADMAP).

        /**
         * Parameter shapes this daemon will build engines for; empty
         * means any structurally valid shape. Membership compares the
         * EngineKey fields (what determines engine size and output).
         */
        std::vector<ot::FerretParams> paramsAllowlist;

        /** Lifetime sessions one client address may open; 0 = no cap. */
        uint64_t maxSessionsPerClient = 0;

        /**
         * Payload bytes one client address may be served across all
         * its sessions; 0 = no cap. Checked at handshake (a session
         * admitted under the quota runs to completion; its bytes count
         * against the next admission).
         */
        uint64_t maxBytesPerClient = 0;
    };

    CotServer() : CotServer(Config{}) {}
    explicit CotServer(Config cfg);
    ~CotServer();

    CotServer(const CotServer &) = delete;
    CotServer &operator=(const CotServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral), start the accept loop,
     * return the bound port.
     */
    uint16_t listenTcp(uint16_t port = 0);

    /** Bind a Unix-domain path and start the accept loop. */
    void listenUnix(const std::string &path);

    /**
     * Stop accepting, shut down active sessions, wait for them to
     * unwind, and join the accept loop. Idempotent.
     */
    void stop();

    /**
     * Graceful shutdown for rolling restarts: stop accepting, give
     * in-flight sessions @p timeout_ms to finish on their own, then
     * force-close stragglers. Returns true iff every session ended
     * voluntarily. Terminal — serve with a fresh server afterwards.
     */
    bool drain(uint64_t timeout_ms);

    /** Sessions force-closed by the idle reaper. */
    uint64_t sessionsReaped() const { return server_.sessionsReaped(); }

    EnginePool &pool() { return pool_; }

    uint64_t sessionsServed() const { return served.load(); }
    uint64_t extensionsServed() const { return extensions.load(); }
    uint64_t cotsServed() const { return cots.load(); }
    size_t activeSessions() const;

    /** Hellos rejected by policy (allowlist or quotas). */
    uint64_t sessionsRejected() const { return rejected.load(); }

    /** Payload bytes served so far to @p client_addr. */
    uint64_t bytesServedTo(const std::string &client_addr) const;

    // -- output sinks (tests / operator-side consumption) ---------------

    /** One sender-side extension result; pointers valid during the call. */
    struct SenderBatch
    {
        uint64_t sessionId;
        uint64_t iteration; ///< 0-based extension index in the session
        Block delta;
        const Block *q;
        size_t count;
    };

    /** One receiver-side extension result; pointers valid during the call. */
    struct ReceiverBatch
    {
        uint64_t sessionId;
        uint64_t iteration;
        const BitVec *choice;
        const Block *t;
        size_t count;
    };

    /**
     * Register batch observers. Called from session threads (must be
     * thread-safe); set before listening. LIFETIME: anything a sink
     * references must outlive the server — or stop() must run first —
     * because session threads may still be delivering batches until
     * stop() joins them.
     */
    void setSenderSink(std::function<void(const SenderBatch &)> fn);
    void setReceiverSink(std::function<void(const ReceiverBatch &)> fn);

    /**
     * Observer of admitted sessions, called on the session thread
     * BEFORE the Accept is sent — so by the time a client can quote
     * its session id anywhere (it learns it from the Accept), the
     * sink has run. The operator stock uses it to record which peer
     * owns each session.
     */
    void setSessionStartSink(
        std::function<void(uint64_t sid, const std::string &peer)> fn);

    /**
     * Observer of session ends (served, rejected, or aborted), called
     * on the session thread after its last batch sink. The operator
     * stock uses it to free a session's retained halves the moment no
     * more can arrive.
     */
    void setSessionEndSink(std::function<void(uint64_t sid)> fn);

  private:
    /** Allowlist + quota verdict for an Ok hello; admits on Ok. */
    Status admitSession(const std::string &client, const Hello &hello);
    void serveSession(net::SocketChannel &ch, uint64_t sid);
    void serveSenderSession(net::SocketChannel &ch, uint64_t sid,
                            const Hello &hello,
                            net::FlightRecorder &fr);
    void serveReceiverSession(net::SocketChannel &ch, uint64_t sid,
                              const Hello &hello,
                              net::FlightRecorder &fr);

    Config cfg_;
    EnginePool pool_;
    net::SessionServer server_;

    /** Per-client quota bookkeeping (keyed by peerAddress()). */
    struct ClientUsage
    {
        uint64_t sessions = 0; ///< admitted (lifetime)
        uint64_t bytes = 0;    ///< served payload (finished sessions)
    };
    mutable std::mutex m;
    std::map<std::string, ClientUsage> clients;

    std::function<void(const SenderBatch &)> senderSink;
    std::function<void(const ReceiverBatch &)> receiverSink;
    std::function<void(uint64_t, const std::string &)> sessionStartSink;
    std::function<void(uint64_t)> sessionEndSink;

    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> extensions{0};
    std::atomic<uint64_t> cots{0};
    std::atomic<uint64_t> rejected{0};
};

} // namespace ironman::svc

#endif // IRONMAN_SVC_COT_SERVER_H
