/**
 * @file
 * Reconnect policy shared by the service clients (svc::CotClient
 * factories, svc::Reservoir, infer::InferClient): exponential backoff
 * with deterministic jitter under a finite attempt budget.
 *
 * The policy consumes exactly one bit of the error taxonomy —
 * net::WireError::retryable() — and owns everything else: how many
 * fresh connections to attempt, how long to wait between them, and
 * how to de-synchronize a fleet of clients all reconnecting to the
 * same restarted daemon (jitter, seeded so tests are reproducible).
 *
 * The backoff for attempt a (1-based) is
 *
 *     min(base * 2^(a-1), max) * (0.5 + jitter(a)/2)
 *
 * i.e. full value down to half value, drawn from a splitmix64 tape
 * over (jitterSeed, a) — two clients with different seeds spread out,
 * one client replays identically.
 */

#ifndef IRONMAN_SVC_RETRY_H
#define IRONMAN_SVC_RETRY_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "net/wire_error.h"

namespace ironman::svc {

struct RetryPolicy
{
    /** Total connection attempts (the first one included); >= 1. */
    unsigned maxAttempts = 5;

    uint64_t baseBackoffMs = 20;
    uint64_t maxBackoffMs = 2000;

    /** Jitter tape seed — vary per client, fix per test. */
    uint64_t jitterSeed = 1;

    /** Backoff before (1-based) attempt @p attempt; 0 before the first. */
    uint64_t
    backoffMs(unsigned attempt) const
    {
        if (attempt <= 1)
            return 0;
        uint64_t ms = baseBackoffMs;
        for (unsigned i = 2; i < attempt && ms < maxBackoffMs; ++i)
            ms *= 2;
        if (ms > maxBackoffMs)
            ms = maxBackoffMs;
        // Deterministic jitter in [ms/2, ms].
        uint64_t z = jitterSeed + attempt * 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        return ms / 2 + z % (ms / 2 + 1);
    }

    void
    sleepBefore(unsigned attempt) const
    {
        const uint64_t ms = backoffMs(attempt);
        if (ms > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
};

/**
 * Observer of retry/backoff events (attempt is 1-based, backoff_ms is
 * the sleep ABOUT to be taken, what is the triggering error). The
 * chaos demos print these; production would count them.
 */
using RetryEventHook = std::function<void(
    unsigned attempt, uint64_t backoff_ms, const std::string &what)>;

} // namespace ironman::svc

#endif // IRONMAN_SVC_RETRY_H
