/**
 * @file
 * The service operator's retained half of the correlations.
 *
 * A CotServer session's own protocol outputs (sender strings q with
 * delta, or receiver (choice, t)) are delivered through batch sinks
 * and normally dropped. When the OPERATOR is itself the second MPC
 * party — the inference service: the paper's Sec. 5.2 role-switching
 * story served over sockets — those halves are exactly the
 * correlations its GMW engine must consume, in the same order the
 * client consumes the mirror halves from its reservoirs.
 *
 * OperatorStock retains them: attach() registers both sinks and banks
 * each session's batches keyed by session id; takeSend()/takeRecv()
 * are blocking consumers (the stock is produced by COT-session
 * threads, driven by the client's reservoir refills — an extension
 * that satisfied the client's take has, by construction, already run
 * the server half, so a blocked taker only ever waits on thread
 * scheduling, never on protocol progress). OperatorCotSupply
 * composes two sessions of opposite roles into the dual-direction
 * ppml::CotSupply the server-side SecureCompute consumes.
 *
 * Memory: a session's stock is bounded by its client reservoir's
 * high-water mark plus one in-flight extension, because server-side
 * production is in lockstep with client-side production and the
 * inference session consumes both streams at the same rate. Residue
 * is freed on two paths: the consuming inference session drops its
 * two sids when it ends, and attach() registers the CotServer's
 * session-end sink so a session nobody consumed (a rejected infer
 * hello, a client that died before its hello) is erased the moment
 * its COT session closes and no more batches can arrive. Only point
 * an OperatorStock at a CotServer whose sessions are consumed this
 * way — a plain streaming cot_client against the same daemon would
 * bank stock until its session ends.
 */

#ifndef IRONMAN_SVC_OPERATOR_STOCK_H
#define IRONMAN_SVC_OPERATOR_STOCK_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "ppml/cot_supply.h"
#include "svc/cot_server.h"

namespace ironman::svc {

/** Thread-safe per-session bank of the server-side halves. */
class OperatorStock
{
  public:
    OperatorStock() = default;
    OperatorStock(const OperatorStock &) = delete;
    OperatorStock &operator=(const OperatorStock &) = delete;

    /**
     * Register this stock as @p server's batch AND session-end sinks.
     * The stock must outlive the server (or server.stop() must run
     * first) — session threads deliver until they are joined.
     */
    void attach(CotServer &server);

    /**
     * Take @p n sender-half strings of session @p sid into @p q
     * (resized) and the session offset into @p delta. Blocks until
     * the session's extensions have produced enough.
     */
    void takeSend(uint64_t sid, size_t n, std::vector<Block> *q,
                  Block *delta);

    /** Take @p n receiver-half correlations of session @p sid. */
    void takeRecv(uint64_t sid, size_t n, BitVec *bits,
                  std::vector<Block> *t);

    /** Correlations currently banked for @p sid. */
    size_t stock(uint64_t sid) const;

    /**
     * Peer address that opened COT session @p sid (recorded by the
     * server's session-start sink, so it is set before the client can
     * quote the sid anywhere). Empty when the sid is unknown or the
     * session already ended — the inference server rejects hellos
     * naming such sessions, and refuses sids owned by a DIFFERENT
     * peer address (same-address granularity as the quotas; binding
     * tokens for co-located clients are a ROADMAP item).
     */
    std::string peerOf(uint64_t sid) const;

    /**
     * Erase a finished session's entry entirely (the map never grows
     * with dead sessions). A taker blocked on the sid is not woken —
     * its entry is simply gone, so it expires through the wait
     * timeout; in the normal protocol no take can be in flight when a
     * drop runs (the consumer drops its own sids, and the session-end
     * sink fires only after the client stopped driving).
     */
    void drop(uint64_t sid);

    /**
     * Permanently retire the stock: every blocked and future take
     * throws. InferServer::stop() calls this so session threads
     * blocked on a dead client's stock unwind and join.
     */
    void shutdown();

    /**
     * Bound on how long a take may wait for production before it
     * throws. A taker only legitimately waits while its client is
     * mid-request and actively stocking, so an expiry means the
     * client died, stalled, or named a session that never produces
     * (a bogus hello sid) — the consuming session unwinds and frees
     * its slot instead of pinning it until shutdown(). Default 2
     * minutes; tests shrink it.
     */
    void setWaitTimeout(std::chrono::milliseconds timeout);

  private:
    struct SessionStock
    {
        std::string peer;          ///< owner; set at session start
        BitVec bits;               ///< receiver sessions only
        std::vector<Block> blocks; ///< q or t
        size_t head = 0;           ///< consumed prefix
        Block delta;               ///< sender sessions only
        bool haveDelta = false;
    };

    void compactLocked(SessionStock &s);
    /** Record wait time + take size + depth delta (telemetry). */
    void noteTakeLocked(uint64_t t0_us, size_t n);

    mutable std::mutex m;
    std::condition_variable cv;
    std::map<uint64_t, SessionStock> sessions;
    bool stopped = false;
    std::chrono::milliseconds waitTimeout{120000};
};

/**
 * Dual-direction ppml::CotSupply over the operator halves of two
 * service sessions with opposite client roles:
 *
 *   - @p send_sid: the session whose CLIENT connected Role::Receiver,
 *     so the SERVER holds (delta, q) — this party's send direction;
 *   - @p recv_sid: the session whose client connected Role::Sender,
 *     so the server holds (choice, t) — the recv direction.
 *
 * The inference client's ReservoirCotSupply over the mirror halves of
 * the same two sessions hands out the matching correlations in the
 * same order, which is the lockstep contract CotSupply requires.
 */
class OperatorCotSupply final : public ppml::CotSupply
{
  public:
    OperatorCotSupply(OperatorStock &stock, uint64_t send_sid,
                      uint64_t recv_sid)
        : stock_(stock), sendSid(send_sid), recvSid(recv_sid)
    {
    }

    const Block &
    sendDelta() const override
    {
        if (!haveDelta) {
            // First batch not banked yet: claim zero correlations,
            // which blocks until the delta-carrying batch arrives.
            std::vector<Block> none;
            stock_.takeSend(sendSid, 0, &none, &delta);
            haveDelta = true;
        }
        return delta;
    }

    const Block *
    takeSend(size_t n) override
    {
        stock_.takeSend(sendSid, n, &qBuf, &delta);
        haveDelta = true;
        taken += n;
        return qBuf.data();
    }

    void
    takeRecv(size_t n, const BitVec **bits, size_t *bit_offset,
             const Block **t) override
    {
        stock_.takeRecv(recvSid, n, &bitBuf, &tBuf);
        *bits = &bitBuf;
        *bit_offset = 0;
        *t = tBuf.data();
        taken += n;
    }

    size_t cotsTaken() const override { return taken; }

  private:
    OperatorStock &stock_;
    uint64_t sendSid, recvSid;
    mutable Block delta;
    mutable bool haveDelta = false;
    std::vector<Block> qBuf;
    BitVec bitBuf;
    std::vector<Block> tBuf;
    size_t taken = 0;
};

} // namespace ironman::svc

#endif // IRONMAN_SVC_OPERATOR_STOCK_H
