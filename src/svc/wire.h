/**
 * @file
 * Wire protocol of the COT service (src/svc): the handshake and the
 * per-batch opcodes that frame the Ferret protocol bytes.
 *
 * One session, client's view:
 *
 *   connect ──► Hello { magic, version, role, FerretParams, setupSeed }
 *           ◄── Accept { status, sessionId }
 *   loop:   ──► Op::Extend, then both ends run one
 *               FerretCotSender/Receiver::extendInto over the same
 *               channel (the opcode and the first protocol bytes share
 *               a frame — SocketChannel cuts frames on turnarounds)
 *   final:  ──► Op::Close
 *
 * The client picks its OWN role; the server plays the opposite one.
 * Parameters travel as explicit little-endian fields (WireParams), so
 * the negotiated FerretParams is identical on both ends — the engines'
 * outputs are a deterministic function of (params, base material, the
 * two parties' RNG tapes), which is what the multi-session
 * bit-identity test pins down.
 *
 * Base-OT substitution: like the rest of the repository (DESIGN.md
 * §4), the one-time base-COT phase is replaced by a trusted dealer.
 * The handshake's setupSeed seeds that dealer on both ends
 * (dealSessionBase) and both parties keep their own halves; the
 * derived per-party RNG seeds (senderRngSeed / receiverRngSeed) make
 * whole sessions reproducible, which tests and the reservoir's
 * correlation checks rely on. A deployment replacing the dealer with
 * real base OTs only swaps dealSessionBase — the framing is unchanged.
 */

#ifndef IRONMAN_SVC_WIRE_H
#define IRONMAN_SVC_WIRE_H

#include <cstdint>

#include "common/block.h"
#include "net/channel.h"
#include "ot/cot.h"
#include "ot/ferret_params.h"

namespace ironman::svc {

constexpr uint32_t kMagic = 0x49525356;  ///< "IRSV"
constexpr uint16_t kWireVersion = 1;

/** The OT role the CLIENT plays; the server plays the opposite. */
enum class Role : uint8_t
{
    Sender = 0,
    Receiver = 1,
};

const char *roleName(Role r);

/** Per-batch opcodes (client to server). */
enum class Op : uint8_t
{
    Extend = 1, ///< run one extendInto on both ends
    Close = 2,  ///< end the session; the engine returns to the pool
};

/** Handshake outcome (server to client). */
enum class Status : uint8_t
{
    Ok = 0,
    BadMagic = 1,
    BadVersion = 2,
    BadParams = 3,
    /** Params are well-formed but not on the server's allowlist. */
    ParamsNotAllowed = 4,
    /** This client address exhausted its session quota. */
    SessionQuota = 5,
    /** This client address exhausted its served-bytes quota. */
    ByteQuota = 6,
};

const char *statusName(Status s);

/** FerretParams as explicit wire fields (name is derived, not sent). */
struct WireParams
{
    uint64_t n = 0;
    uint64_t k = 0;
    uint64_t t = 0;
    uint64_t lpnSeed = 0;
    uint32_t arity = 0;
    uint32_t lpnWeight = 0;
    uint8_t prg = 0; ///< crypto::PrgKind

    static WireParams of(const ot::FerretParams &p);
    ot::FerretParams toFerretParams() const;
};

/**
 * Structural sanity of untrusted wire params: bounded sizes,
 * self-consistent shape, and at least one usable COT per extension —
 * everything a hostile hello could use to abort or mis-size the
 * server. Shared by the COT-service handshake and the inference
 * handshake (infer/wire.h).
 */
bool wireParamsValid(const WireParams &w);

/** Client's opening message. */
struct Hello
{
    uint16_t version = kWireVersion;
    Role role = Role::Receiver;
    uint64_t setupSeed = 0;
    WireParams params;
};

/** Server's reply. */
struct Accept
{
    Status status = Status::Ok;
    uint64_t sessionId = 0;
};

void sendHello(net::Channel &ch, const Hello &h);

/**
 * Parse the peer's Hello. Returns Status::Ok and fills @p out, or the
 * rejection status (magic/version mismatch) with @p out untouched
 * beyond the offending fields.
 */
Status recvHello(net::Channel &ch, Hello *out);

void sendAccept(net::Channel &ch, const Accept &a);
Accept recvAccept(net::Channel &ch);

void sendOp(net::Channel &ch, Op op);
Op recvOp(net::Channel &ch);

// ---------------------------------------------------------------------------
// Session determinism helpers (shared by server, client, and tests)
// ---------------------------------------------------------------------------

/** RNG seed of the party playing the OT sender in a session. */
uint64_t senderRngSeed(uint64_t setup_seed);

/** RNG seed of the party playing the OT receiver. */
uint64_t receiverRngSeed(uint64_t setup_seed);

/**
 * The trusted-dealer substitute for per-session base-OT setup: both
 * ends replay the dealer tape seeded by @p setup_seed and keep their
 * own halves. @p delta_out receives the session offset.
 */
void dealSessionBase(const ot::FerretParams &p, uint64_t setup_seed,
                     ot::CotSenderBatch *sender_half,
                     ot::CotReceiverBatch *receiver_half,
                     Block *delta_out);

} // namespace ironman::svc

#endif // IRONMAN_SVC_WIRE_H
