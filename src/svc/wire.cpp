#include "svc/wire.h"

#include "common/rng.h"
#include "net/codec.h"
#include "ot/base_cot.h"

namespace ironman::svc {

using net::getU16;
using net::getU32;
using net::getU64;
using net::putU16;
using net::putU32;
using net::putU64;

namespace {

// magic(4) version(2) role(1) prg(1) seed(8) n(8) k(8) t(8)
// lpnSeed(8) arity(4) lpnWeight(4)
constexpr size_t kHelloBytes = 4 + 2 + 1 + 1 + 8 + 4 * 8 + 2 * 4;
// status(1) pad(7) sessionId(8)
constexpr size_t kAcceptBytes = 1 + 7 + 8;

} // namespace

const char *
roleName(Role r)
{
    return r == Role::Sender ? "sender" : "receiver";
}

const char *
statusName(Status s)
{
    switch (s) {
      case Status::Ok: return "ok";
      case Status::BadMagic: return "bad magic";
      case Status::BadVersion: return "bad version";
      case Status::BadParams: return "bad params";
      case Status::ParamsNotAllowed: return "params not allowed";
      case Status::SessionQuota: return "session quota exceeded";
      case Status::ByteQuota: return "byte quota exceeded";
    }
    return "?";
}

bool
wireParamsValid(const WireParams &w)
{
    // Untrusted input: beyond shape sanity, bound the sizes (a rogue
    // n would otherwise size multi-TB workspaces or overflow the
    // derived geometry) and require self-consistency so no downstream
    // IRONMAN_CHECK — which aborts, not throws — can fire on a hostile
    // hello. 2^26 comfortably covers every paper set (max 2^24).
    constexpr uint64_t kMaxN = uint64_t(1) << 26;
    if (w.n == 0 || w.n > kMaxN || w.k < 2 || w.k >= w.n || w.t == 0 ||
        w.t > w.n || w.arity < 2 || w.arity > 16 || w.lpnWeight == 0 ||
        w.lpnWeight > 12 ||
        w.prg > uint8_t(crypto::PrgKind::ChaCha20))
        return false;
    const ot::FerretParams p = w.toFerretParams();
    // One extension must hand out at least one COT after re-reserving
    // its own bootstrap material.
    return p.reservedCots() < p.n;
}

WireParams
WireParams::of(const ot::FerretParams &p)
{
    WireParams w;
    w.n = p.n;
    w.k = p.k;
    w.t = p.t;
    w.lpnSeed = p.lpnSeed;
    w.arity = p.arity;
    w.lpnWeight = p.lpnWeight;
    w.prg = uint8_t(p.prg);
    return w;
}

ot::FerretParams
WireParams::toFerretParams() const
{
    ot::FerretParams p;
    p.name = "svc-session";
    p.n = size_t(n);
    p.k = size_t(k);
    p.t = size_t(t);
    p.lpnSeed = lpnSeed;
    p.arity = arity;
    p.lpnWeight = lpnWeight;
    p.prg = crypto::PrgKind(prg);
    return p;
}

void
sendHello(net::Channel &ch, const Hello &h)
{
    uint8_t buf[kHelloBytes];
    uint8_t *p = buf;
    putU32(p, kMagic);
    p += 4;
    putU16(p, h.version);
    p += 2;
    *p++ = uint8_t(h.role);
    *p++ = h.params.prg;
    putU64(p, h.setupSeed);
    p += 8;
    putU64(p, h.params.n);
    p += 8;
    putU64(p, h.params.k);
    p += 8;
    putU64(p, h.params.t);
    p += 8;
    putU64(p, h.params.lpnSeed);
    p += 8;
    putU32(p, h.params.arity);
    p += 4;
    putU32(p, h.params.lpnWeight);
    ch.sendBytes(buf, sizeof(buf));
}

Status
recvHello(net::Channel &ch, Hello *out)
{
    uint8_t buf[kHelloBytes];
    ch.recvBytes(buf, sizeof(buf));
    const uint8_t *p = buf;
    if (getU32(p) != kMagic)
        return Status::BadMagic;
    p += 4;
    out->version = getU16(p);
    p += 2;
    if (out->version != kWireVersion)
        return Status::BadVersion;
    out->role = Role(*p++);
    out->params.prg = *p++;
    out->setupSeed = getU64(p);
    p += 8;
    out->params.n = getU64(p);
    p += 8;
    out->params.k = getU64(p);
    p += 8;
    out->params.t = getU64(p);
    p += 8;
    out->params.lpnSeed = getU64(p);
    p += 8;
    out->params.arity = getU32(p);
    p += 4;
    out->params.lpnWeight = getU32(p);

    if (!wireParamsValid(out->params))
        return Status::BadParams;
    return Status::Ok;
}

void
sendAccept(net::Channel &ch, const Accept &a)
{
    uint8_t buf[kAcceptBytes] = {};
    buf[0] = uint8_t(a.status);
    putU64(buf + 8, a.sessionId);
    ch.sendBytes(buf, sizeof(buf));
}

Accept
recvAccept(net::Channel &ch)
{
    uint8_t buf[kAcceptBytes];
    ch.recvBytes(buf, sizeof(buf));
    Accept a;
    a.status = Status(buf[0]);
    a.sessionId = getU64(buf + 8);
    return a;
}

void
sendOp(net::Channel &ch, Op op)
{
    uint8_t b = uint8_t(op);
    ch.sendBytes(&b, 1);
}

Op
recvOp(net::Channel &ch)
{
    uint8_t b = 0;
    ch.recvBytes(&b, 1);
    return Op(b);
}

uint64_t
senderRngSeed(uint64_t setup_seed)
{
    return setup_seed ^ 0x5e17de57c0700001ULL;
}

uint64_t
receiverRngSeed(uint64_t setup_seed)
{
    return setup_seed ^ 0x2ec31f4b99d00002ULL;
}

void
dealSessionBase(const ot::FerretParams &p, uint64_t setup_seed,
                ot::CotSenderBatch *sender_half,
                ot::CotReceiverBatch *receiver_half, Block *delta_out)
{
    Rng dealer(setup_seed * 0x9e3779b97f4a7c15ULL + 0xd0a1ULL);
    Block delta = dealer.nextBlock();
    auto [s, r] = ot::dealBaseCots(dealer, delta, p.reservedCots());
    if (delta_out)
        *delta_out = delta;
    if (sender_half)
        *sender_half = std::move(s);
    if (receiver_half)
        *receiver_half = std::move(r);
}

} // namespace ironman::svc
