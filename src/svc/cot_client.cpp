#include "svc/cot_client.h"

#include <stdexcept>

#include "common/logging.h"

namespace ironman::svc {

CotClient::CotClient(std::unique_ptr<net::SocketChannel> channel,
                     const ot::FerretParams &params, Options opt)
    : ch(std::move(channel)), p(params), opt_(opt),
      rng(opt.role == Role::Sender ? senderRngSeed(opt.setupSeed)
                                   : receiverRngSeed(opt.setupSeed))
{
    Hello h;
    h.role = opt_.role;
    h.setupSeed = opt_.setupSeed;
    h.params = WireParams::of(p);
    sendHello(*ch, h);
    const Accept a = recvAccept(*ch);
    if (a.status != Status::Ok)
        throw net::WireError(
            net::WireFault::Fatal,
            std::string("CotClient: server rejected hello: ") +
                statusName(a.status));
    sid = a.sessionId;

    if (opt_.role == Role::Sender) {
        ot::CotSenderBatch half;
        dealSessionBase(p, opt_.setupSeed, &half, nullptr, &delta_);
        sender = std::make_unique<ot::FerretCotSender>(
            *ch, p, delta_, std::move(half.q));
        sender->setThreads(opt_.threads);
        sender->setPipelined(opt_.pipelined);
    } else {
        ot::CotReceiverBatch half;
        dealSessionBase(p, opt_.setupSeed, nullptr, &half, nullptr);
        receiver = std::make_unique<ot::FerretCotReceiver>(
            *ch, p, std::move(half.choice), std::move(half.t));
        receiver->setThreads(opt_.threads);
        receiver->setPipelined(opt_.pipelined);
    }
}

std::unique_ptr<CotClient>
CotClient::connectTcp(const std::string &host, uint16_t port,
                      const ot::FerretParams &params, Options opt)
{
    return std::make_unique<CotClient>(net::tcpConnect(host, port),
                                       params, opt);
}

std::unique_ptr<CotClient>
CotClient::connectTcpRetry(const std::string &host, uint16_t port,
                           const ot::FerretParams &params, Options opt,
                           const RetryPolicy &retry,
                           const RetryEventHook &hook)
{
    const unsigned attempts = retry.maxAttempts > 0 ? retry.maxAttempts
                                                    : 1u;
    for (unsigned attempt = 1;; ++attempt) {
        try {
            retry.sleepBefore(attempt);
            return connectTcp(host, port, params, opt);
        } catch (const net::WireError &e) {
            if (!e.retryable() || attempt >= attempts)
                throw;
            if (hook)
                hook(attempt, retry.backoffMs(attempt + 1), e.what());
        }
    }
}

std::unique_ptr<CotClient>
CotClient::connectUnix(const std::string &path,
                       const ot::FerretParams &params, Options opt)
{
    return std::make_unique<CotClient>(net::unixConnect(path), params,
                                       opt);
}

CotClient::~CotClient()
{
    try {
        close();
    } catch (...) {
        // Destructor teardown with a dead peer: nothing to do.
    }
}

void
CotClient::extendRecv(BitVec &choice, Block *t)
{
    IRONMAN_CHECK(receiver && !closed,
                  "extendRecv needs an open receiver-role session");
    sendOp(*ch, Op::Extend);
    receiver->extendInto(rng, choice, t);
    // extendInto may end on a send (the pipelined prefetch); the
    // server blocks on those bytes before its next opcode read.
    ch->flush();
    ++extensions;
}

void
CotClient::extendSend(Block *q)
{
    IRONMAN_CHECK(sender && !closed,
                  "extendSend needs an open sender-role session");
    sendOp(*ch, Op::Extend);
    sender->extendInto(rng, q);
    ch->flush();
    ++extensions;
}

const Block &
CotClient::delta() const
{
    IRONMAN_CHECK(sender, "delta() is sender-role only");
    return delta_;
}

void
CotClient::close()
{
    if (closed || !ch)
        return;
    closed = true;
    sendOp(*ch, Op::Close);
    ch->flush();
}

} // namespace ironman::svc
