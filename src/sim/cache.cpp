#include "sim/cache.h"

#include <bit>

#include "common/logging.h"

namespace ironman::sim {

CacheSim::CacheSim(const CacheConfig &config) : cfg(config)
{
    IRONMAN_CHECK(cfg.sizeBytes % (cfg.lineBytes * cfg.ways) == 0,
                  "size must be a whole number of sets");
    IRONMAN_CHECK(std::has_single_bit(cfg.sets()),
                  "set count must be a power of two");
    lines.assign(cfg.sets() * cfg.ways, Line{});
}

void
CacheSim::reset()
{
    lines.assign(lines.size(), Line{});
    stats_ = CacheStats{};
    tick = 0;
}

bool
CacheSim::access(uint64_t addr)
{
    ++tick;
    uint64_t line_addr = addr / cfg.lineBytes;
    uint64_t set = line_addr & (cfg.sets() - 1);
    uint64_t tag = line_addr >> std::countr_zero(cfg.sets());

    Line *set_base = &lines[set * cfg.ways];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Line &l = set_base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = tick;
            ++stats_.hits;
            return true;
        }
    }

    // Miss: choose an invalid way first, else true LRU.
    Line *victim = set_base;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Line &l = set_base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lastUse < victim->lastUse)
            victim = &l;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick;
    ++stats_.misses;
    return false;
}

unsigned
CacheSim::accessLatencyCycles(uint64_t size_bytes)
{
    unsigned lat = 1;
    uint64_t size = 32 * 1024;
    while (size < size_bytes) {
        size *= 2;
        ++lat;
    }
    return lat;
}

} // namespace ironman::sim
