/**
 * @file
 * Set-associative LRU cache model — the memory-side cache each
 * Rank-NMP module places in front of its LPN error-vector accesses
 * (Sec. 5.3 / Fig. 14).
 *
 * The model is a pure hit/miss filter: it classifies an address
 * stream and emits the miss stream (which the DRAM model then prices).
 * Read-only traffic (the LPN input vector never changes during an
 * encode), so there is no dirty-writeback path.
 */

#ifndef IRONMAN_SIM_CACHE_H
#define IRONMAN_SIM_CACHE_H

#include <cstdint>
#include <vector>

namespace ironman::sim {

/** Cache shape. */
struct CacheConfig
{
    uint64_t sizeBytes = 256 * 1024;
    unsigned lineBytes = 64;  ///< matches the DRAM burst (Sec. 6.3)
    unsigned ways = 8;

    uint64_t sets() const { return sizeBytes / (lineBytes * ways); }
};

/** Hit/miss statistics. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;

    uint64_t accesses() const { return hits + misses; }
    double
    hitRate() const
    {
        return accesses() ? double(hits) / double(accesses()) : 0.0;
    }
};

/** LRU set-associative cache simulator. */
class CacheSim
{
  public:
    explicit CacheSim(const CacheConfig &config);

    /** Access one byte address; returns true on hit. */
    bool access(uint64_t addr);

    /** Reset contents and statistics. */
    void reset();

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return cfg; }

    /**
     * Model of the SRAM access latency in DIMM-logic cycles: larger
     * arrays pay longer wordlines/bitlines. Anchored so 32 KB costs 1
     * cycle and each 4x capacity adds a cycle (CACTI-flavoured; this
     * is what turns the Fig. 14(a) latency curve back up past 256 KB).
     */
    static unsigned accessLatencyCycles(uint64_t size_bytes);

  private:
    CacheConfig cfg;
    CacheStats stats_;

    struct Line
    {
        uint64_t tag = ~0ull;
        uint64_t lastUse = 0;
        bool valid = false;
    };
    std::vector<Line> lines; ///< sets * ways, way-major within a set
    uint64_t tick = 0;
};

} // namespace ironman::sim

#endif // IRONMAN_SIM_CACHE_H
