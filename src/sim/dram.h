/**
 * @file
 * Cycle-level DDR4 rank timing model.
 *
 * This is the repository's substitute for Ramulator (see DESIGN.md):
 * a bank-state-machine simulator with an FR-FCFS scheduler that
 * replays a request trace against the DDR4-2400 timing parameters of
 * Table 3 and reports cycles, row-buffer behaviour and command counts
 * (the command counts also drive the DRAM energy model).
 *
 * Scope: one rank at a time. Ironman's Rank-NMP modules operate on
 * their local rank with rank-level parallelism, so whole-system LPN
 * time is the max over per-rank simulations (Sec. 5.1); the shared
 * channel is modelled by a configurable per-access bus tax.
 */

#ifndef IRONMAN_SIM_DRAM_H
#define IRONMAN_SIM_DRAM_H

#include <cstdint>
#include <vector>

namespace ironman::sim {

/** DDR4 timing parameters, in memory-clock cycles (Table 3). */
struct DramTimings
{
    unsigned tRCD = 16;   ///< ACT -> column command
    unsigned tCL = 16;    ///< RD -> data
    unsigned tRP = 16;    ///< PRE -> ACT
    unsigned tRC = 55;    ///< ACT -> ACT, same bank
    unsigned tRRD_S = 4;  ///< ACT -> ACT, different bank group
    unsigned tRRD_L = 6;  ///< ACT -> ACT, same bank group
    unsigned tFAW = 26;   ///< four-ACT window per rank
    unsigned tCCD_S = 4;  ///< col -> col, different bank group
    unsigned tCCD_L = 6;  ///< col -> col, same bank group
    unsigned tBL = 4;     ///< burst length on the data bus (BL8)

    /// All-bank refresh cadence/penalty (DDR4 8Gb: 7.8us / 350ns).
    unsigned tREFI = 9360;
    unsigned tRFC = 420;

    /** DDR4-2400: 1200 MHz memory clock. */
    double clockHz = 1200e6;
};

/** Geometry of one rank. */
struct DramGeometry
{
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rowBytes = 8192;      ///< row-buffer size
    unsigned lineBytes = 64;       ///< one BL8 access moves 64 B

    unsigned banks() const { return bankGroups * banksPerGroup; }
    unsigned linesPerRow() const { return rowBytes / lineBytes; }
};

/** One request: a 64-byte line read or write at a byte address. */
struct DramRequest
{
    uint64_t addr = 0;   ///< byte address within the rank
    bool write = false;
};

/** Aggregate results of replaying a trace. */
struct DramStats
{
    uint64_t cycles = 0;       ///< completion time of the last request
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t activates = 0;
    uint64_t precharges = 0;
    uint64_t refreshes = 0;
    uint64_t rowHits = 0;      ///< column commands that hit an open row
    uint64_t rowMisses = 0;

    double rowHitRate() const
    {
        uint64_t total = rowHits + rowMisses;
        return total ? double(rowHits) / double(total) : 0.0;
    }

    /** Seconds at the configured clock. */
    double seconds(const DramTimings &t) const
    {
        return double(cycles) / t.clockHz;
    }

    /** Effective data bandwidth in bytes/second. */
    double
    bandwidthBytesPerSec(const DramTimings &t,
                         const DramGeometry &g) const
    {
        double secs = seconds(t);
        return secs > 0 ?
            double(reads + writes) * g.lineBytes / secs : 0.0;
    }
};

/**
 * FR-FCFS rank simulator.
 *
 * Address mapping (byte address -> line): low bits select the bank
 * group then bank (interleaving consecutive lines across banks for
 * parallelism), remaining bits split column/row.
 */
class DramRankSim
{
  public:
    DramRankSim(const DramTimings &timings, const DramGeometry &geometry,
                unsigned scheduler_window = 16);

    /**
     * Replay @p trace and return stats. The request stream is treated
     * as fully pipelined (the consumer never back-pressures), so the
     * result is the memory-limited completion time.
     */
    DramStats replay(const std::vector<DramRequest> &trace);

    const DramTimings &timings() const { return t; }
    const DramGeometry &geometry() const { return g; }

  private:
    struct Bank
    {
        bool open = false;
        uint64_t row = 0;
        uint64_t readyAct = 0;  ///< earliest cycle for ACT
        uint64_t readyCol = 0;  ///< earliest cycle for RD/WR
        uint64_t readyPre = 0;  ///< earliest cycle for PRE
    };

    struct Decoded
    {
        unsigned bank;
        unsigned bankGroup;
        uint64_t row;
    };

    Decoded decode(uint64_t addr) const;

    DramTimings t;
    DramGeometry g;
    unsigned window;
};

} // namespace ironman::sim

#endif // IRONMAN_SIM_DRAM_H
