#include "sim/pipeline.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace ironman::sim {

const char *
expandStrategyName(ExpandStrategy s)
{
    switch (s) {
      case ExpandStrategy::DepthFirst: return "depth-first";
      case ExpandStrategy::BreadthFirst: return "breadth-first";
      case ExpandStrategy::Hybrid: return "hybrid";
    }
    return "?";
}

namespace {

/** One internal node of the (shared) tree shape. */
struct ShapeNode
{
    unsigned level;
    int parent;            ///< index into the order list; -1 for root
    unsigned ops;          ///< pipeline issues to expand this node
    bool childrenInternal; ///< children need further expansion?
    unsigned arity;
};

/** Internal nodes of one tree, in DFS preorder. */
std::vector<ShapeNode>
dfsShape(const std::vector<unsigned> &arities, unsigned ops_override)
{
    std::vector<ShapeNode> order;
    struct Frame
    {
        unsigned level;
        int self;
        unsigned next_child;
    };

    auto ops_of = [&](unsigned m) {
        return ops_override ? ops_override : (m + 3) / 4;
    };

    const unsigned levels = arities.size();
    std::vector<Frame> stack;
    order.push_back({0, -1, ops_of(arities[0]), levels > 1, arities[0]});
    stack.push_back({0, 0, 0});
    while (!stack.empty()) {
        Frame &f = stack.back();
        if (f.level + 1 >= levels || f.next_child >= arities[f.level]) {
            stack.pop_back();
            continue;
        }
        ++f.next_child;
        unsigned lvl = f.level + 1;
        order.push_back({lvl, f.self, ops_of(arities[lvl]),
                         lvl + 1 < levels, arities[lvl]});
        stack.push_back({lvl, int(order.size()) - 1, 0});
    }
    return order;
}

/** Same nodes in breadth-first (level) order. */
std::vector<ShapeNode>
bfsShape(const std::vector<unsigned> &arities, unsigned ops_override)
{
    auto ops_of = [&](unsigned m) {
        return ops_override ? ops_override : (m + 3) / 4;
    };
    const unsigned levels = arities.size();
    std::vector<ShapeNode> order;
    // Level l holds prod(arities[0..l)) nodes; parents are contiguous
    // in the previous level span.
    order.push_back({0, -1, ops_of(arities[0]), levels > 1, arities[0]});
    size_t prev_begin = 0, prev_count = 1;
    for (unsigned lvl = 1; lvl < levels; ++lvl) {
        size_t begin = order.size();
        for (size_t par = 0; par < prev_count; ++par)
            for (unsigned c = 0; c < arities[lvl - 1]; ++c)
                order.push_back({lvl, int(prev_begin + par),
                                 ops_of(arities[lvl]),
                                 lvl + 1 < levels, arities[lvl]});
        prev_begin = begin;
        prev_count = order.size() - begin;
    }
    return order;
}

/** Tracks live node values to report peak buffer occupancy. */
class BufferTracker
{
  public:
    /**
     * Register a node completion at @p time: its children appear
     * (internal ones stay buffered), its own input value retires.
     */
    void
    onComplete(uint64_t time, int64_t delta)
    {
        events.push({time, delta});
    }

    /** Advance to @p time and fold in every due event. */
    void
    advance(uint64_t time)
    {
        while (!events.empty() && events.top().time <= time) {
            live += events.top().delta;
            events.pop();
            peak_ = std::max(peak_, live);
        }
        peak_ = std::max(peak_, live);
    }

    uint64_t peak() const { return uint64_t(std::max<int64_t>(peak_, 0)); }

  private:
    struct Event
    {
        uint64_t time;
        int64_t delta;
        bool operator>(const Event &o) const { return time > o.time; }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
    int64_t live = 1; // the root seed
    int64_t peak_ = 1;
};

/** Sequential (one tree after another) strict-order scheduler. */
ExpandSchedule
scheduleSequential(const std::vector<ShapeNode> &order, uint64_t num_trees,
                   unsigned stages)
{
    ExpandSchedule result;
    BufferTracker buffer;
    std::vector<uint64_t> done(order.size());

    uint64_t next_slot = 0;
    for (uint64_t tree = 0; tree < num_trees; ++tree) {
        for (size_t i = 0; i < order.size(); ++i) {
            const ShapeNode &node = order[i];
            uint64_t ready = node.parent < 0 ? 0 : done[node.parent];
            uint64_t issue = std::max(next_slot, ready);
            result.bubbles += issue - next_slot;
            buffer.advance(issue);

            uint64_t completion = issue + node.ops - 1 + stages;
            done[i] = completion;
            next_slot = issue + node.ops;
            result.ops += node.ops;

            // children appear (+internal ones), own value retires (-1).
            int64_t delta =
                (node.childrenInternal ? int64_t(node.arity) : 0) - 1;
            buffer.onComplete(completion, delta);
            result.cycles = std::max(result.cycles, completion);
        }
    }
    buffer.advance(result.cycles);
    result.peakBuffer = buffer.peak();
    return result;
}

/** Hybrid: per-tree DFS cursors, bubbles filled across trees. */
ExpandSchedule
scheduleHybrid(const std::vector<ShapeNode> &order, uint64_t num_trees,
               unsigned stages)
{
    ExpandSchedule result;
    BufferTracker buffer;

    // done[] per tree, lazily allocated per active tree; trees beyond
    // the active window start only when a cursor finishes (bounding
    // memory). Window of `stages` trees is enough to fill the pipe.
    const uint64_t max_active = std::min<uint64_t>(
        num_trees, std::max<uint64_t>(stages * 2, 2));

    struct TreeState
    {
        size_t cursor = 0;
        std::vector<uint64_t> done;
    };

    std::vector<TreeState> states(max_active);
    for (auto &s : states)
        s.done.resize(order.size());

    uint64_t next_fresh = 0; // next tree id to start
    // (ready_time, state slot) of each in-flight tree's cursor node.
    using Entry = std::pair<uint64_t, size_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> waiting;

    auto start_tree = [&](size_t slot_idx) {
        states[slot_idx].cursor = 0;
        waiting.push({0, slot_idx});
        ++next_fresh;
    };
    for (size_t s = 0; s < max_active && next_fresh < num_trees + 0; ++s) {
        if (next_fresh >= num_trees)
            break;
        start_tree(s);
    }

    uint64_t next_slot = 0;
    uint64_t trees_finished = 0;
    while (!waiting.empty()) {
        auto [ready, slot_idx] = waiting.top();
        waiting.pop();

        uint64_t issue = std::max(next_slot, ready);
        result.bubbles += issue - next_slot;
        buffer.advance(issue);

        TreeState &st = states[slot_idx];
        const ShapeNode &node = order[st.cursor];
        uint64_t completion = issue + node.ops - 1 + stages;
        st.done[st.cursor] = completion;
        next_slot = issue + node.ops;
        result.ops += node.ops;
        result.cycles = std::max(result.cycles, completion);

        int64_t delta =
            (node.childrenInternal ? int64_t(node.arity) : 0) - 1;
        buffer.onComplete(completion, delta);

        ++st.cursor;
        if (st.cursor < order.size()) {
            const ShapeNode &next_node = order[st.cursor];
            uint64_t next_ready =
                next_node.parent < 0 ? 0 : st.done[next_node.parent];
            waiting.push({next_ready, slot_idx});
        } else {
            ++trees_finished;
            if (next_fresh < num_trees) {
                states[slot_idx].cursor = 0;
                waiting.push({0, slot_idx});
                ++next_fresh;
            }
        }
    }
    (void)trees_finished;

    buffer.advance(result.cycles);
    result.peakBuffer = buffer.peak();
    return result;
}

} // namespace

ExpandSchedule
scheduleExpansion(const ExpandWorkload &wl, ExpandStrategy strategy,
                  unsigned stages)
{
    IRONMAN_CHECK(!wl.arities.empty() && wl.numTrees >= 1);
    switch (strategy) {
      case ExpandStrategy::DepthFirst:
        return scheduleSequential(
            dfsShape(wl.arities, wl.opsPerNodeOverride), wl.numTrees,
            stages);
      case ExpandStrategy::BreadthFirst:
        return scheduleSequential(
            bfsShape(wl.arities, wl.opsPerNodeOverride), wl.numTrees,
            stages);
      case ExpandStrategy::Hybrid:
        return scheduleHybrid(dfsShape(wl.arities, wl.opsPerNodeOverride),
                              wl.numTrees, stages);
    }
    IRONMAN_PANIC("unknown strategy");
}

ExpandSchedule
scheduleExpansionMultiCore(const ExpandWorkload &wl,
                           ExpandStrategy strategy, unsigned cores,
                           unsigned stages)
{
    IRONMAN_CHECK(cores >= 1);
    uint64_t per_core = (wl.numTrees + cores - 1) / cores;
    ExpandWorkload share = wl;
    share.numTrees = per_core;
    ExpandSchedule sched = scheduleExpansion(share, strategy, stages);

    // The slowest core bounds the makespan; total ops scale with the
    // real tree count.
    ExpandWorkload one = wl;
    one.numTrees = 1;
    ExpandSchedule single = scheduleExpansion(one, strategy, stages);
    sched.ops = single.ops * wl.numTrees;
    return sched;
}

} // namespace ironman::sim
