/**
 * @file
 * Fully-pipelined PRG core schedule model (Sec. 4.3 / Fig. 8).
 *
 * A ChaCha8 core is an 8-stage pipeline: one expansion issues per
 * cycle and its children are available 8 cycles later. Expanding a GGM
 * tree therefore exposes a scheduling problem — a child expansion
 * cannot issue until its parent's expansion drains. Three strategies
 * are modelled:
 *
 *  - DepthFirst: strict DFS issue order, O(m*depth) node buffer, but
 *    every descent stalls for the pipeline depth;
 *  - BreadthFirst: level order, no stalls once a level is wider than
 *    the pipeline, but O(l) node buffer and leaves finish late;
 *  - Hybrid (Ironman): depth-first within a tree with bubbles filled
 *    by other trees of the same SPCOT batch (inter-tree parallelism),
 *    reaching ~100% utilization with bounded buffer.
 *
 * The simulator issues real dependency-respecting schedules and
 * reports cycles, bubbles and peak buffer occupancy; the NMP model
 * converts cycles to seconds at the DIMM logic clock.
 */

#ifndef IRONMAN_SIM_PIPELINE_H
#define IRONMAN_SIM_PIPELINE_H

#include <cstdint>
#include <vector>

namespace ironman::sim {

/** GGM expansion scheduling strategy. */
enum class ExpandStrategy
{
    DepthFirst,
    BreadthFirst,
    Hybrid,
};

const char *expandStrategyName(ExpandStrategy s);

/** Workload: a batch of identical trees. */
struct ExpandWorkload
{
    /// Per-level arities of each tree (e.g. {2,4,4,4,4,4,4}).
    std::vector<unsigned> arities;
    /// Number of trees expanded in the batch (t of the OTE protocol).
    uint64_t numTrees = 1;
    /// Pipeline ops per node expansion (ceil(m/4) for ChaCha, m for a
    /// hypothetical pipelined AES bank); 0 = derive from ChaCha rule.
    unsigned opsPerNodeOverride = 0;
};

/** Result of scheduling one workload on one core. */
struct ExpandSchedule
{
    uint64_t cycles = 0;       ///< makespan
    uint64_t ops = 0;          ///< pipeline issues (PRG invocations)
    uint64_t bubbles = 0;      ///< idle issue slots before the drain
    uint64_t peakBuffer = 0;   ///< max live nodes awaiting expansion/output

    double
    utilization() const
    {
        return cycles ? double(ops) / double(cycles) : 0.0;
    }
};

/**
 * Schedule @p wl on a single pipeline of @p stages stages using
 * strategy @p strategy.
 */
ExpandSchedule scheduleExpansion(const ExpandWorkload &wl,
                                 ExpandStrategy strategy,
                                 unsigned stages = 8);

/**
 * Multi-core convenience: trees are distributed round-robin over
 * @p cores pipelines; returns the slowest core's schedule with ops
 * summed over cores.
 */
ExpandSchedule scheduleExpansionMultiCore(const ExpandWorkload &wl,
                                          ExpandStrategy strategy,
                                          unsigned cores,
                                          unsigned stages = 8);

} // namespace ironman::sim

#endif // IRONMAN_SIM_PIPELINE_H
