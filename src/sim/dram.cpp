#include "sim/dram.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace ironman::sim {

DramRankSim::DramRankSim(const DramTimings &timings,
                         const DramGeometry &geometry,
                         unsigned scheduler_window)
    : t(timings), g(geometry), window(scheduler_window)
{
    IRONMAN_CHECK(window >= 1);
}

DramRankSim::Decoded
DramRankSim::decode(uint64_t addr) const
{
    // Line interleaving: [row | column | bank | bank-group] from MSB to
    // LSB of the line index, i.e. consecutive lines stripe across bank
    // groups first (maximises ACT overlap for streams).
    uint64_t line = addr / g.lineBytes;
    Decoded d;
    d.bankGroup = line % g.bankGroups;
    line /= g.bankGroups;
    unsigned bank_in_group = line % g.banksPerGroup;
    line /= g.banksPerGroup;
    uint64_t column = line % g.linesPerRow();
    (void)column;
    d.row = line / g.linesPerRow();
    d.bank = d.bankGroup * g.banksPerGroup + bank_in_group;
    return d;
}

DramStats
DramRankSim::replay(const std::vector<DramRequest> &trace)
{
    DramStats stats;
    if (trace.empty())
        return stats;

    std::vector<Bank> banks(g.banks());

    // Rank-level constraints.
    std::deque<uint64_t> faw;      // times of the last 4 ACTs
    uint64_t last_act_time = 0;
    unsigned last_act_group = ~0u;
    bool any_act = false;
    uint64_t last_col_time = 0;
    unsigned last_col_group = ~0u;
    bool any_col = false;

    // Sliding scheduler window over the trace.
    struct Pending
    {
        size_t idx;
        Decoded d;
        uint64_t arrival;
    };
    std::deque<Pending> pending;
    size_t next_admit = 0;
    uint64_t admit_clock = 0;
    uint64_t next_refresh = t.tREFI;
    auto admit = [&] {
        while (next_admit < trace.size() && pending.size() < window) {
            pending.push_back({next_admit, decode(trace[next_admit].addr),
                               admit_clock});
            ++next_admit;
        }
    };
    admit();

    uint64_t last_done = 0;

    while (!pending.empty()) {
        // FR-FCFS: first pass, oldest row-hit request; second pass,
        // the oldest request outright.
        size_t pick = 0;
        bool found_hit = false;
        for (size_t i = 0; i < pending.size(); ++i) {
            const Bank &b = banks[pending[i].d.bank];
            if (b.open && b.row == pending[i].d.row) {
                pick = i;
                found_hit = true;
                break;
            }
        }
        if (!found_hit)
            pick = 0;

        Pending req = pending[pick];
        pending.erase(pending.begin() + pick);

        // All-bank refresh: when the command stream crosses a tREFI
        // boundary, every bank closes and stalls for tRFC.
        while (t.tREFI > 0 && last_col_time >= next_refresh) {
            for (Bank &b : banks) {
                b.open = false;
                b.readyAct =
                    std::max<uint64_t>(b.readyAct,
                                       next_refresh + t.tRFC);
            }
            next_refresh += t.tREFI;
            ++stats.refreshes;
        }

        Bank &bank = banks[req.d.bank];

        bool row_hit = bank.open && bank.row == req.d.row;
        if (!row_hit) {
            uint64_t act_ready = std::max(bank.readyAct, req.arrival);
            if (bank.open) {
                uint64_t pre_t = std::max(bank.readyPre, req.arrival);
                ++stats.precharges;
                act_ready = std::max(act_ready, pre_t + t.tRP);
            }
            // ACT-to-ACT spacing across the rank.
            if (any_act) {
                unsigned rrd = req.d.bankGroup == last_act_group
                                   ? t.tRRD_L : t.tRRD_S;
                act_ready = std::max(act_ready, last_act_time + rrd);
            }
            if (faw.size() == 4)
                act_ready = std::max(act_ready, faw.front() + t.tFAW);

            uint64_t act_t = act_ready;
            if (faw.size() == 4)
                faw.pop_front();
            faw.push_back(act_t);
            last_act_time = act_t;
            last_act_group = req.d.bankGroup;
            any_act = true;
            ++stats.activates;

            bank.open = true;
            bank.row = req.d.row;
            bank.readyCol = act_t + t.tRCD;
            bank.readyPre = act_t + (t.tRC - t.tRP); // tRAS
            bank.readyAct = act_t + t.tRC;
            ++stats.rowMisses;
        } else {
            ++stats.rowHits;
        }

        // Column command.
        uint64_t col_ready = std::max(bank.readyCol, req.arrival);
        if (any_col) {
            unsigned ccd = req.d.bankGroup == last_col_group
                               ? t.tCCD_L : t.tCCD_S;
            col_ready = std::max(col_ready, last_col_time + ccd);
        }
        uint64_t col_t = col_ready;
        last_col_time = col_t;
        last_col_group = req.d.bankGroup;
        any_col = true;

        uint64_t done = col_t + t.tCL + t.tBL;
        bank.readyPre = std::max(bank.readyPre, col_t + t.tBL);
        last_done = std::max(last_done, done);

        if (trace[req.idx].write)
            ++stats.writes;
        else
            ++stats.reads;

        // Admit replacements as of this command's issue time.
        admit_clock = col_t;
        admit();
    }

    stats.cycles = last_done;
    return stats;
}

} // namespace ironman::sim
