/**
 * @file
 * Comparison-circuit mode of the GMW DReLU and its cost model.
 *
 * Both SecureCompute (the protocol) and MlpModelSpec (reservoir
 * sizing, the estimator) need the per-mode AND-gate and round counts,
 * and the inference handshake ships the mode as a wire flag — so the
 * enum and the closed-form cost helpers live in this tiny header
 * instead of dragging secure_compute.h into model_zoo.h.
 *
 * The trade (DESIGN.md round-complexity table): the Kogge–Stone
 * ladder pays ~4x the AND-gate COTs (offline, reservoir-refillable)
 * to collapse the carry chain from width-1 sequential AND rounds to
 * ceil(log2(width-1)) — the difference between ~33 and ~7 dependent
 * round trips per width-32 ReLU layer group.
 */

#ifndef IRONMAN_PPML_CMP_MODE_H
#define IRONMAN_PPML_CMP_MODE_H

#include <cstdint>

namespace ironman::ppml {

/** How SecureCompute::drelu computes the carry into the sign bit. */
enum class CmpMode : uint8_t
{
    /**
     * Sequential ripple: one batched generate pre-round, then one
     * AND round per bit position. (width-1)+1 rounds, 2(width-1)
     * AND gates per element. The A/B baseline.
     */
    Ripple = 0,
    /**
     * Kogge–Stone carry-prefix ladder: all (generate, propagate)
     * pairs in one batched AND round, then ceil(log2(width-1))
     * combine levels, each ONE batched AND over every position and
     * element. The default.
     */
    Ladder = 1,
};

inline const char *
cmpModeName(CmpMode m)
{
    return m == CmpMode::Ladder ? "ladder" : "ripple";
}

/**
 * AND gates one DReLU element consumes at @p width (each gate is one
 * COT per direction). Ripple: generate + carry AND per position.
 * Ladder: m generates, then per combine level both G' = G ^ (P & G_lo)
 * and P' = P & P_lo for the m-d updated positions — except the last
 * level, which only needs the final carry G_{m-1}.
 */
inline uint64_t
dreluAndGates(unsigned width, CmpMode mode)
{
    const uint64_t m = width - 1; // carry positions below the sign bit
    if (mode == CmpMode::Ripple)
        return 2 * m;
    uint64_t gates = m;
    for (uint64_t d = 1; d < m; d <<= 1)
        gates += (2 * d >= m) ? 1 : 2 * (m - d);
    return gates;
}

/** Sequential AND rounds (batched interactions) one DReLU costs. */
inline unsigned
dreluRounds(unsigned width, CmpMode mode)
{
    const unsigned m = width - 1;
    if (mode == CmpMode::Ripple)
        return 1 + m; // generate pre-round + one carry AND per position
    unsigned levels = 0;
    for (unsigned d = 1; d < m; d <<= 1)
        ++levels;
    return 1 + levels; // generate round + ceil(log2(m)) combine levels
}

/** DReLU + the MUX round: the per-ReLU-layer interaction count. */
inline unsigned
reluRounds(unsigned width, CmpMode mode)
{
    return dreluRounds(width, mode) + 1;
}

} // namespace ironman::ppml

#endif // IRONMAN_PPML_CMP_MODE_H
