#include "ppml/model_zoo.h"

namespace ironman::ppml {

const char *
nonlinearOpName(NonlinearOp op)
{
    switch (op) {
      case NonlinearOp::ReLU: return "ReLU";
      case NonlinearOp::MaxPool: return "MaxPool";
      case NonlinearOp::GELU: return "GELU";
      case NonlinearOp::Softmax: return "Softmax";
      case NonlinearOp::LayerNorm: return "LayerNorm";
    }
    return "?";
}

uint64_t
ModelProfile::totalNonlinearElements() const
{
    uint64_t total = 0;
    for (const OpCount &c : nonlinear)
        total += c.elements;
    return total;
}

ModelProfile
mobileNetV2()
{
    // ReLU6 after every inverted-residual expansion. Count calibrated
    // to the Table 5 latency ordering (MobileNetV2 < SqueezeNet <
    // ResNet18), which implies the evaluated variant's activation
    // volume rather than the full-width 224x224 network.
    return {"MobileNetV2", false,
            {{NonlinearOp::ReLU, 1450000}},
            0.30, 35};
}

ModelProfile
squeezeNet()
{
    return {"SqueezeNet", false,
            {{NonlinearOp::ReLU, 3820000},
             {NonlinearOp::MaxPool, 480000}},
            0.35, 22};
}

ModelProfile
resNet18()
{
    // conv1 (0.80M) + 16 residual convs + shortcut adds.
    return {"ResNet18", false,
            {{NonlinearOp::ReLU, 2310000},
             {NonlinearOp::MaxPool, 600000}},
            1.82, 17};
}

ModelProfile
resNet34()
{
    return {"ResNet34", false,
            {{NonlinearOp::ReLU, 3880000},
             {NonlinearOp::MaxPool, 600000}},
            3.67, 33};
}

ModelProfile
resNet50()
{
    return {"ResNet50", false,
            {{NonlinearOp::ReLU, 9610000},
             {NonlinearOp::MaxPool, 600000}},
            4.10, 49};
}

ModelProfile
denseNet121()
{
    // Dense connectivity: many activations relative to MACs.
    return {"DenseNet121", false,
            {{NonlinearOp::ReLU, 15200000},
             {NonlinearOp::MaxPool, 700000}},
            2.87, 120};
}

ModelProfile
vitBase()
{
    // 197 tokens, 12 layers, d = 768, 12 heads, MLP 3072.
    return {"ViT", true,
            {{NonlinearOp::GELU, 12ull * 197 * 3072},     // 7.26M
             {NonlinearOp::Softmax, 12ull * 12 * 197 * 197}, // 5.59M
             {NonlinearOp::LayerNorm, 25ull * 197 * 768}},   // 3.78M
            17.6, 50};
}

ModelProfile
bertBase()
{
    // 128 tokens, 12 layers, d = 768.
    return {"BERT-Base", true,
            {{NonlinearOp::GELU, 12ull * 128 * 3072},        // 4.72M
             {NonlinearOp::Softmax, 12ull * 12 * 128 * 128}, // 2.36M
             {NonlinearOp::LayerNorm, 25ull * 128 * 768}},   // 2.46M
            11.2, 50};
}

ModelProfile
bertLarge()
{
    // 128 tokens, 24 layers, d = 1024, 16 heads, MLP 4096.
    return {"BERT-Large", true,
            {{NonlinearOp::GELU, 24ull * 128 * 4096},        // 12.6M
             {NonlinearOp::Softmax, 24ull * 16 * 128 * 128}, // 6.29M
             {NonlinearOp::LayerNorm, 49ull * 128 * 1024}},  // 6.42M
            39.5, 98};
}

ModelProfile
gpt2Large()
{
    // 128 tokens, 36 layers, d = 1280, 20 heads, MLP 5120.
    return {"GPT2-Large", true,
            {{NonlinearOp::GELU, 36ull * 128 * 5120},        // 23.6M
             {NonlinearOp::Softmax, 36ull * 20 * 128 * 128}, // 11.8M
             {NonlinearOp::LayerNorm, 73ull * 128 * 1280}},  // 12.0M
            92.4, 146};
}

std::vector<ModelProfile>
allModels()
{
    return {mobileNetV2(), squeezeNet(), resNet18(),  resNet34(),
            resNet50(),    denseNet121(), vitBase(),  bertBase(),
            bertLarge(),   gpt2Large()};
}

} // namespace ironman::ppml
