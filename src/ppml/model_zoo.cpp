#include "ppml/model_zoo.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "common/rng.h"

namespace ironman::ppml {

const char *
nonlinearOpName(NonlinearOp op)
{
    switch (op) {
      case NonlinearOp::ReLU: return "ReLU";
      case NonlinearOp::MaxPool: return "MaxPool";
      case NonlinearOp::GELU: return "GELU";
      case NonlinearOp::Softmax: return "Softmax";
      case NonlinearOp::LayerNorm: return "LayerNorm";
    }
    return "?";
}

uint64_t
ModelProfile::totalNonlinearElements() const
{
    uint64_t total = 0;
    for (const OpCount &c : nonlinear)
        total += c.elements;
    return total;
}

ModelProfile
mobileNetV2()
{
    // ReLU6 after every inverted-residual expansion. Count calibrated
    // to the Table 5 latency ordering (MobileNetV2 < SqueezeNet <
    // ResNet18), which implies the evaluated variant's activation
    // volume rather than the full-width 224x224 network.
    return {"MobileNetV2", false,
            {{NonlinearOp::ReLU, 1450000}},
            0.30, 35};
}

ModelProfile
squeezeNet()
{
    return {"SqueezeNet", false,
            {{NonlinearOp::ReLU, 3820000},
             {NonlinearOp::MaxPool, 480000}},
            0.35, 22};
}

ModelProfile
resNet18()
{
    // conv1 (0.80M) + 16 residual convs + shortcut adds.
    return {"ResNet18", false,
            {{NonlinearOp::ReLU, 2310000},
             {NonlinearOp::MaxPool, 600000}},
            1.82, 17};
}

ModelProfile
resNet34()
{
    return {"ResNet34", false,
            {{NonlinearOp::ReLU, 3880000},
             {NonlinearOp::MaxPool, 600000}},
            3.67, 33};
}

ModelProfile
resNet50()
{
    return {"ResNet50", false,
            {{NonlinearOp::ReLU, 9610000},
             {NonlinearOp::MaxPool, 600000}},
            4.10, 49};
}

ModelProfile
denseNet121()
{
    // Dense connectivity: many activations relative to MACs.
    return {"DenseNet121", false,
            {{NonlinearOp::ReLU, 15200000},
             {NonlinearOp::MaxPool, 700000}},
            2.87, 120};
}

ModelProfile
vitBase()
{
    // 197 tokens, 12 layers, d = 768, 12 heads, MLP 3072.
    return {"ViT", true,
            {{NonlinearOp::GELU, 12ull * 197 * 3072},     // 7.26M
             {NonlinearOp::Softmax, 12ull * 12 * 197 * 197}, // 5.59M
             {NonlinearOp::LayerNorm, 25ull * 197 * 768}},   // 3.78M
            17.6, 50};
}

ModelProfile
bertBase()
{
    // 128 tokens, 12 layers, d = 768.
    return {"BERT-Base", true,
            {{NonlinearOp::GELU, 12ull * 128 * 3072},        // 4.72M
             {NonlinearOp::Softmax, 12ull * 12 * 128 * 128}, // 2.36M
             {NonlinearOp::LayerNorm, 25ull * 128 * 768}},   // 2.46M
            11.2, 50};
}

ModelProfile
bertLarge()
{
    // 128 tokens, 24 layers, d = 1024, 16 heads, MLP 4096.
    return {"BERT-Large", true,
            {{NonlinearOp::GELU, 24ull * 128 * 4096},        // 12.6M
             {NonlinearOp::Softmax, 24ull * 16 * 128 * 128}, // 6.29M
             {NonlinearOp::LayerNorm, 49ull * 128 * 1024}},  // 6.42M
            39.5, 98};
}

ModelProfile
gpt2Large()
{
    // 128 tokens, 36 layers, d = 1280, 20 heads, MLP 5120.
    return {"GPT2-Large", true,
            {{NonlinearOp::GELU, 36ull * 128 * 5120},        // 23.6M
             {NonlinearOp::Softmax, 36ull * 20 * 128 * 128}, // 11.8M
             {NonlinearOp::LayerNorm, 73ull * 128 * 1280}},  // 12.0M
            92.4, 146};
}

std::vector<ModelProfile>
allModels()
{
    return {mobileNetV2(), squeezeNet(), resNet18(),  resNet34(),
            resNet50(),    denseNet121(), vitBase(),  bertBase(),
            bertLarge(),   gpt2Large()};
}

// ---------------------------------------------------------------------------
// Runnable inference zoo
// ---------------------------------------------------------------------------

uint64_t
MlpModelSpec::reluElements() const
{
    uint64_t total = 0;
    for (size_t i = 1; i + 1 < dims.size(); ++i)
        total += dims[i];
    return total;
}

uint64_t
MlpModelSpec::cotsPerImage(unsigned width, CmpMode mode) const
{
    // DReLU: dreluAndGates(width, mode) AND gates per element — 2 per
    // bit position for the ripple, ~w log2(w) for the Kogge-Stone
    // ladder (more offline COTs bought back as ~4-9x fewer online
    // rounds) — at 1 COT per direction each; MUX: 1 COT per direction.
    return reluElements() * (dreluAndGates(width, mode) + 1);
}

namespace {

/**
 * minWidth: smallest width whose signed range holds the worst-case
 * magnitude 2^(fracBits+1) * prod(input dims) plus truncation slack.
 * maxWidth: largest width whose dense accumulators stay inside int64
 * (|share| < 2^(width-1), |w| <= 2^fracBits, summed over max input
 * dim).
 */
MlpModelSpec
makeSpec(uint32_t id, const char *name, std::vector<unsigned> dims,
         int frac_bits, uint64_t weight_seed)
{
    MlpModelSpec s;
    s.id = id;
    s.name = name;
    s.dims = std::move(dims);
    s.fracBits = frac_bits;
    s.weightSeed = weight_seed;

    double magnitude = double(uint64_t(2) << frac_bits); // 2.0 fixed pt
    unsigned max_dim = 1;
    for (size_t l = 0; l + 1 < s.dims.size(); ++l) {
        magnitude *= double(s.dims[l]);
        max_dim = std::max(max_dim, s.dims[l]);
    }
    unsigned bits = 1;
    while ((double)(uint64_t(1) << bits) < magnitude && bits < 60)
        ++bits;
    s.minWidth = bits + 3; // sign bit + truncation-error slack
    unsigned log_dim = std::bit_width(max_dim);
    s.maxWidth = std::min(48u, 62u - unsigned(frac_bits) - log_dim);
    IRONMAN_CHECK(s.minWidth <= s.maxWidth, "degenerate model spec");
    return s;
}

} // namespace

const std::vector<MlpModelSpec> &
inferenceZoo()
{
    static const std::vector<MlpModelSpec> zoo = {
        makeSpec(1, "mlp-16x8x4", {16, 8, 4}, 8, 0xA1),
        makeSpec(2, "mlp-12x6x3", {12, 6, 3}, 3, 0xA2),
        makeSpec(3, "mlp-32x16x10", {32, 16, 10}, 8, 0xA3),
        makeSpec(4, "mlp-16x16x16x8", {16, 16, 16, 8}, 6, 0xA4),
        // Integer-only toy (fracBits 0 => truncation bound 0, exact
        // everywhere): the one zoo entry whose overflow range reaches
        // down to width 8, used to measure packed-wire gains at the
        // narrow end (EXPERIMENTS.md PR 6).
        makeSpec(5, "mlp-4x3x2", {4, 3, 2}, 0, 0xA5),
    };
    return zoo;
}

const MlpModelSpec *
findMlpModel(uint32_t id)
{
    for (const MlpModelSpec &s : inferenceZoo())
        if (s.id == id)
            return &s;
    return nullptr;
}

const MlpModelSpec *
findMlpModel(const std::string &name)
{
    for (const MlpModelSpec &s : inferenceZoo())
        if (s.name == name)
            return &s;
    return nullptr;
}

std::vector<int64_t>
mlpLayerWeights(const MlpModelSpec &spec, size_t layer)
{
    IRONMAN_CHECK(layer + 1 < spec.dims.size(), "layer out of range");
    const size_t rows = spec.dims[layer + 1];
    const size_t cols = spec.dims[layer];
    const uint64_t half = uint64_t(1) << spec.fracBits; // 1.0 fixed pt
    Rng rng(spec.weightSeed * 0x9e3779b97f4a7c15ULL + layer);
    std::vector<int64_t> w(rows * cols);
    for (auto &v : w)
        v = int64_t(rng.nextBelow(2 * half)) - int64_t(half);
    return w;
}

std::vector<int64_t>
mlpPlainForward(const MlpModelSpec &spec, const std::vector<int64_t> &x)
{
    IRONMAN_CHECK(!x.empty() && x.size() % spec.inputDim() == 0,
                  "input is batch * inputDim values");
    const size_t batch = x.size() / spec.inputDim();
    std::vector<int64_t> cur = x;
    std::vector<int64_t> next;
    for (size_t l = 0; l + 1 < spec.dims.size(); ++l) {
        const size_t rows = spec.dims[l + 1], cols = spec.dims[l];
        const bool relu = l + 2 < spec.dims.size();
        const std::vector<int64_t> w = mlpLayerWeights(spec, l);
        next.assign(batch * rows, 0);
        for (size_t b = 0; b < batch; ++b)
            for (size_t r = 0; r < rows; ++r) {
                int64_t acc = 0;
                for (size_t c = 0; c < cols; ++c)
                    acc += w[r * cols + c] * cur[b * cols + c];
                acc >>= spec.fracBits;
                next[b * rows + r] = relu ? std::max<int64_t>(acc, 0)
                                          : acc;
            }
        std::swap(cur, next);
    }
    return cur;
}

std::vector<int64_t>
sampleMlpInput(const MlpModelSpec &spec, uint64_t seed, size_t batch)
{
    const uint64_t two = uint64_t(2) << spec.fracBits; // 2.0 fixed pt
    Rng rng(seed);
    std::vector<int64_t> x(batch * spec.inputDim());
    for (auto &v : x)
        v = int64_t(rng.nextBelow(2 * two)) - int64_t(two);
    return x;
}

int64_t
mlpTruncationErrorBound(const MlpModelSpec &spec)
{
    if (spec.fracBits == 0)
        return 0;
    int64_t e = 0;
    for (size_t l = 0; l + 1 < spec.dims.size(); ++l)
        e = e * int64_t(spec.dims[l]) + 1;
    return e;
}

} // namespace ironman::ppml
