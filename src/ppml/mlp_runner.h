/**
 * @file
 * The shared MLP layer loop of the private-inference stack.
 *
 * One MlpRunner evaluates a public fixed-point MLP
 * (ppml::MlpModelSpec) on additive secret shares: dense layers are
 * local on shares (the model is public; both parties truncate their
 * own share — the standard local approximation, off by at most
 * mlpTruncationErrorBound() ulps at the output), ReLU layers run
 * through the GMW engine (SecureCompute) and consume COT
 * correlations. The SAME runner instance drives
 *
 *   - the in-process example (examples/private_mlp.cpp),
 *   - the inference service (infer::InferServer / infer::InferClient),
 *   - tests and bench/infer_e2e.cpp,
 *
 * so the served protocol is the in-process protocol by construction —
 * the bit-identity tests compare the two end to end.
 *
 * Determinism note (what makes served-vs-in-process bit-identity
 * possible): the GMW masks are drawn from deterministic per-party
 * tapes and the COT pads cancel inside the chosen-OT unmasking, so
 * every intermediate SHARE is a deterministic function of the input
 * shares and the op sequence — independent of which CotSupply
 * (FerretCotEngine or svc::ReservoirCotSupply) provided the
 * correlations.
 *
 * Per-layer accounting: COTs from the supply counter, online bytes
 * from the channel, protocol rounds analytically (each AND/MUX batch
 * is one interaction) — the per-layer view EXPERIMENTS.md and the
 * bench report.
 */

#ifndef IRONMAN_PPML_MLP_RUNNER_H
#define IRONMAN_PPML_MLP_RUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/channel.h"
#include "ot/ferret_params.h"
#include "ppml/model_zoo.h"
#include "ppml/secure_compute.h"

namespace ironman::ppml {

/** One layer's online cost, measured at this party. */
struct MlpLayerStat
{
    std::string label; ///< "dense0", "relu0", ...
    size_t cots = 0;   ///< correlations consumed (both directions)
    uint64_t bytes = 0;  ///< online bytes this party pushed
    unsigned rounds = 0; ///< GMW interaction batches
};

/** Party-symmetric layered MLP evaluation on additive shares. */
class MlpRunner
{
  public:
    /** Builds the public weights from the spec; both parties agree. */
    MlpRunner(const MlpModelSpec &spec, unsigned width);

    /**
     * Forward @p x_shares (batch * inputDim values, masked to width)
     * through every layer, in lockstep with the peer running the same
     * call on its shares. Returns batch * outputDim output shares.
     * @p ch is only read for byte accounting (the GMW traffic runs on
     * SecureCompute's channel — pass the same one).
     */
    std::vector<uint64_t> forward(SecureCompute &sc, net::Channel &ch,
                                  const std::vector<uint64_t> &x_shares);

    const MlpModelSpec &spec() const { return spec_; }
    unsigned width() const { return width_; }

    /** Per-layer costs of the LAST forward() call. */
    const std::vector<MlpLayerStat> &layerStats() const { return stats_; }

    /** COTs one image needs per direction (reservoir sizing). */
    uint64_t
    cotsPerImage(CmpMode mode = CmpMode::Ladder) const
    {
        return spec_.cotsPerImage(width_, mode);
    }

    uint64_t
    maskValue(uint64_t v) const
    {
        return width_ == 64 ? v
                            : (v & ((uint64_t(1) << width_) - 1));
    }

    /** Share value as a signed width-bit integer. */
    int64_t toSigned(uint64_t v) const;

  private:
    std::vector<uint64_t> denseLocal(size_t layer,
                                     const std::vector<uint64_t> &x,
                                     size_t batch) const;

    MlpModelSpec spec_;
    unsigned width_;
    std::vector<std::vector<int64_t>> weights; ///< one per dense layer
    std::vector<MlpLayerStat> stats_;
};

// ---------------------------------------------------------------------------
// Sharing helpers + the in-process reference path
// ---------------------------------------------------------------------------

/**
 * Additively share @p values at @p width from @p rng: x0 uniform,
 * x1 = value - x0. The inference client and the in-process reference
 * share through this one function so equal share seeds give equal
 * share streams (the bit-identity anchor).
 */
void shareMlpValues(Rng &rng, unsigned width,
                    const std::vector<int64_t> &values,
                    std::vector<uint64_t> *x0, std::vector<uint64_t> *x1);

/** Reconstruct signed outputs from the two share vectors. */
std::vector<int64_t> reconstructMlpValues(
    unsigned width, const std::vector<uint64_t> &y0,
    const std::vector<uint64_t> &y1);

/** What one in-process (MemoryDuplex + FerretCotEngine) run produced. */
struct LocalMlpResult
{
    /** Reconstructed outputs, one vector per request. */
    std::vector<std::vector<int64_t>> outputs;
    size_t cotsPerParty = 0; ///< supply correlations one party consumed
    uint64_t onlineBytes = 0; ///< both parties' online sends
    uint64_t extensions = 0;  ///< party-0 engine extensions
};

/**
 * The reference path the served stack must reproduce bit-exactly: two
 * threads over a MemoryDuplex, one persistent FerretCotEngine per
 * party (params/setup_seed as given), one SecureCompute + MlpRunner
 * per party, @p requests evaluated sequentially on one session.
 * Inputs are shared with Rng(share_seed) exactly like
 * infer::InferClient does. The reconstructed outputs are independent
 * of @p mode (DESIGN.md invariant 16), so a default-mode reference is
 * valid for sessions negotiated either way; passing the mode matters
 * only for cost accounting (cotsPerParty, extensions).
 */
LocalMlpResult runLocalMlpInference(
    const MlpModelSpec &spec, unsigned width,
    const std::vector<std::vector<int64_t>> &requests,
    uint64_t share_seed, uint64_t setup_seed,
    const ot::FerretParams &params, CmpMode mode = CmpMode::Ladder);

} // namespace ironman::ppml

#endif // IRONMAN_PPML_MLP_RUNNER_H
