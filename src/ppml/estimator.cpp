#include "ppml/estimator.h"

#include "common/logging.h"

namespace ironman::ppml {

namespace {

/** COTs produced per OTE execution, for round accounting. */
constexpr double kCotsPerExecution = 4.0e6;

LatencyBreakdown
combine(uint64_t total_cots, uint64_t online_bytes, double online_rounds,
        double online_compute_seconds, double linear_seconds,
        double linear_bytes, const FrameworkModel &framework,
        const net::NetworkModel &network, const OtEngine &engine)
{
    LatencyBreakdown b;
    b.totalCots = total_cots;
    b.onlineBytes = online_bytes;

    b.linearSeconds = linear_seconds;
    b.onlineComputeSeconds = online_compute_seconds;
    b.oteComputeSeconds =
        engine.cotsPerSecond > 0 ? total_cots / engine.cotsPerSecond : 0;

    // Preprocessing wire: sub-linear PCG communication, two rounds per
    // execution.
    double preproc_bytes = total_cots * framework.preprocBytesPerCot();
    double preproc_rounds =
        2.0 * (double(total_cots) / kCotsPerExecution + 1);

    b.rounds = online_rounds + preproc_rounds;
    b.commSeconds =
        network.seconds(online_bytes + uint64_t(preproc_bytes) +
                            uint64_t(linear_bytes),
                        b.rounds);

    // Share conversions, truncations, key setup: a few percent slack.
    b.otherSeconds = 0.04 * (b.linearSeconds + b.oteComputeSeconds +
                             b.onlineComputeSeconds + b.commSeconds);
    return b;
}

} // namespace

LatencyBreakdown
estimateInference(const ModelProfile &model,
                  const FrameworkModel &framework,
                  const net::NetworkModel &network, const OtEngine &engine)
{
    IRONMAN_CHECK(framework.supports(model),
                  "%s cannot run %s", framework.name().c_str(),
                  model.name.c_str());

    uint64_t total_cots = 0;
    uint64_t online_bytes = 0;
    double online_compute = 0;
    for (const OpCount &c : model.nonlinear) {
        OpCost cost = framework.cost(c.op);
        total_cots += uint64_t(cost.cotsPerElement * c.elements);
        online_bytes += uint64_t(cost.onlineBytesPerElement * c.elements);
        online_compute += cost.onlineSecondsPerElement * c.elements;
    }

    double online_rounds =
        double(model.protocolLayers) * framework.roundsPerLayer();
    double linear_seconds =
        model.linearGmacs * framework.linearSecondsPerGmac();
    double linear_bytes =
        model.linearGmacs * framework.linearBytesPerGmac();

    return combine(total_cots, online_bytes, online_rounds,
                   online_compute, linear_seconds, linear_bytes,
                   framework, network, engine);
}

LatencyBreakdown
estimateNonlinearOp(NonlinearOp op, uint64_t elements,
                    const FrameworkModel &framework,
                    const net::NetworkModel &network,
                    const OtEngine &engine)
{
    OpCost cost = framework.cost(op);
    uint64_t total_cots = uint64_t(cost.cotsPerElement * elements);
    uint64_t online_bytes =
        uint64_t(cost.onlineBytesPerElement * elements);
    double online_compute = cost.onlineSecondsPerElement * elements;
    return combine(total_cots, online_bytes, framework.roundsPerLayer(),
                   online_compute, 0.0, 0.0, framework, network, engine);
}

} // namespace ironman::ppml
