/**
 * @file
 * Workload descriptions of the models evaluated in Sec. 6.4/6.5:
 * per-model counts of nonlinear elements (the quantities that consume
 * OT correlations) and linear-layer volume (served by HE/GPU in the
 * hybrid frameworks).
 *
 * CNN counts assume 224x224 ImageNet inputs; Transformer counts use
 * sequence length 128 (Bolt's setting) except ViT (197 patch tokens).
 * Counts are derived from the published architectures and rounded;
 * they drive ratios, not bit-exact layer replays.
 */

#ifndef IRONMAN_PPML_MODEL_ZOO_H
#define IRONMAN_PPML_MODEL_ZOO_H

#include <cstdint>
#include <string>
#include <vector>

namespace ironman::ppml {

/** Nonlinear function kinds the frameworks evaluate with OT. */
enum class NonlinearOp
{
    ReLU,
    MaxPool,   ///< per comparison window
    GELU,
    Softmax,   ///< per attention matrix element
    LayerNorm, ///< per normalized element
};

const char *nonlinearOpName(NonlinearOp op);

/** Count of one nonlinear op kind in one model. */
struct OpCount
{
    NonlinearOp op;
    uint64_t elements;
};

/** One evaluated network. */
struct ModelProfile
{
    std::string name;
    bool transformer = false;
    std::vector<OpCount> nonlinear;
    double linearGmacs = 0;   ///< linear-layer multiply-accumulates (1e9)
    unsigned protocolLayers = 0; ///< sequential nonlinear layers (rounds)

    uint64_t totalNonlinearElements() const;
};

ModelProfile mobileNetV2();
ModelProfile squeezeNet();
ModelProfile resNet18();
ModelProfile resNet34();
ModelProfile resNet50();
ModelProfile denseNet121();
ModelProfile vitBase();
ModelProfile bertBase();
ModelProfile bertLarge();
ModelProfile gpt2Large();

/** All models in Table 5 order (CNNs then Transformers). */
std::vector<ModelProfile> allModels();

} // namespace ironman::ppml

#endif // IRONMAN_PPML_MODEL_ZOO_H
