/**
 * @file
 * Workload descriptions of the models evaluated in Sec. 6.4/6.5:
 * per-model counts of nonlinear elements (the quantities that consume
 * OT correlations) and linear-layer volume (served by HE/GPU in the
 * hybrid frameworks).
 *
 * CNN counts assume 224x224 ImageNet inputs; Transformer counts use
 * sequence length 128 (Bolt's setting) except ViT (197 patch tokens).
 * Counts are derived from the published architectures and rounded;
 * they drive ratios, not bit-exact layer replays.
 */

#ifndef IRONMAN_PPML_MODEL_ZOO_H
#define IRONMAN_PPML_MODEL_ZOO_H

#include <cstdint>
#include <string>
#include <vector>

#include "ppml/cmp_mode.h"

namespace ironman::ppml {

/** Nonlinear function kinds the frameworks evaluate with OT. */
enum class NonlinearOp
{
    ReLU,
    MaxPool,   ///< per comparison window
    GELU,
    Softmax,   ///< per attention matrix element
    LayerNorm, ///< per normalized element
};

const char *nonlinearOpName(NonlinearOp op);

/** Count of one nonlinear op kind in one model. */
struct OpCount
{
    NonlinearOp op;
    uint64_t elements;
};

/** One evaluated network. */
struct ModelProfile
{
    std::string name;
    bool transformer = false;
    std::vector<OpCount> nonlinear;
    double linearGmacs = 0;   ///< linear-layer multiply-accumulates (1e9)
    unsigned protocolLayers = 0; ///< sequential nonlinear layers (rounds)

    uint64_t totalNonlinearElements() const;
};

ModelProfile mobileNetV2();
ModelProfile squeezeNet();
ModelProfile resNet18();
ModelProfile resNet34();
ModelProfile resNet50();
ModelProfile denseNet121();
ModelProfile vitBase();
ModelProfile bertBase();
ModelProfile bertLarge();
ModelProfile gpt2Large();

/** All models in Table 5 order (CNNs then Transformers). */
std::vector<ModelProfile> allModels();

// ---------------------------------------------------------------------------
// Runnable inference zoo (src/infer)
// ---------------------------------------------------------------------------

/**
 * A runnable fixed-point MLP the inference service can actually
 * evaluate end-to-end (as opposed to the ModelProfile workload
 * descriptions above, which only count operations). The model is
 * PUBLIC: both parties derive identical weights from @p weightSeed,
 * so linear layers are local on shares and only the ReLU layers
 * consume COT correlations. `id` is the stable wire identifier the
 * inference handshake negotiates (infer/wire.h).
 */
struct MlpModelSpec
{
    uint32_t id = 0;            ///< wire model id (never reused)
    std::string name;
    std::vector<unsigned> dims; ///< dims[0] inputs .. dims.back() outputs
    int fracBits = 8;           ///< fixed-point fraction bits
    unsigned minWidth = 20;     ///< smallest bitwidth with no overflow
    unsigned maxWidth = 48;     ///< largest bitwidth (int64 accumulators)
    uint64_t weightSeed = 1;    ///< deterministic public weights

    unsigned inputDim() const { return dims.front(); }
    unsigned outputDim() const { return dims.back(); }

    /** Dense layers; ReLU follows every one except the last. */
    size_t denseLayers() const { return dims.size() - 1; }

    /** ReLU elements one image evaluates (the OT-consuming quantity). */
    uint64_t reluElements() const;

    /**
     * COT correlations one image consumes per direction at @p width
     * under comparison mode @p mode: each ReLU element costs
     * dreluAndGates(width, mode) AND-gate COTs plus one MUX COT.
     * Drives reservoir stock sizing
     * (svc::Reservoir::Options::sizedFor) — size for the mode the
     * session actually negotiates.
     */
    uint64_t cotsPerImage(unsigned width,
                          CmpMode mode = CmpMode::Ladder) const;

    /** width acceptable for this model (overflow-free both ends). */
    bool widthOk(unsigned width) const
    {
        return width >= minWidth && width <= maxWidth;
    }
};

/** All served models, id-ascending. Stable across processes. */
const std::vector<MlpModelSpec> &inferenceZoo();

/** Lookup by wire id / name; nullptr when unknown. */
const MlpModelSpec *findMlpModel(uint32_t id);
const MlpModelSpec *findMlpModel(const std::string &name);

/**
 * Public weights of dense layer @p layer (dims[layer] ->
 * dims[layer+1]), row-major [out][in], values in [-2^fracBits,
 * 2^fracBits) — i.e. [-1, 1) fixed point. Deterministic in
 * (weightSeed, layer).
 */
std::vector<int64_t> mlpLayerWeights(const MlpModelSpec &spec,
                                     size_t layer);

/**
 * Plaintext reference forward pass of @p batch images (x.size() ==
 * batch * inputDim()), with the same >> fracBits truncation the
 * secure path approximates. Returns batch * outputDim() values.
 */
std::vector<int64_t> mlpPlainForward(const MlpModelSpec &spec,
                                     const std::vector<int64_t> &x);

/**
 * Sample @p batch plausible fixed-point input images (|x| < 2.0) from
 * @p seed — the range minWidth was derived for.
 */
std::vector<int64_t> sampleMlpInput(const MlpModelSpec &spec,
                                    uint64_t seed, size_t batch = 1);

/**
 * Worst-case |secure - plain| output deviation from share-local
 * truncation (one ulp per party per dense layer, amplified by later
 * layers): e_{l+1} = dims[l] * e_l + 1. Exact-integer models
 * (fracBits == 0) have bound 0.
 */
int64_t mlpTruncationErrorBound(const MlpModelSpec &spec);

} // namespace ironman::ppml

#endif // IRONMAN_PPML_MODEL_ZOO_H
