#include "ppml/cot_engine.h"

#include "common/logging.h"
#include "ot/base_cot.h"

namespace ironman::ppml {

FerretCotEngine::FerretCotEngine(net::Channel &channel, int party_id,
                                 const ot::FerretParams &params,
                                 uint64_t setup_seed, int threads)
    : ch(channel), party(party_id), p(params),
      extendRng(setup_seed ^ 0x0e17e4d5u ^ uint64_t(party_id) << 32)
{
    IRONMAN_CHECK(party == 0 || party == 1);

    // Trusted-dealer setup: both parties replay the same tape and keep
    // their own halves. Direction A: party 0 sends; direction B: roles
    // swapped.
    Rng dealer(setup_seed);
    Block delta_a = dealer.nextBlock();
    auto [sa, ra] = ot::dealBaseCots(dealer, delta_a, p.reservedCots());
    Block delta_b = dealer.nextBlock();
    auto [sb, rb] = ot::dealBaseCots(dealer, delta_b, p.reservedCots());

    if (party == 0) {
        sendDelta_ = delta_a;
        sender = std::make_unique<ot::FerretCotSender>(
            ch, p, delta_a, std::move(sa.q));
        receiver = std::make_unique<ot::FerretCotReceiver>(
            ch, p, std::move(rb.choice), std::move(rb.t));
    } else {
        sendDelta_ = delta_b;
        sender = std::make_unique<ot::FerretCotSender>(
            ch, p, delta_b, std::move(sb.q));
        receiver = std::make_unique<ot::FerretCotReceiver>(
            ch, p, std::move(ra.choice), std::move(ra.t));
    }
    sender->setThreads(threads);
    receiver->setThreads(threads);

    // Prime one extension per direction; direction A runs first on
    // both sides so the interleaved sessions line up.
    if (party == 0) {
        refillSend(1);
        refillRecv(1);
    } else {
        refillRecv(1);
        refillSend(1);
    }
}

void
FerretCotEngine::refillSend(size_t need)
{
    if (sendQ.size() - sendPos >= need)
        return;
    sendQ.erase(sendQ.begin(), sendQ.begin() + sendPos);
    sendPos = 0;
    while (sendQ.size() < need) {
        size_t old = sendQ.size();
        sendQ.resize(old + p.usableOts());
        sender->extendInto(extendRng, sendQ.data() + old);
        ++extensions;
    }
}

void
FerretCotEngine::refillRecv(size_t need)
{
    if (recvT.size() - recvPos >= need)
        return;
    recvT.erase(recvT.begin(), recvT.begin() + recvPos);
    bitScratch.assignRange(recvBits, recvPos, recvBits.size() - recvPos);
    std::swap(recvBits, bitScratch);
    recvPos = 0;
    while (recvT.size() < need) {
        size_t old = recvT.size();
        recvT.resize(old + p.usableOts());
        receiver->extendInto(extendRng, choiceScratch,
                             recvT.data() + old);
        recvBits.appendRange(choiceScratch, 0, choiceScratch.size());
        ++extensions;
    }
    IRONMAN_CHECK(recvBits.size() == recvT.size());
}

const Block *
FerretCotEngine::takeSend(size_t n)
{
    refillSend(n);
    const Block *q = sendQ.data() + sendPos;
    sendPos += n;
    taken += n;
    return q;
}

void
FerretCotEngine::takeRecv(size_t n, const BitVec **bits,
                          size_t *bit_offset, const Block **t)
{
    refillRecv(n);
    *bits = &recvBits;
    *bit_offset = recvPos;
    *t = recvT.data() + recvPos;
    recvPos += n;
    taken += n;
}

} // namespace ironman::ppml
