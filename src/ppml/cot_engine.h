/**
 * @file
 * Persistent dual-direction COT engine for the PPML online phase.
 *
 * The paper's system model (Sec. 5.2) keeps one OTE engine alive for
 * the whole inference: both OT directions (the role-switching
 * requirement of the unified architecture) are backed by long-lived
 * Ferret sessions that bootstrap themselves, and every nonlinear
 * layer draws correlations from the buffered output instead of
 * re-running setup. FerretCotEngine is that component in software:
 *
 *   - direction A: party 0 is the OTE sender, party 1 the receiver;
 *   - direction B: roles swapped;
 *
 * both multiplexed over the one protocol channel. Because the two
 * parties consume each direction in lockstep (every GMW batch spends
 * the same count on both sides), refills trigger at the same protocol
 * step on both sides and the interleaved extensions stay aligned.
 *
 * Setup substitutes the trusted dealer for the one-time base-OT
 * phase, exactly like the rest of the repository (DESIGN.md): both
 * parties derive the dealer tape from the shared @p setup_seed and
 * keep only their own halves.
 *
 * Both parties must construct the engine at the same protocol point —
 * the constructor primes one extension per direction interactively.
 */

#ifndef IRONMAN_PPML_COT_ENGINE_H
#define IRONMAN_PPML_COT_ENGINE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/rng.h"
#include "net/channel.h"
#include "ot/ferret.h"
#include "ot/ferret_params.h"
#include "ppml/cot_supply.h"

namespace ironman::ppml {

/** Long-lived, self-refilling dual-direction COT supply. */
class FerretCotEngine : public CotSupply
{
  public:
    /**
     * @param party 0 or 1; both parties pass identical @p params and
     *        @p setup_seed.
     * @param threads Worker-pool width of the underlying OTE engines.
     */
    FerretCotEngine(net::Channel &ch, int party,
                    const ot::FerretParams &params, uint64_t setup_seed,
                    int threads = 1);

    /** Offset of the direction where this party is the OT sender. */
    const Block &sendDelta() const override { return sendDelta_; }

    /**
     * Claim @p n send-direction COT strings. The pointer stays valid
     * until the next takeSend() (a refill may compact the buffer).
     * Runs extensions on the channel when the buffer is short — the
     * peer must be inside its matching takeRecv().
     */
    const Block *takeSend(size_t n) override;

    /**
     * Claim @p n recv-direction correlations: choice bits are
     * (*bits)[*bit_offset ...], strings are (*t)[0..n). Validity as
     * takeSend().
     */
    void takeRecv(size_t n, const BitVec **bits, size_t *bit_offset,
                  const Block **t) override;

    /** Correlations handed out so far (both directions). */
    size_t cotsTaken() const override { return taken; }

    /** Extensions run so far (both directions, including priming). */
    uint64_t extensionsRun() const { return extensions; }

    const ot::FerretParams &params() const { return p; }

  private:
    void refillSend(size_t need);
    void refillRecv(size_t need);

    net::Channel &ch;
    int party;
    ot::FerretParams p;
    Block sendDelta_;

    std::unique_ptr<ot::FerretCotSender> sender;
    std::unique_ptr<ot::FerretCotReceiver> receiver;
    Rng extendRng;

    std::vector<Block> sendQ;
    size_t sendPos = 0;

    BitVec recvBits;
    std::vector<Block> recvT;
    size_t recvPos = 0;
    BitVec bitScratch;   ///< compaction / append staging
    BitVec choiceScratch;

    size_t taken = 0;
    uint64_t extensions = 0;
};

} // namespace ironman::ppml

#endif // IRONMAN_PPML_COT_ENGINE_H
