/**
 * @file
 * The correlation-supply abstraction the PPML online phase consumes.
 *
 * SecureCompute (and any other GMW-style consumer) needs exactly four
 * things from its COT source: the send-direction offset, batches of
 * sender strings, batches of receiver (choice, t) pairs, and an
 * accounting counter. CotSupply names that contract so the source can
 * be either
 *
 *   - ppml::FerretCotEngine — the in-process dual-direction engine
 *     that extends on the protocol channel itself, or
 *   - svc::ReservoirCotSupply — client-side stocks refilled in the
 *     background from COT-service sessions (src/svc), so the online
 *     phase never stalls on extension latency.
 *
 * Contract inherited from FerretCotEngine: pointers returned by
 * takeSend()/takeRecv() stay valid until the NEXT take of the same
 * direction (a refill may compact the underlying buffer), and both
 * parties must consume each direction in lockstep for the halves to
 * line up.
 */

#ifndef IRONMAN_PPML_COT_SUPPLY_H
#define IRONMAN_PPML_COT_SUPPLY_H

#include <cstddef>

#include "common/bitvec.h"
#include "common/block.h"

namespace ironman::ppml {

/** Dual-direction COT source for online protocols. */
class CotSupply
{
  public:
    virtual ~CotSupply() = default;

    /** Offset of the direction where this party is the OT sender. */
    virtual const Block &sendDelta() const = 0;

    /**
     * Claim @p n send-direction strings; valid until the next
     * takeSend().
     */
    virtual const Block *takeSend(size_t n) = 0;

    /**
     * Claim @p n recv-direction correlations: choice bits are
     * (*bits)[*bit_offset ...], strings are (*t)[0..n). Valid until
     * the next takeRecv().
     */
    virtual void takeRecv(size_t n, const BitVec **bits,
                          size_t *bit_offset, const Block **t) = 0;

    /** Correlations handed out so far (both directions). */
    virtual size_t cotsTaken() const = 0;
};

} // namespace ironman::ppml

#endif // IRONMAN_PPML_COT_SUPPLY_H
