/**
 * @file
 * End-to-end private-inference latency estimator (Table 5, Fig. 1(a),
 * Fig. 15): combines the model zoo's op counts, a framework cost
 * model, a network setting and an OT engine (the measured CPU
 * software stack or the simulated Ironman accelerator) into the
 * latency decomposition the paper reports.
 */

#ifndef IRONMAN_PPML_ESTIMATOR_H
#define IRONMAN_PPML_ESTIMATOR_H

#include <cstdint>

#include "net/channel.h"
#include "ppml/framework.h"
#include "ppml/model_zoo.h"

namespace ironman::ppml {

/** Where the COT correlations come from. */
struct OtEngine
{
    const char *name;
    double cotsPerSecond;

    static OtEngine
    cpu(double cots_per_second)
    {
        return {"CPU", cots_per_second};
    }

    static OtEngine
    ironman(double cots_per_second)
    {
        return {"Ironman", cots_per_second};
    }
};

/** Latency decomposition of one private inference. */
struct LatencyBreakdown
{
    double linearSeconds = 0;        ///< HE linear layers
    double oteComputeSeconds = 0;    ///< OT-extension computation
    double onlineComputeSeconds = 0; ///< online protocol CPU work
    double commSeconds = 0;          ///< wire time (online + preproc)
    double otherSeconds = 0;         ///< truncation/conversion slack

    uint64_t totalCots = 0;
    uint64_t onlineBytes = 0;
    double rounds = 0;

    double
    totalSeconds() const
    {
        return linearSeconds + oteComputeSeconds +
               onlineComputeSeconds + commSeconds + otherSeconds;
    }

    /** OT-extension share of end-to-end time (Fig. 1(a)). */
    double
    oteFraction() const
    {
        double t = totalSeconds();
        return t > 0 ? oteComputeSeconds / t : 0;
    }
};

/** Estimate one inference of @p model under @p framework. */
LatencyBreakdown estimateInference(const ModelProfile &model,
                                   const FrameworkModel &framework,
                                   const net::NetworkModel &network,
                                   const OtEngine &engine);

/**
 * Latency of evaluating @p elements instances of a single nonlinear
 * op (Fig. 15's per-op benchmark), decomposed the same way.
 */
LatencyBreakdown estimateNonlinearOp(NonlinearOp op, uint64_t elements,
                                     const FrameworkModel &framework,
                                     const net::NetworkModel &network,
                                     const OtEngine &engine);

} // namespace ironman::ppml

#endif // IRONMAN_PPML_ESTIMATOR_H
