#include "ppml/secure_compute.h"

#include <bit>

#include "common/logging.h"
#include "common/trace.h"
#include "ot/base_cot.h"
#include "ot/chosen_ot.h"
#include "ot/one_of_n.h"

namespace ironman::ppml {

SecureCompute::SecureCompute(net::Channel &channel, int party_id,
                             CotSupply &supply, unsigned bitwidth)
    : ch(channel), party(party_id), engine(&supply),
      width(bitwidth), localRng(0xfeed1234 + party_id)
{
    IRONMAN_CHECK(party == 0 || party == 1);
    IRONMAN_CHECK(width >= 2 && width <= 64);
}

void
SecureCompute::otSendBatch(const std::vector<Block> &m0,
                           const std::vector<Block> &m1,
                           unsigned wire_width)
{
    const size_t n = m0.size();
    trace::Span span("ot_send", "crhf", 0, n);
    uint64_t tw = tweak;
    tweak += n;
    const Block *q = engine->takeSend(n);
    if (packedWire)
        ot::chosenOtSendPacked(ch, crhf, m0.data(), m1.data(), n,
                               wire_width, engine->sendDelta(), q, tw,
                               otScratch);
    else
        ot::chosenOtSend(ch, crhf, m0.data(), m1.data(), n,
                         engine->sendDelta(), q, tw, otScratch);
}

std::vector<Block>
SecureCompute::otRecvBatch(const BitVec &choices, unsigned wire_width)
{
    const size_t n = choices.size();
    trace::Span span("ot_recv", "crhf", 0, n);
    uint64_t tw = tweak;
    tweak += n;
    std::vector<Block> out(n);
    const BitVec *b;
    size_t b_offset;
    const Block *t;
    engine->takeRecv(n, &b, &b_offset, &t);
    if (packedWire)
        ot::chosenOtRecvPacked(ch, crhf, choices, *b, b_offset, t, n,
                               wire_width, out.data(), tw, otScratch);
    else
        ot::chosenOtRecv(ch, crhf, choices, *b, b_offset, t, n,
                         out.data(), tw, otScratch);
    return out;
}

BitVec
SecureCompute::xorShares(const BitVec &a, const BitVec &b)
{
    BitVec out = a;
    out ^= b;
    return out;
}

BitVec
SecureCompute::andShares(const BitVec &a, const BitVec &b)
{
    IRONMAN_CHECK(a.size() == b.size());
    const size_t n = a.size();
    ++rounds;
    trace::Span span("and_shares", "gmw", uint32_t(rounds), n);

    // Fresh masks for the cross terms.
    Rng mask_rng(0x5eed0000 + party + 31 * tweak);
    BitVec r(n);
    for (size_t i = 0; i < n; ++i)
        r.set(i, mask_rng.nextBit());

    // Messages for the direction where we are the sender:
    // m_c = r_i ^ (a_i & c)  ->  receiver with choice b' learns
    // r_i ^ a_i*b'.
    std::vector<Block> m0(n), m1(n);
    for (size_t i = 0; i < n; ++i) {
        m0[i] = Block::fromUint64(r.get(i));
        m1[i] = Block::fromUint64(r.get(i) ^ a.get(i));
    }

    // AND-gate messages are single bits on the wire.
    std::vector<Block> got;
    if (party == 0) {
        otSendBatch(m0, m1, 1);
        got = otRecvBatch(b, 1);
    } else {
        got = otRecvBatch(b, 1);
        otSendBatch(m0, m1, 1);
    }

    // z_p = a_p*b_p ^ r_p ^ (r_{1-p} ^ a_{1-p}*b_p).
    BitVec z(n);
    for (size_t i = 0; i < n; ++i) {
        bool cross_in = got[i].lo & 1;
        z.set(i, (a.get(i) & b.get(i)) ^ r.get(i) ^ cross_in);
    }
    return z;
}

BitVec
SecureCompute::bitShares(const std::vector<uint64_t> &shares,
                         unsigned i) const
{
    // Boolean shares of bit i of x = x0 + x1 (before carries): party
    // p's share is bit i of its own addend.
    BitVec v(shares.size());
    for (size_t j = 0; j < shares.size(); ++j)
        v.set(j, (shares[j] >> i) & 1);
    return v;
}

BitVec
SecureCompute::dreluFinish(const std::vector<uint64_t> &shares,
                           const BitVec &carry)
{
    // msb(x) = a_{w-1} ^ b_{w-1} ^ carry; DReLU = NOT msb.
    BitVec out = xorShares(bitShares(shares, width - 1), carry);
    if (party == 0) {
        for (size_t j = 0; j < out.size(); ++j)
            out.flip(j);
    }
    return out;
}

BitVec
SecureCompute::drelu(const std::vector<uint64_t> &shares)
{
    return cmpMode == CmpMode::Ladder ? dreluLadder(shares)
                                      : dreluRipple(shares);
}

BitVec
SecureCompute::dreluRipple(const std::vector<uint64_t> &shares)
{
    const size_t n = shares.size();
    const unsigned m = width - 1; // carry positions below the sign bit

    // The generate bits g_i = a_i & b_i don't depend on the carry, so
    // ONE batched AND round computes all of them up front; only the
    // carry recurrence c_{i+1} = g_i ^ (c_i & p_i) stays sequential.
    // Party 0 contributes its addend's bits on the left operand,
    // party 1 on the right, with zero shares on the opposite side.
    BitVec lhs(size_t(m) * n), rhs(size_t(m) * n);
    BitVec &own = party == 0 ? lhs : rhs;
    for (unsigned i = 0; i < m; ++i)
        for (size_t j = 0; j < n; ++j)
            own.set(size_t(i) * n + j, (shares[j] >> i) & 1);
    const BitVec gen_all = andShares(lhs, rhs);

    BitVec carry(n); // zero shares
    for (unsigned i = 0; i < m; ++i) {
        // p_i = a_i ^ b_i: with the opposite side zero-shared, each
        // party's propagate share is just its own bit.
        const BitVec prop = bitShares(shares, i);
        const BitVec prop_and_c = andShares(carry, prop);
        BitVec gen(n);
        for (size_t j = 0; j < n; ++j)
            gen.set(j, gen_all.get(size_t(i) * n + j));
        carry = xorShares(gen, prop_and_c);
    }
    return dreluFinish(shares, carry);
}

BitVec
SecureCompute::dreluLadder(const std::vector<uint64_t> &shares)
{
    const size_t n = shares.size();
    const unsigned m = width - 1; // carry positions below the sign bit

    // Level 0, one batched AND round: G_i = g_i = a_i & b_i for every
    // position and element (position-major lanes: lane i*n+j is
    // position i of element j). P_i = a_i ^ b_i is local — with the
    // opposite operand zero-shared it is each party's own bit.
    BitVec lhs(size_t(m) * n), rhs(size_t(m) * n);
    BitVec &own = party == 0 ? lhs : rhs;
    BitVec P(size_t(m) * n);
    for (unsigned i = 0; i < m; ++i)
        for (size_t j = 0; j < n; ++j) {
            const bool bit = (shares[j] >> i) & 1;
            own.set(size_t(i) * n + j, bit);
            P.set(size_t(i) * n + j, bit);
        }
    BitVec G = andShares(lhs, rhs);

    // Kogge–Stone combine: after the level at distance d, (G_i, P_i)
    // spans the min(2d, i+1) trailing positions ending at i. Each
    // level is ONE batched AND over both updates —
    //   G_i' = G_i ^ (P_i & G_{i-d}),  P_i' = P_i & P_{i-d}
    // for all i in [d, m) — except the last level (2d >= m), where
    // only the final carry G_{m-1} is still needed.
    for (unsigned d = 1; d < m; d <<= 1) {
        const bool last = 2 * d >= m;
        const unsigned lo = last ? m - 1 : d;
        const size_t span = size_t(m - lo) * n;
        BitVec a(last ? span : 2 * span), b(last ? span : 2 * span);
        size_t k = 0;
        for (unsigned i = lo; i < m; ++i)
            for (size_t j = 0; j < n; ++j, ++k) {
                a.set(k, P.get(size_t(i) * n + j));
                b.set(k, G.get(size_t(i - d) * n + j));
            }
        if (!last)
            for (unsigned i = lo; i < m; ++i)
                for (size_t j = 0; j < n; ++j, ++k) {
                    a.set(k, P.get(size_t(i) * n + j));
                    b.set(k, P.get(size_t(i - d) * n + j));
                }
        const BitVec z = andShares(a, b);
        k = 0;
        for (unsigned i = lo; i < m; ++i)
            for (size_t j = 0; j < n; ++j, ++k)
                G.set(size_t(i) * n + j,
                      G.get(size_t(i) * n + j) ^ z.get(k));
        if (!last)
            for (unsigned i = lo; i < m; ++i)
                for (size_t j = 0; j < n; ++j, ++k)
                    P.set(size_t(i) * n + j, z.get(k));
    }

    // Carry into the sign bit = the full-span G at position m-1.
    BitVec carry(n);
    for (size_t j = 0; j < n; ++j)
        carry.set(j, G.get(size_t(m - 1) * n + j));
    return dreluFinish(shares, carry);
}

std::vector<uint64_t>
SecureCompute::mux(const BitVec &b_shares,
                   const std::vector<uint64_t> &x_shares)
{
    const size_t n = x_shares.size();
    IRONMAN_CHECK(b_shares.size() == n);
    ++rounds;

    // Masks come off a dedicated per-call counter, NOT the tweak: the
    // tweak diverges across comparison modes (different AND batches),
    // and tying the masks to it would make relu output shares — and
    // through the share-local dense truncation, the reconstructed
    // outputs — mode-dependent. See the mux() doc in the header.
    Rng mask_rng(0xabcd0000 + party + 31 * muxSeq);
    muxSeq += n;
    std::vector<uint64_t> r(n);
    for (auto &v : r)
        v = maskValue(mask_rng.nextUint64());

    // m_c = (b_p ^ c) * x_p - r_p: the receiver with choice b_{1-p}
    // learns b*x_p - r_p (b = b_p ^ b_{1-p}).
    std::vector<Block> m0(n), m1(n);
    for (size_t i = 0; i < n; ++i) {
        uint64_t on = maskValue(x_shares[i] - r[i]);
        uint64_t off = maskValue(0 - r[i]);
        bool bp = b_shares.get(i);
        m0[i] = Block::fromUint64(bp ? on : off);
        m1[i] = Block::fromUint64(bp ? off : on);
    }

    // MUX arms are width-masked values: width-bit lanes on the wire.
    std::vector<Block> got;
    if (party == 0) {
        otSendBatch(m0, m1, width);
        got = otRecvBatch(b_shares, width);
    } else {
        got = otRecvBatch(b_shares, width);
        otSendBatch(m0, m1, width);
    }

    std::vector<uint64_t> y(n);
    for (size_t i = 0; i < n; ++i)
        y[i] = maskValue(r[i] + got[i].lo);
    return y;
}

std::vector<uint64_t>
SecureCompute::relu(const std::vector<uint64_t> &shares)
{
    BitVec positive = drelu(shares);
    return mux(positive, shares);
}

std::vector<uint64_t>
SecureCompute::lutEval(const std::vector<uint64_t> &x_shares,
                       const std::vector<uint64_t> &table)
{
    const size_t n_msgs = table.size();
    const size_t batch = x_shares.size();
    IRONMAN_CHECK(n_msgs >= 2 && std::has_single_bit(n_msgs));
    const unsigned bits = std::countr_zero(n_msgs);
    const size_t cots = batch * bits;
    ++rounds;

    if (party == 0) {
        // Build the rotated, masked tables: message i of instance e is
        // table[(x0_e + i) mod N] - r_e.
        std::vector<uint64_t> r(batch);
        std::vector<Block> msgs(batch * n_msgs);
        for (size_t e = 0; e < batch; ++e) {
            IRONMAN_CHECK(x_shares[e] < n_msgs,
                          "index shares must be reduced mod N");
            r[e] = maskValue(localRng.nextUint64());
            for (size_t i = 0; i < n_msgs; ++i) {
                uint64_t entry =
                    table[(x_shares[e] + i) & (n_msgs - 1)];
                msgs[e * n_msgs + i] =
                    Block::fromUint64(maskValue(entry - r[e]));
            }
        }
        const Block *q = engine->takeSend(cots);
        ot::oneOfNOtSend(ch, crhf, msgs.data(), n_msgs, batch,
                         engine->sendDelta(), q, localRng, tweak);
        return r;
    }

    // Party 1: select with its own index share.
    std::vector<uint32_t> choices(batch);
    for (size_t e = 0; e < batch; ++e) {
        IRONMAN_CHECK(x_shares[e] < n_msgs,
                      "index shares must be reduced mod N");
        choices[e] = uint32_t(x_shares[e]);
    }
    std::vector<Block> got;
    {
        const BitVec *b;
        size_t b_offset;
        const Block *t;
        engine->takeRecv(cots, &b, &b_offset, &t);
        got = ot::oneOfNOtRecv(ch, crhf, choices, n_msgs, *b, b_offset,
                               t, tweak);
    }

    std::vector<uint64_t> out(batch);
    for (size_t e = 0; e < batch; ++e)
        out[e] = maskValue(got[e].lo);
    return out;
}

std::vector<uint64_t>
SecureCompute::maxElementwise(const std::vector<uint64_t> &a,
                              const std::vector<uint64_t> &b)
{
    IRONMAN_CHECK(a.size() == b.size());
    // max(a, b) = b + relu(a - b).
    std::vector<uint64_t> diff(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        diff[i] = maskValue(a[i] - b[i]);
    std::vector<uint64_t> r = relu(diff);
    std::vector<uint64_t> out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = maskValue(b[i] + r[i]);
    return out;
}

} // namespace ironman::ppml
