#include "ppml/mlp_runner.h"

#include <thread>

#include "common/logging.h"
#include "common/trace.h"
#include "net/two_party.h"
#include "ppml/cot_engine.h"

namespace ironman::ppml {

namespace {
// Trace labels must be string literals (the ring stores the pointer),
// so per-layer names come from fixed tables; deeper models share the
// overflow label and disambiguate by the span's tag (= layer index).
constexpr const char *kDenseNames[] = {
    "dense0", "dense1", "dense2", "dense3",
    "dense4", "dense5", "dense6", "dense7"};
constexpr const char *kReluNames[] = {
    "relu0", "relu1", "relu2", "relu3",
    "relu4", "relu5", "relu6", "relu7"};
constexpr size_t kLayerNameCount =
    sizeof(kDenseNames) / sizeof(kDenseNames[0]);

const char *
denseName(size_t l)
{
    return l < kLayerNameCount ? kDenseNames[l] : "dense+";
}

const char *
reluName(size_t l)
{
    return l < kLayerNameCount ? kReluNames[l] : "relu+";
}
} // namespace

MlpRunner::MlpRunner(const MlpModelSpec &spec, unsigned width)
    : spec_(spec), width_(width)
{
    IRONMAN_CHECK(spec_.dims.size() >= 2, "model needs >= 1 dense layer");
    IRONMAN_CHECK(spec_.widthOk(width_),
                  "bitwidth outside the model's overflow-free range");
    for (size_t l = 0; l + 1 < spec_.dims.size(); ++l)
        weights.push_back(mlpLayerWeights(spec_, l));
}

int64_t
MlpRunner::toSigned(uint64_t v) const
{
    if (width_ == 64)
        return int64_t(v);
    const uint64_t sign = uint64_t(1) << (width_ - 1);
    return (v & sign) ? int64_t(v) - (int64_t(1) << width_)
                      : int64_t(v);
}

std::vector<uint64_t>
MlpRunner::denseLocal(size_t layer, const std::vector<uint64_t> &x,
                      size_t batch) const
{
    const size_t rows = spec_.dims[layer + 1];
    const size_t cols = spec_.dims[layer];
    const std::vector<int64_t> &w = weights[layer];
    std::vector<uint64_t> out(batch * rows);
    for (size_t b = 0; b < batch; ++b)
        for (size_t r = 0; r < rows; ++r) {
            int64_t acc = 0;
            for (size_t c = 0; c < cols; ++c)
                acc += w[r * cols + c] * toSigned(x[b * cols + c]);
            // Both parties truncate their own share — the standard
            // local approximation (one ulp of error per party).
            out[b * rows + r] = maskValue(uint64_t(acc >> spec_.fracBits));
        }
    return out;
}

std::vector<uint64_t>
MlpRunner::forward(SecureCompute &sc, net::Channel &ch,
                   const std::vector<uint64_t> &x_shares)
{
    IRONMAN_CHECK(sc.bitwidth() == width_, "engine width mismatch");
    IRONMAN_CHECK(!x_shares.empty() &&
                      x_shares.size() % spec_.inputDim() == 0,
                  "input is batch * inputDim shares");
    const size_t batch = x_shares.size() / spec_.inputDim();

    stats_.clear();
    std::vector<uint64_t> cur = x_shares;
    for (size_t l = 0; l + 1 < spec_.dims.size(); ++l) {
        {
            trace::Span dense_span(denseName(l), "layer", uint32_t(l),
                                   cur.size() * sizeof(uint64_t));
            cur = denseLocal(l, cur, batch);
        }
        stats_.push_back({"dense" + std::to_string(l), 0, 0, 0});
        if (l + 2 < spec_.dims.size()) {
            const size_t cots0 = sc.cotsConsumed();
            const uint64_t bytes0 = ch.bytesSent();
            const unsigned rounds0 = sc.roundsUsed();
            trace::Span relu_span(reluName(l), "layer", uint32_t(l));
            cur = sc.relu(cur);
            relu_span.setArg(ch.bytesSent() - bytes0);
            stats_.push_back({"relu" + std::to_string(l),
                              sc.cotsConsumed() - cots0,
                              ch.bytesSent() - bytes0,
                              sc.roundsUsed() - rounds0});
        }
    }
    return cur;
}

// ---------------------------------------------------------------------------
// Sharing helpers + the in-process reference path
// ---------------------------------------------------------------------------

void
shareMlpValues(Rng &rng, unsigned width,
               const std::vector<int64_t> &values,
               std::vector<uint64_t> *x0, std::vector<uint64_t> *x1)
{
    const uint64_t mask =
        width == 64 ? ~uint64_t(0) : (uint64_t(1) << width) - 1;
    x0->resize(values.size());
    x1->resize(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
        (*x0)[i] = rng.nextUint64() & mask;
        (*x1)[i] = (uint64_t(values[i]) - (*x0)[i]) & mask;
    }
}

std::vector<int64_t>
reconstructMlpValues(unsigned width, const std::vector<uint64_t> &y0,
                     const std::vector<uint64_t> &y1)
{
    IRONMAN_CHECK(y0.size() == y1.size(), "share length mismatch");
    const uint64_t mask =
        width == 64 ? ~uint64_t(0) : (uint64_t(1) << width) - 1;
    const uint64_t sign = uint64_t(1) << (width - 1);
    std::vector<int64_t> out(y0.size());
    for (size_t i = 0; i < y0.size(); ++i) {
        const uint64_t v = (y0[i] + y1[i]) & mask;
        out[i] = (width != 64 && (v & sign))
                     ? int64_t(v) - (int64_t(1) << width)
                     : int64_t(v);
    }
    return out;
}

LocalMlpResult
runLocalMlpInference(const MlpModelSpec &spec, unsigned width,
                     const std::vector<std::vector<int64_t>> &requests,
                     uint64_t share_seed, uint64_t setup_seed,
                     const ot::FerretParams &params, CmpMode mode)
{
    // Pre-share every request with the one tape the inference client
    // would use (party 0 owns the inputs there too).
    Rng share_rng(share_seed);
    std::vector<std::vector<uint64_t>> x0(requests.size());
    std::vector<std::vector<uint64_t>> x1(requests.size());
    for (size_t r = 0; r < requests.size(); ++r)
        shareMlpValues(share_rng, width, requests[r], &x0[r], &x1[r]);

    LocalMlpResult result;
    std::vector<std::vector<uint64_t>> y0(requests.size());
    std::vector<std::vector<uint64_t>> y1(requests.size());
    auto party = [&](int id, std::vector<std::vector<uint64_t>> &x,
                     std::vector<std::vector<uint64_t>> &y) {
        return [&, id](net::Channel &ch) {
            FerretCotEngine engine(ch, id, params, setup_seed);
            SecureCompute sc(ch, id, engine, width);
            sc.setComparisonMode(mode);
            MlpRunner runner(spec, width);
            for (size_t r = 0; r < x.size(); ++r)
                y[r] = runner.forward(sc, ch, x[r]);
            if (id == 0) {
                result.cotsPerParty = sc.cotsConsumed();
                result.extensions = engine.extensionsRun();
            }
        };
    };
    const net::WireStats wire =
        net::runTwoParty(party(0, x0, y0), party(1, x1, y1));
    result.onlineBytes = wire.totalBytes;

    result.outputs.resize(requests.size());
    for (size_t r = 0; r < requests.size(); ++r)
        result.outputs[r] = reconstructMlpValues(width, y0[r], y1[r]);
    return result;
}

} // namespace ironman::ppml
