/**
 * @file
 * OT-based online protocols for nonlinear functions (Sec. 2.2).
 *
 * This is the "online OT protocol" half of the PPML stack: GMW-style
 * two-party computation over XOR/additive secret shares, where every
 * AND gate and multiplexer consumes pre-generated COT correlations —
 * exactly the resource Ironman accelerates. The engine implements:
 *
 *   - batched AND on boolean shares (2 COTs per bit, one per
 *     direction — this is why the protocol needs role switching and a
 *     unified sender/receiver architecture, Sec. 5.2),
 *   - DReLU: the sign bit of an additively shared fixed-point value,
 *     via a Kogge–Stone carry-prefix ladder (log-depth, the default)
 *     or a sequential ripple carry (the A/B baseline) — see
 *     ppml/cmp_mode.h for the round/gate trade,
 *   - MUX and ReLU on additive shares (2 COTs per element),
 *   - max-pool style pairwise maximum.
 *
 * These are faithful (semi-honest) protocols, tested against plain
 * evaluation; the per-element COT counts they report anchor the
 * framework cost models in ppml/framework.h.
 */

#ifndef IRONMAN_PPML_SECURE_COMPUTE_H
#define IRONMAN_PPML_SECURE_COMPUTE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "common/block.h"
#include "common/rng.h"
#include "crypto/crhf.h"
#include "net/channel.h"
#include "ot/chosen_ot.h"
#include "ot/cot.h"
#include "ppml/cmp_mode.h"
#include "ppml/cot_engine.h"

namespace ironman::ppml {

/** Two-party GMW engine; instantiate one per party. */
class SecureCompute
{
  public:
    /**
     * Correlations are drawn from a CotSupply — normally a persistent
     * FerretCotEngine (shared channel, self-refilling across layers),
     * or a svc::ReservoirCotSupply stocked by background COT-service
     * sessions. @p supply must outlive this object, and both parties'
     * supplies must hand out matching halves in lockstep.
     *
     * @param party 0 or 1 (party 0 sends first in every batch).
     * @param bitwidth Fixed-point width for arithmetic ops (<= 64).
     */
    SecureCompute(net::Channel &ch, int party, CotSupply &supply,
                  unsigned bitwidth = 32);

    // ---- boolean-share operations ------------------------------------

    /** Local XOR. */
    static BitVec xorShares(const BitVec &a, const BitVec &b);

    /** Batched AND of boolean shares; consumes 2 COTs per bit. */
    BitVec andShares(const BitVec &a, const BitVec &b);

    // ---- additive-share operations (mod 2^bitwidth) -------------------

    /**
     * DReLU: boolean shares of (x >= 0) for additively shared x,
     * where x is interpreted as a signed bitwidth-bit integer. The
     * carry circuit is comparisonMode()'s; the reconstructed BIT is
     * the same function either way, but the output SHARES differ
     * (each mode draws a different AND-mask tape) — downstream
     * consumers (mux/relu) erase that difference, see mux().
     */
    BitVec drelu(const std::vector<uint64_t> &shares);

    /**
     * MUX: additive shares of (b ? x : 0) from boolean shares of b
     * and additive shares of x. 2 COTs per element.
     *
     * Output-share determinism: y_p = r_p + (b ? x_{1-p} : 0) -
     * r_{1-p} depends on the RECONSTRUCTED bit b and the x shares,
     * never on the individual b shares — and the masks r draw from a
     * dedicated per-call counter (muxSeq), not the op-order tweak. So
     * relu() output shares are identical across comparison modes even
     * though the drelu shares differ (the anchor of the cross-mode
     * bit-identity invariant, DESIGN.md invariant 16).
     */
    std::vector<uint64_t> mux(const BitVec &b_shares,
                              const std::vector<uint64_t> &x_shares);

    /** ReLU = MUX(DReLU(x), x). */
    std::vector<uint64_t> relu(const std::vector<uint64_t> &shares);

    /** Pairwise maximum of two shared vectors (max-pool building block). */
    std::vector<uint64_t> maxElementwise(const std::vector<uint64_t> &a,
                                         const std::vector<uint64_t> &b);

    /**
     * Secure table lookup (the GELU/Softmax/exp building block of
     * SiRNN/Bolt): given additive shares mod N of indices x (N =
     * table.size(), a power of two), returns additive shares mod
     * 2^bitwidth of table[x]. Party 0 acts as the 1-of-N OT sender;
     * log2(N) COTs per element.
     */
    std::vector<uint64_t> lutEval(const std::vector<uint64_t> &x_shares,
                                  const std::vector<uint64_t> &table);

    /** Total COT correlations consumed so far. */
    size_t
    cotsConsumed() const
    {
        return engine->cotsTaken();
    }

    /**
     * Width-aware wire packing (default ON): chosen-OT traffic ships
     * at each op's semantic width — 1-bit lanes for AND-gate messages,
     * bitwidth-bit lanes for MUX arms, raw derand bytes — instead of
     * full 16-byte Blocks. The pads stay full-Block CRHF hashes, so
     * the decoded SHARES are bit-identical either way (DESIGN.md
     * invariant 14); only the transcript changes. Both parties must
     * agree (it is a wire format): flip it before the first op, in
     * lockstep — the inference handshake negotiates exactly this.
     */
    void setWirePacking(bool on) { packedWire = on; }
    bool wirePacking() const { return packedWire; }

    /**
     * Comparison circuit for drelu/relu (default Ladder). Both
     * parties must agree BEFORE the first comparison — the modes
     * consume different COT counts and interleave different AND
     * batches, so it is protocol state like wire packing, negotiated
     * by the inference handshake (infer/wire.h kInferFlagLadderCmp).
     */
    void setComparisonMode(CmpMode m) { cmpMode = m; }
    CmpMode comparisonMode() const { return cmpMode; }

    /**
     * Batched interactions (AND/MUX/LUT rounds) run so far — the
     * measured round count MlpLayerStat reports; matches
     * ppml::reluRounds() per relu() call by construction.
     */
    unsigned roundsUsed() const { return rounds; }

    unsigned bitwidth() const { return width; }

    uint64_t
    maskValue(uint64_t v) const
    {
        return width == 64 ? v : (v & ((uint64_t(1) << width) - 1));
    }

  private:
    /**
     * One batched chosen-OT where this party is the sender.
     * @p wire_width is the semantic payload width the packed codec
     * ships (ignored when packing is off).
     */
    void otSendBatch(const std::vector<Block> &m0,
                     const std::vector<Block> &m1, unsigned wire_width);
    /** One batched chosen-OT where this party is the receiver. */
    std::vector<Block> otRecvBatch(const BitVec &choices,
                                   unsigned wire_width);

    /** Boolean shares of bit @p i of every element of @p shares. */
    BitVec bitShares(const std::vector<uint64_t> &shares,
                     unsigned i) const;
    BitVec dreluRipple(const std::vector<uint64_t> &shares);
    BitVec dreluLadder(const std::vector<uint64_t> &shares);
    BitVec dreluFinish(const std::vector<uint64_t> &shares,
                       const BitVec &carry);

    net::Channel &ch;
    int party;
    CotSupply *engine = nullptr;
    unsigned width;
    bool packedWire = true;
    CmpMode cmpMode = CmpMode::Ladder;
    unsigned rounds = 0;
    crypto::Crhf crhf;
    ot::ChosenOtScratch otScratch;
    Rng localRng;
    uint64_t tweak = 0x10000000;
    /**
     * MUX mask counter, deliberately separate from `tweak`: the tweak
     * advances per COT and therefore diverges across comparison
     * modes, while the mux masks must not (see mux()).
     */
    uint64_t muxSeq = 0;
};

} // namespace ironman::ppml

#endif // IRONMAN_PPML_SECURE_COMPUTE_H
