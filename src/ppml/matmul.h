/**
 * @file
 * OT-based secure matrix multiplication with role switching (Fig. 16,
 * after PrivQuant Sec. 4.1).
 *
 * In an OT-based MatMul of X (M x K, client) by W (K x N, server),
 * the OT messages carry the weight-scaled partial sums: the party
 * acting as OT *sender* pays communication proportional to its
 * operand volume times the bit width. Without a unified architecture
 * the accelerator-equipped party must keep one fixed role, forcing
 * the expensive direction half the time; with the Unified Unit both
 * directions run at hardware speed and every matmul picks the cheap
 * orientation — a 2x communication reduction on the Fig. 16 shapes
 * and ~1.4x latency at WAN bandwidth.
 */

#ifndef IRONMAN_PPML_MATMUL_H
#define IRONMAN_PPML_MATMUL_H

#include <cstdint>

#include "net/channel.h"

namespace ironman::ppml {

/** Problem shape: (input, hidden, output) as in Fig. 16. */
struct MatMulDims
{
    uint64_t m; ///< batch/sequence
    uint64_t k; ///< hidden (contraction)
    uint64_t n; ///< output
};

/** Communication/latency estimate of one secure MatMul. */
struct MatMulCost
{
    uint64_t bytes = 0;
    uint64_t cots = 0;
    double computeSeconds = 0;

    double
    latencySeconds(const net::NetworkModel &net) const
    {
        return computeSeconds + net.seconds(bytes, 2.0);
    }
};

/**
 * Cost of a secure MatMul at @p bits fixed-point width.
 *
 * @param unified With the unified architecture the protocol picks the
 *        cheaper OT orientation per matmul; without it the
 *        accelerated party is pinned to one role and both directions'
 *        messages flow the expensive way.
 * @param cot_throughput COT generation rate of the preprocessing
 *        engine (Ironman or CPU).
 */
MatMulCost secureMatMulCost(const MatMulDims &dims, unsigned bits,
                            bool unified, double cot_throughput);

struct OtEngine; // ppml/estimator.h

/**
 * Same, drawing the COT rate from a persistent OT engine description
 * (the measured CPU stack or the simulated Ironman accelerator), so
 * per-layer planning and the end-to-end estimator price preprocessing
 * against one shared engine instead of per-layer setup.
 */
MatMulCost secureMatMulCost(const MatMulDims &dims, unsigned bits,
                            bool unified, const OtEngine &engine);

} // namespace ironman::ppml

#endif // IRONMAN_PPML_MATMUL_H
