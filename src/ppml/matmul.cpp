#include "ppml/matmul.h"

#include <algorithm>

#include "ppml/estimator.h"

namespace ironman::ppml {

MatMulCost
secureMatMulCost(const MatMulDims &dims, unsigned bits, bool unified,
                 double cot_throughput)
{
    // COT-based multiplication triples: each secret input bit of the
    // contracted operand drives one COT whose message carries the
    // 2*bits-wide partial sum. Orientation A sends over the
    // activation volume (M*K), orientation B over the weight volume
    // (K*N); the wire cost per element-bit is 2*bits of masked
    // payload.
    const uint64_t payload = 2ull * bits; // bits on the wire per COT

    const uint64_t cots_a = dims.m * dims.k * bits; // activation side
    const uint64_t cots_b = dims.k * dims.n * bits; // weight side

    // A full secure MatMul needs OTs in both orientations (each
    // party's operand is secret). With the unified architecture each
    // orientation runs natively. Without it, the accelerated party is
    // pinned to one role, so the opposite orientation must be emulated
    // by OT reversal, which doubles that direction's wire traffic —
    // and since the two orientations alternate across layers, the
    // whole stream pays 2x (PrivQuant Sec. 4.1 / Fig. 16).
    const uint64_t cots = cots_a + cots_b;

    MatMulCost cost;
    cost.cots = cots;
    cost.bytes = cots * payload / 8;
    if (!unified)
        cost.bytes *= 2;
    cost.computeSeconds =
        cot_throughput > 0 ? double(cots) / cot_throughput : 0.0;
    return cost;
}

MatMulCost
secureMatMulCost(const MatMulDims &dims, unsigned bits, bool unified,
                 const OtEngine &engine)
{
    return secureMatMulCost(dims, bits, unified, engine.cotsPerSecond);
}

} // namespace ironman::ppml
