/**
 * @file
 * Cost models of the hybrid HE/MPC frameworks of Sec. 6
 * (CrypTFlow2, Cheetah, Bolt, EzPC-SiRNN).
 *
 * Each framework is characterized by, per nonlinear element:
 *   - COT correlations consumed in preprocessing (the Ironman-
 *     accelerated quantity),
 *   - online communication bytes,
 * plus per-layer protocol rounds, linear-layer (HE) throughput and
 * ciphertext volume.
 *
 * Calibration: the CrypTFlow2 ReLU count is anchored to the paper's
 * own data point ("about 2^25 OTs required by the first layer in
 * secure ResNet18 inference" — 802,816 ReLUs -> ~42 COT/ReLU); other
 * constants are set from the frameworks' published per-op costs and
 * tuned so the Fig. 1(a) breakdown (OT extension 51-69% of end-to-end
 * time on CPU) and the Table 5 speedup bands reproduce. They are cost
 * *models*, not re-implementations of the frameworks (DESIGN.md).
 */

#ifndef IRONMAN_PPML_FRAMEWORK_H
#define IRONMAN_PPML_FRAMEWORK_H

#include <string>

#include "ppml/model_zoo.h"

namespace ironman::ppml {

/** Per-element cost of one nonlinear op under one framework. */
struct OpCost
{
    double cotsPerElement = 0;
    double onlineBytesPerElement = 0;
    /// Online CPU work of the protocol itself (share arithmetic,
    /// LUT evaluation) — the part acceleration does NOT remove.
    double onlineSecondsPerElement = 0;
};

/** A hybrid HE/MPC framework. */
class FrameworkModel
{
  public:
    static FrameworkModel crypTFlow2();
    static FrameworkModel cheetah();
    static FrameworkModel bolt();
    static FrameworkModel sirnn(); ///< EzPC-SiRNN (Fig. 15(a))

    const std::string &name() const { return name_; }

    /** Cost of one element of @p op; zero-cost if unsupported. */
    OpCost cost(NonlinearOp op) const;

    /** Rounds per sequential nonlinear layer. */
    double roundsPerLayer() const { return roundsPerLayer_; }

    /** Linear-layer (HE) seconds per GMAC, GPU-assisted. */
    double linearSecondsPerGmac() const { return linearSecPerGmac_; }

    /** Linear-layer ciphertext bytes per GMAC. */
    double linearBytesPerGmac() const { return linearBytesPerGmac_; }

    /** OTE preprocessing wire bytes per COT (PCG-style, sub-linear). */
    double preprocBytesPerCot() const { return preprocBytesPerCot_; }

    /** Can this framework run @p model (Bolt is Transformer-only)? */
    bool supports(const ModelProfile &model) const;

  private:
    std::string name_;
    OpCost relu_, maxpool_, gelu_, softmax_, layernorm_;
    double roundsPerLayer_ = 10;
    double linearSecPerGmac_ = 0;
    double linearBytesPerGmac_ = 0;
    double preprocBytesPerCot_ = 0.5;
    bool transformerOnly_ = false;
    bool cnnOnly_ = false;
};

} // namespace ironman::ppml

#endif // IRONMAN_PPML_FRAMEWORK_H
