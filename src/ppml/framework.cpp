#include "ppml/framework.h"

namespace ironman::ppml {

FrameworkModel
FrameworkModel::crypTFlow2()
{
    FrameworkModel f;
    f.name_ = "CrypTFlow2";
    // 2^25 COTs for ResNet18's 802,816-ReLU first layer (Sec. 1).
    f.relu_ = {42, 280, 2.5e-6};
    f.maxpool_ = {126, 840, 7.0e-6}; // 3 comparisons per 2x2 window
    f.roundsPerLayer_ = 12;
    f.linearSecPerGmac_ = 15.0;  // SCI-HE convolutions
    f.linearBytesPerGmac_ = 22e6;
    f.cnnOnly_ = true;
    return f;
}

FrameworkModel
FrameworkModel::cheetah()
{
    FrameworkModel f;
    f.name_ = "Cheetah";
    // Silent-OT based millionaire + 1-bit approximate truncation.
    f.relu_ = {7, 110, 1.2e-6};
    f.maxpool_ = {21, 330, 3.6e-6};
    f.roundsPerLayer_ = 7;
    f.linearSecPerGmac_ = 3.5;   // lattice tricks: much cheaper convs
    f.linearBytesPerGmac_ = 6e6;
    f.cnnOnly_ = true;
    return f;
}

FrameworkModel
FrameworkModel::bolt()
{
    FrameworkModel f;
    f.name_ = "Bolt";
    // Word-wise LUT protocols for Transformer nonlinearities.
    f.gelu_ = {90, 520, 8.0e-6};
    f.softmax_ = {110, 640, 10.0e-6};
    f.layernorm_ = {30, 210, 2.5e-6};
    f.relu_ = {16, 110, 1.5e-6};
    f.roundsPerLayer_ = 16;
    f.linearSecPerGmac_ = 12.0;  // HE matmul
    f.linearBytesPerGmac_ = 7e6;
    f.transformerOnly_ = true;
    return f;
}

FrameworkModel
FrameworkModel::sirnn()
{
    FrameworkModel f;
    f.name_ = "EzPC-SiRNN";
    // Math-library protocols (bit-faithful, more OT-hungry than Bolt).
    f.gelu_ = {140, 760, 12.0e-6};
    f.softmax_ = {170, 900, 15.0e-6};
    f.layernorm_ = {45, 260, 4.0e-6};
    f.relu_ = {42, 280, 2.5e-6};
    f.maxpool_ = {126, 840, 7.0e-6};
    f.roundsPerLayer_ = 18;
    f.linearSecPerGmac_ = 14.0;
    f.linearBytesPerGmac_ = 15e6;
    return f;
}

OpCost
FrameworkModel::cost(NonlinearOp op) const
{
    switch (op) {
      case NonlinearOp::ReLU: return relu_;
      case NonlinearOp::MaxPool: return maxpool_;
      case NonlinearOp::GELU: return gelu_;
      case NonlinearOp::Softmax: return softmax_;
      case NonlinearOp::LayerNorm: return layernorm_;
    }
    return {};
}

bool
FrameworkModel::supports(const ModelProfile &model) const
{
    if (transformerOnly_ && !model.transformer)
        return false;
    if (cnnOnly_ && model.transformer)
        return false;
    return true;
}

} // namespace ironman::ppml
