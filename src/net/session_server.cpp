#include "net/session_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"

namespace ironman::net {

SessionServer::SessionServer(size_t max_sessions)
    : maxSessions(max_sessions)
{
    IRONMAN_CHECK(maxSessions > 0, "need at least one session slot");
}

SessionServer::~SessionServer()
{
    stop();
}

void
SessionServer::setHandler(Handler h)
{
    IRONMAN_CHECK(listenFd.load() < 0, "set the handler before listening");
    handler = std::move(h);
}

uint16_t
SessionServer::listenTcp(uint16_t port)
{
    IRONMAN_CHECK(listenFd.load() < 0, "server already listening");
    IRONMAN_CHECK(handler != nullptr, "no session handler set");
    const int fd = net::tcpListen(port);
    listenFd.store(fd);
    const uint16_t bound = net::tcpListenPort(fd);
    startAccepting();
    return bound;
}

void
SessionServer::listenUnix(const std::string &path)
{
    IRONMAN_CHECK(listenFd.load() < 0, "server already listening");
    IRONMAN_CHECK(handler != nullptr, "no session handler set");
    const int fd = net::unixListen(path);
    listenFd.store(fd);
    startAccepting();
}

void
SessionServer::startAccepting()
{
    stopping.store(false);
    acceptThread = std::thread([this] { acceptLoop(); });
}

void
SessionServer::acceptLoop()
{
    for (;;) {
        // Session-slot backpressure: leave new connections in the
        // listen backlog until a slot frees up.
        {
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [&] {
                return stopping.load() || active < maxSessions;
            });
        }
        if (stopping.load())
            return;
        const int listener = listenFd.load(std::memory_order_acquire);
        if (listener < 0)
            return;
        int fd = net::acceptOn(listener);
        if (fd < 0)
            return; // listener closed by stop()
        uint64_t sid;
        std::unique_ptr<SocketChannel> ch;
        try {
            ch = std::make_unique<SocketChannel>(fd);
        } catch (...) {
            continue;
        }
        auto finished = std::make_shared<std::atomic<bool>>(false);
        {
            std::lock_guard<std::mutex> lock(m);
            sid = nextSession++;
            ++active;
            liveChannels[sid] = ch.get();
            reapFinishedLocked();
        }
        Session sess;
        sess.finished = finished;
        sess.thread = std::thread(
            [this, sid, finished](std::unique_ptr<SocketChannel> sess_ch) {
                try {
                    handler(*sess_ch, sid);
                } catch (const std::exception &e) {
                    // A dying client must not take the server down.
                    IRONMAN_WARN("session %llu aborted: %s",
                                 (unsigned long long)sid, e.what());
                }
                {
                    std::lock_guard<std::mutex> lock(m);
                    liveChannels.erase(sid);
                    --active;
                    cv.notify_all();
                }
                finished->store(true, std::memory_order_release);
            },
            std::move(ch));
        std::lock_guard<std::mutex> lock(m);
        sessions.push_back(std::move(sess));
    }
}

void
SessionServer::reapFinishedLocked()
{
    // Join threads whose sessions completed; a long-running daemon
    // must not accumulate dead stacks. Finished threads join without
    // blocking the accept path for more than an epilogue.
    for (size_t i = 0; i < sessions.size();) {
        if (sessions[i].finished->load(std::memory_order_acquire)) {
            sessions[i].thread.join();
            sessions.erase(sessions.begin() + long(i));
        } else {
            ++i;
        }
    }
}

void
SessionServer::stop()
{
    if (listenFd.load() < 0 && !acceptThread.joinable())
        return;
    stopping.store(true);
    // Retire the listener first (atomically), then close it: the
    // accept thread either sees -1 or gets EBADF/EINVAL from accept —
    // both exit paths.
    const int fd = listenFd.exchange(-1);
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    {
        // Wake sessions parked in a recv; their threads unwind through
        // the exception path and run their epilogues.
        std::lock_guard<std::mutex> lock(m);
        for (auto &[sid, ch] : liveChannels)
            ch->shutdownBoth();
        cv.notify_all();
    }
    if (acceptThread.joinable())
        acceptThread.join();
    {
        // Second pass, after the accept loop is gone: a connection
        // acceptOn() returned just before the pass above registered
        // AFTER it and would otherwise idle on a live socket while
        // the joins below wait forever. No further registrations can
        // occur now, so this pass is exhaustive.
        std::lock_guard<std::mutex> lock(m);
        for (auto &[sid, ch] : liveChannels)
            ch->shutdownBoth();
    }
    // Join every session thread (their sockets are shut down, so they
    // unwind promptly). Never detach: a detached thread could still be
    // releasing the server's mutex while the server destructs.
    std::vector<Session> to_join;
    {
        std::lock_guard<std::mutex> lock(m);
        to_join.swap(sessions);
    }
    for (Session &s : to_join)
        s.thread.join();
}

size_t
SessionServer::activeSessions() const
{
    std::lock_guard<std::mutex> lock(m);
    return active;
}

} // namespace ironman::net
