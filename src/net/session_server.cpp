#include "net/session_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/trace.h"

namespace ironman::net {

void
SessionMetrics::init(const std::string &prefix)
{
    accepted_ = &metrics::counter(prefix + "_sessions_accepted_total");
    active_ = &metrics::gauge(prefix + "_sessions_active");
    reaped_ = &metrics::counter(prefix + "_sessions_reaped_total");
    duration_ = &metrics::histogram(prefix + "_session_duration_us");
    // Metric names take the underscore spelling of wireFaultName().
    static const char *const kinds[kFaultKinds] = {
        "transient", "peer_closed", "deadline", "protocol", "fatal"};
    for (size_t k = 0; k < kFaultKinds; ++k)
        failed_[k] = &metrics::counter(prefix + "_sessions_failed_" +
                                       kinds[k] + "_total");
}

SessionServer::SessionServer(size_t max_sessions)
    : maxSessions(max_sessions)
{
    IRONMAN_CHECK(maxSessions > 0, "need at least one session slot");
}

SessionServer::~SessionServer()
{
    stop();
}

void
SessionServer::setHandler(Handler h)
{
    IRONMAN_CHECK(listenFd.load() < 0, "set the handler before listening");
    handler = std::move(h);
}

uint16_t
SessionServer::listenTcp(uint16_t port)
{
    IRONMAN_CHECK(listenFd.load() < 0, "server already listening");
    IRONMAN_CHECK(handler != nullptr, "no session handler set");
    const int fd = net::tcpListen(port);
    listenFd.store(fd);
    const uint16_t bound = net::tcpListenPort(fd);
    startAccepting();
    return bound;
}

void
SessionServer::listenUnix(const std::string &path)
{
    IRONMAN_CHECK(listenFd.load() < 0, "server already listening");
    IRONMAN_CHECK(handler != nullptr, "no session handler set");
    const int fd = net::unixListen(path);
    listenFd.store(fd);
    startAccepting();
}

void
SessionServer::startAccepting()
{
    stopping.store(false);
    acceptThread = std::thread([this] { acceptLoop(); });
    if (idleTimeoutMs > 0)
        reaperThread = std::thread([this] { reaperLoop(); });
}

void
SessionServer::acceptLoop()
{
    for (;;) {
        // Session-slot backpressure: leave new connections in the
        // listen backlog until a slot frees up.
        {
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [&] {
                return stopping.load() || active < maxSessions;
            });
        }
        if (stopping.load())
            return;
        const int listener = listenFd.load(std::memory_order_acquire);
        if (listener < 0)
            return;
        int fd = net::acceptOn(listener);
        if (fd < 0)
            return; // listener closed by stop()
        uint64_t sid;
        std::unique_ptr<SocketChannel> ch;
        try {
            ch = std::make_unique<SocketChannel>(fd);
        } catch (...) {
            continue;
        }
        // No server thread enters a blocking kernel call unbounded:
        // the deadlines ride on the channel, set before the handler
        // ever sees it.
        if (recvTimeoutMs > 0)
            ch->setRecvTimeout(recvTimeoutMs);
        if (sendTimeoutMs > 0)
            ch->setSendTimeout(sendTimeoutMs);
        auto finished = std::make_shared<std::atomic<bool>>(false);
        {
            std::lock_guard<std::mutex> lock(m);
            sid = nextSession++;
            ++active;
            liveChannels[sid] = ch.get();
            reapFinishedLocked();
        }
        metrics_.noteAccepted();
        Session sess;
        sess.finished = finished;
        sess.thread = std::thread(
            [this, sid, finished](std::unique_ptr<SocketChannel> sess_ch) {
                const uint64_t t0_us = metrics::nowUs();
                trace::setThreadLabel("session");
                trace::Span session_span("session_thread", "svc",
                                         uint32_t(sid));
                try {
                    handler(*sess_ch, sid);
                } catch (const WireError &e) {
                    // A handler that lets the typed unwind escape left
                    // classification to the skeleton.
                    metrics_.noteFailure(e.fault());
                    IRONMAN_WARN("session %llu aborted: %s",
                                 (unsigned long long)sid, e.what());
                } catch (const std::exception &e) {
                    // A dying client must not take the server down.
                    metrics_.noteFailure(WireFault::Fatal);
                    IRONMAN_WARN("session %llu aborted: %s",
                                 (unsigned long long)sid, e.what());
                }
                metrics_.noteFinished(metrics::nowUs() - t0_us);
                {
                    std::lock_guard<std::mutex> lock(m);
                    liveChannels.erase(sid);
                    activity.erase(sid);
                    --active;
                    cv.notify_all();
                }
                finished->store(true, std::memory_order_release);
            },
            std::move(ch));
        std::lock_guard<std::mutex> lock(m);
        sessions.push_back(std::move(sess));
    }
}

void
SessionServer::reaperLoop()
{
    // Scan period: a fraction of the idle window, so a session is
    // reaped within ~1.25x the configured timeout of going quiet.
    const auto period =
        std::chrono::milliseconds(std::max<uint64_t>(idleTimeoutMs / 4,
                                                     10));
    const auto idle = std::chrono::milliseconds(idleTimeoutMs);
    std::unique_lock<std::mutex> lock(m);
    while (!stopping.load()) {
        cv.wait_for(lock, period, [&] { return stopping.load(); });
        if (stopping.load())
            return;
        const auto now = std::chrono::steady_clock::now();
        for (auto &[sid, ch] : liveChannels) {
            // Counter reads are relaxed atomics — progress watching,
            // not synchronization.
            const uint64_t bytes = ch->bytesSent() + ch->bytesReceived();
            auto [it, fresh] = activity.try_emplace(sid);
            if (fresh || it->second.bytes != bytes) {
                it->second.bytes = bytes;
                it->second.lastChange = now;
            } else if (now - it->second.lastChange >= idle) {
                // Dead weight: wake its thread through the socket (it
                // unwinds via WireError) and let the normal epilogue
                // clean up. Erasure of the bookkeeping happens there.
                ch->shutdownBoth();
                reaped.fetch_add(1, std::memory_order_relaxed);
                metrics_.noteReaped();
                it->second.lastChange = now; // don't re-reap every scan
            }
        }
    }
}

void
SessionServer::reapFinishedLocked()
{
    // Join threads whose sessions completed; a long-running daemon
    // must not accumulate dead stacks. Finished threads join without
    // blocking the accept path for more than an epilogue.
    for (size_t i = 0; i < sessions.size();) {
        if (sessions[i].finished->load(std::memory_order_acquire)) {
            sessions[i].thread.join();
            sessions.erase(sessions.begin() + long(i));
        } else {
            ++i;
        }
    }
}

void
SessionServer::retireListener()
{
    stopping.store(true);
    // Retire the listener first (atomically), then close it: the
    // accept thread either sees -1 or gets EBADF/EINVAL from accept —
    // both exit paths.
    const int fd = listenFd.exchange(-1);
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    {
        // Wake the accept loop's slot wait and the reaper's period
        // wait; neither can touch new sessions after this.
        std::lock_guard<std::mutex> lock(m);
        cv.notify_all();
    }
    if (acceptThread.joinable())
        acceptThread.join();
    if (reaperThread.joinable())
        reaperThread.join();
}

void
SessionServer::finishSessions(bool force)
{
    if (force) {
        // The accept loop and reaper are gone, so this pass over
        // liveChannels is exhaustive: wake sessions parked in a recv;
        // their threads unwind through the exception path and run
        // their epilogues.
        std::lock_guard<std::mutex> lock(m);
        for (auto &[sid, ch] : liveChannels)
            ch->shutdownBoth();
    }
    // Join every session thread. Never detach: a detached thread could
    // still be releasing the server's mutex while the server
    // destructs.
    std::vector<Session> to_join;
    {
        std::lock_guard<std::mutex> lock(m);
        to_join.swap(sessions);
    }
    for (Session &s : to_join)
        s.thread.join();
}

void
SessionServer::stop()
{
    if (listenFd.load() < 0 && !acceptThread.joinable())
        return;
    retireListener();
    finishSessions(/*force=*/true);
}

bool
SessionServer::drain(uint64_t timeout_ms)
{
    retireListener();
    bool clean;
    {
        // Grace window: sessions finish on their own terms — their
        // sockets stay untouched, so in-flight requests complete and
        // clients see a normal end-of-session.
        std::unique_lock<std::mutex> lock(m);
        clean = cv.wait_for(lock,
                            std::chrono::milliseconds(timeout_ms),
                            [&] { return active == 0; });
    }
    finishSessions(/*force=*/true); // no-op shutdowns if all finished
    return clean;
}

size_t
SessionServer::activeSessions() const
{
    std::lock_guard<std::mutex> lock(m);
    return active;
}

} // namespace ironman::net
