#include "net/metrics_endpoint.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/metrics.h"
#include "net/socket_channel.h"

namespace ironman::net {

MetricsEndpoint::~MetricsEndpoint()
{
    stop();
}

uint16_t
MetricsEndpoint::listenTcp(uint16_t port)
{
    const int fd = net::tcpListen(port);
    listenFd_.store(fd);
    const uint16_t bound = net::tcpListenPort(fd);
    thread_ = std::thread([this] { acceptLoop(); });
    return bound;
}

void
MetricsEndpoint::stop()
{
    const int fd = listenFd_.exchange(-1);
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    if (thread_.joinable())
        thread_.join();
}

void
MetricsEndpoint::acceptLoop()
{
    // One connection at a time, serially: a scrape is a few KB of
    // text, and serializing keeps the endpoint incapable of becoming
    // a load source against the daemons it observes.
    for (;;) {
        const int listener = listenFd_.load(std::memory_order_acquire);
        if (listener < 0)
            return;
        const int fd = net::acceptOn(listener);
        if (fd < 0)
            return; // listener closed by stop()
        // Drain (and ignore) whatever request the client sent, with a
        // short timeout so a silent client cannot park the loop. A
        // bare /dev/tcp reader sends nothing — that's fine too.
        struct timeval tv = {0, 200 * 1000};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        char scratch[1024];
        (void)::recv(fd, scratch, sizeof(scratch), 0);
        const std::string body =
            metrics::Registry::instance().renderText();
        char head[128];
        std::snprintf(head, sizeof(head),
                      "HTTP/1.0 200 OK\r\n"
                      "Content-Type: text/plain; version=0.0.4\r\n"
                      "Content-Length: %zu\r\n\r\n",
                      body.size());
        std::string reply = head;
        reply += body;
        size_t off = 0;
        while (off < reply.size()) {
            const ssize_t n = ::send(fd, reply.data() + off,
                                     reply.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                break; // scraper went away; nothing to salvage
            off += size_t(n);
        }
        ::close(fd);
    }
}

} // namespace ironman::net
