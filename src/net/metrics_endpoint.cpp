#include "net/metrics_endpoint.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "net/flight_recorder.h"
#include "net/socket_channel.h"

namespace ironman::net {

namespace {

/** Path of "GET /x HTTP/1.0" ("" when the client sent no parseable
 * request line — the bare /dev/tcp reader, which gets /metrics). */
std::string
requestPath(const char *buf, size_t len)
{
    const std::string req(buf, len);
    if (req.compare(0, 4, "GET ") != 0)
        return "";
    const size_t start = 4;
    size_t end = req.find(' ', start);
    const size_t eol = req.find('\r', start);
    if (end == std::string::npos || (eol != std::string::npos && eol < end))
        end = eol;
    if (end == std::string::npos || end <= start)
        return "";
    return req.substr(start, end - start);
}

} // namespace

MetricsEndpoint::~MetricsEndpoint()
{
    stop();
}

uint16_t
MetricsEndpoint::listenTcp(uint16_t port)
{
    const int fd = net::tcpListen(port);
    listenFd_.store(fd);
    const uint16_t bound = net::tcpListenPort(fd);
    thread_ = std::thread([this] { acceptLoop(); });
    return bound;
}

void
MetricsEndpoint::stop()
{
    const int fd = listenFd_.exchange(-1);
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    if (thread_.joinable())
        thread_.join();
}

void
MetricsEndpoint::acceptLoop()
{
    // One connection at a time, serially: a scrape is a few KB of
    // text, and serializing keeps the endpoint incapable of becoming
    // a load source against the daemons it observes.
    for (;;) {
        const int listener = listenFd_.load(std::memory_order_acquire);
        if (listener < 0)
            return;
        const int fd = net::acceptOn(listener);
        if (fd < 0)
            return; // listener closed by stop()
        // Read the request line, with a short timeout so a silent
        // client cannot park the loop. A bare /dev/tcp reader sends
        // nothing — it gets the /metrics body, the pre-routing
        // behavior every existing scrape script relies on.
        struct timeval tv = {0, 200 * 1000};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        char scratch[1024];
        const ssize_t got = ::recv(fd, scratch, sizeof(scratch), 0);
        const std::string path =
            requestPath(scratch, got > 0 ? size_t(got) : 0);

        const char *status = "200 OK";
        const char *ctype = "text/plain; version=0.0.4";
        std::string body;
        if (path.empty() || path == "/" || path == "/metrics") {
            body = metrics::Registry::instance().renderText();
        } else if (path == "/metrics.json") {
            ctype = "application/json";
            body = metrics::Registry::instance().renderJson();
        } else if (path == "/trace") {
            // The last completed traced session; a live export when
            // no session has been retained yet.
            ctype = "application/json";
            body = trace::lastRetainedExport();
            if (body.empty())
                body = trace::exportChromeTrace();
        } else if (path == "/flight") {
            body = lastFlightDump();
            if (body.empty())
                body = "no flight dump recorded yet\n";
        } else {
            status = "404 Not Found";
            ctype = "text/plain";
            body = "unknown path: " + path + "\n";
        }
        char head[160];
        std::snprintf(head, sizeof(head),
                      "HTTP/1.0 %s\r\n"
                      "Content-Type: %s\r\n"
                      "Content-Length: %zu\r\n\r\n",
                      status, ctype, body.size());
        std::string reply = head;
        reply += body;
        size_t off = 0;
        while (off < reply.size()) {
            const ssize_t n = ::send(fd, reply.data() + off,
                                     reply.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                break; // scraper went away; nothing to salvage
            off += size_t(n);
        }
        ::close(fd);
    }
}

} // namespace ironman::net
