/**
 * @file
 * Scrapeable stats surface: a tiny read-only TCP endpoint that serves
 * the process-wide metrics registry as Prometheus-style "name value"
 * text, one connection at a time (one-shot accept loop).
 *
 * This is deliberately NOT part of the MPC wire: it lives on its own
 * port (--metrics-port on both daemons), never writes into a session
 * channel, and a scrape can neither observe nor perturb protocol
 * bytes (invariant 17). The response is a minimal HTTP/1.0 reply so
 * curl/wget and plain `exec 3<>/dev/tcp/...` both work. Routing:
 * /metrics (and "/" or no request line — the bare /dev/tcp reader)
 * serves the Prometheus text, /metrics.json the JSON snapshot,
 * /trace the last retained Chrome-trace export (live export when
 * none), /flight the last flight-recorder dump; anything else is a
 * 404. Content-Type and Content-Length are always correct for the
 * body served.
 */

#ifndef IRONMAN_NET_METRICS_ENDPOINT_H
#define IRONMAN_NET_METRICS_ENDPOINT_H

#include <atomic>
#include <cstdint>
#include <thread>

namespace ironman::net {

class MetricsEndpoint
{
  public:
    MetricsEndpoint() = default;
    ~MetricsEndpoint();

    MetricsEndpoint(const MetricsEndpoint &) = delete;
    MetricsEndpoint &operator=(const MetricsEndpoint &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral), start the accept loop,
     * return the bound port. Throws WireError on bind failure.
     */
    uint16_t listenTcp(uint16_t port);

    /** Retire the listener and join the accept thread. Idempotent. */
    void stop();

    bool listening() const { return listenFd_.load() >= 0; }

  private:
    void acceptLoop();

    std::atomic<int> listenFd_{-1};
    std::thread thread_;
};

} // namespace ironman::net

#endif // IRONMAN_NET_METRICS_ENDPOINT_H
