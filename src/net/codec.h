/**
 * @file
 * Explicit little-endian scalar codec, shared by every wire format in
 * the tree (svc/wire.cpp, infer/wire.cpp, SocketChannel framing).
 * Byte order on the wire is a protocol contract, not a host property,
 * so these never read memory through wider types.
 */

#ifndef IRONMAN_NET_CODEC_H
#define IRONMAN_NET_CODEC_H

#include <cstdint>

namespace ironman::net {

inline void
putU16(uint8_t *p, uint16_t v)
{
    p[0] = uint8_t(v);
    p[1] = uint8_t(v >> 8);
}

inline void
putU32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = uint8_t(v >> (8 * i));
}

inline void
putU64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = uint8_t(v >> (8 * i));
}

inline uint16_t
getU16(const uint8_t *p)
{
    return uint16_t(uint16_t(p[0]) | uint16_t(p[1]) << 8);
}

inline uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(p[i]) << (8 * i);
    return v;
}

inline uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(p[i]) << (8 * i);
    return v;
}

} // namespace ironman::net

#endif // IRONMAN_NET_CODEC_H
