/**
 * @file
 * Explicit little-endian scalar codec, shared by every wire format in
 * the tree (svc/wire.cpp, infer/wire.cpp, SocketChannel framing).
 * Byte order on the wire is a protocol contract, not a host property,
 * so these never read memory through wider types.
 */

#ifndef IRONMAN_NET_CODEC_H
#define IRONMAN_NET_CODEC_H

#include <cstdint>

namespace ironman::net {

inline void
putU16(uint8_t *p, uint16_t v)
{
    p[0] = uint8_t(v);
    p[1] = uint8_t(v >> 8);
}

inline void
putU32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = uint8_t(v >> (8 * i));
}

inline void
putU64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = uint8_t(v >> (8 * i));
}

inline uint16_t
getU16(const uint8_t *p)
{
    return uint16_t(uint16_t(p[0]) | uint16_t(p[1]) << 8);
}

inline uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(p[i]) << (8 * i);
    return v;
}

inline uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(p[i]) << (8 * i);
    return v;
}

// ---------------------------------------------------------------------------
// Bit-lane codec (width-aware wire packing)
// ---------------------------------------------------------------------------

/** Bytes a packed vector of @p n lanes of @p width bits occupies. */
inline size_t
packedLaneBytes(size_t n, unsigned width)
{
    return (n * size_t(width) + 7) / 8;
}

/**
 * OR the low @p width bits of @p v into @p buf at bit offset
 * @p bit_off, LSB-first within each byte (the BitVec convention,
 * continued across byte boundaries). The buffer must be zeroed over
 * the target range and @p v must already be masked to @p width bits —
 * lanes never overlap, so sequential writes need no read-modify-mask.
 */
inline void
putBitsLE(uint8_t *buf, size_t bit_off, unsigned width, uint64_t v)
{
    size_t i = bit_off >> 3;
    const unsigned sh = unsigned(bit_off & 7);
    buf[i] |= uint8_t(v << sh);
    for (unsigned done = 8 - sh; done < width; done += 8)
        buf[++i] |= uint8_t(v >> done);
}

/** Read back a @p width-bit lane written by putBitsLE(). */
inline uint64_t
getBitsLE(const uint8_t *buf, size_t bit_off, unsigned width)
{
    size_t i = bit_off >> 3;
    const unsigned sh = unsigned(bit_off & 7);
    uint64_t v = uint64_t(buf[i]) >> sh;
    for (unsigned done = 8 - sh; done < width; done += 8)
        v |= uint64_t(buf[++i]) << done;
    return width == 64 ? v : v & ((uint64_t(1) << width) - 1);
}

} // namespace ironman::net

#endif // IRONMAN_NET_CODEC_H
