#include "net/channel.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace ironman::net {

// ---------------------------------------------------------------------------
// Typed helpers
// ---------------------------------------------------------------------------

void
Channel::sendBlock(const Block &b)
{
    uint8_t buf[16];
    b.toBytes(buf);
    sendBytes(buf, sizeof(buf));
}

Block
Channel::recvBlock()
{
    uint8_t buf[16];
    recvBytes(buf, sizeof(buf));
    return Block::fromBytes(buf);
}

void
Channel::sendBlocks(const Block *blocks, size_t n)
{
    // Block layout is two little-endian u64 lanes == the canonical
    // serialization, so the vector can go out as one flat buffer.
    sendBytes(blocks, n * sizeof(Block));
}

void
Channel::recvBlocks(Block *blocks, size_t n)
{
    recvBytes(blocks, n * sizeof(Block));
}

void
Channel::sendUint64(uint64_t v)
{
    sendBytes(&v, sizeof(v));
}

uint64_t
Channel::recvUint64()
{
    uint64_t v;
    recvBytes(&v, sizeof(v));
    return v;
}

void
Channel::sendBits(const BitVec &bits)
{
    sendUint64(bits.size());
    const auto &words = bits.rawWords();
    sendBytes(words.data(), words.size() * sizeof(uint64_t));
}

BitVec
Channel::recvBits()
{
    uint64_t n = recvUint64();
    BitVec out(n);
    auto &words = out.rawWords();
    recvBytes(words.data(), words.size() * sizeof(uint64_t));
    return out;
}

// ---------------------------------------------------------------------------
// MemoryDuplex
// ---------------------------------------------------------------------------

struct MemoryDuplex::Shared
{
    std::mutex mutex;
    std::condition_variable cv;

    /** One direction of the pipe: a queue of buffers + read cursor. */
    struct Stream
    {
        std::deque<std::vector<uint8_t>> segments;
        size_t frontPos = 0; ///< consumed bytes of segments.front()
    };

    // Index 0 = A->B, 1 = B->A.
    Stream stream[2];
    uint64_t sent[2] = {0, 0};

    int lastSender = -1;  ///< 0 = A, 1 = B
    uint64_t turnCount = 0;
};

struct MemoryDuplex::Endpoint : Channel
{
    Endpoint(std::shared_ptr<Shared> s, int id) : shared(std::move(s)), me(id)
    {}

    void
    sendBytes(const void *data, size_t len) override
    {
        const auto *bytes = static_cast<const uint8_t *>(data);
        std::lock_guard<std::mutex> lock(shared->mutex);
        shared->stream[me].segments.emplace_back(bytes, bytes + len);
        shared->sent[me] += len;
        if (shared->lastSender != me) {
            shared->lastSender = me;
            ++shared->turnCount;
        }
        shared->cv.notify_all();
    }

    void
    recvBytes(void *data, size_t len) override
    {
        auto *bytes = static_cast<uint8_t *>(data);
        std::unique_lock<std::mutex> lock(shared->mutex);
        auto &s = shared->stream[1 - me];
        size_t got = 0;
        while (got < len) {
            shared->cv.wait(lock, [&] { return !s.segments.empty(); });
            while (!s.segments.empty() && got < len) {
                auto &seg = s.segments.front();
                size_t avail = seg.size() - s.frontPos;
                size_t take = std::min(avail, len - got);
                std::memcpy(bytes + got, seg.data() + s.frontPos, take);
                got += take;
                s.frontPos += take;
                if (s.frontPos == seg.size()) {
                    s.segments.pop_front();
                    s.frontPos = 0;
                }
            }
        }
    }

    uint64_t
    bytesSent() const override
    {
        std::lock_guard<std::mutex> lock(shared->mutex);
        return shared->sent[me];
    }

    std::shared_ptr<Shared> shared;
    int me;
};

MemoryDuplex::MemoryDuplex()
    : shared(std::make_shared<Shared>()),
      endA(std::make_unique<Endpoint>(shared, 0)),
      endB(std::make_unique<Endpoint>(shared, 1))
{
}

MemoryDuplex::~MemoryDuplex() = default;

Channel &
MemoryDuplex::a()
{
    return *endA;
}

Channel &
MemoryDuplex::b()
{
    return *endB;
}

uint64_t
MemoryDuplex::totalBytes() const
{
    std::lock_guard<std::mutex> lock(shared->mutex);
    return shared->sent[0] + shared->sent[1];
}

uint64_t
MemoryDuplex::turns() const
{
    std::lock_guard<std::mutex> lock(shared->mutex);
    return shared->turnCount;
}

NetworkModel
wanNetwork()
{
    return NetworkModel{400e6, 20e-3, "WAN(400Mbps,20ms)"};
}

NetworkModel
lanNetwork()
{
    return NetworkModel{3e9, 0.15e-3, "LAN(3Gbps,0.15ms)"};
}

} // namespace ironman::net
