#include "net/channel.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "net/wire_error.h"

namespace ironman::net {

// ---------------------------------------------------------------------------
// Typed helpers
// ---------------------------------------------------------------------------

void
Channel::sendBlock(const Block &b)
{
    uint8_t buf[16];
    b.toBytes(buf);
    sendBytes(buf, sizeof(buf));
}

Block
Channel::recvBlock()
{
    uint8_t buf[16];
    recvBytes(buf, sizeof(buf));
    return Block::fromBytes(buf);
}

void
Channel::sendBlocks(const Block *blocks, size_t n)
{
    // Block layout is two little-endian u64 lanes == the canonical
    // serialization, so the vector can go out as one flat buffer.
    sendBytes(blocks, n * sizeof(Block));
}

void
Channel::recvBlocks(Block *blocks, size_t n)
{
    recvBytes(blocks, n * sizeof(Block));
}

void
Channel::sendUint64(uint64_t v)
{
    sendBytes(&v, sizeof(v));
}

uint64_t
Channel::recvUint64()
{
    uint64_t v;
    recvBytes(&v, sizeof(v));
    return v;
}

void
Channel::sendBits(const BitVec &bits)
{
    sendUint64(bits.size());
    const auto &words = bits.rawWords();
    sendBytes(words.data(), words.size() * sizeof(uint64_t));
}

BitVec
Channel::recvBits()
{
    BitVec out;
    recvBitsInto(out);
    return out;
}

void
Channel::recvBitsInto(BitVec &bits)
{
    uint64_t n = recvUint64();
    // The length prefix is untrusted wire input: bound it BEFORE the
    // resize so a corrupted/hostile prefix is a typed error, not a
    // multi-gigabyte allocation. 2^33 bits = 1 GiB of words, matching
    // SocketChannel::kMaxFrameBytes.
    if (n > (uint64_t(1) << 33))
        throw WireError(WireFault::Protocol,
                        "recvBits: implausible bit-vector length " +
                            std::to_string(n));
    bits.resize(n);
    auto &words = bits.rawWords();
    recvBytes(words.data(), words.size() * sizeof(uint64_t));
}

// ---------------------------------------------------------------------------
// MemoryDuplex
// ---------------------------------------------------------------------------

struct MemoryDuplex::Shared
{
    std::mutex mutex;
    std::condition_variable cv;

    /**
     * One direction of the pipe: a contiguous byte FIFO over one ring
     * buffer. Two capacity policies:
     *
     *  - default: grow on demand to the largest backlog seen (which
     *    depends on thread scheduling);
     *  - after reserve(): capacity is FIXED and the sender blocks for
     *    drained space instead of growing, so the reserved size is a
     *    deterministic worst-case bound and a warm wire performs no
     *    heap allocation by construction — the engine-level zero-alloc
     *    guarantee of ot/ot_workspace.h depends on this.
     */
    struct Stream
    {
        std::vector<uint8_t> buf; ///< ring storage (power-of-two size)
        size_t head = 0;          ///< read position
        size_t live = 0;          ///< unread bytes
        bool bounded = false;     ///< reserve() called: never grow

        bool empty() const { return live == 0; }
        size_t freeSpace() const { return buf.size() - live; }

        void
        grow(size_t min_capacity)
        {
            if (min_capacity <= buf.size())
                return;
            // Linearize the live bytes into a bigger ring.
            size_t want = std::max<size_t>(4096, buf.size() * 2);
            while (want < min_capacity)
                want *= 2;
            std::vector<uint8_t> bigger(want);
            size_t linear = std::min(live, buf.size() - head);
            // buf.data() is null before the first growth; zero-length
            // memcpy from null is still UB, so guard both copies.
            if (linear > 0)
                std::memcpy(bigger.data(), buf.data() + head, linear);
            if (live - linear > 0)
                std::memcpy(bigger.data() + linear, buf.data(),
                            live - linear);
            buf.swap(bigger);
            head = 0;
        }

        void
        push(const uint8_t *bytes, size_t len)
        {
            if (len == 0)
                return;
            grow(live + len);
            size_t tail = (head + live) % buf.size();
            size_t first = std::min(len, buf.size() - tail);
            std::memcpy(buf.data() + tail, bytes, first);
            std::memcpy(buf.data(), bytes + first, len - first);
            live += len;
        }

        /** Pop up to @p len bytes; returns the count moved. */
        size_t
        pop(uint8_t *dst, size_t len)
        {
            size_t take = std::min(len, live);
            size_t first = std::min(take, buf.size() - head);
            std::memcpy(dst, buf.data() + head, first);
            std::memcpy(dst + first, buf.data(), take - first);
            head = (head + take) % buf.size();
            live -= take;
            return take;
        }
    };

    // Index 0 = A->B, 1 = B->A.
    Stream stream[2];
    uint64_t sent[2] = {0, 0};

    int lastSender = -1;  ///< 0 = A, 1 = B
    uint64_t turnCount = 0;
};

struct MemoryDuplex::Endpoint : Channel
{
    Endpoint(std::shared_ptr<Shared> s, int id) : shared(std::move(s)), me(id)
    {}

    void
    sendBytes(const void *data, size_t len) override
    {
        const auto *bytes = static_cast<const uint8_t *>(data);
        std::unique_lock<std::mutex> lock(shared->mutex);
        auto &s = shared->stream[me];
        shared->sent[me] += len;
        if (shared->lastSender != me) {
            shared->lastSender = me;
            ++shared->turnCount;
        }
        if (!s.bounded) {
            s.push(bytes, len);
            shared->cv.notify_all();
            return;
        }
        // Bounded mode: capacity is the contract — block for drained
        // space instead of growing, delivering the message in chunks.
        size_t done = 0;
        while (done < len) {
            shared->cv.wait(lock, [&] { return s.freeSpace() > 0; });
            const size_t take = std::min(len - done, s.freeSpace());
            s.push(bytes + done, take);
            done += take;
            shared->cv.notify_all();
        }
    }

    void
    recvBytes(void *data, size_t len) override
    {
        auto *bytes = static_cast<uint8_t *>(data);
        std::unique_lock<std::mutex> lock(shared->mutex);
        auto &s = shared->stream[1 - me];
        size_t got = 0;
        while (got < len) {
            shared->cv.wait(lock, [&] { return !s.empty(); });
            got += s.pop(bytes + got, len - got);
            // A bounded-mode sender may be waiting for this drain.
            shared->cv.notify_all();
        }
    }

    uint64_t
    bytesSent() const override
    {
        std::lock_guard<std::mutex> lock(shared->mutex);
        return shared->sent[me];
    }

    std::shared_ptr<Shared> shared;
    int me;
};

MemoryDuplex::MemoryDuplex()
    : shared(std::make_shared<Shared>()),
      endA(std::make_unique<Endpoint>(shared, 0)),
      endB(std::make_unique<Endpoint>(shared, 1))
{
}

MemoryDuplex::~MemoryDuplex() = default;

Channel &
MemoryDuplex::a()
{
    return *endA;
}

Channel &
MemoryDuplex::b()
{
    return *endB;
}

void
MemoryDuplex::reserve(size_t bytes_per_direction)
{
    IRONMAN_CHECK(bytes_per_direction > 0, "reserve needs a bound");
    std::lock_guard<std::mutex> lock(shared->mutex);
    for (auto &s : shared->stream) {
        s.grow(bytes_per_direction);
        s.bounded = true;
    }
}

size_t
MemoryDuplex::capacityPerDirection() const
{
    std::lock_guard<std::mutex> lock(shared->mutex);
    return std::max(shared->stream[0].buf.size(),
                    shared->stream[1].buf.size());
}

uint64_t
MemoryDuplex::totalBytes() const
{
    std::lock_guard<std::mutex> lock(shared->mutex);
    return shared->sent[0] + shared->sent[1];
}

uint64_t
MemoryDuplex::turns() const
{
    std::lock_guard<std::mutex> lock(shared->mutex);
    return shared->turnCount;
}

NetworkModel
wanNetwork()
{
    return NetworkModel{400e6, 20e-3, "WAN(400Mbps,20ms)"};
}

NetworkModel
lanNetwork()
{
    return NetworkModel{3e9, 0.15e-3, "LAN(3Gbps,0.15ms)"};
}

} // namespace ironman::net
