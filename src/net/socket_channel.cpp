#include "net/socket_channel.h"

#include "net/codec.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ironman::net {

namespace {

[[noreturn]] void
throwErrno(const char *what)
{
    throw std::runtime_error(std::string(what) + ": " +
                             std::strerror(errno));
}

} // namespace

SocketChannel::SocketChannel(int fd, bool tcp_nodelay) : sock(fd)
{
    if (sock < 0)
        throw std::runtime_error("SocketChannel: bad fd");
    if (tcp_nodelay) {
        // Best effort: fails harmlessly on non-TCP sockets.
        int one = 1;
        ::setsockopt(sock, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }

    // Captured once: the quota key of per-client policy (port
    // excluded, so every connection from one host shares one bucket).
    sockaddr_storage ss{};
    socklen_t len = sizeof(ss);
    if (::getpeername(sock, reinterpret_cast<sockaddr *>(&ss), &len) ==
        0) {
        if (ss.ss_family == AF_INET) {
            char buf[INET_ADDRSTRLEN] = {};
            const auto *in = reinterpret_cast<sockaddr_in *>(&ss);
            if (::inet_ntop(AF_INET, &in->sin_addr, buf, sizeof(buf)))
                peer = buf;
        } else if (ss.ss_family == AF_INET6) {
            char buf[INET6_ADDRSTRLEN] = {};
            const auto *in6 = reinterpret_cast<sockaddr_in6 *>(&ss);
            if (::inet_ntop(AF_INET6, &in6->sin6_addr, buf,
                            sizeof(buf)))
                peer = buf;
        } else if (ss.ss_family == AF_UNIX) {
            peer = "unix";
        }
    }
    if (peer.empty())
        peer = "unknown";
}

SocketChannel::~SocketChannel()
{
    if (sock >= 0) {
        // Deliver anything still buffered; a closing peer may race us,
        // so swallow errors on the way out.
        try {
            flush();
        } catch (...) {
        }
        ::close(sock);
    }
}

void
SocketChannel::shutdownBoth()
{
    if (sock >= 0)
        ::shutdown(sock, SHUT_RDWR);
}

void
SocketChannel::writeAll(const uint8_t *data, size_t len)
{
    while (len > 0) {
        ssize_t n = ::send(sock, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("SocketChannel send");
        }
        data += n;
        len -= size_t(n);
    }
}

void
SocketChannel::sendBytes(const void *data, size_t len)
{
    if (len == 0)
        return;
    if (lastDir != 0) {
        lastDir = 0;
        ++turnCount;
    }
    const auto *bytes = static_cast<const uint8_t *>(data);
    txBuf.insert(txBuf.end(), bytes, bytes + len);
    sent += len;
    if (txBuf.size() >= kFlushThreshold)
        flush();
}

void
SocketChannel::flush()
{
    // A single sendBytes can exceed the u32 frame-length field (the
    // threshold check fires only after a whole message is buffered);
    // split into as many maximal frames as needed — the reader
    // reassembles a byte stream, so frame boundaries are invisible.
    constexpr size_t kMaxFrame = 0xffffffffu;
    size_t off = 0;
    while (off < txBuf.size()) {
        const uint32_t len =
            uint32_t(std::min(txBuf.size() - off, kMaxFrame));
        uint8_t header[4];
        header[0] = uint8_t(len);
        header[1] = uint8_t(len >> 8);
        header[2] = uint8_t(len >> 16);
        header[3] = uint8_t(len >> 24);
        writeAll(header, sizeof(header));
        writeAll(txBuf.data() + off, len);
        off += len;
    }
    txBuf.clear(); // keeps capacity: steady state reuses the buffer
}

void
SocketChannel::readFrame()
{
    uint8_t header[4];
    size_t got = 0;
    while (got < sizeof(header)) {
        ssize_t n = ::recv(sock, header + got, sizeof(header) - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("SocketChannel recv");
        }
        if (n == 0)
            throw std::runtime_error(
                "SocketChannel: peer closed the connection");
        got += size_t(n);
    }
    const uint32_t len = getU32(header);
    if (len == 0)
        throw std::runtime_error("SocketChannel: zero-length frame");

    // Compact: all delivered payload has been consumed before another
    // frame is needed (recvBytes drains rxBuf first), so the buffer is
    // logically empty here and the cursor rewinds for reuse.
    if (rxPos == rxBuf.size()) {
        rxBuf.clear();
        rxPos = 0;
    }
    const size_t base = rxBuf.size();
    rxBuf.resize(base + len);
    size_t filled = 0;
    while (filled < len) {
        ssize_t n = ::recv(sock, rxBuf.data() + base + filled,
                           len - filled, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("SocketChannel recv");
        }
        if (n == 0)
            throw std::runtime_error(
                "SocketChannel: peer closed mid-frame");
        filled += size_t(n);
    }
}

void
SocketChannel::recvBytes(void *data, size_t len)
{
    // About to wait on the peer: everything it needs must be on the
    // wire first.
    flush();
    if (len == 0)
        return;
    if (lastDir != 1) {
        lastDir = 1;
        ++turnCount;
        // Latency injection point: one sleep per turnaround models the
        // propagation delay of the half-round this endpoint now waits
        // on (see setSimulatedDelay).
        if (delayUs > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(delayUs));
    }
    auto *bytes = static_cast<uint8_t *>(data);
    size_t got = 0;
    while (got < len) {
        if (rxPos == rxBuf.size())
            readFrame();
        const size_t take = std::min(len - got, rxBuf.size() - rxPos);
        std::memcpy(bytes + got, rxBuf.data() + rxPos, take);
        rxPos += take;
        got += take;
    }
    received += len;
}

// ---------------------------------------------------------------------------
// Connection helpers
// ---------------------------------------------------------------------------

int
tcpListen(uint16_t port, int backlog)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        ::close(fd);
        throwErrno("bind");
    }
    if (::listen(fd, backlog) < 0) {
        ::close(fd);
        throwErrno("listen");
    }
    return fd;
}

uint16_t
tcpListenPort(int listen_fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0)
        throwErrno("getsockname");
    return ntohs(addr.sin_port);
}

int
acceptOn(int listen_fd)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        return -1; // listener closed/shut down: accept loop exits
    }
}

std::unique_ptr<SocketChannel>
tcpConnect(const std::string &host, uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("tcpConnect: bad host " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        throwErrno("connect");
    }
    return std::make_unique<SocketChannel>(fd);
}

int
unixListen(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        throw std::runtime_error("unixListen: path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        ::close(fd);
        throwErrno("bind (unix)");
    }
    if (::listen(fd, 16) < 0) {
        ::close(fd);
        throwErrno("listen (unix)");
    }
    return fd;
}

std::unique_ptr<SocketChannel>
unixConnect(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        throw std::runtime_error("unixConnect: path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        throwErrno("connect (unix)");
    }
    return std::make_unique<SocketChannel>(fd);
}

std::pair<std::unique_ptr<SocketChannel>, std::unique_ptr<SocketChannel>>
socketChannelPair()
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0)
        throwErrno("socketpair");
    return {std::make_unique<SocketChannel>(fds[0]),
            std::make_unique<SocketChannel>(fds[1])};
}

} // namespace ironman::net
