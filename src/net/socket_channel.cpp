#include "net/socket_channel.h"

#include "common/metrics.h"
#include "common/trace.h"
#include "net/codec.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ironman::net {

namespace {

[[noreturn]] void
throwErrno(WireFault fault, const char *what)
{
    throw WireError(fault, std::string(what) + ": " +
                               std::strerror(errno));
}

/** Classify a failed send/recv errno: gone peer vs anything else. */
WireFault
ioFault(int err)
{
    switch (err) {
      case EPIPE:
      case ECONNRESET:
      case ENOTCONN:
      case ECONNABORTED:
        return WireFault::PeerClosed;
      default:
        return WireFault::Fatal;
    }
}

/**
 * Process-wide wire totals across every SocketChannel. Registered on
 * first channel construction (cold), recorded with relaxed adds right
 * next to the per-channel counters the accounting already pays.
 */
struct ChannelMetrics {
    metrics::Counter &bytesSent =
        metrics::counter("net_bytes_sent_total");
    metrics::Counter &bytesReceived =
        metrics::counter("net_bytes_received_total");
    metrics::Counter &turns = metrics::counter("net_turns_total");
    metrics::Counter &deadlineHits =
        metrics::counter("net_deadline_hits_total");
};

ChannelMetrics &
channelMetrics()
{
    static ChannelMetrics m;
    return m;
}

} // namespace

SocketChannel::SocketChannel(int fd, bool tcp_nodelay) : sock(fd)
{
    channelMetrics(); // register handles before any hot-path record

    if (sock < 0)
        throw WireError(WireFault::Fatal, "SocketChannel: bad fd");
    if (tcp_nodelay) {
        // Best effort: fails harmlessly on non-TCP sockets.
        int one = 1;
        ::setsockopt(sock, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }

    // Captured once: the quota key of per-client policy (port
    // excluded, so every connection from one host shares one bucket).
    sockaddr_storage ss{};
    socklen_t len = sizeof(ss);
    if (::getpeername(sock, reinterpret_cast<sockaddr *>(&ss), &len) ==
        0) {
        if (ss.ss_family == AF_INET) {
            char buf[INET_ADDRSTRLEN] = {};
            const auto *in = reinterpret_cast<sockaddr_in *>(&ss);
            if (::inet_ntop(AF_INET, &in->sin_addr, buf, sizeof(buf)))
                peer = buf;
        } else if (ss.ss_family == AF_INET6) {
            char buf[INET6_ADDRSTRLEN] = {};
            const auto *in6 = reinterpret_cast<sockaddr_in6 *>(&ss);
            if (::inet_ntop(AF_INET6, &in6->sin6_addr, buf,
                            sizeof(buf)))
                peer = buf;
        } else if (ss.ss_family == AF_UNIX) {
            // SO_PEERCRED is kernel-asserted, so a local quota bucket
            // is per USER, not one shared "unix" bucket every local
            // process can drain (or spoof into).
            ucred cred{};
            socklen_t clen = sizeof(cred);
            if (::getsockopt(sock, SOL_SOCKET, SO_PEERCRED, &cred,
                             &clen) == 0)
                peer = "unix:uid:" + std::to_string(cred.uid);
            else
                peer = "unix";
        }
    }
    if (peer.empty())
        peer = "unknown";
}

SocketChannel::~SocketChannel()
{
    if (sock >= 0) {
        // Deliver anything still buffered; a closing peer may race us,
        // so swallow errors on the way out.
        try {
            flush();
        } catch (...) {
        }
        ::close(sock);
    }
}

void
SocketChannel::shutdownBoth()
{
    if (sock >= 0)
        ::shutdown(sock, SHUT_RDWR);
}

void
SocketChannel::pollOrThrow(short events, uint64_t timeout_ms,
                           const char *what)
{
    pollfd pfd{};
    pfd.fd = sock;
    pfd.events = events;
    for (;;) {
        const int n = ::poll(&pfd, 1, int(timeout_ms));
        if (n > 0)
            return; // readable/writable (or HUP/ERR: the recv/send
                    // that follows reports the precise condition)
        if (n == 0) {
            channelMetrics().deadlineHits.inc();
            throw WireError(WireFault::Deadline,
                            std::string(what) + ": deadline (" +
                                std::to_string(timeout_ms) +
                                " ms) expired waiting on peer");
        }
        if (errno == EINTR)
            continue;
        throwErrno(WireFault::Fatal, "SocketChannel poll");
    }
}

void
SocketChannel::writeAll(const uint8_t *data, size_t len)
{
    while (len > 0) {
        if (sendTimeoutMs > 0)
            pollOrThrow(POLLOUT, sendTimeoutMs, "SocketChannel send");
        ssize_t n = ::send(sock, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno(ioFault(errno), "SocketChannel send");
        }
        data += n;
        len -= size_t(n);
    }
}

void
SocketChannel::sendBytes(const void *data, size_t len)
{
    if (len == 0)
        return;
    if (lastDir != 0) {
        lastDir = 0;
        turnCount.fetch_add(1, std::memory_order_relaxed);
        channelMetrics().turns.inc();
    }
    const auto *bytes = static_cast<const uint8_t *>(data);
    txBuf.insert(txBuf.end(), bytes, bytes + len);
    sent.fetch_add(len, std::memory_order_relaxed);
    channelMetrics().bytesSent.inc(len);
    if (txBuf.size() >= kFlushThreshold)
        flush();
}

void
SocketChannel::writeFrames(size_t from)
{
    // A single sendBytes can exceed the u32 frame-length field (the
    // threshold check fires only after a whole message is buffered);
    // split into as many maximal frames as needed — the reader
    // reassembles a byte stream, so frame boundaries are invisible.
    constexpr size_t kMaxFrame = 0xffffffffu;
    size_t off = from;
    while (off < txBuf.size()) {
        const uint32_t len =
            uint32_t(std::min(txBuf.size() - off, kMaxFrame));
        uint8_t header[4];
        header[0] = uint8_t(len);
        header[1] = uint8_t(len >> 8);
        header[2] = uint8_t(len >> 16);
        header[3] = uint8_t(len >> 24);
        writeAll(header, sizeof(header));
        writeAll(txBuf.data() + off, len);
        off += len;
        wireSent += len;
        // Link-rate pacing: a frame of b payload bytes occupies the
        // simulated link for 8b/rate seconds (headers ignored — the
        // accounting is payload-based everywhere).
        if (bandwidthBps > 0)
            std::this_thread::sleep_for(std::chrono::microseconds(
                uint64_t(len) * 8'000'000 / bandwidthBps));
    }
    txBuf.clear(); // keeps capacity: steady state reuses the buffer
}

void
SocketChannel::applySendFault()
{
    faultDone = true;
    // 0-based offset of the trigger byte within the pending buffer.
    const size_t off = std::min(
        txBuf.size() - 1,
        size_t(fault.atSentByte > wireSent ? fault.atSentByte - wireSent - 1
                                           : 0));
    switch (fault.kind) {
      case FaultPlan::Kind::Delay:
        std::this_thread::sleep_for(
            std::chrono::microseconds(fault.delayUs));
        writeFrames(0);
        return;
      case FaultPlan::Kind::Corrupt:
        // One flipped payload byte; the frame itself stays well-formed
        // (framing corruption is the TruncateFrame case) — the damage
        // surfaces wherever the peer's protocol layer notices, or
        // doesn't: GMW shares carry no MAC, which is exactly what the
        // chaos grid documents.
        txBuf[off] ^= 0xa5;
        writeFrames(0);
        return;
      case FaultPlan::Kind::Close:
        txBuf.clear();
        shutdownBoth();
        throw WireError(WireFault::PeerClosed,
                        "fault injection: abrupt close");
      case FaultPlan::Kind::TruncateFrame: {
        // Promise the full frame, deliver only the bytes up to the
        // trigger, then vanish: the peer dies inside readFrame().
        const uint32_t len = uint32_t(
            std::min(txBuf.size(), size_t(0xffffffffu)));
        uint8_t header[4];
        header[0] = uint8_t(len);
        header[1] = uint8_t(len >> 8);
        header[2] = uint8_t(len >> 16);
        header[3] = uint8_t(len >> 24);
        writeAll(header, sizeof(header));
        writeAll(txBuf.data(), off);
        txBuf.clear();
        shutdownBoth();
        throw WireError(WireFault::PeerClosed,
                        "fault injection: frame truncated");
      }
      case FaultPlan::Kind::Stall: {
        // Partial frame, socket left OPEN: the peer blocks on the
        // missing bytes until ITS deadline fires — the one failure
        // mode only recv timeouts can contain.
        const uint32_t len = uint32_t(
            std::min(txBuf.size(), size_t(0xffffffffu)));
        uint8_t header[4];
        header[0] = uint8_t(len);
        header[1] = uint8_t(len >> 8);
        header[2] = uint8_t(len >> 16);
        header[3] = uint8_t(len >> 24);
        writeAll(header, sizeof(header));
        writeAll(txBuf.data(), off);
        txBuf.clear();
        throw WireError(WireFault::Transient,
                        "fault injection: stall after partial write");
      }
      case FaultPlan::Kind::None:
        writeFrames(0);
        return;
    }
}

void
SocketChannel::flush()
{
    if (txBuf.empty())
        return;
    trace::Span span("flush", "net", 0, txBuf.size());
    if (fault.armed() && !faultDone &&
        wireSent + txBuf.size() >= fault.atSentByte) {
        applySendFault();
        return;
    }
    writeFrames(0);
}

void
SocketChannel::applyTurnFault()
{
    switch (fault.kind) {
      case FaultPlan::Kind::Delay:
        faultDone = true;
        std::this_thread::sleep_for(
            std::chrono::microseconds(fault.delayUs));
        return;
      case FaultPlan::Kind::Close:
        faultDone = true;
        shutdownBoth();
        throw WireError(WireFault::PeerClosed,
                        "fault injection: abrupt close at turnaround");
      case FaultPlan::Kind::Stall:
        faultDone = true;
        throw WireError(WireFault::Transient,
                        "fault injection: stall at turnaround");
      case FaultPlan::Kind::Corrupt:
      case FaultPlan::Kind::TruncateFrame:
        // Send-path faults: re-arm for the next flushed byte.
        fault.atSentByte = wireSent + 1;
        return;
      case FaultPlan::Kind::None:
        return;
    }
}

void
SocketChannel::readFrame()
{
    trace::Span span("read_frame", "net");
    uint8_t header[4];
    size_t got = 0;
    while (got < sizeof(header)) {
        if (recvTimeoutMs > 0)
            pollOrThrow(POLLIN, recvTimeoutMs, "SocketChannel recv");
        ssize_t n = ::recv(sock, header + got, sizeof(header) - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno(ioFault(errno), "SocketChannel recv");
        }
        if (n == 0)
            throw WireError(WireFault::PeerClosed,
                            "SocketChannel: peer closed the connection");
        got += size_t(n);
    }
    const uint32_t len = getU32(header);
    if (len == 0)
        throw WireError(WireFault::Protocol,
                        "SocketChannel: zero-length frame");
    if (len > kMaxFrameBytes)
        throw WireError(WireFault::Protocol,
                        "SocketChannel: oversized frame (" +
                            std::to_string(len) +
                            " bytes) — corrupt or hostile header");
    span.setArg(len);

    // Compact: all delivered payload has been consumed before another
    // frame is needed (recvBytes drains rxBuf first), so the buffer is
    // logically empty here and the cursor rewinds for reuse.
    if (rxPos == rxBuf.size()) {
        rxBuf.clear();
        rxPos = 0;
    }
    const size_t base = rxBuf.size();
    rxBuf.resize(base + len);
    size_t filled = 0;
    while (filled < len) {
        if (recvTimeoutMs > 0)
            pollOrThrow(POLLIN, recvTimeoutMs, "SocketChannel recv");
        ssize_t n = ::recv(sock, rxBuf.data() + base + filled,
                           len - filled, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno(ioFault(errno), "SocketChannel recv");
        }
        if (n == 0)
            throw WireError(WireFault::PeerClosed,
                            "SocketChannel: peer closed mid-frame");
        filled += size_t(n);
    }
}

void
SocketChannel::recvBytes(void *data, size_t len)
{
    // About to wait on the peer: everything it needs must be on the
    // wire first.
    flush();
    if (len == 0)
        return;
    if (lastDir != 1) {
        lastDir = 1;
        channelMetrics().turns.inc();
        const uint64_t turn =
            turnCount.fetch_add(1, std::memory_order_relaxed) + 1;
        trace::instant("turn", "net", 0, turn);
        if (fault.armed() && !faultDone && turn >= fault.atTurn)
            applyTurnFault();
        // Latency injection point: one sleep per turnaround models the
        // propagation delay of the half-round this endpoint now waits
        // on (see setSimulatedDelay).
        if (delayUs > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(delayUs));
    }
    auto *bytes = static_cast<uint8_t *>(data);
    size_t got = 0;
    while (got < len) {
        if (rxPos == rxBuf.size())
            readFrame();
        const size_t take = std::min(len - got, rxBuf.size() - rxPos);
        std::memcpy(bytes + got, rxBuf.data() + rxPos, take);
        rxPos += take;
        got += take;
    }
    received.fetch_add(len, std::memory_order_relaxed);
    channelMetrics().bytesReceived.inc(len);
}

// ---------------------------------------------------------------------------
// Connection helpers
// ---------------------------------------------------------------------------

int
tcpListen(uint16_t port, int backlog)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno(WireFault::Fatal, "socket");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        ::close(fd);
        throwErrno(WireFault::Fatal, "bind");
    }
    if (::listen(fd, backlog) < 0) {
        ::close(fd);
        throwErrno(WireFault::Fatal, "listen");
    }
    return fd;
}

uint16_t
tcpListenPort(int listen_fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0)
        throwErrno(WireFault::Fatal, "getsockname");
    return ntohs(addr.sin_port);
}

int
acceptOn(int listen_fd)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        return -1; // listener closed/shut down: accept loop exits
    }
}

std::unique_ptr<SocketChannel>
tcpConnect(const std::string &host, uint16_t port,
           const std::string &bind_host)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno(WireFault::Fatal, "socket");
    if (!bind_host.empty()) {
        sockaddr_in src{};
        src.sin_family = AF_INET;
        if (::inet_pton(AF_INET, bind_host.c_str(), &src.sin_addr) !=
            1) {
            ::close(fd);
            throw WireError(WireFault::Fatal,
                            "tcpConnect: bad bind host " + bind_host);
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&src),
                   sizeof(src)) < 0) {
            ::close(fd);
            throwErrno(WireFault::Fatal, "tcpConnect bind");
        }
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw WireError(WireFault::Fatal,
                        "tcpConnect: bad host " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        // Refused/timed out/unreachable: the server may be restarting
        // — the canonical retry-with-backoff case.
        const bool transient = err == ECONNREFUSED ||
                               err == ETIMEDOUT ||
                               err == EHOSTUNREACH ||
                               err == ENETUNREACH || err == EAGAIN;
        throwErrno(transient ? WireFault::Transient : WireFault::Fatal,
                   "connect");
    }
    return std::make_unique<SocketChannel>(fd);
}

int
unixListen(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno(WireFault::Fatal, "socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        throw WireError(WireFault::Fatal,
                        "unixListen: path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        ::close(fd);
        throwErrno(WireFault::Fatal, "bind (unix)");
    }
    if (::listen(fd, 16) < 0) {
        ::close(fd);
        throwErrno(WireFault::Fatal, "listen (unix)");
    }
    return fd;
}

std::unique_ptr<SocketChannel>
unixConnect(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno(WireFault::Fatal, "socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        throw WireError(WireFault::Fatal,
                        "unixConnect: path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        const bool transient =
            err == ECONNREFUSED || err == ENOENT || err == EAGAIN;
        throwErrno(transient ? WireFault::Transient : WireFault::Fatal,
                   "connect (unix)");
    }
    return std::make_unique<SocketChannel>(fd);
}

std::pair<std::unique_ptr<SocketChannel>, std::unique_ptr<SocketChannel>>
socketChannelPair()
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0)
        throwErrno(WireFault::Fatal, "socketpair");
    return {std::make_unique<SocketChannel>(fds[0]),
            std::make_unique<SocketChannel>(fds[1])};
}

} // namespace ironman::net
