/**
 * @file
 * Real socket transport for the two-party protocols.
 *
 * SocketChannel implements the Channel interface over a connected
 * stream socket — TCP (with TCP_NODELAY, so the interactive SPCOT
 * rounds are not Nagle-delayed) or Unix-domain. It is the transport
 * under src/svc: the COT service daemon accepts one SocketChannel per
 * client session, and the client library drives its engine half over
 * the mirror endpoint.
 *
 * Framing: writes are buffered and leave the process as length-framed
 * records ([u32 payload length][payload]). A frame is cut when the
 * endpoint turns around to receive (recvBytes flushes pending writes
 * first — a party about to block on its peer must have pushed
 * everything the peer needs), when the buffer crosses
 * kFlushThreshold, or on explicit flush(). The reader reassembles
 * frames into a drain-and-reuse receive buffer, so steady-state
 * traffic performs no heap allocation on either side once the buffers
 * have grown to the protocol's burst size — the same property
 * MemoryDuplex provides in-process.
 *
 * Accounting mirrors MemoryDuplex: bytesSent()/bytesReceived() count
 * payload bytes (frame headers excluded, so byte counts are
 * transport-independent), and turns() counts direction changes
 * observed at this endpoint — a classic half-duplex protocol with r
 * round trips shows ~2r turns across both endpoints, which is what
 * the analytic NetworkModel consumes.
 *
 * Errors (peer reset, short read on a closed socket) throw
 * std::runtime_error rather than aborting: a service must survive a
 * client dying mid-session and recycle the engine.
 */

#ifndef IRONMAN_NET_SOCKET_CHANNEL_H
#define IRONMAN_NET_SOCKET_CHANNEL_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/channel.h"

namespace ironman::net {

/** Channel endpoint over a connected stream socket. */
class SocketChannel final : public Channel
{
  public:
    /** Frames are cut early once this many buffered bytes accumulate. */
    static constexpr size_t kFlushThreshold = size_t(256) << 10;

    /**
     * Adopt a connected socket. @p tcp_nodelay disables Nagle (ignored
     * for non-TCP sockets).
     */
    explicit SocketChannel(int fd, bool tcp_nodelay = true);
    ~SocketChannel() override;

    SocketChannel(const SocketChannel &) = delete;
    SocketChannel &operator=(const SocketChannel &) = delete;

    void sendBytes(const void *data, size_t len) override;
    void recvBytes(void *data, size_t len) override;
    uint64_t bytesSent() const override { return sent; }

    /** Push any buffered writes out as one frame. */
    void flush();

    /** Payload bytes received so far. */
    uint64_t bytesReceived() const { return received; }

    /** Direction changes observed at this endpoint. */
    uint64_t turns() const { return turnCount; }

    /** The underlying file descriptor (for shutdown() by an owner). */
    int fd() const { return sock; }

    /**
     * Peer identity for per-client policy: the numeric remote address
     * (no port) for TCP, "unix" for Unix-domain peers, "unknown" when
     * the socket cannot say. Captured at construction.
     */
    const std::string &peerAddress() const { return peer; }

    /**
     * Shut down both directions of the socket, waking any thread
     * blocked in recvBytes() (it will throw). Safe to call from
     * another thread; close happens in the destructor.
     */
    void shutdownBoth();

    /**
     * Inject simulated one-way latency: every direction turnaround
     * into receiving sleeps this long before reading, so a protocol
     * with r round trips at this endpoint pays ~r delays — the wire
     * format is untouched (no timestamps, no negotiation) and byte
     * accounting is unchanged. Enable on one endpoint with the full
     * RTT, or on both with the one-way delay, for the same total.
     * Benches use this to turn the analytic LAN/WAN rows into
     * measured ones and to expose round-latency hiding (request
     * pipelining) even on loopback.
     */
    void setSimulatedDelay(uint64_t one_way_us) { delayUs = one_way_us; }
    uint64_t simulatedDelayUs() const { return delayUs; }

  private:
    void writeAll(const uint8_t *data, size_t len);
    void readFrame();

    int sock = -1;
    std::string peer; ///< quota key; see peerAddress()
    std::vector<uint8_t> txBuf; ///< unframed pending payload
    std::vector<uint8_t> rxBuf; ///< reassembled payload, [rxPos, size)
    size_t rxPos = 0;
    uint64_t sent = 0;
    uint64_t received = 0;
    uint64_t turnCount = 0;
    uint64_t delayUs = 0; ///< simulated one-way latency per turnaround
    int lastDir = -1; ///< 0 = sending, 1 = receiving
};

// ---------------------------------------------------------------------------
// Connection helpers (all throw std::runtime_error on failure)
// ---------------------------------------------------------------------------

/**
 * Bind + listen on 127.0.0.1:@p port (0 = ephemeral). Returns the
 * listening fd; query the bound port with tcpListenPort().
 */
int tcpListen(uint16_t port, int backlog = 16);

/** Port a tcpListen() fd is bound to. */
uint16_t tcpListenPort(int listen_fd);

/**
 * Accept one connection; returns -1 when the listener was closed or
 * shut down (the accept loop's exit signal).
 */
int acceptOn(int listen_fd);

/** Connect to @p host:@p port (numeric host, e.g. "127.0.0.1"). */
std::unique_ptr<SocketChannel> tcpConnect(const std::string &host,
                                          uint16_t port);

/** Bind + listen on a Unix-domain path (unlinked first if stale). */
int unixListen(const std::string &path);

/** Connect to a Unix-domain listener. */
std::unique_ptr<SocketChannel> unixConnect(const std::string &path);

/**
 * A connected Unix-domain socket pair — the in-process way to exercise
 * the real-socket code path (tests).
 */
std::pair<std::unique_ptr<SocketChannel>, std::unique_ptr<SocketChannel>>
socketChannelPair();

} // namespace ironman::net

#endif // IRONMAN_NET_SOCKET_CHANNEL_H
